// Command gomq is the message-queue stage link: a single-node broker and
// CLI producer/consumer, the §IV-A extension for production workflows
// ("centralized message queue systems such as Apache Kafka").
//
// Usage:
//
//	gomq serve   -listen 127.0.0.1:7548 -dir /nvme/mq     # broker
//	... | gomq produce -b 127.0.0.1:7548 batches           # one msg per line
//	gomq consume -b 127.0.0.1:7548 -g workers batches |    # follows the topic
//	  gopar -j 8 'process {}'
//
// Like gopard, the protocol is unauthenticated: trusted networks only.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/mq"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, rest := os.Args[1], os.Args[2:]
	switch cmd {
	case "serve":
		os.Exit(serveCmd(rest))
	case "produce":
		os.Exit(produceCmd(rest))
	case "consume":
		os.Exit(consumeCmd(rest))
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  gomq serve   [-listen ADDR] [-dir DIR]
  gomq produce [-b ADDR] TOPIC        (one message per stdin line)
  gomq consume [-b ADDR] [-g GROUP] [-follow] TOPIC
`)
}

func serveCmd(argv []string) int {
	fs := flag.NewFlagSet("gomq serve", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7548", "TCP address to listen on")
	dir := fs.String("dir", "./mqdata", "topic storage directory")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gomq:", err)
		return 2
	}
	log.Printf("gomq: broker on %s, storing topics in %s (unauthenticated — trusted networks only)",
		l.Addr(), *dir)
	b := mq.NewBroker(*dir)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// On SIGINT/SIGTERM, Serve stops accepting, expires every parked
	// long-poll read, finishes in-flight responses, and only then
	// returns — connected consumers see a clean broker-closed EOF
	// rather than a mid-frame cut.
	serveErr := b.Serve(ctx, l)
	closeErr := b.Close()
	if serveErr != nil {
		fmt.Fprintln(os.Stderr, "gomq:", serveErr)
		return 2
	}
	if closeErr != nil {
		fmt.Fprintln(os.Stderr, "gomq: close:", closeErr)
		return 2
	}
	log.Printf("gomq: broker stopped")
	return 0
}

func produceCmd(argv []string) int {
	fs := flag.NewFlagSet("gomq produce", flag.ContinueOnError)
	broker := fs.String("b", "127.0.0.1:7548", "broker address")
	if err := fs.Parse(argv); err != nil || fs.NArg() != 1 {
		usage()
		return 2
	}
	topic := fs.Arg(0)
	c, err := mq.DialBroker(*broker)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gomq:", err)
		return 2
	}
	defer c.Close()
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		if _, err := c.Produce(topic, append([]byte(nil), sc.Bytes()...)); err != nil {
			fmt.Fprintln(os.Stderr, "gomq:", err)
			return 2
		}
		n++
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "gomq:", err)
		return 2
	}
	fmt.Fprintf(os.Stderr, "gomq: produced %d messages to %s\n", n, topic)
	return 0
}

func consumeCmd(argv []string) int {
	fs := flag.NewFlagSet("gomq consume", flag.ContinueOnError)
	broker := fs.String("b", "127.0.0.1:7548", "broker address")
	group := fs.String("g", "default", "consumer group (offset tracking)")
	follow := fs.Bool("follow", false, "keep waiting for new messages (tail -f style)")
	if err := fs.Parse(argv); err != nil || fs.NArg() != 1 {
		usage()
		return 2
	}
	topic := fs.Arg(0)
	c, err := mq.DialBroker(*broker)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gomq:", err)
		return 2
	}
	defer func() { c.Close() }()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	next, err := c.Committed(topic, *group)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gomq:", err)
		return 2
	}
	// reconnect redials after the broker drops the connection (restart,
	// drain). Offsets are committed after each delivered line, so the
	// follow loop resumes from its local position without re-printing.
	reconnect := func() bool {
		c.Close()
		for ctx.Err() == nil {
			nc, err := mq.DialBroker(*broker)
			if err == nil {
				c = nc
				return true
			}
			select {
			case <-ctx.Done():
			case <-time.After(500 * time.Millisecond):
			}
		}
		return false
	}
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	for ctx.Err() == nil {
		wait := time.Duration(0)
		if *follow {
			wait = time.Second
		}
		msg, ok, err := c.Consume(topic, next, wait)
		if err != nil {
			if *follow && errors.Is(err, mq.ErrBrokerClosed) {
				fmt.Fprintln(os.Stderr, "gomq: broker connection lost, reconnecting")
				if reconnect() {
					continue
				}
				return 0 // interrupted while redialing
			}
			fmt.Fprintln(os.Stderr, "gomq:", err)
			return 2
		}
		if !ok {
			if *follow {
				continue
			}
			return 0
		}
		// Flush each line before committing: if the commit (or this
		// process) fails, the message has already reached the pipe, and
		// the uncommitted offset redelivers it next run — at-least-once,
		// never a swallowed line.
		out.Write(msg)
		out.WriteByte('\n')
		if err := out.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "gomq:", err)
			return 2
		}
		next++
		if err := c.Commit(topic, *group, next); err != nil {
			if *follow && errors.Is(err, mq.ErrBrokerClosed) {
				fmt.Fprintln(os.Stderr, "gomq: broker connection lost, reconnecting")
				if reconnect() {
					// The line was printed; skip re-committing until the
					// next delivery advances the offset past it.
					continue
				}
				return 0
			}
			fmt.Fprintln(os.Stderr, "gomq:", err)
			return 2
		}
	}
	return 0
}
