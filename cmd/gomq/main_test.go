package main

import (
	"net"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestGomqEndToEnd(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "gomq")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	// Pick a free port, then start the broker on it.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	broker := exec.Command(bin, "serve", "-listen", addr, "-dir", filepath.Join(dir, "data"))
	if err := broker.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { broker.Process.Kill(); broker.Wait() })
	deadline := time.Now().Add(10 * time.Second)
	for {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			conn.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("broker never came up")
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Produce three messages.
	prod := exec.Command(bin, "produce", "-b", addr, "jobs")
	prod.Stdin = strings.NewReader("m1\nm2\nm3\n")
	if out, err := prod.CombinedOutput(); err != nil || !strings.Contains(string(out), "produced 3") {
		t.Fatalf("produce: %v\n%s", err, out)
	}

	// Consume them (non-follow drains and exits).
	out, err := exec.Command(bin, "consume", "-b", addr, "-g", "g1", "jobs").Output()
	if err != nil {
		t.Fatalf("consume: %v", err)
	}
	if string(out) != "m1\nm2\nm3\n" {
		t.Fatalf("consumed = %q", out)
	}

	// Offsets committed: second consume drains nothing.
	out, err = exec.Command(bin, "consume", "-b", addr, "-g", "g1", "jobs").Output()
	if err != nil || len(out) != 0 {
		t.Fatalf("re-consume = %q, %v", out, err)
	}

	// A different group sees everything.
	out, _ = exec.Command(bin, "consume", "-b", addr, "-g", "g2", "jobs").Output()
	if string(out) != "m1\nm2\nm3\n" {
		t.Fatalf("fresh group consumed = %q", out)
	}

	// Usage error.
	if err := exec.Command(bin, "bogus-op").Run(); err == nil {
		t.Fatal("unknown op accepted")
	}
}
