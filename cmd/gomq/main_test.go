package main

import (
	"bufio"
	"net"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func buildGomq(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "gomq")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// startGomqBroker launches `gomq serve` on addr and waits for it to
// accept connections.
func startGomqBroker(t *testing.T, bin, addr, dataDir string) *exec.Cmd {
	t.Helper()
	broker := exec.Command(bin, "serve", "-listen", addr, "-dir", dataDir)
	if err := broker.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { broker.Process.Kill(); broker.Wait() })
	deadline := time.Now().Add(10 * time.Second)
	for {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			conn.Close()
			return broker
		}
		if time.Now().After(deadline) {
			t.Fatal("broker never came up")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestGomqEndToEnd(t *testing.T) {
	dir := t.TempDir()
	bin := buildGomq(t)
	addr := freeAddr(t)
	startGomqBroker(t, bin, addr, filepath.Join(dir, "data"))

	// Produce three messages.
	prod := exec.Command(bin, "produce", "-b", addr, "jobs")
	prod.Stdin = strings.NewReader("m1\nm2\nm3\n")
	if out, err := prod.CombinedOutput(); err != nil || !strings.Contains(string(out), "produced 3") {
		t.Fatalf("produce: %v\n%s", err, out)
	}

	// Consume them (non-follow drains and exits).
	out, err := exec.Command(bin, "consume", "-b", addr, "-g", "g1", "jobs").Output()
	if err != nil {
		t.Fatalf("consume: %v", err)
	}
	if string(out) != "m1\nm2\nm3\n" {
		t.Fatalf("consumed = %q", out)
	}

	// Offsets committed: second consume drains nothing.
	out, err = exec.Command(bin, "consume", "-b", addr, "-g", "g1", "jobs").Output()
	if err != nil || len(out) != 0 {
		t.Fatalf("re-consume = %q, %v", out, err)
	}

	// A different group sees everything.
	out, _ = exec.Command(bin, "consume", "-b", addr, "-g", "g2", "jobs").Output()
	if string(out) != "m1\nm2\nm3\n" {
		t.Fatalf("fresh group consumed = %q", out)
	}

	// Usage error.
	if err := exec.Command(bin, "bogus-op").Run(); err == nil {
		t.Fatal("unknown op accepted")
	}
}

// TestGomqConsumeFollowReconnect: a following consumer survives a
// broker restart — it rides out the outage, reconnects, resumes from
// its committed offset (no re-printed lines), and keeps delivering.
// The broker side of the same run checks the SIGTERM drain: serve must
// exit cleanly with its "broker stopped" line even with the follower's
// long-poll parked on it.
func TestGomqConsumeFollowReconnect(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "data")
	bin := buildGomq(t)
	addr := freeAddr(t)
	broker1 := startGomqBroker(t, bin, addr, data)

	prod := exec.Command(bin, "produce", "-b", addr, "jobs")
	prod.Stdin = strings.NewReader("m1\nm2\n")
	if out, err := prod.CombinedOutput(); err != nil {
		t.Fatalf("produce: %v\n%s", err, out)
	}

	cons := exec.Command(bin, "consume", "-b", addr, "-g", "g", "-follow", "jobs")
	stdout, err := cons.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cons.Stderr = nil
	if err := cons.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cons.Process.Kill(); cons.Wait() })
	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	readLine := func(want string) {
		t.Helper()
		select {
		case got, ok := <-lines:
			if !ok || got != want {
				t.Fatalf("follower printed %q (ok=%v), want %q", got, ok, want)
			}
		case <-time.After(15 * time.Second):
			t.Fatalf("follower never printed %q", want)
		}
	}
	readLine("m1")
	readLine("m2")

	// Graceful broker shutdown under the follower's parked long-poll:
	// the drain fix means serve actually exits (and says so) instead of
	// hanging on the idle connection.
	if err := broker1.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- broker1.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("broker exit after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("broker did not drain after SIGTERM")
	}

	// Restart on the same address and data; the follower reconnects on
	// its own and picks up the next message — no duplicates of m1/m2,
	// whose offsets were committed before the outage.
	startGomqBroker(t, bin, addr, data)
	prod2 := exec.Command(bin, "produce", "-b", addr, "jobs")
	prod2.Stdin = strings.NewReader("m3\n")
	if out, err := prod2.CombinedOutput(); err != nil {
		t.Fatalf("produce after restart: %v\n%s", err, out)
	}
	readLine("m3")

	// SIGINT ends the follow loop cleanly.
	cons.Process.Signal(syscall.SIGINT)
	consDone := make(chan error, 1)
	go func() { consDone <- cons.Wait() }()
	select {
	case err := <-consDone:
		if err != nil {
			t.Fatalf("consumer exit: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("consumer did not exit on SIGINT")
	}
}
