// Command gopard is the gparallel worker daemon: it executes jobs sent
// by a gopar coordinator (`gopar -S host:port ...`) over TCP.
//
// Usage:
//
//	gopard -listen :7547 -slots 16          # on each worker node
//	gopar -S 16/node1:7547,16/node2:7547 'process {}' ::: inputs...
//
// SECURITY: the protocol is unauthenticated — anyone who can reach the
// port can run commands as this user. Bind to localhost or a trusted
// cluster network only.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/telemetry"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:7547", "TCP address to listen on")
		slots       = flag.Int("slots", runtime.GOMAXPROCS(0), "advertised concurrent job slots")
		name        = flag.String("name", "", "worker name in joblogs (default: hostname)")
		dir         = flag.String("dir", "", "working directory for jobs")
		shell       = flag.Bool("shell", false, "always run commands through /bin/sh -c")
		metricsAddr = flag.String("metrics-addr", "", `serve Prometheus metrics on this address (e.g. ":9101"; ":0" picks a free port)`)
	)
	flag.Parse()

	wname := *name
	if wname == "" {
		if h, err := os.Hostname(); err == nil {
			wname = h
		}
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gopard:", err)
		os.Exit(2)
	}
	log.Printf("gopard: %q serving %d slots on %s (unauthenticated — trusted networks only)",
		wname, *slots, l.Addr())

	// The same counter set backs both the /metrics endpoint and the
	// snapshots piggybacked on every job response to the coordinator.
	wt := dist.NewWorkerTelemetry()
	if *metricsAddr != "" {
		reg := telemetry.NewRegistry()
		wt.Register(reg)
		telemetry.RegisterBuildInfo(reg, "gopard", time.Now())
		bound, closeMetrics, merr := telemetry.Serve(*metricsAddr, reg)
		if merr != nil {
			fmt.Fprintln(os.Stderr, "gopard:", merr)
			os.Exit(2)
		}
		defer closeMetrics()
		log.Printf("gopard: serving metrics on http://%s/metrics", bound)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err = dist.Serve(ctx, l, dist.WorkerConfig{
		Name:      wname,
		Slots:     *slots,
		Runner:    &core.ExecRunner{Dir: *dir, ForceShell: *shell},
		Logf:      log.Printf,
		Telemetry: wt,
	})
	if err != nil {
		log.Fatal("gopard: ", err)
	}
}
