// Command gopard is the gparallel worker daemon: it executes jobs sent
// by a gopar coordinator (`gopar -S host:port ...`) over TCP.
//
// Usage:
//
//	gopard -listen :7547 -slots 16          # on each worker node
//	gopar -S 16/node1:7547,16/node2:7547 'process {}' ::: inputs...
//
// SECURITY: the protocol is unauthenticated — anyone who can reach the
// port can run commands as this user. Bind to localhost or a trusted
// cluster network only.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/flight"
	"repro/internal/telemetry"
)

// flightRunner wraps the worker's runner so every job execution lands
// in the flight recorder's ring as started/finished events — gopard
// has no engine (jobs arrive over the wire), so the runner boundary is
// its event stream.
type flightRunner struct {
	inner core.Runner
	rec   *flight.Recorder
}

func (r *flightRunner) Run(ctx context.Context, job *core.Job) core.Result {
	r.rec.RecordEvent(core.Event{
		Type: core.EventStarted, Seq: job.Seq, Slot: job.Slot,
		Attempt: 1, Time: time.Now(), Command: job.Command,
	})
	res := r.inner.Run(ctx, job)
	end := res.End
	if end.IsZero() {
		end = time.Now()
	}
	r.rec.RecordEvent(core.Event{
		Type: core.EventFinished, Seq: job.Seq, Slot: job.Slot,
		Attempt: 1, Time: end, Command: job.Command,
		OK: res.Err == nil && res.ExitCode == 0, ExitCode: res.ExitCode,
		Duration: end.Sub(res.Start),
	})
	return res
}

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:7547", "TCP address to listen on")
		slots       = flag.Int("slots", runtime.GOMAXPROCS(0), "advertised concurrent job slots")
		name        = flag.String("name", "", "worker name in joblogs (default: hostname)")
		dir         = flag.String("dir", "", "working directory for jobs")
		shell       = flag.Bool("shell", false, "always run commands through /bin/sh -c")
		metricsAddr = flag.String("metrics-addr", "", `serve Prometheus metrics on this address (e.g. ":9101"; ":0" picks a free port)`)
		pprofOn     = flag.Bool("pprof", false, "also serve /debug/pprof on -metrics-addr (off by default)")
		flightBuf   = flag.Int("flight-buf", 4096, "flight-recorder event ring capacity (0 disables the recorder)")
		flightDir   = flag.String("flight-dump", "", "directory for flight dump files written on SIGQUIT or panic (default $TMPDIR)")
		debugAddr   = flag.String("debug-addr", "", `serve /debug/flight and /debug/pprof on this address (e.g. "127.0.0.1:0")`)
		debugToken  = flag.String("debug-token", "", "bearer token required by /debug/flight (empty = open; keep the listener on loopback)")
		deflateMin  = flag.Int("deflate-threshold", 0, "compress v3 result payloads larger than this many bytes (0 = default 4096, negative = never)")
	)
	flag.Parse()

	wname := *name
	if wname == "" {
		if h, err := os.Hostname(); err == nil {
			wname = h
		}
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gopard:", err)
		os.Exit(2)
	}
	log.Printf("gopard: %q serving %d slots on %s (unauthenticated — trusted networks only)",
		wname, *slots, l.Addr())

	// The same counter set backs both the /metrics endpoint and the
	// snapshots piggybacked on every job response to the coordinator.
	wt := dist.NewWorkerTelemetry()
	// wire counts this worker's protocol traffic (bytes, frames,
	// compression ratio) across every coordinator connection.
	var wire dist.WireStats
	if *metricsAddr != "" {
		reg := telemetry.NewRegistry()
		wt.Register(reg)
		wire.Register(reg, "gopard_dist")
		telemetry.RegisterBuildInfo(reg, "gopard", time.Now())
		var srvOpts []telemetry.ServeOption
		if *pprofOn {
			srvOpts = append(srvOpts, telemetry.WithPprof())
		}
		bound, closeMetrics, merr := telemetry.Serve(*metricsAddr, reg, srvOpts...)
		if merr != nil {
			fmt.Fprintln(os.Stderr, "gopard:", merr)
			os.Exit(2)
		}
		defer closeMetrics()
		log.Printf("gopard: serving metrics on http://%s/metrics", bound)
	}

	var runner core.Runner = &core.ExecRunner{Dir: *dir, ForceShell: *shell}
	var rec *flight.Recorder
	if *flightBuf > 0 {
		rec = flight.New(flight.Options{
			EventBuf: *flightBuf,
			Program:  "gopard",
			OnDiag: func(n, detail string) {
				log.Printf("gopard: flight anomaly [%s]: %s", n, detail)
			},
		})
		rec.AddSource("engine", rec.EngineStats)
		rec.AddSource("wire", func(buf []flight.Stat) []flight.Stat {
			return append(buf,
				flight.Stat{Name: "bytes_sent", V: float64(wire.BytesSent())},
				flight.Stat{Name: "bytes_received", V: float64(wire.BytesReceived())},
				flight.Stat{Name: "frames_sent", V: float64(wire.FramesSent())},
				flight.Stat{Name: "frames_received", V: float64(wire.FramesReceived())},
				flight.Stat{Name: "deflate_ratio", V: wire.DeflateRatio()},
			)
		})
		rec.AddSource("worker", func(buf []flight.Stat) []flight.Stat {
			s := wt.Snapshot()
			return append(buf,
				flight.Stat{Name: "busy", V: float64(s.Busy)},
				flight.Stat{Name: "started", V: float64(s.Started)},
				flight.Stat{Name: "ok", V: float64(s.OK)},
				flight.Stat{Name: "failed", V: float64(s.Failed)},
			)
		})
		rec.Start()
		defer rec.Stop()
		stopSig := flight.NotifySignal(rec, *flightDir, log.Printf)
		defer stopSig()
		defer flight.DumpOnPanic(rec, *flightDir, log.Printf)
		runner = &flightRunner{inner: runner, rec: rec}
		if *debugAddr != "" {
			bound, closeDebug, derr := flight.Serve(*debugAddr, rec, *debugToken)
			if derr != nil {
				fmt.Fprintln(os.Stderr, "gopard:", derr)
				os.Exit(2)
			}
			defer closeDebug()
			log.Printf("gopard: serving debug endpoints on http://%s/debug/flight", bound)
		}
	} else if *debugAddr != "" {
		fmt.Fprintln(os.Stderr, "gopard: -debug-addr requires the flight recorder (-flight-buf > 0)")
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err = dist.Serve(ctx, l, dist.WorkerConfig{
		Name:             wname,
		Slots:            *slots,
		Runner:           runner,
		Logf:             log.Printf,
		Telemetry:        wt,
		Wire:             &wire,
		DeflateThreshold: *deflateMin,
	})
	if err != nil {
		log.Fatal("gopard: ", err)
	}
}
