package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/profile"
	"repro/internal/span"
	"repro/internal/wms"
)

// runReport implements `gopar report`: the offline analyzer that turns a
// span file (written by --spans), a joblog, or a simulated workload into
// the paper's overhead-attribution measurements.
func runReport(argv []string) int {
	fs := flag.NewFlagSet("gopar report", flag.ContinueOnError)
	var (
		spansPath   = fs.String("spans", "", "span JSONL file written by a run's --spans flag")
		joblogPath  = fs.String("joblog", "", "GNU-Parallel-format joblog (coarse fallback: exec time only)")
		simulate    = fs.Bool("sim", false, "analyze a simulated calibrated workload instead of files")
		simProfile  = fs.String("sim-profile", "frontier", "node profile for --sim: frontier|perlmutter-cpu|dtn")
		simSeed     = fs.Uint64("sim-seed", 1, "virtual-time RNG seed for --sim")
		simInst     = fs.Int("sim-instances", 1, "parallel instances for --sim")
		simJobs     = fs.Int("sim-jobs", 16, "slots per instance for --sim")
		simTasks    = fs.Int("sim-tasks", 2000, "tasks per instance for --sim")
		simDur      = fs.Duration("sim-task-dur", 0, "payload duration per task for --sim (0 = null tasks)")
		simRuntime  = fs.String("sim-runtime", "", "container runtime for --sim: shifter|podman-hpc")
		simStageIn  = fs.Duration("sim-stage-in", 0, "per-task stage-in duration for --sim")
		simStageOut = fs.Duration("sim-stage-out", 0, "per-task stage-out duration for --sim")
		jsonOut     = fs.String("json", "", `write the machine-readable report JSON here ("-" = stdout)`)
		traceOut    = fs.String("trace", "", "render the spans as a Chrome/Perfetto trace to this file")
		markdown    = fs.Bool("md", false, "emit markdown tables instead of ASCII (for docs generation)")
		withWMS     = fs.Bool("wms", false, "include the WMS-comparison table (measured per-task cost vs Swift/T model)")
		golden      = fs.String("golden", "", "compare key report fields against this golden JSON; non-zero exit on mismatch")
		tolerance   = fs.Float64("tolerance", 0.10, "relative tolerance for --golden numeric comparisons")
	)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: gopar report (--spans FILE | --joblog FILE | --sim [sim flags]) [--json FILE] [--trace FILE] [--golden FILE]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	spans, src, err := loadSpans(*spansPath, *joblogPath, *simulate, span.SimConfig{
		Profile: *simProfile, Seed: *simSeed, Instances: *simInst,
		Jobs: *simJobs, Tasks: *simTasks, TaskDur: *simDur,
		Runtime: *simRuntime, StageIn: *simStageIn, StageOut: *simStageOut,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gopar report:", err)
		return 2
	}
	if len(spans) == 0 {
		fmt.Fprintln(os.Stderr, "gopar report: no spans to analyze")
		return 2
	}

	a := span.Analyze(spans)
	rep := reportDoc{Analysis: a, Source: src}
	if *withWMS {
		rep.WMS = wmsComparison(a)
	}

	if *traceOut != "" {
		if err := writeTraceFile(*traceOut, spans); err != nil {
			fmt.Fprintln(os.Stderr, "gopar report:", err)
			return 2
		}
	}
	if *jsonOut != "" {
		if err := writeReportJSON(*jsonOut, rep); err != nil {
			fmt.Fprintln(os.Stderr, "gopar report:", err)
			return 2
		}
	}
	if *jsonOut != "-" {
		printReport(os.Stdout, rep, *markdown)
	}
	if *golden != "" {
		if !checkGolden(os.Stderr, rep, *golden, *tolerance) {
			return 1
		}
		fmt.Fprintln(os.Stderr, "gopar report: golden check passed")
	}
	return 0
}

// reportDoc is the machine-readable report: the analysis plus
// provenance and the optional WMS comparison.
type reportDoc struct {
	Source string `json:"source"`
	span.Analysis
	WMS []wmsRow `json:"wms_comparison,omitempty"`
}

// wmsRow compares this run's measured per-task launch cost against the
// calibrated Swift/T orchestration model at a given workflow size
// (paper §II: ~500 s of pure overhead at 50 k tasks).
type wmsRow struct {
	Tasks int `json:"tasks"`
	// SwiftTOverheadS is the centralized WMS's total orchestration
	// overhead for this many tasks.
	SwiftTOverheadS float64 `json:"swift_t_overhead_s"`
	// PerNodeOverheadS is this run's measured per-task launch cost ×
	// 128 (tasks per node at one task per Frontier core): the overhead
	// each node-local instance pays, independent of workflow size.
	PerNodeOverheadS float64 `json:"gopar_per_node_overhead_s"`
	Ratio            float64 `json:"ratio"`
}

// tasksPerNode is the paper's per-node task share for the WMS
// comparison: one task per Frontier schedulable core.
const tasksPerNode = 128

func wmsComparison(a span.Analysis) []wmsRow {
	model := wms.SwiftT()
	perNode := a.OverheadPerJobS * tasksPerNode
	var rows []wmsRow
	for _, n := range []int{10_000, 50_000, 100_000} {
		sw := model.Total(n).Seconds()
		r := wmsRow{Tasks: n, SwiftTOverheadS: sw, PerNodeOverheadS: perNode}
		if perNode > 0 {
			r.Ratio = sw / perNode
		}
		rows = append(rows, r)
	}
	return rows
}

// loadSpans resolves the input source: exactly one of --spans, --joblog
// or --sim.
func loadSpans(spansPath, joblogPath string, simulate bool, simCfg span.SimConfig) ([]span.Span, string, error) {
	n := 0
	for _, set := range []bool{spansPath != "", joblogPath != "", simulate} {
		if set {
			n++
		}
	}
	if n != 1 {
		return nil, "", fmt.Errorf("need exactly one of --spans, --joblog, --sim")
	}
	switch {
	case spansPath != "":
		f, err := os.Open(spansPath)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		spans, err := span.Parse(f)
		return spans, "spans:" + spansPath, err
	case joblogPath != "":
		f, err := os.Open(joblogPath)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		entries, err := core.ParseJoblog(f)
		if err != nil {
			return nil, "", err
		}
		return span.FromJoblog(entries), "joblog:" + joblogPath, nil
	default:
		spans, err := span.RunSim(simCfg, nil)
		src := fmt.Sprintf("sim:%s seed=%d instances=%d jobs=%d tasks=%d runtime=%q",
			simCfg.Profile, simCfg.Seed, simCfg.Instances, simCfg.Jobs, simCfg.Tasks, simCfg.Runtime)
		return spans, src, err
	}
}

func writeTraceFile(path string, spans []span.Span) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := profile.WriteSpanTrace(f, spans); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeReportJSON(path string, rep reportDoc) error {
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// printReport renders the human-readable report tables.
func printReport(w io.Writer, rep reportDoc, md bool) {
	a := rep.Analysis
	render := func(t *metrics.Table) {
		if md {
			fmt.Fprintln(w, t.Markdown())
		} else {
			fmt.Fprintln(w, t.String())
		}
	}

	sum := metrics.NewTable("Run summary ("+rep.Source+")",
		"jobs", "failed", "killed", "incomplete", "retries", "slots", "hosts", "makespan_s")
	sum.AddRow(a.Jobs, a.Failed, a.Killed, a.Incomplete, a.Retries, a.Slots, a.Hosts,
		fmt.Sprintf("%.3f", a.MakespanS))
	render(sum)

	dec := metrics.NewTable("Overhead decomposition (wall time = exec + staging + launcher overhead)",
		"component", "total_s", "share")
	total := a.ExecTotalS + a.StageTotalS + a.OverheadTotalS
	pct := func(v float64) string {
		if total <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f%%", 100*v/total)
	}
	dec.AddRow("exec", fmt.Sprintf("%.3f", a.ExecTotalS), pct(a.ExecTotalS))
	dec.AddRow("staging", fmt.Sprintf("%.3f", a.StageTotalS), pct(a.StageTotalS))
	dec.AddRow("launcher overhead", fmt.Sprintf("%.3f", a.OverheadTotalS), pct(a.OverheadTotalS))
	dec.AddNote("per-job launcher overhead %.3f ms (render + dispatch + container-start + collect)",
		a.OverheadPerJobS*1e3)
	if a.DispatchRate > 0 {
		dec.AddNote("dispatch: mean %.3f ms => %.0f procs/s per instance (paper: ~470)",
			a.DispatchMeanS*1e3, a.DispatchRate)
	}
	if a.ContainerPct > 0 {
		dec.AddNote("container start: mean %.3f ms = %.0f%% of launch overhead (paper Shifter: ~19%%)",
			a.ContainerMeanS*1e3, 100*a.ContainerPct)
	}
	render(dec)

	ph := metrics.NewTable("Per-phase latency digests (ms)",
		"phase", "count", "mean", "p50", "p90", "p99", "max")
	for _, p := range a.Phases {
		ms := func(v float64) string { return fmt.Sprintf("%.3f", v*1e3) }
		ph.AddRow(p.Phase, p.Count, ms(p.MeanS), ms(p.P50S), ms(p.P90S), ms(p.P99S), ms(p.MaxS))
	}
	render(ph)

	cp := a.CriticalPath
	cpt := metrics.NewTable("Critical path (slot-serialized chain ending at the last job)",
		"slot", "jobs", "exec_s", "overhead_s", "idle_s")
	cpt.AddRow(cp.Slot, cp.Jobs, fmt.Sprintf("%.3f", cp.ExecS),
		fmt.Sprintf("%.3f", cp.OverheadS), fmt.Sprintf("%.3f", cp.IdleS))
	if pathTotal := cp.ExecS + cp.OverheadS + cp.IdleS; pathTotal > 0 {
		cpt.AddNote("path accounts for %.1f%% of the makespan; %.1f%% of the path is launcher overhead",
			100*pathTotal/math.Max(a.MakespanS, pathTotal),
			100*cp.OverheadS/pathTotal)
	}
	render(cpt)

	if len(a.Utilization) > 0 {
		var sum, peak float64
		for _, u := range a.Utilization {
			sum += u.Busy
			if u.Busy > peak {
				peak = u.Busy
			}
		}
		fmt.Fprintf(w, "slot utilization: mean %.1f%%, peak %.1f%% over %d buckets of %.3fs\n\n",
			100*sum/float64(len(a.Utilization)), 100*peak,
			len(a.Utilization), a.Utilization[0].WidthS)
	}

	if len(rep.WMS) > 0 {
		wt := metrics.NewTable("WMS comparison: orchestration overhead to launch N tasks",
			"tasks", "swift_t_s", "gopar_per_node_s", "ratio")
		for _, r := range rep.WMS {
			wt.AddRow(r.Tasks, fmt.Sprintf("%.1f", r.SwiftTOverheadS),
				fmt.Sprintf("%.3f", r.PerNodeOverheadS), fmt.Sprintf("%.0fx", r.Ratio))
		}
		wt.AddNote("per-node = measured per-task launch cost x %d tasks/node; Swift/T model calibrated to 500s @ 50k tasks (paper SII)", tasksPerNode)
		render(wt)
	}
}

// checkGolden compares numeric fields of the golden JSON against the
// report within a relative tolerance. Count-like fields (jobs, failed,
// incomplete, killed) are exact. Reports every mismatch, returns false
// on any.
func checkGolden(w io.Writer, rep reportDoc, goldenPath string, tol float64) bool {
	gb, err := os.ReadFile(goldenPath)
	if err != nil {
		fmt.Fprintln(w, "gopar report: golden:", err)
		return false
	}
	var want map[string]any
	if err := json.Unmarshal(gb, &want); err != nil {
		fmt.Fprintln(w, "gopar report: golden:", err)
		return false
	}
	// Flatten the report through JSON so golden keys match wire names.
	rb, err := json.Marshal(rep)
	if err != nil {
		fmt.Fprintln(w, "gopar report: golden:", err)
		return false
	}
	var got map[string]any
	if err := json.Unmarshal(rb, &got); err != nil {
		fmt.Fprintln(w, "gopar report: golden:", err)
		return false
	}
	exact := map[string]bool{
		"jobs": true, "failed": true, "killed": true,
		"incomplete": true, "retries": true, "slots": true, "hosts": true,
	}
	keys := make([]string, 0, len(want))
	for k := range want {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ok := true
	for _, k := range keys {
		wv, isNum := want[k].(float64)
		if !isNum {
			continue // structural keys (phases etc.) are not golden-checked
		}
		gv, present := got[k].(float64)
		if !present {
			fmt.Fprintf(w, "golden: %s missing from report\n", k)
			ok = false
			continue
		}
		var pass bool
		if exact[k] {
			pass = gv == wv
		} else if wv == 0 {
			pass = gv == 0
		} else {
			pass = math.Abs(gv-wv) <= tol*math.Abs(wv)
		}
		if !pass {
			fmt.Fprintf(w, "golden: %s = %g, want %g (tolerance %.0f%%)\n", k, gv, wv, tol*100)
			ok = false
		}
	}
	return ok
}
