package main

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/jobd"
)

// BenchmarkServeSubmit measures the job service's control plane under
// many concurrent submitting clients: sustained submit rate (acked
// submits/s, each topic-appended and WAL-intent-logged) and the p99
// submit→dispatch latency scraped from the daemon's own histogram.
//
// The daemon runs as a separate process (as in production, and so the
// 20k-fd container limit splits across two processes at high client
// counts) with -runner noop: the pipeline under test is submit →
// durable accept → fair-share schedule → dispatch, not fork/exec.
//
// The committed BENCH_pr7.json entry is recorded at clients=10000
// (GOPAR_SERVE_BENCH_CLIENTS=10000, -benchtime 50000x). CI smoke runs
// the default clients=200 — a different benchmark name, so benchjson's
// cross-report compare skips it and the in-report serviceGuard p99
// ceiling does the gating.
func BenchmarkServeSubmit(b *testing.B) {
	counts := []int{200}
	if s := os.Getenv("GOPAR_SERVE_BENCH_CLIENTS"); s != "" {
		counts = counts[:0]
		for _, f := range strings.Split(s, ",") {
			n, err := strconv.Atoi(f)
			if err != nil || n < 1 {
				b.Fatalf("bad GOPAR_SERVE_BENCH_CLIENTS=%q", s)
			}
			counts = append(counts, n)
		}
	}
	for _, clients := range counts {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			benchServeSubmit(b, clients)
		})
	}
}

func benchServeSubmit(b *testing.B, clients int) {
	dir := b.TempDir()
	cmd := exec.Command(goparPath, "serve", "-dir", dir, "-listen", "127.0.0.1:0",
		"-slots", "8", "-runner", "noop", "-wal-sync", "interval", "-q")
	stderrPipe, err := cmd.StderrPipe()
	if err != nil {
		b.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		b.Fatal(err)
	}
	defer func() { cmd.Process.Kill(); cmd.Wait() }()
	var base string
	sc := bufio.NewScanner(stderrPipe)
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), "gopard-serve: listening on "); ok {
			base = "http://" + rest
			break
		}
	}
	if base == "" {
		b.Fatal("daemon never announced its address")
	}
	go io.Copy(io.Discard, stderrPipe) // keep the daemon's stderr drained

	// One shared transport sized so every in-flight client request can
	// hold its own connection: at steady state that is ~`clients`
	// concurrent TCP conns against the daemon.
	tr := &http.Transport{
		MaxIdleConns:        clients + 16,
		MaxIdleConnsPerHost: clients + 16,
	}
	defer tr.CloseIdleConnections()
	hc := &http.Client{Transport: tr, Timeout: 60 * time.Second}
	c := jobd.NewClient(base, hc)
	ctx := context.Background()

	// Pre-create the queue so the first timed submit doesn't pay
	// queue-directory setup.
	if _, err := c.Configure(ctx, "bench", jobd.QueueConfig{Quota: 8, Weight: 1}); err != nil {
		b.Fatal(err)
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	var firstErr atomic.Value
	b.ResetTimer()
	start := time.Now()
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if next.Add(1) > int64(b.N) {
					return
				}
				if _, err := c.Submit(ctx, "bench", "noop job"); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()
	if err := firstErr.Load(); err != nil {
		b.Fatalf("submit failed: %v", err)
	}
	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "submits/s")
	b.ReportMetric(float64(clients), "clients")

	if p99, ok := scrapeSubmitDispatchP99(b, hc, base); ok {
		b.ReportMetric(p99*1000, "p99_submit_dispatch_ms")
	}
}

// scrapeSubmitDispatchP99 reads the daemon's
// jobd_submit_to_dispatch_seconds histogram for the bench queue and
// returns the p99 upper-bound estimate in seconds (the smallest bucket
// bound covering 99% of observations).
func scrapeSubmitDispatchP99(b *testing.B, hc *http.Client, base string) (float64, bool) {
	b.Helper()
	resp, err := hc.Get(base + "/metrics")
	if err != nil {
		b.Logf("metrics scrape failed: %v", err)
		return 0, false
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, false
	}
	type bucket struct {
		le  float64
		cum float64
	}
	var buckets []bucket
	var total float64
	for _, line := range bytes.Split(body, []byte("\n")) {
		s := string(line)
		if strings.HasPrefix(s, `jobd_submit_to_dispatch_seconds_bucket{queue="bench",le="`) {
			rest := s[len(`jobd_submit_to_dispatch_seconds_bucket{queue="bench",le="`):]
			leStr, valStr, ok := strings.Cut(rest, `"} `)
			if !ok {
				continue
			}
			le := 1e18 // +Inf
			if leStr != "+Inf" {
				if le, err = strconv.ParseFloat(leStr, 64); err != nil {
					continue
				}
			}
			v, err := strconv.ParseFloat(valStr, 64)
			if err != nil {
				continue
			}
			buckets = append(buckets, bucket{le, v})
		}
		if strings.HasPrefix(s, `jobd_submit_to_dispatch_seconds_count{queue="bench"} `) {
			total, _ = strconv.ParseFloat(s[len(`jobd_submit_to_dispatch_seconds_count{queue="bench"} `):], 64)
		}
	}
	if total == 0 || len(buckets) == 0 {
		return 0, false
	}
	want := total * 0.99
	for _, bk := range buckets {
		if bk.cum >= want {
			if bk.le >= 1e18 {
				// Everything above the largest finite bound; report that
				// bound (30s) — already a gate failure in practice.
				return buckets[len(buckets)-2].le, true
			}
			return bk.le, true
		}
	}
	return 0, false
}
