package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/flight"
	"repro/internal/jobd"
	"repro/internal/telemetry"
	"repro/internal/wal"
)

// noopRunner completes every job instantly without spawning a process.
// It exists for load benchmarks of the service control plane (submit →
// schedule → dispatch → complete) where fork/exec cost and single-core
// execution backlog would drown the signal being measured.
type noopRunner struct{}

func (noopRunner) Run(ctx context.Context, job *core.Job) core.Result {
	now := time.Now()
	return core.Result{Job: *job, Start: now, End: now}
}

// runServe implements `gopar serve`: the persistent multi-tenant job
// daemon. It announces the bound address on stderr as
// "gopard-serve: listening on ADDR" (the line test harnesses and
// scripts parse), then serves until SIGINT/SIGTERM, draining gracefully.
func runServe(argv []string) int {
	fs := flag.NewFlagSet("gopar serve", flag.ContinueOnError)
	var (
		listen      = fs.String("listen", "127.0.0.1:0", "HTTP API listen address")
		dir         = fs.String("dir", "", "service state directory (required)")
		slots       = fs.Int("slots", 8, "global execution slot pool shared by all queues")
		walSyncMode = fs.String("wal-sync", "interval", "queue WAL durability: always|interval|never")
		defQuota    = fs.Int("default-quota", 0, "quota for auto-created queues (0 = slots)")
		defWeight   = fs.Int("default-weight", 1, "fair-share weight for auto-created queues")
		queues      = fs.String("queues", "", "pre-create queues: name=quota:weight[,name=quota:weight...]")
		runnerKind  = fs.String("runner", "exec", "job runner: exec (shell commands) | noop (load testing)")
		workersList = fs.String("workers", "", `dispatch jobs to gopard workers: "[slots/]host:port,..." (default: run jobs locally)`)
		deflateMin  = fs.Int("deflate-threshold", 0, "compress v3 wire payloads larger than this many bytes (0 = default 4096, negative = never)")
		metricsAddr = fs.String("metrics-addr", "", "extra Prometheus listener (metrics are always on the API listener at /metrics)")
		spans       = fs.Bool("spans", false, "record per-queue span timelines for `gopar report`")
		results     = fs.Bool("results", false, "save job output under <dir>/<queue>/results/")
		drainGrace  = fs.Duration("drain-grace", 10*time.Second, "graceful-shutdown window for running jobs")
		quiet       = fs.Bool("q", false, "suppress operational log lines")
		pprofOn     = fs.Bool("pprof", false, "also serve /debug/pprof on -metrics-addr (off by default)")
		flightBuf   = fs.Int("flight-buf", 8192, "flight-recorder event ring capacity (0 disables the recorder)")
		flightDir   = fs.String("flight-dump", "", "directory for flight dump files written on SIGQUIT or panic (default <dir>)")
		flightP99   = fs.Duration("flight-p99", 0, "flight watchdog: dispatch-delay p99 ceiling that raises an anomaly (0 = off)")
		debugAddr   = fs.String("debug-addr", "", `serve /debug/flight and /debug/pprof on this address (e.g. "127.0.0.1:0")`)
		debugToken  = fs.String("debug-token", "", "bearer token required by /debug/flight (empty = open; keep the listener on loopback)")
	)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: gopar serve -dir DIR [-listen ADDR] [-slots N] [flags]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "gopar serve:", err)
		return 2
	}
	if *dir == "" {
		fs.Usage()
		return 2
	}
	var syncPolicy wal.SyncPolicy
	switch *walSyncMode {
	case "always":
		syncPolicy = wal.SyncAlways
	case "interval":
		syncPolicy = wal.SyncInterval
	case "never":
		syncPolicy = wal.SyncNever
	default:
		return fail(fmt.Errorf("bad -wal-sync %q (want always|interval|never)", *walSyncMode))
	}
	cfg := jobd.Config{
		Dir:           *dir,
		Slots:         *slots,
		DefaultQuota:  *defQuota,
		DefaultWeight: *defWeight,
		WALSync:       syncPolicy,
		Spans:         *spans,
		Results:       *results,
		DrainGrace:    *drainGrace,
	}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	switch *runnerKind {
	case "exec":
		// nil selects the default ExecRunner inside jobd.
	case "noop":
		cfg.Runner = noopRunner{}
	default:
		return fail(fmt.Errorf("bad -runner %q (want exec|noop)", *runnerKind))
	}

	// -workers turns the daemon into a distributed coordinator: jobs
	// dispatch over the v3 wire protocol to gopard workers instead of
	// fork/exec on this host. The pool is the runner; the service's
	// slot count follows the pool's aggregate capacity unless -slots
	// was given explicitly.
	var pool *dist.Pool
	if *workersList != "" {
		if *runnerKind == "noop" {
			return fail(fmt.Errorf("-workers and -runner noop are mutually exclusive"))
		}
		specs, perr := parseWorkers(*workersList)
		if perr != nil {
			return fail(perr)
		}
		p, derr := dist.Dial(specs, dist.WithDeflateThreshold(*deflateMin))
		if derr != nil {
			return fail(derr)
		}
		pool = p
		defer pool.Close()
		cfg.Runner = pool
		slotsSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "slots" {
				slotsSet = true
			}
		})
		if !slotsSet {
			cfg.Slots = pool.Slots()
		}
	}

	// Flight recorder: always on for the daemon (a long-lived process
	// is exactly what the black box exists for). Dumps land in the
	// state directory by default so they survive with the queues.
	var rec *flight.Recorder
	if *flightBuf > 0 {
		if *flightDir == "" {
			*flightDir = *dir
		}
		rec = flight.New(flight.Options{
			EventBuf: *flightBuf,
			Program:  "gopar-serve",
			Watchdog: flight.WatchdogConfig{DispatchP99: *flightP99},
			OnDiag: func(name, detail string) {
				fmt.Fprintf(os.Stderr, "gopard-serve: flight anomaly [%s]: %s\n", name, detail)
			},
		})
		rec.AddSource("engine", rec.EngineStats)
		if pool != nil {
			p := pool
			rec.AddSource("pool", func(buf []flight.Stat) []flight.Stat {
				h := p.Health()
				return append(buf,
					flight.Stat{Name: "live", V: float64(h.Live)},
					flight.Stat{Name: "total", V: float64(h.Total)},
					flight.Stat{Name: "redialing", V: float64(h.Redialing)},
					flight.Stat{Name: "lost", V: float64(h.Lost)},
				)
			})
			rec.AddSource("wire", func(buf []flight.Stat) []flight.Stat {
				w := p.Wire()
				return append(buf,
					flight.Stat{Name: "bytes_sent", V: float64(w.BytesSent())},
					flight.Stat{Name: "bytes_received", V: float64(w.BytesReceived())},
					flight.Stat{Name: "frames_sent", V: float64(w.FramesSent())},
					flight.Stat{Name: "frames_received", V: float64(w.FramesReceived())},
					flight.Stat{Name: "deflate_ratio", V: w.DeflateRatio()},
				)
			})
		}
		rec.Start()
		defer rec.Stop()
		logf := func(format string, fargs ...any) {
			fmt.Fprintf(os.Stderr, "gopard-serve: "+format+"\n", fargs...)
		}
		stopSig := flight.NotifySignal(rec, *flightDir, logf)
		defer stopSig()
		defer flight.DumpOnPanic(rec, *flightDir, logf)
		cfg.Flight = rec
		cfg.FlightDir = *flightDir
	} else if *debugAddr != "" {
		return fail(fmt.Errorf("-debug-addr requires the flight recorder (-flight-buf > 0)"))
	}

	srv, err := jobd.New(cfg)
	if err != nil {
		return fail(err)
	}
	if pool != nil {
		// Pool health, per-worker negotiated protocol, and wire traffic
		// land on the same registry the API listener serves at /metrics.
		pool.RegisterMetrics(srv.Registry())
	}

	var debugClose func() error
	if *debugAddr != "" {
		bound, closeFn, derr := flight.Serve(*debugAddr, rec, *debugToken)
		if derr != nil {
			srv.Close()
			return fail(derr)
		}
		debugClose = closeFn
		fmt.Fprintf(os.Stderr, "gopard-serve: debug on %s\n", bound)
	}

	for _, spec := range strings.Split(*queues, ",") {
		if spec == "" {
			continue
		}
		name, qcfg, perr := parseQueueSpec(spec)
		if perr != nil {
			srv.Close()
			return fail(perr)
		}
		if _, err := srv.ConfigureQueue(name, qcfg); err != nil {
			srv.Close()
			return fail(err)
		}
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		srv.Close()
		return fail(err)
	}
	hs := &http.Server{Handler: srv.Handler()}

	var metricsClose func() error
	if *metricsAddr != "" {
		var srvOpts []telemetry.ServeOption
		if *pprofOn {
			srvOpts = append(srvOpts, telemetry.WithPprof())
		}
		bound, closeFn, merr := telemetry.Serve(*metricsAddr, srv.Registry(), srvOpts...)
		if merr != nil {
			ln.Close()
			srv.Close()
			return fail(merr)
		}
		metricsClose = closeFn
		fmt.Fprintf(os.Stderr, "gopard-serve: metrics on %s\n", bound)
	}

	// The announce line: harnesses block on this to learn the port.
	fmt.Fprintf(os.Stderr, "gopard-serve: listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	exit := 0
	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "gopard-serve: shutting down")
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "gopar serve:", err)
		exit = 2
	}
	// Stop accepting API traffic first, then drain the job service.
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainGrace+5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "gopar serve: http shutdown:", err)
	}
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "gopar serve: close:", err)
		exit = 2
	}
	if metricsClose != nil {
		metricsClose()
	}
	if debugClose != nil {
		debugClose()
	}
	fmt.Fprintln(os.Stderr, "gopard-serve: stopped")
	return exit
}

// parseQueueSpec parses "name=quota:weight" (weight optional).
func parseQueueSpec(spec string) (string, jobd.QueueConfig, error) {
	bad := func() (string, jobd.QueueConfig, error) {
		return "", jobd.QueueConfig{}, fmt.Errorf("bad -queues entry %q (want name=quota:weight)", spec)
	}
	name, rest, ok := strings.Cut(spec, "=")
	if !ok || name == "" {
		return bad()
	}
	quotaStr, weightStr, hasWeight := strings.Cut(rest, ":")
	quota, err := strconv.Atoi(quotaStr)
	if err != nil || quota < 1 {
		return bad()
	}
	weight := 1
	if hasWeight {
		if weight, err = strconv.Atoi(weightStr); err != nil || weight < 1 {
			return bad()
		}
	}
	return name, jobd.QueueConfig{Quota: quota, Weight: weight}, nil
}
