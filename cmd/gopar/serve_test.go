package main

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/jobd"
)

// startServeProc launches `gopar serve` on a fresh port and returns the
// API base URL, the daemon's stderr lines, and its process handle. The
// bound address is parsed from the announce line.
func startServeProc(t *testing.T, dir string, argv ...string) (string, chan string, *os.Process) {
	t.Helper()
	args := append([]string{"serve", "-dir", dir, "-listen", "127.0.0.1:0"}, argv...)
	cmd := exec.Command(goparPath, args...)
	stderrPipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })
	addrCh := make(chan string, 1)
	lines := make(chan string, 256)
	go func() {
		sc := bufio.NewScanner(stderrPipe)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "gopard-serve: listening on "); ok {
				select {
				case addrCh <- rest:
				default:
				}
			}
			select {
			case lines <- line:
			default:
			}
		}
		close(lines)
	}()
	select {
	case addr := <-addrCh:
		return "http://" + addr, lines, cmd.Process
	case <-time.After(15 * time.Second):
		t.Fatal("gopar serve never announced its address")
		return "", nil, nil
	}
}

func awaitBacklogDrained(t *testing.T, c *jobd.Client, queue string, timeout time.Duration) jobd.QueueStats {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st, err := c.QueueStats(context.Background(), queue)
		if err == nil && st.Pending == 0 && st.Running == 0 {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue %s never drained (stats %+v, err %v)", queue, st, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestServeSmoke is the service end-to-end: 50 concurrent clients
// push 1000 real exec jobs across 5 tenant queues, everything
// completes exactly once, and SIGTERM stops the daemon gracefully.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("service smoke skipped in -short")
	}
	base, lines, proc := startServeProc(t, t.TempDir(),
		"-slots", "8", "-q")
	c := jobd.NewClient(base, nil)
	ctx := context.Background()

	const (
		clients    = 50
		perClient  = 20 // 50 × 20 = 1000 jobs
		queueCount = 5
	)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			queue := fmt.Sprintf("tenant%d", cl%queueCount)
			for j := 0; j < perClient; j++ {
				if _, err := c.Submit(ctx, queue, "true"); err != nil {
					errs <- fmt.Errorf("client %d: %w", cl, err)
					return
				}
			}
		}(cl)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	totalOK := 0
	for qi := 0; qi < queueCount; qi++ {
		st := awaitBacklogDrained(t, c, fmt.Sprintf("tenant%d", qi), 120*time.Second)
		if st.Failed != 0 || st.Cancelled != 0 {
			t.Fatalf("queue %s has failures: %+v", st.Name, st)
		}
		totalOK += st.OK
	}
	if totalOK != clients*perClient {
		t.Fatalf("completed %d jobs, want %d", totalOK, clients*perClient)
	}

	// Graceful SIGTERM: drains and reports a clean stop.
	if err := proc.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(30 * time.Second)
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatal("daemon exited without the stopped line")
			}
			if strings.Contains(line, "gopard-serve: stopped") {
				return
			}
		case <-deadline:
			t.Fatal("daemon did not stop after SIGTERM")
		}
	}
}

// TestServeQueuePolicyFlags: -queues pre-creates tenants with their
// quota:weight policy, and the policy survives a daemon restart.
func TestServeQueuePolicyFlags(t *testing.T) {
	dir := t.TempDir()
	base, lines, proc := startServeProc(t, dir,
		"-slots", "4", "-q", "-queues", "fast=2:3,slow=1")
	c := jobd.NewClient(base, nil)
	ctx := context.Background()

	qs, err := c.Queues(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 2 {
		t.Fatalf("queues = %+v", qs)
	}
	if qs[0].Name != "fast" || qs[0].Quota != 2 || qs[0].Weight != 3 {
		t.Fatalf("fast = %+v", qs[0])
	}
	if qs[1].Name != "slow" || qs[1].Quota != 1 || qs[1].Weight != 1 {
		t.Fatalf("slow = %+v", qs[1])
	}

	// Reconfigure over the API, restart, verify persistence.
	if _, err := c.Configure(ctx, "slow", jobd.QueueConfig{Quota: 3, Weight: 2}); err != nil {
		t.Fatal(err)
	}
	proc.Signal(syscall.SIGTERM)
	deadline := time.After(30 * time.Second)
waitStop:
	for {
		select {
		case line, ok := <-lines:
			if !ok || strings.Contains(line, "gopard-serve: stopped") {
				break waitStop
			}
		case <-deadline:
			t.Fatal("daemon did not stop after SIGTERM")
		}
	}

	base2, _, _ := startServeProc(t, dir, "-slots", "4", "-q")
	c2 := jobd.NewClient(base2, nil)
	st, err := c2.QueueStats(ctx, "slow")
	if err != nil {
		t.Fatal(err)
	}
	if st.Quota != 3 || st.Weight != 2 {
		t.Fatalf("slow policy after restart = %+v", st)
	}
}

// TestServeNoopRunner: -runner noop completes jobs without spawning
// processes (the load-bench configuration).
func TestServeNoopRunner(t *testing.T) {
	base, _, _ := startServeProc(t, t.TempDir(), "-slots", "2", "-q", "-runner", "noop")
	c := jobd.NewClient(base, nil)
	ctx := context.Background()
	seqs, err := c.Submit(ctx, "load", "this-binary-does-not-exist --at-all")
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Status(ctx, "load", seqs[0], 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "ok" {
		t.Fatalf("noop job state %s, want ok", st.State)
	}
}
