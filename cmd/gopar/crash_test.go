package main

import (
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/wal"
)

// The SIGKILL crash harness: run a real gopar binary with a --wal,
// kill it at a randomized point, resume, and repeat until the run
// completes. After every attempt it checks the exactly-once contract:
//
//   - A job whose completion record was durable before a resume must
//     NOT run again (its side effect must not reappear).
//   - A job in the crash window — in-flight, or finished but with its
//     completion not yet durable — may legitimately run again
//     (at-least-once is the best any log can do for external side
//     effects), but must be re-run by the resume so nothing is lost.
//   - After the final clean run every job has executed at least once
//     and the log replays to all-completed with nothing in flight.
//
// Trial count: GOPAR_CRASH_TRIALS (CI sets 100+ for the required
// >=100 randomized kill points; the local default keeps `go test`
// fast). Each trial usually lands several kills since resumes are
// killed too.

// crashTrialCount returns how many randomized trials to run.
func crashTrialCount(t *testing.T) int {
	if s := os.Getenv("GOPAR_CRASH_TRIALS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad GOPAR_CRASH_TRIALS=%q", s)
		}
		return n
	}
	if testing.Short() {
		return 3
	}
	return 12
}

// appendedSeqs reads the effects file from offset and returns the job
// seqs appended since, plus the new offset.
func appendedSeqs(t *testing.T, path string, offset int64) (map[int]int, int64) {
	t.Helper()
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, 0
	}
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(b)) < offset {
		t.Fatalf("effects file shrank: %d < %d", len(b), offset)
	}
	seqs := make(map[int]int)
	for _, line := range strings.Split(string(b[offset:]), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		n, err := strconv.Atoi(line)
		if err != nil {
			t.Fatalf("bad effects line %q", line)
		}
		seqs[n]++
	}
	return seqs, int64(len(b))
}

// crashTrial runs one kill/resume cycle to convergence and returns how
// many SIGKILLs it landed and how many torn tails replay repaired.
func crashTrial(t *testing.T, r *rand.Rand, policy string, nJobs int) (kills, tornTails int) {
	t.Helper()
	dir := t.TempDir()
	effects := filepath.Join(dir, "effects")
	walDir := filepath.Join(dir, "wal")

	// The template must consume {} — with no placeholder gopar appends
	// the arg, which would corrupt the trailing sleep. Args are the seq
	// numbers themselves, so {} doubles as the effect marker.
	argv := []string{
		"--wal", walDir, "--wal-sync", policy,
		"-j", "4", "--quiet", "--shell",
		fmt.Sprintf("echo {} >> %s; sleep 0.005", effects),
		":::",
	}
	for i := 1; i <= nJobs; i++ {
		argv = append(argv, strconv.Itoa(i))
	}

	var offset int64
	executed := make(map[int]bool)
	for attempt := 0; ; attempt++ {
		if attempt > 60 {
			t.Fatalf("policy=%s: no convergence after %d attempts", policy, attempt)
		}
		run := argv
		var durable map[int]bool
		if attempt > 0 {
			st, err := wal.Replay(walDir)
			if err != nil {
				t.Fatalf("policy=%s attempt=%d: replay before resume: %v", policy, attempt, err)
			}
			tornTails += st.TornTails
			durable = st.CompletedOK()
			run = append([]string{"--resume"}, argv...)
		}

		cmd := exec.Command(goparPath, run...)
		var output strings.Builder
		cmd.Stdout = &output
		cmd.Stderr = &output
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		// Kill the first attempt always; resumes with 40% probability so
		// multi-crash chains happen but the trial still converges.
		kill := attempt == 0 || r.Intn(100) < 40
		var killed bool
		if kill {
			delay := time.Duration(2+r.Intn(100)) * time.Millisecond
			done := make(chan error, 1)
			go func() { done <- cmd.Wait() }()
			select {
			case <-time.After(delay):
				cmd.Process.Kill() // SIGKILL: no cleanup, no final flush
				<-done
				killed = true
				kills++
				// Jobs run in their own process groups, so an in-flight
				// `echo >> effects` can outlive gopar by a few ms. Let
				// orphans drain before snapshotting the effects file.
				time.Sleep(150 * time.Millisecond)
			case err := <-done:
				if err != nil {
					t.Fatalf("policy=%s attempt=%d: gopar failed: %v\n%s", policy, attempt, err, output.String())
				}
			}
		} else if err := cmd.Wait(); err != nil {
			t.Fatalf("policy=%s attempt=%d: gopar failed: %v\n%s", policy, attempt, err, output.String())
		}

		var ran map[int]int
		ran, offset = appendedSeqs(t, effects, offset)
		for seq, n := range ran {
			executed[seq] = true
			// The exactly-once check: a durably-completed job must never
			// execute again after a resume.
			if durable[seq] {
				t.Errorf("policy=%s attempt=%d: job %d re-ran %d time(s) after its completion was durable",
					policy, attempt, seq, n)
			}
		}

		if !killed {
			break
		}
	}

	// Final state: nothing lost, log fully settled.
	for seq := 1; seq <= nJobs; seq++ {
		if !executed[seq] {
			t.Errorf("policy=%s: job %d never executed", policy, seq)
		}
	}
	st, err := wal.Replay(walDir)
	if err != nil {
		t.Fatalf("policy=%s: final replay: %v", policy, err)
	}
	tornTails += st.TornTails
	if got := len(st.CompletedOK()); got != nJobs {
		t.Errorf("policy=%s: final log has %d completed-ok jobs, want %d", policy, got, nJobs)
	}
	if len(st.InFlight) != 0 {
		t.Errorf("policy=%s: final log leaves %d jobs in flight: %v", policy, len(st.InFlight), st.InFlight)
	}
	return kills, tornTails
}

func TestCrashHarness(t *testing.T) {
	if testing.Short() && os.Getenv("GOPAR_CRASH_TRIALS") == "" {
		t.Log("running reduced trial count under -short")
	}
	trials := crashTrialCount(t)
	seed := time.Now().UnixNano()
	if s := os.Getenv("GOPAR_CRASH_SEED"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad GOPAR_CRASH_SEED=%q", s)
		}
		seed = n
	}
	t.Logf("seed=%d trials=%d (rerun a failure with GOPAR_CRASH_SEED=%d)", seed, trials, seed)
	r := rand.New(rand.NewSource(seed))

	policies := []string{"always", "interval", "never"}
	totalKills, totalTorn := 0, 0
	for i := 0; i < trials; i++ {
		policy := policies[i%len(policies)]
		kills, torn := crashTrial(t, r, policy, 40)
		totalKills += kills
		totalTorn += torn
		if t.Failed() {
			t.Fatalf("stopping after failing trial %d (policy=%s)", i, policy)
		}
	}
	t.Logf("%d trials: %d SIGKILLs landed, %d torn tails repaired on replay", trials, totalKills, totalTorn)
	if totalKills < trials {
		t.Errorf("only %d kills across %d trials; harness should land at least one per trial", totalKills, trials)
	}
}

// TestCrashHarnessDistSessionLoss crosses the WAL with distributed
// session retirement: a worker dies mid-run (the pool re-dispatches its
// jobs on a fresh session), then gopar itself is SIGKILLed, then the
// run resumes against the surviving worker. Durably-completed jobs must
// not re-run even though the pool's own re-dispatch path was exercised
// in the same run.
func TestCrashHarnessDistSessionLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("dist crash trial skipped in -short")
	}
	dir := t.TempDir()
	effects := filepath.Join(dir, "effects")
	walDir := filepath.Join(dir, "wal")
	gopardPath := buildGopard(t, dir)

	a0, _ := startGopard(t, gopardPath, "-slots", "2", "-name", "cw0")
	a1, _, victim := startGopardProc(t, gopardPath, "-slots", "2", "-name", "cw1")

	const nJobs = 30
	argv := []string{
		"--wal", walDir, "--wal-sync", "always",
		"-S", "2/" + a0 + ",2/" + a1, "--retries", "3", "--quiet", "--shell",
		fmt.Sprintf("echo {} >> %s; sleep 0.01", effects),
		":::",
	}
	for i := 1; i <= nJobs; i++ {
		argv = append(argv, strconv.Itoa(i))
	}

	// Run 1: kill the worker mid-run, then SIGKILL gopar shortly after —
	// the crash lands while the pool is re-dispatching the lost session's
	// jobs.
	cmd := exec.Command(goparPath, argv...)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond)
	victim.Kill()
	time.Sleep(60 * time.Millisecond)
	cmd.Process.Kill()
	cmd.Wait()
	time.Sleep(150 * time.Millisecond)

	st, err := wal.Replay(walDir)
	if err != nil {
		t.Fatalf("replay after crash: %v", err)
	}
	durable := st.CompletedOK()
	_, offset := appendedSeqs(t, effects, 0)

	// Run 2: resume on the surviving worker only.
	resume := append([]string{"--resume"}, argv...)
	for i, a := range resume {
		if a == "2/"+a0+",2/"+a1 {
			resume[i] = "2/" + a0
		}
	}
	out, err := exec.Command(goparPath, resume...).CombinedOutput()
	if err != nil {
		t.Fatalf("resume run failed: %v\n%s", err, out)
	}

	ran, _ := appendedSeqs(t, effects, offset)
	for seq := range ran {
		if durable[seq] {
			t.Errorf("job %d re-ran on resume despite a durable completion", seq)
		}
	}
	executed, _ := appendedSeqs(t, effects, 0)
	for seq := 1; seq <= nJobs; seq++ {
		if executed[seq] == 0 {
			t.Errorf("job %d never executed", seq)
		}
	}
	final, err := wal.Replay(walDir)
	if err != nil {
		t.Fatalf("final replay: %v", err)
	}
	if got := len(final.CompletedOK()); got != nJobs {
		t.Errorf("final log has %d completed-ok jobs, want %d", got, nJobs)
	}
}
