package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/span"
)

// buildGopar compiles the binary once per test run.
var goparPath string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "gopar-build-*")
	if err != nil {
		os.Exit(1)
	}
	goparPath = filepath.Join(dir, "gopar")
	cmd := exec.Command("go", "build", "-o", goparPath, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		os.Stderr.Write(out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func gopar(t *testing.T, stdin string, argv ...string) (stdout, stderr string, exit int) {
	t.Helper()
	cmd := exec.Command(goparPath, argv...)
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	var out, errb strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &errb
	err := cmd.Run()
	exit = 0
	if ee, ok := err.(*exec.ExitError); ok {
		exit = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("running gopar: %v", err)
	}
	return out.String(), errb.String(), exit
}

func TestCLIBasic(t *testing.T) {
	out, _, exit := gopar(t, "", "-quiet", "-k", "echo task {#}: {}", ":::", "a", "b")
	if exit != 0 {
		t.Fatalf("exit = %d", exit)
	}
	if out != "task 1: a\ntask 2: b\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestCLIStdin(t *testing.T) {
	out, _, exit := gopar(t, "x\ny\n", "-quiet", "-k", "echo got {}")
	if exit != 0 || out != "got x\ngot y\n" {
		t.Fatalf("exit=%d out=%q", exit, out)
	}
}

func TestCLIPipeMode(t *testing.T) {
	out, _, exit := gopar(t, "1\n2\n3\n4\n5\n", "-quiet", "--pipe", "--block", "4", "wc -l")
	if exit != 0 {
		t.Fatalf("exit = %d", exit)
	}
	total := 0
	for _, f := range strings.Fields(out) {
		switch f {
		case "1":
			total++
		case "2":
			total += 2
		case "3":
			total += 3
		default:
			t.Fatalf("unexpected wc output %q in %q", f, out)
		}
	}
	if total != 5 {
		t.Fatalf("blocks sum to %d lines, want 5 (out=%q)", total, out)
	}
}

func TestCLIFailureExitCode(t *testing.T) {
	_, _, exit := gopar(t, "", "-quiet", `sh -c "exit 1"`, ":::", "a", "b", "c")
	if exit != 3 {
		t.Fatalf("exit = %d, want 3 (failed-job count)", exit)
	}
}

func TestCLIDryRun(t *testing.T) {
	out, _, exit := gopar(t, "", "-quiet", "-k", "--dry-run", "convert {} {.}.png", ":::", "a.jpg")
	if exit != 0 || out != "convert a.jpg a.png\n" {
		t.Fatalf("exit=%d out=%q", exit, out)
	}
}

func TestCLITag(t *testing.T) {
	out, _, _ := gopar(t, "", "-quiet", "-k", "--tag", "echo val", ":::", "k1")
	if out != "k1\tval k1\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestCLIJoblogAndResume(t *testing.T) {
	dir := t.TempDir()
	log := filepath.Join(dir, "job.log")
	// First run: 'b' fails.
	_, _, exit := gopar(t, "", "-quiet", "--joblog", log,
		`sh -c "[ {} != b ] || exit 9; echo ok-{}"`, ":::", "a", "b", "c")
	if exit != 1 {
		t.Fatalf("first run exit = %d", exit)
	}
	// Resume: only 'b' reruns (and succeeds this time since the test
	// reruns the same command — use a command that succeeds always).
	out, _, exit := gopar(t, "", "-quiet", "-k", "--joblog", log, "--resume",
		"echo rerun-{}", ":::", "a", "b", "c")
	if exit != 0 {
		t.Fatalf("resume exit = %d", exit)
	}
	if out != "rerun-b\n" {
		t.Fatalf("resume out = %q, want only b to rerun", out)
	}
}

func TestCLIHaltNow(t *testing.T) {
	out, _, exit := gopar(t, "", "-quiet", "-j", "1", "--halt", "now,fail=1",
		`sh -c "[ {} != a ] || exit 1; echo ran-{}"`, ":::", "a", "b", "c", "d")
	if exit == 0 {
		t.Fatal("halt run reported success")
	}
	if strings.Contains(out, "ran-d") && strings.Contains(out, "ran-c") && strings.Contains(out, "ran-b") {
		t.Fatalf("halt did not stop the run: %q", out)
	}
}

func TestCLIGPUEnv(t *testing.T) {
	out, _, exit := gopar(t, "", "-quiet", "-j", "1", "--gpu-env", "HIP",
		`sh -c 'echo dev=$HIP_VISIBLE_DEVICES'`, ":::", "x")
	if exit != 0 || strings.TrimSpace(out) != "dev=0" {
		t.Fatalf("exit=%d out=%q", exit, out)
	}
}

func TestCLIZipAndFileSource(t *testing.T) {
	dir := t.TempDir()
	f := filepath.Join(dir, "in.txt")
	os.WriteFile(f, []byte("p\nq\n"), 0o644)
	out, _, _ := gopar(t, "", "-quiet", "-k", "echo f={}", "::::", f)
	if out != "f=p\nf=q\n" {
		t.Fatalf("file source out = %q", out)
	}
	out, _, _ = gopar(t, "", "-quiet", "-k", "--dry-run", "pair {1}-{2}", ":::", "a", "b", ":::+", "1", "2")
	if out != "pair a-1\npair b-2\n" {
		t.Fatalf("zip out = %q", out)
	}
}

func TestCLISemMode(t *testing.T) {
	dir := t.TempDir()
	out, _, exit := gopar(t, "", "sem", "--id", "it", "--semdir", dir, "-j", "2", "echo", "sem-ok")
	if exit != 0 || strings.TrimSpace(out) != "sem-ok" {
		t.Fatalf("exit=%d out=%q", exit, out)
	}
	// Slot files cleaned up after release.
	entries, _ := os.ReadDir(filepath.Join(dir, "it"))
	if len(entries) != 0 {
		t.Fatalf("leaked semaphore slots: %v", entries)
	}
}

func TestCLIUsageErrors(t *testing.T) {
	_, _, exit := gopar(t, "", ":::", "a")
	if exit == 0 {
		t.Fatal("missing command accepted")
	}
	_, _, exit = gopar(t, "", "-quiet", "--halt", "bogus", "echo", ":::", "a")
	if exit == 0 {
		t.Fatal("bad halt accepted")
	}
}

func TestCLIColsep(t *testing.T) {
	out, _, exit := gopar(t, "a\t1\nb\t2\n", "-quiet", "-k", "--colsep", `\t`, "echo {2}={1}")
	if exit != 0 || out != "1=a\n2=b\n" {
		t.Fatalf("exit=%d out=%q", exit, out)
	}
}

func TestCLIShufDeterministic(t *testing.T) {
	args := []string{"-quiet", "-j", "1", "--shuf", "--shuf-seed", "9", "echo {}", ":::", "a", "b", "c", "d", "e"}
	out1, _, _ := gopar(t, "", args...)
	out2, _, _ := gopar(t, "", args...)
	if out1 != out2 {
		t.Fatalf("same-seed shuffles differ: %q vs %q", out1, out2)
	}
	if out1 == "a\nb\nc\nd\ne\n" {
		t.Log("shuffle produced identity permutation (possible but unlikely)")
	}
	if strings.Count(out1, "\n") != 5 {
		t.Fatalf("out = %q", out1)
	}
}

func TestCLIResultsDir(t *testing.T) {
	dir := t.TempDir()
	_, _, exit := gopar(t, "", "-quiet", "--results", dir, "echo out-{}", ":::", "x", "y")
	if exit != 0 {
		t.Fatalf("exit = %d", exit)
	}
	got, err := os.ReadFile(filepath.Join(dir, "1", "stdout"))
	if err != nil || strings.TrimSpace(string(got)) != "out-x" {
		t.Fatalf("results stdout = %q, %v", got, err)
	}
	ev, err := os.ReadFile(filepath.Join(dir, "2", "exitval"))
	if err != nil || strings.TrimSpace(string(ev)) != "0" {
		t.Fatalf("exitval = %q, %v", ev, err)
	}
}

func TestCLIProgress(t *testing.T) {
	// Under the test harness stderr is a pipe, not a TTY: progress must
	// degrade to plain newline-terminated lines with no carriage-return
	// redraw, so captured logs stay clean and stdout (job output) is
	// never interleaved with control characters.
	stdout, stderr, exit := gopar(t, "", "--progress", "-quiet", "-k", "echo {}", ":::", "a", "b")
	if exit != 0 {
		t.Fatalf("exit = %d", exit)
	}
	if !strings.Contains(stderr, "done") {
		t.Fatalf("progress output missing: %q", stderr)
	}
	if strings.Contains(stderr, "\r") || strings.Contains(stderr, "\033[") {
		t.Fatalf("non-TTY progress used terminal control characters: %q", stderr)
	}
	if stdout != "a\nb\n" {
		t.Fatalf("progress leaked into stdout: %q", stdout)
	}
}

// startGopar launches gopar with stdin held open and returns the stdin
// pipe plus a channel yielding stderr lines (consumed continuously so
// the child never blocks on a full pipe).
func startGopar(t *testing.T, argv ...string) (io.WriteCloser, *exec.Cmd, chan string) {
	t.Helper()
	cmd := exec.Command(goparPath, argv...)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	stderrPipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stdout = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { stdin.Close(); cmd.Process.Kill(); cmd.Wait() })
	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(stderrPipe)
		for sc.Scan() {
			select {
			case lines <- sc.Text():
			default: // keep draining even if nobody is listening
			}
		}
		close(lines)
	}()
	return stdin, cmd, lines
}

// awaitMetricsURL watches stderr lines for the serving-metrics banner.
func awaitMetricsURL(t *testing.T, lines chan string) string {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatal("gopar exited before announcing metrics endpoint")
			}
			if i := strings.Index(line, "serving metrics on "); i >= 0 {
				return strings.TrimSpace(line[i+len("serving metrics on "):])
			}
		case <-deadline:
			t.Fatal("metrics endpoint never announced")
		}
	}
}

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("scraping %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	return string(body)
}

func TestCLIMetricsLiveScrapeMatchesJoblog(t *testing.T) {
	// The acceptance scenario: curl the live /metrics endpoint while a
	// run is in flight, and verify the scraped counters match the final
	// joblog accounting exactly. Stdin is held open so the run cannot
	// end before the scrape.
	dir := t.TempDir()
	logPath := filepath.Join(dir, "job.log")
	stdin, cmd, lines := startGopar(t, "-quiet", "--metrics-addr", "127.0.0.1:0",
		"--joblog", logPath, "echo {}")
	url := awaitMetricsURL(t, lines)

	if _, err := io.WriteString(stdin, "a\nb\nc\n"); err != nil {
		t.Fatal(err)
	}

	var body string
	deadline := time.Now().Add(15 * time.Second)
	for {
		body = scrape(t, url)
		if strings.Contains(body, `gopar_jobs_finished_total{outcome="ok"} 3`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("finished counter never reached 3; last scrape:\n%s", body)
		}
		time.Sleep(25 * time.Millisecond)
	}
	// Scraped mid-run (process still alive, stdin open), the full
	// contract is visible and internally consistent.
	for _, line := range []string{
		"gopar_jobs_queued_total 3",
		"gopar_jobs_started_total 3",
		`gopar_jobs_finished_total{outcome="fail"} 0`,
		`gopar_jobs_finished_total{outcome="killed"} 0`,
		"gopar_slots_busy 0",
		"gopar_queue_depth 0",
		"# TYPE gopar_dispatch_latency_seconds histogram",
		"gopar_dispatch_latency_seconds_count 3",
		"# TYPE gopar_throughput_procs_per_second gauge",
	} {
		if !strings.Contains(body, line) {
			t.Fatalf("live scrape missing %q:\n%s", line, body)
		}
	}

	stdin.Close()
	if err := cmd.Wait(); err != nil {
		t.Fatalf("gopar exit: %v", err)
	}
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	// Joblog: header line + one line per job; every job exited 0. The
	// scraped ok-counter and the joblog agree.
	jobLines := 0
	for _, l := range strings.Split(strings.TrimSpace(string(data)), "\n")[1:] {
		if strings.TrimSpace(l) != "" {
			jobLines++
			if !strings.Contains(l, "\t0\t") {
				t.Fatalf("non-zero exit in joblog line %q", l)
			}
		}
	}
	if jobLines != 3 {
		t.Fatalf("joblog has %d job lines, scrape said 3:\n%s", jobLines, data)
	}
}

func TestCLIEventsAndTraceStreams(t *testing.T) {
	dir := t.TempDir()
	eventsPath := filepath.Join(dir, "run.jsonl")
	tracePath := filepath.Join(dir, "run.trace.json")
	_, _, exit := gopar(t, "", "-quiet", "--events", eventsPath, "--trace", tracePath,
		"echo {}", ":::", "a", "b")
	if exit != 0 {
		t.Fatalf("exit = %d", exit)
	}

	data, err := os.ReadFile(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		counts[rec["type"].(string)]++
	}
	if counts["queued"] != 2 || counts["started"] != 2 || counts["finished"] != 2 {
		t.Fatalf("event counts = %v", counts)
	}

	traceData, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var slices []map[string]any
	if err := json.Unmarshal(traceData, &slices); err != nil {
		t.Fatalf("trace not valid JSON: %v\n%s", err, traceData)
	}
	if len(slices) != 2 {
		t.Fatalf("trace slices = %d, want 2", len(slices))
	}
	for _, s := range slices {
		if s["ph"] != "X" || !strings.HasPrefix(s["name"].(string), "echo ") {
			t.Fatalf("slice = %v", s)
		}
	}
}

func TestCLISignalFlushesSinks(t *testing.T) {
	// SIGTERM mid-run must still leave parseable --events and --spans
	// files: the recorder flushes in-flight jobs as incomplete/killed
	// records instead of truncating mid-line or dropping them.
	dir := t.TempDir()
	eventsPath := filepath.Join(dir, "run.jsonl")
	spansPath := filepath.Join(dir, "spans.jsonl")
	stdin, cmd, _ := startGopar(t, "-quiet", "--events", eventsPath, "--spans", spansPath,
		fmt.Sprintf(`sh -c "touch %s/up-{#}; sleep 60"`, dir))
	if _, err := io.WriteString(stdin, "a\nb\n"); err != nil {
		t.Fatal(err)
	}
	// Wait until both jobs are demonstrably executing.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, e1 := os.Stat(filepath.Join(dir, "up-1"))
		_, e2 := os.Stat(filepath.Join(dir, "up-2"))
		if e1 == nil && e2 == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("jobs never started")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() // non-zero exit expected: the run was interrupted

	data, err := os.ReadFile(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("unparseable events line after SIGTERM %q: %v", line, err)
		}
		counts[rec["type"].(string)]++
	}
	if counts["queued"] < 2 || counts["started"] < 2 {
		t.Fatalf("event counts after SIGTERM = %v", counts)
	}

	sf, err := os.Open(spansPath)
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	spans, err := span.Parse(sf)
	if err != nil {
		t.Fatalf("span file unparseable after SIGTERM: %v", err)
	}
	if len(spans) != 2 {
		t.Fatalf("spans after SIGTERM = %d, want 2", len(spans))
	}
	for _, s := range spans {
		if s.Queued.IsZero() || s.Started.IsZero() {
			t.Fatalf("span missing timeline: %+v", s)
		}
		if s.OK {
			t.Fatalf("killed job recorded as ok: %+v", s)
		}
		if !s.Incomplete && !s.Killed {
			t.Fatalf("interrupted span neither incomplete nor killed: %+v", s)
		}
	}
}

func TestCLIMetricsAnnounceBeforeDispatch(t *testing.T) {
	// Scripts that parse the ":0" announce line to discover the port must
	// see it before any job output: the endpoint goes live (and is
	// announced) before the engine dispatches its first job. Jobs here
	// write a marker to stderr the moment they run, so ordering is
	// observable on a single stream.
	dir := t.TempDir()
	gate := filepath.Join(dir, "gate")
	stdin, cmd, lines := startGopar(t, "-quiet", "--metrics-addr", "127.0.0.1:0",
		fmt.Sprintf(`sh -c "echo RUNNING-{} >&2; while [ ! -e %s ]; do sleep 0.02; done"`, gate),
		":::", "a", "b")
	stdin.Close() // inputs come from the ::: group

	var url string
	deadline := time.After(10 * time.Second)
	for url == "" {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatal("gopar exited before announcing metrics endpoint")
			}
			if strings.Contains(line, "RUNNING-") {
				t.Fatalf("job dispatched before metrics announcement: %q", line)
			}
			if i := strings.Index(line, "serving metrics on "); i >= 0 {
				url = strings.TrimSpace(line[i+len("serving metrics on "):])
			}
		case <-deadline:
			t.Fatal("metrics endpoint never announced")
		}
	}

	// Scripted scrape while jobs are gated: the endpoint is answering and
	// nothing has finished yet.
	body := scrape(t, url)
	if !strings.Contains(body, `gopar_jobs_finished_total{outcome="ok"} 0`) {
		t.Fatalf("jobs finished before gate opened:\n%s", body)
	}
	// The binary was built by this test's own toolchain, so its
	// goversion label must match runtime.Version here.
	if !strings.Contains(body, `gopar_build_info{`) ||
		!strings.Contains(body, `goversion="`+runtime.Version()+`"`) {
		t.Fatalf("build info series missing:\n%s", body)
	}
	if !strings.Contains(body, "gopar_start_time_seconds ") {
		t.Fatalf("start-time gauge missing:\n%s", body)
	}

	if err := os.WriteFile(gate, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("gopar exit: %v", err)
	}
}

func TestCLIReportFromRunSpans(t *testing.T) {
	// End-to-end: a real run streams --spans, then `gopar report` turns
	// the file into the overhead-attribution tables and JSON document.
	dir := t.TempDir()
	spansPath := filepath.Join(dir, "spans.jsonl")
	_, _, exit := gopar(t, "", "-quiet", "--spans", spansPath,
		"echo {}", ":::", "a", "b", "c")
	if exit != 0 {
		t.Fatalf("run exit = %d", exit)
	}

	jsonPath := filepath.Join(dir, "report.json")
	tracePath := filepath.Join(dir, "trace.json")
	out, stderr, exit := gopar(t, "", "report", "--spans", spansPath,
		"--json", jsonPath, "--trace", tracePath)
	if exit != 0 {
		t.Fatalf("report exit = %d, stderr:\n%s", exit, stderr)
	}
	for _, want := range []string{"Run summary", "Overhead decomposition", "Per-phase latency", "Critical path"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report output missing %q:\n%s", want, out)
		}
	}

	var rep map[string]any
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report JSON invalid: %v", err)
	}
	if rep["jobs"] != 3.0 || rep["failed"] != 0.0 {
		t.Fatalf("report jobs/failed = %v/%v", rep["jobs"], rep["failed"])
	}
	if rep["makespan_s"].(float64) <= 0 || rep["exec_total_s"].(float64) <= 0 {
		t.Fatalf("report totals not positive: %v", rep)
	}

	var slices []map[string]any
	td, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(td, &slices); err != nil || len(slices) == 0 {
		t.Fatalf("span trace invalid (%v) or empty:\n%s", err, td)
	}
}

func TestCLIReportSimGoldenRoundTrip(t *testing.T) {
	// --sim is deterministic for a fixed seed, so a report checked
	// against its own JSON output must pass the golden gate, and the
	// simulated dispatch rate must reproduce the paper's ~470 procs/s.
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "report.json")
	simArgs := []string{"report", "--sim", "--sim-tasks", "300", "--sim-seed", "7",
		"--sim-runtime", "shifter"}
	_, stderr, exit := gopar(t, "", append(simArgs, "--json", jsonPath)...)
	if exit != 0 {
		t.Fatalf("sim report exit = %d, stderr:\n%s", exit, stderr)
	}

	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep map[string]any
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	rate := rep["dispatch_rate_per_instance"].(float64)
	if rate < 470*0.95 || rate > 470*1.05 {
		t.Fatalf("sim dispatch rate = %.1f, want ~470", rate)
	}
	cpct := rep["container_pct"].(float64)
	if cpct < 0.17 || cpct > 0.21 {
		t.Fatalf("sim container share = %.3f, want ~0.19", cpct)
	}

	_, stderr, exit = gopar(t, "", append(simArgs, "--golden", jsonPath)...)
	if exit != 0 || !strings.Contains(stderr, "golden check passed") {
		t.Fatalf("golden round trip failed: exit=%d stderr:\n%s", exit, stderr)
	}

	// A golden with a wrong count must fail the gate.
	rep["jobs"] = 299.0
	bad, _ := json.Marshal(rep)
	badPath := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	_, stderr, exit = gopar(t, "", append(simArgs, "--golden", badPath)...)
	if exit != 1 || !strings.Contains(stderr, "golden: jobs") {
		t.Fatalf("bad golden accepted: exit=%d stderr:\n%s", exit, stderr)
	}
}

// buildGopard compiles the worker daemon into dir.
func buildGopard(t *testing.T, dir string) string {
	t.Helper()
	gopardPath := filepath.Join(dir, "gopard")
	if out, err := exec.Command("go", "build", "-o", gopardPath, "../gopard").CombinedOutput(); err != nil {
		t.Fatalf("building gopard: %v\n%s", err, out)
	}
	return gopardPath
}

// startGopard launches one worker daemon on a fresh port and returns
// its address plus a channel of its stderr log lines.
func startGopard(t *testing.T, gopardPath string, argv ...string) (string, chan string) {
	t.Helper()
	addr, lines, _ := startGopardProc(t, gopardPath, argv...)
	return addr, lines
}

// startGopardProc is startGopard plus the worker's process handle, for
// tests that kill the worker mid-run (crash harness).
func startGopardProc(t *testing.T, gopardPath string, argv ...string) (string, chan string, *os.Process) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close() // free the port for gopard (small race, acceptable in tests)
	cmd := exec.Command(gopardPath, append([]string{"-listen", addr}, argv...)...)
	stderrPipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })
	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(stderrPipe)
		for sc.Scan() {
			select {
			case lines <- sc.Text():
			default:
			}
		}
		close(lines)
	}()
	waitForWorker(t, addr)
	return addr, lines, cmd.Process
}

func waitForWorker(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			conn.Close()
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker %s never came up", addr)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestCLIDistributedMetricsExposition(t *testing.T) {
	// -S mode acceptance: the coordinator's /metrics is the single
	// scrape point for fleet state — run counters, pool health by slot
	// state, and per-worker series piggybacked over the dist protocol —
	// while each gopard also serves its own local endpoint.
	gopardPath := buildGopard(t, t.TempDir())
	a0, w0lines := startGopard(t, gopardPath, "-slots", "2", "-name", "w0", "-metrics-addr", "127.0.0.1:0")
	a1, _ := startGopard(t, gopardPath, "-slots", "2", "-name", "w1")
	gopardURL := awaitMetricsURL(t, w0lines)

	stdin, cmd, lines := startGopar(t, "-quiet", "-S", "2/"+a0+",2/"+a1,
		"--metrics-addr", "127.0.0.1:0", "echo via {}")
	url := awaitMetricsURL(t, lines)
	if _, err := io.WriteString(stdin, "a\nb\nc\nd\n"); err != nil {
		t.Fatal(err)
	}

	var body string
	deadline := time.Now().Add(15 * time.Second)
	for {
		body = scrape(t, url)
		if strings.Contains(body, `gopar_jobs_finished_total{outcome="ok"} 4`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("finished counter never reached 4:\n%s", body)
		}
		time.Sleep(25 * time.Millisecond)
	}
	for _, line := range []string{
		`gopar_pool_slots{state="total"} 4`,
		`gopar_pool_slots{state="live"} 4`,
		`gopar_pool_slots{state="redialing"} 0`,
		`gopar_pool_slots{state="lost"} 0`,
	} {
		if !strings.Contains(body, line) {
			t.Fatalf("pool health series missing %q:\n%s", line, body)
		}
	}
	// Per-worker series appear as soon as responses carry snapshots; w0
	// holds the pool's first free connection so it always served jobs.
	if !strings.Contains(body, `gopar_worker_slots{worker="w0"} 2`) ||
		!strings.Contains(body, `gopar_worker_jobs_total{worker="w0",outcome="ok"}`) {
		t.Fatalf("per-worker series missing:\n%s", body)
	}

	// The worker's own endpoint reports the same execution counters.
	wbody := scrape(t, gopardURL)
	if !strings.Contains(wbody, "gopard_slots 2") || !strings.Contains(wbody, "gopard_busy 0") {
		t.Fatalf("gopard exposition wrong:\n%s", wbody)
	}
	started := -1.0
	for _, l := range strings.Split(wbody, "\n") {
		if v, ok := strings.CutPrefix(l, "gopard_jobs_started_total "); ok {
			fmt.Sscanf(v, "%g", &started)
		}
	}
	if started < 1 {
		t.Fatalf("gopard started counter = %v, want >= 1:\n%s", started, wbody)
	}

	stdin.Close()
	if err := cmd.Wait(); err != nil {
		t.Fatalf("gopar exit: %v", err)
	}
}

func TestCLIDistributedWorkers(t *testing.T) {
	// Build and start two gopard workers, then run gopar -S against them.
	dir := t.TempDir()
	gopardPath := buildGopard(t, dir)
	var addrs []string
	for i := 0; i < 2; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := l.Addr().String()
		l.Close() // free the port for gopard (small race, acceptable in tests)
		cmd := exec.Command(gopardPath, "-listen", addr, "-slots", "2", "-name", fmt.Sprintf("w%d", i))
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })
		addrs = append(addrs, addr)
	}
	// Wait for both workers to accept.
	for _, addr := range addrs {
		deadline := time.Now().Add(10 * time.Second)
		for {
			conn, err := net.Dial("tcp", addr)
			if err == nil {
				conn.Close()
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("worker %s never came up", addr)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	log := filepath.Join(dir, "dist.log")
	out, _, exit := gopar(t, "", "-quiet", "-k", "-S", "2/"+addrs[0]+",2/"+addrs[1],
		"--joblog", log, "echo via {}", ":::", "a", "b", "c", "d")
	if exit != 0 {
		t.Fatalf("exit = %d", exit)
	}
	if out != "via a\nvia b\nvia c\nvia d\n" {
		t.Fatalf("out = %q", out)
	}
	data, err := os.ReadFile(log)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\tw0\t") && !strings.Contains(string(data), "\tw1\t") {
		t.Fatalf("joblog has no worker hosts:\n%s", data)
	}
}
