package main

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildGopar compiles the binary once per test run.
var goparPath string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "gopar-build-*")
	if err != nil {
		os.Exit(1)
	}
	goparPath = filepath.Join(dir, "gopar")
	cmd := exec.Command("go", "build", "-o", goparPath, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		os.Stderr.Write(out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func gopar(t *testing.T, stdin string, argv ...string) (stdout, stderr string, exit int) {
	t.Helper()
	cmd := exec.Command(goparPath, argv...)
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	var out, errb strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &errb
	err := cmd.Run()
	exit = 0
	if ee, ok := err.(*exec.ExitError); ok {
		exit = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("running gopar: %v", err)
	}
	return out.String(), errb.String(), exit
}

func TestCLIBasic(t *testing.T) {
	out, _, exit := gopar(t, "", "-quiet", "-k", "echo task {#}: {}", ":::", "a", "b")
	if exit != 0 {
		t.Fatalf("exit = %d", exit)
	}
	if out != "task 1: a\ntask 2: b\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestCLIStdin(t *testing.T) {
	out, _, exit := gopar(t, "x\ny\n", "-quiet", "-k", "echo got {}")
	if exit != 0 || out != "got x\ngot y\n" {
		t.Fatalf("exit=%d out=%q", exit, out)
	}
}

func TestCLIPipeMode(t *testing.T) {
	out, _, exit := gopar(t, "1\n2\n3\n4\n5\n", "-quiet", "--pipe", "--block", "4", "wc -l")
	if exit != 0 {
		t.Fatalf("exit = %d", exit)
	}
	total := 0
	for _, f := range strings.Fields(out) {
		switch f {
		case "1":
			total++
		case "2":
			total += 2
		case "3":
			total += 3
		default:
			t.Fatalf("unexpected wc output %q in %q", f, out)
		}
	}
	if total != 5 {
		t.Fatalf("blocks sum to %d lines, want 5 (out=%q)", total, out)
	}
}

func TestCLIFailureExitCode(t *testing.T) {
	_, _, exit := gopar(t, "", "-quiet", `sh -c "exit 1"`, ":::", "a", "b", "c")
	if exit != 3 {
		t.Fatalf("exit = %d, want 3 (failed-job count)", exit)
	}
}

func TestCLIDryRun(t *testing.T) {
	out, _, exit := gopar(t, "", "-quiet", "-k", "--dry-run", "convert {} {.}.png", ":::", "a.jpg")
	if exit != 0 || out != "convert a.jpg a.png\n" {
		t.Fatalf("exit=%d out=%q", exit, out)
	}
}

func TestCLITag(t *testing.T) {
	out, _, _ := gopar(t, "", "-quiet", "-k", "--tag", "echo val", ":::", "k1")
	if out != "k1\tval k1\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestCLIJoblogAndResume(t *testing.T) {
	dir := t.TempDir()
	log := filepath.Join(dir, "job.log")
	// First run: 'b' fails.
	_, _, exit := gopar(t, "", "-quiet", "--joblog", log,
		`sh -c "[ {} != b ] || exit 9; echo ok-{}"`, ":::", "a", "b", "c")
	if exit != 1 {
		t.Fatalf("first run exit = %d", exit)
	}
	// Resume: only 'b' reruns (and succeeds this time since the test
	// reruns the same command — use a command that succeeds always).
	out, _, exit := gopar(t, "", "-quiet", "-k", "--joblog", log, "--resume",
		"echo rerun-{}", ":::", "a", "b", "c")
	if exit != 0 {
		t.Fatalf("resume exit = %d", exit)
	}
	if out != "rerun-b\n" {
		t.Fatalf("resume out = %q, want only b to rerun", out)
	}
}

func TestCLIHaltNow(t *testing.T) {
	out, _, exit := gopar(t, "", "-quiet", "-j", "1", "--halt", "now,fail=1",
		`sh -c "[ {} != a ] || exit 1; echo ran-{}"`, ":::", "a", "b", "c", "d")
	if exit == 0 {
		t.Fatal("halt run reported success")
	}
	if strings.Contains(out, "ran-d") && strings.Contains(out, "ran-c") && strings.Contains(out, "ran-b") {
		t.Fatalf("halt did not stop the run: %q", out)
	}
}

func TestCLIGPUEnv(t *testing.T) {
	out, _, exit := gopar(t, "", "-quiet", "-j", "1", "--gpu-env", "HIP",
		`sh -c 'echo dev=$HIP_VISIBLE_DEVICES'`, ":::", "x")
	if exit != 0 || strings.TrimSpace(out) != "dev=0" {
		t.Fatalf("exit=%d out=%q", exit, out)
	}
}

func TestCLIZipAndFileSource(t *testing.T) {
	dir := t.TempDir()
	f := filepath.Join(dir, "in.txt")
	os.WriteFile(f, []byte("p\nq\n"), 0o644)
	out, _, _ := gopar(t, "", "-quiet", "-k", "echo f={}", "::::", f)
	if out != "f=p\nf=q\n" {
		t.Fatalf("file source out = %q", out)
	}
	out, _, _ = gopar(t, "", "-quiet", "-k", "--dry-run", "pair {1}-{2}", ":::", "a", "b", ":::+", "1", "2")
	if out != "pair a-1\npair b-2\n" {
		t.Fatalf("zip out = %q", out)
	}
}

func TestCLISemMode(t *testing.T) {
	dir := t.TempDir()
	out, _, exit := gopar(t, "", "sem", "--id", "it", "--semdir", dir, "-j", "2", "echo", "sem-ok")
	if exit != 0 || strings.TrimSpace(out) != "sem-ok" {
		t.Fatalf("exit=%d out=%q", exit, out)
	}
	// Slot files cleaned up after release.
	entries, _ := os.ReadDir(filepath.Join(dir, "it"))
	if len(entries) != 0 {
		t.Fatalf("leaked semaphore slots: %v", entries)
	}
}

func TestCLIUsageErrors(t *testing.T) {
	_, _, exit := gopar(t, "", ":::", "a")
	if exit == 0 {
		t.Fatal("missing command accepted")
	}
	_, _, exit = gopar(t, "", "-quiet", "--halt", "bogus", "echo", ":::", "a")
	if exit == 0 {
		t.Fatal("bad halt accepted")
	}
}

func TestCLIColsep(t *testing.T) {
	out, _, exit := gopar(t, "a\t1\nb\t2\n", "-quiet", "-k", "--colsep", `\t`, "echo {2}={1}")
	if exit != 0 || out != "1=a\n2=b\n" {
		t.Fatalf("exit=%d out=%q", exit, out)
	}
}

func TestCLIShufDeterministic(t *testing.T) {
	args := []string{"-quiet", "-j", "1", "--shuf", "--shuf-seed", "9", "echo {}", ":::", "a", "b", "c", "d", "e"}
	out1, _, _ := gopar(t, "", args...)
	out2, _, _ := gopar(t, "", args...)
	if out1 != out2 {
		t.Fatalf("same-seed shuffles differ: %q vs %q", out1, out2)
	}
	if out1 == "a\nb\nc\nd\ne\n" {
		t.Log("shuffle produced identity permutation (possible but unlikely)")
	}
	if strings.Count(out1, "\n") != 5 {
		t.Fatalf("out = %q", out1)
	}
}

func TestCLIResultsDir(t *testing.T) {
	dir := t.TempDir()
	_, _, exit := gopar(t, "", "-quiet", "--results", dir, "echo out-{}", ":::", "x", "y")
	if exit != 0 {
		t.Fatalf("exit = %d", exit)
	}
	got, err := os.ReadFile(filepath.Join(dir, "1", "stdout"))
	if err != nil || strings.TrimSpace(string(got)) != "out-x" {
		t.Fatalf("results stdout = %q, %v", got, err)
	}
	ev, err := os.ReadFile(filepath.Join(dir, "2", "exitval"))
	if err != nil || strings.TrimSpace(string(ev)) != "0" {
		t.Fatalf("exitval = %q, %v", ev, err)
	}
}

func TestCLIProgress(t *testing.T) {
	_, stderr, exit := gopar(t, "", "--progress", "-quiet", "echo {}", ":::", "a", "b")
	if exit != 0 {
		t.Fatalf("exit = %d", exit)
	}
	if !strings.Contains(stderr, "done") || !strings.Contains(stderr, "\r") {
		t.Fatalf("progress output missing: %q", stderr)
	}
}

func TestCLIDistributedWorkers(t *testing.T) {
	// Build and start two gopard workers, then run gopar -S against them.
	dir := t.TempDir()
	gopardPath := filepath.Join(dir, "gopard")
	if out, err := exec.Command("go", "build", "-o", gopardPath, "../gopard").CombinedOutput(); err != nil {
		t.Fatalf("building gopard: %v\n%s", err, out)
	}
	var addrs []string
	for i := 0; i < 2; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := l.Addr().String()
		l.Close() // free the port for gopard (small race, acceptable in tests)
		cmd := exec.Command(gopardPath, "-listen", addr, "-slots", "2", "-name", fmt.Sprintf("w%d", i))
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })
		addrs = append(addrs, addr)
	}
	// Wait for both workers to accept.
	for _, addr := range addrs {
		deadline := time.Now().Add(10 * time.Second)
		for {
			conn, err := net.Dial("tcp", addr)
			if err == nil {
				conn.Close()
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("worker %s never came up", addr)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	log := filepath.Join(dir, "dist.log")
	out, _, exit := gopar(t, "", "-quiet", "-k", "-S", "2/"+addrs[0]+",2/"+addrs[1],
		"--joblog", log, "echo via {}", ":::", "a", "b", "c", "d")
	if exit != 0 {
		t.Fatalf("exit = %d", exit)
	}
	if out != "via a\nvia b\nvia c\nvia d\n" {
		t.Fatalf("out = %q", out)
	}
	data, err := os.ReadFile(log)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\tw0\t") && !strings.Contains(string(data), "\tw1\t") {
		t.Fatalf("joblog has no worker hosts:\n%s", data)
	}
}
