package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"time"

	"repro/internal/flight"
	"repro/internal/profile"
)

// runDebug implements `gopar debug`: fetch a flight-recorder dump from
// a live daemon (-addr) or read a dump file written by SIGQUIT/panic
// (-file), and render it human-readably.
//
//	gopar debug -addr 127.0.0.1:7700 -token s3cret          # live table
//	gopar debug -file /tmp/flight-1234-....json             # post-mortem table
//	gopar debug -file dump.json -trace trace.json           # chrome://tracing
//	gopar debug -addr 127.0.0.1:7700 -json > dump.json      # save for later
func runDebug(argv []string) int {
	fs := flag.NewFlagSet("gopar debug", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", "", "fetch the dump from a live daemon's debug listener (host:port)")
		token   = fs.String("token", "", "debug token for -addr (sent as a bearer token)")
		file    = fs.String("file", "", "read a dump file written by SIGQUIT, panic, or a saved -json")
		asJSON  = fs.Bool("json", false, "print the raw dump JSON instead of the timeline table")
		traceTo = fs.String("trace", "", "write a Chrome/Perfetto trace (load in chrome://tracing or ui.perfetto.dev) to this file")
		timeout = fs.Duration("timeout", 10*time.Second, "HTTP timeout for -addr")
	)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: gopar debug (-addr HOST:PORT [-token T] | -file DUMP.json) [-json] [-trace OUT.json]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if (*addr == "") == (*file == "") {
		fmt.Fprintln(os.Stderr, "gopar debug: exactly one of -addr or -file is required")
		fs.Usage()
		return 2
	}

	var d *flight.Dump
	var err error
	if *file != "" {
		d, err = readDumpFile(*file)
	} else {
		d, err = fetchDump(*addr, *token, *timeout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gopar debug:", err)
		return 2
	}

	if *traceTo != "" {
		f, cerr := os.Create(*traceTo)
		if cerr != nil {
			fmt.Fprintln(os.Stderr, "gopar debug:", cerr)
			return 2
		}
		if terr := profile.FlightTrace(f, d); terr != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "gopar debug:", terr)
			return 2
		}
		if cerr := f.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "gopar debug:", cerr)
			return 2
		}
		fmt.Fprintf(os.Stderr, "gopar debug: trace written to %s (%d records)\n", *traceTo, len(d.Records))
		return 0
	}
	if *asJSON {
		if werr := d.WriteJSON(os.Stdout); werr != nil {
			fmt.Fprintln(os.Stderr, "gopar debug:", werr)
			return 2
		}
		return 0
	}
	if werr := d.WriteTable(os.Stdout); werr != nil {
		fmt.Fprintln(os.Stderr, "gopar debug:", werr)
		return 2
	}
	return 0
}

func readDumpFile(path string) (*flight.Dump, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return flight.ReadDump(f)
}

// fetchDump GETs /debug/flight from a live daemon's debug listener.
func fetchDump(addr, token string, timeout time.Duration) (*flight.Dump, error) {
	u := url.URL{Scheme: "http", Host: addr, Path: "/debug/flight"}
	req, err := http.NewRequest("GET", u.String(), nil)
	if err != nil {
		return nil, err
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	client := &http.Client{Timeout: timeout}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("GET %s: %s: %s", u.String(), resp.Status, string(body))
	}
	return flight.ReadDump(resp.Body)
}
