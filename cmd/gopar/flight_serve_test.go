package main

import (
	"context"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/flight"
	"repro/internal/jobd"
)

// TestServeFlightSIGQUIT is the flight-recorder end-to-end: a live
// `gopar serve` daemon runs real jobs, SIGQUIT makes it write a
// parseable dump file while it keeps serving, and after the daemon is
// SIGKILLed (no graceful shutdown — the black-box scenario) `gopar
// debug` renders that dump into a loadable Chrome trace.
func TestServeFlightSIGQUIT(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test skipped in -short")
	}
	dumpDir := t.TempDir()
	base, lines, proc := startServeProc(t, t.TempDir(),
		"-slots", "4", "-flight-dump", dumpDir)
	c := jobd.NewClient(base, nil)
	ctx := context.Background()

	for i := 0; i < 10; i++ {
		if _, err := c.Submit(ctx, "box", "true"); err != nil {
			t.Fatal(err)
		}
	}
	awaitBacklogDrained(t, c, "box", 60*time.Second)

	// kill -QUIT: the daemon must write a dump and stay up.
	if err := proc.Signal(syscall.SIGQUIT); err != nil {
		t.Fatal(err)
	}
	dumpPath := awaitDumpFile(t, dumpDir, 15*time.Second)

	f, err := os.Open(dumpPath)
	if err != nil {
		t.Fatal(err)
	}
	d, err := flight.ReadDump(f)
	f.Close()
	if err != nil {
		t.Fatalf("dump %s is not parseable: %v", dumpPath, err)
	}
	if d.Program != "gopar-serve" {
		t.Fatalf("dump program = %q, want gopar-serve", d.Program)
	}
	// 10 jobs × started+finished at minimum; snapshots ride along.
	if d.Events < 20 {
		t.Fatalf("dump has %d events, want >= 20", d.Events)
	}
	if len(d.Records) == 0 {
		t.Fatal("dump has no records")
	}
	snapshots := 0
	for _, rec := range d.Records {
		if rec.Kind == "snapshot" && strings.HasPrefix(rec.Source, "jobd/") {
			snapshots++
		}
	}
	if snapshots == 0 {
		t.Fatal("dump has no jobd queue snapshots")
	}

	// Still alive after the dump: the API must answer and accept work.
	if _, err := c.Queues(ctx); err != nil {
		t.Fatalf("daemon stopped serving after SIGQUIT: %v", err)
	}
	if _, err := c.Submit(ctx, "box", "true"); err != nil {
		t.Fatalf("daemon rejected work after SIGQUIT: %v", err)
	}
	awaitBacklogDrained(t, c, "box", 60*time.Second)

	// Now the crash: SIGKILL, no drain, no goodbye. The dump on disk
	// is all that's left — exactly what `gopar debug` is for.
	if err := proc.Kill(); err != nil {
		t.Fatal(err)
	}
	for range lines { // drain until the stderr pipe closes
	}

	tracePath := filepath.Join(dumpDir, "trace.json")
	out, err := exec.Command(goparPath, "debug",
		"-file", dumpPath, "-trace", tracePath).CombinedOutput()
	if err != nil {
		t.Fatalf("gopar debug: %v\n%s", err, out)
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("trace is not a JSON array of events: %v", err)
	}
	slices := 0
	for _, ev := range events {
		if ev["ph"] == "X" {
			slices++
		}
	}
	if slices < 10 {
		t.Fatalf("trace has %d job slices, want >= 10", slices)
	}
}

// awaitDumpFile polls dir for a flight-*.json dump written by the
// daemon's SIGQUIT handler (the write is asynchronous to the signal).
func awaitDumpFile(t *testing.T, dir string, timeout time.Duration) string {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		matches, err := filepath.Glob(filepath.Join(dir, "flight-*.json"))
		if err != nil {
			t.Fatal(err)
		}
		if len(matches) > 0 {
			return matches[0]
		}
		if time.Now().After(deadline) {
			t.Fatalf("no flight-*.json appeared in %s", dir)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
