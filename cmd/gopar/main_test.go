package main

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/args"
	"repro/internal/core"
)

func collect(t *testing.T, s args.Source) [][]string {
	t.Helper()
	recs, err := args.Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestSplitInputsLiteral(t *testing.T) {
	cmd, src, err := splitInputs([]string{"echo", "{}", ":::", "a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cmd, []string{"echo", "{}"}) {
		t.Fatalf("cmd = %v", cmd)
	}
	recs := collect(t, src)
	if !reflect.DeepEqual(recs, [][]string{{"a"}, {"b"}}) {
		t.Fatalf("recs = %v", recs)
	}
}

func TestSplitInputsCartesian(t *testing.T) {
	_, src, err := splitInputs([]string{"cmd", ":::", "a", "b", ":::", "1", "2"})
	if err != nil {
		t.Fatal(err)
	}
	recs := collect(t, src)
	want := [][]string{{"a", "1"}, {"a", "2"}, {"b", "1"}, {"b", "2"}}
	if !reflect.DeepEqual(recs, want) {
		t.Fatalf("recs = %v", recs)
	}
}

func TestSplitInputsZip(t *testing.T) {
	_, src, err := splitInputs([]string{"cmd", ":::", "a", "b", ":::+", "1", "2"})
	if err != nil {
		t.Fatal(err)
	}
	recs := collect(t, src)
	want := [][]string{{"a", "1"}, {"b", "2"}}
	if !reflect.DeepEqual(recs, want) {
		t.Fatalf("recs = %v", recs)
	}
}

func TestSplitInputsErrors(t *testing.T) {
	if _, _, err := splitInputs([]string{":::", "a"}); err == nil {
		t.Error("missing command accepted")
	}
	if _, _, err := splitInputs([]string{"cmd", ":::+", "a"}); err == nil {
		t.Error(":::+ without preceding group accepted")
	}
	if _, _, err := splitInputs([]string{"cmd", "::::", "f1", "f2"}); err == nil {
		t.Error(":::: with two files accepted")
	}
}

func TestSplitInputsStdinFallback(t *testing.T) {
	cmd, src, err := splitInputs([]string{"wc", "-l"})
	if err != nil {
		t.Fatal(err)
	}
	if len(cmd) != 2 || src == nil {
		t.Fatalf("cmd=%v src=%v", cmd, src)
	}
}

func TestParseHalt(t *testing.T) {
	cases := []struct {
		in   string
		want core.HaltPolicy
		ok   bool
	}{
		{"", core.HaltPolicy{}, true},
		{"soon,fail=1", core.HaltPolicy{When: core.HaltSoon, Threshold: 1}, true},
		{"now,fail=3", core.HaltPolicy{When: core.HaltNow, Threshold: 3}, true},
		{"now,success=2", core.HaltPolicy{When: core.HaltNow, Threshold: 2, OnSuccess: true}, true},
		{"now,fail=10%", core.HaltPolicy{When: core.HaltNow, Percent: 10}, true},
		{"soon,fail=2.5%", core.HaltPolicy{When: core.HaltSoon, Percent: 2.5}, true},
		{"soon,success=50%", core.HaltPolicy{When: core.HaltSoon, Percent: 50, OnSuccess: true}, true},
		{"sometime,fail=1", core.HaltPolicy{}, false},
		{"soon,fail", core.HaltPolicy{}, false},
		{"soon,fail=zero", core.HaltPolicy{}, false},
		{"soon,fail=0", core.HaltPolicy{}, false},
		{"soon,fail=0%", core.HaltPolicy{}, false},
		{"soon,fail=101%", core.HaltPolicy{}, false},
		{"soon,fail=x%", core.HaltPolicy{}, false},
		{"soon", core.HaltPolicy{}, false},
		{"soon,crash=1", core.HaltPolicy{}, false},
	}
	for _, c := range cases {
		got, err := parseHalt(c.in)
		if c.ok != (err == nil) {
			t.Errorf("parseHalt(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("parseHalt(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParseBackoff(t *testing.T) {
	cases := []struct {
		in   string
		want core.Backoff
		ok   bool
	}{
		{"", core.Backoff{}, true},
		{"1s", core.Backoff{Base: time.Second, Jitter: 0.1}, true},
		{"500ms,30s", core.Backoff{Base: 500 * time.Millisecond, Cap: 30 * time.Second, Jitter: 0.1}, true},
		{"500ms, 30s", core.Backoff{Base: 500 * time.Millisecond, Cap: 30 * time.Second, Jitter: 0.1}, true},
		{"0s", core.Backoff{}, false},
		{"-1s", core.Backoff{}, false},
		{"nope", core.Backoff{}, false},
		{"1s,500ms", core.Backoff{}, false}, // cap below base
		{"1s,nope", core.Backoff{}, false},
	}
	for _, c := range cases {
		got, err := parseBackoff(c.in)
		if c.ok != (err == nil) {
			t.Errorf("parseBackoff(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("parseBackoff(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}
