// Command gopar is a GNU-Parallel-style parallel process launcher built
// on the repro engine.
//
// Usage:
//
//	gopar [flags] command [:::  args...] [::::  argfile] [:::+ linked...]
//	... | gopar [flags] command
//
// Examples:
//
//	gopar -j 8 'gzip -9 {}' ::: *.log
//	gopar -j 128 ./payload.sh ::: $(cat inputs.txt)
//	find /data -type f | gopar -j 32 'rsync -R -Ha {} /dest/'
//	gopar -j 8 --gpu-env HIP 'celer-sim {}' ::: runs/*.inp.json
//	gopar --dry-run 'convert {} {.}.png' ::: a.jpg b.jpg
//
// The command template supports {}, {.}, {/}, {//}, {/.}, {#}, {%} and
// positional {n} forms. Multiple ::: groups combine as a cartesian
// product; :::+ zips with the previous group; :::: reads a file.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/args"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/flight"
	"repro/internal/gpu"
	"repro/internal/profile"
	"repro/internal/span"
	"repro/internal/telemetry"
	"repro/internal/wal"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "sem":
			os.Exit(runSem(os.Args[2:]))
		case "report":
			os.Exit(runReport(os.Args[2:]))
		case "serve":
			os.Exit(runServe(os.Args[2:]))
		case "debug":
			os.Exit(runDebug(os.Args[2:]))
		}
	}
	os.Exit(run())
}

// runSem implements `gopar sem`: a cross-process counting semaphore in
// the spirit of GNU Parallel's sem command. Independent invocations
// sharing an --id throttle each other:
//
//	for f in *.big; do gopar sem --id convert -j 4 convert "$f" "$f.png"; done
func runSem(argv []string) int {
	fs := flag.NewFlagSet("gopar sem", flag.ContinueOnError)
	var (
		jobs = fs.Int("j", 1, "semaphore slots shared across processes")
		id   = fs.String("id", "default", "semaphore name")
		dir  = fs.String("semdir", "", "semaphore directory (default $HOME/.gopar/sem)")
	)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: gopar sem [-j N] [--id NAME] command args...\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	cmdWords := fs.Args()
	if len(cmdWords) == 0 {
		fs.Usage()
		return 2
	}
	base := *dir
	if base == "" {
		home, err := os.UserHomeDir()
		if err != nil {
			fmt.Fprintln(os.Stderr, "gopar sem:", err)
			return 2
		}
		base = home + "/.gopar/sem"
	}
	sem, err := core.NewFileSemaphore(base+"/"+*id, *jobs, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gopar sem:", err)
		return 2
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	slot, err := sem.Acquire(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gopar sem:", err)
		return 2
	}
	defer sem.Release(slot)

	runner := &core.ExecRunner{}
	res := runner.Run(ctx, &core.Job{Seq: 1, Slot: slot + 1, Command: strings.Join(cmdWords, " ")})
	os.Stdout.Write(res.Stdout)
	os.Stderr.Write(res.Stderr)
	if res.Err != nil {
		fmt.Fprintln(os.Stderr, "gopar sem:", res.Err)
		return 2
	}
	return res.ExitCode
}

func run() int {
	fs := flag.NewFlagSet("gopar", flag.ContinueOnError)
	var (
		jobs      = fs.Int("j", 8, "number of parallel job slots")
		keepOrder = fs.Bool("k", false, "output results in input order")
		dryRun    = fs.Bool("dry-run", false, "print commands without running them")
		tag       = fs.Bool("tag", false, "prefix output lines with the input value")
		retries   = fs.Int("retries", 1, "total attempts per job")
		backoff   = fs.String("retry-backoff", "", `exponential pause between retries: "base[,cap]" (e.g. 1s or 500ms,30s)`)
		timeout   = fs.Duration("timeout", 0, "per-job timeout (0 = none)")
		termGrace = fs.Duration("term-grace", 0, "SIGTERM-to-SIGKILL window when cancelling a job's process group (0 = SIGKILL at once)")
		delay     = fs.Duration("delay", 0, "pause between consecutive job starts")
		maxLoad   = fs.Float64("load", 0, "pause dispatch while 1-min load average >= this (0 = off)")
		haltSpec  = fs.String("halt", "", "halt policy: soon|now,fail|success=N or N% (e.g. now,fail=10%)")
		joblog    = fs.String("joblog", "", "append a GNU-Parallel-format job log to this file")
		resume    = fs.Bool("resume", false, "skip jobs already completed per --wal (or --joblog when no --wal)")
		walDir    = fs.String("wal", "", "record a crash-safe write-ahead run log in this directory")
		walSync   = fs.String("wal-sync", "interval", `write-ahead log durability: "always", "interval" or "never"`)
		gpuEnv    = fs.String("gpu-env", "", `set <VENDOR>_VISIBLE_DEVICES from the slot number ("HIP" or "CUDA")`)
		shell     = fs.Bool("shell", false, "always run commands through /bin/sh -c")
		discard   = fs.Bool("discard-output", false, "send job stdout/stderr to /dev/null (skips output capture entirely)")
		dir       = fs.String("dir", "", "working directory for jobs")
		quiet     = fs.Bool("quiet", false, "suppress the summary line")
		pipe      = fs.Bool("pipe", false, "split stdin into blocks fed to each job's stdin (--pipe mode)")
		block     = fs.Int("block", 1<<20, "target block size in bytes for --pipe")
		workers   = fs.String("S", "", `run jobs on gopard workers: "[slots/]host:port,..." (e.g. 8/n1:7547,8/n2:7547)`)
		deflateMin = fs.Int("deflate-threshold", 0, "compress v3 wire payloads larger than this many bytes (0 = default 4096, negative = never)")
		progress  = fs.Bool("progress", false, "show a live progress/ETA line on stderr")
		colsep    = fs.String("colsep", "", "split input records into columns on this separator ({1}, {2}, ...)")
		shuf      = fs.Bool("shuf", false, "process inputs in random order")
		shufSeed  = fs.Uint64("shuf-seed", 0, "seed for --shuf (0 = time-based)")
		results   = fs.String("results", "", "save per-job stdout/stderr/exitval under this directory")
		metrics   = fs.String("metrics-addr", "", `serve live Prometheus metrics on this address (e.g. ":9100"; ":0" picks a free port)`)
		events    = fs.String("events", "", "stream job-lifecycle events as JSON lines to this file")
		trace     = fs.String("trace", "", "stream a Chrome trace (chrome://tracing) to this file during the run")
		spans     = fs.String("spans", "", "stream per-job phase-timeline spans as JSON lines to this file (analyze with `gopar report`)")
		pprofOn   = fs.Bool("pprof", false, "also serve /debug/pprof on --metrics-addr (off by default)")
		flightBuf = fs.Int("flight-buf", 4096, "flight-recorder event ring capacity (0 disables the recorder)")
		flightDir = fs.String("flight-dump", "", "directory for flight dump files written on SIGQUIT or panic (default $TMPDIR)")
		flightP99 = fs.Duration("flight-p99", 0, "flight watchdog: dispatch-delay p99 ceiling that raises an anomaly (0 = off)")
		debugAddr  = fs.String("debug-addr", "", `serve /debug/flight and /debug/pprof on this address (e.g. "127.0.0.1:0")`)
		debugToken = fs.String("debug-token", "", "bearer token required by /debug/flight (empty = open; keep the listener on loopback)")
	)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: gopar [flags] command [::: args...] [:::: argfile]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 2
	}
	rest := fs.Args()
	if len(rest) == 0 {
		fs.Usage()
		return 2
	}

	cmdWords, src, err := splitInputs(rest)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gopar:", err)
		return 2
	}
	if *pipe {
		src = args.Blocks(os.Stdin, *block)
	}
	if *colsep != "" {
		// Accept the common escapes GNU Parallel's regex colsep allows.
		sep := strings.NewReplacer(`\t`, "\t", `\n`, "\n").Replace(*colsep)
		src = args.Colsep(src, sep)
	}
	if *shuf {
		seed := *shufSeed
		if seed == 0 {
			seed = uint64(time.Now().UnixNano())
		}
		src = args.Shuffle(src, seed)
	}
	command := strings.Join(cmdWords, " ")

	spec, err := core.NewSpec(command, *jobs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gopar:", err)
		return 2
	}
	spec.KeepOrder = *keepOrder
	spec.Pipe = *pipe
	spec.DryRun = *dryRun
	spec.Tag = *tag
	spec.Retries = *retries
	spec.Timeout = *timeout
	spec.Delay = *delay
	spec.MaxLoad = *maxLoad
	spec.ResultsDir = *results
	spec.Out = os.Stdout
	spec.Errout = os.Stderr
	if *gpuEnv != "" {
		vendor := *gpuEnv
		spec.SlotEnv = func(slot int) []string {
			return []string{gpu.VisibleEnv(vendor, gpu.SlotDevice(slot))}
		}
	}
	var pp *core.ProgressPrinter
	if *progress {
		// Progress goes to stderr — stdout stays exclusively job output —
		// and only redraws in place when stderr is an interactive
		// terminal; on a pipe it degrades to rate-limited plain lines.
		pp = &core.ProgressPrinter{W: os.Stderr, TTY: stderrIsTTY()}
		spec.OnProgress = pp.Update
	}
	if spec.Halt, err = parseHalt(*haltSpec); err != nil {
		fmt.Fprintln(os.Stderr, "gopar:", err)
		return 2
	}
	if spec.RetryBackoff, err = parseBackoff(*backoff); err != nil {
		fmt.Fprintln(os.Stderr, "gopar:", err)
		return 2
	}

	if *joblog != "" {
		// Joblog-based resume is the fallback: when a WAL is configured it
		// is the authoritative record (it also knows about in-flight jobs
		// and input drift, which the joblog cannot).
		if *resume && *walDir == "" {
			if f, err := os.Open(*joblog); err == nil {
				entries, perr := core.ParseJoblog(f)
				f.Close()
				if perr != nil {
					fmt.Fprintln(os.Stderr, "gopar: reading joblog:", perr)
					return 2
				}
				spec.ResumeFrom = core.CompletedSeqs(entries)
			}
		}
		lf, err := os.OpenFile(*joblog, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gopar:", err)
			return 2
		}
		// Sync before close so an orderly shutdown — including one driven
		// by SIGINT/SIGTERM cancelling the run — leaves the joblog durable
		// for the next --resume.
		defer func() {
			lf.Sync()
			lf.Close()
		}()
		if info, _ := lf.Stat(); info != nil && info.Size() == 0 {
			core.WriteJoblogHeader(lf)
		}
		spec.Joblog = lf
	}

	var runner core.Runner = &core.ExecRunner{Dir: *dir, ForceShell: *shell, TermGrace: *termGrace, DiscardOutput: *discard}
	var pool *dist.Pool
	if *workers != "" {
		specs, perr := parseWorkers(*workers)
		if perr != nil {
			fmt.Fprintln(os.Stderr, "gopar:", perr)
			return 2
		}
		// Warn once, the moment the pool first loses capacity; the final
		// summary reports the closing health gauge.
		var degradedOnce sync.Once
		p, derr := dist.Dial(specs, dist.WithDeflateThreshold(*deflateMin),
			dist.WithHealthNotify(func(h dist.Health) {
				if h.Degraded() {
					degradedOnce.Do(func() {
						fmt.Fprintf(os.Stderr, "gopar: worker pool degraded: %d/%d slots live (%d redialing, %d lost)\n",
							h.Live, h.Total, h.Redialing, h.Lost)
					})
				}
			}))
		if derr != nil {
			fmt.Fprintln(os.Stderr, "gopar:", derr)
			return 2
		}
		pool = p
		defer pool.Close()
		runner = pool
		// The pool's capacity is the natural slot count unless the user
		// explicitly lowered -j.
		if spec.Jobs > pool.Slots() || spec.Jobs == 8 /* default */ {
			spec.Jobs = pool.Slots()
		}
	}

	// Flight recorder: the always-on black box. Fixed memory, zero
	// allocations per event; records every lifecycle event plus periodic
	// engine/pool/runtime snapshots, dumped on SIGQUIT, panic, anomaly,
	// or GET /debug/flight (--debug-addr). `gopar debug` renders dumps.
	var rec *flight.Recorder
	if *flightBuf > 0 {
		rec = flight.New(flight.Options{
			EventBuf: *flightBuf,
			Program:  "gopar",
			Watchdog: flight.WatchdogConfig{
				DispatchP99: *flightP99,
				DropStats:   []string{"pool.live"},
			},
			OnDiag: func(name, detail string) {
				fmt.Fprintf(os.Stderr, "gopar: flight anomaly [%s]: %s\n", name, detail)
			},
		})
		rec.AddSource("engine", rec.EngineStats)
		if pool != nil {
			p := pool
			rec.AddSource("pool", func(buf []flight.Stat) []flight.Stat {
				h := p.Health()
				return append(buf,
					flight.Stat{Name: "live", V: float64(h.Live)},
					flight.Stat{Name: "total", V: float64(h.Total)},
					flight.Stat{Name: "redialing", V: float64(h.Redialing)},
					flight.Stat{Name: "lost", V: float64(h.Lost)},
				)
			})
			rec.AddSource("wire", func(buf []flight.Stat) []flight.Stat {
				w := p.Wire()
				return append(buf,
					flight.Stat{Name: "bytes_sent", V: float64(w.BytesSent())},
					flight.Stat{Name: "bytes_received", V: float64(w.BytesReceived())},
					flight.Stat{Name: "frames_sent", V: float64(w.FramesSent())},
					flight.Stat{Name: "frames_received", V: float64(w.FramesReceived())},
					flight.Stat{Name: "deflate_ratio", V: w.DeflateRatio()},
				)
			})
		}
		rec.Start()
		defer rec.Stop()
		logf := func(format string, fargs ...any) {
			fmt.Fprintf(os.Stderr, "gopar: "+format+"\n", fargs...)
		}
		stopSig := flight.NotifySignal(rec, *flightDir, logf)
		defer stopSig()
		defer flight.DumpOnPanic(rec, *flightDir, logf)
		if *debugAddr != "" {
			bound, closeDebug, derr := flight.Serve(*debugAddr, rec, *debugToken)
			if derr != nil {
				fmt.Fprintln(os.Stderr, "gopar:", derr)
				return 2
			}
			fmt.Fprintf(os.Stderr, "gopar: serving debug endpoints on http://%s/debug/flight\n", bound)
			defer closeDebug()
		}
	} else if *debugAddr != "" {
		fmt.Fprintln(os.Stderr, "gopar: --debug-addr requires the flight recorder (--flight-buf > 0)")
		return 2
	}

	// Telemetry: a non-blocking bus feeds the in-process metrics registry
	// (synchronous tap) plus any streaming sinks (buffered subscription),
	// so a slow scrape or disk can never stall dispatch.
	var drainTelemetry func()
	var reg *telemetry.Registry // non-nil only when telemetry is on
	// syncClose fsyncs a streaming sink before closing it, so files like
	// the events/spans JSONL streams survive an interrupted shutdown with
	// everything the pump delivered on disk.
	syncClose := func(f *os.File) func() error {
		return func() error {
			f.Sync()
			return f.Close()
		}
	}
	if *metrics != "" || *events != "" || *trace != "" || *spans != "" {
		reg = telemetry.NewRegistry()
		bus := telemetry.NewBus()
		rm := telemetry.NewRunMetrics(reg, spec.Jobs)
		bus.Tap(rm.Observe)
		if rec != nil {
			bus.Tap(rec.RecordEvent)
		}
		reg.CounterFunc("gopar_events_dropped_total",
			"events dropped by saturated bus subscribers (events/spans/trace sinks)",
			func() float64 { return float64(bus.Dropped()) })
		telemetry.RegisterBuildInfo(reg, "gopar", time.Now())
		if pool != nil {
			pool.RegisterMetrics(reg)
		}
		var consumers []func(core.Event)
		var closers []func() error
		// Serve + announce before anything else in this block: scripts
		// that parse the "serving metrics on" line to discover a :0 port
		// must be able to scrape before the first job dispatches, and
		// nothing below may fail after the endpoint is live without the
		// announcement having been made.
		if *metrics != "" {
			var srvOpts []telemetry.ServeOption
			if *pprofOn {
				srvOpts = append(srvOpts, telemetry.WithPprof())
			}
			bound, closeFn, serr := telemetry.Serve(*metrics, reg, srvOpts...)
			if serr != nil {
				fmt.Fprintln(os.Stderr, "gopar:", serr)
				return 2
			}
			fmt.Fprintf(os.Stderr, "gopar: serving metrics on http://%s/metrics\n", bound)
			closers = append(closers, closeFn)
		}
		if *events != "" {
			f, cerr := os.Create(*events)
			if cerr != nil {
				fmt.Fprintln(os.Stderr, "gopar:", cerr)
				return 2
			}
			sink := telemetry.NewJSONLSink(f)
			consumers = append(consumers, sink.Consume)
			closers = append(closers, syncClose(f))
		}
		if *spans != "" {
			f, cerr := os.Create(*spans)
			if cerr != nil {
				fmt.Fprintln(os.Stderr, "gopar:", cerr)
				return 2
			}
			rec := span.NewRecorder(f, false)
			consumers = append(consumers, rec.Consume)
			// rec.Close flushes in-flight spans as incomplete records, so
			// an interrupted (SIGINT/SIGTERM) run's span file still parses.
			closers = append(closers, rec.Close, syncClose(f))
		}
		if *trace != "" {
			f, cerr := os.Create(*trace)
			if cerr != nil {
				fmt.Fprintln(os.Stderr, "gopar:", cerr)
				return 2
			}
			lt := profile.NewLiveTrace(f)
			consumers = append(consumers, lt.Consume)
			closers = append(closers, lt.Close, syncClose(f))
		}
		var pumpDone sync.WaitGroup
		if len(consumers) > 0 {
			sub := bus.Subscribe(0)
			pumpDone.Add(1)
			go func() {
				defer pumpDone.Done()
				telemetry.Pump(sub, consumers...)
			}()
		}
		spec.OnEvent = bus.Publish
		drainTelemetry = func() {
			bus.Close()
			pumpDone.Wait()
			for _, c := range closers {
				c()
			}
		}
	}
	if rec != nil && spec.OnEvent == nil {
		// No telemetry bus in play: hook the recorder straight into the
		// engine's event callback (same zero-alloc budget).
		spec.OnEvent = rec.RecordEvent
	}

	// Write-ahead run log: an intent record is appended before each job
	// is handed to a slot and a completion record when its result is
	// collected, so a SIGKILL'd run can resume exactly where it died.
	var walLog *wal.Log
	if *walDir != "" {
		if *dryRun {
			fmt.Fprintln(os.Stderr, "gopar: --wal cannot be combined with --dry-run (it would record intents for jobs that never ran)")
			return 2
		}
		pol, perr := wal.ParseSyncPolicy(*walSync)
		if perr != nil {
			fmt.Fprintln(os.Stderr, "gopar:", perr)
			return 2
		}
		opts := wal.Options{Sync: pol}
		var wm *telemetry.WalMetrics
		if reg != nil {
			wm = telemetry.NewWalMetrics(reg)
			opts.FsyncObserver = wm.ObserveFsync
		}
		l, st, werr := wal.Open(*walDir, opts)
		if werr != nil {
			fmt.Fprintln(os.Stderr, "gopar:", werr)
			return 2
		}
		walLog = l
		if wm != nil {
			wm.RecordReplay(st.Records, st.TornTails)
		}
		if prior := len(st.Completed) + len(st.InFlight); prior > 0 {
			if !*resume {
				walLog.Close()
				fmt.Fprintf(os.Stderr, "gopar: %s already holds a run (%d jobs logged); pass --resume to continue it, or point --wal at an empty directory\n",
					*walDir, prior)
				return 2
			}
			done := st.CompletedOK()
			fmt.Fprintf(os.Stderr, "gopar: wal resume: %d completed ok (skipped), %d failed and %d in-flight at crash (will re-run)",
				len(done), len(st.Completed)-len(done), len(st.InFlight))
			if st.TornTails > 0 {
				fmt.Fprintf(os.Stderr, "; %d torn segment tail(s) repaired", st.TornTails)
			}
			fmt.Fprintln(os.Stderr)
			spec.ResumeFrom = done
			spec.WALDigests = st.Digests
		}
		spec.WAL = walLog
		if rec != nil {
			rec.AddSource("wal", func(buf []flight.Stat) []flight.Stat {
				ws := walLog.Stats()
				lagMS := -1.0
				if !ws.LastSync.IsZero() {
					lagMS = float64(time.Since(ws.LastSync)) / float64(time.Millisecond)
				}
				return append(buf,
					flight.Stat{Name: "appended", V: float64(ws.Appended)},
					flight.Stat{Name: "staged", V: float64(ws.Staged)},
					flight.Stat{Name: "syncs", V: float64(ws.Syncs)},
					flight.Stat{Name: "sync_lag_ms", V: lagMS},
					flight.Stat{Name: "seg_bytes", V: float64(ws.SegBytes)},
				)
			})
		}
	}

	eng, err := core.NewEngine(spec, runner)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gopar:", err)
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	stats, _, err := eng.Run(ctx, src)
	if pp != nil {
		pp.Finish() // terminate an in-place progress line, if one was drawn
	}
	if drainTelemetry != nil {
		drainTelemetry()
	}
	// Close the WAL explicitly (not deferred) so a final-flush failure
	// can still flip the exit code: a run that "succeeded" but could not
	// make its completions durable must not look resumable-clean.
	if walLog != nil {
		if cerr := walLog.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("wal close: %w", cerr)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gopar:", err)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "gopar: %d jobs, %d ok, %d failed, %d skipped in %v (%.0f jobs/s, avg dispatch %v)\n",
			stats.Total, stats.Succeeded, stats.Failed, stats.Skipped,
			time.Since(start).Round(time.Millisecond), stats.LaunchRate,
			stats.AvgDispatchDelay.Round(time.Microsecond))
		if pool != nil {
			h := pool.Health()
			fmt.Fprintf(os.Stderr, "gopar: pool health: %d/%d slots live, %d redialing, %d lost\n",
				h.Live, h.Total, h.Redialing, h.Lost)
		}
	}
	switch {
	case err != nil:
		return 2
	case stats.Failed > 0:
		if stats.Failed > 101 {
			return 101
		}
		return stats.Failed // GNU Parallel exit convention: 1-101 = failed jobs
	default:
		return 0
	}
}

// stderrIsTTY reports whether stderr is an interactive terminal, which
// decides between in-place progress redraw and plain line output.
func stderrIsTTY() bool {
	fi, err := os.Stderr.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

// parseWorkers parses the -S list: comma-separated [slots/]host:port
// entries, mirroring GNU Parallel's --sshlogin 8/host syntax.
func parseWorkers(s string) ([]dist.WorkerSpec, error) {
	var specs []dist.WorkerSpec
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		spec := dist.WorkerSpec{Addr: entry}
		if i := strings.IndexByte(entry, '/'); i >= 0 {
			n, err := strconv.Atoi(entry[:i])
			if err != nil || n < 1 {
				return nil, fmt.Errorf("bad worker slots in %q", entry)
			}
			spec.Slots = n
			spec.Addr = entry[i+1:]
		}
		if !strings.Contains(spec.Addr, ":") {
			return nil, fmt.Errorf("worker %q needs host:port", entry)
		}
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("-S given but no workers parsed from %q", s)
	}
	return specs, nil
}

// splitInputs separates command words from input-source groups.
func splitInputs(rest []string) ([]string, args.Source, error) {
	sepAt := -1
	for i, w := range rest {
		if w == ":::" || w == "::::" || w == ":::+" {
			sepAt = i
			break
		}
	}
	if sepAt < 0 {
		// No ::: groups: read stdin lines.
		return rest, args.FromReader(os.Stdin), nil
	}
	cmdWords := rest[:sepAt]
	if len(cmdWords) == 0 {
		return nil, nil, fmt.Errorf("no command before %s", rest[sepAt])
	}

	type group struct {
		sep   string
		items []string
	}
	var groups []group
	for i := sepAt; i < len(rest); i++ {
		w := rest[i]
		if w == ":::" || w == "::::" || w == ":::+" {
			groups = append(groups, group{sep: w})
			continue
		}
		if len(groups) == 0 {
			return nil, nil, fmt.Errorf("argument %q outside any ::: group", w)
		}
		groups[len(groups)-1].items = append(groups[len(groups)-1].items, w)
	}

	var crossSources []args.Source
	for _, g := range groups {
		var s args.Source
		switch g.sep {
		case ":::":
			s = args.Literal(g.items...)
		case "::::":
			if len(g.items) != 1 {
				return nil, nil, fmt.Errorf(":::: takes exactly one file, got %d", len(g.items))
			}
			s = args.FromFile(g.items[0])
		case ":::+":
			if len(crossSources) == 0 {
				return nil, nil, fmt.Errorf(":::+ needs a preceding ::: group")
			}
			prev := crossSources[len(crossSources)-1]
			crossSources[len(crossSources)-1] = args.Zip(prev, args.Literal(g.items...))
			continue
		}
		crossSources = append(crossSources, s)
	}
	return cmdWords, args.Cross(crossSources...), nil
}

func parseHalt(s string) (core.HaltPolicy, error) {
	if s == "" {
		return core.HaltPolicy{}, nil
	}
	parts := strings.SplitN(s, ",", 2)
	if len(parts) != 2 {
		return core.HaltPolicy{}, fmt.Errorf("bad --halt %q (want e.g. soon,fail=1)", s)
	}
	var p core.HaltPolicy
	switch parts[0] {
	case "soon":
		p.When = core.HaltSoon
	case "now":
		p.When = core.HaltNow
	default:
		return p, fmt.Errorf("bad --halt timing %q", parts[0])
	}
	kv := strings.SplitN(parts[1], "=", 2)
	if len(kv) != 2 {
		return p, fmt.Errorf("bad --halt condition %q", parts[1])
	}
	if val, ok := strings.CutSuffix(kv[1], "%"); ok {
		// GNU Parallel's --halt now,fail=10% form: trigger on a
		// percentage of all jobs rather than an absolute count.
		pct, err := strconv.ParseFloat(val, 64)
		if err != nil || pct <= 0 || pct > 100 {
			return p, fmt.Errorf("bad --halt percentage %q (want 0 < n <= 100)", kv[1])
		}
		p.Percent = pct
	} else {
		n, err := strconv.Atoi(kv[1])
		if err != nil || n < 1 {
			return p, fmt.Errorf("bad --halt threshold %q", kv[1])
		}
		p.Threshold = n
	}
	switch kv[0] {
	case "fail":
	case "success":
		p.OnSuccess = true
	default:
		return p, fmt.Errorf("bad --halt condition %q", kv[0])
	}
	return p, nil
}

// parseBackoff parses --retry-backoff: "base" or "base,cap", both Go
// durations. The factor is the default (2x per attempt) and a 10%
// jitter spreads retry stampedes.
func parseBackoff(s string) (core.Backoff, error) {
	if s == "" {
		return core.Backoff{}, nil
	}
	parts := strings.SplitN(s, ",", 2)
	base, err := time.ParseDuration(strings.TrimSpace(parts[0]))
	if err != nil || base <= 0 {
		return core.Backoff{}, fmt.Errorf("bad --retry-backoff base %q (want e.g. 1s)", parts[0])
	}
	b := core.Backoff{Base: base, Jitter: 0.1}
	if len(parts) == 2 {
		cap, err := time.ParseDuration(strings.TrimSpace(parts[1]))
		if err != nil || cap < base {
			return core.Backoff{}, fmt.Errorf("bad --retry-backoff cap %q (want a duration >= base)", parts[1])
		}
		b.Cap = cap
	}
	return b, nil
}
