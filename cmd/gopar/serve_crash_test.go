package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"repro/internal/jobd"
	"repro/internal/wal"
)

// The daemon crash harness extends the one-shot SIGKILL contract
// (crash_test.go) to the persistent service: submits acked by the
// daemon are never lost, and a job whose completion was durable before
// the kill never executes again after the restart. In the kill window,
// in-flight jobs (intent logged, no completion) legitimately re-run —
// at-least-once is the floor for external side effects — but the
// restarted daemon must finish every one of them.

func serveCrashTrialCount(t *testing.T) int {
	if s := os.Getenv("GOPAR_SERVE_CRASH_TRIALS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad GOPAR_SERVE_CRASH_TRIALS=%q", s)
		}
		return n
	}
	if testing.Short() {
		return 1
	}
	return 3
}

func serveCrashTrial(t *testing.T, r *rand.Rand, nJobs int) {
	t.Helper()
	dir := t.TempDir()
	effects := filepath.Join(dir, "effects")
	walDir := filepath.Join(dir, "crashq", "wal")
	serveArgs := []string{"-slots", "4", "-q", "-wal-sync", "always"}

	base, _, proc := startServeProc(t, dir, serveArgs...)
	c := jobd.NewClient(base, nil)
	ctx := context.Background()

	cmds := make([]string, nJobs)
	for i := range cmds {
		cmds[i] = fmt.Sprintf("echo %d >> %s; sleep 0.005", i+1, effects)
	}
	seqs, err := c.Submit(ctx, "crashq", cmds...)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if len(seqs) != nJobs {
		t.Fatalf("acked %d submits, want %d", len(seqs), nJobs)
	}

	// SIGKILL the daemon at a randomized point mid-run: no drain, no
	// final WAL flush, running children orphaned.
	delay := time.Duration(5+r.Intn(120)) * time.Millisecond
	time.Sleep(delay)
	proc.Kill()
	// Orphaned `echo >> effects` children can outlive the daemon by a
	// few ms; let them land before snapshotting.
	time.Sleep(200 * time.Millisecond)

	// What was durably complete at the kill? (wal-sync=always: every
	// recorded completion. The submit acks themselves are backed by the
	// topic append + WAL intent, checked below via "nothing lost".)
	st, err := wal.Replay(walDir)
	if err != nil {
		t.Fatalf("replay after kill: %v", err)
	}
	durable := st.CompletedOK()
	ran, offset := appendedSeqs(t, effects, 0)
	t.Logf("killed after %v: %d durable completions, %d effects", delay, len(durable), len(ran))

	// Restart on the same state directory: the queue resumes, the
	// backlog drains.
	base2, _, _ := startServeProc(t, dir, serveArgs...)
	c2 := jobd.NewClient(base2, nil)
	stats := awaitBacklogDrained(t, c2, "crashq", 120*time.Second)

	// Exactly-once: no durably-completed job may have re-executed.
	reran, _ := appendedSeqs(t, effects, offset)
	for seq := range reran {
		if durable[seq] {
			t.Errorf("job %d re-ran after its completion was durable", seq)
		}
	}
	// Nothing lost: every acked submit executed at least once and is
	// terminal in the resumed daemon.
	executed, _ := appendedSeqs(t, effects, 0)
	for seq := 1; seq <= nJobs; seq++ {
		if executed[seq] == 0 {
			t.Errorf("acked job %d never executed", seq)
		}
	}
	if stats.Submitted != nJobs {
		t.Errorf("resumed daemon sees %d submitted, want %d", stats.Submitted, nJobs)
	}
	if got := stats.OK + stats.Failed + stats.Cancelled; got != nJobs {
		t.Errorf("only %d of %d jobs terminal after resume: %+v", got, nJobs, stats)
	}
	if stats.Failed != 0 {
		// The echo jobs cannot fail on their own; a failure here means a
		// kill-window job was mishandled.
		t.Errorf("resumed run reports %d failed jobs: %+v", stats.Failed, stats)
	}
}

func TestServeCrashExactlyOnce(t *testing.T) {
	trials := serveCrashTrialCount(t)
	seed := time.Now().UnixNano()
	if s := os.Getenv("GOPAR_CRASH_SEED"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad GOPAR_CRASH_SEED=%q", s)
		}
		seed = n
	}
	t.Logf("seed=%d trials=%d (rerun a failure with GOPAR_CRASH_SEED=%d)", seed, trials, seed)
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < trials; i++ {
		serveCrashTrial(t, r, 40)
		if t.Failed() {
			t.Fatalf("stopping after failing trial %d", i)
		}
	}
}

// TestServeCrashDuringSubmitBurst kills the daemon while 10 clients are
// mid-burst, then verifies the resumed daemon's ledger: every seq the
// clients got an ack for is present and reaches a terminal state.
func TestServeCrashDuringSubmitBurst(t *testing.T) {
	if testing.Short() {
		t.Skip("crash burst skipped in -short")
	}
	dir := t.TempDir()
	serveArgs := []string{"-slots", "4", "-q", "-wal-sync", "always", "-runner", "noop"}
	base, _, proc := startServeProc(t, dir, serveArgs...)
	c := jobd.NewClient(base, nil)
	ctx := context.Background()

	const clients = 10
	acked := make(chan int, 4096)
	done := make(chan struct{}, clients)
	for cl := 0; cl < clients; cl++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for {
				seqs, err := c.Submit(ctx, "burst", "x")
				if err != nil {
					return // daemon died mid-burst: expected
				}
				for _, s := range seqs {
					acked <- s
				}
			}
		}()
	}
	time.Sleep(100 * time.Millisecond)
	proc.Kill()
	for i := 0; i < clients; i++ {
		<-done
	}
	close(acked)
	ackedSeqs := map[int]bool{}
	for s := range acked {
		ackedSeqs[s] = true
	}
	if len(ackedSeqs) == 0 {
		t.Fatal("no submits acked before the kill")
	}

	base2, _, _ := startServeProc(t, dir, serveArgs...)
	c2 := jobd.NewClient(base2, nil)
	stats := awaitBacklogDrained(t, c2, "burst", 60*time.Second)
	if stats.Submitted < len(ackedSeqs) {
		t.Fatalf("resumed daemon sees %d submits, but %d were acked", stats.Submitted, len(ackedSeqs))
	}
	for seq := range ackedSeqs {
		st, err := c2.Status(ctx, "burst", seq, 10*time.Second)
		if err != nil {
			t.Fatalf("acked job %d lost after restart: %v", seq, err)
		}
		if st.State != "ok" && st.State != "failed" {
			t.Fatalf("acked job %d not terminal: %+v", seq, st)
		}
	}
}
