// Command goprof extracts a parallel profile from a gopar/GNU-Parallel
// joblog — the paper's closing use-case: run a workload once under the
// launcher, then read off its concurrency timeline, utilization, and a
// recommended -j.
//
// Usage:
//
//	gopar --joblog run.log 'work {}' ::: inputs...
//	goprof run.log
//	goprof -dispatch 2.128ms run.log   # recommend -j for a dispatch cost
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/profile"
)

func main() {
	dispatch := flag.Duration("dispatch", 2128*time.Microsecond,
		"per-task dispatch cost used for the -j recommendation (GNU Parallel measures ~2.1ms)")
	traceOut := flag.String("trace", "",
		"also write a Chrome/Perfetto trace (load in ui.perfetto.dev) to this file")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: goprof [-dispatch D] [-trace out.json] JOBLOG\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "goprof:", err)
		os.Exit(2)
	}
	defer f.Close()
	entries, err := core.ParseJoblog(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "goprof:", err)
		os.Exit(2)
	}
	p, err := profile.Analyze(entries)
	if err != nil {
		fmt.Fprintln(os.Stderr, "goprof:", err)
		os.Exit(2)
	}
	fmt.Print(p.Render())
	fmt.Printf("recommended -j:        %d (at %v dispatch cost)\n",
		p.RecommendSlots(*dispatch), *dispatch)

	if *traceOut != "" {
		tf, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "goprof:", err)
			os.Exit(2)
		}
		defer tf.Close()
		if err := profile.ChromeTrace(tf, entries); err != nil {
			fmt.Fprintln(os.Stderr, "goprof:", err)
			os.Exit(2)
		}
		fmt.Printf("trace written:         %s (open in ui.perfetto.dev)\n", *traceOut)
	}
}
