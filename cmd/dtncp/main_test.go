package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestDtncpEndToEnd(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "dtncp")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	src := t.TempDir()
	dst := t.TempDir()
	os.MkdirAll(filepath.Join(src, "sub"), 0o755)
	os.WriteFile(filepath.Join(src, "a.txt"), []byte("alpha"), 0o644)
	os.WriteFile(filepath.Join(src, "sub", "b.txt"), []byte("bravo"), 0o644)

	// Copy.
	out, err := exec.Command(bin, "-j", "4", src, dst).CombinedOutput()
	if err != nil {
		t.Fatalf("copy: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "copied 2") {
		t.Fatalf("output: %s", out)
	}
	data, err := os.ReadFile(filepath.Join(dst, "sub", "b.txt"))
	if err != nil || string(data) != "bravo" {
		t.Fatalf("copied content: %q, %v", data, err)
	}

	// Dry run after copy: empty delta.
	out, err = exec.Command(bin, "-n", src, dst).CombinedOutput()
	if err != nil {
		t.Fatalf("dry run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "0 of 2 files") {
		t.Fatalf("dry-run output: %s", out)
	}

	// Usage error.
	if err := exec.Command(bin, "only-one-arg").Run(); err == nil {
		t.Fatal("missing DST accepted")
	}
}
