// Command dtncp is a parallel incremental tree copier in the spirit of
// the paper's §IV-E pattern (`find | parallel -j32 rsync -R -Ha`): it
// scans source and destination, computes the rsync-style delta, and moves
// only missing/changed files with N parallel streams.
//
// Usage:
//
//	dtncp [-j 32] [-c] [-n] SRC DST
//
//	-j  parallel copy streams
//	-c  compare file contents (checksum) instead of size+mtime
//	-n  dry run: print what would be copied
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/transfer"
)

func main() {
	var (
		jobs   = flag.Int("j", 32, "parallel copy streams")
		check  = flag.Bool("c", false, "checksum file contents (slower, exact)")
		dryRun = flag.Bool("n", false, "dry run: list the delta and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dtncp [-j N] [-c] [-n] SRC DST\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	src, dst := flag.Arg(0), flag.Arg(1)

	if *dryRun {
		srcTree, err := transfer.ScanDir(src, *check)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtncp:", err)
			os.Exit(2)
		}
		dstTree, err := transfer.ScanDir(dst, *check)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtncp:", err)
			os.Exit(2)
		}
		delta := transfer.Delta(srcTree, dstTree)
		var bytes int64
		for _, f := range delta {
			fmt.Printf("%s (%d bytes)\n", f.Path, f.Size)
			bytes += f.Size
		}
		fmt.Fprintf(os.Stderr, "dtncp: %d of %d files would copy (%.1f MB)\n",
			len(delta), srcTree.Len(), float64(bytes)/1e6)
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	start := time.Now()
	stats, err := transfer.CopyTree(ctx, src, dst, *jobs, *check)
	elapsed := time.Since(start)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtncp:", err)
	}
	mbps := float64(stats.Bytes) * 8 / 1e6 / elapsed.Seconds()
	fmt.Fprintf(os.Stderr, "dtncp: scanned %d, copied %d, skipped %d, failed %d — %.1f MB in %v (%.0f Mb/s)\n",
		stats.Scanned, stats.Copied, stats.Skipped, stats.Failed,
		float64(stats.Bytes)/1e6, elapsed.Round(time.Millisecond), mbps)
	if err != nil || stats.Failed > 0 {
		os.Exit(1)
	}
}
