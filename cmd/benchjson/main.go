// Command benchjson is the perf-regression harness. It runs the
// microbenchmarks that guard the launcher's per-job cost (template
// render, engine dispatch, remote pool round-trip, the protocol v3
// wire codec and loopback data plane, the paper's Fig. 3 real-process
// rate) and the simulation kernel's throughput (events/s, procs/s,
// flow tasks/s, the sharded-kernel events benchmark, plus one
// full-scale Fig 1 point in serial and 4-shard modes), parses
// `go test -bench` output, and writes one machine-readable JSON report
// (BENCH_pr10.json in CI).
//
// Usage:
//
//	benchjson -out BENCH_pr10.json                # run + record
//	benchjson -benchtime 100x -out quick.json     # cheap smoke record
//	benchjson -stdin -out r.json < bench.txt      # parse a saved run
//	benchjson -out new.json -check old.json       # fail on regression
//
// The -check mode compares per benchmark against a previous report and
// exits non-zero on regression beyond -tolerance (default 25%, generous
// because shared CI runners are noisy): ns/op may not grow beyond
// tolerance, allocs/op may not grow past a ±1-alloc/5% jitter band
// (in-process counts are deterministic and the critical paths are also
// pinned by AllocsPerRun tests; fork/exec benches wobble), and
// throughput metrics (any ReportMetric unit ending in "/s") may not
// drop beyond tolerance — wiring perf into CI as a gate, not just a
// graph.
//
// -check additionally gates two budgets from within the new report
// itself (so they hold even when the baseline lacks the benchmark):
// the write-ahead log's dispatch overhead — BenchmarkDispatchWAL/
// sync=interval divided by .../sync=off must stay under budget (<5% on
// multi-core hosts; a relaxed bound on single-core hosts where the
// group-commit flusher serializes with dispatch, see docs/DURABILITY.md)
// — and the job service's submit→dispatch p99, which BenchmarkServeSubmit
// reports from the daemon's own histogram and which must stay under an
// absolute ceiling regardless of client count (see docs/SERVICE.md) —
// and the v3 wire data plane's budgets: the binary codec must stay
// allocation-free and the loopback dispatch rate above an absolute
// jobs/s floor (see DESIGN.md's protocol v3 section) — and the sharded
// DES kernel's budget: the 4-shard full-scale Fig 1 run must beat the
// serial kernel by the host-shape floor (3x on 6+ CPUs, 2.5x on 4-5)
// or, on smaller hosts, stay within a 1.25x overhead ceiling (see
// DESIGN.md's parallel-kernel section).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Bench is one parsed benchmark result. Ns/op, B/op and allocs/op get
// first-class fields; every other `value unit` pair (jobs/s, procs/s,
// alloc deltas reported via b.ReportMetric) lands in Metrics.
type Bench struct {
	Name     string             `json:"name"`
	Iters    int64              `json:"iters"`
	NsPerOp  float64            `json:"ns_per_op"`
	BytesOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsOp float64            `json:"allocs_per_op,omitempty"`
	Metrics  map[string]float64 `json:"metrics,omitempty"`
}

// Report is the harness output schema.
type Report struct {
	Generated string  `json:"generated"`
	GoVersion string  `json:"go_version"`
	GOOS      string  `json:"goos"`
	GOARCH    string  `json:"goarch"`
	NumCPU    int     `json:"num_cpu"`
	BenchTime string  `json:"benchtime,omitempty"`
	Benches   []Bench `json:"benchmarks"`
}

// defaultTargets are the hot-path benchmarks the harness guards: one
// per layer of the dispatch pipeline, plus the simulation kernel. A
// non-empty benchtime overrides the global -benchtime for that target —
// the full-scale Fig 1 point is a single 1.15M-task simulation, so it
// always runs exactly once.
var defaultTargets = []struct{ pkg, bench, benchtime string }{
	{"./internal/tmpl/", "BenchmarkRenderJob", ""},
	// "BenchmarkDispatch" is a regex prefix: it also runs
	// BenchmarkDispatchWAL, whose sync=interval/sync=off pair feeds the
	// WAL-overhead gate in -check mode.
	{"./internal/core/", "BenchmarkDispatch", ""},
	{"./internal/dist/", "BenchmarkPoolDispatch", ""},
	// The v3 wire data plane: pure codec cost (must stay 0 allocs/op)
	// and the end-to-end loopback dispatch rate for v2 vs v3. Pinned
	// iteration counts: the wireGuard alloc/floor gates need enough
	// iterations to amortize session setup, so a time-based CI smoke
	// (100x) must not starve them.
	{"./internal/dist/", "BenchmarkWireCodecV3", "100000x"},
	{"./internal/dist/", "BenchmarkWireLoopback", "20000x"},
	{"./", "BenchmarkFig3RealDispatch", ""},
	// BenchmarkShardedEvents runs the synthetic sharded-kernel workload
	// at shards=0 (serial oracle) and shards=4; its events/s metrics are
	// gated relatively by compare and the serial entry doubles as the
	// kernel's no-regression guard for the oracle path.
	{"./internal/sim/", "BenchmarkEngineEvents|BenchmarkSimProcs|BenchmarkFlowTasks|BenchmarkShardedEvents", ""},
	{"./internal/experiments/", "BenchmarkFig1FullScalePoint", "1x"},
	// The serial-vs-4-shard pair of the paper's largest point; one full
	// simulation per mode (1x), feeding the shardGuard gate in -check.
	{"./internal/experiments/", "BenchmarkFig1Sharded", "1x"},
	// The job-service control plane: submit rate and submit→dispatch p99
	// under concurrent HTTP clients against a live `gopar serve` daemon.
	// Client count defaults to 200 (CI smoke); the committed baseline's
	// clients=10000 entry is recorded with GOPAR_SERVE_BENCH_CLIENTS=10000,
	// so cross-report compare skips the mismatched names and the in-report
	// serviceGuard p99 ceiling does the gating. Pinned iteration count
	// (a time-based benchtime would rerun the daemon-spawn warmup every
	// sizing round, and the p99 gate needs 10k+ observations): 50000
	// submits is ~5 per client even at the 10k-client baseline.
	{"./cmd/gopar/", "BenchmarkServeSubmit", "50000x"},
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

func main() {
	var (
		out       = flag.String("out", "BENCH_pr10.json", "output JSON path (- for stdout)")
		benchtime = flag.String("benchtime", "", "passed to go test -benchtime (default: go's 1s)")
		useStdin  = flag.Bool("stdin", false, "parse `go test -bench` output from stdin instead of running")
		check     = flag.String("check", "", "baseline report to compare against; regressions fail")
		tolerance = flag.Float64("tolerance", 0.25, "allowed fractional ns/op regression in -check mode")
	)
	flag.Parse()

	var raw strings.Builder
	if *useStdin {
		if _, err := io.Copy(&raw, os.Stdin); err != nil {
			fatal("reading stdin: %v", err)
		}
	} else {
		for _, t := range defaultTargets {
			args := []string{"test", "-run=NONE", "-bench=" + t.bench, "-benchmem"}
			bt := *benchtime
			if t.benchtime != "" {
				bt = t.benchtime
			}
			if bt != "" {
				args = append(args, "-benchtime="+bt)
			}
			args = append(args, t.pkg)
			cmd := exec.Command("go", args...)
			cmd.Stderr = os.Stderr
			outBytes, err := cmd.Output()
			if err != nil {
				fatal("go %s: %v", strings.Join(args, " "), err)
			}
			raw.Write(outBytes)
		}
	}

	rep := Report{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		BenchTime: *benchtime,
		Benches:   parse(raw.String()),
	}
	if len(rep.Benches) == 0 {
		fatal("no benchmark lines found")
	}
	sort.Slice(rep.Benches, func(i, j int) bool { return rep.Benches[i].Name < rep.Benches[j].Name })

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal("encoding report: %v", err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal("writing %s: %v", *out, err)
	}

	if *check != "" {
		base, err := load(*check)
		if err != nil {
			fatal("loading baseline: %v", err)
		}
		msgs := compare(base, rep, *tolerance)
		msgs = append(msgs, walGuard(rep)...)
		msgs = append(msgs, serviceGuard(rep)...)
		msgs = append(msgs, wireGuard(rep)...)
		msgs = append(msgs, shardGuard(rep)...)
		if len(msgs) > 0 {
			for _, m := range msgs {
				fmt.Fprintln(os.Stderr, "REGRESSION:", m)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks within %.0f%% of baseline %s\n",
			len(rep.Benches), *tolerance*100, *check)
	}
}

// walGuard enforces the write-ahead log's dispatch-overhead budget from
// a single report: sync=interval over sync=off, both measured
// back-to-back in one process so they share the run's noise. The budget
// depends on the host shape. With two or more CPUs the group-commit
// flusher runs beside the dispatch pipeline and the hot path only pays
// two staged appends per job, so interval must stay within 5% of off.
// On one CPU every flusher cycle is stolen from dispatch — group commit
// serializes with the work it logs — and the honest bound is the
// documented 1.6x (see docs/DURABILITY.md for the measured breakdown).
func walGuard(rep Report) []string {
	find := func(sub string) (Bench, bool) {
		for _, b := range rep.Benches {
			// Names carry a -GOMAXPROCS suffix (e.g. .../sync=off-4).
			if strings.HasPrefix(b.Name, "BenchmarkDispatchWAL/"+sub) {
				return b, true
			}
		}
		return Bench{}, false
	}
	off, okOff := find("sync=off")
	ivl, okIvl := find("sync=interval")
	if !okOff || !okIvl || off.NsPerOp <= 0 {
		// The core benchmarks weren't part of this run (e.g. -stdin with
		// a partial capture); nothing to gate.
		return nil
	}
	if ivl.Iters < 100_000 || off.Iters < 100_000 {
		// Below ~100k jobs the log's fixed costs (open, first flush
		// tick, initial fsyncs) dominate the per-job tax the budget is
		// about; a ratio from a smoke run is noise, not a verdict.
		fmt.Fprintf(os.Stderr, "benchjson: wal overhead gate skipped (%d iters; needs 100000+ to amortize fixed costs)\n",
			ivl.Iters)
		return nil
	}
	ratio := ivl.NsPerOp / off.NsPerOp
	limit, shape := 1.05, "multi-core <5% budget"
	if rep.NumCPU < 2 {
		// Measured 1.3-1.5x on a 1-vCPU host at 200k-1M jobs; the bound
		// leaves headroom for shared-runner noise without letting a real
		// doubling through.
		limit, shape = 1.75, "single-core serialized bound"
	}
	if ratio > limit {
		return []string{fmt.Sprintf(
			"wal overhead: sync=interval %.0f ns/op is %.2fx sync=off %.0f ns/op (limit %.2fx, %s)",
			ivl.NsPerOp, ratio, off.NsPerOp, limit, shape)}
	}
	fmt.Fprintf(os.Stderr, "benchjson: wal overhead %.2fx sync=off (%s, limit %.2fx)\n",
		ratio, shape, limit)
	return nil
}

// serviceGuard enforces the job service's submit→dispatch latency
// budget from a single report: every BenchmarkServeSubmit entry's
// p99_submit_dispatch_ms (the daemon's own histogram, scraped after the
// timed burst) must stay under an absolute ceiling. An absolute bound —
// unlike compare's relative one — holds at any client count, so the CI
// smoke at clients=200 gates the same contract the committed
// clients=10000 baseline documents. The ceiling is generous (500ms vs
// measured values — 2.5ms at the CI shape of 200 clients, 500ms
// (bucket-quantized) at the committed 10k-client single-core baseline —
// because the p99 snaps to histogram bucket bounds (…0.25, 0.5, 1,
// 2.5s…) and shared runners stall; it exists to catch the pathological
// regressions — a scheduler convoy, an accidental fsync on the dispatch
// path — where p99 jumps past the 1s bound to 2.5s or beyond.
func serviceGuard(rep Report) []string {
	const limitMS = 1000
	var msgs []string
	for _, b := range rep.Benches {
		if !strings.HasPrefix(b.Name, "BenchmarkServeSubmit/") {
			continue
		}
		p99, ok := b.Metrics["p99_submit_dispatch_ms"]
		if !ok {
			continue // scrape failed; the submit-rate compare still gates
		}
		if b.Iters < 10_000 {
			// Too few jobs for a p99 to mean anything past warmup.
			fmt.Fprintf(os.Stderr, "benchjson: service p99 gate skipped for %s (%d iters; needs 10000+)\n",
				b.Name, b.Iters)
			continue
		}
		if p99 > limitMS {
			msgs = append(msgs, fmt.Sprintf(
				"service latency: %s p99 submit→dispatch %.1f ms exceeds %d ms ceiling",
				b.Name, p99, limitMS))
		} else {
			fmt.Fprintf(os.Stderr, "benchjson: service p99 submit→dispatch %.1f ms (%s, limit %d ms)\n",
				p99, b.Name, limitMS)
		}
	}
	return msgs
}

// wireGuard enforces the protocol v3 data plane's budgets from a
// single report. Two independent bounds:
//
//   - BenchmarkWireCodecV3 (encode+decode of a full jobs/results frame
//     pair, no I/O) must report exactly 0 allocs/op. The codec is
//     deterministic and fully pooled, so any nonzero count is a leak of
//     the pooling discipline, not jitter — the same property
//     TestWireCodecV3ZeroAlloc pins with AllocsPerRun, re-checked here
//     so the committed perf report can't drift from the test.
//   - BenchmarkWireLoopback/proto=v3 (real TCP loopback, multiplexed
//     sessions, full dispatch round trip) must stay above an absolute
//     jobs/s floor. The floor is far below healthy numbers — 390k/s
//     measured on a 1-vCPU host, see EXPERIMENTS.md — because shared
//     runners stall; it exists to catch the pathological regressions
//     (batch coalescing broken, a flush per job) that cut throughput
//     by 3x or more, while compare gates the relative 25% against the
//     committed baseline.
func wireGuard(rep Report) []string {
	const floorJobsPerSec = 100_000
	var msgs []string
	for _, b := range rep.Benches {
		if strings.HasPrefix(b.Name, "BenchmarkWireCodecV3") {
			if b.Iters < 10_000 {
				fmt.Fprintf(os.Stderr, "benchjson: wire codec alloc gate skipped (%d iters; needs 10000+)\n", b.Iters)
				continue
			}
			if b.AllocsOp != 0 {
				msgs = append(msgs, fmt.Sprintf(
					"wire codec: %s reports %.0f allocs/op, want 0 (pooled codec must not allocate)",
					b.Name, b.AllocsOp))
			} else {
				fmt.Fprintf(os.Stderr, "benchjson: wire codec 0 allocs/op (%s)\n", b.Name)
			}
		}
		if strings.HasPrefix(b.Name, "BenchmarkWireLoopback/proto=v3") {
			rate, ok := b.Metrics["jobs/s"]
			if !ok {
				continue
			}
			if b.Iters < 10_000 {
				fmt.Fprintf(os.Stderr, "benchjson: wire loopback floor skipped (%d iters; needs 10000+ to amortize session setup)\n", b.Iters)
				continue
			}
			if rate < floorJobsPerSec {
				msgs = append(msgs, fmt.Sprintf(
					"wire loopback: %s %.0f jobs/s below %d floor",
					b.Name, rate, floorJobsPerSec))
			} else {
				fmt.Fprintf(os.Stderr, "benchjson: wire loopback %.0f jobs/s (%s, floor %d)\n",
					rate, b.Name, floorJobsPerSec)
			}
		}
	}
	return msgs
}

// shardGuard enforces the sharded DES kernel's wall-clock budget from a
// single report: BenchmarkFig1Sharded/mode=shards4 against mode=serial,
// one full 9,000-node Fig 1 simulation each (pinned -benchtime=1x),
// measured back-to-back in one process. The two modes produce
// bit-identical rows — the digest matrix test proves it — so the pair
// isolates pure kernel cost. The bound is host-shape-conditional, in
// the walGuard tradition:
//
//   - 6+ CPUs: four shards must deliver >=3x the serial wall clock.
//     The model partitions into 64 node groups with cross-group traffic
//     only at the final staging flush, so near-linear scaling to 4
//     shards is the healthy state; under 3x means the epoch barrier or
//     mailbox path got expensive.
//   - 4-5 CPUs: >=2.5x — the coordinator, GC, and OS share the shards'
//     cores, which taxes every barrier.
//   - Under 4 CPUs parallel speedup is unmeasurable, so the gate flips
//     to an overhead ceiling: shards4 may cost at most 1.25x serial.
//     Measured on a 1-vCPU host the 4-shard run is in fact ~1.1x
//     FASTER than serial (sixty-four small per-group event heaps beat
//     one 9,000-node heap; heap ops are O(log n)), so even single-core
//     CI catches a regression that makes windows or barriers costly.
func shardGuard(rep Report) []string {
	find := func(sub string) (Bench, bool) {
		for _, b := range rep.Benches {
			// Names carry a -GOMAXPROCS suffix (e.g. .../mode=serial-4).
			if strings.HasPrefix(b.Name, "BenchmarkFig1Sharded/"+sub) {
				return b, true
			}
		}
		return Bench{}, false
	}
	serial, okS := find("mode=serial")
	sharded, okP := find("mode=shards4")
	if !okS || !okP || serial.NsPerOp <= 0 || sharded.NsPerOp <= 0 {
		// The sharded pair wasn't part of this run (e.g. -stdin with a
		// partial capture); nothing to gate.
		return nil
	}
	speedup := serial.NsPerOp / sharded.NsPerOp
	switch {
	case rep.NumCPU >= 6:
		if speedup < 3.0 {
			return []string{fmt.Sprintf(
				"sharded kernel: 4-shard Fig 1 speedup %.2fx below 3x floor (serial %.2fs, shards4 %.2fs, %d CPUs)",
				speedup, serial.NsPerOp/1e9, sharded.NsPerOp/1e9, rep.NumCPU)}
		}
	case rep.NumCPU >= 4:
		if speedup < 2.5 {
			return []string{fmt.Sprintf(
				"sharded kernel: 4-shard Fig 1 speedup %.2fx below 2.5x floor (serial %.2fs, shards4 %.2fs, %d CPUs)",
				speedup, serial.NsPerOp/1e9, sharded.NsPerOp/1e9, rep.NumCPU)}
		}
	default:
		if sharded.NsPerOp > serial.NsPerOp*1.25 {
			return []string{fmt.Sprintf(
				"sharded kernel: shards4 %.2fs is %.2fx serial %.2fs (limit 1.25x, single-core overhead bound)",
				sharded.NsPerOp/1e9, sharded.NsPerOp/serial.NsPerOp, serial.NsPerOp/1e9)}
		}
	}
	fmt.Fprintf(os.Stderr, "benchjson: sharded kernel %.2fx vs serial on %d CPUs (serial %.2fs, shards4 %.2fs)\n",
		speedup, rep.NumCPU, serial.NsPerOp/1e9, sharded.NsPerOp/1e9)
	return nil
}

// parse extracts benchmark result lines from go test output.
func parse(s string) []Bench {
	var out []Bench
	for _, line := range strings.Split(s, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		b := Bench{Name: m[1], Iters: iters}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesOp = v
			case "allocs/op":
				b.AllocsOp = v
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[fields[i+1]] = v
			}
		}
		out = append(out, b)
	}
	return out
}

func load(path string) (Report, error) {
	var r Report
	b, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	return r, json.Unmarshal(b, &r)
}

// compare flags benchmarks whose ns/op regressed beyond tol, whose
// allocs/op grew past the jitter band (+1 alloc or +5%, whichever is
// larger — in-process hot paths are deterministic and additionally
// pinned by AllocsPerRun tests, but fork/exec and short-benchtime runs
// wobble by an alloc or two), or whose throughput metrics — any
// ReportMetric with a unit ending in "/s" (events/s, procs/s, tasks/s,
// jobs/s) — dropped beyond tol. Benchmarks present in only one report
// are ignored: the harness gates known hot paths, it does not force
// the two runs to share a benchmark set.
func compare(base, cur Report, tol float64) []string {
	old := map[string]Bench{}
	for _, b := range base.Benches {
		old[b.Name] = b
	}
	var msgs []string
	for _, b := range cur.Benches {
		o, ok := old[b.Name]
		if !ok || o.NsPerOp <= 0 {
			continue
		}
		if b.NsPerOp > o.NsPerOp*(1+tol) {
			msgs = append(msgs, fmt.Sprintf("%s: %.1f ns/op vs baseline %.1f (+%.0f%%, tolerance %.0f%%)",
				b.Name, b.NsPerOp, o.NsPerOp, (b.NsPerOp/o.NsPerOp-1)*100, tol*100))
		}
		if b.AllocsOp > o.AllocsOp+1 && b.AllocsOp > o.AllocsOp*1.05 {
			msgs = append(msgs, fmt.Sprintf("%s: %.0f allocs/op vs baseline %.0f",
				b.Name, b.AllocsOp, o.AllocsOp))
		}
		for unit, v := range b.Metrics {
			if !strings.HasSuffix(unit, "/s") {
				continue
			}
			ov, ok := o.Metrics[unit]
			if !ok || ov <= 0 {
				continue
			}
			if v < ov*(1-tol) {
				msgs = append(msgs, fmt.Sprintf("%s: %.0f %s vs baseline %.0f (-%.0f%%, tolerance %.0f%%)",
					b.Name, v, unit, ov, (1-v/ov)*100, tol*100))
			}
		}
	}
	return msgs
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}
