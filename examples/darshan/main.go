// Darshan massive log processing: the paper's §IV-B application, for
// real (Listing 5's one-liner shape).
//
// Generates a synthetic multi-month Darshan archive, then analyzes the
// 12-month x 3-app grid in parallel — the exact input structure of
//
//	parallel -j36 python3 ./darshan_arch.py ::: {1..12} ::: {0..2}
//
//	go run ./examples/darshan [-records 5000]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"repro"
	"repro/internal/darshan"
)

const apps = 3

func main() {
	records := flag.Int("records", 5000, "records per month archive")
	flag.Parse()

	dir, err := os.MkdirTemp("", "darshan-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Stage 1: generate one archive file per month (the five-year
	// Summit dataset stand-in), itself in parallel.
	months := make([]string, 12)
	for i := range months {
		months[i] = strconv.Itoa(i + 1)
	}
	genSpec, _ := repro.NewSpec("", 8)
	gen := repro.FuncRunner(func(ctx context.Context, job *repro.Job) ([]byte, error) {
		month, _ := strconv.Atoi(job.Args[0])
		f, err := os.Create(archivePath(dir, month))
		if err != nil {
			return nil, err
		}
		w := darshan.NewWriter(f)
		if err := darshan.Generate(w, *records, month, apps, uint64(100+month)); err != nil {
			f.Close()
			return nil, err
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return nil, err
		}
		return nil, f.Close()
	})
	genEng, _ := repro.NewEngine(genSpec, gen)
	start := time.Now()
	if _, _, err := genEng.Run(context.Background(), repro.Literal(months...)); err != nil {
		log.Fatal(err)
	}
	log.Printf("generated 12 month archives (%d records each) in %v", *records, time.Since(start).Round(time.Millisecond))

	// Stage 2: the Listing 5 grid — months x apps, 36 shards, -j36.
	spec, _ := repro.NewSpec("", 36)
	spec.KeepOrder = true
	spec.Out = os.Stdout
	analyze := repro.FuncRunner(func(ctx context.Context, job *repro.Job) ([]byte, error) {
		month, _ := strconv.Atoi(job.Args[0])
		app, _ := strconv.Atoi(job.Args[1])
		f, err := os.Open(archivePath(dir, month))
		if err != nil {
			return nil, err
		}
		defer f.Close()
		s, err := darshan.Analyze(darshan.NewReader(f), month, app)
		if err != nil {
			return nil, err
		}
		return []byte(fmt.Sprintf("month %2d %s: %5d jobs, %6.1f GiB read, %6.1f GiB written, max %4d procs\n",
			s.Month, darshan.AppName(uint32(app)), s.Jobs,
			float64(s.TotalRead)/(1<<30), float64(s.TotalWrit)/(1<<30), s.MaxNProcs)), nil
	})
	eng, _ := repro.NewEngine(spec, analyze)
	start = time.Now()
	stats, _, err := eng.Run(context.Background(), repro.Cross(
		repro.Literal(months...),
		repro.Literal("0", "1", "2"),
	))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nanalyzed %d (month, app) shards in %v — %d ok, avg dispatch %v\n",
		stats.Total, time.Since(start).Round(time.Millisecond),
		stats.Succeeded, stats.AvgDispatchDelay.Round(time.Microsecond))
	if stats.Succeeded != 36 {
		os.Exit(1)
	}
}

func archivePath(dir string, month int) string {
	return filepath.Join(dir, fmt.Sprintf("summit-%02d.darshan", month))
}
