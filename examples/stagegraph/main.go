// Stage graph: the launcher as a "last-mile parallelizing driver" (§V).
//
// A four-stage analysis workflow — generate → [curate, stats] → report —
// where each node of the dependency graph is itself one parallel engine
// run over many tasks. The graph provides ordering and failure
// propagation; the engine provides low-overhead fan-out within each
// stage. This is the composition the paper's conclusion recommends:
// workflow structure above, `parallel` underneath.
//
//	go run ./examples/stagegraph [-docs 2000]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"repro"
	"repro/internal/forge"
	"repro/internal/workflow"
)

func main() {
	ndocs := flag.Int("docs", 2000, "corpus size")
	flag.Parse()

	var (
		mu      sync.Mutex
		corpus  []string
		curated []forge.Doc
		lengths []int
	)

	// Each stage wraps one parallel engine run.
	parallelStage := func(jobs int, inputs func() []string, work func(arg string) error) func(context.Context) error {
		return func(ctx context.Context) error {
			runner := repro.FuncRunner(func(ctx context.Context, job *repro.Job) ([]byte, error) {
				return nil, work(job.Args[0])
			})
			spec, err := repro.NewSpec("", jobs)
			if err != nil {
				return err
			}
			eng, err := repro.NewEngine(spec, runner)
			if err != nil {
				return err
			}
			stats, _, err := eng.Run(ctx, repro.Literal(inputs()...))
			if err != nil {
				return err
			}
			log.Printf("stage ran %d tasks (%d ok)", stats.Total, stats.Succeeded)
			return nil
		}
	}

	g := workflow.NewGraph()

	g.Add("generate", nil, func(ctx context.Context) error {
		corpus = forge.GenerateCorpus(*ndocs, 7)
		return nil
	})

	pl := forge.NewPipeline()
	g.Add("curate", []string{"generate"},
		parallelStage(8, func() []string { return corpus }, func(raw string) error {
			doc, err := pl.Process(raw)
			if err != nil {
				return nil // drops are expected, not stage failures
			}
			mu.Lock()
			curated = append(curated, *doc)
			mu.Unlock()
			return nil
		}))

	g.Add("stats", []string{"generate"},
		parallelStage(8, func() []string { return corpus }, func(raw string) error {
			var rd forge.RawDoc
			if json.Unmarshal([]byte(raw), &rd) != nil {
				return nil
			}
			mu.Lock()
			lengths = append(lengths, len(rd.Text))
			mu.Unlock()
			return nil
		}))

	g.Add("report", []string{"curate", "stats"}, func(ctx context.Context) error {
		total := 0
		for _, l := range lengths {
			total += l
		}
		mean := 0
		if len(lengths) > 0 {
			mean = total / len(lengths)
		}
		st := pl.Stats.Snapshot()
		fmt.Printf("\nreport: %d raw docs, %d curated (%d dropped), mean text length %d bytes\n",
			*ndocs, len(curated), st.Processed-st.Kept, mean)
		return nil
	})

	start := time.Now()
	rep, err := g.Run(context.Background(), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph completed in %v:\n", time.Since(start).Round(time.Millisecond))
	for _, name := range []string{"generate", "curate", "stats", "report"} {
		n := rep.Nodes[name]
		fmt.Printf("  %-9s %-9s %v\n", name, n.Status, n.End.Sub(n.Start).Round(time.Millisecond))
	}
}
