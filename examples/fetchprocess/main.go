// Fetch-process: the paper's §IV-A motivating workflow, for real.
//
// A fetcher stage "downloads" image batches (synthetic pixel data
// standing in for the NOAA GOES regions of Listing 2) every interval and
// appends each batch's timestamp to a queue file. Concurrently, a
// processor stage tails the queue file — the `tail -n+0 -f q.proc |
// parallel` pattern of Listing 3 — and computes an image statistic per
// batch while later batches are still downloading.
//
//	go run ./examples/fetchprocess [-batches 4] [-interval 2s]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"os"
	"path/filepath"
	"time"

	"repro"
)

var regions = []string{"cgl", "ne", "nr", "se", "sp", "sr", "pr", "pnw"}

func main() {
	batches := flag.Int("batches", 4, "number of fetch rounds")
	interval := flag.Duration("interval", 2*time.Second, "fetch loop period (paper: 30s)")
	flag.Parse()

	dir, err := os.MkdirTemp("", "fetchproc-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	dataDir := filepath.Join(dir, "data")
	os.MkdirAll(dataDir, 0o755)
	queueFile := filepath.Join(dir, "q.proc")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// --- getdata (Listing 2): fetch 8 regions per round, then append
	// the round's timestamp to the queue file.
	fetchDone := make(chan struct{})
	go func() {
		defer close(fetchDone)
		for b := 0; b < *batches; b++ {
			ts := fmt.Sprintf("ts%04d", b)
			spec, _ := repro.NewSpec("", len(regions))
			fetcher := repro.FuncRunner(func(ctx context.Context, job *repro.Job) ([]byte, error) {
				return nil, fetchImage(dataDir, job.Args[0], ts, int64(b))
			})
			eng, _ := repro.NewEngine(spec, fetcher)
			if _, _, err := eng.Run(ctx, repro.Literal(regions...)); err != nil {
				log.Printf("fetch round %d: %v", b, err)
				return
			}
			f, err := os.OpenFile(queueFile, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
			if err != nil {
				log.Print(err)
				return
			}
			fmt.Fprintln(f, ts)
			f.Close()
			log.Printf("getdata: fetched batch %s (%d regions)", ts, len(regions))
			if b+1 < *batches {
				time.Sleep(*interval)
			}
		}
	}()

	// --- procdata (Listing 3): tail the queue and process each batch
	// as its timestamp appears. Processing = mean pixel value across
	// the batch's region images (the paper's `convert ... fx:mean`).
	processed := 0
	spec, _ := repro.NewSpec("", 8)
	spec.KeepOrder = true
	spec.OnResult = func(r repro.Result) {
		if r.OK() {
			processed++
			fmt.Printf("procdata: batch %s %s", r.Job.Args[0], r.Stdout)
		} else {
			log.Printf("procdata: batch %s failed: %v", r.Job.Args[0], r.Err)
		}
	}
	processor := repro.FuncRunner(func(ctx context.Context, job *repro.Job) ([]byte, error) {
		mean, n, err := batchMean(dataDir, job.Args[0])
		if err != nil {
			return nil, err
		}
		return []byte(fmt.Sprintf("mean brightness %.2f over %d images\n", mean, n)), nil
	})
	eng, _ := repro.NewEngine(spec, processor)

	// The queue source ends when fetching is done and the file has been
	// drained: cancel the follow a moment after the fetcher exits.
	followCtx, stopFollow := context.WithCancel(ctx)
	go func() {
		<-fetchDone
		time.Sleep(300 * time.Millisecond) // let the tail catch the last line
		stopFollow()
	}()
	stats, _, err := eng.Run(ctx, repro.FollowFile(followCtx, queueFile, 50*time.Millisecond))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprocessed %d/%d batches concurrently with fetching (engine: %+d ok)\n",
		processed, *batches, stats.Succeeded)
	if processed != *batches {
		os.Exit(1)
	}
}

// fetchImage writes a synthetic 64x64 grayscale "image" for a region.
func fetchImage(dir, region, ts string, seed int64) error {
	rng := rand.New(rand.NewPCG(uint64(seed), uint64(len(region))))
	px := make([]byte, 64*64)
	base := byte(rng.IntN(200))
	for i := range px {
		px[i] = base + byte(rng.IntN(56))
	}
	return os.WriteFile(filepath.Join(dir, fmt.Sprintf("%s_%s.img", region, ts)), px, 0o644)
}

// batchMean computes the mean pixel value across a batch's images.
func batchMean(dir, ts string) (float64, int, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*_"+ts+".img"))
	if err != nil {
		return 0, 0, err
	}
	if len(matches) == 0 {
		return 0, 0, fmt.Errorf("no images for batch %s", ts)
	}
	var sum, count float64
	for _, m := range matches {
		data, err := os.ReadFile(m)
		if err != nil {
			return 0, 0, err
		}
		for _, b := range data {
			sum += float64(b)
			count++
		}
	}
	return sum / count, len(matches), nil
}
