// Distributed execution: fan work out across worker daemons over TCP —
// the library-native equivalent of GNU Parallel's --sshlogin, and the
// scheduler-free alternative to the paper's Listing 1 driver script.
//
// This example starts three in-process workers on loopback listeners
// (in production they would be `gopard` daemons on other hosts), dials
// them as a Pool, and drives the standard engine through it: every
// engine feature — keep-order, retries, joblogs with host attribution —
// composes with remote execution unchanged.
//
//	go run ./examples/distributed [-tasks 24]
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"strings"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/dist"
)

func main() {
	ntasks := flag.Int("tasks", 24, "number of jobs to distribute")
	flag.Parse()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Start three "hosts". Each executes jobs with a FuncRunner here so
	// the example is hermetic; gopard would use real processes.
	var specs []dist.WorkerSpec
	for i, name := range []string{"node01", "node02", "node03"} {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		worker := name
		runner := repro.FuncRunner(func(ctx context.Context, job *repro.Job) ([]byte, error) {
			time.Sleep(10 * time.Millisecond) // the "work"
			return []byte(fmt.Sprintf("%s processed %s\n", worker, job.Args[0])), nil
		})
		go dist.Serve(ctx, l, dist.WorkerConfig{Name: name, Slots: 2 + i, Runner: runner})
		specs = append(specs, dist.WorkerSpec{Addr: l.Addr().String()})
	}

	pool, err := dist.Dial(specs)
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()
	log.Printf("pool connected: %d total slots across %d workers", pool.Slots(), len(specs))

	inputs := make([]string, *ntasks)
	for i := range inputs {
		inputs[i] = fmt.Sprintf("item-%02d", i)
	}

	var joblog bytes.Buffer
	spec, err := repro.NewSpec("", pool.Slots())
	if err != nil {
		log.Fatal(err)
	}
	spec.KeepOrder = true
	spec.Joblog = &joblog
	perHost := map[string]int{}
	spec.OnResult = func(r repro.Result) {
		perHost[r.Host]++
		fmt.Print(string(r.Stdout))
	}
	eng, err := repro.NewEngine(spec, pool)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	stats, _, err := eng.Run(ctx, repro.Literal(inputs...))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%d jobs in %v across %d hosts:\n",
		stats.Succeeded, time.Since(start).Round(time.Millisecond), len(perHost))
	for _, h := range []string{"node01", "node02", "node03"} {
		fmt.Printf("  %s: %d jobs\n", h, perHost[h])
	}
	if len(perHost) != 3 || stats.Succeeded != *ntasks {
		log.Fatal("distribution incomplete")
	}

	// The joblog attributes every job to the host that ran it.
	entries, err := core.ParseJoblog(strings.NewReader(joblog.String()))
	if err != nil || len(entries) != *ntasks {
		log.Fatalf("joblog: %v (%d entries)", err, len(entries))
	}
	fmt.Println("joblog host attribution verified")
}
