// Data motion: the paper's §IV-E parallel incremental transfer, for real.
//
// Builds a source tree of files, migrates it with N parallel streams
// (the `find | parallel -j32 rsync -R -Ha` pattern), then demonstrates
// rsync-style incrementality: a second run after touching a few files
// moves only the delta.
//
//	go run ./examples/datamotion [-files 400] [-j 16]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"os"
	"path/filepath"
	"time"

	"repro/internal/transfer"
)

func main() {
	nfiles := flag.Int("files", 400, "files in the source tree")
	jobs := flag.Int("j", 16, "parallel copy streams")
	flag.Parse()

	root, err := os.MkdirTemp("", "datamotion-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)
	src := filepath.Join(root, "gpfs", "proj", "data")
	dst := filepath.Join(root, "lustre", "proj")

	// Build the source project tree.
	rng := rand.New(rand.NewPCG(7, 11))
	var total int64
	for i := 0; i < *nfiles; i++ {
		rel := fmt.Sprintf("d%02d/d%02d/file%04d.dat", rng.IntN(16), rng.IntN(16), i)
		size := 1024 + rng.IntN(64*1024)
		data := make([]byte, size)
		for j := range data {
			data[j] = byte(rng.IntN(256))
		}
		p := filepath.Join(src, rel)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(p, data, 0o644); err != nil {
			log.Fatal(err)
		}
		total += int64(size)
	}
	log.Printf("source tree: %d files, %.1f MB", *nfiles, float64(total)/1e6)

	// Pass 1: full migration.
	start := time.Now()
	stats, err := transfer.CopyTree(context.Background(), src, dst, *jobs, true)
	if err != nil {
		log.Fatal(err)
	}
	el := time.Since(start)
	fmt.Printf("pass 1: copied %d files (%.1f MB) with %d streams in %v (%.0f Mb/s)\n",
		stats.Copied, float64(stats.Bytes)/1e6, *jobs, el.Round(time.Millisecond),
		float64(stats.Bytes)*8/1e6/el.Seconds())
	if stats.Copied != *nfiles || stats.Failed != 0 {
		log.Fatalf("pass 1 incomplete: %+v", stats)
	}

	// Pass 2: nothing changed — nothing moves.
	stats2, err := transfer.CopyTree(context.Background(), src, dst, *jobs, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pass 2: copied %d, skipped %d (incremental no-op)\n", stats2.Copied, stats2.Skipped)
	if stats2.Copied != 0 {
		log.Fatalf("pass 2 should copy nothing: %+v", stats2)
	}

	// Pass 3: touch 5%% of files; only those move.
	touched := 0
	err = filepath.WalkDir(src, func(p string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		if rng.IntN(20) == 0 {
			touched++
			return os.WriteFile(p, []byte("modified content"), 0o644)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	stats3, err := transfer.CopyTree(context.Background(), src, dst, *jobs, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pass 3: touched %d files, copied %d, skipped %d\n",
		touched, stats3.Copied, stats3.Skipped)
	if stats3.Copied != touched {
		log.Fatalf("incremental delta wrong: touched %d, copied %d", touched, stats3.Copied)
	}
	fmt.Println("incremental parallel transfer verified")
}
