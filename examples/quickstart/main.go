// Quickstart: the library in five minutes.
//
// Runs real shell commands in parallel with slot-limited dispatch,
// keep-order output, retries, a GNU-Parallel-format joblog, and the
// replacement-string template language.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	ctx := context.Background()

	// 1. One-liner: `parallel -j4 'echo processed {}' ::: a b c d e`.
	fmt.Println("--- one-liner ---")
	stats, err := repro.Run(ctx, "echo processed {}", 4, os.Stdout, "a", "b", "c", "d", "e")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ran %d jobs, %d ok, avg dispatch %v\n\n",
		stats.Total, stats.Succeeded, stats.AvgDispatchDelay)

	// 2. Full Spec: keep-order, sequence/slot templates, joblog.
	fmt.Println("--- keep-order with templates and joblog ---")
	spec, err := repro.NewSpec(`sh -c 'echo "job {#} on slot {%}: {} -> {.}.out"'`, 3)
	if err != nil {
		log.Fatal(err)
	}
	spec.KeepOrder = true
	spec.Out = os.Stdout
	var joblog bytes.Buffer
	spec.Joblog = &joblog
	eng, err := repro.NewEngine(spec, nil)
	if err != nil {
		log.Fatal(err)
	}
	if _, _, err := eng.Run(ctx, repro.Literal("alpha.txt", "beta.txt", "gamma.txt")); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\njoblog:\n%s\n", joblog.String())

	// 3. Cartesian input combination: ::: {1..3} ::: {x,y}.
	fmt.Println("--- cartesian product ---")
	spec2, _ := repro.NewSpec("echo combo month={1} app={2}", 4)
	spec2.Out = os.Stdout
	spec2.KeepOrder = true
	eng2, _ := repro.NewEngine(spec2, nil)
	if _, _, err := eng2.Run(ctx, repro.Cross(
		repro.Literal("1", "2", "3"),
		repro.Literal("x", "y"),
	)); err != nil {
		log.Fatal(err)
	}

	// 4. In-process Go payloads: no fork at all.
	fmt.Println("\n--- FuncRunner: Go payloads ---")
	runner := repro.FuncRunner(func(ctx context.Context, job *repro.Job) ([]byte, error) {
		sum := 0
		for _, c := range job.Args[0] {
			sum += int(c)
		}
		return []byte(fmt.Sprintf("checksum(%s) = %d\n", job.Args[0], sum)), nil
	})
	spec3, _ := repro.NewSpec("", 8)
	spec3.Out = os.Stdout
	eng3, _ := repro.NewEngine(spec3, runner)
	if _, _, err := eng3.Run(ctx, repro.Literal("hello", "parallel", "world")); err != nil {
		log.Fatal(err)
	}
}
