// FORGE curation: the paper's §IV-C preprocessing stage, for real.
//
// Generates a synthetic publication corpus (with the defect classes real
// dumps contain: non-English text, markup noise, missing abstracts,
// duplicates, malformed records) and curates it through the parallel
// engine, printing the kept/dropped breakdown and throughput.
//
//	go run ./examples/forge [-docs 10000] [-j 8]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro"
	"repro/internal/forge"
)

func main() {
	docs := flag.Int("docs", 10_000, "corpus size")
	jobs := flag.Int("j", 8, "parallel curation slots")
	out := flag.String("o", "", "write curated JSONL to this file (default: discard)")
	flag.Parse()

	log.Printf("generating %d-document corpus...", *docs)
	corpus := forge.GenerateCorpus(*docs, 42)

	var sink *os.File
	if *out != "" {
		var err error
		sink, err = os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer sink.Close()
	}

	pl := forge.NewPipeline()
	runner := repro.FuncRunner(func(ctx context.Context, job *repro.Job) ([]byte, error) {
		doc, err := pl.Process(job.Args[0])
		if err != nil {
			return nil, err
		}
		b, _ := json.Marshal(doc)
		return append(b, '\n'), nil
	})
	spec, err := repro.NewSpec("", *jobs)
	if err != nil {
		log.Fatal(err)
	}
	if sink != nil {
		spec.Out = sink
	}
	eng, err := repro.NewEngine(spec, runner)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	stats, _, err := eng.Run(context.Background(), repro.Literal(corpus...))
	if err != nil {
		log.Fatal(err)
	}
	el := time.Since(start)

	st := pl.Stats.Snapshot()
	fmt.Printf("curated %d documents in %v with -j%d (%.0f docs/s)\n",
		st.Processed, el.Round(time.Millisecond), *jobs, float64(st.Processed)/el.Seconds())
	fmt.Printf("  kept:            %6d (%.1f%%)\n", st.Kept, pct(st.Kept, st.Processed))
	fmt.Printf("  non-English:     %6d\n", st.DroppedNonEnglish)
	fmt.Printf("  no abstract:     %6d\n", st.DroppedNoAbstract)
	fmt.Printf("  duplicates:      %6d\n", st.DroppedDuplicate)
	fmt.Printf("  malformed:       %6d\n", st.DroppedMalformed)
	if stats.Succeeded != st.Kept {
		log.Fatalf("engine successes %d != pipeline kept %d", stats.Succeeded, st.Kept)
	}
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b) * 100
}
