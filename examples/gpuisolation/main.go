// GPU isolation: the paper's §IV-D Celeritas pattern, for real.
//
// Generates Celeritas-style .inp.json inputs, then executes the
// mini Monte Carlo transport kernel for each with 8 parallel slots, each
// slot pinned to a distinct (virtual) GPU via the {%}-derived
// HIP_VISIBLE_DEVICES binding — exactly the launch line from the paper:
//
//	parallel -j8 HIP_VISIBLE_DEVICES="$(({%} - 1))" celer-sim {} ...
//
//	go run ./examples/gpuisolation [-inputs 16]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro"
	"repro/internal/celeritas"
	"repro/internal/gpu"
)

func main() {
	ninputs := flag.Int("inputs", 16, "number of .inp.json problems")
	flag.Parse()

	dir, err := os.MkdirTemp("", "celeritas-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Write the input deck: one JSON problem per file.
	var inputs []string
	for i := 0; i < *ninputs; i++ {
		cfg := celeritas.DefaultConfig(fmt.Sprintf("problem%02d", i))
		cfg.Photons = 200_000
		cfg.Seed = uint64(i + 1)
		cfg.MuAbs = 0.1 + 0.05*float64(i%5)
		b, _ := json.Marshal(cfg)
		path := filepath.Join(dir, cfg.Name+".inp.json")
		if err := os.WriteFile(path, b, 0o644); err != nil {
			log.Fatal(err)
		}
		inputs = append(inputs, path)
	}

	// Track which "GPU" every job landed on.
	var mu sync.Mutex
	perGPU := map[int]int{}

	runner := repro.FuncRunner(func(ctx context.Context, job *repro.Job) ([]byte, error) {
		dev, ok := gpu.ParseVisible(job.Env)
		if !ok {
			return nil, fmt.Errorf("job %d has no GPU binding", job.Seq)
		}
		mu.Lock()
		perGPU[dev]++
		mu.Unlock()

		f, err := os.Open(job.Args[0])
		if err != nil {
			return nil, err
		}
		cfg, err := celeritas.ParseConfig(f)
		f.Close()
		if err != nil {
			return nil, err
		}
		tally, err := celeritas.Run(cfg) // the real MC kernel
		if err != nil {
			return nil, err
		}
		out := fmt.Sprintf("[gpu %d] %s: %d histories, %.0f MeV deposited, T/R/A = %d/%d/%d\n",
			dev, cfg.Name, tally.Histories, tally.TotalDeposited(),
			tally.Transmitted, tally.Reflected, tally.Absorbed)
		return []byte(out), nil
	})

	spec, err := repro.NewSpec("", 8) // -j8: one slot per GPU
	if err != nil {
		log.Fatal(err)
	}
	spec.Out = os.Stdout
	spec.KeepOrder = true
	// HIP_VISIBLE_DEVICES="$(({%} - 1))"
	spec.SlotEnv = func(slot int) []string {
		return []string{gpu.VisibleEnv("HIP", gpu.SlotDevice(slot))}
	}
	eng, err := repro.NewEngine(spec, runner)
	if err != nil {
		log.Fatal(err)
	}
	stats, _, err := eng.Run(context.Background(), repro.Literal(inputs...))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%d simulations, %d ok — per-GPU job counts:\n", stats.Total, stats.Succeeded)
	devs := make([]int, 0, len(perGPU))
	for d := range perGPU {
		devs = append(devs, d)
	}
	sort.Ints(devs)
	for _, d := range devs {
		fmt.Printf("  GPU %d: %d jobs\n", d, perGPU[d])
	}
	if len(perGPU) != 8 {
		log.Fatalf("expected jobs spread over 8 GPUs, saw %d", len(perGPU))
	}
}
