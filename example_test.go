package repro_test

import (
	"context"
	"fmt"
	"os"
	"strings"

	"repro"
)

// ExampleRun shows the one-call form: parallel -j2 'echo hi {}' ::: a b.
func ExampleRun() {
	var out strings.Builder
	stats, err := repro.Run(context.Background(), "echo hi {}", 2, &out, "a", "b")
	if err != nil {
		panic(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	fmt.Println(len(lines), "lines,", stats.Succeeded, "ok")
	// Output: 2 lines, 2 ok
}

// ExampleNewEngine demonstrates keep-order output with sequence and slot
// placeholders.
func ExampleNewEngine() {
	spec, _ := repro.NewSpec("echo job {#} got {}", 4)
	spec.KeepOrder = true
	spec.Out = os.Stdout
	eng, _ := repro.NewEngine(spec, nil)
	eng.Run(context.Background(), repro.Literal("x", "y", "z"))
	// Output:
	// job 1 got x
	// job 2 got y
	// job 3 got z
}

// ExampleFuncRunner runs in-process Go payloads — no fork at all.
func ExampleFuncRunner() {
	runner := repro.FuncRunner(func(ctx context.Context, job *repro.Job) ([]byte, error) {
		return []byte(strings.ToUpper(job.Args[0]) + "\n"), nil
	})
	spec, _ := repro.NewSpec("", 2)
	spec.KeepOrder = true
	spec.Out = os.Stdout
	eng, _ := repro.NewEngine(spec, runner)
	eng.Run(context.Background(), repro.Literal("alpha", "beta"))
	// Output:
	// ALPHA
	// BETA
}

// ExampleCross combines input sources as a cartesian product, like
// `parallel cmd ::: 1 2 ::: a b`.
func ExampleCross() {
	spec, _ := repro.NewSpec("echo {1}-{2}", 1)
	spec.KeepOrder = true
	spec.DryRun = true
	spec.Out = os.Stdout
	eng, _ := repro.NewEngine(spec, nil)
	eng.Run(context.Background(), repro.Cross(
		repro.Literal("1", "2"),
		repro.Literal("a", "b"),
	))
	// Output:
	// echo 1-a
	// echo 1-b
	// echo 2-a
	// echo 2-b
}
