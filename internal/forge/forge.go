// Package forge implements the FORGE data-curation preprocessing stage
// (§IV-C, Fig 8): cleaning and enriching raw publication records before
// LLM training. The pipeline extracts abstracts and full text, removes
// non-English documents and extraneous characters, and deduplicates —
// the steps the paper parallelizes with GNU Parallel across the corpus.
//
// A synthetic corpus generator stands in for the 200M-article source
// (which is proprietary); it injects the defect classes the real
// pipeline must handle: non-English text, control/markup noise, missing
// abstracts, malformed records, and duplicates.
package forge

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand/v2"
	"strings"
	"sync"
	"unicode"
)

// RawDoc is one input record as found in the (synthetic) publication dump.
type RawDoc struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	Text  string `json:"text"`
}

// Doc is one curated output document.
type Doc struct {
	ID       string `json:"id"`
	Title    string `json:"title"`
	Abstract string `json:"abstract"`
	Body     string `json:"body"`
}

// Drop reasons.
var (
	ErrMalformed  = errors.New("forge: malformed record")
	ErrNonEnglish = errors.New("forge: non-English document")
	ErrNoAbstract = errors.New("forge: no abstract extractable")
	ErrDuplicate  = errors.New("forge: duplicate document")
)

// Scrub removes extraneous characters: control bytes, replacement runes,
// markup entities, and collapsed runs of whitespace.
func Scrub(s string) string {
	for _, ent := range [][2]string{
		{"&amp;", "&"}, {"&lt;", "<"}, {"&gt;", ">"}, {"&quot;", `"`}, {"&nbsp;", " "},
	} {
		s = strings.ReplaceAll(s, ent[0], ent[1])
	}
	var b strings.Builder
	b.Grow(len(s))
	prevSpace := false
	for _, r := range s {
		switch {
		case r == '\n':
			// Preserve paragraph structure.
			b.WriteRune('\n')
			prevSpace = false
			continue
		case unicode.IsSpace(r):
			// Note: checked before IsControl so '\t' counts as
			// whitespace, not a control byte to delete.
			if !prevSpace {
				b.WriteByte(' ')
			}
			prevSpace = true
			continue
		case unicode.IsControl(r), r == unicode.ReplacementChar:
			continue
		}
		prevSpace = false
		b.WriteRune(r)
	}
	return strings.TrimSpace(b.String())
}

// IsEnglish applies a cheap latin-script heuristic: among letters, at
// least 90% must be ASCII, and the text must contain a minimum of common
// English function words per 100 words.
func IsEnglish(s string) bool {
	letters, ascii := 0, 0
	for _, r := range s {
		if unicode.IsLetter(r) {
			letters++
			if r < 128 {
				ascii++
			}
		}
	}
	if letters == 0 {
		return false
	}
	if float64(ascii)/float64(letters) < 0.90 {
		return false
	}
	common := map[string]bool{
		"the": true, "of": true, "and": true, "in": true, "to": true,
		"a": true, "is": true, "we": true, "for": true, "with": true,
	}
	words := strings.Fields(strings.ToLower(s))
	if len(words) == 0 {
		return false
	}
	hits := 0
	for _, w := range words {
		if common[strings.Trim(w, ".,;:()")] {
			hits++
		}
	}
	return float64(hits)/float64(len(words)) >= 0.02
}

// ExtractAbstract splits curated text into abstract (first paragraph) and
// body. It fails when the first paragraph is too short to be an abstract.
func ExtractAbstract(text string) (abstract, body string, err error) {
	parts := strings.SplitN(text, "\n", 2)
	abstract = strings.TrimSpace(parts[0])
	if len(parts) > 1 {
		body = strings.TrimSpace(parts[1])
	}
	if len(strings.Fields(abstract)) < 8 {
		return "", "", ErrNoAbstract
	}
	return abstract, body, nil
}

// Dedup is a concurrency-safe content-hash deduplicator.
type Dedup struct {
	mu   sync.Mutex
	seen map[uint64]bool
}

// NewDedup returns an empty deduplicator.
func NewDedup() *Dedup { return &Dedup{seen: map[uint64]bool{}} }

// Check records the document content and reports whether it was already
// seen.
func (d *Dedup) Check(content string) bool {
	h := fnv.New64a()
	h.Write([]byte(content))
	key := h.Sum64()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.seen[key] {
		return true
	}
	d.seen[key] = true
	return false
}

// Len returns distinct documents recorded.
func (d *Dedup) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.seen)
}

// Stats is a plain snapshot of pipeline outcomes.
type Stats struct {
	Processed, Kept                     int
	DroppedMalformed, DroppedNonEnglish int
	DroppedNoAbstract, DroppedDuplicate int
}

// statsCounter is the concurrency-safe accumulator behind Pipeline.
type statsCounter struct {
	mu sync.Mutex
	s  Stats
}

func (c *statsCounter) record(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.s.Processed++
	switch {
	case err == nil:
		c.s.Kept++
	case errors.Is(err, ErrMalformed):
		c.s.DroppedMalformed++
	case errors.Is(err, ErrNonEnglish):
		c.s.DroppedNonEnglish++
	case errors.Is(err, ErrNoAbstract):
		c.s.DroppedNoAbstract++
	case errors.Is(err, ErrDuplicate):
		c.s.DroppedDuplicate++
	}
}

// Snapshot returns a copy of the counters.
func (c *statsCounter) Snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s
}

// Pipeline is the full curation chain.
type Pipeline struct {
	dedup *Dedup
	// Stats accumulates outcomes across (possibly concurrent) calls.
	Stats statsCounter
}

// NewPipeline returns a fresh pipeline.
func NewPipeline() *Pipeline { return &Pipeline{dedup: NewDedup()} }

// Process curates one raw JSON line. It returns the curated document or a
// categorized drop error.
func (pl *Pipeline) Process(rawJSON string) (*Doc, error) {
	doc, err := pl.process(rawJSON)
	pl.Stats.record(err)
	return doc, err
}

func (pl *Pipeline) process(rawJSON string) (*Doc, error) {
	var raw RawDoc
	if err := json.Unmarshal([]byte(rawJSON), &raw); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	if raw.ID == "" || raw.Text == "" {
		return nil, fmt.Errorf("%w: missing id or text", ErrMalformed)
	}
	title := Scrub(raw.Title)
	text := Scrub(raw.Text)
	if !IsEnglish(text) {
		return nil, ErrNonEnglish
	}
	abstract, body, err := ExtractAbstract(text)
	if err != nil {
		return nil, err
	}
	if pl.dedup.Check(abstract) {
		return nil, ErrDuplicate
	}
	return &Doc{ID: raw.ID, Title: title, Abstract: abstract, Body: body}, nil
}

// --- Synthetic corpus ------------------------------------------------------

var englishWords = strings.Fields(`the of and in to a is we for with model
results data energy method analysis experiment physics material quantum
neutron simulation temperature structure measurement spectrum phase beam
sample field theory approach study system high low large scale effect`)

var cyrillicWords = strings.Fields(`данные модель результат энергия метод
анализ эксперимент физика материал квантовый нейтрон структура фаза`)

// GenerateCorpus emits n raw JSON lines with the given defect mix,
// deterministic per seed. Roughly: 6% non-English, 4% duplicates, 3%
// missing abstracts, 2% malformed, and pervasive character noise.
func GenerateCorpus(n int, seed uint64) []string {
	rng := rand.New(rand.NewPCG(seed, seed^0xABCDEF12345))
	out := make([]string, 0, n)
	var dupPool []string
	sentence := func(words []string, k int) string {
		var b strings.Builder
		for i := 0; i < k; i++ {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(words[rng.IntN(len(words))])
		}
		return b.String()
	}
	for i := 0; i < n; i++ {
		r := rng.Float64()
		switch {
		case r < 0.02: // malformed
			out = append(out, `{"id": "broken-`+fmt.Sprint(i)+`", "text": `)
		case r < 0.06 && len(dupPool) > 0: // duplicate of an earlier doc
			out = append(out, dupPool[rng.IntN(len(dupPool))])
		case r < 0.12: // non-English
			doc := RawDoc{
				ID:    fmt.Sprintf("doc-%06d", i),
				Title: sentence(cyrillicWords, 6),
				Text:  sentence(cyrillicWords, 40) + "\n" + sentence(cyrillicWords, 200),
			}
			b, _ := json.Marshal(doc)
			out = append(out, string(b))
		case r < 0.15: // too-short abstract
			doc := RawDoc{
				ID:    fmt.Sprintf("doc-%06d", i),
				Title: sentence(englishWords, 5),
				Text:  sentence(englishWords, 3) + "\n" + sentence(englishWords, 150),
			}
			b, _ := json.Marshal(doc)
			out = append(out, string(b))
		default: // good doc, with noise injected
			abstract := sentence(englishWords, 30+rng.IntN(30))
			body := sentence(englishWords, 150+rng.IntN(400))
			if rng.Float64() < 0.5 { // sprinkle extraneous chars
				abstract = "\x07" + strings.Replace(abstract, " ", "  ", 3)
				body = strings.Replace(body, " and ", " &amp; ", 2)
			}
			doc := RawDoc{
				ID:    fmt.Sprintf("doc-%06d", i),
				Title: sentence(englishWords, 4+rng.IntN(8)),
				Text:  abstract + "\n" + body,
			}
			b, _ := json.Marshal(doc)
			line := string(b)
			out = append(out, line)
			if len(dupPool) < 64 {
				dupPool = append(dupPool, line)
			}
		}
	}
	return out
}
