package forge

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/args"
	"repro/internal/core"
)

func TestScrub(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain text", "plain text"},
		{"a\x00b\x07c", "abc"},
		{"multi   space\tand\ttabs", "multi space and tabs"},
		{"&amp; &lt;tag&gt; &quot;q&quot; x&nbsp;y", `& <tag> "q" x y`},
		{"  trimmed  ", "trimmed"},
		{"keep\nparagraphs", "keep\nparagraphs"},
		{"rep�lacement", "replacement"},
		{"", ""},
	}
	for _, c := range cases {
		if got := Scrub(c.in); got != c.want {
			t.Errorf("Scrub(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestIsEnglish(t *testing.T) {
	if !IsEnglish("we present the results of a neutron scattering experiment with the model") {
		t.Error("English text rejected")
	}
	if IsEnglish("данные модель результат энергия метод анализ эксперимент") {
		t.Error("Cyrillic text accepted")
	}
	if IsEnglish("") {
		t.Error("empty accepted")
	}
	if IsEnglish("zzz qqq xxx vvv kkk jjj www ppp") {
		t.Error("gibberish with no function words accepted")
	}
}

func TestExtractAbstract(t *testing.T) {
	abs, body, err := ExtractAbstract("this is a long enough abstract with many words in it\nthe body follows here")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(abs, "this is") || body != "the body follows here" {
		t.Fatalf("abs=%q body=%q", abs, body)
	}
	if _, _, err := ExtractAbstract("too short\nbody"); !errors.Is(err, ErrNoAbstract) {
		t.Fatalf("err = %v", err)
	}
	// Single paragraph: body empty.
	abs, body, err = ExtractAbstract("a single long paragraph with enough words to be an abstract here")
	if err != nil || body != "" || abs == "" {
		t.Fatalf("single-paragraph: abs=%q body=%q err=%v", abs, body, err)
	}
}

func TestDedup(t *testing.T) {
	d := NewDedup()
	if d.Check("abc") {
		t.Fatal("first occurrence flagged")
	}
	if !d.Check("abc") {
		t.Fatal("second occurrence not flagged")
	}
	if d.Check("xyz") {
		t.Fatal("distinct content flagged")
	}
	if d.Len() != 2 {
		t.Fatalf("len = %d", d.Len())
	}
}

func TestDedupConcurrent(t *testing.T) {
	d := NewDedup()
	var wg sync.WaitGroup
	dups := make(chan bool, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dups <- d.Check("same-content")
		}()
	}
	wg.Wait()
	close(dups)
	firsts := 0
	for isDup := range dups {
		if !isDup {
			firsts++
		}
	}
	if firsts != 1 {
		t.Fatalf("%d goroutines saw first occurrence, want exactly 1", firsts)
	}
}

func mkRaw(t *testing.T, id, title, text string) string {
	t.Helper()
	b, err := json.Marshal(RawDoc{ID: id, Title: title, Text: text})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestPipelineProcess(t *testing.T) {
	pl := NewPipeline()
	good := mkRaw(t, "d1", "a title",
		"we present the results of a study of the model with data and analysis\nbody of the paper with results")
	doc, err := pl.Process(good)
	if err != nil {
		t.Fatal(err)
	}
	if doc.ID != "d1" || doc.Abstract == "" || doc.Body == "" {
		t.Fatalf("doc = %+v", doc)
	}

	if _, err := pl.Process(good); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate: %v", err)
	}
	if _, err := pl.Process("{broken"); !errors.Is(err, ErrMalformed) {
		t.Fatalf("malformed: %v", err)
	}
	if _, err := pl.Process(`{"id":"x"}`); !errors.Is(err, ErrMalformed) {
		t.Fatalf("missing text: %v", err)
	}
	nonEng := mkRaw(t, "d2", "заголовок",
		"данные модель результат энергия метод анализ эксперимент физика материал квантовый\nтело статьи")
	if _, err := pl.Process(nonEng); !errors.Is(err, ErrNonEnglish) {
		t.Fatalf("non-english: %v", err)
	}

	st := pl.Stats.Snapshot()
	if st.Processed != 5 || st.Kept != 1 || st.DroppedDuplicate != 1 ||
		st.DroppedMalformed != 2 || st.DroppedNonEnglish != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPipelineScrubsNoise(t *testing.T) {
	pl := NewPipeline()
	noisy := mkRaw(t, "d1", "ti\x07tle",
		"we present the  results &amp; analysis of the model with data in this work\nbody text of the paper")
	doc, err := pl.Process(noisy)
	if err != nil {
		t.Fatal(err)
	}
	if strings.ContainsAny(doc.Abstract+doc.Title, "\x07") {
		t.Fatal("control chars survived")
	}
	if strings.Contains(doc.Abstract, "&amp;") {
		t.Fatal("entities survived")
	}
	if strings.Contains(doc.Abstract, "  ") {
		t.Fatal("whitespace not collapsed")
	}
}

func TestGenerateCorpusDeterministic(t *testing.T) {
	a := GenerateCorpus(200, 42)
	b := GenerateCorpus(200, 42)
	if len(a) != 200 || len(b) != 200 {
		t.Fatalf("lens = %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("corpus not deterministic")
		}
	}
}

func TestCorpusThroughPipeline(t *testing.T) {
	corpus := GenerateCorpus(1000, 7)
	pl := NewPipeline()
	for _, line := range corpus {
		pl.Process(line)
	}
	st := pl.Stats.Snapshot()
	if st.Processed != 1000 {
		t.Fatalf("processed = %d", st.Processed)
	}
	if st.Kept < 700 || st.Kept > 950 {
		t.Fatalf("kept = %d, want most of the corpus", st.Kept)
	}
	for name, v := range map[string]int{
		"malformed":  st.DroppedMalformed,
		"nonenglish": st.DroppedNonEnglish,
		"noabstract": st.DroppedNoAbstract,
		"duplicate":  st.DroppedDuplicate,
	} {
		if v == 0 {
			t.Errorf("defect class %s never triggered; generator mix broken", name)
		}
	}
}

func TestCurationThroughParallelEngine(t *testing.T) {
	// End-to-end: the curation pipeline as a core-engine workload, the
	// way §IV-C runs it.
	corpus := GenerateCorpus(500, 9)
	pl := NewPipeline()
	runner := core.FuncRunner(func(ctx context.Context, job *core.Job) ([]byte, error) {
		doc, err := pl.Process(job.Args[0])
		if err != nil {
			return nil, err
		}
		b, _ := json.Marshal(doc)
		return append(b, '\n'), nil
	})
	spec, err := core.NewSpec("", 8)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(spec, runner)
	if err != nil {
		t.Fatal(err)
	}
	stats, _, err := eng.Run(context.Background(), args.Literal(corpus...))
	if err != nil {
		t.Fatal(err)
	}
	st := pl.Stats.Snapshot()
	if stats.Total != 500 || st.Processed != 500 {
		t.Fatalf("engine=%+v pipeline=%+v", stats, st)
	}
	if stats.Succeeded != st.Kept {
		t.Fatalf("engine successes %d != pipeline kept %d", stats.Succeeded, st.Kept)
	}
}

func BenchmarkPipelineProcess(b *testing.B) {
	corpus := GenerateCorpus(1000, 11)
	pl := NewPipeline()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl.Process(corpus[i%len(corpus)])
	}
}
