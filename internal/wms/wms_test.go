package wms

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
)

func TestSwiftTCalibration(t *testing.T) {
	o := SwiftT()
	at50k := o.Total(50_000).Seconds()
	at100k := o.Total(100_000).Seconds()
	if math.Abs(at50k-500) > 5 {
		t.Fatalf("Total(50k) = %.0fs, want ~500s", at50k)
	}
	if math.Abs(at100k-5000) > 50 {
		t.Fatalf("Total(100k) = %.0fs, want ~5000s", at100k)
	}
	if o.Total(0) != 0 {
		t.Fatal("Total(0) != 0")
	}
}

func TestPerTaskIntegratesToTotal(t *testing.T) {
	o := SwiftT()
	n := 20_000
	var sum time.Duration
	for i := 1; i <= n; i++ {
		sum += o.PerTask(i)
	}
	total := o.Total(n)
	ratio := float64(sum) / float64(total)
	if ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("sum of PerTask = %v, Total = %v (ratio %.3f)", sum, total, ratio)
	}
}

func TestPerTaskMonotone(t *testing.T) {
	o := SwiftT()
	if o.PerTask(0) != o.PerTask(1) {
		t.Fatal("PerTask(0) should clamp to PerTask(1)")
	}
	prev := time.Duration(0)
	for _, i := range []int{1, 100, 10_000, 50_000, 100_000} {
		c := o.PerTask(i)
		if c < prev {
			t.Fatalf("PerTask not monotone at %d", i)
		}
		prev = c
	}
}

func TestRunCentralOverheadDominates(t *testing.T) {
	// Zero-payload tasks: makespan ~ orchestration overhead, which is
	// the WfBench observation.
	e := sim.NewEngine(1)
	var rep Report
	e.Spawn("wms", func(p *sim.Proc) {
		rep = RunCentral(p, SwiftT(), 10_000, 128, 0)
	})
	e.Run()
	if rep.Tasks != 10_000 {
		t.Fatalf("tasks = %d", rep.Tasks)
	}
	want := SwiftT().Total(10_000)
	ratio := float64(rep.Makespan) / float64(want)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("makespan %v vs closed-form %v", rep.Makespan, want)
	}
}

func TestRunCentralWithPayloadStillSerializedByDispatcher(t *testing.T) {
	e := sim.NewEngine(1)
	var rep Report
	e.Spawn("wms", func(p *sim.Proc) {
		rep = RunCentral(p, SwiftT(), 1_000, 8, 10*time.Millisecond)
	})
	e.Run()
	if rep.Makespan < rep.OverheadTime {
		t.Fatalf("makespan %v < overhead %v", rep.Makespan, rep.OverheadTime)
	}
}

func TestStaticSplitStragglerPenalty(t *testing.T) {
	// Heterogeneous durations: one chunk accumulates the long tasks.
	// Greedy refill balances; static split does not.
	durations := make([]time.Duration, 64)
	for i := range durations {
		if i < 8 {
			durations[i] = 8 * time.Second // long tasks cluster up front
		} else {
			durations[i] = 100 * time.Millisecond
		}
	}
	run := func(f func(p *sim.Proc) Report) Report {
		e := sim.NewEngine(1)
		var rep Report
		e.Spawn("driver", func(p *sim.Proc) { rep = f(p) })
		e.Run()
		return rep
	}
	static := run(func(p *sim.Proc) Report {
		return RunStaticSplit(p, 8, time.Millisecond, durations)
	})
	greedy := run(func(p *sim.Proc) Report {
		return RunGreedy(p, 8, time.Millisecond, durations)
	})
	// Static: the first chunk holds all 8 long tasks serially = 64s.
	// Greedy: 8 long tasks run concurrently ~ 8s + change.
	if static.Makespan < 60*time.Second {
		t.Fatalf("static makespan = %v, expected straggler chunk ~64s", static.Makespan)
	}
	if greedy.Makespan > 12*time.Second {
		t.Fatalf("greedy makespan = %v, expected ~9s", greedy.Makespan)
	}
	if float64(static.Makespan) < 4*float64(greedy.Makespan) {
		t.Fatalf("static (%v) should be >=4x greedy (%v) here", static.Makespan, greedy.Makespan)
	}
}

func TestStaticSplitUniformIsFine(t *testing.T) {
	// With uniform tasks the two strategies are comparable — the
	// ablation's control case.
	durations := make([]time.Duration, 64)
	for i := range durations {
		durations[i] = time.Second
	}
	e := sim.NewEngine(1)
	var static, greedy Report
	e.Spawn("driver", func(p *sim.Proc) {
		static = RunStaticSplit(p, 8, time.Millisecond, durations)
		greedy = RunGreedy(p, 8, time.Millisecond, durations)
	})
	e.Run()
	ratio := float64(static.Makespan) / float64(greedy.Makespan)
	if ratio > 1.1 || ratio < 0.9 {
		t.Fatalf("uniform: static %v vs greedy %v", static.Makespan, greedy.Makespan)
	}
}

func TestRunGreedyEmptyAndTiny(t *testing.T) {
	e := sim.NewEngine(1)
	var rep Report
	e.Spawn("driver", func(p *sim.Proc) {
		rep = RunGreedy(p, 4, time.Millisecond, nil)
	})
	e.Run()
	if rep.Tasks != 0 || rep.Makespan != 0 {
		t.Fatalf("empty greedy run: %+v", rep)
	}
}

func TestStaticSplitMoreSlotsThanTasks(t *testing.T) {
	e := sim.NewEngine(1)
	var rep Report
	e.Spawn("driver", func(p *sim.Proc) {
		rep = RunStaticSplit(p, 16, 0, []time.Duration{time.Second, time.Second})
	})
	e.Run()
	if rep.Makespan != time.Second {
		t.Fatalf("makespan = %v, want 1s", rep.Makespan)
	}
}

// Property: greedy dispatch obeys Graham's list-scheduling bound. Any
// feasible schedule (static split included) is >= OPT, so
// greedy <= (2 - 1/m)·OPT <= (2 - 1/m)·static; and greedy is never below
// the trivial lower bound max(sum/m, max task).
func TestPropertyGreedyGrahamBound(t *testing.T) {
	f := func(ms []uint16, k8 uint8) bool {
		if len(ms) == 0 || len(ms) > 40 {
			return true
		}
		slots := int(k8%8) + 1
		durations := make([]time.Duration, len(ms))
		var sum, maxd time.Duration
		for i, m := range ms {
			durations[i] = time.Duration(m%2000) * time.Millisecond
			sum += durations[i]
			if durations[i] > maxd {
				maxd = durations[i]
			}
		}
		e := sim.NewEngine(9)
		var static, greedy Report
		e.Spawn("driver", func(p *sim.Proc) {
			greedy = RunGreedy(p, slots, 0, durations)
			static = RunStaticSplit(p, slots, 0, durations)
		})
		e.Run()
		lb := sum / time.Duration(slots)
		if maxd > lb {
			lb = maxd
		}
		graham := (2 - 1/float64(slots)) * float64(static.Makespan)
		return float64(greedy.Makespan) <= graham+1 && greedy.Makespan >= lb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
