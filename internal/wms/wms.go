// Package wms implements the baseline launchers the paper's argument is
// made against:
//
//   - A centralized workflow-management-system (WMS) orchestrator whose
//     per-task bookkeeping cost grows with workflow size. It is calibrated
//     to the WfBench/Swift-T measurements the paper cites (§II): ~500s of
//     pure orchestration overhead at 50,000 tasks and ~5,000s at 100,000
//     tasks, with zero compute and zero data movement.
//
//   - A static pre-split launcher (xargs -P style): inputs divided among
//     slots up front with no greedy refill, the ablation that shows where
//     GNU Parallel's dynamic slot model wins.
package wms

import (
	"math"
	"time"

	"repro/internal/sim"
)

// Overhead models total orchestration overhead as a power law
// Total(n) = Scale * (n/RefTasks)^(Power+1), realized as a per-task
// marginal cost that grows with the number of tasks already dispatched
// (central data structures, task tables, provenance bookkeeping).
type Overhead struct {
	Scale    time.Duration // total overhead at RefTasks tasks
	RefTasks int
	Power    float64 // marginal-cost exponent (total exponent is Power+1)
}

// SwiftT returns the overhead calibrated to the paper's §II citation:
// 500 s at 50 k tasks, 5,000 s at 100 k tasks — a 10x for 2x, so the
// total scales as n^log2(10) ≈ n^3.32.
func SwiftT() Overhead {
	return Overhead{
		Scale:    500 * time.Second,
		RefTasks: 50_000,
		Power:    math.Log2(10) - 1, // ≈ 2.32
	}
}

// Total returns the closed-form total orchestration overhead for n tasks.
func (o Overhead) Total(n int) time.Duration {
	if n <= 0 {
		return 0
	}
	frac := float64(n) / float64(o.RefTasks)
	return time.Duration(float64(o.Scale) * math.Pow(frac, o.Power+1))
}

// PerTask returns the marginal dispatch cost of task i (1-based), the
// derivative of Total: cost(i) = Scale*(Power+1)/RefTasks * (i/Ref)^Power.
func (o Overhead) PerTask(i int) time.Duration {
	if i < 1 {
		i = 1
	}
	c := float64(o.Scale) * (o.Power + 1) / float64(o.RefTasks)
	return time.Duration(c * math.Pow(float64(i)/float64(o.RefTasks), o.Power))
}

// Report summarizes a baseline run.
type Report struct {
	Tasks    int
	Makespan time.Duration
	// OverheadTime is the orchestrator's cumulative dispatch cost.
	OverheadTime time.Duration
}

// RunCentral simulates a centralized WMS executing n tasks of the given
// payload duration through slots parallel workers, called from process p.
// The orchestrator dispatches serially, paying the growing per-task cost;
// workers run payloads concurrently. Returns the report.
func RunCentral(p *sim.Proc, o Overhead, n, slots int, payload time.Duration) Report {
	e := p.Engine()
	if slots < 1 {
		slots = 1
	}
	pool := sim.NewResource(e, slots)
	wg := sim.NewCounter(e, n)
	start := p.Now()
	var overhead time.Duration
	for i := 1; i <= n; i++ {
		cost := o.PerTask(i)
		overhead += cost
		p.Sleep(cost)
		pool.Acquire(p, 1)
		e.Spawn("wms-task", func(tp *sim.Proc) {
			if payload > 0 {
				tp.Sleep(payload)
			}
			pool.Release(1)
			wg.Done()
		})
	}
	wg.Wait(p)
	return Report{Tasks: n, Makespan: p.Now() - start, OverheadTime: overhead}
}

// RunStaticSplit simulates an xargs-P-style launcher: tasks are divided
// among slots in contiguous chunks up front; each worker executes its
// chunk serially with the given per-launch cost; there is no work
// stealing or refill. durations[i] is task i's payload time.
func RunStaticSplit(p *sim.Proc, slots int, launchCost time.Duration, durations []time.Duration) Report {
	e := p.Engine()
	if slots < 1 {
		slots = 1
	}
	n := len(durations)
	wg := sim.NewCounter(e, slots)
	start := p.Now()
	chunk := (n + slots - 1) / slots
	for w := 0; w < slots; w++ {
		lo := min(w*chunk, n)
		hi := min(lo+chunk, n)
		mine := durations[lo:hi]
		e.Spawn("xargs-worker", func(wp *sim.Proc) {
			for _, d := range mine {
				wp.Sleep(launchCost)
				wp.Sleep(d)
			}
			wg.Done()
		})
	}
	wg.Wait(p)
	return Report{Tasks: n, Makespan: p.Now() - start,
		OverheadTime: time.Duration(n) * launchCost}
}

// RunGreedy simulates the GNU-Parallel execution model with the same
// interface as RunStaticSplit, for apples-to-apples ablation: a serial
// dispatcher pays launchCost per task and refills slots greedily.
func RunGreedy(p *sim.Proc, slots int, launchCost time.Duration, durations []time.Duration) Report {
	e := p.Engine()
	if slots < 1 {
		slots = 1
	}
	pool := sim.NewResource(e, slots)
	wg := sim.NewCounter(e, len(durations))
	start := p.Now()
	for _, d := range durations {
		d := d
		pool.Acquire(p, 1)
		p.Sleep(launchCost)
		e.Spawn("par-task", func(tp *sim.Proc) {
			tp.Sleep(d)
			pool.Release(1)
			wg.Done()
		})
	}
	wg.Wait(p)
	return Report{Tasks: len(durations), Makespan: p.Now() - start,
		OverheadTime: time.Duration(len(durations)) * launchCost}
}
