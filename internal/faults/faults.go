// Package faults is a deterministic, seedable chaos layer for the
// launcher stack. It has two halves:
//
//   - Runner wraps any core.Runner and injects process-level faults
//     (crashes, nonzero exits, hangs, slow starts, corrupted output,
//     transport errors) according to a seeded Plan. Every injection
//     decision is a pure function of (seed, rule, seq, attempt), so a
//     chaos run's outcome is independent of goroutine interleaving —
//     a test can re-derive the exact expected success/fail/retry
//     accounting from the Plan alone.
//
//   - NodeOutages + Apply give the simulated cluster
//     (internal/cluster) a node-failure schedule: nodes crash and
//     recover mid-run, the reality the paper's 9,000-node Frontier
//     workflows retry around with --retries/--joblog/--resume.
//
// The point of the package is not to make things fail — it is to prove
// the retry/backoff/halt/resume machinery actually delivers its
// exactly-once accounting when they do.
package faults

import (
	"fmt"
	"time"
)

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// Crash simulates the process dying before producing a result
	// (spawn failure, OOM kill, node crash): the attempt never runs
	// and fails with ErrInjectedCrash.
	Crash Kind = iota
	// Exit replaces the attempt with a nonzero exit status without
	// running it.
	Exit
	// Hang blocks the attempt until its context is cancelled (i.e.
	// until Spec.Timeout fires) or, when Rule.Delay is set, for at
	// most that long. A Hang rule with Delay 0 under a spec with no
	// Timeout blocks forever — that is the bug it exists to expose.
	Hang
	// SlowStart delays the attempt by Rule.Delay, then runs it
	// normally (straggler nodes, cold caches).
	SlowStart
	// Truncate runs the attempt normally but drops the second half of
	// its stdout (torn pipe, partial file).
	Truncate
	// Garbage runs the attempt normally but appends garbage bytes to
	// its stdout (corrupted transport frame).
	Garbage
	// Transport fails the attempt with a transport-style error
	// without running it, mimicking dist.Pool connection failures —
	// the canonical retry-me error.
	Transport

	numKinds
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Exit:
		return "exit"
	case Hang:
		return "hang"
	case SlowStart:
		return "slowstart"
	case Truncate:
		return "truncate"
	case Garbage:
		return "garbage"
	case Transport:
		return "transport"
	default:
		return fmt.Sprintf("faults.Kind(%d)", int(k))
	}
}

// Fails reports whether an injection of this kind fails the attempt
// (Truncate/Garbage corrupt output but leave exit status 0).
func (k Kind) Fails() bool {
	switch k {
	case SlowStart, Truncate, Garbage:
		return false
	default:
		return true
	}
}

// Rule describes one fault injection: which kind, how often, and which
// jobs/attempts it may strike.
type Rule struct {
	Kind Kind
	// Rate is the per-attempt injection probability in [0, 1]. A rate
	// >= 1 always fires (subject to Seqs/MaxAttempt).
	Rate float64
	// Seqs, when non-nil, restricts the rule to those job sequence
	// numbers (nil = all jobs).
	Seqs map[int]bool
	// MaxAttempt, when > 0, restricts the rule to a job's first
	// MaxAttempt attempts, so retried jobs eventually run clean — the
	// transient-fault shape. 0 strikes every attempt.
	MaxAttempt int
	// ExitCode is the status used by Exit rules (0 means 1).
	ExitCode int
	// Delay is the SlowStart pause, or the maximum Hang duration
	// (Hang with Delay 0 blocks until the context is cancelled).
	Delay time.Duration
}

// Plan is a seeded fault schedule: an ordered rule list. For each
// (seq, attempt) the first rule that fires wins. The zero Plan injects
// nothing.
type Plan struct {
	// Seed namespaces every probability draw; two Plans with the same
	// rules and seed make identical decisions.
	Seed  uint64
	Rules []Rule
}

// Decide returns the rule that strikes job seq's attempt (1-based), or
// nil for a clean attempt. It is a pure function: safe for concurrent
// use and reproducible regardless of execution order.
func (p *Plan) Decide(seq, attempt int) *Rule {
	if p == nil {
		return nil
	}
	for i := range p.Rules {
		r := &p.Rules[i]
		if r.Seqs != nil && !r.Seqs[seq] {
			continue
		}
		if r.MaxAttempt > 0 && attempt > r.MaxAttempt {
			continue
		}
		if r.Rate >= 1 || unit(p.Seed, uint64(i), uint64(seq), uint64(attempt)) < r.Rate {
			return r
		}
	}
	return nil
}

// unit hashes the decision coordinates to a uniform draw in [0, 1).
func unit(seed, rule, seq, attempt uint64) float64 {
	x := seed
	x = splitmix64(x ^ 0x9e3779b97f4a7c15*rule)
	x = splitmix64(x ^ 0xbf58476d1ce4e5b9*seq)
	x = splitmix64(x ^ 0x94d049bb133111eb*attempt)
	return float64(x>>11) / (1 << 53)
}

// splitmix64 is the standard seed-scrambling finalizer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
