package faults

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// Outage is one scheduled node failure in virtual time.
type Outage struct {
	// Node is the cluster node index.
	Node int
	// At is the virtual time the node fails.
	At sim.Time
	// Duration is how long the node stays down; 0 means it never
	// recovers within the run.
	Duration time.Duration
}

// NodeOutages draws a deterministic outage schedule for n nodes over
// the given virtual-time horizon: each node fails at exponentially
// distributed intervals with mean mtbf and recovers after an
// exponentially distributed repair time with mean mttr (mttr 0 makes
// every failure permanent). The schedule depends only on (seed, n,
// horizon, mtbf, mttr) — node i's draws come from a named RNG split, so
// adding nodes never perturbs existing nodes' outages.
func NodeOutages(seed uint64, n int, horizon time.Duration, mtbf, mttr time.Duration) []Outage {
	if n <= 0 || horizon <= 0 || mtbf <= 0 {
		return nil
	}
	root := sim.NewRNG(seed)
	var out []Outage
	for node := 0; node < n; node++ {
		rng := root.Split(fmt.Sprintf("faults/node/%d", node))
		t := sim.Time(0)
		for {
			t += sim.Time(rng.DurExp(mtbf))
			if t >= sim.Time(horizon) {
				break
			}
			var repair time.Duration
			if mttr > 0 {
				// Minimum 1ns so Recover is a distinct later event.
				repair = rng.DurExp(mttr) + 1
			}
			out = append(out, Outage{Node: node, At: t, Duration: repair})
			if repair == 0 {
				break // permanently down; further draws are moot
			}
			t += sim.Time(repair)
		}
	}
	return out
}

// Apply schedules the outages on c's engine: at each Outage.At the node
// fails (in-flight simulated tasks observe ErrNodeDown when they
// complete), and Duration later it recovers. Call before running the
// simulation.
func Apply(c *cluster.Cluster, outages []Outage) {
	for _, o := range outages {
		if o.Node < 0 || o.Node >= len(c.Nodes) {
			continue
		}
		node := c.Nodes[o.Node]
		dur := o.Duration
		c.Eng.At(o.At, func() {
			node.Fail()
			if dur > 0 {
				c.Eng.After(dur, node.Recover)
			}
		})
	}
}
