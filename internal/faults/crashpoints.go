package faults

import (
	"sync/atomic"
)

// CrashPlan schedules one simulated process crash at a deterministic
// point in a run: the k-th time any instrumented crash point is hit,
// where k is drawn from the seed. Components expose named crash points
// (e.g. internal/wal's append/sync/rotate sites) and consult the plan
// through Hit; the hit whose ordinal matches the draw "crashes".
//
// Unlike Plan (per-job probability draws), a CrashPlan injects exactly
// one fault per arming, which is what a crash soak wants: every seed
// kills the component at a different, reproducible point along its
// execution, sweeping coverage across the whole operation sequence as
// seeds advance.
type CrashPlan struct {
	target uint64
	hits   atomic.Uint64
	fired  atomic.Pointer[string]
}

// NewCrashPlan draws the triggering hit ordinal from seed, uniform over
// [1, horizon]. horizon should be sized near the expected total number
// of crash-point hits in one run so the crash lands anywhere from the
// first operation to the last; values < 1 clamp to 1.
func NewCrashPlan(seed uint64, horizon int) *CrashPlan {
	if horizon < 1 {
		horizon = 1
	}
	return &CrashPlan{target: splitmix64(seed)%uint64(horizon) + 1}
}

// Hit registers one crash-point hit and reports whether the plan's
// crash fires here. It fires at most once per plan and is safe for
// concurrent use (hits from multiple goroutines are totally ordered by
// the counter; which goroutine's hit matches the draw then depends on
// scheduling, but exactly one does).
func (p *CrashPlan) Hit(point string) bool {
	if p == nil {
		return false
	}
	if p.hits.Add(1) != p.target {
		return false
	}
	p.fired.Store(&point)
	return true
}

// Fired returns the crash point that triggered, if the plan has fired.
func (p *CrashPlan) Fired() (point string, ok bool) {
	if s := p.fired.Load(); s != nil {
		return *s, true
	}
	return "", false
}

// Hits returns how many crash-point hits the plan has observed.
func (p *CrashPlan) Hits() uint64 { return p.hits.Load() }

// Target returns the 1-based hit ordinal at which the plan fires.
func (p *CrashPlan) Target() uint64 { return p.target }
