package faults

import (
	"testing"
	"time"

	"repro/internal/wal"
)

func TestCrashPlanFiresExactlyOnce(t *testing.T) {
	p := NewCrashPlan(42, 10)
	if p.Target() < 1 || p.Target() > 10 {
		t.Fatalf("target %d outside horizon", p.Target())
	}
	fired := 0
	for i := 0; i < 50; i++ {
		if p.Hit("pt") {
			fired++
			if uint64(i+1) != p.Target() {
				t.Fatalf("fired at hit %d, target %d", i+1, p.Target())
			}
		}
	}
	if fired != 1 {
		t.Fatalf("fired %d times", fired)
	}
	if pt, ok := p.Fired(); !ok || pt != "pt" {
		t.Fatalf("Fired() = %q, %v", pt, ok)
	}
	if p.Hits() != 50 {
		t.Fatalf("Hits() = %d", p.Hits())
	}
}

func TestCrashPlanDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		if NewCrashPlan(seed, 100).Target() != NewCrashPlan(seed, 100).Target() {
			t.Fatalf("seed %d not deterministic", seed)
		}
	}
	// Targets spread across the horizon rather than clustering.
	seen := map[uint64]bool{}
	for seed := uint64(0); seed < 64; seed++ {
		seen[NewCrashPlan(seed, 8).Target()] = true
	}
	if len(seen) < 6 {
		t.Fatalf("only %d distinct targets over 64 seeds", len(seen))
	}
}

func TestCrashPlanNilSafe(t *testing.T) {
	var p *CrashPlan
	if p.Hit("x") {
		t.Fatal("nil plan fired")
	}
}

// TestCrashPlanDrivesWAL wires a CrashPlan into the WAL's crash hook —
// the cross-package integration the wal package's own soak cannot test
// without an import cycle. The plan must kill the log at a seed-chosen
// point and the directory must replay cleanly afterwards.
func TestCrashPlanDrivesWAL(t *testing.T) {
	crashes := 0
	for seed := uint64(1); seed <= 30; seed++ {
		dir := t.TempDir()
		plan := NewCrashPlan(seed, 40)
		l, _, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever, CrashHook: plan.Hit})
		if err != nil {
			t.Fatal(err)
		}
		for seq := 1; seq <= 15; seq++ {
			if l.AppendIntent(seq, uint64(seq)) != nil {
				break
			}
			if l.AppendCompletion(seq, 0, time.Microsecond, "") != nil {
				break
			}
		}
		l.Close()
		if pt, ok := plan.Fired(); ok {
			crashes++
			switch pt {
			case wal.PointAppendIntent, wal.PointAppendCompletion,
				wal.PointSyncPre, wal.PointSyncMid,
				wal.PointRotateCheckpoint, wal.PointRotateDelete:
			default:
				t.Fatalf("seed %d: fired at unknown point %q", seed, pt)
			}
		}
		if _, err := wal.Replay(dir); err != nil {
			t.Fatalf("seed %d: replay after crash: %v", seed, err)
		}
	}
	if crashes == 0 {
		t.Fatal("no seed produced a crash; horizon miscalibrated")
	}
}
