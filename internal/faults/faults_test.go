package faults

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/args"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
)

func TestPlanDecideDeterministic(t *testing.T) {
	p := &Plan{Seed: 42, Rules: []Rule{
		{Kind: Crash, Rate: 0.1},
		{Kind: Exit, Rate: 0.2, ExitCode: 7},
	}}

	// Sequential reference pass.
	type key struct{ seq, attempt int }
	ref := map[key]*Rule{}
	for seq := 1; seq <= 500; seq++ {
		for attempt := 1; attempt <= 3; attempt++ {
			ref[key{seq, attempt}] = p.Decide(seq, attempt)
		}
	}

	// Concurrent re-evaluation in arbitrary order must agree exactly.
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for seq := 500; seq >= 1; seq-- {
				for attempt := 3; attempt >= 1; attempt-- {
					if got := p.Decide(seq, attempt); got != ref[key{seq, attempt}] {
						select {
						case errs <- "concurrent Decide disagreed with sequential pass":
						default:
						}
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

func TestPlanSeedChangesDecisions(t *testing.T) {
	a := &Plan{Seed: 1, Rules: []Rule{{Kind: Crash, Rate: 0.5}}}
	b := &Plan{Seed: 2, Rules: []Rule{{Kind: Crash, Rate: 0.5}}}
	same := true
	for seq := 1; seq <= 200; seq++ {
		if (a.Decide(seq, 1) == nil) != (b.Decide(seq, 1) == nil) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("plans with different seeds made identical decisions on 200 jobs")
	}
}

func TestPlanRateApproximation(t *testing.T) {
	p := &Plan{Seed: 7, Rules: []Rule{{Kind: Exit, Rate: 0.1}}}
	hits := 0
	const n = 20000
	for seq := 1; seq <= n; seq++ {
		if p.Decide(seq, 1) != nil {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.08 || frac > 0.12 {
		t.Fatalf("rate-0.1 rule fired on %.3f of draws", frac)
	}
}

func TestPlanTargeting(t *testing.T) {
	p := &Plan{Seed: 3, Rules: []Rule{
		{Kind: Exit, Rate: 1, Seqs: map[int]bool{4: true}, ExitCode: 13},
		{Kind: Crash, Rate: 1, MaxAttempt: 2},
	}}

	// Seq 4 always hits the targeted Exit rule first.
	if r := p.Decide(4, 1); r == nil || r.Kind != Exit {
		t.Fatalf("seq 4 attempt 1: got %+v, want targeted Exit rule", r)
	}
	// Even on attempt 3, where the Crash rule no longer applies.
	if r := p.Decide(4, 3); r == nil || r.Kind != Exit {
		t.Fatalf("seq 4 attempt 3: got %+v, want targeted Exit rule", r)
	}
	// Other seqs crash on attempts 1-2 and run clean from attempt 3.
	if r := p.Decide(9, 2); r == nil || r.Kind != Crash {
		t.Fatalf("seq 9 attempt 2: got %+v, want Crash", r)
	}
	if r := p.Decide(9, 3); r != nil {
		t.Fatalf("seq 9 attempt 3: got %+v, want clean", r)
	}

	var nilPlan *Plan
	if nilPlan.Decide(1, 1) != nil {
		t.Fatal("nil plan should inject nothing")
	}
}

// echoRunner returns the job's first arg as stdout.
var echoRunner = core.FuncRunner(func(ctx context.Context, job *core.Job) ([]byte, error) {
	return []byte("out:" + job.Args[0]), nil
})

func runOne(t *testing.T, r *Runner, seq int) core.Result {
	t.Helper()
	job := &core.Job{Seq: seq, Args: []string{"x"}}
	return r.Run(context.Background(), job)
}

func TestRunnerInjectsEachKind(t *testing.T) {
	mk := func(rule Rule) *Runner {
		rule.Rate = 1
		return New(echoRunner, &Plan{Seed: 1, Rules: []Rule{rule}})
	}

	r := mk(Rule{Kind: Crash})
	if res := runOne(t, r, 1); !errors.Is(res.Err, ErrInjectedCrash) || res.ExitCode != -1 {
		t.Fatalf("crash: %+v", res)
	}
	if r.Injected(Crash) != 1 || r.InjectedTotal() != 1 {
		t.Fatalf("crash counter = %d", r.Injected(Crash))
	}

	r = mk(Rule{Kind: Exit, ExitCode: 13})
	if res := runOne(t, r, 1); res.ExitCode != 13 || res.Err != nil {
		t.Fatalf("exit: %+v", res)
	}
	r = mk(Rule{Kind: Exit}) // ExitCode 0 defaults to 1
	if res := runOne(t, r, 1); res.ExitCode != 1 {
		t.Fatalf("exit default code: %+v", res)
	}

	r = mk(Rule{Kind: Transport})
	if res := runOne(t, r, 1); !errors.Is(res.Err, ErrInjectedTransport) {
		t.Fatalf("transport: %+v", res)
	}

	r = mk(Rule{Kind: SlowStart, Delay: 30 * time.Millisecond})
	start := time.Now()
	res := runOne(t, r, 1)
	if string(res.Stdout) != "out:x" || res.ExitCode != 0 {
		t.Fatalf("slowstart should run the job: %+v", res)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("slowstart did not delay")
	}

	r = mk(Rule{Kind: Truncate})
	if res := runOne(t, r, 1); string(res.Stdout) != "ou" || res.Err != nil || res.ExitCode != 0 {
		t.Fatalf("truncate: stdout=%q err=%v", res.Stdout, res.Err)
	}

	r = mk(Rule{Kind: Garbage})
	if res := runOne(t, r, 1); !strings.HasPrefix(string(res.Stdout), "out:x") || len(res.Stdout) <= 5 {
		t.Fatalf("garbage: stdout=%q", res.Stdout)
	} else if res.ExitCode != 0 {
		t.Fatalf("garbage should not fail the job: %+v", res)
	}
}

func TestRunnerHang(t *testing.T) {
	r := New(echoRunner, &Plan{Seed: 1, Rules: []Rule{{Kind: Hang, Rate: 1}}})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	res := r.Run(ctx, &core.Job{Seq: 1, Args: []string{"x"}})
	if !errors.Is(res.Err, context.DeadlineExceeded) {
		t.Fatalf("hang under deadline: err=%v", res.Err)
	}

	// Bounded hang under no deadline unsticks by itself.
	r = New(echoRunner, &Plan{Seed: 1, Rules: []Rule{{Kind: Hang, Rate: 1, Delay: 20 * time.Millisecond}}})
	res = r.Run(context.Background(), &core.Job{Seq: 1, Args: []string{"x"}})
	if !res.TimedOut || res.OK() {
		t.Fatalf("bounded hang: %+v", res)
	}
}

func TestRunnerAttemptTrackingAndReset(t *testing.T) {
	// Fault only attempt 1; attempt 2 of the same seq runs clean.
	r := New(echoRunner, &Plan{Seed: 1, Rules: []Rule{{Kind: Exit, Rate: 1, MaxAttempt: 1}}})
	if res := runOne(t, r, 5); res.OK() {
		t.Fatal("attempt 1 should be faulted")
	}
	if res := runOne(t, r, 5); !res.OK() {
		t.Fatalf("attempt 2 should be clean: %+v", res)
	}
	if got := r.Attempts(5); got != 2 {
		t.Fatalf("Attempts(5) = %d, want 2", got)
	}

	r.Reset()
	if r.Attempts(5) != 0 || r.InjectedTotal() != 0 {
		t.Fatal("Reset did not clear state")
	}
	if res := runOne(t, r, 5); res.OK() {
		t.Fatal("after Reset, attempt 1 should be faulted again")
	}
}

// TestRunnerThroughEngine drives transient faults through the real retry
// machinery: every job fails its first two attempts and succeeds on the
// third, so with Retries=3 the run ends fully green.
func TestRunnerThroughEngine(t *testing.T) {
	plan := &Plan{Seed: 11, Rules: []Rule{{Kind: Crash, Rate: 1, MaxAttempt: 2}}}
	fr := New(echoRunner, plan)
	const n = 50
	spec := &core.Spec{Jobs: 8, Retries: 3}
	eng, err := core.NewEngine(spec, fr)
	if err != nil {
		t.Fatal(err)
	}
	records := make([][]string, n)
	for i := range records {
		records[i] = []string{"x"}
	}
	stats, _, err := eng.Run(context.Background(), args.Slice(records))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Succeeded != n || stats.Failed != 0 {
		t.Fatalf("stats = %+v, want all %d succeeded", stats, n)
	}
	if stats.Retries != 2*n {
		t.Fatalf("retries = %d, want %d", stats.Retries, 2*n)
	}
	if got := fr.Injected(Crash); got != 2*n {
		t.Fatalf("injected crashes = %d, want %d", got, 2*n)
	}
}

func TestNodeOutagesDeterministic(t *testing.T) {
	a := NodeOutages(9, 16, time.Hour, 10*time.Minute, time.Minute)
	b := NodeOutages(9, 16, time.Hour, 10*time.Minute, time.Minute)
	if len(a) == 0 {
		t.Fatal("expected some outages over 16 node-hours at 10min MTBF")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different schedule length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, outage %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	for _, o := range a {
		if o.At >= sim.Time(time.Hour) {
			t.Fatalf("outage past horizon: %+v", o)
		}
		if o.Duration <= 0 {
			t.Fatalf("mttr > 0 but outage has no recovery: %+v", o)
		}
	}

	// Per-node named splits: adding nodes never changes node 0's draws.
	small := NodeOutages(9, 1, time.Hour, 10*time.Minute, time.Minute)
	var node0 []Outage
	for _, o := range a {
		if o.Node == 0 {
			node0 = append(node0, o)
		}
	}
	if len(small) != len(node0) {
		t.Fatalf("node 0 schedule changed with cluster size: %d vs %d", len(small), len(node0))
	}
	for i := range small {
		if small[i] != node0[i] {
			t.Fatalf("node 0 outage %d changed with cluster size", i)
		}
	}

	if got := NodeOutages(9, 4, time.Hour, 10*time.Minute, 0); len(got) > 4 {
		t.Fatalf("mttr 0 should permanently down each node at most once, got %d outages", len(got))
	}
}

// TestOutagesOnSimCluster crashes a simulated node mid-run and checks
// tasks fail with ErrNodeDown during the outage and succeed after
// recovery.
func TestOutagesOnSimCluster(t *testing.T) {
	e := sim.NewEngine(5)
	c := cluster.New(e, cluster.Frontier(), 1)
	n := c.Nodes[0]

	// 100 tasks x 50ms at 4 slots ≈ 1.4s of virtual makespan; the node
	// is down for [300ms, 600ms).
	Apply(c, []Outage{{Node: 0, At: 300 * time.Millisecond, Duration: 300 * time.Millisecond}})

	var results []cluster.TaskResult
	tasks := cluster.SleepTasks(100, func(i int) time.Duration { return 50 * time.Millisecond })
	var rep *cluster.Report
	e.Spawn("driver", func(p *sim.Proc) {
		rep = n.RunParallel(p, cluster.InstanceConfig{
			Jobs:     4,
			OnResult: func(r cluster.TaskResult) { results = append(results, r) },
		}, tasks)
	})
	e.Run()

	if rep.Failed == 0 {
		t.Fatal("no tasks failed despite a 300ms outage")
	}
	if rep.Succeeded == 0 {
		t.Fatal("no tasks succeeded despite recovery")
	}
	if rep.Failed+rep.Succeeded != 100 {
		t.Fatalf("accounting: %d failed + %d succeeded != 100", rep.Failed, rep.Succeeded)
	}
	for _, r := range results {
		if r.Err != nil && !errors.Is(r.Err, cluster.ErrNodeDown) {
			t.Fatalf("unexpected task error: %v", r.Err)
		}
		if r.Err != nil && (r.End < 300*time.Millisecond || r.Start >= 600*time.Millisecond) {
			t.Fatalf("task failed outside the outage window: %+v", r)
		}
	}

	// Same seed, same schedule: the run is reproducible end to end.
	e2 := sim.NewEngine(5)
	c2 := cluster.New(e2, cluster.Frontier(), 1)
	Apply(c2, []Outage{{Node: 0, At: 300 * time.Millisecond, Duration: 300 * time.Millisecond}})
	var rep2 *cluster.Report
	e2.Spawn("driver", func(p *sim.Proc) {
		rep2 = c2.Nodes[0].RunParallel(p, cluster.InstanceConfig{Jobs: 4},
			cluster.SleepTasks(100, func(i int) time.Duration { return 50 * time.Millisecond }))
	})
	e2.Run()
	if rep2.Failed != rep.Failed || rep2.Succeeded != rep.Succeeded {
		t.Fatalf("rerun diverged: %d/%d vs %d/%d failed/succeeded",
			rep.Failed, rep.Succeeded, rep2.Failed, rep2.Succeeded)
	}
}
