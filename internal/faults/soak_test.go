package faults

import (
	"bytes"
	"context"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/args"
	"repro/internal/core"
)

// soakPlan is the chaos schedule for TestChaosSoak: a targeted
// perma-fail rule first (those jobs fail every attempt), then a mix of
// transient faults limited to the first two attempts (so Retries=3
// always clears them), then benign corruption. ~8% of first attempts
// take a failing fault.
func soakPlan(permaFail map[int]bool) *Plan {
	return &Plan{Seed: 0xC0FFEE, Rules: []Rule{
		{Kind: Exit, Rate: 1, Seqs: permaFail, ExitCode: 13},
		{Kind: Crash, Rate: 0.03, MaxAttempt: 2},
		{Kind: Exit, Rate: 0.02, MaxAttempt: 2, ExitCode: 7},
		{Kind: Hang, Rate: 0.01, MaxAttempt: 2, Delay: 30 * time.Millisecond},
		{Kind: Transport, Rate: 0.02, MaxAttempt: 2},
		{Kind: SlowStart, Rate: 0.02, Delay: time.Millisecond},
		{Kind: Truncate, Rate: 0.02},
	}}
}

// soakExpectation is the ground truth for a soak run, derived by
// replaying the plan's pure decision function job by job — possible
// only because injection decisions do not depend on scheduling.
type soakExpectation struct {
	succeeded, failed, retries int
	failedSeqs                 map[int]bool
	injected                   [numKinds]int64
}

func replayPlan(plan *Plan, n, maxAttempts int) soakExpectation {
	exp := soakExpectation{failedSeqs: map[int]bool{}}
	for seq := 1; seq <= n; seq++ {
		ok := false
		attempts := 0
		for attempt := 1; attempt <= maxAttempts; attempt++ {
			attempts = attempt
			r := plan.Decide(seq, attempt)
			if r != nil {
				exp.injected[r.Kind]++
			}
			if r == nil || !r.Kind.Fails() {
				ok = true
				break
			}
		}
		exp.retries += attempts - 1
		if ok {
			exp.succeeded++
		} else {
			exp.failed++
			exp.failedSeqs[seq] = true
		}
	}
	return exp
}

func seqRecords(n int) [][]string {
	records := make([][]string, n)
	for i := range records {
		records[i] = []string{strconv.Itoa(i + 1)}
	}
	return records
}

// recordingRunner is a clean FuncRunner that records which seqs it ran.
type recordingRunner struct {
	mu   sync.Mutex
	seqs map[int]bool
}

func (r *recordingRunner) Run(ctx context.Context, job *core.Job) core.Result {
	r.mu.Lock()
	if r.seqs == nil {
		r.seqs = map[int]bool{}
	}
	dup := r.seqs[job.Seq]
	r.seqs[job.Seq] = true
	r.mu.Unlock()
	if dup {
		return core.Result{Job: *job, ExitCode: 99, Start: time.Now(), End: time.Now()}
	}
	return echoRunner.Run(ctx, job)
}

// TestChaosSoak pushes 10k jobs through the engine at ~8% injected
// fault rate with retries, backoff, timeout, and a joblog, then checks
// the run's accounting to the job against a sequential replay of the
// fault plan, and finally resumes from the joblog verifying exactly-
// once semantics: every job either completed in run 1 or executed in
// run 2, never both, never neither.
func TestChaosSoak(t *testing.T) {
	const (
		n           = 10000
		maxAttempts = 3
	)
	permaFail := map[int]bool{}
	for seq := 97; seq <= n; seq += 97 {
		permaFail[seq] = true
	}
	plan := soakPlan(permaFail)
	exp := replayPlan(plan, n, maxAttempts)

	// Sanity on the schedule itself: transient faults clear by attempt
	// 3, so exactly the targeted jobs fail.
	if len(exp.failedSeqs) != len(permaFail) {
		t.Fatalf("replay: %d failed seqs, want the %d targeted ones", len(exp.failedSeqs), len(permaFail))
	}
	if exp.retries < n/20 {
		t.Fatalf("replay: only %d retries — fault rates too low to soak anything", exp.retries)
	}

	run := func() (core.Stats, *Runner, *bytes.Buffer) {
		fr := New(echoRunner, plan)
		var joblog bytes.Buffer
		core.WriteJoblogHeader(&joblog)
		spec := &core.Spec{
			Jobs:    32,
			Retries: maxAttempts,
			Timeout: 2 * time.Second,
			RetryBackoff: core.Backoff{
				Base:   200 * time.Microsecond,
				Cap:    2 * time.Millisecond,
				Jitter: 0.1,
			},
			Joblog: &joblog,
		}
		eng, err := core.NewEngine(spec, fr)
		if err != nil {
			t.Fatal(err)
		}
		stats, _, err := eng.Run(context.Background(), args.Slice(seqRecords(n)))
		if err != nil {
			t.Fatal(err)
		}
		return stats, fr, &joblog
	}

	stats, fr, joblog := run()

	if stats.Total != n || stats.Skipped != 0 {
		t.Fatalf("total/skipped = %d/%d, want %d/0", stats.Total, stats.Skipped, n)
	}
	if stats.Succeeded != exp.succeeded || stats.Failed != exp.failed {
		t.Fatalf("succeeded/failed = %d/%d, replay predicts %d/%d",
			stats.Succeeded, stats.Failed, exp.succeeded, exp.failed)
	}
	if stats.Retries != exp.retries {
		t.Fatalf("retries = %d, replay predicts %d", stats.Retries, exp.retries)
	}
	for k := Kind(0); k < numKinds; k++ {
		if got := fr.Injected(k); got != exp.injected[k] {
			t.Fatalf("injected %v = %d, replay predicts %d", k, got, exp.injected[k])
		}
	}

	// Joblog: one line per job, and the completed set is exactly the
	// replay's success set.
	entries, err := core.ParseJoblog(bytes.NewReader(joblog.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != n {
		t.Fatalf("joblog has %d entries, want %d", len(entries), n)
	}
	done := core.CompletedSeqs(entries)
	if len(done) != exp.succeeded {
		t.Fatalf("joblog completed = %d, want %d", len(done), exp.succeeded)
	}
	for seq := range exp.failedSeqs {
		if done[seq] {
			t.Fatalf("seq %d failed in replay but is marked completed", seq)
		}
	}

	// Determinism: an identical second run reproduces the accounting
	// exactly (the whole point of hash-based injection decisions).
	stats2, fr2, _ := run()
	if stats2.Succeeded != stats.Succeeded || stats2.Failed != stats.Failed || stats2.Retries != stats.Retries {
		t.Fatalf("rerun diverged: %d/%d/%d vs %d/%d/%d (succ/fail/retries)",
			stats2.Succeeded, stats2.Failed, stats2.Retries,
			stats.Succeeded, stats.Failed, stats.Retries)
	}
	if fr2.InjectedTotal() != fr.InjectedTotal() {
		t.Fatalf("rerun injected %d faults vs %d", fr2.InjectedTotal(), fr.InjectedTotal())
	}

	// Resume leg: re-run with a clean runner, skipping completed seqs.
	// Exactly the failed jobs execute — nothing is lost, nothing runs
	// twice.
	rec := &recordingRunner{}
	spec := &core.Spec{Jobs: 32, Retries: 1, ResumeFrom: done}
	eng, err := core.NewEngine(spec, rec)
	if err != nil {
		t.Fatal(err)
	}
	rstats, _, err := eng.Run(context.Background(), args.Slice(seqRecords(n)))
	if err != nil {
		t.Fatal(err)
	}
	if rstats.Skipped != exp.succeeded {
		t.Fatalf("resume skipped %d, want %d", rstats.Skipped, exp.succeeded)
	}
	if rstats.Succeeded != exp.failed || rstats.Failed != 0 {
		t.Fatalf("resume succeeded/failed = %d/%d, want %d/0", rstats.Succeeded, rstats.Failed, exp.failed)
	}
	if len(rec.seqs) != len(exp.failedSeqs) {
		t.Fatalf("resume executed %d jobs, want %d", len(rec.seqs), len(exp.failedSeqs))
	}
	for seq := range rec.seqs {
		if !exp.failedSeqs[seq] {
			t.Fatalf("resume re-executed seq %d, which had completed", seq)
		}
	}
}

// TestChaosHaltResume injects faults into a run that halts early
// (--halt now,fail=5), then resumes from the joblog and verifies
// exactly-once coverage: no completed job re-executes, no job is lost.
func TestChaosHaltResume(t *testing.T) {
	const n = 200
	permaFail := map[int]bool{}
	for seq := 5; seq <= n; seq += 5 {
		permaFail[seq] = true
	}
	plan := &Plan{Seed: 99, Rules: []Rule{
		{Kind: Exit, Rate: 1, Seqs: permaFail, ExitCode: 13},
	}}

	// A little runtime per job so jobs are genuinely in flight when the
	// halt cancels the run.
	slow := core.FuncRunner(func(ctx context.Context, job *core.Job) ([]byte, error) {
		select {
		case <-time.After(2 * time.Millisecond):
			return []byte("ok"), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})

	var joblog bytes.Buffer
	core.WriteJoblogHeader(&joblog)
	spec := &core.Spec{
		Jobs:    8,
		Retries: 1,
		Halt:    core.HaltPolicy{When: core.HaltNow, Threshold: 5},
		Joblog:  &joblog,
	}
	eng, err := core.NewEngine(spec, New(slow, plan))
	if err != nil {
		t.Fatal(err)
	}
	stats, _, err := eng.Run(context.Background(), args.Slice(seqRecords(n)))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Failed < 5 {
		t.Fatalf("halt leg failed only %d jobs, want >= 5", stats.Failed)
	}
	if stats.Done() >= n {
		t.Fatalf("halt did not stop early: %d jobs ran", stats.Done())
	}

	entries, err := core.ParseJoblog(bytes.NewReader(joblog.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	done := core.CompletedSeqs(entries)
	if len(done) == 0 {
		t.Fatal("halt leg completed nothing — can't exercise resume")
	}

	// Resume with a clean runner: every seq not completed in leg 1 runs
	// exactly once; completed seqs never re-execute.
	rec := &recordingRunner{}
	eng2, err := core.NewEngine(&core.Spec{Jobs: 8, Retries: 1, ResumeFrom: done}, rec)
	if err != nil {
		t.Fatal(err)
	}
	rstats, _, err := eng2.Run(context.Background(), args.Slice(seqRecords(n)))
	if err != nil {
		t.Fatal(err)
	}
	if rstats.Total != n {
		t.Fatalf("resume leg read %d jobs, want %d", rstats.Total, n)
	}
	if rstats.Failed != 0 {
		t.Fatalf("resume leg failed %d jobs (duplicate execution?)", rstats.Failed)
	}
	for seq := range done {
		if rec.seqs[seq] {
			t.Fatalf("completed seq %d was re-executed on resume", seq)
		}
	}
	for seq := 1; seq <= n; seq++ {
		if !done[seq] && !rec.seqs[seq] {
			t.Fatalf("seq %d lost: neither completed in leg 1 nor executed on resume", seq)
		}
	}
	if got := len(done) + len(rec.seqs); got != n {
		t.Fatalf("coverage: %d completed + %d resumed = %d, want exactly %d", len(done), len(rec.seqs), got, n)
	}
}
