package faults

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// ErrInjectedCrash is the error carried by Crash injections.
var ErrInjectedCrash = errors.New("faults: injected crash")

// ErrInjectedTransport is the error carried by Transport injections. It
// deliberately looks like a dist.Pool connection failure: retryable,
// with exit code -1 and no output.
var ErrInjectedTransport = errors.New("faults: injected transport error")

// Runner wraps an inner core.Runner and injects faults per Plan. It
// tracks attempt numbers per job sequence itself (the engine does not
// expose them to runners), so it must see every attempt of a given seq
// — which the engine guarantees, since retries re-run the same Job.
//
// A Runner is safe for concurrent use and reusable across engine runs
// only after Reset (attempt counters persist otherwise, which is
// exactly what a joblog-resume test wants: the second run's first
// attempt is the job's N+1th overall).
type Runner struct {
	Inner core.Runner
	Plan  *Plan

	mu       sync.Mutex
	attempts map[int]int

	injected [numKinds]atomic.Int64
}

// New wraps inner with plan.
func New(inner core.Runner, plan *Plan) *Runner {
	return &Runner{Inner: inner, Plan: plan}
}

// Injected returns how many faults of kind k have been injected.
func (r *Runner) Injected(k Kind) int64 {
	if k < 0 || k >= numKinds {
		return 0
	}
	return r.injected[k].Load()
}

// InjectedTotal returns the total number of injected faults.
func (r *Runner) InjectedTotal() int64 {
	var n int64
	for i := range r.injected {
		n += r.injected[i].Load()
	}
	return n
}

// Attempts returns how many attempts the runner has seen for seq.
func (r *Runner) Attempts(seq int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.attempts[seq]
}

// Reset clears attempt counters and injection totals, as if the runner
// were freshly built. Call between independent engine runs that should
// each start at attempt 1.
func (r *Runner) Reset() {
	r.mu.Lock()
	r.attempts = nil
	r.mu.Unlock()
	for i := range r.injected {
		r.injected[i].Store(0)
	}
}

// nextAttempt bumps and returns the 1-based attempt number for seq.
func (r *Runner) nextAttempt(seq int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.attempts == nil {
		r.attempts = make(map[int]int)
	}
	r.attempts[seq]++
	return r.attempts[seq]
}

// Run implements core.Runner.
func (r *Runner) Run(ctx context.Context, job *core.Job) core.Result {
	attempt := r.nextAttempt(job.Seq)
	rule := r.Plan.Decide(job.Seq, attempt)
	if rule == nil {
		return r.Inner.Run(ctx, job)
	}
	r.injected[rule.Kind].Add(1)

	now := time.Now()
	switch rule.Kind {
	case Crash:
		return core.Result{
			Job: *job, ExitCode: -1, Err: ErrInjectedCrash,
			Start: now, End: time.Now(),
		}

	case Exit:
		code := rule.ExitCode
		if code == 0 {
			code = 1
		}
		return core.Result{Job: *job, ExitCode: code, Start: now, End: time.Now()}

	case Transport:
		return core.Result{
			Job: *job, ExitCode: -1, Err: ErrInjectedTransport,
			Start: now, End: time.Now(),
		}

	case Hang:
		var hung <-chan time.Time
		if rule.Delay > 0 {
			t := time.NewTimer(rule.Delay)
			defer t.Stop()
			hung = t.C
		}
		select {
		case <-ctx.Done():
			return core.Result{
				Job: *job, ExitCode: -1, Err: ctx.Err(),
				Start: now, End: time.Now(),
			}
		case <-hung:
			// Bounded hang elapsed without the context firing: the
			// "process" unsticks and fails as a timeout-ish error.
			return core.Result{
				Job: *job, ExitCode: -1, Err: context.DeadlineExceeded,
				Start: now, End: time.Now(), TimedOut: true,
			}
		}

	case SlowStart:
		select {
		case <-time.After(rule.Delay):
		case <-ctx.Done():
			return core.Result{
				Job: *job, ExitCode: -1, Err: ctx.Err(),
				Start: now, End: time.Now(),
			}
		}
		res := r.Inner.Run(ctx, job)
		res.Start = now // the stall counts as part of the attempt
		return res

	case Truncate:
		res := r.Inner.Run(ctx, job)
		res.Stdout = res.Stdout[:len(res.Stdout)/2]
		return res

	case Garbage:
		res := r.Inner.Run(ctx, job)
		res.Stdout = append(res.Stdout, []byte("\x00\xffGARBAGE\xfe\x01")...)
		return res

	default:
		return r.Inner.Run(ctx, job)
	}
}
