package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

// crashPlan mirrors internal/faults.CrashPlan (fire on the k-th crash
// point hit, k drawn from the seed) without importing it: faults
// depends on core, core depends on this package, and an import here
// would close a test-only cycle. The cross-package integration is
// covered by internal/faults' own wal crash test.
type crashPlan struct {
	target uint64
	hits   atomic.Uint64
	fired  atomic.Pointer[string]
}

func newCrashPlan(seed uint64, horizon int) *crashPlan {
	seed += 0x9e3779b97f4a7c15
	seed = (seed ^ (seed >> 30)) * 0xbf58476d1ce4e5b9
	seed = (seed ^ (seed >> 27)) * 0x94d049bb133111eb
	seed ^= seed >> 31
	return &crashPlan{target: seed%uint64(horizon) + 1}
}

func (p *crashPlan) Hit(point string) bool {
	if p.hits.Add(1) != p.target {
		return false
	}
	p.fired.Store(&point)
	return true
}

func (p *crashPlan) Fired() (string, bool) {
	if s := p.fired.Load(); s != nil {
		return *s, true
	}
	return "", false
}

func openT(t *testing.T, dir string, opt Options) (*Log, *State) {
	t.Helper()
	l, st, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l, st
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, st := openT(t, dir, Options{Sync: SyncNever})
	if len(st.Completed)+len(st.InFlight) != 0 {
		t.Fatalf("fresh log state not empty: %+v", st)
	}
	d1 := ArgsDigest([]string{"a", "b"})
	d2 := ArgsDigest([]string{"c"})
	if err := l.AppendIntent(1, d1); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendIntent(2, d2); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendCompletion(1, 0, 1500*time.Microsecond, "node7"); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := st2.Completed[1]; got != 0 {
		t.Fatalf("seq 1 exit = %d, want 0", got)
	}
	if !st2.InFlight[2] {
		t.Fatalf("seq 2 not in flight: %+v", st2)
	}
	if st2.InFlight[1] {
		t.Fatal("completed seq 1 still in flight")
	}
	if st2.Digests[1] != d1 || st2.Digests[2] != d2 {
		t.Fatalf("digests = %v", st2.Digests)
	}
	if st2.Records != 3 || st2.TornTails != 0 {
		t.Fatalf("records=%d torn=%d, want 3/0", st2.Records, st2.TornTails)
	}
	if ok := st2.CompletedOK(); !ok[1] || len(ok) != 1 {
		t.Fatalf("CompletedOK = %v", ok)
	}
}

func TestFailedCompletionNotSkipped(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Sync: SyncNever})
	l.AppendIntent(1, 1)
	l.AppendCompletion(1, 3, 0, "")
	l.AppendIntent(2, 2)
	l.AppendCompletion(2, -1, 0, "")
	l.Close()
	st, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.CompletedOK()) != 0 {
		t.Fatalf("failed completions leaked into CompletedOK: %v", st.CompletedOK())
	}
	if st.Completed[1] != 3 || st.Completed[2] != -1 {
		t.Fatalf("Completed = %v", st.Completed)
	}
}

// TestDuplicateIntentsDedup models dist v2 session-retirement
// re-dispatch: the same seq gets multiple intents (and eventually one
// completion); replay must collapse them to exactly-once state.
func TestDuplicateIntentsDedup(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Sync: SyncNever})
	for i := 0; i < 4; i++ {
		l.AppendIntent(7, 42)
	}
	l.AppendCompletion(7, 0, time.Millisecond, "w1")
	l.AppendIntent(7, 42) // late re-dispatch landing after the completion
	l.Close()
	st, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !st.CompletedOK()[7] {
		t.Fatal("seq 7 should be completed")
	}
	if st.InFlight[7] {
		t.Fatal("completed seq resurrected into in-flight by a late intent")
	}
}

// TestLastCompletionWins: a resumed run's completion supersedes the
// crashed run's failed one.
func TestLastCompletionWins(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Sync: SyncNever})
	l.AppendIntent(3, 9)
	l.AppendCompletion(3, 1, 0, "")
	l.Close()
	l2, st := openT(t, dir, Options{Sync: SyncNever})
	if st.Completed[3] != 1 {
		t.Fatalf("replayed exit = %d, want 1", st.Completed[3])
	}
	l2.AppendIntent(3, 9)
	l2.AppendCompletion(3, 0, 0, "")
	l2.Close()
	st2, _ := Replay(dir)
	if st2.Completed[3] != 0 || !st2.CompletedOK()[3] {
		t.Fatalf("final state = %+v", st2)
	}
}

func TestTornTailTruncatedAndRepaired(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Sync: SyncNever})
	for seq := 1; seq <= 10; seq++ {
		l.AppendIntent(seq, uint64(seq))
		l.Sync() // commit boundary: tearing granularity is one commit's batch
		l.AppendCompletion(seq, 0, 0, "")
		l.Sync()
	}
	l.Close()

	seg := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the file mid-record: drop the last 3 bytes, then append
	// garbage that cannot CRC-validate.
	torn := append(append([]byte{}, data[:len(data)-3]...), 0xde, 0xad)
	if err := os.WriteFile(seg, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.TornTails != 1 {
		t.Fatalf("TornTails = %d, want 1", st.TornTails)
	}
	// Seqs 1..9 fully recorded; seq 10's completion was torn off.
	if len(st.CompletedOK()) != 9 || !st.InFlight[10] {
		t.Fatalf("state after tear = completed %v inflight %v", st.CompletedOK(), st.InFlight)
	}

	// Open repairs the tail and appending resumes cleanly.
	l2, st2 := openT(t, dir, Options{Sync: SyncNever})
	if st2.TornTails != 1 {
		t.Fatalf("open TornTails = %d, want 1", st2.TornTails)
	}
	if err := l2.AppendCompletion(10, 0, 0, ""); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	st3, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st3.TornTails != 0 {
		t.Fatalf("torn tail survived repair: %d", st3.TornTails)
	}
	if len(st3.CompletedOK()) != 10 {
		t.Fatalf("completed = %v, want all 10", st3.CompletedOK())
	}
}

func TestRotationCompaction(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force many rotations.
	l, _ := openT(t, dir, Options{Sync: SyncNever, SegmentBytes: 512})
	const n = 200
	for seq := 1; seq <= n; seq++ {
		if err := l.AppendIntent(seq, ArgsDigest([]string{fmt.Sprint(seq)})); err != nil {
			t.Fatal(err)
		}
		exit := 0
		if seq%7 == 0 {
			exit = 1
		}
		if err := l.AppendCompletion(seq, exit, time.Duration(seq)*time.Microsecond, "h"); err != nil {
			t.Fatal(err)
		}
	}
	// Leave a couple in flight.
	l.AppendIntent(n+1, 11)
	l.AppendIntent(n+2, 12)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) > 2 {
		t.Fatalf("compaction left %d segments", len(segs))
	}
	st, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	wantOK := 0
	for seq := 1; seq <= n; seq++ {
		want := seq%7 != 0
		if want {
			wantOK++
		}
		if got := st.CompletedOK()[seq]; got != want {
			t.Fatalf("seq %d completedOK = %v, want %v", seq, got, want)
		}
		if d, ok := st.Digests[seq]; !ok || d != ArgsDigest([]string{fmt.Sprint(seq)}) {
			t.Fatalf("seq %d digest lost across compaction", seq)
		}
	}
	if len(st.CompletedOK()) != wantOK {
		t.Fatalf("completedOK size = %d, want %d", len(st.CompletedOK()), wantOK)
	}
	if !st.InFlight[n+1] || !st.InFlight[n+2] || len(st.InFlight) != 2 {
		t.Fatalf("in-flight across compaction = %v", st.InFlight)
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncAlways, SyncInterval, SyncNever} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			l, _ := openT(t, dir, Options{Sync: pol, Interval: time.Millisecond})
			for seq := 1; seq <= 20; seq++ {
				l.AppendIntent(seq, 1)
				l.AppendCompletion(seq, 0, 0, "")
			}
			if pol == SyncInterval {
				time.Sleep(10 * time.Millisecond) // let group commit run at least once
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			st, err := Replay(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(st.CompletedOK()) != 20 {
				t.Fatalf("%v: completed = %d, want 20", pol, len(st.CompletedOK()))
			}
		})
	}
}

func TestFsyncObserver(t *testing.T) {
	dir := t.TempDir()
	var fsyncs int
	l, _ := openT(t, dir, Options{Sync: SyncAlways, FsyncObserver: func(d time.Duration) {
		if d < 0 {
			t.Errorf("negative fsync duration %v", d)
		}
		fsyncs++
	}})
	l.AppendIntent(1, 1)
	l.AppendCompletion(1, 0, 0, "")
	l.Close()
	if fsyncs < 2 {
		t.Fatalf("fsync observer saw %d syncs, want >= 2", fsyncs)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{"always": SyncAlways, "interval": SyncInterval, "": SyncInterval, "never": SyncNever} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Sync: SyncNever})
	l.Close()
	if err := l.AppendIntent(1, 1); err == nil {
		t.Fatal("append after close succeeded")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

// TestCrashPointSoak sweeps crash-plan-scheduled simulated
// crashes across the WAL's instrumented points (append, sync pre/mid,
// rotation checkpoint/delete) over many seeds, then checks the
// replayed state is always a consistent prefix of what was appended:
// no phantom records, no seq both completed and in flight, durable
// exactly-once accounting for everything that survived — optionally
// with the tail additionally torn mid-record.
func TestCrashPointSoak(t *testing.T) {
	const (
		seeds = 150
		njobs = 120
	)
	for seed := uint64(1); seed <= seeds; seed++ {
		pol := []SyncPolicy{SyncAlways, SyncInterval, SyncNever}[seed%3]
		// Horizon ≈ hits per run: 2 appends per job plus sync points.
		plan := newCrashPlan(seed, njobs*3)
		dir := t.TempDir()
		l, _, err := Open(dir, Options{
			Sync:         pol,
			Interval:     100 * time.Millisecond, // group commits driven by the soak, not the clock
			SegmentBytes: 2048,                   // force rotations into the crash window
			CrashHook:    plan.Hit,
		})
		if err != nil {
			t.Fatal(err)
		}

		// appended tracks ground truth: which records the "process"
		// believes it wrote before dying (calls that returned nil).
		intents := map[int]uint64{}
		completions := map[int]int{}
		crashed := false
		for seq := 1; seq <= njobs && !crashed; seq++ {
			digest := ArgsDigest([]string{fmt.Sprint("input-", seq)})
			if err := l.AppendIntent(seq, digest); err != nil {
				crashed = true
				break
			}
			intents[seq] = digest
			exit := 0
			if seq%11 == 0 {
				exit = 9
			}
			if err := l.AppendCompletion(seq, exit, time.Microsecond, "n"); err != nil {
				crashed = true
				break
			}
			completions[seq] = exit
		}
		closeErr := l.Close()

		if !crashed && closeErr == nil {
			if _, ok := plan.Fired(); ok {
				t.Fatalf("seed %d: plan fired but nothing errored", seed)
			}
		}

		// Half the seeds also tear the last segment mid-record, the
		// torn-write half of a crash. Not under SyncAlways: there the
		// tail is fsynced before acknowledgement, and a torn write can
		// only destroy bytes that never reached the disk barrier.
		if seed%2 == 0 && pol != SyncAlways {
			segs, err := listSegments(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(segs) > 0 {
				last := segs[len(segs)-1]
				if last.size > int64(headerSize)+4 {
					os.Truncate(last.path, last.size-3)
				}
			}
		}

		st, err := Replay(dir)
		if err != nil {
			t.Fatalf("seed %d: replay error: %v", seed, err)
		}
		for seq := range st.InFlight {
			if _, ok := st.Completed[seq]; ok {
				t.Fatalf("seed %d: seq %d both completed and in flight", seed, seq)
			}
		}
		for seq, exit := range st.Completed {
			want, ok := completions[seq]
			if !ok {
				// The append call returned an error (crash landed inside
				// it) yet the record reached the file — possible when the
				// crash point follows the buffered write. Never invented
				// from nothing: the seq must at least have been attempted.
				if _, tried := intents[seq]; !tried {
					t.Fatalf("seed %d: phantom completion for seq %d", seed, seq)
				}
				continue
			}
			if exit != want {
				t.Fatalf("seed %d: seq %d exit %d, want %d", seed, seq, exit, want)
			}
		}
		for seq, digest := range st.Digests {
			if want, ok := intents[seq]; ok && digest != want {
				t.Fatalf("seed %d: seq %d digest corrupted", seed, seq)
			}
		}
		if pol == SyncAlways && crashed {
			// Everything acknowledged before the crash must be durable:
			// an acknowledged completion may never be lost.
			for seq, exit := range completions {
				got, ok := st.Completed[seq]
				if !ok || got != exit {
					t.Fatalf("seed %d (always): acknowledged completion %d lost (got %v,%v)", seed, seq, got, ok)
				}
			}
			for seq := range intents {
				if _, ok := st.Digests[seq]; !ok {
					t.Fatalf("seed %d (always): acknowledged intent %d lost", seed, seq)
				}
			}
		}

		// The repaired log must keep working: reopen, finish the work,
		// and verify full exactly-once accounting.
		l2, st2, err := Open(dir, Options{Sync: SyncNever})
		if err != nil {
			t.Fatalf("seed %d: reopen: %v", seed, err)
		}
		for seq := 1; seq <= njobs; seq++ {
			if st2.CompletedOK()[seq] {
				continue // exactly-once: do not re-run
			}
			if err := l2.AppendIntent(seq, ArgsDigest([]string{fmt.Sprint("input-", seq)})); err != nil {
				t.Fatalf("seed %d: resume intent: %v", seed, err)
			}
			if err := l2.AppendCompletion(seq, 0, 0, ""); err != nil {
				t.Fatalf("seed %d: resume completion: %v", seed, err)
			}
		}
		if err := l2.Close(); err != nil {
			t.Fatalf("seed %d: resume close: %v", seed, err)
		}
		final, err := Replay(dir)
		if err != nil {
			t.Fatal(err)
		}
		for seq := 1; seq <= njobs; seq++ {
			if _, ok := final.Completed[seq]; !ok {
				t.Fatalf("seed %d: seq %d lost after resume", seed, seq)
			}
		}
		if final.TornTails != 0 {
			t.Fatalf("seed %d: torn tail survived reopen+resume: %d", seed, final.TornTails)
		}
	}
}
