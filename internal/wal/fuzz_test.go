package wal

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// validSegment builds a well-formed segment byte stream for the fuzz
// seed corpus.
func validSegment(tb testing.TB) []byte {
	tb.Helper()
	dir := tb.TempDir()
	l, _, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		tb.Fatal(err)
	}
	for seq := 1; seq <= 5; seq++ {
		l.AppendIntent(seq, ArgsDigest([]string{"in", "put"}))
		l.AppendCompletion(seq, seq%2, 3*time.Millisecond, "worker-9")
	}
	if err := l.Close(); err != nil {
		tb.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, segName(1)))
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// FuzzReplaySegment throws arbitrary bytes at the segment replayer:
// whatever the corruption — truncation, bit flips, hostile lengths,
// CRC-valid-but-bogus payloads — Replay must neither panic nor error,
// must produce internally consistent state, and Open must then repair
// the directory so appends and a clean re-replay succeed.
func FuzzReplaySegment(f *testing.F) {
	seg := validSegment(f)
	f.Add(seg)
	f.Add(seg[:len(seg)-3])            // torn tail
	f.Add(seg[:headerSize])            // header only
	f.Add([]byte{})                    // empty file
	f.Add([]byte("GOPARWAL\x01\x00\x00\x00")) // bare header
	f.Add([]byte("NOTAWAL!"))          // bad magic
	flipped := append([]byte{}, seg...)
	if len(flipped) > headerSize+10 {
		flipped[headerSize+9] ^= 0x40 // corrupt a payload byte under its CRC
	}
	f.Add(flipped)
	// Hostile length field: huge payload length with matching offset.
	hostile := append([]byte{}, seg[:headerSize]...)
	hostile = binary.LittleEndian.AppendUint32(hostile, 0xffffffff)
	hostile = binary.LittleEndian.AppendUint32(hostile, 0)
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Replay(dir)
		if err != nil {
			t.Fatalf("replay errored on corrupt input: %v", err)
		}
		for seq := range st.InFlight {
			if _, ok := st.Completed[seq]; ok {
				t.Fatalf("seq %d both completed and in flight", seq)
			}
		}
		for seq := range st.CompletedOK() {
			if st.Completed[seq] != 0 {
				t.Fatalf("CompletedOK leaked non-zero exit for %d", seq)
			}
		}

		// Open must repair whatever Replay tolerated, and the repaired
		// log must accept appends that survive a clean round trip.
		l, st2, err := Open(dir, Options{Sync: SyncNever})
		if err != nil {
			t.Fatalf("open on corrupt dir: %v", err)
		}
		if len(st2.Completed) != len(st.Completed) || len(st2.InFlight) != len(st.InFlight) {
			t.Fatalf("open state %d/%d != replay state %d/%d",
				len(st2.Completed), len(st2.InFlight), len(st.Completed), len(st.InFlight))
		}
		const probe = 1 << 30 // far outside any fuzzed seq range
		if err := l.AppendIntent(probe, 77); err != nil {
			t.Fatalf("append after repair: %v", err)
		}
		if err := l.AppendCompletion(probe, 0, 0, "h"); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		st3, err := Replay(dir)
		if err != nil {
			t.Fatalf("re-replay after repair: %v", err)
		}
		if st3.TornTails != 0 {
			t.Fatalf("torn tail survived repair: %d", st3.TornTails)
		}
		if !st3.CompletedOK()[probe] {
			t.Fatal("probe record lost")
		}
	})
}

// FuzzArgsDigest checks the digest is stable and boundary-sensitive.
func FuzzArgsDigest(f *testing.F) {
	f.Add("a", "bc")
	f.Add("", "")
	f.Fuzz(func(t *testing.T, a, b string) {
		d1 := ArgsDigest([]string{a, b})
		if d1 != ArgsDigest([]string{a, b}) {
			t.Fatal("digest not deterministic")
		}
		// Shifting a boundary byte must change the digest (length
		// prefixes prevent concatenation collisions).
		if len(a) > 0 {
			d2 := ArgsDigest([]string{a[:len(a)-1], a[len(a)-1:] + b})
			if d1 == d2 {
				t.Fatalf("boundary shift collided: %q|%q", a, b)
			}
		}
	})
}
