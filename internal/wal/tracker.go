package wal

import (
	"encoding/binary"
	"math"
	"sort"
)

// tracker is the Log's live replay-equivalent state, the source of
// rotation checkpoints. It exists because the obvious representation —
// the same maps replay uses — is far too slow for the flusher: every
// record costs ~4 map operations plus incremental map growth and GC
// pressure, and on a small host the flusher's CPU comes straight out
// of the dispatch pipeline's budget. Engine seqs are dense integers
// assigned from 1, so the tracker keeps one small struct per seq in a
// flat array (a single bounds-checked cache line touch per record).
// Seqs beyond trackDense — only reachable through hand-crafted or
// foreign logs, never the engine — fall back to a map-backed overflow.
type tracker struct {
	seqs []seqState // indexed by seq; entry 0 unused
	over *State     // lazily allocated; holds seqs >= trackDense
}

// seqState is the per-seq record: digest from the last intent, exit
// from the last completion, and which of the two record kinds have
// been seen. Kept at 16 bytes so intent and completion for a seq share
// one cache line touch.
type seqState struct {
	digest uint64
	exit   int32
	flags  uint8
	_      [3]byte
}

const (
	fIntent = 1 << 0 // an intent record was seen for this seq
	fDone   = 1 << 1 // a completion record was seen for this seq

	// trackDense bounds the dense array: seqs below it cost 16 bytes
	// each (allocated lazily up to the highest seq actually seen), seqs
	// at or above it go to the overflow maps.
	trackDense = 8 << 20
)

// clampExit fits an exit status into the tracker's int32 slot. Real
// exit statuses are tiny; only hand-crafted appends can exceed it.
func clampExit(exit int) int32 {
	if exit > math.MaxInt32 {
		return math.MaxInt32
	}
	if exit < math.MinInt32 {
		return math.MinInt32
	}
	return int32(exit)
}

// newTracker builds a tracker from a replayed State (the state of the
// segments already on disk when the log was opened).
func newTracker(st *State) *tracker {
	t := &tracker{}
	for seq, exit := range st.Completed {
		t.completion(seq, exit)
	}
	for seq := range st.InFlight {
		if t.ensure(seq) {
			t.seqs[seq].flags |= fIntent
		} else {
			t.over.InFlight[seq] = true
		}
	}
	for seq, d := range st.Digests {
		if t.ensure(seq) {
			t.seqs[seq].digest = d
		} else {
			t.over.Digests[seq] = d
		}
	}
	return t
}

// ensure grows the dense array to cover seq, or returns false (with
// t.over allocated) when seq belongs in the overflow.
func (t *tracker) ensure(seq int) bool {
	if seq >= trackDense {
		if t.over == nil {
			t.over = newState()
		}
		return false
	}
	if seq < len(t.seqs) {
		return true
	}
	n := seq + 1
	if c := cap(t.seqs); c >= n {
		t.seqs = t.seqs[:n]
		return true
	}
	c := 2 * cap(t.seqs)
	if c < n {
		c = n
	}
	if c < 1024 {
		c = 1024
	}
	if c > trackDense {
		c = trackDense
	}
	ns := make([]seqState, n, c)
	copy(ns, t.seqs)
	t.seqs = ns
	return true
}

// intent folds an intent record into the state: the digest is
// remembered (last wins) and the seq becomes in-flight unless already
// completed.
func (t *tracker) intent(seq int, digest uint64) {
	if t.ensure(seq) {
		t.seqs[seq].flags |= fIntent
		t.seqs[seq].digest = digest
		return
	}
	t.over.Digests[seq] = digest
	if _, done := t.over.Completed[seq]; !done {
		t.over.InFlight[seq] = true
	}
}

// completion folds a completion record into the state. Last completion
// wins, matching replay.
func (t *tracker) completion(seq, exit int) {
	if t.ensure(seq) {
		t.seqs[seq].flags |= fDone
		t.seqs[seq].exit = clampExit(exit)
		return
	}
	t.over.Completed[seq] = exit
	delete(t.over.InFlight, seq)
}

// snapshotState materializes the tracker back into the map form resume
// decisions consume (Log.Snapshot). Dense entries iterate in seq order;
// the overflow maps copy over verbatim.
func (t *tracker) snapshotState() *State {
	st := newState()
	for seq := 1; seq < len(t.seqs); seq++ {
		s := t.seqs[seq]
		if s.flags == 0 {
			continue
		}
		if s.flags&fIntent != 0 {
			st.Digests[seq] = s.digest
		}
		if s.flags&fDone != 0 {
			st.Completed[seq] = int(s.exit)
		} else if s.flags&fIntent != 0 {
			st.InFlight[seq] = true
		}
	}
	if t.over != nil {
		for seq, exit := range t.over.Completed {
			st.Completed[seq] = exit
		}
		for seq := range t.over.InFlight {
			st.InFlight[seq] = true
		}
		for seq, d := range t.over.Digests {
			st.Digests[seq] = d
		}
	}
	return st
}

// estCheckpointBytes upper-bounds the encoded size of a checkpoint of
// this state (dense entries are ~10 bytes each in practice; 24 covers
// worst-case varint widths).
func (t *tracker) estCheckpointBytes() int64 {
	n := int64(len(t.seqs))
	if t.over != nil {
		n += int64(len(t.over.Completed) + len(t.over.InFlight))
	}
	return 64 + 24*n
}

// appendCheckpointPayload encodes the tracker as a checkpoint record
// payload: the completed set (seq, exit, digest) then the in-flight
// set (seq, digest), both delta-encoded over ascending seqs. Dense
// seqs iterate in order for free; overflow seqs are all >= trackDense
// so appending them after the dense range preserves the ascending
// order the delta encoding requires.
func (t *tracker) appendCheckpointPayload(dst []byte) []byte {
	dst = append(dst, recCheckpoint)

	var overDone, overPend []int
	if t.over != nil {
		for seq := range t.over.Completed {
			overDone = append(overDone, seq)
		}
		sort.Ints(overDone)
		for seq := range t.over.InFlight {
			overPend = append(overPend, seq)
		}
		sort.Ints(overPend)
	}

	nDone, nPend := 0, 0
	for seq := 1; seq < len(t.seqs); seq++ {
		switch {
		case t.seqs[seq].flags&fDone != 0:
			nDone++
		case t.seqs[seq].flags&fIntent != 0:
			nPend++
		}
	}

	dst = appendUvarint(dst, uint64(nDone+len(overDone)))
	prev := 0
	for seq := 1; seq < len(t.seqs); seq++ {
		if t.seqs[seq].flags&fDone == 0 {
			continue
		}
		dst = appendUvarint(dst, uint64(seq-prev))
		dst = appendZigzag(dst, int64(t.seqs[seq].exit))
		dst = binary.LittleEndian.AppendUint64(dst, t.seqs[seq].digest)
		prev = seq
	}
	for _, seq := range overDone {
		dst = appendUvarint(dst, uint64(seq-prev))
		dst = appendZigzag(dst, int64(t.over.Completed[seq]))
		dst = binary.LittleEndian.AppendUint64(dst, t.over.Digests[seq])
		prev = seq
	}

	dst = appendUvarint(dst, uint64(nPend+len(overPend)))
	prev = 0
	for seq := 1; seq < len(t.seqs); seq++ {
		if t.seqs[seq].flags&fDone != 0 || t.seqs[seq].flags&fIntent == 0 {
			continue
		}
		dst = appendUvarint(dst, uint64(seq-prev))
		dst = binary.LittleEndian.AppendUint64(dst, t.seqs[seq].digest)
		prev = seq
	}
	for _, seq := range overPend {
		dst = appendUvarint(dst, uint64(seq-prev))
		dst = binary.LittleEndian.AppendUint64(dst, t.over.Digests[seq])
		prev = seq
	}
	return dst
}
