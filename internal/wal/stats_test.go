package wal

import (
	"testing"
	"time"
)

// TestStats checks the introspection counters track appends and syncs
// across the synchronous policy.
func TestStats(t *testing.T) {
	l, _, err := Open(t.TempDir(), Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if s := l.Stats(); s.Appended != 0 || s.Staged != 0 {
		t.Fatalf("fresh log stats = %+v", s)
	}
	for i := 1; i <= 5; i++ {
		if err := l.AppendIntent(i, uint64(i)); err != nil {
			t.Fatal(err)
		}
		if err := l.AppendCompletion(i, 0, time.Millisecond, ""); err != nil {
			t.Fatal(err)
		}
	}
	s := l.Stats()
	if s.Appended != 10 {
		t.Fatalf("Appended = %d, want 10", s.Appended)
	}
	if s.Syncs < 10 {
		t.Fatalf("Syncs = %d, want >= 10 under SyncAlways", s.Syncs)
	}
	if s.LastSync.IsZero() || time.Since(s.LastSync) > time.Minute {
		t.Fatalf("LastSync = %v", s.LastSync)
	}
	if s.SegIndex < 1 || s.SegBytes <= 0 {
		t.Fatalf("segment stats = %+v", s)
	}
}

// TestStatsAsyncStaged checks staged records are visible before the
// flusher drains them.
func TestStatsAsyncStaged(t *testing.T) {
	l, _, err := Open(t.TempDir(), Options{Sync: SyncInterval, Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 1; i <= 3; i++ {
		if err := l.AppendIntent(i, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if s := l.Stats(); s.Staged != 3 || s.Appended != 3 {
		t.Fatalf("stats before drain = %+v, want Staged=3 Appended=3", s)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if s := l.Stats(); s.Staged != 0 {
		t.Fatalf("Staged = %d after Sync, want 0", s.Staged)
	}
}
