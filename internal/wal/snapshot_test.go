package wal

import (
	"testing"
	"time"
)

// TestSnapshotMatchesReplay: the live Snapshot of an open log must
// equal the State a close-and-reopen replay would produce.
func TestSnapshotMatchesReplay(t *testing.T) {
	dir := t.TempDir()
	l, st0, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if len(st0.Completed) != 0 || len(st0.InFlight) != 0 {
		t.Fatalf("fresh log state not empty: %+v", st0)
	}
	for seq := 1; seq <= 5; seq++ {
		if err := l.AppendIntent(seq, ArgsDigest([]string{"cmd", string(rune('a' + seq))})); err != nil {
			t.Fatal(err)
		}
	}
	l.AppendCompletion(1, 0, time.Second, "h1")
	l.AppendCompletion(3, 2, time.Second, "h1")

	snap, err := l.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, replayed, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}

	if len(snap.Completed) != len(replayed.Completed) {
		t.Fatalf("completed: snapshot %v vs replay %v", snap.Completed, replayed.Completed)
	}
	for seq, exit := range replayed.Completed {
		if snap.Completed[seq] != exit {
			t.Fatalf("seq %d exit: snapshot %d vs replay %d", seq, snap.Completed[seq], exit)
		}
	}
	if len(snap.InFlight) != len(replayed.InFlight) {
		t.Fatalf("inflight: snapshot %v vs replay %v", snap.InFlight, replayed.InFlight)
	}
	for seq := range replayed.InFlight {
		if !snap.InFlight[seq] {
			t.Fatalf("seq %d in-flight in replay but not snapshot", seq)
		}
	}
	if len(snap.Digests) != len(replayed.Digests) {
		t.Fatalf("digests: snapshot %d vs replay %d entries", len(snap.Digests), len(replayed.Digests))
	}
	for seq, d := range replayed.Digests {
		if snap.Digests[seq] != d {
			t.Fatalf("seq %d digest mismatch", seq)
		}
	}
	ok := snap.CompletedOK()
	if !ok[1] || ok[3] || ok[2] {
		t.Fatalf("CompletedOK wrong on snapshot: %+v", ok)
	}
}

// TestSnapshotDrainsStagedWrites: appends staged asynchronously must be
// visible in the snapshot immediately.
func TestSnapshotDrainsStagedWrites(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Sync: SyncInterval, Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for seq := 1; seq <= 100; seq++ {
		if err := l.AppendIntent(seq, 0); err != nil {
			t.Fatal(err)
		}
		if seq%2 == 0 {
			if err := l.AppendCompletion(seq, 0, 0, ""); err != nil {
				t.Fatal(err)
			}
		}
	}
	snap, err := l.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Completed) != 50 || len(snap.InFlight) != 50 {
		t.Fatalf("snapshot sees %d completed, %d in-flight; want 50/50",
			len(snap.Completed), len(snap.InFlight))
	}
}

// TestSnapshotAfterClose fails cleanly.
func TestSnapshotAfterClose(t *testing.T) {
	l, _, err := Open(t.TempDir(), Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Snapshot(); err == nil {
		t.Fatal("Snapshot on closed log succeeded")
	}
}
