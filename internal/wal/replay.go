package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// State is the replayed view of a run log: what a resumed run needs to
// decide, per job seq, between skip / re-run / reject.
type State struct {
	// Completed maps seq → exit status of the latest completion record.
	// Resume skips only exit-0 completions (State.CompletedOK), matching
	// GNU Parallel's --resume semantics for failed jobs.
	Completed map[int]int
	// InFlight holds seqs with an intent but no completion: jobs that
	// were handed to a slot (or were queued behind one) when the run
	// died. A resumed run re-runs each exactly once.
	InFlight map[int]bool
	// Digests maps seq → the args digest recorded at intent time, used
	// to reject resumes whose input set changed out from under the log.
	Digests map[int]uint64
	// Records counts logical records (intents, completions,
	// checkpoints) successfully replayed; records inside a batch frame
	// count individually.
	Records int
	// TornTails counts segments whose tail was cut at the first
	// short/CRC-broken/undecodable record — the expected wound of a
	// crash mid-write.
	TornTails int
	// Segments is the number of segment files visited.
	Segments int
}

func newState() *State {
	return &State{
		Completed: map[int]int{},
		InFlight:  map[int]bool{},
		Digests:   map[int]uint64{},
	}
}

// CompletedOK returns the seqs whose latest completion has exit status
// 0 — the set a resumed run skips (core.Spec.ResumeFrom).
func (st *State) CompletedOK() map[int]bool {
	done := make(map[int]bool, len(st.Completed))
	for seq, exit := range st.Completed {
		if exit == 0 {
			done[seq] = true
		}
	}
	return done
}

// clone deep-copies the state so the Log's live copy and the caller's
// resume snapshot cannot alias.
func (st *State) clone() *State {
	c := &State{
		Completed: make(map[int]int, len(st.Completed)),
		InFlight:  make(map[int]bool, len(st.InFlight)),
		Digests:   make(map[int]uint64, len(st.Digests)),
		Records:   st.Records,
		TornTails: st.TornTails,
		Segments:  st.Segments,
	}
	for k, v := range st.Completed {
		c.Completed[k] = v
	}
	for k, v := range st.InFlight {
		c.InFlight[k] = v
	}
	for k, v := range st.Digests {
		c.Digests[k] = v
	}
	return c
}

// segment is one scanned segment file.
type segment struct {
	path  string
	index int
	size  int64
	// validLen is the byte offset after the last intact record (at
	// least headerSize for a well-formed header, 0 otherwise). Anything
	// beyond it is a torn tail.
	validLen int64
	torn     bool
}

// listSegments returns the directory's segment files in index order.
func listSegments(dir string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segment
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		var idx int
		if _, err := fmt.Sscanf(e.Name(), segNameFmt, &idx); err != nil || segName(idx) != e.Name() {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return nil, err
		}
		segs = append(segs, segment{path: filepath.Join(dir, e.Name()), index: idx, size: info.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].index < segs[j].index })
	return segs, nil
}

const segNameFmt = "%08d.wal"

func segName(idx int) string { return fmt.Sprintf(segNameFmt, idx) }

// scanSegment replays one segment file into st and fills in
// validLen/torn. An unreadable file is an error; corrupt contents are
// not — they end the segment at the last intact record.
func scanSegment(st *State, seg *segment) error {
	data, err := os.ReadFile(seg.path)
	if err != nil {
		return err
	}
	seg.size = int64(len(data))
	st.Segments++

	if len(data) == 0 {
		// A segment created but not yet headered (killed between create
		// and first write): empty is valid, not torn.
		seg.validLen = 0
		return nil
	}
	if len(data) < headerSize || string(data[:len(segMagic)]) != segMagic ||
		binary.LittleEndian.Uint32(data[len(segMagic):]) != segVersion {
		seg.validLen = 0
		seg.torn = true
		st.TornTails++
		return nil
	}

	off := headerSize
	for {
		if off == len(data) {
			seg.validLen = int64(off)
			return nil
		}
		if off+frameSize > len(data) {
			break // partial frame header
		}
		n := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if n == 0 || n > maxRecord || off+frameSize+int(n) > len(data) {
			break // absurd or truncated payload
		}
		payload := data[off+frameSize : off+frameSize+int(n)]
		if crc32.Checksum(payload, castagnoli) != sum {
			break // bit rot or torn write
		}
		if err := st.apply(payload); err != nil {
			break // CRC-valid but structurally bogus record
		}
		off += frameSize + int(n)
	}
	seg.validLen = int64(off)
	seg.torn = true
	st.TornTails++
	return nil
}

// replayDir scans every segment in order and returns the accumulated
// state plus the per-segment scan results.
func replayDir(dir string) (*State, []segment, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return nil, nil, err
	}
	st := newState()
	for i := range segs {
		if err := scanSegment(st, &segs[i]); err != nil {
			return nil, nil, err
		}
	}
	return st, segs, nil
}

// Replay reads a run log directory without modifying it and returns
// the replayed state. Torn tails are tolerated (truncated from the
// view and counted in State.TornTails); only I/O failures error.
func Replay(dir string) (*State, error) {
	st, _, err := replayDir(dir)
	return st, err
}
