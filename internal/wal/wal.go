package wal

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// SyncPolicy selects when appended records are fsynced to stable
// storage.
type SyncPolicy int

const (
	// SyncInterval group-commits: appends buffer, and a background
	// flusher fsyncs every Options.Interval. A crash loses at most one
	// interval of records — the throughput-friendly default.
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs inside every append before it returns: an
	// intent is durable before its job starts, a completion before the
	// next result is collected. Strongest guarantee, one fsync per
	// record.
	SyncAlways
	// SyncNever leaves durability to the OS page cache: records survive
	// a process kill (the write() already happened, minus the buffered
	// tail flushed on segment pressure and Close) but not a host crash.
	SyncNever
)

// String returns the policy's CLI spelling.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("wal.SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy parses the CLI spelling of a sync policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval", "":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("wal: unknown sync policy %q (want always, interval or never)", s)
	}
}

// Crash points instrumented inside the Log, for fault injection via
// Options.CrashHook (see internal/faults.CrashPlan). Each fires with
// the log's lock held, immediately before the named operation.
const (
	PointAppendIntent     = "wal.append.intent"
	PointAppendCompletion = "wal.append.completion"
	PointSyncPre          = "wal.sync.pre"        // before the buffer flush
	PointSyncMid          = "wal.sync.mid"        // flushed, before fsync
	PointRotateCheckpoint = "wal.rotate.checkpoint" // new segment created, checkpoint not yet written
	PointRotateDelete     = "wal.rotate.delete"     // checkpoint durable, old segments not yet deleted
)

// ErrCrashed is returned by every operation after a CrashHook fired:
// the log behaves as if the process died at that point (buffered
// records lost, file closed mid-state).
var ErrCrashed = errors.New("wal: simulated crash")

// Options configures a Log.
type Options struct {
	// Sync is the durability policy (default SyncInterval).
	Sync SyncPolicy
	// Interval is the group-commit period for SyncInterval (default
	// 25ms). Each commit pays a fixed fsync cost (hundreds of µs of
	// kernel time on common filesystems) regardless of how little data
	// is dirty, so the default favors few commits; jobs worth running
	// under a workflow manager take far longer than the loss window.
	Interval time.Duration
	// SegmentBytes rotates to a fresh, checkpoint-compacted segment
	// once the current one exceeds this size (default 64 MiB — roughly
	// three million jobs' worth of records; rotation rewrites the full
	// state snapshot, so small segments churn).
	SegmentBytes int64
	// FsyncObserver, when non-nil, receives the duration of every
	// fsync — the wal_fsync_seconds telemetry series.
	FsyncObserver func(time.Duration)
	// CrashHook, when non-nil, is consulted at the instrumented crash
	// points; returning true makes the log simulate a process crash at
	// that point (chaos testing — see internal/faults.CrashPlan).
	CrashHook func(point string) bool
}

func (o *Options) withDefaults() Options {
	opt := *o
	if opt.Interval <= 0 {
		opt.Interval = 25 * time.Millisecond
	}
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = 64 << 20
	}
	return opt
}

// Log is an open, appendable run log. All methods are safe for
// concurrent use.
//
// Under SyncAlways (or with a CrashHook armed) appends encode, write
// and sync inline. Under SyncInterval and SyncNever they instead push
// the record onto a staging buffer and return immediately; the
// group-commit flusher encodes, writes and (interval) fsyncs each tick.
// This keeps the dispatch hot path to an uncontended lock and a slice
// append — the engine's input goroutine and collector each own their
// stream, so they never contend — without weakening the policy's
// guarantee: group commit already loses up to one interval of records
// on a crash, whether they waited in a write buffer or a staging slice.
// The price is lazy error reporting: a write failure surfaces on a
// later append, Sync or Close rather than the append that caused it.
type Log struct {
	dir string
	opt Options

	mu      sync.Mutex
	f       *os.File
	w       *bufio.Writer
	segIdx   int
	segSize  int64
	ckptSize int64 // framed size of this segment's head checkpoint, if any
	dirty   bool
	err     error // sticky: first write/sync failure or ErrCrashed
	closed  bool
	scratch []byte // payload encode buffer, reused across appends
	frame   []byte // frame encode buffer, reused across appends
	batch   []byte // drain batch encode buffer, reused across drains

	st *tracker // live replay-equivalent state, feeds rotation checkpoints

	// Async staging (SyncInterval/SyncNever without a CrashHook).
	// Intents and completions get separate buffers because they have
	// disjoint single producers; errp mirrors the sticky error so the
	// staging fast path never touches mu. The flusher drains intents
	// before completions: a completion that slips between the two
	// swaps can at worst be written one tick before its intent, and a
	// completion-without-intent replays as completed — the benign
	// direction. spareIntents/spareCompls double-buffer the swaps so
	// steady state stages without allocating.
	async   bool
	errp    atomic.Pointer[error]
	flushMu sync.Mutex // serializes drainStaged (tick vs Sync vs Close)
	// The two stages are padded onto separate cache lines: the input
	// goroutine hammers intents while the collector hammers compls,
	// and false sharing between them would put a coherence miss on
	// every append of both hot paths.
	_            [64]byte
	intents      stage
	_            [64]byte
	compls       stage
	_            [64]byte
	spareIntents []stagedRec
	spareCompls  []stagedRec

	stopFlush chan struct{}
	flushDone chan struct{}

	// Introspection counters (Stats). Atomics so the accessor never
	// adds contention to the append hot path beyond one uncontended
	// atomic add per append.
	nAppended  atomic.Int64
	nSyncs     atomic.Int64
	lastSyncNS atomic.Int64
}

// stagedRec is one append waiting for the flusher, kept small because
// producers copy it twice (argument, then append) on the dispatch hot
// path. The runtime is pre-converted to microseconds — the on-disk
// unit — by the producer.
type stagedRec struct {
	seq    int32
	exit   int32
	us     int64
	digest uint64
	host   string
}

// stage is a mutex-guarded staging buffer with one producer (an engine
// goroutine) and one consumer (the flusher).
type stage struct {
	mu  sync.Mutex
	buf []stagedRec
}

// add stages one record. The fields come in as scalars (registers)
// rather than a struct so the hot producer path copies them exactly
// once, into the buffer.
func (s *stage) add(seq, exit int32, us int64, digest uint64, host string) {
	s.mu.Lock()
	s.buf = append(s.buf, stagedRec{seq: seq, exit: exit, us: us, digest: digest, host: host})
	s.mu.Unlock()
}

// swapOut installs spare as the new staging buffer and returns the
// filled one.
func (s *stage) swapOut(spare []stagedRec) []stagedRec {
	s.mu.Lock()
	b := s.buf
	s.buf = spare
	s.mu.Unlock()
	return b
}

var errClosed = errors.New("wal: log closed")

// Open replays (and repairs) the run log in dir, creating it if
// needed, and returns the log opened for append plus a snapshot of the
// replayed state for resume decisions. The last segment's torn tail,
// if any, is truncated on disk so the next append extends a valid
// record stream.
func Open(dir string, opt Options) (*Log, *State, error) {
	o := opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	st, segs, err := replayDir(dir)
	if err != nil {
		return nil, nil, err
	}

	l := &Log{dir: dir, opt: o, st: newTracker(st)}
	if len(segs) == 0 {
		if err := l.createSegment(1); err != nil {
			return nil, nil, err
		}
	} else {
		last := segs[len(segs)-1]
		if last.validLen < int64(headerSize) {
			// Empty or header-mangled final segment: rewrite it whole.
			f, err := os.OpenFile(last.path, os.O_WRONLY|os.O_TRUNC, 0o644)
			if err != nil {
				return nil, nil, err
			}
			if err := writeHeader(f); err != nil {
				f.Close()
				return nil, nil, err
			}
			l.attach(f, last.index, int64(headerSize))
		} else {
			if last.validLen < last.size {
				if err := os.Truncate(last.path, last.validLen); err != nil {
					return nil, nil, err
				}
			}
			f, err := os.OpenFile(last.path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, nil, err
			}
			l.attach(f, last.index, last.validLen)
		}
	}

	l.async = o.CrashHook == nil && o.Sync != SyncAlways
	if l.async || o.Sync == SyncInterval {
		l.stopFlush = make(chan struct{})
		l.flushDone = make(chan struct{})
		go l.flushLoop()
	}
	return l, st.clone(), nil
}

func writeHeader(f *os.File) error {
	var hdr [headerSize]byte
	copy(hdr[:], segMagic)
	hdr[len(segMagic)] = byte(segVersion)
	if _, err := f.Write(hdr[:]); err != nil {
		return err
	}
	return nil
}

func (l *Log) attach(f *os.File, idx int, size int64) {
	l.f = f
	l.w = bufio.NewWriterSize(f, 64<<10)
	l.segIdx = idx
	l.segSize = size
	l.ckptSize = 0
}

func (l *Log) createSegment(idx int) error {
	f, err := os.OpenFile(filepath.Join(l.dir, segName(idx)), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if err := writeHeader(f); err != nil {
		f.Close()
		return err
	}
	l.attach(f, idx, int64(headerSize))
	return nil
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// AppendIntent durably (per the sync policy) records that job seq is
// about to be executed. digest is ArgsDigest of the job's input record.
func (l *Log) AppendIntent(seq int, digest uint64) error {
	if l.async {
		if ep := l.errp.Load(); ep != nil {
			return *ep
		}
		l.intents.add(int32(seq), 0, 0, digest, "")
		l.nAppended.Add(1)
		return nil
	}
	l.nAppended.Add(1)
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.checkLocked(PointAppendIntent); err != nil {
		return err
	}
	if err := l.writeIntentLocked(seq, digest); err != nil {
		return err
	}
	return l.commitLocked()
}

// AppendCompletion records job seq's outcome.
func (l *Log) AppendCompletion(seq, exit int, runtime time.Duration, host string) error {
	if l.async {
		if ep := l.errp.Load(); ep != nil {
			return *ep
		}
		us := runtime.Microseconds()
		if us < 0 {
			us = 0
		}
		l.compls.add(int32(seq), clampExit(exit), us, 0, host)
		l.nAppended.Add(1)
		return nil
	}
	l.nAppended.Add(1)
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.checkLocked(PointAppendCompletion); err != nil {
		return err
	}
	if err := l.writeCompletionLocked(seq, exit, runtime, host); err != nil {
		return err
	}
	return l.commitLocked()
}

func (l *Log) writeIntentLocked(seq int, digest uint64) error {
	l.scratch = appendIntentPayload(l.scratch[:0], seq, digest)
	if err := l.writeLocked(l.scratch); err != nil {
		return err
	}
	l.st.intent(seq, digest)
	return nil
}

func (l *Log) writeCompletionLocked(seq, exit int, runtime time.Duration, host string) error {
	l.scratch = appendCompletionPayload(l.scratch[:0], seq, exit, runtime, host)
	if err := l.writeLocked(l.scratch); err != nil {
		return err
	}
	l.st.completion(seq, exit)
	return nil
}

// drainStaged moves everything staged into the segment file: encode,
// frame, rotate when full, and (SyncInterval) fsync / (SyncNever)
// flush. Called from the flusher tick, Sync and Close; never
// concurrently with itself (single flusher, and Sync/Close serialize
// through it only after stopping the flusher or via flushMu).
func (l *Log) drainStaged() error {
	if !l.async {
		return nil
	}
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	ib := l.intents.swapOut(l.spareIntents[:0])
	cb := l.compls.swapOut(l.spareCompls[:0])
	l.spareIntents, l.spareCompls = ib, cb

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if l.closed {
		return errClosed
	}
	if len(ib)+len(cb) == 0 {
		return nil
	}
	// Encode the whole commit as batch records — intent and completion
	// payloads concatenated under a shared frame and CRC — so the
	// per-record framing cost (8 bytes plus a checksum call each) is
	// paid once per drain. Per-record flusher CPU matters: on a small
	// host it competes directly with the dispatch pipeline.
	buf := l.batch[:0]
	buf = append(buf, recBatch)
	flushBatch := func() error {
		if len(buf) <= 1 {
			return nil
		}
		if err := l.writeLocked(buf); err != nil {
			return err
		}
		buf = buf[:1]
		return nil
	}
	// Cap one batch payload well under maxRecord: a stalled flusher can
	// accumulate an arbitrarily deep backlog, and an oversized frame
	// would be rejected by replay as torn.
	const batchCap = 4 << 20
	for i := range ib {
		buf = appendIntentPayload(buf, int(ib[i].seq), ib[i].digest)
		l.st.intent(int(ib[i].seq), ib[i].digest)
		if len(buf) >= batchCap {
			if err := flushBatch(); err != nil {
				return err
			}
		}
	}
	for i := range cb {
		buf = appendCompletionPayloadUS(buf, int(cb[i].seq), int(cb[i].exit), cb[i].us, cb[i].host)
		l.st.completion(int(cb[i].seq), int(cb[i].exit))
		if len(buf) >= batchCap {
			if err := flushBatch(); err != nil {
				return err
			}
		}
	}
	err := flushBatch()
	l.batch = buf[:0]
	if err != nil {
		return err
	}
	if l.rotateDueLocked() {
		return l.rotateLocked()
	}
	if l.opt.Sync == SyncInterval {
		return l.syncLocked()
	}
	// SyncNever: push bytes to the kernel (they survive a process
	// kill) but skip the disk barrier.
	if err := l.w.Flush(); err != nil {
		l.setErrLocked(err)
		return err
	}
	return nil
}

// setErrLocked records the first failure, mirrored into errp so the
// async staging fast path sees it without taking mu.
func (l *Log) setErrLocked(err error) {
	if l.err == nil {
		l.err = err
		l.errp.Store(&err)
	}
}

// checkLocked validates the log is usable and consults the crash hook.
func (l *Log) checkLocked(point string) error {
	if l.err != nil {
		return l.err
	}
	if l.closed {
		return errors.New("wal: log closed")
	}
	if l.hitLocked(point) {
		return ErrCrashed
	}
	return nil
}

// hitLocked fires the crash hook at the named point; true simulates
// the process dying there: buffered-but-unflushed records vanish (the
// bufio buffer is the process memory a real SIGKILL loses) and the
// file closes as-is.
func (l *Log) hitLocked(point string) bool {
	if l.opt.CrashHook == nil || !l.opt.CrashHook(point) {
		return false
	}
	l.setErrLocked(ErrCrashed)
	if l.f != nil {
		l.f.Close() // without flushing l.w: the buffer dies with the "process"
	}
	return true
}

// writeLocked frames and buffers one record payload.
func (l *Log) writeLocked(payload []byte) error {
	l.frame = appendFrame(l.frame[:0], payload)
	if _, err := l.w.Write(l.frame); err != nil {
		l.setErrLocked(err)
		return err
	}
	l.segSize += int64(len(l.frame))
	l.dirty = true
	return nil
}

// commitLocked applies the post-append policy: rotation when the
// segment is full (rotation syncs as a side effect), otherwise an
// inline fsync under SyncAlways.
func (l *Log) commitLocked() error {
	if l.rotateDueLocked() {
		return l.rotateLocked()
	}
	if l.opt.Sync == SyncAlways {
		return l.syncLocked()
	}
	return nil
}

// rotateDueLocked decides when the segment is full enough to rotate.
// The naive rule (segSize >= SegmentBytes) collapses at scale: each
// rotation rewrites the full state snapshot at the head of the new
// segment, and once the run is large enough that the snapshot itself
// exceeds the segment budget, every rotation immediately triggers the
// next — a compaction spiral spending all its time rewriting
// checkpoints. Requiring the segment to also hold twice its own head
// checkpoint in fresh records keeps the amortized checkpoint cost
// bounded (each snapshot byte is paid for by at least two bytes of new
// records) no matter how many jobs the run accumulates.
func (l *Log) rotateDueLocked() bool {
	if l.segSize < l.opt.SegmentBytes+2*l.ckptSize {
		return false
	}
	// Never rotate into a checkpoint that could not be written: a frame
	// over maxRecord is rejected by replay, so a run tracking that many
	// jobs stops compacting and lets the log grow append-only instead.
	return l.st.estCheckpointBytes() <= maxRecord/2
}

// syncLocked flushes the buffer and fsyncs the segment.
func (l *Log) syncLocked() error {
	if l.hitLocked(PointSyncPre) {
		return ErrCrashed
	}
	if err := l.w.Flush(); err != nil {
		l.setErrLocked(err)
		return err
	}
	if l.hitLocked(PointSyncMid) {
		// Flushed but not fsynced: survives a process kill (the write()
		// happened) but models dying before the disk barrier.
		return ErrCrashed
	}
	var start time.Time
	if l.opt.FsyncObserver != nil {
		start = time.Now()
	}
	if err := l.f.Sync(); err != nil {
		l.setErrLocked(err)
		return err
	}
	if l.opt.FsyncObserver != nil {
		l.opt.FsyncObserver(time.Since(start))
	}
	l.dirty = false
	l.nSyncs.Add(1)
	l.lastSyncNS.Store(time.Now().UnixNano())
	return nil
}

// rotateLocked seals the current segment and starts the next one with
// a checkpoint snapshot, then deletes the segments the checkpoint
// subsumes (compaction). Crash-ordering: the old segment is fully
// durable before the new one exists; the checkpoint is durable before
// anything is deleted — replay is correct from any interleaving.
func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		l.setErrLocked(err)
		return err
	}
	oldIdx := l.segIdx
	if err := l.createSegment(oldIdx + 1); err != nil {
		l.setErrLocked(err)
		return err
	}
	if l.hitLocked(PointRotateCheckpoint) {
		return ErrCrashed
	}
	l.scratch = l.st.appendCheckpointPayload(l.scratch[:0])
	if len(l.scratch) > maxRecord {
		// The snapshot outgrew the largest legal frame (possible only
		// with estCheckpointBytes badly fooled by adversarial sparse
		// seqs). Writing it would produce a record replay rejects — and
		// deleting the older segments it was meant to subsume would
		// then lose state. Keep every segment and carry on.
		return nil
	}
	if err := l.writeLocked(l.scratch); err != nil {
		return err
	}
	l.ckptSize = int64(frameSize + len(l.scratch))
	if err := l.syncLocked(); err != nil {
		return err
	}
	if l.hitLocked(PointRotateDelete) {
		return ErrCrashed
	}
	// Older segments are now redundant. Deletion failures are
	// tolerable: replay handles their presence (the checkpoint
	// supersedes them) and the next rotation retries.
	for idx := oldIdx; idx >= 1; idx-- {
		path := filepath.Join(l.dir, segName(idx))
		if err := os.Remove(path); err != nil {
			if os.IsNotExist(err) {
				break // already compacted this far
			}
			break
		}
	}
	return nil
}

// flushLoop is the SyncInterval group-commit goroutine.
func (l *Log) flushLoop() {
	defer close(l.flushDone)
	t := time.NewTicker(l.opt.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if l.async {
				l.drainStaged()
				continue
			}
			l.mu.Lock()
			if l.err == nil && !l.closed && l.dirty {
				l.syncLocked()
			}
			l.mu.Unlock()
		case <-l.stopFlush:
			return
		}
	}
}

// Snapshot drains anything staged and returns the log's current
// replay-equivalent state: exactly what Replay would reconstruct if the
// process died after the appends that precede this call. It is how a
// long-lived owner (a job-service queue) restarts an embedded engine
// run against the same log without closing and reopening it — the
// returned state feeds Spec.ResumeFrom/WALDigests for the next
// generation. The snapshot does not alias live state; Records,
// TornTails and Segments are replay-time facts and stay zero.
func (l *Log) Snapshot() (*State, error) {
	if err := l.drainStaged(); err != nil {
		return nil, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return nil, l.err
	}
	if l.closed {
		return nil, errClosed
	}
	return l.st.snapshotState(), nil
}

// Sync drains anything staged and forces a flush + fsync now,
// regardless of policy. Appends that completed before Sync was called
// are durable when it returns.
func (l *Log) Sync() error {
	if err := l.drainStaged(); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if l.closed {
		return errClosed
	}
	return l.syncLocked()
}

// Close drains, flushes, fsyncs and closes the log. Safe to call after
// a simulated crash (then a no-op beyond stopping the flusher).
func (l *Log) Close() error {
	if l.stopFlush != nil {
		l.mu.Lock()
		alreadyStopped := l.closed
		l.mu.Unlock()
		if !alreadyStopped {
			close(l.stopFlush)
			<-l.flushDone
		}
	}
	l.drainStaged() // flusher stopped: final drain (errors go sticky)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return l.err
	}
	l.closed = true
	if l.errp.Load() == nil {
		ec := errClosed
		l.errp.Store(&ec)
	}
	if l.err != nil {
		return l.err
	}
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		l.setErrLocked(err)
		return err
	}
	return nil
}
