// Package wal is a crash-safe write-ahead run log for the launcher: the
// durable record of which jobs a run intended to execute and which it
// finished, so a coordinator killed mid-burst resumes with exactly-once
// semantics instead of losing or double-running work.
//
// The log is a directory of segment files. Each segment starts with an
// 8-byte magic plus a version word, followed by length-prefixed,
// CRC32C-checksummed binary records:
//
//	[u32le payload length][u32le CRC32C(payload)][payload]
//
// Four record types exist (first payload byte):
//
//   - intent ('I'): appended before a job is handed to an execution
//     slot or dist worker. Carries the job's seq and a 64-bit digest of
//     its input arguments, so a resumed run can reject a changed input
//     set instead of silently skipping the wrong jobs.
//   - completion ('C'): appended as the collector receives the job's
//     result. Carries seq, exit status, runtime and host.
//   - checkpoint ('K'): a full snapshot of the replay state, written at
//     the head of each new segment on rotation so older segments can be
//     deleted (compaction) without losing resume information.
//   - batch ('B'): a concatenation of intent and completion payloads
//     sharing one frame and one CRC, written by the group-commit
//     flusher so the per-record framing overhead (8 bytes and a
//     checksum call each) is paid once per commit instead of once per
//     job. A torn batch loses all its records together — the same
//     records a torn tail would have lost individually, since a batch
//     is exactly one commit's worth of appends.
//
// Replay tolerates torn tails — a crash mid-write leaves a partial or
// CRC-broken final record, which the replayer truncates away and counts
// — and Open repairs the tail in place before appending. Durability is
// governed by a sync policy: fsync on every append, group-commit on an
// interval, or never (OS page cache only).
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"time"
)

// Record type tags (first payload byte).
const (
	recIntent     = 'I'
	recCompletion = 'C'
	recCheckpoint = 'K'
	recBatch      = 'B'
)

// Segment framing constants.
const (
	segMagic   = "GOPARWAL"        // 8 bytes at the head of every segment
	segVersion = uint32(1)         // format version word after the magic
	headerSize = len(segMagic) + 4 // magic + u32le version
	frameSize  = 8                 // u32le length + u32le crc per record

	// maxRecord bounds a single record payload. Real records are tens of
	// bytes (checkpoints grow with job count but stay far below this);
	// the bound lets the replayer reject absurd lengths from corrupt
	// frames without attempting huge allocations.
	maxRecord = 64 << 20
)

// castagnoli is the CRC32C polynomial table (hardware-accelerated on
// amd64/arm64), the same checksum family used by ext4 and Kafka.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ArgsDigest hashes a job's input record (its positional argument
// strings) to the 64-bit digest stored in intent records. Arguments are
// length-prefixed before hashing so ["ab","c"] and ["a","bc"] cannot
// collide. The digest is FNV-1a; it detects input-set drift between a
// crashed run and its resume, not adversarial collisions.
func ArgsDigest(args []string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	var lb [binary.MaxVarintLen64]byte
	for _, a := range args {
		n := binary.PutUvarint(lb[:], uint64(len(a)))
		for _, b := range lb[:n] {
			h = (h ^ uint64(b)) * prime
		}
		for i := 0; i < len(a); i++ {
			h = (h ^ uint64(a[i])) * prime
		}
	}
	return h
}

// appendUvarint / appendZigzag are small local helpers so record
// encoders stay allocation-free on a reused scratch buffer.
func appendUvarint(dst []byte, v uint64) []byte {
	var b [binary.MaxVarintLen64]byte
	return append(dst, b[:binary.PutUvarint(b[:], v)]...)
}

func appendZigzag(dst []byte, v int64) []byte {
	var b [binary.MaxVarintLen64]byte
	return append(dst, b[:binary.PutVarint(b[:], v)]...)
}

// appendIntentPayload encodes an intent record payload.
func appendIntentPayload(dst []byte, seq int, digest uint64) []byte {
	dst = append(dst, recIntent)
	dst = appendUvarint(dst, uint64(seq))
	dst = binary.LittleEndian.AppendUint64(dst, digest)
	return dst
}

// appendCompletionPayload encodes a completion record payload. Runtime
// is stored in microseconds (matching the joblog's precision).
func appendCompletionPayload(dst []byte, seq, exit int, runtime time.Duration, host string) []byte {
	us := runtime.Microseconds()
	if us < 0 {
		us = 0
	}
	return appendCompletionPayloadUS(dst, seq, exit, us, host)
}

// appendCompletionPayloadUS is appendCompletionPayload with the
// runtime already converted to microseconds (the staged form).
func appendCompletionPayloadUS(dst []byte, seq, exit int, us int64, host string) []byte {
	dst = append(dst, recCompletion)
	dst = appendUvarint(dst, uint64(seq))
	dst = appendZigzag(dst, int64(exit))
	dst = appendUvarint(dst, uint64(us))
	dst = appendUvarint(dst, uint64(len(host)))
	dst = append(dst, host...)
	return dst
}

// appendFrame wraps a payload in the on-disk frame: length, CRC32C,
// payload.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
	return append(dst, payload...)
}

// payloadReader walks a record payload during replay.
type payloadReader struct {
	b   []byte
	off int
}

func (r *payloadReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("wal: truncated uvarint at payload offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *payloadReader) zigzag() (int64, error) {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("wal: truncated varint at payload offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *payloadReader) u64() (uint64, error) {
	if r.off+8 > len(r.b) {
		return 0, fmt.Errorf("wal: truncated u64 at payload offset %d", r.off)
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v, nil
}

func (r *payloadReader) bytes(n uint64) ([]byte, error) {
	if n > uint64(len(r.b)-r.off) {
		return nil, fmt.Errorf("wal: truncated %d-byte field at payload offset %d", n, r.off)
	}
	b := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return b, nil
}

// seqInRange rejects seq values that cannot be real job sequence
// numbers (they are 1-based ints assigned by the engine). A CRC-valid
// but hand-crafted payload must not make replay allocate absurd maps.
func seqInRange(v uint64) bool { return v >= 1 && v <= math.MaxInt32 }

// apply folds one record payload into the state. An error means the
// payload is structurally invalid despite a matching CRC — the replayer
// treats that exactly like a torn tail.
func (st *State) apply(payload []byte) error {
	if len(payload) == 0 {
		return fmt.Errorf("wal: empty record payload")
	}
	r := &payloadReader{b: payload, off: 1}
	switch payload[0] {
	case recIntent:
		return st.applyIntent(r)

	case recCompletion:
		return st.applyCompletion(r)

	case recBatch:
		// A batch is a concatenation of self-delimiting intent and
		// completion payloads under one frame. Nested batches and
		// checkpoints are not legal sub-records.
		for r.off < len(r.b) {
			typ := r.b[r.off]
			r.off++
			switch typ {
			case recIntent:
				if err := st.applyIntent(r); err != nil {
					return err
				}
			case recCompletion:
				if err := st.applyCompletion(r); err != nil {
					return err
				}
			default:
				return fmt.Errorf("wal: unknown batch sub-record type %q", typ)
			}
		}

	case recCheckpoint:
		// A checkpoint is a full snapshot: it replaces the state
		// accumulated so far (older segments it subsumes may or may not
		// still exist on disk).
		nst := newState()
		n, err := r.uvarint()
		if err != nil {
			return err
		}
		if n > maxRecord {
			return fmt.Errorf("wal: checkpoint completed count %d out of range", n)
		}
		seq := 0
		for i := uint64(0); i < n; i++ {
			d, err := r.uvarint()
			if err != nil {
				return err
			}
			exit, err := r.zigzag()
			if err != nil {
				return err
			}
			digest, err := r.u64()
			if err != nil {
				return err
			}
			seq += int(d)
			if !seqInRange(uint64(seq)) {
				return fmt.Errorf("wal: checkpoint completed seq %d out of range", seq)
			}
			nst.Completed[seq] = int(exit)
			if digest != 0 {
				nst.Digests[seq] = digest
			}
		}
		n, err = r.uvarint()
		if err != nil {
			return err
		}
		if n > maxRecord {
			return fmt.Errorf("wal: checkpoint pending count %d out of range", n)
		}
		seq = 0
		for i := uint64(0); i < n; i++ {
			d, err := r.uvarint()
			if err != nil {
				return err
			}
			digest, err := r.u64()
			if err != nil {
				return err
			}
			seq += int(d)
			if !seqInRange(uint64(seq)) {
				return fmt.Errorf("wal: checkpoint pending seq %d out of range", seq)
			}
			nst.InFlight[seq] = true
			if digest != 0 {
				nst.Digests[seq] = digest
			}
		}
		st.Completed = nst.Completed
		st.InFlight = nst.InFlight
		st.Digests = nst.Digests
		st.Records++

	default:
		return fmt.Errorf("wal: unknown record type %q", payload[0])
	}
	return nil
}

// applyIntent parses one intent payload body (type byte already
// consumed) and folds it into the state.
func (st *State) applyIntent(r *payloadReader) error {
	seqU, err := r.uvarint()
	if err != nil {
		return err
	}
	if !seqInRange(seqU) {
		return fmt.Errorf("wal: intent seq %d out of range", seqU)
	}
	digest, err := r.u64()
	if err != nil {
		return err
	}
	seq := int(seqU)
	st.Digests[seq] = digest
	if _, done := st.Completed[seq]; !done {
		st.InFlight[seq] = true
	}
	st.Records++
	return nil
}

// applyCompletion parses one completion payload body (type byte
// already consumed) and folds it into the state.
func (st *State) applyCompletion(r *payloadReader) error {
	seqU, err := r.uvarint()
	if err != nil {
		return err
	}
	if !seqInRange(seqU) {
		return fmt.Errorf("wal: completion seq %d out of range", seqU)
	}
	exit, err := r.zigzag()
	if err != nil {
		return err
	}
	if _, err := r.uvarint(); err != nil { // runtime µs (not needed for resume)
		return err
	}
	hostLen, err := r.uvarint()
	if err != nil {
		return err
	}
	if _, err := r.bytes(hostLen); err != nil {
		return err
	}
	seq := int(seqU)
	// Last completion wins: a resumed run's fresh outcome supersedes
	// the crashed run's record for the same seq.
	st.Completed[seq] = int(exit)
	delete(st.InFlight, seq)
	st.Records++
	return nil
}
