package wal

import "time"

// Stats is a point-in-time view of the log's write pipeline, built
// for introspection consumers (the flight recorder's snapshot source,
// debug endpoints). All fields are observational; none participate in
// replay or durability decisions.
type Stats struct {
	// Appended counts records accepted by AppendIntent/AppendCompletion
	// since Open, whether or not they have reached the disk yet.
	Appended int64
	// Syncs counts completed fsyncs.
	Syncs int64
	// LastSync is the wall time of the most recent fsync (zero before
	// the first).
	LastSync time.Time
	// Staged counts records sitting in the async staging buffers,
	// waiting for the group-commit flusher. Always 0 for synchronous
	// policies.
	Staged int
	// SegIndex is the current segment number; SegBytes its size so far.
	SegIndex int
	SegBytes int64
}

// Stats reports the pipeline view. Safe to call from any goroutine at
// any time; it takes the log mutex briefly for the segment fields, so
// it belongs on sampling intervals, not hot paths.
func (l *Log) Stats() Stats {
	s := Stats{
		Appended: l.nAppended.Load(),
		Syncs:    l.nSyncs.Load(),
	}
	if ns := l.lastSyncNS.Load(); ns > 0 {
		s.LastSync = time.Unix(0, ns)
	}
	if l.async {
		l.intents.mu.Lock()
		s.Staged = len(l.intents.buf)
		l.intents.mu.Unlock()
		l.compls.mu.Lock()
		s.Staged += len(l.compls.buf)
		l.compls.mu.Unlock()
	}
	l.mu.Lock()
	s.SegIndex = l.segIdx
	s.SegBytes = l.segSize
	l.mu.Unlock()
	return s
}
