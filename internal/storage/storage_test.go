package storage

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
)

func testFS(e *sim.Engine, name string, aggBW, streamBW float64) *FS {
	return New(e, Config{
		Name:          name,
		AggregateBW:   aggBW,
		StreamBW:      streamBW,
		MetadataSlots: 2,
		MetadataCost:  time.Millisecond,
	})
}

func TestSingleStreamBandwidth(t *testing.T) {
	e := sim.NewEngine(1)
	fs := testFS(e, "fs", 4e9, 1e9) // 4 slots at 1 GB/s
	var took sim.Time
	e.Spawn("reader", func(p *sim.Proc) {
		start := p.Now()
		fs.Read(p, 1e9) // 1 GB at 1 GB/s ~ 1s
		took = p.Now() - start
	})
	e.Run()
	if took < 900*time.Millisecond || took > 1100*time.Millisecond {
		t.Fatalf("1GB read took %v, want ~1s", took)
	}
	if fs.Stats().BytesRead != 1e9 || fs.Stats().Reads != 1 {
		t.Fatalf("stats = %+v", fs.Stats())
	}
}

func TestContentionQueues(t *testing.T) {
	e := sim.NewEngine(1)
	fs := testFS(e, "fs", 2e9, 1e9) // only 2 concurrent streams
	done := 0
	for i := 0; i < 4; i++ {
		e.Spawn("w", func(p *sim.Proc) {
			fs.Write(p, 1e9)
			done++
		})
	}
	end := e.Run()
	if done != 4 {
		t.Fatalf("done = %d", done)
	}
	// 4 writes of ~1s each through 2 slots => ~2s (±jitter).
	if end < 1800*time.Millisecond || end > 2300*time.Millisecond {
		t.Fatalf("makespan = %v, want ~2s", end)
	}
}

func TestSmallFilePenalty(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := Config{
		Name: "lustre", AggregateBW: 1e12, StreamBW: 1e9,
		MetadataSlots: 8, MetadataCost: time.Millisecond,
		SmallFileThreshold: 1 << 20, SmallFilePenalty: 10 * time.Millisecond,
	}
	fs := New(e, cfg)
	var small, large sim.Time
	e.Spawn("small", func(p *sim.Proc) {
		s := p.Now()
		fs.Write(p, 1024) // tiny: penalty dominates
		small = p.Now() - s
	})
	e.Spawn("large", func(p *sim.Proc) {
		s := p.Now()
		fs.Write(p, 2<<20) // 2 MiB: no penalty
		large = p.Now() - s
	})
	e.Run()
	if small < 9*time.Millisecond {
		t.Fatalf("small write %v did not pay penalty", small)
	}
	if large > 5*time.Millisecond {
		t.Fatalf("large write %v unexpectedly slow", large)
	}
}

func TestMetadataContention(t *testing.T) {
	e := sim.NewEngine(1)
	fs := New(e, Config{
		Name: "fs", AggregateBW: 1e12, StreamBW: 1e9,
		MetadataSlots: 1, MetadataCost: 10 * time.Millisecond,
	})
	for i := 0; i < 5; i++ {
		e.Spawn("m", func(p *sim.Proc) { fs.MetaOp(p) })
	}
	end := e.Run()
	// 5 serialized ops at ~10ms.
	if end < 45*time.Millisecond || end > 60*time.Millisecond {
		t.Fatalf("5 metadata ops took %v, want ~50ms", end)
	}
	if fs.Stats().MetaOps != 5 {
		t.Fatalf("meta ops = %d", fs.Stats().MetaOps)
	}
}

func TestCreateAndWriteCombines(t *testing.T) {
	e := sim.NewEngine(1)
	fs := testFS(e, "fs", 4e9, 1e9)
	e.Spawn("c", func(p *sim.Proc) { fs.CreateAndWrite(p, 1e6) })
	e.Run()
	st := fs.Stats()
	if st.MetaOps != 1 || st.Writes != 1 || st.BytesWritten != 1e6 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCopyThrottledBySlowerSide(t *testing.T) {
	e := sim.NewEngine(1)
	fast := testFS(e, "a-fast", 100e9, 10e9)
	slow := testFS(e, "b-slow", 4e9, 1e9)
	var took sim.Time
	e.Spawn("cp", func(p *sim.Proc) {
		s := p.Now()
		Copy(p, fast, slow, 1e9)
		took = p.Now() - s
	})
	e.Run()
	// Throttled by slow side: ~1s, not ~0.1s.
	if took < 900*time.Millisecond || took > 1100*time.Millisecond {
		t.Fatalf("copy took %v, want ~1s", took)
	}
	if slow.Stats().BytesWritten != 1e9 || fast.Stats().BytesRead != 1e9 {
		t.Fatal("copy accounting wrong")
	}
}

func TestCopyOppositeDirectionsNoDeadlock(t *testing.T) {
	e := sim.NewEngine(1)
	a := testFS(e, "a", 1e9, 1e9) // single slot each
	b := testFS(e, "b", 1e9, 1e9)
	done := 0
	for i := 0; i < 3; i++ {
		e.Spawn("ab", func(p *sim.Proc) { Copy(p, a, b, 1e8); done++ })
		e.Spawn("ba", func(p *sim.Proc) { Copy(p, b, a, 1e8); done++ })
	}
	e.Run()
	if done != 6 {
		t.Fatalf("done = %d (deadlock?)", done)
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("live procs = %d", e.LiveProcs())
	}
}

func TestNVMeFasterThanLustreForSmallFiles(t *testing.T) {
	// The Fig 1 best practice: per-task stdout files go to NVMe.
	e := sim.NewEngine(7)
	lustre := New(e, LustreProfile())
	nvme := New(e, NVMeProfile(0))
	var lustreTime, nvmeTime sim.Time
	e.Spawn("lustre-writer", func(p *sim.Proc) {
		s := p.Now()
		for i := 0; i < 128; i++ {
			lustre.CreateAndWrite(p, 512)
		}
		lustreTime = p.Now() - s
	})
	e.Spawn("nvme-writer", func(p *sim.Proc) {
		s := p.Now()
		for i := 0; i < 128; i++ {
			nvme.CreateAndWrite(p, 512)
		}
		nvmeTime = p.Now() - s
	})
	e.Run()
	if nvmeTime*10 > lustreTime {
		t.Fatalf("NVMe (%v) should be >10x faster than Lustre (%v) for small files", nvmeTime, lustreTime)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero bandwidth accepted")
		}
	}()
	New(sim.NewEngine(1), Config{Name: "bad"})
}

// Property: aggregate throughput never exceeds AggregateBW: n concurrent
// 1-GB writes through k slots take >= n/k * (1GB/streamBW) * 0.95.
func TestPropertyAggregateBandwidthCap(t *testing.T) {
	f := func(n8, k8 uint8) bool {
		n := int(n8%12) + 1
		k := int(k8%4) + 1
		e := sim.NewEngine(uint64(n)*31 + uint64(k))
		fs := New(e, Config{
			Name:        "fs",
			AggregateBW: float64(k) * 1e9,
			StreamBW:    1e9,
		})
		for i := 0; i < n; i++ {
			e.Spawn("w", func(p *sim.Proc) { fs.Write(p, 1e9) })
		}
		end := e.Run()
		waves := (n + k - 1) / k
		minTime := time.Duration(float64(waves) * 0.95 * float64(time.Second))
		return end >= minTime
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
