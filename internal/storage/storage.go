// Package storage models filesystem performance for the simulated HPC
// substrate: a shared parallel filesystem (Lustre-like: large aggregate
// bandwidth, contended metadata service, small-file penalty) and per-node
// local NVMe (lower aggregate, near-zero latency, no cross-node
// contention).
//
// The bandwidth model is a service-slot approximation: a filesystem with
// aggregate bandwidth B and per-stream bandwidth b exposes B/b concurrent
// service slots; a transfer holds one slot for size/b. This reproduces
// the two behaviors the paper's workflows depend on: uncontended streams
// see per-stream speed, and saturated filesystems queue.
package storage

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Config describes a filesystem's performance envelope.
type Config struct {
	Name string
	// AggregateBW is the total deliverable bandwidth, bytes/s.
	AggregateBW float64
	// StreamBW is the per-stream bandwidth ceiling, bytes/s.
	StreamBW float64
	// MetadataSlots is the concurrency of the metadata service.
	MetadataSlots int
	// MetadataCost is the service time of one metadata operation
	// (create/open/unlink).
	MetadataCost time.Duration
	// SmallFileThreshold: writes below this size still pay
	// SmallFilePenalty of service time, modelling per-op overheads that
	// dominate small-file I/O on parallel filesystems.
	SmallFileThreshold int64
	SmallFilePenalty   time.Duration
}

// FS is a simulated filesystem instance.
type FS struct {
	cfg   Config
	data  *sim.Resource
	meta  *sim.Resource
	rng   *sim.RNG
	stats Stats
	// Pre-bound method values handed to flow steps (sim.Flow), so the
	// Flow* methods append steps without allocating a closure per call.
	metaDurFn   func() time.Duration
	transferFn  func(int64) time.Duration
	recWriteFn  func(int64)
	recReadFn   func(int64)
	recMetaOpFn func()
}

// Stats aggregates filesystem activity.
type Stats struct {
	BytesRead, BytesWritten int64
	Reads, Writes, MetaOps  int64
}

// New creates a filesystem on engine e from cfg, with jitter draws from
// the engine's own RNG tree.
func New(e *sim.Engine, cfg Config) *FS {
	return NewWithRand(e, cfg, e.RNG().Split("storage/"+cfg.Name))
}

// NewWithRand is New with an explicit random stream. Sharded models need
// it: group engines carry distinct RNG seeds (and the serial oracle has
// only one engine), so digest-stable filesystems must draw from a stream
// derived from the model's base RNG, not from whatever engine hosts them.
func NewWithRand(e *sim.Engine, cfg Config, rng *sim.RNG) *FS {
	if cfg.StreamBW <= 0 || cfg.AggregateBW <= 0 {
		panic(fmt.Sprintf("storage: %s: bandwidths must be positive", cfg.Name))
	}
	slots := int(cfg.AggregateBW / cfg.StreamBW)
	if slots < 1 {
		slots = 1
	}
	metaSlots := cfg.MetadataSlots
	if metaSlots < 1 {
		metaSlots = 1
	}
	f := &FS{
		cfg:  cfg,
		data: sim.NewResource(e, slots),
		meta: sim.NewResource(e, metaSlots),
		rng:  rng,
	}
	f.metaDurFn = f.metaDur
	f.transferFn = f.transferTime
	f.recWriteFn = f.recordWrite
	f.recReadFn = f.recordRead
	f.recMetaOpFn = f.recordMetaOp
	return f
}

// Name returns the configured name.
func (f *FS) Name() string { return f.cfg.Name }

// Config returns the configuration.
func (f *FS) Config() Config { return f.cfg }

// Stats returns a snapshot of accumulated counters.
func (f *FS) Stats() Stats { return f.stats }

// QueueLen reports transfers waiting for a data service slot — a direct
// measure of filesystem contention.
func (f *FS) QueueLen() int { return f.data.QueueLen() }

// transferTime returns the service time for moving size bytes on one
// stream, with ±5% jitter.
func (f *FS) transferTime(size int64) time.Duration {
	secs := float64(size) / f.cfg.StreamBW
	d := sim.Dur(secs)
	if size < f.cfg.SmallFileThreshold {
		d += f.cfg.SmallFilePenalty
	}
	return f.rng.Jitter(d, 0.05)
}

// metaDur draws one metadata service time.
func (f *FS) metaDur() time.Duration { return f.rng.Jitter(f.cfg.MetadataCost, 0.1) }

func (f *FS) recordWrite(size int64) { f.stats.BytesWritten += size; f.stats.Writes++ }
func (f *FS) recordRead(size int64)  { f.stats.BytesRead += size; f.stats.Reads++ }
func (f *FS) recordMetaOp()          { f.stats.MetaOps++ }

// Read performs a size-byte read, blocking p for queueing + service time.
func (f *FS) Read(p *sim.Proc, size int64) {
	f.data.Acquire(p, 1)
	p.Sleep(f.transferTime(size))
	f.data.Release(1)
	f.recordRead(size)
}

// Write performs a size-byte write.
func (f *FS) Write(p *sim.Proc, size int64) {
	f.data.Acquire(p, 1)
	p.Sleep(f.transferTime(size))
	f.data.Release(1)
	f.recordWrite(size)
}

// MetaOp performs one metadata operation (create/stat/unlink), queueing on
// the metadata service.
func (f *FS) MetaOp(p *sim.Proc) {
	f.meta.Acquire(p, 1)
	p.Sleep(f.metaDur())
	f.meta.Release(1)
	f.recordMetaOp()
}

// CreateAndWrite models writing a new file: one metadata op plus the data
// transfer. This is the per-task stdout-file pattern whose cost on Lustre
// motivates the paper's NVMe staging best practice.
func (f *FS) CreateAndWrite(p *sim.Proc, size int64) {
	f.MetaOp(p)
	f.Write(p, size)
}

// ReadFile models opening and reading an existing file.
func (f *FS) ReadFile(p *sim.Proc, size int64) {
	f.MetaOp(p)
	f.Read(p, size)
}

// --- Flow counterparts ----------------------------------------------------
//
// These append the same operations to a lightweight flow program
// (sim.Flow) instead of blocking a process. Service-time draws happen
// when the step executes — after the resource grant, exactly where the
// process versions draw — so a model switched from the Proc methods to
// the Flow methods produces bit-identical seeded results.

// FlowRead appends a size-byte read to fl.
func (f *FS) FlowRead(fl *sim.Flow, size int64) {
	fl.Acquire(f.data, 1)
	fl.SleepSized(f.transferFn, size)
	fl.Release(f.data, 1)
	fl.DoSized(f.recReadFn, size)
}

// FlowWrite appends a size-byte write to fl.
func (f *FS) FlowWrite(fl *sim.Flow, size int64) {
	fl.Acquire(f.data, 1)
	fl.SleepSized(f.transferFn, size)
	fl.Release(f.data, 1)
	fl.DoSized(f.recWriteFn, size)
}

// FlowMetaOp appends one metadata operation to fl.
func (f *FS) FlowMetaOp(fl *sim.Flow) {
	fl.Acquire(f.meta, 1)
	fl.SleepFn(f.metaDurFn)
	fl.Release(f.meta, 1)
	fl.Do(f.recMetaOpFn)
}

// FlowCreateAndWrite appends a file creation (metadata op + data
// transfer) to fl — the flow form of CreateAndWrite, for per-task output
// files in full-scale experiment loops.
func (f *FS) FlowCreateAndWrite(fl *sim.Flow, size int64) {
	f.FlowMetaOp(fl)
	f.FlowWrite(fl, size)
}

// FlowReadFile appends opening and reading an existing file to fl.
func (f *FS) FlowReadFile(fl *sim.Flow, size int64) {
	f.FlowMetaOp(fl)
	f.FlowRead(fl, size)
}

// Unlink removes a file (metadata only).
func (f *FS) Unlink(p *sim.Proc) { f.MetaOp(p) }

// Copy moves size bytes from src to dst: the stream is throttled by the
// slower side, holding a slot on each for the full transfer (a synchronous
// copy, rsync without delta). Slots are acquired in a global order (by
// filesystem name) so concurrent copies in opposite directions cannot
// deadlock.
func Copy(p *sim.Proc, src, dst *FS, size int64) {
	first, second := src, dst
	if second.cfg.Name < first.cfg.Name {
		first, second = second, first
	}
	first.data.Acquire(p, 1)
	if second != first {
		second.data.Acquire(p, 1)
	}
	t := src.transferTime(size)
	if dt := dst.transferTime(size); dt > t {
		t = dt
	}
	p.Sleep(t)
	if second != first {
		second.data.Release(1)
	}
	first.data.Release(1)
	src.stats.BytesRead += size
	src.stats.Reads++
	dst.stats.BytesWritten += size
	dst.stats.Writes++
}

// --- Profiles -------------------------------------------------------------

// LustreProfile approximates a leadership-class shared parallel filesystem
// (OLCF Orion-like), scaled so a few-thousand-node simulation exhibits the
// paper's contention behaviors without requiring absolute fidelity.
func LustreProfile() Config {
	return Config{
		Name:        "lustre",
		AggregateBW: 5e12, // 5 TB/s aggregate
		StreamBW:    2e9,  // 2 GB/s per stream
		// The metadata service is the scarce resource for small-file
		// storms: ~20k creates/s system-wide (64 x 1/3ms).
		MetadataSlots:      64,
		MetadataCost:       3 * time.Millisecond,
		SmallFileThreshold: 1 << 20, // files < 1 MiB pay the penalty
		SmallFilePenalty:   4 * time.Millisecond,
	}
}

// NVMeProfile approximates a node-local NVMe drive ("burst buffer").
func NVMeProfile(node int) Config {
	return Config{
		Name:               fmt.Sprintf("nvme-%d", node),
		AggregateBW:        5e9, // 5 GB/s
		StreamBW:           1e9, // 1 GB/s per stream
		MetadataSlots:      64,
		MetadataCost:       30 * time.Microsecond,
		SmallFileThreshold: 0, // local writes: no small-file penalty
	}
}

// GPFSProfile approximates the source filesystem of the paper's petabyte
// migration (§IV-E).
func GPFSProfile() Config {
	return Config{
		Name:               "gpfs",
		AggregateBW:        2.4e12,
		StreamBW:           1.5e9,
		MetadataSlots:      192,
		MetadataCost:       3 * time.Millisecond,
		SmallFileThreshold: 1 << 20,
		SmallFilePenalty:   5 * time.Millisecond,
	}
}
