// Package core implements the paper's primary contribution re-created as a
// library: a GNU-Parallel-class parallel process launcher with job slots,
// replacement-string command templates, greedy low-overhead dispatch,
// grouped output, keep-order mode, retries, timeouts, halt policies, job
// logs, and resume.
//
// The engine executes real work through a Runner: ExecRunner forks
// processes (optionally via the shell), FuncRunner calls in-process Go
// payloads. The simulated cluster substrate (internal/cluster) reuses this
// package's policy types (Spec, HaltPolicy, joblog format) while supplying
// virtual-time execution.
package core

import (
	"time"
)

// Job is one unit of work: a rendered command plus its provenance.
type Job struct {
	// Seq is the 1-based input sequence number ({#}).
	Seq int
	// Slot is the 1-based execution slot ({%}), assigned at dispatch.
	Slot int
	// Args are the positional input arguments the job was built from.
	Args []string
	// Command is the rendered command line (empty for pure-Func runs).
	Command string
	// Env holds extra KEY=VALUE pairs for this job (e.g. GPU visibility).
	Env []string
	// Stdin is fed to the job's standard input (pipe mode: the job's
	// input block instead of command-line arguments).
	Stdin []byte
}

// Result records the outcome of one job.
type Result struct {
	Job Job
	// ExitCode is the process exit status; -1 when the job did not run
	// to completion (spawn error, timeout kill).
	ExitCode int
	// Err is non-nil if the job failed for reasons beyond exit code
	// (spawn failure, timeout, context cancellation).
	Err error
	// Stdout and Stderr are the captured, grouped output.
	Stdout, Stderr []byte
	// StdinSent is the number of stdin bytes actually delivered to the
	// process (the joblog Send column). It can be less than
	// len(Job.Stdin) when the process exits without draining its input.
	// Zero for runners that do not count (FuncRunner, pre-span dist
	// workers); the joblog falls back to len(Job.Stdin) there.
	StdinSent int
	// Start and End are wall-clock bounds of the last attempt.
	Start, End time.Time
	// Attempts is the number of times the job ran (>1 after retries).
	Attempts int
	// TimedOut reports the job was killed by the per-job timeout.
	TimedOut bool
	// DryRun reports the job was rendered but not executed.
	DryRun bool
	// DispatchDelay is the time between the slot becoming available for
	// this job and the attempt actually starting — the per-task
	// orchestration overhead this paper is about.
	DispatchDelay time.Duration
	// WorkerDispatch is the worker-side receive-to-start overhead for
	// jobs executed remotely (a sub-segment of DispatchDelay); zero for
	// local runs and workers that predate the span protocol field.
	WorkerDispatch time.Duration
	// Host identifies where the job ran for distributed runners
	// (":" = local, matching GNU Parallel's joblog convention).
	Host string
}

// OK reports whether the job completed successfully.
func (r Result) OK() bool { return r.Err == nil && r.ExitCode == 0 && !r.TimedOut }

// Duration returns the runtime of the last attempt.
func (r Result) Duration() time.Duration {
	if r.End.Before(r.Start) {
		return 0
	}
	return r.End.Sub(r.Start)
}

// Stats summarizes an engine run.
type Stats struct {
	// Total is the number of jobs consumed from the input source
	// (including skipped/resumed ones).
	Total int
	// Succeeded, Failed, Skipped partition Total. Skipped counts jobs
	// bypassed by resume or by a soon-halt.
	Succeeded, Failed, Skipped int
	// Retries is the number of extra attempts beyond first tries.
	Retries int
	// Makespan is lastEnd - firstStart over executed jobs.
	Makespan time.Duration
	// Wall is the full Run call duration, including input reading.
	Wall time.Duration
	// AvgDispatchDelay is the mean per-job dispatch overhead.
	AvgDispatchDelay time.Duration
	// LaunchRate is jobs started per second of wall time.
	LaunchRate float64
	// InputErr records an input-source failure that truncated the run.
	InputErr error
}

// Done returns Succeeded + Failed (jobs that actually ran).
func (s Stats) Done() int { return s.Succeeded + s.Failed }
