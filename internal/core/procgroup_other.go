//go:build !unix

package core

import (
	"os"
	"os/exec"
	"time"
)

// setProcGroup is a no-op on platforms without process groups.
func setProcGroup(cmd *exec.Cmd) {}

// terminateGroup kills the direct child; grandchild cleanup is
// unavailable without process groups.
func terminateGroup(cmd *exec.Cmd, grace time.Duration) error {
	p := cmd.Process
	if p == nil {
		return os.ErrProcessDone
	}
	return p.Kill()
}

func killGroup(cmd *exec.Cmd) {}
