package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/args"
	"repro/internal/wal"
)

// walSpec builds a FuncRunner spec wired to a fresh WAL in dir.
func walSpec(t *testing.T, dir string, jobs int) *Spec {
	t.Helper()
	s := mustSpec(t, "", jobs)
	l, _, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	s.WAL = l
	return s
}

// countingRunner records how many times each input value executed.
type countingRunner struct {
	mu   sync.Mutex
	runs map[string]int
	fail map[string]bool
}

func (c *countingRunner) Run(ctx context.Context, job *Job) Result {
	c.mu.Lock()
	if c.runs == nil {
		c.runs = map[string]int{}
	}
	v := job.Args[0]
	c.runs[v]++
	failed := c.fail[v]
	c.mu.Unlock()
	res := Result{Job: *job}
	if failed {
		res.ExitCode = 7
	}
	return res
}

// TestEngineWALExactlyOnceResume drives the full loop: run 1 logs
// intents and completions (two jobs fail), run 2 resumes from the
// replayed WAL and must re-run exactly the failures, exactly once.
func TestEngineWALExactlyOnceResume(t *testing.T) {
	dir := t.TempDir()
	input := make([]string, 40)
	for i := range input {
		input[i] = fmt.Sprint("item-", i+1)
	}

	r1 := &countingRunner{fail: map[string]bool{"item-7": true, "item-31": true}}
	s1 := walSpec(t, dir, 4)
	stats, _, err := newTestEngine(t, s1, r1).Run(context.Background(), args.Literal(input...))
	if err != nil || stats.Succeeded != 38 || stats.Failed != 2 {
		t.Fatalf("run1 stats=%+v err=%v", stats, err)
	}
	if err := s1.WAL.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := wal.Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.CompletedOK()) != 38 || len(st.InFlight) != 0 {
		t.Fatalf("replay: %d ok, %d in flight", len(st.CompletedOK()), len(st.InFlight))
	}

	r2 := &countingRunner{}
	s2 := walSpec(t, dir, 4)
	s2.ResumeFrom = st.CompletedOK()
	s2.WALDigests = st.Digests
	stats2, _, err := newTestEngine(t, s2, r2).Run(context.Background(), args.Literal(input...))
	if err != nil || stats2.Succeeded != 2 || stats2.Skipped != 38 {
		t.Fatalf("run2 stats=%+v err=%v", stats2, err)
	}
	for v, n := range r2.runs {
		if n != 1 || (v != "item-7" && v != "item-31") {
			t.Fatalf("run2 executed %q %d times (runs=%v)", v, n, r2.runs)
		}
	}

	// The union of both runs covers every seq exactly once per success.
	if err := s2.WAL.Close(); err != nil {
		t.Fatal(err)
	}
	final, err := wal.Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(final.CompletedOK()) != 40 {
		t.Fatalf("final coverage %d/40", len(final.CompletedOK()))
	}
}

// TestEngineWALInFlightRerun models the crash window: an intent without
// a completion must be re-run on resume, even though a joblog would
// know nothing about the job.
func TestEngineWALInFlightRerun(t *testing.T) {
	dir := t.TempDir()
	l, _, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a crashed run by hand: 1 and 3 completed, 2 died mid-run.
	for seq := 1; seq <= 3; seq++ {
		if err := l.AppendIntent(seq, wal.ArgsDigest([]string{fmt.Sprint("v", seq)})); err != nil {
			t.Fatal(err)
		}
	}
	l.AppendCompletion(1, 0, 0, "")
	l.AppendCompletion(3, 0, 0, "")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := wal.Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !st.InFlight[2] {
		t.Fatalf("seq 2 not in flight: %+v", st)
	}

	r := &countingRunner{}
	s := walSpec(t, dir, 2)
	s.ResumeFrom = st.CompletedOK()
	s.WALDigests = st.Digests
	stats, _, err := newTestEngine(t, s, r).Run(context.Background(), args.Literal("v1", "v2", "v3"))
	if err != nil || stats.Succeeded != 1 || stats.Skipped != 2 {
		t.Fatalf("stats=%+v err=%v", stats, err)
	}
	if len(r.runs) != 1 || r.runs["v2"] != 1 {
		t.Fatalf("runs=%v", r.runs)
	}
}

// TestEngineWALDigestMismatch: resuming against changed input must fail
// the run, not silently execute the wrong work.
func TestEngineWALDigestMismatch(t *testing.T) {
	dir := t.TempDir()
	r1 := &countingRunner{fail: map[string]bool{"b": true}}
	s1 := walSpec(t, dir, 2)
	if _, _, err := newTestEngine(t, s1, r1).Run(context.Background(), args.Literal("a", "b", "c")); err != nil {
		t.Fatal(err)
	}
	if err := s1.WAL.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := wal.Replay(dir)
	if err != nil {
		t.Fatal(err)
	}

	r2 := &countingRunner{}
	s2 := walSpec(t, dir, 2)
	s2.ResumeFrom = st.CompletedOK()
	s2.WALDigests = st.Digests
	// Same length, different content at seq 2: the digest check must
	// trip before the job runs.
	_, _, err = newTestEngine(t, s2, r2).Run(context.Background(), args.Literal("a", "CHANGED", "c"))
	if err == nil || !strings.Contains(err.Error(), "input changed under resume") {
		t.Fatalf("err = %v", err)
	}
	if r2.runs["CHANGED"] != 0 {
		t.Fatalf("changed input executed anyway: %v", r2.runs)
	}
}

// TestEngineWALAppendFailureAborts: a dead log is a broken durability
// promise — the engine must surface it, not keep running unlogged.
func TestEngineWALAppendFailureAborts(t *testing.T) {
	dir := t.TempDir()
	crash := func(point string) bool { return point == wal.PointAppendIntent }
	l, _, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever, CrashHook: crash})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	s := mustSpec(t, "", 2)
	s.WAL = l
	noop := FuncRunner(func(ctx context.Context, job *Job) ([]byte, error) { return nil, nil })
	_, _, err = newTestEngine(t, s, noop).Run(context.Background(), args.Literal("a", "b", "c"))
	if !errors.Is(err, wal.ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
}

func newTestEngine(t *testing.T, s *Spec, r Runner) *Engine {
	t.Helper()
	e, err := NewEngine(s, r)
	if err != nil {
		t.Fatal(err)
	}
	return e
}
