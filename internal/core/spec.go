package core

import (
	"io"
	"time"

	"repro/internal/tmpl"
)

// HaltWhen selects how aggressively a triggered halt policy stops the run.
type HaltWhen int

const (
	// HaltNever runs every job regardless of failures (default).
	HaltNever HaltWhen = iota
	// HaltSoon stops launching new jobs but lets running jobs finish.
	HaltSoon
	// HaltNow additionally cancels running jobs.
	HaltNow
)

// HaltPolicy mirrors GNU Parallel's --halt: stop the run once Threshold
// jobs have failed (OnSuccess=false) or succeeded (OnSuccess=true).
type HaltPolicy struct {
	When      HaltWhen
	Threshold int  // number of triggering jobs; <=0 means 1
	OnSuccess bool // trigger on successes instead of failures
}

// Triggered reports whether the policy fires given current counts.
func (h HaltPolicy) Triggered(succeeded, failed int) bool {
	if h.When == HaltNever {
		return false
	}
	th := h.Threshold
	if th <= 0 {
		th = 1
	}
	if h.OnSuccess {
		return succeeded >= th
	}
	return failed >= th
}

// Spec configures an engine run. The zero value is not usable: Jobs and
// either Template or a FuncRunner must be set; use NewSpec for defaults.
type Spec struct {
	// Jobs is the number of parallel slots (GNU Parallel -j).
	Jobs int
	// Template is the command template; nil for Func-only workloads
	// whose Runner ignores Job.Command.
	Template *tmpl.Template
	// AppendArgsIfNoPlaceholder mirrors GNU Parallel: when the template
	// has no input placeholder, " {}" is appended. Default true via
	// NewSpec.
	AppendArgsIfNoPlaceholder bool
	// KeepOrder releases output and OnResult callbacks in input order
	// (GNU Parallel -k).
	KeepOrder bool
	// Pipe switches to GNU Parallel's --pipe model: each input record's
	// first column becomes the job's standard input rather than
	// command-line arguments (pair with args.Blocks to split a stream
	// into line-aligned blocks). No " {}" is appended to the template.
	Pipe bool
	// Retries is the maximum total attempts per job (GNU --retries);
	// values < 1 mean 1.
	Retries int
	// Timeout kills a job attempt after this duration; 0 disables.
	Timeout time.Duration
	// Delay inserts a pause between consecutive job starts (GNU
	// --delay), useful for staggering load on shared services.
	Delay time.Duration
	// MaxLoad pauses dispatch while the system 1-minute load average is
	// at or above this value (GNU --load); 0 disables. Ignored on
	// systems without /proc/loadavg.
	MaxLoad float64
	// Halt configures early termination.
	Halt HaltPolicy
	// DryRun renders commands without executing them; each job yields a
	// Result with DryRun=true and the command written to Out.
	DryRun bool
	// Tag prefixes every output line with the job's first argument and
	// a TAB (GNU --tag).
	Tag bool
	// Out and Errout receive grouped job stdout/stderr. Nil discards.
	Out, Errout io.Writer
	// Joblog, when non-nil, receives one GNU-Parallel-format log line
	// per completed job.
	Joblog io.Writer
	// ResumeFrom contains seq numbers to skip (previously completed),
	// typically from ReadJoblog.
	ResumeFrom map[int]bool
	// OnResult, when non-nil, is called for each finished job (ordered
	// if KeepOrder). It runs on the collector goroutine: keep it fast.
	OnResult func(Result)
	// OnProgress, when non-nil, receives a snapshot after every job
	// completion (unordered — progress is about throughput, not output
	// order). It runs on the collector goroutine: keep it fast.
	OnProgress func(Progress)
	// CollectResults retains all results in the slice returned by Run.
	// Off by default: million-task runs should not buffer everything.
	CollectResults bool
	// ResultsDir, when non-empty, saves each job's output under
	// <dir>/<seq>/{stdout,stderr,exitval} (GNU Parallel's --results,
	// simplified layout). Write failures surface through Stats via the
	// collector's error return.
	ResultsDir string
	// Env holds extra KEY=VALUE pairs applied to every job.
	Env []string
	// SlotEnv, when non-nil, is called with each job's slot number and
	// returns additional env entries — the "GPU isolation" hook
	// (HIP_VISIBLE_DEVICES from {%}).
	SlotEnv func(slot int) []string
}

// NewSpec returns a Spec with GNU-Parallel-like defaults: command cmd,
// jobs slots, append-{} behavior on.
func NewSpec(cmd string, jobs int) (*Spec, error) {
	t, err := tmpl.Parse(cmd)
	if err != nil {
		return nil, err
	}
	return &Spec{
		Jobs:                      jobs,
		Template:                  t,
		AppendArgsIfNoPlaceholder: true,
		Retries:                   1,
	}, nil
}

// effectiveTemplate returns the template with " {}" appended when needed.
func (s *Spec) effectiveTemplate() *tmpl.Template {
	t := s.Template
	if t == nil {
		return nil
	}
	if s.AppendArgsIfNoPlaceholder && !s.Pipe && !t.HasInputPlaceholder() && t.Source() != "" {
		return tmpl.MustParse(t.Source() + " {}")
	}
	return t
}
