package core

import (
	"fmt"
	"io"
	"time"

	"repro/internal/tmpl"
	"repro/internal/wal"
)

// HaltWhen selects how aggressively a triggered halt policy stops the run.
type HaltWhen int

const (
	// HaltNever runs every job regardless of failures (default).
	HaltNever HaltWhen = iota
	// HaltSoon stops launching new jobs but lets running jobs finish.
	HaltSoon
	// HaltNow additionally cancels running jobs.
	HaltNow
)

// HaltPolicy mirrors GNU Parallel's --halt: stop the run once Threshold
// jobs (or Percent of all jobs) have failed (OnSuccess=false) or
// succeeded (OnSuccess=true).
type HaltPolicy struct {
	When      HaltWhen
	Threshold int // number of triggering jobs; <=0 means 1
	// Percent, when > 0, triggers once the triggering outcomes reach
	// this percentage of all jobs (GNU --halt now,fail=10%). It takes
	// precedence over Threshold and — like GNU Parallel, which needs
	// the job total — is only evaluated once the input source has been
	// fully read. To learn that total the engine spools the entire
	// input into memory before dispatching (a single flat arena, one
	// string per record field): memory is O(total input size), so
	// percent halts are unsuitable for unbounded/streaming sources —
	// use Threshold there, which dispatches as input arrives.
	Percent   float64
	OnSuccess bool // trigger on successes instead of failures
}

// Triggered reports whether the policy fires given current counts. total
// is the number of jobs read from the input so far; totalFinal reports
// whether the input source is exhausted (total is the true job count).
func (h HaltPolicy) Triggered(succeeded, failed, total int, totalFinal bool) bool {
	if h.When == HaltNever {
		return false
	}
	n := failed
	if h.OnSuccess {
		n = succeeded
	}
	if h.Percent > 0 {
		if !totalFinal || total == 0 {
			return false
		}
		return float64(n)/float64(total)*100 >= h.Percent
	}
	th := h.Threshold
	if th <= 0 {
		th = 1
	}
	return n >= th
}

// Backoff configures exponential backoff between retry attempts of one
// job (GNU Parallel retries immediately; at extreme scale an immediate
// retry against a sick node or service usually fails the same way).
type Backoff struct {
	// Base is the pause before the first retry; 0 disables backoff
	// (retries stay immediate).
	Base time.Duration
	// Cap bounds the grown delay; 0 means uncapped.
	Cap time.Duration
	// Factor multiplies the delay after each failed attempt; values
	// < 1 (including 0) mean the default of 2.
	Factor float64
	// Jitter spreads each delay uniformly over [d*(1-Jitter),
	// d*(1+Jitter)] to avoid retry stampedes. Must be in [0, 1]. The
	// jitter draw is a pure function of (seq, attempt), so a run's
	// retry timing is reproducible.
	Jitter float64
}

// Delay returns the pause before the retry that follows failed attempt
// number `attempt` (1-based) of job seq.
func (b Backoff) Delay(seq, attempt int) time.Duration {
	if b.Base <= 0 {
		return 0
	}
	factor := b.Factor
	if factor < 1 {
		factor = 2
	}
	d := float64(b.Base)
	for i := 1; i < attempt; i++ {
		d *= factor
		if b.Cap > 0 && d >= float64(b.Cap) {
			break
		}
	}
	if b.Cap > 0 && d > float64(b.Cap) {
		d = float64(b.Cap)
	}
	if b.Jitter > 0 {
		u := unitFloat(uint64(seq)<<20 ^ uint64(attempt))
		d *= 1 - b.Jitter + 2*b.Jitter*u
	}
	return time.Duration(d)
}

// unitFloat maps x to [0, 1) via the splitmix64 finalizer, giving a
// deterministic per-key uniform draw with no shared RNG state.
func unitFloat(x uint64) float64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// Spec configures an engine run. The zero value is not usable: Jobs and
// either Template or a FuncRunner must be set; use NewSpec for defaults.
type Spec struct {
	// Jobs is the number of parallel slots (GNU Parallel -j).
	Jobs int
	// Template is the command template; nil for Func-only workloads
	// whose Runner ignores Job.Command.
	Template *tmpl.Template
	// AppendArgsIfNoPlaceholder mirrors GNU Parallel: when the template
	// has no input placeholder, " {}" is appended. Default true via
	// NewSpec.
	AppendArgsIfNoPlaceholder bool
	// KeepOrder releases output and OnResult callbacks in input order
	// (GNU Parallel -k).
	KeepOrder bool
	// Pipe switches to GNU Parallel's --pipe model: each input record's
	// first column becomes the job's standard input rather than
	// command-line arguments (pair with args.Blocks to split a stream
	// into line-aligned blocks). No " {}" is appended to the template.
	Pipe bool
	// Retries is the maximum total attempts per job (GNU --retries);
	// values < 1 mean 1.
	Retries int
	// RetryBackoff paces retry attempts (zero value = immediate retry,
	// GNU Parallel's behavior). The backoff sleep holds the job's slot,
	// like a still-running job would.
	RetryBackoff Backoff
	// RetryOn, when non-nil, decides whether a failed attempt is
	// retried: return false to fail the job immediately (e.g. retry
	// transport errors but not nonzero exits). Nil retries every
	// failure, up to Retries attempts.
	RetryOn func(Result) bool
	// Timeout kills a job attempt after this duration; 0 disables.
	Timeout time.Duration
	// Delay inserts a pause between consecutive job starts (GNU
	// --delay), useful for staggering load on shared services.
	Delay time.Duration
	// MaxLoad pauses dispatch while the system 1-minute load average is
	// at or above this value (GNU --load); 0 disables. Ignored on
	// systems without /proc/loadavg.
	MaxLoad float64
	// Halt configures early termination.
	Halt HaltPolicy
	// DryRun renders commands without executing them; each job yields a
	// Result with DryRun=true and the command written to Out.
	DryRun bool
	// Tag prefixes every output line with the job's first argument and
	// a TAB (GNU --tag).
	Tag bool
	// Out and Errout receive grouped job stdout/stderr. Nil discards.
	Out, Errout io.Writer
	// Joblog, when non-nil, receives one GNU-Parallel-format log line
	// per completed job.
	Joblog io.Writer
	// ResumeFrom contains seq numbers to skip (previously completed),
	// typically from ReadJoblog.
	ResumeFrom map[int]bool
	// WAL, when non-nil, makes the run crash-safe: an intent record is
	// appended (durably, per the log's sync policy) before each job is
	// handed to the dispatch pipeline, and a completion record as each
	// result is collected. A later run resumes exactly-once from the
	// replayed log (wal.State.CompletedOK → ResumeFrom). The engine
	// appends one intent per seq regardless of retries or dist-layer
	// re-dispatch, and the log itself deduplicates replayed intents, so
	// session retirement on a remote worker cannot double-count a job.
	// An append failure aborts the run: a log that can no longer record
	// is a broken durability promise, not a warning.
	WAL *wal.Log
	// WALDigests maps seq → the args digest recorded at intent time in
	// a previous run's log (wal.State.Digests). When non-nil, the input
	// goroutine verifies each record it reads against the recorded
	// digest and fails the run on mismatch: resuming against an input
	// file that changed out from under the log silently runs the wrong
	// work, which at scale is worse than stopping.
	WALDigests map[int]uint64
	// OnResult, when non-nil, is called for each finished job (ordered
	// if KeepOrder). It runs on the collector goroutine: keep it fast.
	OnResult func(Result)
	// OnProgress, when non-nil, receives a snapshot after every job
	// completion (unordered — progress is about throughput, not output
	// order). It runs on the collector goroutine: keep it fast.
	OnProgress func(Progress)
	// OnEvent, when non-nil, receives job-lifecycle events
	// (queued/started/retried/finished/killed) as the run progresses —
	// the hook internal/telemetry's Bus plugs into. It is called from
	// multiple engine goroutines concurrently and sits on the dispatch
	// hot path: it must be concurrency-safe and must never block
	// (publish to a bounded buffer and drop, don't wait).
	OnEvent func(Event)
	// CollectResults retains all results in the slice returned by Run.
	// Off by default: million-task runs should not buffer everything.
	CollectResults bool
	// ResultsDir, when non-empty, saves each job's output under
	// <dir>/<seq>/{stdout,stderr,exitval} (GNU Parallel's --results,
	// simplified layout). Write failures surface through Stats via the
	// collector's error return.
	ResultsDir string
	// Env holds extra KEY=VALUE pairs applied to every job.
	Env []string
	// SlotEnv, when non-nil, is called with each job's slot number and
	// returns additional env entries — the "GPU isolation" hook
	// (HIP_VISIBLE_DEVICES from {%}).
	SlotEnv func(slot int) []string
}

// NewSpec returns a Spec with GNU-Parallel-like defaults: command cmd,
// jobs slots, append-{} behavior on.
func NewSpec(cmd string, jobs int) (*Spec, error) {
	t, err := tmpl.Parse(cmd)
	if err != nil {
		return nil, err
	}
	return &Spec{
		Jobs:                      jobs,
		Template:                  t,
		AppendArgsIfNoPlaceholder: true,
		Retries:                   1,
	}, nil
}

// validate rejects malformed knob combinations up front, so a bad Spec
// fails NewEngine with a descriptive error instead of being silently
// clamped (or worse, misbehaving 9,000 nodes into a run).
func (s *Spec) validate() error {
	if s.Jobs < 1 {
		return fmt.Errorf("core: Jobs must be >= 1, got %d", s.Jobs)
	}
	if s.Retries < 0 {
		return fmt.Errorf("core: Retries must be >= 0, got %d", s.Retries)
	}
	if s.Timeout < 0 {
		return fmt.Errorf("core: Timeout must be >= 0, got %v", s.Timeout)
	}
	if s.Delay < 0 {
		return fmt.Errorf("core: Delay must be >= 0, got %v", s.Delay)
	}
	if s.MaxLoad < 0 {
		return fmt.Errorf("core: MaxLoad must be >= 0, got %v", s.MaxLoad)
	}
	b := s.RetryBackoff
	if b.Base < 0 {
		return fmt.Errorf("core: RetryBackoff.Base must be >= 0, got %v", b.Base)
	}
	if b.Cap < 0 {
		return fmt.Errorf("core: RetryBackoff.Cap must be >= 0, got %v", b.Cap)
	}
	if b.Cap > 0 && b.Cap < b.Base {
		return fmt.Errorf("core: RetryBackoff.Cap %v is below Base %v", b.Cap, b.Base)
	}
	if b.Factor != 0 && b.Factor < 1 {
		return fmt.Errorf("core: RetryBackoff.Factor must be >= 1 (or 0 for the default), got %v", b.Factor)
	}
	if b.Jitter < 0 || b.Jitter > 1 {
		return fmt.Errorf("core: RetryBackoff.Jitter must be in [0, 1], got %v", b.Jitter)
	}
	if s.Halt.Percent < 0 || s.Halt.Percent > 100 {
		return fmt.Errorf("core: Halt.Percent must be in [0, 100], got %v", s.Halt.Percent)
	}
	if s.Halt.Threshold < 0 {
		return fmt.Errorf("core: Halt.Threshold must be >= 0, got %d", s.Halt.Threshold)
	}
	return nil
}

// effectiveTemplate returns the template with " {}" appended when needed.
func (s *Spec) effectiveTemplate() *tmpl.Template {
	t := s.Template
	if t == nil {
		return nil
	}
	if s.AppendArgsIfNoPlaceholder && !s.Pipe && !t.HasInputPlaceholder() && t.Source() != "" {
		return tmpl.MustParse(t.Source() + " {}")
	}
	return t
}
