package core

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// FuzzParseJoblog ensures the joblog parser never panics on corrupt
// logs — truncated lines, partial writes, non-numeric fields — and that
// resume (CompletedSeqs) only ever trusts fully parsed completions:
// every seq it returns must come from an intact line with exitval 0 and
// signal 0.
func FuzzParseJoblog(f *testing.F) {
	f.Add(JoblogHeader + "\n1\t:\t100.5\t2.0\t0\t5\t0\t0\techo a\n")
	f.Add("garbage\twith\ttabs\n")
	f.Add("")
	f.Add("1\t:\tnot\ta\tnumber\tat\tall\there\tcmd\n")
	f.Add(strings.Repeat("9\t", 20))
	// Crash shapes: a valid line followed by a torn partial write.
	f.Add("1\t:\t0.0\t0.1\t0\t0\t0\t0\tok\n2\t:\t0.0\t0.")
	f.Add("1\t:\t0.0\t0.1\t0\t0\t0")                  // torn before exitval
	f.Add("1\t:\t0.0\t0.1\t0\t0\t0\t0\tcmd\x00junk") // NUL-spliced tail
	f.Add("-5\t:\t0.0\t0.1\t0\t0\t0\t0\tnegative seq\n")
	f.Add("1\t:\t0.0\t0.1\t0\t0\t00\t0x0\thex signal\n")
	f.Fuzz(func(t *testing.T, data string) {
		entries, err := ParseJoblog(strings.NewReader(data))
		if err != nil {
			return // only reader/scanner errors remain fatal
		}
		for _, e := range entries {
			if e.Seq < 1 {
				t.Fatalf("parsed entry with bad seq: %+v", e)
			}
		}
		done := CompletedSeqs(entries)
		for seq := range done {
			found := false
			for _, e := range entries {
				if e.Seq == seq && e.Exitval == 0 && e.Signal == 0 {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("CompletedSeqs invented seq %d", seq)
			}
		}
	})
}

// FuzzJoblogRoundTrip writes a result and re-parses it: whatever the
// command or output contents (minus interior newlines, which the
// line-oriented format cannot carry), the entry must survive intact.
func FuzzJoblogRoundTrip(f *testing.F) {
	f.Add(1, "echo hi", 0, 12, 34)
	f.Add(7, "tab\tin\tcmd", 3, 0, 0)
	f.Fuzz(func(t *testing.T, seq int, cmd string, exit, sent, recv int) {
		if seq < 1 || strings.ContainsAny(cmd, "\n\r\x00") {
			return
		}
		if exit < 0 || sent < 0 || recv < 0 {
			return
		}
		var b strings.Builder
		now := time.Unix(1700000000, 0)
		WriteJoblogLine(&b, Result{
			Job:       Job{Seq: seq, Command: cmd},
			ExitCode:  exit,
			StdinSent: sent,
			Stdout:    make([]byte, recv),
			Start:     now, End: now.Add(time.Second),
		})
		entries, err := ParseJoblog(strings.NewReader(b.String()))
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 1 {
			t.Fatalf("round trip lost the line: %q", b.String())
		}
		e := entries[0]
		if e.Seq != seq || e.Exitval != exit || e.Command != cmd {
			t.Fatalf("round trip mangled %+v into %+v", fmt.Sprint(seq, cmd, exit), e)
		}
	})
}
