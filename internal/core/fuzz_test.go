package core

import (
	"strings"
	"testing"
)

// FuzzParseJoblog ensures the joblog parser never panics on corrupt logs
// and that well-formed lines survive a write/parse round trip.
func FuzzParseJoblog(f *testing.F) {
	f.Add(JoblogHeader + "\n1\t:\t100.5\t2.0\t0\t5\t0\t0\techo a\n")
	f.Add("garbage\twith\ttabs\n")
	f.Add("")
	f.Add("1\t:\tnot\ta\tnumber\tat\tall\there\tcmd\n")
	f.Add(strings.Repeat("9\t", 20))
	f.Fuzz(func(t *testing.T, data string) {
		entries, err := ParseJoblog(strings.NewReader(data))
		if err != nil {
			return
		}
		// Parsed entries must have usable seq numbers.
		for _, e := range entries {
			_ = e.Seq
		}
		CompletedSeqs(entries)
	})
}
