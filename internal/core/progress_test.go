package core

import (
	"strings"
	"testing"
	"time"
)

// TestProgressPrinterNonTTYRateLimit drives the non-TTY path with a fake
// clock: updates inside MinInterval are dropped, those at or past it are
// emitted as plain newline-terminated lines with no control characters.
func TestProgressPrinterNonTTYRateLimit(t *testing.T) {
	var buf strings.Builder
	now := time.Date(2024, 5, 1, 0, 0, 0, 0, time.UTC)
	pp := &ProgressPrinter{W: &buf, TTY: false, MinInterval: time.Second,
		now: func() time.Time { return now }}

	snap := func(done int) Progress {
		return Progress{Done: done, Total: 10, Final: true, Running: 1,
			Elapsed: time.Duration(done) * time.Second}
	}
	pp.Update(snap(1)) // first update always prints
	pp.Update(snap(2)) // same instant: dropped
	now = now.Add(999 * time.Millisecond)
	pp.Update(snap(3)) // inside the interval: dropped
	now = now.Add(1 * time.Millisecond)
	pp.Update(snap(4)) // exactly MinInterval since last print: emitted
	now = now.Add(5 * time.Second)
	pp.Update(snap(9)) // well past: emitted
	pp.Finish()        // non-TTY: must not add a trailing line

	got := buf.String()
	want := "1/10 done, 1 running, 0 failed, 1s elapsed\n" +
		"4/10 done, 1 running, 0 failed, 4s elapsed\n" +
		"9/10 done, 1 running, 0 failed, 9s elapsed\n"
	if got != want {
		t.Fatalf("non-TTY progress output:\n got %q\nwant %q", got, want)
	}
	if strings.Contains(got, "\r") || strings.Contains(got, "\033") {
		t.Fatalf("non-TTY output contains control characters: %q", got)
	}
}

func TestProgressPrinterTTYRedraw(t *testing.T) {
	var buf strings.Builder
	pp := &ProgressPrinter{W: &buf, TTY: true}
	pp.Update(Progress{Done: 1, Total: 2, Final: true})
	pp.Update(Progress{Done: 2, Total: 2, Final: true})
	pp.Finish()
	got := buf.String()
	if strings.Count(got, "\r") != 2 || !strings.HasSuffix(got, "\n") {
		t.Fatalf("TTY redraw output = %q", got)
	}
	// Finish is idempotent once the line is terminated.
	pp.Finish()
	if buf.String() != got {
		t.Fatal("second Finish added output")
	}
}
