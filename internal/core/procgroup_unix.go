//go:build unix

package core

import (
	"errors"
	"os"
	"os/exec"
	"syscall"
	"time"
)

// setProcGroup places the child in its own process group so that
// cancellation signals reach grandchildren too (`sh -c 'work & wait'`).
// The child becomes the group leader, so -pid addresses the whole group.
func setProcGroup(cmd *exec.Cmd) {
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
}

// terminateGroup implements exec.Cmd.Cancel: with a grace window the
// group gets SIGTERM first (SIGKILL follows from killGroup once Wait
// returns, or Go's WaitDelay kill for a stuck direct child); without one
// the group is SIGKILLed immediately.
func terminateGroup(cmd *exec.Cmd, grace time.Duration) error {
	p := cmd.Process
	if p == nil || p.Pid <= 0 {
		return os.ErrProcessDone
	}
	sig := syscall.SIGKILL
	if grace > 0 {
		sig = syscall.SIGTERM
	}
	if err := syscall.Kill(-p.Pid, sig); err != nil {
		if errors.Is(err, syscall.ESRCH) {
			return os.ErrProcessDone
		}
		// Group kill unavailable (e.g. the child died before Setpgid
		// took effect is not possible, but EPERM is): fall back to the
		// direct child.
		return p.Signal(sig)
	}
	return nil
}

// killGroup SIGKILLs the job's process group, ignoring errors. Called
// after a cancelled Wait returns, while the reaped leader's pgid is
// still held by any surviving members.
func killGroup(cmd *exec.Cmd) {
	if p := cmd.Process; p != nil && p.Pid > 0 {
		syscall.Kill(-p.Pid, syscall.SIGKILL)
	}
}
