package core

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/args"
)

func TestExecRunnerDirect(t *testing.T) {
	r := &ExecRunner{}
	res := r.Run(context.Background(), &Job{Seq: 1, Command: "echo hello world"})
	if !res.OK() {
		t.Fatalf("res = %+v", res)
	}
	if got := strings.TrimSpace(string(res.Stdout)); got != "hello world" {
		t.Fatalf("stdout = %q", got)
	}
}

func TestExecRunnerShellPipeline(t *testing.T) {
	r := &ExecRunner{}
	res := r.Run(context.Background(), &Job{Seq: 1, Command: "printf 'a\\nb\\nc\\n' | wc -l"})
	if !res.OK() {
		t.Fatalf("res err=%v exit=%d stderr=%s", res.Err, res.ExitCode, res.Stderr)
	}
	if got := strings.TrimSpace(string(res.Stdout)); got != "3" {
		t.Fatalf("stdout = %q", got)
	}
}

func TestExecRunnerExitCode(t *testing.T) {
	r := &ExecRunner{}
	res := r.Run(context.Background(), &Job{Command: "sh -c 'exit 7'"})
	if res.ExitCode != 7 {
		t.Fatalf("exit = %d, want 7", res.ExitCode)
	}
	if res.OK() {
		t.Fatal("OK() true for nonzero exit")
	}
}

func TestExecRunnerSpawnError(t *testing.T) {
	r := &ExecRunner{}
	res := r.Run(context.Background(), &Job{Command: "/nonexistent/binary arg"})
	if res.OK() {
		t.Fatal("nonexistent binary reported OK")
	}
}

func TestExecRunnerEmptyCommand(t *testing.T) {
	r := &ExecRunner{}
	res := r.Run(context.Background(), &Job{Command: ""})
	if res.Err == nil {
		t.Fatal("empty command should error")
	}
}

func TestExecRunnerEnv(t *testing.T) {
	r := &ExecRunner{}
	res := r.Run(context.Background(), &Job{
		Command: "sh -c 'echo $MY_TEST_VAR'",
		Env:     []string{"MY_TEST_VAR=from-gopar"},
	})
	if got := strings.TrimSpace(string(res.Stdout)); got != "from-gopar" {
		t.Fatalf("env not passed: %q", got)
	}
}

func TestExecRunnerDir(t *testing.T) {
	dir := t.TempDir()
	r := &ExecRunner{Dir: dir}
	res := r.Run(context.Background(), &Job{Command: "pwd"})
	got := strings.TrimSpace(string(res.Stdout))
	// Resolve symlinks (macOS /tmp, etc.).
	want, _ := filepath.EvalSymlinks(dir)
	gotR, _ := filepath.EvalSymlinks(got)
	if gotR != want {
		t.Fatalf("pwd = %q, want %q", got, want)
	}
}

func TestExecRunnerStderrCaptured(t *testing.T) {
	r := &ExecRunner{}
	res := r.Run(context.Background(), &Job{Command: "sh -c 'echo oops >&2'"})
	if got := strings.TrimSpace(string(res.Stderr)); got != "oops" {
		t.Fatalf("stderr = %q", got)
	}
}

func TestExecRunnerContextKill(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	r := &ExecRunner{}
	start := time.Now()
	res := r.Run(ctx, &Job{Command: "sleep 10"})
	if time.Since(start) > 5*time.Second {
		t.Fatal("context kill did not take effect")
	}
	if res.OK() {
		t.Fatal("killed job reported OK")
	}
}

func TestEngineEndToEndRealProcesses(t *testing.T) {
	// The paper's Fig 1 payload shape: record an identifier per task via
	// a real shell one-liner, then validate all outputs arrived.
	var buf bytes.Buffer
	s := mustSpec(t, "echo task-{#} input-{}", 4)
	s.Out = &buf
	s.KeepOrder = true
	stats, _ := run(t, s, &ExecRunner{}, args.Literal("a", "b", "c", "d", "e", "f", "g", "h"))
	if stats.Succeeded != 8 {
		t.Fatalf("stats = %+v", stats)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 8 {
		t.Fatalf("lines = %v", lines)
	}
	if lines[0] != "task-1 input-a" || lines[7] != "task-8 input-h" {
		t.Fatalf("lines = %v", lines)
	}
}

func TestEngineRealProcessLaunchRate(t *testing.T) {
	// Sanity check on the real dispatch path: launching 64 /bin/true
	// processes should take well under a second on any machine; this
	// guards against a pathological per-dispatch cost regression.
	if testing.Short() {
		t.Skip("short mode")
	}
	items := make([]string, 64)
	s := mustSpec(t, "true", 8)
	s.AppendArgsIfNoPlaceholder = false
	e, _ := NewEngine(s, &ExecRunner{})
	start := time.Now()
	stats, _, err := e.Run(context.Background(), args.Literal(items...))
	if err != nil || stats.Succeeded != 64 {
		t.Fatalf("stats=%+v err=%v", stats, err)
	}
	if el := time.Since(start); el > 30*time.Second {
		t.Fatalf("64 trivial processes took %v", el)
	}
}

func TestJoblogRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	WriteJoblogHeader(&buf)
	now := time.Now()
	WriteJoblogLine(&buf, Result{
		Job:      Job{Seq: 1, Command: "echo a"},
		ExitCode: 0, Start: now, End: now.Add(1500 * time.Millisecond),
		Stdout: []byte("a\n"),
	})
	WriteJoblogLine(&buf, Result{
		Job:      Job{Seq: 2, Command: "fail cmd"},
		ExitCode: 3, Start: now, End: now.Add(time.Second),
	})
	WriteJoblogLine(&buf, Result{
		Job:      Job{Seq: 3, Command: "timed out"},
		ExitCode: -1, TimedOut: true, Start: now, End: now.Add(time.Second),
	})

	entries, err := ParseJoblog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("entries = %d", len(entries))
	}
	if entries[0].Seq != 1 || entries[0].Exitval != 0 || entries[0].Command != "echo a" {
		t.Fatalf("entry0 = %+v", entries[0])
	}
	if entries[0].Runtime < 1.4 || entries[0].Runtime > 1.6 {
		t.Fatalf("runtime = %v", entries[0].Runtime)
	}
	if entries[1].Exitval != 3 {
		t.Fatalf("entry1 = %+v", entries[1])
	}
	if entries[2].Signal != 9 {
		t.Fatalf("entry2 = %+v", entries[2])
	}

	done := CompletedSeqs(entries)
	if !done[1] || done[2] || done[3] {
		t.Fatalf("completed = %v", done)
	}
}

func TestJoblogParseLenient(t *testing.T) {
	// Malformed lines — crash-torn tails, truncated fields, non-numeric
	// columns — are skipped, never fatal, and never feed CompletedSeqs;
	// intact lines around them still parse.
	in := JoblogHeader + "\n" +
		"notanumber\tx\t0\t0\t0\t0\t0\t0\tcmd\n" + // bad seq
		"1\tx\tshort\n" + // too few fields
		"2\t:\t0.0\t0.1\t0\t0\t0\t0\tok cmd\n" + // valid
		"3\t:\t0.0\t0.1\t0\t0\tNaN\t0\tbad exitval\n" +
		"4\t:\t0.0\t0.1\t0\t0\t0\tsig\tbad signal\n" +
		"\n" +
		"5\t:\t0.0\t0.1\t0\t0\t0\t0\tgood cmd\n" +
		"6\t:\t0.0\t0." // torn mid-write, no newline
	entries, err := ParseJoblog(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Seq != 2 || entries[1].Seq != 5 {
		t.Fatalf("entries = %+v", entries)
	}
	done := CompletedSeqs(entries)
	if len(done) != 2 || !done[2] || !done[5] {
		t.Fatalf("completed = %v", done)
	}
}

func TestEngineJoblogResumeEndToEnd(t *testing.T) {
	// Run 1: two of four jobs fail. Run 2 with ResumeFrom: only the
	// failures rerun.
	var log1 bytes.Buffer
	fail := map[string]bool{"b": true, "d": true}
	runner := FuncRunner(func(ctx context.Context, job *Job) ([]byte, error) {
		if fail[job.Args[0]] {
			return nil, os.ErrInvalid
		}
		return nil, nil
	})
	s := mustSpec(t, "", 2)
	s.Joblog = &log1
	stats, _ := run(t, s, runner, args.Literal("a", "b", "c", "d"))
	if stats.Failed != 2 {
		t.Fatalf("run1 stats = %+v", stats)
	}

	entries, err := ParseJoblog(&log1)
	if err != nil {
		t.Fatal(err)
	}
	var ran []string
	var mu2 = make(chan struct{}, 1)
	mu2 <- struct{}{}
	runner2 := FuncRunner(func(ctx context.Context, job *Job) ([]byte, error) {
		<-mu2
		ran = append(ran, job.Args[0])
		mu2 <- struct{}{}
		return nil, nil
	})
	s2 := mustSpec(t, "", 2)
	s2.ResumeFrom = CompletedSeqs(entries)
	stats2, _ := run(t, s2, runner2, args.Literal("a", "b", "c", "d"))
	if stats2.Skipped != 2 || stats2.Succeeded != 2 {
		t.Fatalf("run2 stats = %+v", stats2)
	}
	for _, v := range ran {
		if v != "b" && v != "d" {
			t.Fatalf("reran wrong job %q (ran=%v)", v, ran)
		}
	}
}

func TestFileSemaphore(t *testing.T) {
	dir := t.TempDir()
	sem, err := NewFileSemaphore(dir, 2, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	s1, err := sem.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := sem.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if s1 == s2 {
		t.Fatal("same slot acquired twice")
	}
	if _, ok := sem.TryAcquire(); ok {
		t.Fatal("third acquire should fail")
	}
	if sem.Held() != 2 {
		t.Fatalf("held = %d", sem.Held())
	}
	if err := sem.Release(s1); err != nil {
		t.Fatal(err)
	}
	if _, ok := sem.TryAcquire(); !ok {
		t.Fatal("acquire after release failed")
	}
	if err := sem.Release(99); err == nil {
		t.Fatal("releasing unheld slot should error")
	}
}

func TestFileSemaphoreStaleReclaim(t *testing.T) {
	dir := t.TempDir()
	// Simulate a crashed holder: lock file with a dead PID.
	if err := os.WriteFile(filepath.Join(dir, "slot0.lock"), []byte("999999999\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	sem, err := NewFileSemaphore(dir, 1, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sem.TryAcquire(); !ok {
		t.Fatal("stale slot not reclaimed")
	}
}

func TestFileSemaphoreBlocksAcrossInstances(t *testing.T) {
	dir := t.TempDir()
	a, _ := NewFileSemaphore(dir, 1, time.Millisecond)
	b, _ := NewFileSemaphore(dir, 1, time.Millisecond)
	slot, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := b.Acquire(ctx); err == nil {
		t.Fatal("second instance acquired a held semaphore")
	}
	a.Release(slot)
	if _, ok := b.TryAcquire(); !ok {
		t.Fatal("second instance cannot acquire after release")
	}
}

func TestFileSemaphoreInvalid(t *testing.T) {
	if _, err := NewFileSemaphore(t.TempDir(), 0, 0); err == nil {
		t.Fatal("0 slots accepted")
	}
}

func TestExecRunnerDiscardOutput(t *testing.T) {
	r := &ExecRunner{DiscardOutput: true}
	res := r.Run(context.Background(), &Job{Seq: 1, Command: "echo swallowed"})
	if !res.OK() {
		t.Fatalf("res = %+v", res)
	}
	if len(res.Stdout) != 0 || len(res.Stderr) != 0 {
		t.Fatalf("discard mode captured output: %q / %q", res.Stdout, res.Stderr)
	}
	// Failures still report their exit code.
	res = r.Run(context.Background(), &Job{Seq: 2, Command: "sh -c 'echo noise; exit 3'"})
	if res.ExitCode != 3 {
		t.Fatalf("exit = %d, want 3", res.ExitCode)
	}
}

func TestExecRunnerArgvMemo(t *testing.T) {
	// Alternate commands so the single-entry memo is repeatedly hit,
	// replaced, and re-hit; each run must still execute its own argv.
	r := &ExecRunner{}
	for i := 0; i < 3; i++ {
		for _, want := range []string{"one", "two", "one"} {
			res := r.Run(context.Background(), &Job{Seq: 1, Command: "echo " + want})
			if got := strings.TrimSpace(string(res.Stdout)); got != want {
				t.Fatalf("stdout = %q, want %q", got, want)
			}
		}
	}
}

func TestExecRunnerEnvCachedBaseIsolated(t *testing.T) {
	// Two jobs with different Env must not bleed variables into each
	// other through the shared cached base environ.
	r := &ExecRunner{}
	a := r.Run(context.Background(), &Job{Seq: 1, Command: "sh -c 'echo $PR4_A$PR4_B'", Env: []string{"PR4_A=a"}})
	b := r.Run(context.Background(), &Job{Seq: 2, Command: "sh -c 'echo $PR4_A$PR4_B'", Env: []string{"PR4_B=b"}})
	if got := strings.TrimSpace(string(a.Stdout)); got != "a" {
		t.Fatalf("job a saw %q, want %q", got, "a")
	}
	if got := strings.TrimSpace(string(b.Stdout)); got != "b" {
		t.Fatalf("job b saw %q, want %q", got, "b")
	}
}
