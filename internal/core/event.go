package core

import "time"

// EventType classifies a job-lifecycle Event.
type EventType uint8

const (
	// EventQueued fires when a rendered job enters the dispatch queue.
	EventQueued EventType = iota
	// EventStarted fires when a job acquires a slot and dispatch begins.
	EventStarted
	// EventRetried fires when a failed attempt is about to be retried.
	EventRetried
	// EventFinished fires when a job completes (any outcome except a
	// timeout/cancellation kill) and its result reaches the collector.
	EventFinished
	// EventKilled fires instead of EventFinished when the job was
	// terminated by the per-job timeout or by run cancellation.
	EventKilled
)

// String returns the event type's wire name (used by the JSONL sink).
func (t EventType) String() string {
	switch t {
	case EventQueued:
		return "queued"
	case EventStarted:
		return "started"
	case EventRetried:
		return "retried"
	case EventFinished:
		return "finished"
	case EventKilled:
		return "killed"
	default:
		return "unknown"
	}
}

// Event is one job-lifecycle notification published by the engine while
// a run is in flight. It is a plain value — consumers (telemetry bus,
// metric collectors, trace writers) receive a copy and cannot affect
// the run.
//
// Events fire from three engine goroutines (input, dispatcher,
// collector) plus the per-job goroutines for retries, so any
// Spec.OnEvent handler must be safe for concurrent use and must not
// block: the dispatch hot path runs through it.
type Event struct {
	Type EventType
	// Seq is the job's 1-based input sequence number.
	Seq int
	// Slot is the execution slot; 0 on EventQueued (not yet assigned).
	Slot int
	// Attempt is the attempt number: the upcoming attempt on
	// EventRetried, the total attempts on EventFinished/EventKilled.
	Attempt int
	// Time is when the event fired (wall clock; simulated runs map
	// virtual time onto the Unix epoch).
	Time time.Time
	// Command is the rendered command line (may be empty for
	// Func-runner jobs).
	Command string

	// The remaining fields are only set on EventFinished/EventKilled.

	// OK mirrors Result.OK for the finished job.
	OK bool
	// ExitCode is the final attempt's exit status.
	ExitCode int
	// Host identifies where the job ran (distributed runners).
	Host string
	// Duration is the final attempt's runtime.
	Duration time.Duration
	// DispatchDelay is the slot-acquisition-to-process-start overhead
	// measured for the job — the paper's per-task orchestration cost.
	DispatchDelay time.Duration

	// Fine-grained phase marks (internal/span assembles these into
	// per-job phase timelines). All are optional: emitters that cannot
	// attribute a phase leave it zero.

	// Render is the template-render cost paid before the job queued
	// (set on EventQueued).
	Render time.Duration
	// End is the final attempt's end time. ev.Time on a terminal event
	// is when the collector observed the result; End - Duration is when
	// the attempt actually started, and ev.Time - End is the collect
	// latency.
	End time.Time
	// WorkerDispatch is the worker-side receive-to-process-start
	// overhead for distributed jobs (a sub-segment of DispatchDelay,
	// which additionally includes the network round trip).
	WorkerDispatch time.Duration
	// ContainerStart is the container-runtime startup cost paid before
	// the payload ran (simulated Shifter/Podman runs; the paper's 19%
	// Shifter tax).
	ContainerStart time.Duration
	// StageIn and StageOut are data-staging costs around the payload
	// (NVMe stage-in/out in simulated runs).
	StageIn, StageOut time.Duration
}
