package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/args"
)

func TestEventTypeStrings(t *testing.T) {
	want := map[EventType]string{
		EventQueued: "queued", EventStarted: "started", EventRetried: "retried",
		EventFinished: "finished", EventKilled: "killed", EventType(99): "unknown",
	}
	for typ, s := range want {
		if typ.String() != s {
			t.Fatalf("%d.String() = %q, want %q", typ, typ.String(), s)
		}
	}
}

func TestEngineEmitsLifecycleEvents(t *testing.T) {
	var failedOnce atomic.Bool
	runner := FuncRunner(func(ctx context.Context, job *Job) ([]byte, error) {
		if job.Seq == 3 && !failedOnce.Swap(true) {
			return nil, errors.New("transient")
		}
		return nil, nil
	})
	s := mustSpec(t, "", 2)
	s.Retries = 2
	var mu sync.Mutex
	counts := map[EventType]int{}
	var finished []Event
	s.OnEvent = func(ev Event) {
		mu.Lock()
		counts[ev.Type]++
		if ev.Type == EventFinished {
			finished = append(finished, ev)
		}
		mu.Unlock()
	}
	stats, _ := run(t, s, runner, args.Literal("a", "b", "c", "d", "e"))
	if stats.Succeeded != 5 || stats.Retries != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if counts[EventQueued] != 5 || counts[EventStarted] != 5 ||
		counts[EventRetried] != 1 || counts[EventFinished] != 5 || counts[EventKilled] != 0 {
		t.Fatalf("event counts = %v", counts)
	}
	seen := map[int]bool{}
	for _, ev := range finished {
		if seen[ev.Seq] {
			t.Fatalf("duplicate finished event for seq %d", ev.Seq)
		}
		seen[ev.Seq] = true
		if !ev.OK || ev.Slot < 1 || ev.Slot > 2 || ev.Attempt < 1 || ev.Time.IsZero() {
			t.Fatalf("finished event = %+v", ev)
		}
		if ev.Seq == 3 && ev.Attempt != 2 {
			t.Fatalf("retried job finished with attempt %d, want 2", ev.Attempt)
		}
	}
}

func TestEngineEmitsKilledOnTimeout(t *testing.T) {
	s := mustSpec(t, "", 1)
	s.Timeout = 10 * time.Millisecond
	var mu sync.Mutex
	counts := map[EventType]int{}
	s.OnEvent = func(ev Event) {
		mu.Lock()
		counts[ev.Type]++
		if ev.Type == EventKilled && ev.OK {
			t.Error("killed event claims OK")
		}
		mu.Unlock()
	}
	stats, _ := run(t, s, sleepFunc(5*time.Second), args.Literal("slow"))
	if stats.Failed != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if counts[EventKilled] != 1 || counts[EventFinished] != 0 {
		t.Fatalf("event counts = %v, want exactly one killed", counts)
	}
}

func TestEngineEventsOffByDefault(t *testing.T) {
	// A nil OnEvent must not panic anywhere on the hot path — the
	// default configuration pays nothing for telemetry.
	s := mustSpec(t, "", 4)
	s.Retries = 2
	s.Timeout = time.Second
	stats, _ := run(t, s, sleepFunc(time.Millisecond), args.Literal("a", "b", "c"))
	if stats.Succeeded != 3 {
		t.Fatalf("stats = %+v", stats)
	}
}
