package core

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"syscall"
	"time"
)

// FileSemaphore is a cross-process counting semaphore in the spirit of
// GNU Parallel's `sem` mode: N lock files in a shared directory bound the
// number of concurrent holders across independent processes (e.g. several
// scripts on one node throttling a shared resource).
//
// Each slot is a file created with O_CREATE|O_EXCL containing the holder's
// PID. Slots whose holder process no longer exists are considered stale
// and are reclaimed.
type FileSemaphore struct {
	dir  string
	n    int
	poll time.Duration
	// held maps the slot indexes this process currently owns to their
	// lock file paths.
	held map[int]string
}

// NewFileSemaphore returns a semaphore named by dir with n slots. The
// directory is created if missing. poll controls the retry interval when
// the semaphore is full (default 20ms).
func NewFileSemaphore(dir string, n int, poll time.Duration) (*FileSemaphore, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: semaphore needs >= 1 slot, got %d", n)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if poll <= 0 {
		poll = 20 * time.Millisecond
	}
	return &FileSemaphore{dir: dir, n: n, poll: poll, held: map[int]string{}}, nil
}

func (s *FileSemaphore) slotPath(i int) string {
	return filepath.Join(s.dir, fmt.Sprintf("slot%d.lock", i))
}

// Acquire obtains one slot, polling until one frees or ctx is done. It
// returns the slot index.
func (s *FileSemaphore) Acquire(ctx context.Context) (int, error) {
	for {
		for i := 0; i < s.n; i++ {
			if _, mine := s.held[i]; mine {
				continue
			}
			if s.tryLock(i) {
				return i, nil
			}
		}
		select {
		case <-ctx.Done():
			return -1, ctx.Err()
		case <-time.After(s.poll):
		}
	}
}

// TryAcquire obtains a slot without waiting; it returns -1, false when
// none are free.
func (s *FileSemaphore) TryAcquire() (int, bool) {
	for i := 0; i < s.n; i++ {
		if _, mine := s.held[i]; mine {
			continue
		}
		if s.tryLock(i) {
			return i, true
		}
	}
	return -1, false
}

func (s *FileSemaphore) tryLock(i int) bool {
	p := s.slotPath(i)
	f, err := os.OpenFile(p, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err == nil {
		fmt.Fprintf(f, "%d\n", os.Getpid())
		f.Close()
		s.held[i] = p
		return true
	}
	// Slot taken: reclaim if the holder is gone (crashed without
	// releasing).
	if data, rerr := os.ReadFile(p); rerr == nil {
		pid, perr := strconv.Atoi(stringTrim(data))
		if perr == nil && !pidAlive(pid) {
			if os.Remove(p) == nil {
				return s.tryLock(i)
			}
		}
	}
	return false
}

// Release frees the given slot index held by this process.
func (s *FileSemaphore) Release(i int) error {
	p, ok := s.held[i]
	if !ok {
		return fmt.Errorf("core: releasing slot %d not held by this process", i)
	}
	delete(s.held, i)
	return os.Remove(p)
}

// Held returns how many slots this process currently holds.
func (s *FileSemaphore) Held() int { return len(s.held) }

func stringTrim(b []byte) string {
	i := 0
	j := len(b)
	for i < j && (b[i] == ' ' || b[i] == '\n' || b[i] == '\t') {
		i++
	}
	for j > i && (b[j-1] == ' ' || b[j-1] == '\n' || b[j-1] == '\t') {
		j--
	}
	return string(b[i:j])
}

// pidAlive reports whether a process with the given pid exists (signal 0
// probe; EPERM counts as alive).
func pidAlive(pid int) bool {
	if pid <= 0 {
		return false
	}
	err := syscall.Kill(pid, 0)
	return err == nil || err == syscall.EPERM
}
