package core

import (
	"context"
	"sync/atomic"
	"testing"

	"repro/internal/args"
	"repro/internal/wal"
)

// BenchmarkDispatchFuncRunner measures the engine's end-to-end per-job
// hot path — input, render, dispatch, execution, collection — with an
// in-process no-op payload, so the number is pure orchestration cost
// (the paper's per-task overhead, with the process fork removed).
func BenchmarkDispatchFuncRunner(b *testing.B) {
	noop := FuncRunner(func(ctx context.Context, job *Job) ([]byte, error) {
		return nil, nil
	})
	for _, jobs := range []int{1, 8, 64} {
		b.Run(benchName("jobs", jobs), func(b *testing.B) {
			spec, err := NewSpec("", jobs)
			if err != nil {
				b.Fatal(err)
			}
			eng, err := NewEngine(spec, noop)
			if err != nil {
				b.Fatal(err)
			}
			items := make([]string, b.N)
			b.ReportAllocs()
			b.ResetTimer()
			stats, _, err := eng.Run(context.Background(), args.Literal(items...))
			if err != nil || stats.Succeeded != b.N {
				b.Fatalf("stats=%+v err=%v", stats, err)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
		})
	}
}

// BenchmarkDispatchRendered is BenchmarkDispatchFuncRunner with a
// non-trivial command template, exercising the render stage on every
// job in addition to dispatch.
func BenchmarkDispatchRendered(b *testing.B) {
	noop := FuncRunner(func(ctx context.Context, job *Job) ([]byte, error) {
		return nil, nil
	})
	spec, err := NewSpec("process --seq {#} --input {} --out {.}.d", 8)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := NewEngine(spec, noop)
	if err != nil {
		b.Fatal(err)
	}
	items := make([]string, b.N)
	for i := range items {
		items[i] = "/data/shard/file.dat"
	}
	b.ReportAllocs()
	b.ResetTimer()
	stats, _, err := eng.Run(context.Background(), args.Literal(items...))
	if err != nil || stats.Succeeded != b.N {
		b.Fatalf("stats=%+v err=%v", stats, err)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
}

// BenchmarkDispatchKeepOrder isolates the keep-order reordering
// structure's cost on the collector path.
func BenchmarkDispatchKeepOrder(b *testing.B) {
	noop := FuncRunner(func(ctx context.Context, job *Job) ([]byte, error) {
		return nil, nil
	})
	spec, err := NewSpec("", 64)
	if err != nil {
		b.Fatal(err)
	}
	spec.KeepOrder = true
	eng, err := NewEngine(spec, noop)
	if err != nil {
		b.Fatal(err)
	}
	items := make([]string, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	stats, _, err := eng.Run(context.Background(), args.Literal(items...))
	if err != nil || stats.Succeeded != b.N {
		b.Fatalf("stats=%+v err=%v", stats, err)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
}

// BenchmarkDispatchWithEvents measures the hot path with an enabled
// but trivially cheap OnEvent hook, the telemetry-on configuration.
func BenchmarkDispatchWithEvents(b *testing.B) {
	noop := FuncRunner(func(ctx context.Context, job *Job) ([]byte, error) {
		return nil, nil
	})
	spec, err := NewSpec("", 8)
	if err != nil {
		b.Fatal(err)
	}
	var events atomic.Int64
	spec.OnEvent = func(ev Event) { events.Add(1) }
	eng, err := NewEngine(spec, noop)
	if err != nil {
		b.Fatal(err)
	}
	items := make([]string, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	stats, _, err := eng.Run(context.Background(), args.Literal(items...))
	if err != nil || stats.Succeeded != b.N {
		b.Fatalf("stats=%+v err=%v", stats, err)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
}

// BenchmarkDispatchWAL measures the write-ahead log's tax on the
// dispatch hot path at each sync policy, against the jobs=8 baseline of
// BenchmarkDispatchFuncRunner. sync=off is that baseline re-measured in
// the same process (the -check WAL-overhead gate divides interval by
// off, so both sides must share a run's noise); interval is the default
// group-commit policy the <5% budget applies to; always pays one fsync
// per record and is expected to be dominated by the disk barrier.
func BenchmarkDispatchWAL(b *testing.B) {
	noop := FuncRunner(func(ctx context.Context, job *Job) ([]byte, error) {
		return nil, nil
	})
	for _, mode := range []string{"off", "interval", "always"} {
		b.Run("sync="+mode, func(b *testing.B) {
			spec, err := NewSpec("", 8)
			if err != nil {
				b.Fatal(err)
			}
			if mode != "off" {
				pol, err := wal.ParseSyncPolicy(mode)
				if err != nil {
					b.Fatal(err)
				}
				l, _, err := wal.Open(b.TempDir(), wal.Options{Sync: pol})
				if err != nil {
					b.Fatal(err)
				}
				defer l.Close()
				spec.WAL = l
			}
			eng, err := NewEngine(spec, noop)
			if err != nil {
				b.Fatal(err)
			}
			items := make([]string, b.N)
			b.ReportAllocs()
			b.ResetTimer()
			stats, _, err := eng.Run(context.Background(), args.Literal(items...))
			if err != nil || stats.Succeeded != b.N {
				b.Fatalf("stats=%+v err=%v", stats, err)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
		})
	}
}

func benchName(k string, v int) string {
	return k + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
