package core

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/args"
)

func TestBackoffDelayGrowth(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Cap: time.Second}
	if got := b.Delay(1, 1); got != 100*time.Millisecond {
		t.Fatalf("attempt 1 delay = %v", got)
	}
	if got := b.Delay(1, 2); got != 200*time.Millisecond {
		t.Fatalf("attempt 2 delay = %v", got)
	}
	// Growth is capped.
	if got := b.Delay(1, 10); got != time.Second {
		t.Fatalf("attempt 10 delay = %v, want cap", got)
	}
	// Huge attempt numbers must not overflow past the cap.
	if got := b.Delay(1, 500); got != time.Second {
		t.Fatalf("attempt 500 delay = %v, want cap", got)
	}
	if got := (Backoff{}).Delay(1, 3); got != 0 {
		t.Fatalf("zero backoff delay = %v", got)
	}
}

func TestBackoffJitterDeterministicAndBounded(t *testing.T) {
	b := Backoff{Base: time.Second, Jitter: 0.25}
	seen := map[time.Duration]bool{}
	for seq := 1; seq <= 50; seq++ {
		d := b.Delay(seq, 1)
		if d != b.Delay(seq, 1) {
			t.Fatalf("jitter not deterministic for seq %d", seq)
		}
		lo, hi := 750*time.Millisecond, 1250*time.Millisecond
		if d < lo || d > hi {
			t.Fatalf("seq %d delay %v outside [%v, %v]", seq, d, lo, hi)
		}
		seen[d] = true
	}
	if len(seen) < 10 {
		t.Fatalf("jitter produced only %d distinct delays over 50 seqs", len(seen))
	}
}

func TestHaltPolicyPercent(t *testing.T) {
	h := HaltPolicy{When: HaltNow, Percent: 10}
	// Before the input total is final, percentage halts never fire.
	if h.Triggered(0, 50, 100, false) {
		t.Fatal("fired before input done")
	}
	if h.Triggered(0, 9, 100, true) {
		t.Fatal("fired below threshold")
	}
	if !h.Triggered(0, 10, 100, true) {
		t.Fatal("did not fire at 10% of 100")
	}
	hs := HaltPolicy{When: HaltSoon, Percent: 50, OnSuccess: true}
	if hs.Triggered(49, 0, 100, true) || !hs.Triggered(50, 0, 100, true) {
		t.Fatal("success-percent threshold wrong")
	}
	// Count-based path is unchanged.
	hc := HaltPolicy{When: HaltSoon, Threshold: 2}
	if hc.Triggered(0, 1, 10, false) || !hc.Triggered(0, 2, 10, false) {
		t.Fatal("count threshold wrong")
	}
}

func TestEngineHaltPercent(t *testing.T) {
	// 20 jobs, every one fails, halt soon at fail=25%: the run stops
	// early, well before all 20 execute.
	runner := FuncRunner(func(ctx context.Context, job *Job) ([]byte, error) {
		time.Sleep(time.Millisecond)
		return nil, errors.New("boom")
	})
	s := mustSpec(t, "", 2)
	s.Halt = HaltPolicy{When: HaltSoon, Percent: 25}
	items := make([]string, 20)
	stats, _ := run(t, s, runner, args.Literal(items...))
	if stats.Failed < 5 || stats.Failed == 20 {
		t.Fatalf("failed = %d, want >= 5 (25%% of 20) but < 20", stats.Failed)
	}
	if stats.Skipped == 0 {
		t.Fatalf("halt did not skip remaining jobs: %+v", stats)
	}
}

func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"negative retries", func(s *Spec) { s.Retries = -1 }, "Retries"},
		{"negative timeout", func(s *Spec) { s.Timeout = -time.Second }, "Timeout"},
		{"negative delay", func(s *Spec) { s.Delay = -time.Second }, "Delay"},
		{"negative load", func(s *Spec) { s.MaxLoad = -1 }, "MaxLoad"},
		{"negative base", func(s *Spec) { s.RetryBackoff.Base = -1 }, "Base"},
		{"cap below base", func(s *Spec) { s.RetryBackoff = Backoff{Base: time.Second, Cap: time.Millisecond} }, "Cap"},
		{"bad factor", func(s *Spec) { s.RetryBackoff = Backoff{Base: 1, Factor: 0.5} }, "Factor"},
		{"bad jitter", func(s *Spec) { s.RetryBackoff = Backoff{Base: 1, Jitter: 2} }, "Jitter"},
		{"bad percent", func(s *Spec) { s.Halt.Percent = 150 }, "Percent"},
		{"negative halt threshold", func(s *Spec) { s.Halt.Threshold = -2 }, "Threshold"},
	}
	for _, c := range cases {
		s := mustSpec(t, "true", 1)
		c.mut(s)
		_, err := NewEngine(s, nil)
		if err == nil {
			t.Errorf("%s: NewEngine accepted invalid spec", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
	// A default spec still validates.
	if _, err := NewEngine(mustSpec(t, "true", 1), nil); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestEngineRetryOnPredicate(t *testing.T) {
	fatal := errors.New("fatal")
	transient := errors.New("transient")
	var calls atomic.Int64
	runner := FuncRunner(func(ctx context.Context, job *Job) ([]byte, error) {
		calls.Add(1)
		if job.Args[0] == "fatal" {
			return nil, fatal
		}
		return nil, transient
	})
	s := mustSpec(t, "", 1)
	s.Retries = 3
	s.RetryOn = func(r Result) bool { return !errors.Is(r.Err, fatal) }
	stats, _ := run(t, s, runner, args.Literal("fatal", "transient"))
	if stats.Failed != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	// fatal: 1 attempt (predicate vetoed the retry); transient: 3.
	if got := calls.Load(); got != 4 {
		t.Fatalf("attempts = %d, want 4", got)
	}
	if stats.Retries != 2 {
		t.Fatalf("retries = %d, want 2", stats.Retries)
	}
}

func TestEngineRetryBackoffPacing(t *testing.T) {
	var times []time.Time
	mu := make(chan struct{}, 1)
	mu <- struct{}{}
	runner := FuncRunner(func(ctx context.Context, job *Job) ([]byte, error) {
		<-mu
		times = append(times, time.Now())
		mu <- struct{}{}
		return nil, errors.New("always fails")
	})
	s := mustSpec(t, "", 1)
	s.Retries = 3
	s.RetryBackoff = Backoff{Base: 30 * time.Millisecond, Cap: 200 * time.Millisecond}
	stats, _ := run(t, s, runner, args.Literal("x"))
	if stats.Failed != 1 || stats.Retries != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if len(times) != 3 {
		t.Fatalf("attempts = %d", len(times))
	}
	// Gaps should be at least ~base and ~base*2 (no jitter configured).
	if g := times[1].Sub(times[0]); g < 25*time.Millisecond {
		t.Fatalf("first retry gap %v < base", g)
	}
	if g := times[2].Sub(times[1]); g < 50*time.Millisecond {
		t.Fatalf("second retry gap %v < base*factor", g)
	}
}
