package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/args"
)

// sleepFunc returns a FuncRunner that sleeps d then echoes its args.
func sleepFunc(d time.Duration) FuncRunner {
	return func(ctx context.Context, job *Job) ([]byte, error) {
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return []byte(strings.Join(job.Args, " ") + "\n"), nil
	}
}

func mustSpec(t *testing.T, cmd string, jobs int) *Spec {
	t.Helper()
	s, err := NewSpec(cmd, jobs)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func run(t *testing.T, s *Spec, r Runner, src args.Source) (Stats, []Result) {
	t.Helper()
	e, err := NewEngine(s, r)
	if err != nil {
		t.Fatal(err)
	}
	stats, results, err := e.Run(context.Background(), src)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return stats, results
}

func TestEngineBasicFunc(t *testing.T) {
	s := mustSpec(t, "", 4)
	s.Template = nil
	s.CollectResults = true
	stats, results := run(t, s, sleepFunc(time.Millisecond), args.Literal("a", "b", "c", "d", "e"))
	if stats.Total != 5 || stats.Succeeded != 5 || stats.Failed != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if len(results) != 5 {
		t.Fatalf("results = %d", len(results))
	}
	seen := map[string]bool{}
	for _, r := range results {
		seen[string(bytes.TrimSpace(r.Stdout))] = true
		if r.Job.Slot < 1 || r.Job.Slot > 4 {
			t.Fatalf("slot %d out of range", r.Job.Slot)
		}
	}
	for _, want := range []string{"a", "b", "c", "d", "e"} {
		if !seen[want] {
			t.Fatalf("missing output for %q", want)
		}
	}
}

func TestEngineConcurrencyBounded(t *testing.T) {
	var cur, max atomic.Int64
	var mu sync.Mutex
	runner := FuncRunner(func(ctx context.Context, job *Job) ([]byte, error) {
		n := cur.Add(1)
		mu.Lock()
		if n > max.Load() {
			max.Store(n)
		}
		mu.Unlock()
		time.Sleep(5 * time.Millisecond)
		cur.Add(-1)
		return nil, nil
	})
	s := mustSpec(t, "", 3)
	items := make([]string, 20)
	for i := range items {
		items[i] = fmt.Sprint(i)
	}
	stats, _ := run(t, s, runner, args.Literal(items...))
	if stats.Succeeded != 20 {
		t.Fatalf("stats = %+v", stats)
	}
	if got := max.Load(); got > 3 {
		t.Fatalf("max concurrency %d > slots 3", got)
	}
}

func TestEngineSlotsReused(t *testing.T) {
	slots := map[int]int{}
	var mu sync.Mutex
	runner := FuncRunner(func(ctx context.Context, job *Job) ([]byte, error) {
		mu.Lock()
		slots[job.Slot]++
		mu.Unlock()
		return nil, nil
	})
	s := mustSpec(t, "", 2)
	items := make([]string, 10)
	stats, _ := run(t, s, runner, args.Literal(items...))
	if stats.Succeeded != 10 {
		t.Fatalf("stats = %+v", stats)
	}
	total := 0
	for slot, n := range slots {
		if slot != 1 && slot != 2 {
			t.Fatalf("unexpected slot %d", slot)
		}
		total += n
	}
	if total != 10 {
		t.Fatalf("slot uses = %d", total)
	}
}

func TestEngineKeepOrder(t *testing.T) {
	// Jobs finish in reverse order (first is slowest); keep-order must
	// still release results in input order.
	runner := FuncRunner(func(ctx context.Context, job *Job) ([]byte, error) {
		d := time.Duration(50-10*job.Seq) * time.Millisecond
		if d < 0 {
			d = 0
		}
		time.Sleep(d)
		return []byte(job.Args[0] + "\n"), nil
	})
	var buf bytes.Buffer
	var order []int
	s := mustSpec(t, "", 4)
	s.KeepOrder = true
	s.Out = &buf
	s.OnResult = func(r Result) { order = append(order, r.Job.Seq) }
	run(t, s, runner, args.Literal("1", "2", "3", "4"))
	if got := buf.String(); got != "1\n2\n3\n4\n" {
		t.Fatalf("output = %q", got)
	}
	for i, seq := range order {
		if seq != i+1 {
			t.Fatalf("OnResult order = %v", order)
		}
	}
}

func TestEngineUnorderedGroupsOutput(t *testing.T) {
	// Each job writes two lines; grouping means the two lines stay
	// adjacent even with concurrency.
	runner := FuncRunner(func(ctx context.Context, job *Job) ([]byte, error) {
		return []byte(job.Args[0] + "-l1\n" + job.Args[0] + "-l2\n"), nil
	})
	var buf bytes.Buffer
	s := mustSpec(t, "", 8)
	s.Out = &buf
	run(t, s, runner, args.Literal("a", "b", "c", "d", "e", "f"))
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 12 {
		t.Fatalf("lines = %d", len(lines))
	}
	for i := 0; i < len(lines); i += 2 {
		p1 := strings.TrimSuffix(lines[i], "-l1")
		p2 := strings.TrimSuffix(lines[i+1], "-l2")
		if p1 != p2 {
			t.Fatalf("output not grouped: %v", lines)
		}
	}
}

func TestEngineRetries(t *testing.T) {
	var mu sync.Mutex
	failures := map[int]int{}
	runner := FuncRunner(func(ctx context.Context, job *Job) ([]byte, error) {
		mu.Lock()
		defer mu.Unlock()
		failures[job.Seq]++
		if failures[job.Seq] < 3 {
			return nil, errors.New("transient")
		}
		return nil, nil
	})
	s := mustSpec(t, "", 2)
	s.Retries = 3
	s.CollectResults = true
	stats, results := run(t, s, runner, args.Literal("x", "y"))
	if stats.Succeeded != 2 || stats.Failed != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.Retries != 4 { // 2 jobs x 2 extra attempts
		t.Fatalf("retries = %d, want 4", stats.Retries)
	}
	for _, r := range results {
		if r.Attempts != 3 {
			t.Fatalf("attempts = %d", r.Attempts)
		}
	}
}

func TestEngineRetriesExhausted(t *testing.T) {
	runner := FuncRunner(func(ctx context.Context, job *Job) ([]byte, error) {
		return nil, errors.New("always fails")
	})
	s := mustSpec(t, "", 1)
	s.Retries = 2
	stats, _ := run(t, s, runner, args.Literal("x"))
	if stats.Failed != 1 || stats.Succeeded != 0 || stats.Retries != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestEngineTimeout(t *testing.T) {
	s := mustSpec(t, "", 2)
	s.Timeout = 10 * time.Millisecond
	s.CollectResults = true
	stats, results := run(t, s, sleepFunc(5*time.Second), args.Literal("slow"))
	if stats.Failed != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if !results[0].TimedOut {
		t.Fatal("TimedOut not set")
	}
}

func TestEngineHaltSoon(t *testing.T) {
	var ran atomic.Int64
	runner := FuncRunner(func(ctx context.Context, job *Job) ([]byte, error) {
		ran.Add(1)
		time.Sleep(time.Millisecond)
		return nil, errors.New("fail")
	})
	s := mustSpec(t, "", 1) // serial so the halt takes effect deterministically
	s.Halt = HaltPolicy{When: HaltSoon, Threshold: 2}
	items := make([]string, 50)
	stats, _ := run(t, s, runner, args.Literal(items...))
	if stats.Failed < 2 {
		t.Fatalf("failed = %d, want >= 2", stats.Failed)
	}
	if got := ran.Load(); got > 10 {
		t.Fatalf("ran %d jobs after halt-soon threshold 2", got)
	}
}

func TestEngineHaltNowCancelsRunning(t *testing.T) {
	started := make(chan struct{}, 16)
	runner := FuncRunner(func(ctx context.Context, job *Job) ([]byte, error) {
		if job.Seq == 1 {
			return nil, errors.New("fail fast")
		}
		started <- struct{}{}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(10 * time.Second):
			return nil, nil
		}
	})
	s := mustSpec(t, "", 4)
	s.Halt = HaltPolicy{When: HaltNow, Threshold: 1}
	e, _ := NewEngine(s, runner)
	done := make(chan Stats, 1)
	go func() {
		stats, _, _ := e.Run(context.Background(), args.Literal("a", "b", "c", "d"))
		done <- stats
	}()
	select {
	case stats := <-done:
		if stats.Failed < 1 {
			t.Fatalf("stats = %+v", stats)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("halt-now did not cancel running jobs")
	}
}

func TestEngineHaltOnSuccess(t *testing.T) {
	// --halt now,success=1: stop as soon as anything succeeds.
	runner := FuncRunner(func(ctx context.Context, job *Job) ([]byte, error) {
		if job.Seq == 3 {
			return []byte("winner\n"), nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(10 * time.Second):
			return nil, nil
		}
	})
	s := mustSpec(t, "", 4)
	s.Halt = HaltPolicy{When: HaltNow, Threshold: 1, OnSuccess: true}
	e, _ := NewEngine(s, runner)
	done := make(chan Stats, 1)
	go func() {
		stats, _, _ := e.Run(context.Background(), args.Literal("a", "b", "c", "d"))
		done <- stats
	}()
	select {
	case stats := <-done:
		if stats.Succeeded < 1 {
			t.Fatalf("stats = %+v", stats)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("halt-on-success did not terminate the run")
	}
}

func TestEngineResume(t *testing.T) {
	var ran []int
	var mu sync.Mutex
	runner := FuncRunner(func(ctx context.Context, job *Job) ([]byte, error) {
		mu.Lock()
		ran = append(ran, job.Seq)
		mu.Unlock()
		return nil, nil
	})
	s := mustSpec(t, "", 1)
	s.ResumeFrom = map[int]bool{1: true, 3: true}
	stats, _ := run(t, s, runner, args.Literal("a", "b", "c", "d"))
	if stats.Skipped != 2 || stats.Succeeded != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if len(ran) != 2 || ran[0] != 2 || ran[1] != 4 {
		t.Fatalf("ran seqs = %v", ran)
	}
}

func TestEngineKeepOrderWithResume(t *testing.T) {
	runner := FuncRunner(func(ctx context.Context, job *Job) ([]byte, error) {
		return []byte(job.Args[0] + "\n"), nil
	})
	var buf bytes.Buffer
	s := mustSpec(t, "", 4)
	s.KeepOrder = true
	s.Out = &buf
	s.ResumeFrom = map[int]bool{2: true}
	run(t, s, runner, args.Literal("a", "b", "c"))
	if got := buf.String(); got != "a\nc\n" {
		t.Fatalf("output = %q", got)
	}
}

func TestEngineDryRun(t *testing.T) {
	var buf bytes.Buffer
	s := mustSpec(t, "process --in {} --out {.}.out", 2)
	s.DryRun = true
	s.Out = &buf
	s.KeepOrder = true
	stats, _ := run(t, s, nil, args.Literal("a.txt", "b.txt"))
	want := "process --in a.txt --out a.out\nprocess --in b.txt --out b.out\n"
	if buf.String() != want {
		t.Fatalf("dry-run output = %q, want %q", buf.String(), want)
	}
	if stats.Succeeded != 2 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestEngineAppendsArgsWhenNoPlaceholder(t *testing.T) {
	var buf bytes.Buffer
	s := mustSpec(t, "echo", 1)
	s.DryRun = true
	s.Out = &buf
	run(t, s, nil, args.Literal("x"))
	if got := strings.TrimSpace(buf.String()); got != "echo x" {
		t.Fatalf("got %q, want %q", got, "echo x")
	}
}

func TestEngineSlotEnvGPUIsolation(t *testing.T) {
	// The paper's Celeritas pattern: each slot pinned to one GPU.
	var mu sync.Mutex
	gpuByJob := map[int]string{}
	runner := FuncRunner(func(ctx context.Context, job *Job) ([]byte, error) {
		mu.Lock()
		for _, kv := range job.Env {
			if strings.HasPrefix(kv, "HIP_VISIBLE_DEVICES=") {
				gpuByJob[job.Seq] = strings.TrimPrefix(kv, "HIP_VISIBLE_DEVICES=")
			}
		}
		mu.Unlock()
		time.Sleep(time.Millisecond)
		return nil, nil
	})
	s := mustSpec(t, "", 8)
	s.SlotEnv = func(slot int) []string {
		return []string{fmt.Sprintf("HIP_VISIBLE_DEVICES=%d", slot-1)}
	}
	items := make([]string, 16)
	run(t, s, runner, args.Literal(items...))
	if len(gpuByJob) != 16 {
		t.Fatalf("gpu bindings = %d", len(gpuByJob))
	}
	for seq, gpu := range gpuByJob {
		if gpu == "" {
			t.Fatalf("job %d missing GPU binding", seq)
		}
	}
}

func TestEngineTagOutput(t *testing.T) {
	runner := FuncRunner(func(ctx context.Context, job *Job) ([]byte, error) {
		return []byte("line1\nline2\n"), nil
	})
	var buf bytes.Buffer
	s := mustSpec(t, "", 1)
	s.Tag = true
	s.Out = &buf
	run(t, s, runner, args.Literal("myarg"))
	want := "myarg\tline1\nmyarg\tline2\n"
	if buf.String() != want {
		t.Fatalf("tagged output = %q, want %q", buf.String(), want)
	}
}

func TestEngineInputError(t *testing.T) {
	bad := args.SourceFunc(func() ([]string, error) {
		return nil, errors.New("disk on fire")
	})
	s := mustSpec(t, "", 2)
	e, _ := NewEngine(s, sleepFunc(0))
	stats, _, err := e.Run(context.Background(), bad)
	if err == nil || !strings.Contains(err.Error(), "disk on fire") {
		t.Fatalf("err = %v", err)
	}
	if stats.InputErr == nil {
		t.Fatal("InputErr not recorded")
	}
}

func TestEngineTemplateRenderError(t *testing.T) {
	s := mustSpec(t, "cmd {2}", 1)
	e, _ := NewEngine(s, sleepFunc(0))
	_, _, err := e.Run(context.Background(), args.Literal("only-one"))
	if err == nil {
		t.Fatal("want render error")
	}
}

func TestEngineContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	runner := FuncRunner(func(rctx context.Context, job *Job) ([]byte, error) {
		cancel()
		<-rctx.Done()
		return nil, rctx.Err()
	})
	s := mustSpec(t, "", 1)
	e, _ := NewEngine(s, runner)
	_, _, err := e.Run(ctx, args.Literal("a", "b", "c"))
	if err == nil {
		t.Fatal("want cancellation error")
	}
}

func TestEngineEmptySource(t *testing.T) {
	s := mustSpec(t, "echo {}", 4)
	stats, _ := run(t, s, sleepFunc(0), args.Literal())
	if stats.Total != 0 || stats.Done() != 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestEngineInvalidSpec(t *testing.T) {
	if _, err := NewEngine(nil, nil); err == nil {
		t.Fatal("nil spec accepted")
	}
	s := mustSpec(t, "echo", 0)
	if _, err := NewEngine(s, nil); err == nil {
		t.Fatal("0 jobs accepted")
	}
}

func TestEngineSeqNumbering(t *testing.T) {
	var seqs []int
	var mu sync.Mutex
	runner := FuncRunner(func(ctx context.Context, job *Job) ([]byte, error) {
		mu.Lock()
		seqs = append(seqs, job.Seq)
		mu.Unlock()
		return nil, nil
	})
	s := mustSpec(t, "", 1)
	run(t, s, runner, args.Literal("a", "b", "c"))
	for i, seq := range seqs {
		if seq != i+1 {
			t.Fatalf("seqs = %v", seqs)
		}
	}
}

// Property: for any job count and slot count, all jobs run exactly once
// and succeed.
func TestPropertyAllJobsRunOnce(t *testing.T) {
	f := func(n16 uint16, j8 uint8) bool {
		n := int(n16 % 100)
		j := int(j8%16) + 1
		var count atomic.Int64
		runner := FuncRunner(func(ctx context.Context, job *Job) ([]byte, error) {
			count.Add(1)
			return nil, nil
		})
		items := make([]string, n)
		s, _ := NewSpec("", j)
		e, _ := NewEngine(s, runner)
		stats, _, err := e.Run(context.Background(), args.Literal(items...))
		return err == nil && stats.Succeeded == n && int(count.Load()) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: keep-order emission order equals input order regardless of
// per-job timing.
func TestPropertyKeepOrder(t *testing.T) {
	f := func(delays []uint8) bool {
		if len(delays) == 0 || len(delays) > 24 {
			return true
		}
		runner := FuncRunner(func(ctx context.Context, job *Job) ([]byte, error) {
			time.Sleep(time.Duration(delays[job.Seq-1]%5) * time.Millisecond)
			return nil, nil
		})
		var order []int
		s, _ := NewSpec("", 6)
		s.KeepOrder = true
		s.OnResult = func(r Result) { order = append(order, r.Job.Seq) }
		items := make([]string, len(delays))
		e, _ := NewEngine(s, runner)
		if _, _, err := e.Run(context.Background(), args.Literal(items...)); err != nil {
			return false
		}
		for i, seq := range order {
			if seq != i+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngineDispatchFunc(b *testing.B) {
	// Measures pure engine overhead: how fast can slots cycle through
	// trivial in-process jobs. Compare against Fig 3's 470/s for
	// perl GNU Parallel launching real processes.
	runner := FuncRunner(func(ctx context.Context, job *Job) ([]byte, error) { return nil, nil })
	items := make([]string, b.N)
	s, _ := NewSpec("", 8)
	e, _ := NewEngine(s, runner)
	b.ResetTimer()
	stats, _, err := e.Run(context.Background(), args.Literal(items...))
	if err != nil || stats.Succeeded != b.N {
		b.Fatalf("stats=%+v err=%v", stats, err)
	}
}

func BenchmarkEngineKeepOrderOverhead(b *testing.B) {
	runner := FuncRunner(func(ctx context.Context, job *Job) ([]byte, error) { return nil, nil })
	items := make([]string, b.N)
	s, _ := NewSpec("", 8)
	s.KeepOrder = true
	e, _ := NewEngine(s, runner)
	b.ResetTimer()
	if _, _, err := e.Run(context.Background(), args.Literal(items...)); err != nil {
		b.Fatal(err)
	}
}

var _ io.Writer = (*bytes.Buffer)(nil)
