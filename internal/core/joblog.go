package core

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The joblog format matches GNU Parallel's --joblog so existing tooling
// (and --resume workflows) interoperate:
//
//	Seq  Host  Starttime  JobRuntime  Send  Receive  Exitval  Signal  Command
//
// Fields are TAB-separated; Starttime is Unix seconds with microseconds;
// JobRuntime is seconds.

// JoblogHeader is the header line GNU Parallel writes.
const JoblogHeader = "Seq\tHost\tStarttime\tJobRuntime\tSend\tReceive\tExitval\tSignal\tCommand"

// WriteJoblogHeader writes the standard header line.
func WriteJoblogHeader(w io.Writer) {
	fmt.Fprintln(w, JoblogHeader)
}

// WriteJoblogLine appends one completed job to a joblog.
func WriteJoblogLine(w io.Writer, res Result) {
	exitval := res.ExitCode
	if res.Err != nil && exitval == 0 {
		exitval = -1
	}
	signal := 0
	if res.TimedOut {
		signal = 9 // killed
	}
	host := res.Host
	if host == "" {
		host = ":"
	}
	// Microsecond precision keeps reconstructed intervals (profile
	// analysis) from showing phantom overlaps at slot-handoff
	// boundaries; GNU Parallel tools parse the extra digits fine. The
	// runtime is derived from the same µs-floored endpoints as the start
	// column — flooring is monotonic, so two back-to-back jobs on one
	// slot can never overlap after quantization even when the engine's
	// handoff gap is below a microsecond.
	runtime := float64(res.End.UnixMicro()-res.Start.UnixMicro()) / 1e6
	if runtime < 0 {
		runtime = 0
	}
	fmt.Fprintf(w, "%d\t%s\t%.6f\t%9.6f\t%d\t%d\t%d\t%d\t%s\n",
		res.Job.Seq,
		host,
		float64(res.Start.UnixMicro())/1e6,
		runtime,
		0, len(res.Stdout),
		exitval, signal,
		res.Job.Command)
}

// JoblogEntry is one parsed joblog line.
type JoblogEntry struct {
	Seq     int
	Host    string
	Start   float64
	Runtime float64
	Exitval int
	Signal  int
	Command string
}

// ParseJoblog reads a joblog, tolerating and skipping the header line.
func ParseJoblog(r io.Reader) ([]JoblogEntry, error) {
	var out []JoblogEntry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "Seq\t") {
			continue
		}
		f := strings.SplitN(line, "\t", 9)
		if len(f) < 8 {
			return out, fmt.Errorf("core: joblog line %d: %d fields, want >= 8", lineno, len(f))
		}
		seq, err := strconv.Atoi(f[0])
		if err != nil {
			return out, fmt.Errorf("core: joblog line %d: bad seq %q", lineno, f[0])
		}
		start, _ := strconv.ParseFloat(strings.TrimSpace(f[2]), 64)
		runtime, _ := strconv.ParseFloat(strings.TrimSpace(f[3]), 64)
		exitval, err := strconv.Atoi(strings.TrimSpace(f[6]))
		if err != nil {
			return out, fmt.Errorf("core: joblog line %d: bad exitval %q", lineno, f[6])
		}
		sig, _ := strconv.Atoi(strings.TrimSpace(f[7]))
		e := JoblogEntry{
			Seq: seq, Host: f[1], Start: start, Runtime: runtime,
			Exitval: exitval, Signal: sig,
		}
		if len(f) == 9 {
			e.Command = f[8]
		}
		out = append(out, e)
	}
	return out, sc.Err()
}

// CompletedSeqs returns the set of seq numbers that finished successfully,
// suitable for Spec.ResumeFrom (GNU Parallel --resume semantics: only
// exit-0 jobs are skipped on rerun).
func CompletedSeqs(entries []JoblogEntry) map[int]bool {
	done := map[int]bool{}
	for _, e := range entries {
		if e.Exitval == 0 && e.Signal == 0 {
			done[e.Seq] = true
		}
	}
	return done
}
