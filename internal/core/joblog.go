package core

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The joblog format matches GNU Parallel's --joblog so existing tooling
// (and --resume workflows) interoperate:
//
//	Seq  Host  Starttime  JobRuntime  Send  Receive  Exitval  Signal  Command
//
// Fields are TAB-separated; Starttime is Unix seconds with microseconds;
// JobRuntime is seconds.

// JoblogHeader is the header line GNU Parallel writes.
const JoblogHeader = "Seq\tHost\tStarttime\tJobRuntime\tSend\tReceive\tExitval\tSignal\tCommand"

// WriteJoblogHeader writes the standard header line.
func WriteJoblogHeader(w io.Writer) {
	fmt.Fprintln(w, JoblogHeader)
}

// WriteJoblogLine appends one completed job to a joblog.
func WriteJoblogLine(w io.Writer, res Result) {
	exitval := res.ExitCode
	if res.Err != nil && exitval == 0 {
		exitval = -1
	}
	signal := 0
	if res.TimedOut {
		signal = 9 // killed
	}
	host := res.Host
	if host == "" {
		host = ":"
	}
	// Microsecond precision keeps reconstructed intervals (profile
	// analysis) from showing phantom overlaps at slot-handoff
	// boundaries; GNU Parallel tools parse the extra digits fine. The
	// runtime is derived from the same µs-floored endpoints as the start
	// column — flooring is monotonic, so two back-to-back jobs on one
	// slot can never overlap after quantization even when the engine's
	// handoff gap is below a microsecond.
	runtime := float64(res.End.UnixMicro()-res.Start.UnixMicro()) / 1e6
	if runtime < 0 {
		runtime = 0
	}
	// Send is the stdin bytes actually delivered when the runner counted
	// them; runners that predate counting report the full input size,
	// matching GNU Parallel's transfer accounting.
	send := res.StdinSent
	if send == 0 {
		send = len(res.Job.Stdin)
	}
	fmt.Fprintf(w, "%d\t%s\t%.6f\t%9.6f\t%d\t%d\t%d\t%d\t%s\n",
		res.Job.Seq,
		host,
		float64(res.Start.UnixMicro())/1e6,
		runtime,
		send, len(res.Stdout),
		exitval, signal,
		res.Job.Command)
}

// JoblogEntry is one parsed joblog line.
type JoblogEntry struct {
	Seq     int
	Host    string
	Start   float64
	Runtime float64
	Exitval int
	Signal  int
	Command string
}

// ParseJoblog reads a joblog, tolerating and skipping the header line.
// Malformed lines — a tail torn mid-write by a crash, truncated fields,
// non-numeric columns — are skipped rather than fatal: a resume must
// never be blocked by the very crash it is resuming from, and skipping
// is safe because only fully parsed exit-0 entries feed CompletedSeqs
// (an unparseable completion is re-run, not lost). Only I/O errors from
// the reader are returned.
func ParseJoblog(r io.Reader) ([]JoblogEntry, error) {
	var out []JoblogEntry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "Seq\t") {
			continue
		}
		f := strings.SplitN(line, "\t", 9)
		if len(f) < 8 {
			continue
		}
		seq, err := strconv.Atoi(f[0])
		if err != nil || seq < 1 {
			continue
		}
		start, _ := strconv.ParseFloat(strings.TrimSpace(f[2]), 64)
		runtime, _ := strconv.ParseFloat(strings.TrimSpace(f[3]), 64)
		exitval, err := strconv.Atoi(strings.TrimSpace(f[6]))
		if err != nil {
			continue
		}
		sig, err := strconv.Atoi(strings.TrimSpace(f[7]))
		if err != nil {
			continue
		}
		e := JoblogEntry{
			Seq: seq, Host: f[1], Start: start, Runtime: runtime,
			Exitval: exitval, Signal: sig,
		}
		if len(f) == 9 {
			e.Command = f[8]
		}
		out = append(out, e)
	}
	return out, sc.Err()
}

// CompletedSeqs returns the set of seq numbers that finished successfully,
// suitable for Spec.ResumeFrom (GNU Parallel --resume semantics: only
// exit-0 jobs are skipped on rerun).
func CompletedSeqs(entries []JoblogEntry) map[int]bool {
	done := map[int]bool{}
	for _, e := range entries {
		if e.Exitval == 0 && e.Signal == 0 {
			done[e.Seq] = true
		}
	}
	return done
}
