//go:build linux

package core

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// groupAlive probes a process group: kill(-pgid, 0) says whether any
// member still exists; /proc distinguishes zombies awaiting reap (dead
// for leak purposes) from genuinely running members.
func groupAlive(pgid int) bool {
	if err := syscall.Kill(-pgid, 0); err != nil {
		return false // ESRCH: group is gone
	}
	procs, err := os.ReadDir("/proc")
	if err != nil {
		return true // can't refine; trust the signal probe
	}
	for _, d := range procs {
		pid, err := strconv.Atoi(d.Name())
		if err != nil {
			continue
		}
		stat, err := os.ReadFile(fmt.Sprintf("/proc/%d/stat", pid))
		if err != nil {
			continue
		}
		// Parse past the parenthesized comm (it may contain spaces).
		s := string(stat)
		i := strings.LastIndexByte(s, ')')
		if i < 0 {
			continue
		}
		fields := strings.Fields(s[i+1:])
		// fields[0] = state, fields[2] = pgrp.
		if len(fields) < 3 || fields[0] == "Z" {
			continue
		}
		if g, _ := strconv.Atoi(fields[2]); g == pgid {
			return true
		}
	}
	return false
}

// Regression test for the grandchild-process leak: a timed-out
// `sh -c 'sleep 999 & wait'` used to SIGKILL only the direct sh, leaving
// the backgrounded sleep running (and holding the stdout pipe). The
// process-group kill must take out the whole group.
func TestExecRunnerKillsProcessGroup(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	r := &ExecRunner{}
	start := time.Now()
	res := r.Run(ctx, &Job{Seq: 1, Command: "echo $$; sleep 999 & wait"})
	if res.OK() {
		t.Fatalf("timed-out job reported OK: %+v", res)
	}
	if el := time.Since(start); el > 10*time.Second {
		t.Fatalf("kill took %v; grandchild held the run open", el)
	}
	out := strings.TrimSpace(string(res.Stdout))
	pgid, err := strconv.Atoi(out)
	if err != nil || pgid <= 0 {
		t.Fatalf("could not read shell pid from stdout %q", out)
	}
	deadline := time.Now().Add(5 * time.Second)
	for groupAlive(pgid) {
		if time.Now().After(deadline) {
			t.Fatalf("process group %d still alive: grandchildren leaked", pgid)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// With a grace window the group first gets SIGTERM; a trap'ing child can
// exit cleanly before the SIGKILL escalation.
func TestExecRunnerTermGrace(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	r := &ExecRunner{TermGrace: 2 * time.Second}
	res := r.Run(ctx, &Job{Seq: 1, Command: `trap 'echo terminated; exit 43' TERM; sleep 999 & wait`})
	if res.OK() {
		t.Fatalf("cancelled job reported OK: %+v", res)
	}
	if got := strings.TrimSpace(string(res.Stdout)); got != "terminated" {
		t.Fatalf("trap did not run before kill; stdout = %q", got)
	}
}
