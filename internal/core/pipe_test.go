package core

import (
	"bytes"
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/args"
)

func TestPipeModeExec(t *testing.T) {
	// The classic --pipe demo: parallel line counting.
	// printf lines | gopar --pipe --block small 'wc -l'
	input := strings.Repeat("line\n", 100)
	s := mustSpec(t, "wc -l", 4)
	s.Pipe = true
	var buf bytes.Buffer
	s.Out = &buf
	stats, _ := run(t, s, &ExecRunner{}, args.Blocks(strings.NewReader(input), 64))
	if stats.Total < 2 {
		t.Fatalf("expected multiple blocks, got %d", stats.Total)
	}
	if stats.Failed != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	// Sum of per-block wc -l outputs must equal 100.
	total := 0
	for _, line := range strings.Fields(buf.String()) {
		n, err := strconv.Atoi(line)
		if err != nil {
			t.Fatalf("non-numeric wc output %q", line)
		}
		total += n
	}
	if total != 100 {
		t.Fatalf("total lines = %d, want 100", total)
	}
}

func TestPipeModeNoArgsAppended(t *testing.T) {
	var captured []string
	runner := FuncRunner(func(ctx context.Context, job *Job) ([]byte, error) {
		captured = append(captured, job.Command)
		if len(job.Args) != 0 {
			t.Errorf("pipe-mode job has args %v", job.Args)
		}
		if len(job.Stdin) == 0 {
			t.Error("pipe-mode job has empty stdin")
		}
		return nil, nil
	})
	s := mustSpec(t, "sort", 1)
	s.Pipe = true
	run(t, s, runner, args.Blocks(strings.NewReader("b\na\n"), 1024))
	if len(captured) != 1 || captured[0] != "sort" {
		t.Fatalf("commands = %v (no ' {}' must be appended in pipe mode)", captured)
	}
}

func TestPipeModePreservesAllContent(t *testing.T) {
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	var got []string
	runner := FuncRunner(func(ctx context.Context, job *Job) ([]byte, error) {
		<-mu
		got = append(got, string(job.Stdin))
		mu <- struct{}{}
		return nil, nil
	})
	var input strings.Builder
	for i := 0; i < 500; i++ {
		input.WriteString(strconv.Itoa(i) + "\n")
	}
	s := mustSpec(t, "", 4)
	s.Pipe = true
	run(t, s, runner, args.Blocks(strings.NewReader(input.String()), 128))
	var lines []int
	for _, block := range got {
		for _, l := range strings.Fields(block) {
			n, _ := strconv.Atoi(l)
			lines = append(lines, n)
		}
	}
	if len(lines) != 500 {
		t.Fatalf("lines across blocks = %d, want 500", len(lines))
	}
	sort.Ints(lines)
	for i, v := range lines {
		if v != i {
			t.Fatalf("line %d missing/duplicated", i)
		}
	}
}

func TestDelayStaggersStarts(t *testing.T) {
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	var starts []time.Time
	runner := FuncRunner(func(ctx context.Context, job *Job) ([]byte, error) {
		<-mu
		starts = append(starts, time.Now())
		mu <- struct{}{}
		return nil, nil
	})
	s := mustSpec(t, "", 4)
	s.Delay = 30 * time.Millisecond
	begin := time.Now()
	stats, _ := run(t, s, runner, args.Literal("a", "b", "c"))
	if stats.Succeeded != 3 {
		t.Fatalf("stats = %+v", stats)
	}
	// Three jobs with two 30ms gaps: total >= 60ms.
	if el := time.Since(begin); el < 55*time.Millisecond {
		t.Fatalf("run with delay finished in %v, want >= 60ms", el)
	}
}

func TestProgressReporting(t *testing.T) {
	var snaps []Progress
	runner := FuncRunner(func(ctx context.Context, job *Job) ([]byte, error) {
		time.Sleep(2 * time.Millisecond)
		if job.Seq == 2 {
			return nil, context.DeadlineExceeded
		}
		return nil, nil
	})
	s := mustSpec(t, "", 2)
	s.OnProgress = func(p Progress) { snaps = append(snaps, p) }
	run(t, s, runner, args.Literal("a", "b", "c", "d"))
	if len(snaps) != 4 {
		t.Fatalf("snapshots = %d, want one per completion", len(snaps))
	}
	last := snaps[len(snaps)-1]
	if last.Done != 4 || last.Failed != 1 || last.Running != 0 {
		t.Fatalf("final snapshot = %+v", last)
	}
	if !last.Final || last.Total != 4 {
		t.Fatalf("final totals = %+v", last)
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i].Done != snaps[i-1].Done+1 {
			t.Fatalf("done not monotone: %+v -> %+v", snaps[i-1], snaps[i])
		}
	}
}

func TestProgressString(t *testing.T) {
	p := Progress{Done: 3, Total: 10, Final: true, Running: 2, Failed: 1,
		Elapsed: 3 * time.Second, ETA: 7 * time.Second}
	s := p.String()
	for _, want := range []string{"3/10 done", "2 running", "1 failed", "ETA 7s"} {
		if !strings.Contains(s, want) {
			t.Fatalf("progress string %q missing %q", s, want)
		}
	}
	open := Progress{Done: 1, Total: 5, Final: false}
	if !strings.Contains(open.String(), "1/5+") {
		t.Fatalf("non-final total not marked: %q", open.String())
	}
	var buf bytes.Buffer
	RenderProgress(&buf, p)
	if !strings.Contains(buf.String(), "\r") {
		t.Fatal("RenderProgress missing carriage return")
	}
}

func TestResultsDir(t *testing.T) {
	dir := t.TempDir()
	runner := FuncRunner(func(ctx context.Context, job *Job) ([]byte, error) {
		if job.Args[0] == "bad" {
			return []byte("partial"), context.DeadlineExceeded
		}
		return []byte("out-" + job.Args[0]), nil
	})
	s := mustSpec(t, "", 2)
	s.ResultsDir = dir
	stats, _ := run(t, s, runner, args.Literal("x", "bad"))
	if stats.Done() != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	got, err := os.ReadFile(filepath.Join(dir, "1", "stdout"))
	if err != nil || string(got) != "out-x" {
		t.Fatalf("stdout file: %q, %v", got, err)
	}
	exitval, err := os.ReadFile(filepath.Join(dir, "2", "exitval"))
	if err != nil || strings.TrimSpace(string(exitval)) != "1" {
		t.Fatalf("exitval file: %q, %v", exitval, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "2", "stderr")); err != nil {
		t.Fatalf("stderr file missing: %v", err)
	}
}

func TestEngineStress50k(t *testing.T) {
	// High-volume sanity: 50k no-op jobs through 512 slots complete
	// with exact accounting and no goroutine leaks visible as hangs.
	if testing.Short() {
		t.Skip("stress test")
	}
	var count atomic.Int64
	runner := FuncRunner(func(ctx context.Context, job *Job) ([]byte, error) {
		count.Add(1)
		return nil, nil
	})
	s := mustSpec(t, "", 512)
	e, _ := NewEngine(s, runner)
	items := make([]string, 50_000)
	stats, _, err := e.Run(context.Background(), args.Literal(items...))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Succeeded != 50_000 || count.Load() != 50_000 {
		t.Fatalf("stats=%+v count=%d", stats, count.Load())
	}
	if stats.LaunchRate < 1000 {
		t.Fatalf("launch rate %.0f/s suspiciously low for no-op jobs", stats.LaunchRate)
	}
}

func TestTimeoutThenRetrySucceeds(t *testing.T) {
	// First attempt exceeds the timeout; the retry is fast and wins.
	var attempts atomic.Int64
	runner := FuncRunner(func(ctx context.Context, job *Job) ([]byte, error) {
		if attempts.Add(1) == 1 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(10 * time.Second):
			}
		}
		return []byte("ok"), nil
	})
	s := mustSpec(t, "", 1)
	s.Timeout = 30 * time.Millisecond
	s.Retries = 2
	s.CollectResults = true
	stats, results := run(t, s, runner, args.Literal("x"))
	if stats.Succeeded != 1 || stats.Retries != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if results[0].Attempts != 2 || results[0].TimedOut {
		t.Fatalf("result = %+v", results[0])
	}
}

func TestLoadGating(t *testing.T) {
	origRead, origPoll := readLoadAvg, loadPollInterval
	defer func() { readLoadAvg, loadPollInterval = origRead, origPoll }()
	loadPollInterval = 5 * time.Millisecond

	var load atomic.Value
	load.Store(10.0)
	readLoadAvg = func() (float64, error) { return load.Load().(float64), nil }
	// Drop below threshold after 50ms.
	go func() {
		time.Sleep(50 * time.Millisecond)
		load.Store(0.5)
	}()

	runner := FuncRunner(func(ctx context.Context, job *Job) ([]byte, error) {
		return nil, nil
	})
	s := mustSpec(t, "", 2)
	s.MaxLoad = 4.0
	begin := time.Now()
	stats, _ := run(t, s, runner, args.Literal("a", "b"))
	if stats.Succeeded != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if el := time.Since(begin); el < 40*time.Millisecond {
		t.Fatalf("run finished in %v; load gate did not hold dispatch", el)
	}
}

func TestLoadGatingDisabledOnReadError(t *testing.T) {
	origRead := readLoadAvg
	defer func() { readLoadAvg = origRead }()
	readLoadAvg = func() (float64, error) { return 0, os.ErrNotExist }

	runner := FuncRunner(func(ctx context.Context, job *Job) ([]byte, error) {
		return nil, nil
	})
	s := mustSpec(t, "", 2)
	s.MaxLoad = 0.0001 // would gate forever if errors stalled
	begin := time.Now()
	stats, _ := run(t, s, runner, args.Literal("a"))
	if stats.Succeeded != 1 || time.Since(begin) > 5*time.Second {
		t.Fatalf("stats=%+v; unreadable loadavg must disable gating", stats)
	}
}

// TestKeepOrderEmissionProperty drives the keep-order reorder heap with
// randomized completion orders: whatever order the jobs finish in, the
// engine must emit results exactly seq-sorted, covering every job
// exactly once — the same set a keep-order-off run would produce.
func TestKeepOrderEmissionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(0x9e3779b9))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(14)
		// rank[seq] is the completion position forced on job seq; every
		// job runs concurrently (Jobs = n) and spins until its turn.
		perm := rng.Perm(n)
		rank := make([]int64, n+1)
		for pos, idx := range perm {
			rank[idx+1] = int64(pos)
		}
		var completed atomic.Int64
		runner := FuncRunner(func(ctx context.Context, job *Job) ([]byte, error) {
			for completed.Load() != rank[job.Seq] {
				runtime.Gosched()
			}
			out := []byte(strconv.Itoa(job.Seq))
			completed.Add(1)
			return out, nil
		})
		s := mustSpec(t, "", n)
		s.Template = nil
		s.KeepOrder = true
		var emitted []int
		s.OnResult = func(res Result) { emitted = append(emitted, res.Job.Seq) }
		items := make([]string, n)
		stats, _ := run(t, s, runner, args.Literal(items...))
		if stats.Succeeded != n {
			t.Fatalf("trial %d (perm %v): stats = %+v", trial, perm, stats)
		}
		if len(emitted) != n {
			t.Fatalf("trial %d (perm %v): emitted %d results, want %d", trial, perm, len(emitted), n)
		}
		for i, seq := range emitted {
			if seq != i+1 {
				t.Fatalf("trial %d (perm %v): emission order %v not seq-sorted", trial, perm, emitted)
			}
		}
	}
}

// TestResultHeapProperty fuzzes the reorder heap directly: any push
// order must pop back fully seq-sorted.
func TestResultHeapProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(60)
		var h resultHeap
		seqs := rng.Perm(n)
		for _, s := range seqs {
			h.push(Result{Job: Job{Seq: s + 1}})
		}
		for want := 1; want <= n; want++ {
			if got := h.pop().Job.Seq; got != want {
				t.Fatalf("trial %d: popped %d, want %d (input %v)", trial, got, want, seqs)
			}
		}
		if len(h) != 0 {
			t.Fatalf("trial %d: heap not drained: %d left", trial, len(h))
		}
	}
}
