package core

import (
	"bytes"
	"context"
	"errors"
	"os"
	"os/exec"
	"time"

	"repro/internal/shell"
)

// Runner executes a single job attempt. Implementations must be safe for
// concurrent use by multiple goroutines.
type Runner interface {
	Run(ctx context.Context, job *Job) Result
}

// FuncRunner adapts an in-process Go payload to the Runner interface. The
// function receives the job and returns stdout bytes and an error; exit
// code is derived (0 on nil error, 1 otherwise).
type FuncRunner func(ctx context.Context, job *Job) ([]byte, error)

// Run implements Runner.
func (f FuncRunner) Run(ctx context.Context, job *Job) Result {
	start := time.Now()
	out, err := f(ctx, job)
	res := Result{
		Job:    *job,
		Stdout: out,
		Start:  start,
		End:    time.Now(),
	}
	if err != nil {
		res.Err = err
		res.ExitCode = 1
	}
	return res
}

// ExecRunner runs jobs as real OS processes. Commands without shell
// metacharacters are exec'd directly (no /bin/sh fork — the fast path that
// keeps dispatch overhead low); anything needing expansion goes through
// "sh -c".
type ExecRunner struct {
	// Dir is the working directory for jobs ("" = inherit).
	Dir string
	// Shell overrides the shell binary (default "/bin/sh").
	Shell string
	// ForceShell routes every command through the shell, disabling the
	// direct-exec fast path.
	ForceShell bool
	// TermGrace is the window between SIGTERM and SIGKILL when an
	// attempt is cancelled or times out: the whole process group first
	// gets SIGTERM (a chance to clean up scratch files), then SIGKILL
	// after TermGrace. 0 sends SIGKILL immediately. Either way the kill
	// targets the job's process group, so `sh -c 'work & wait'`
	// grandchildren die with the job instead of leaking.
	TermGrace time.Duration
}

// errNoCommand reports an empty rendered command line.
var errNoCommand = errors.New("core: empty command")

// Run implements Runner.
func (r *ExecRunner) Run(ctx context.Context, job *Job) Result {
	res := Result{Job: *job, ExitCode: -1, Start: time.Now()}

	argv, err := r.argv(job.Command)
	if err != nil {
		res.Err = err
		res.End = time.Now()
		return res
	}

	cmd := exec.CommandContext(ctx, argv[0], argv[1:]...)
	cmd.Dir = r.Dir
	if len(job.Env) > 0 {
		cmd.Env = append(os.Environ(), job.Env...)
	}
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if len(job.Stdin) > 0 {
		cmd.Stdin = bytes.NewReader(job.Stdin)
	}
	// Run the job in its own process group and, on cancellation, signal
	// the group rather than just the direct child. WaitDelay guarantees
	// Wait returns even when a surviving grandchild holds the stdout
	// pipe open (Go then closes the pipes and kills the direct child).
	setProcGroup(cmd)
	cmd.Cancel = func() error { return terminateGroup(cmd, r.TermGrace) }
	cmd.WaitDelay = r.TermGrace + 2*time.Second

	res.Start = time.Now()
	err = cmd.Run()
	res.End = time.Now()
	if ctx.Err() != nil {
		// Sweep group members that survived SIGTERM + grace (or that
		// were forked between signal and exit).
		killGroup(cmd)
	}
	res.Stdout = stdout.Bytes()
	res.Stderr = stderr.Bytes()

	switch e := err.(type) {
	case nil:
		res.ExitCode = 0
	case *exec.ExitError:
		res.ExitCode = e.ExitCode()
	default:
		res.Err = err
	}
	if ctx.Err() != nil && res.ExitCode != 0 {
		res.Err = ctx.Err()
	}
	return res
}

func (r *ExecRunner) argv(command string) ([]string, error) {
	if command == "" {
		return nil, errNoCommand
	}
	sh := r.Shell
	if sh == "" {
		sh = "/bin/sh"
	}
	if r.ForceShell || shell.NeedsShell(command) {
		return []string{sh, "-c", command}, nil
	}
	words, err := shell.Split(command)
	if err != nil || len(words) == 0 {
		// Let the shell produce the diagnostic.
		return []string{sh, "-c", command}, nil
	}
	return words, nil
}
