package core

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"os/exec"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/shell"
)

// Runner executes a single job attempt. Implementations must be safe for
// concurrent use by multiple goroutines.
type Runner interface {
	Run(ctx context.Context, job *Job) Result
}

// FuncRunner adapts an in-process Go payload to the Runner interface. The
// function receives the job and returns stdout bytes and an error; exit
// code is derived (0 on nil error, 1 otherwise).
type FuncRunner func(ctx context.Context, job *Job) ([]byte, error)

// Run implements Runner.
func (f FuncRunner) Run(ctx context.Context, job *Job) Result {
	start := time.Now()
	out, err := f(ctx, job)
	res := Result{
		Job:    *job,
		Stdout: out,
		Start:  start,
		End:    time.Now(),
	}
	if err != nil {
		res.Err = err
		res.ExitCode = 1
	}
	return res
}

// ExecRunner runs jobs as real OS processes. Commands without shell
// metacharacters are exec'd directly (no /bin/sh fork — the fast path that
// keeps dispatch overhead low); anything needing expansion goes through
// "sh -c".
type ExecRunner struct {
	// Dir is the working directory for jobs ("" = inherit).
	Dir string
	// Shell overrides the shell binary (default "/bin/sh").
	Shell string
	// ForceShell routes every command through the shell, disabling the
	// direct-exec fast path.
	ForceShell bool
	// DiscardOutput wires child stdout/stderr straight to a shared
	// /dev/null descriptor instead of capture buffers. Fire-and-forget
	// workloads skip both the capture allocation and the per-process
	// open of /dev/null that os/exec performs for nil streams.
	DiscardOutput bool
	// TermGrace is the window between SIGTERM and SIGKILL when an
	// attempt is cancelled or times out: the whole process group first
	// gets SIGTERM (a chance to clean up scratch files), then SIGKILL
	// after TermGrace. 0 sends SIGKILL immediately. Either way the kill
	// targets the job's process group, so `sh -c 'work & wait'`
	// grandchildren die with the job instead of leaking.
	TermGrace time.Duration

	// lastArgv memoizes the most recent command→argv split. Job command
	// lines frequently repeat verbatim (fixed commands, retries, {}-less
	// templates), and a single-entry memo makes the repeat case free
	// without a growing cache. The argv slice is shared read-only:
	// exec.Command copies it before mutating anything.
	lastArgv atomic.Pointer[argvMemo]

	// envOnce/baseEnv cache os.Environ once per runner; every job append
	// re-copies (the cap is pinned to the length), so the shared base is
	// never mutated. Process-env changes made after the first job are
	// deliberately not observed.
	envOnce sync.Once
	baseEnv []string
}

type argvMemo struct {
	command string
	argv    []string
}

// countingReader counts bytes drained from the job's stdin source — the
// joblog Send column. The count is atomic because os/exec copies a
// non-file stdin on its own goroutine, which WaitDelay may abandon
// still running after Run returns.
type countingReader struct {
	r io.Reader
	n atomic.Int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(int64(n))
	return n, err
}

func (r *ExecRunner) environ() []string {
	r.envOnce.Do(func() {
		e := os.Environ()
		r.baseEnv = e[:len(e):len(e)]
	})
	return r.baseEnv
}

// outBufPool recycles capture buffers across job attempts. Buffers that
// grew beyond maxPooledBuf are dropped so one huge output cannot pin
// memory for the rest of the run.
var outBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

const maxPooledBuf = 1 << 20

func putOutBuf(b *bytes.Buffer) {
	if b.Cap() <= maxPooledBuf {
		b.Reset()
		outBufPool.Put(b)
	}
}

// devNullFile returns a process-wide shared read/write /dev/null
// descriptor, nil if it cannot be opened (callers then fall back to
// os/exec's own per-process handling).
func devNullFile() *os.File {
	devNullOnce.Do(func() { devNull, _ = os.OpenFile(os.DevNull, os.O_RDWR, 0) })
	return devNull
}

var (
	devNullOnce sync.Once
	devNull     *os.File
)

// errNoCommand reports an empty rendered command line.
var errNoCommand = errors.New("core: empty command")

// Run implements Runner.
func (r *ExecRunner) Run(ctx context.Context, job *Job) Result {
	res := Result{Job: *job, ExitCode: -1, Start: time.Now()}

	argv, err := r.argv(job.Command)
	if err != nil {
		res.Err = err
		res.End = time.Now()
		return res
	}

	cmd := exec.CommandContext(ctx, argv[0], argv[1:]...)
	cmd.Dir = r.Dir
	if len(job.Env) > 0 {
		// environ() caps the cached slice at its length, so this append
		// always copies instead of racing other jobs over one backing
		// array.
		cmd.Env = append(r.environ(), job.Env...)
	}
	var stdout, stderr *bytes.Buffer
	if r.DiscardOutput {
		if f := devNullFile(); f != nil {
			cmd.Stdout = f
			cmd.Stderr = f
		}
	} else {
		stdout = outBufPool.Get().(*bytes.Buffer)
		stderr = outBufPool.Get().(*bytes.Buffer)
		defer putOutBuf(stdout)
		defer putOutBuf(stderr)
		cmd.Stdout = stdout
		cmd.Stderr = stderr
	}
	var stdinCount *countingReader
	if len(job.Stdin) > 0 {
		stdinCount = &countingReader{r: bytes.NewReader(job.Stdin)}
		cmd.Stdin = stdinCount
	}
	// Run the job in its own process group and, on cancellation, signal
	// the group rather than just the direct child. WaitDelay guarantees
	// Wait returns even when a surviving grandchild holds the stdout
	// pipe open (Go then closes the pipes and kills the direct child).
	setProcGroup(cmd)
	cmd.Cancel = func() error { return terminateGroup(cmd, r.TermGrace) }
	cmd.WaitDelay = r.TermGrace + 2*time.Second

	res.Start = time.Now()
	err = cmd.Run()
	res.End = time.Now()
	if ctx.Err() != nil {
		// Sweep group members that survived SIGTERM + grace (or that
		// were forked between signal and exit).
		killGroup(cmd)
	}
	// Copy captured output out of the pooled buffers; empty output (the
	// common fire-and-forget case) costs nothing.
	if stdout != nil && stdout.Len() > 0 {
		res.Stdout = append([]byte(nil), stdout.Bytes()...)
	}
	if stderr != nil && stderr.Len() > 0 {
		res.Stderr = append([]byte(nil), stderr.Bytes()...)
	}
	if stdinCount != nil {
		res.StdinSent = int(stdinCount.n.Load())
	}

	switch e := err.(type) {
	case nil:
		res.ExitCode = 0
	case *exec.ExitError:
		res.ExitCode = e.ExitCode()
	default:
		res.Err = err
	}
	if ctx.Err() != nil && res.ExitCode != 0 {
		res.Err = ctx.Err()
	}
	return res
}

func (r *ExecRunner) argv(command string) ([]string, error) {
	if command == "" {
		return nil, errNoCommand
	}
	if m := r.lastArgv.Load(); m != nil && m.command == command {
		return m.argv, nil
	}
	sh := r.Shell
	if sh == "" {
		sh = "/bin/sh"
	}
	var words []string
	if r.ForceShell || shell.NeedsShell(command) {
		words = []string{sh, "-c", command}
	} else if split, err := shell.Split(command); err == nil && len(split) > 0 {
		words = split
	} else {
		// Let the shell produce the diagnostic.
		words = []string{sh, "-c", command}
	}
	r.lastArgv.Store(&argvMemo{command: command, argv: words})
	return words, nil
}
