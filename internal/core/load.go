package core

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Load gating (GNU Parallel's --load): when Spec.MaxLoad > 0, the
// dispatcher pauses launching new jobs while the system 1-minute load
// average is at or above the threshold, protecting shared login/DTN
// nodes from launcher-induced overload.

// readLoadAvg returns the 1-minute load average. Overridable for tests
// and non-Linux platforms.
var readLoadAvg = readProcLoadAvg

// loadPollInterval is how often a gated dispatcher rechecks.
var loadPollInterval = 200 * time.Millisecond

func readProcLoadAvg() (float64, error) {
	data, err := os.ReadFile("/proc/loadavg")
	if err != nil {
		return 0, err
	}
	fields := strings.Fields(string(data))
	if len(fields) < 1 {
		return 0, fmt.Errorf("core: malformed /proc/loadavg %q", data)
	}
	return strconv.ParseFloat(fields[0], 64)
}

// waitForLoad blocks until the load average drops below max or the stop
// channel closes. Errors reading the load (non-Linux, missing /proc)
// disable gating rather than stalling the run.
func waitForLoad(max float64, stop <-chan struct{}) {
	for {
		load, err := readLoadAvg()
		if err != nil || load < max {
			return
		}
		select {
		case <-stop:
			return
		case <-time.After(loadPollInterval):
		}
	}
}
