package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/args"
	"repro/internal/tmpl"
)

// Engine executes jobs from an input source across a fixed pool of slots
// using greedy dispatch: the moment a slot frees, the next job starts.
// This is the execution model whose per-task overhead the paper measures.
type Engine struct {
	spec   *Spec
	runner Runner
}

// NewEngine pairs a Spec with a Runner. A nil runner defaults to
// ExecRunner (real processes). Malformed Spec knobs (negative
// timeouts/retries, a backoff cap below its base...) are rejected here
// with descriptive errors rather than silently clamped.
func NewEngine(spec *Spec, runner Runner) (*Engine, error) {
	if spec == nil {
		return nil, fmt.Errorf("core: nil spec")
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if runner == nil {
		runner = &ExecRunner{}
	}
	return &Engine{spec: spec, runner: runner}, nil
}

// Run consumes src until exhaustion (or halt/cancel), executing jobs in
// parallel. It returns aggregate statistics, collected results when
// Spec.CollectResults is set, and an error for input failures or context
// cancellation. Per-job failures are reported via Stats/results, not the
// error return.
func (e *Engine) Run(ctx context.Context, src args.Source) (Stats, []Result, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	s := e.spec
	template := s.effectiveTemplate()

	type renderedJob struct {
		job *Job
		err error
	}
	jobs := make(chan renderedJob)
	results := make(chan Result)
	slots := make(chan int, s.Jobs)
	for i := 1; i <= s.Jobs; i++ {
		slots <- i
	}

	var (
		haltSoon  atomic.Bool
		inputErr  error
		skipped   atomic.Int64
		total     atomic.Int64
		started   atomic.Int64
		inputDone atomic.Bool
		// totalFinal reports that total is the true job count (the
		// input is exhausted or was spooled) — required before a
		// percentage halt may fire.
		totalFinal atomic.Bool
		wallStart  = time.Now()
	)
	var tracker *progressTracker
	if s.OnProgress != nil {
		tracker = newProgressTracker(func() (int, bool) {
			return int(total.Load()), inputDone.Load()
		})
	}

	// Input goroutine: pull records, assign seqs, render templates.
	go func() {
		defer inputDone.Store(true)
		defer totalFinal.Store(true)
		defer close(jobs)
		next := cancellableNext(ctx, src)
		if s.Halt.Percent > 0 {
			// A percentage halt needs the true job total before it can
			// fire; mirror GNU Parallel, which reads the whole input
			// when --halt ...% is given (O(total) memory, like GNU).
			var all [][]string
			for {
				rec, err := next()
				if err == io.EOF {
					break
				}
				if err != nil {
					inputErr = err
					return
				}
				all = append(all, rec)
			}
			total.Store(int64(len(all)))
			totalFinal.Store(true)
			i := 0
			next = func() ([]string, error) {
				if i >= len(all) {
					return nil, io.EOF
				}
				i++
				return all[i-1], nil
			}
			// Spooled records never handed to the dispatcher (halt fired
			// first) still belong in the skipped accounting.
			defer func() { skipped.Add(int64(len(all) - i)) }()
		}
		seq := 0
		for {
			if ctx.Err() != nil || haltSoon.Load() {
				return
			}
			rec, err := next()
			if err == io.EOF {
				return
			}
			if err != nil {
				inputErr = err
				return
			}
			seq++
			if !totalFinal.Load() {
				total.Add(1)
			}
			if s.ResumeFrom[seq] {
				skipped.Add(1)
				continue
			}
			job := &Job{Seq: seq, Args: rec}
			if s.Pipe {
				// Pipe mode: the record is stdin, not argv.
				job.Args = nil
				if len(rec) > 0 {
					job.Stdin = []byte(rec[0])
				}
			}
			var renderDur time.Duration
			if template != nil {
				renderStart := time.Now()
				cmd, rerr := template.Render(tmpl.Context{Args: job.Args, Seq: seq, Slot: 0})
				renderDur = time.Since(renderStart)
				if rerr != nil {
					select {
					case jobs <- renderedJob{err: rerr}:
					case <-ctx.Done():
					}
					return
				}
				job.Command = cmd
			}
			if s.OnEvent != nil {
				s.OnEvent(Event{Type: EventQueued, Seq: seq, Time: time.Now(),
					Command: job.Command, Render: renderDur})
			}
			select {
			case jobs <- renderedJob{job: job}:
			case <-ctx.Done():
				return
			}
		}
	}()

	// Dispatcher: greedy slot refill.
	var wg sync.WaitGroup
	go func() {
		defer func() {
			wg.Wait()
			close(results)
		}()
		for rj := range jobs {
			if rj.err != nil {
				inputErr = rj.err
				return
			}
			if haltSoon.Load() {
				skipped.Add(1)
				continue
			}
			job := rj.job
			if s.MaxLoad > 0 {
				waitForLoad(s.MaxLoad, ctx.Done())
			}
			if s.Delay > 0 && started.Load() > 0 {
				select {
				case <-time.After(s.Delay):
				case <-ctx.Done():
					skipped.Add(1)
					continue
				}
			}
			var slot int
			select {
			case slot = <-slots:
			case <-ctx.Done():
				skipped.Add(1)
				continue
			}
			// DispatchDelay: from slot acquisition to the attempt
			// starting — the engine's own per-task overhead.
			dispatchStart := time.Now()
			job.Slot = slot
			e.bindSlot(job, template)
			started.Add(1)
			if tracker != nil {
				tracker.jobStarted()
			}
			if s.OnEvent != nil {
				s.OnEvent(Event{Type: EventStarted, Seq: job.Seq, Slot: slot, Attempt: 1,
					Time: dispatchStart, Command: job.Command})
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				res := e.runJob(ctx, job)
				if !res.Start.IsZero() && res.Start.After(dispatchStart) && res.Attempts == 1 {
					res.DispatchDelay = res.Start.Sub(dispatchStart)
				}
				// The collector drains until close(results), so this
				// send cannot block indefinitely.
				results <- res
				slots <- slot
			}()
		}
	}()

	// Collector: ordering, output, joblog, halt decisions, stats.
	stats := Stats{}
	var collected []Result
	var firstStart, lastEnd time.Time
	var dispatchSum time.Duration
	var dispatchN int64

	pending := map[int]Result{}
	nextSeq := 1
	var resultsDirErr error
	flush := func(res Result) {
		e.emitOutput(res)
		if s.ResultsDir != "" && !res.DryRun {
			if werr := writeResultFiles(s.ResultsDir, res); werr != nil && resultsDirErr == nil {
				resultsDirErr = werr
			}
		}
		if s.Joblog != nil {
			WriteJoblogLine(s.Joblog, res)
		}
		if s.OnResult != nil {
			s.OnResult(res)
		}
		if s.CollectResults {
			collected = append(collected, res)
		}
	}

	for res := range results {
		if s.OnEvent != nil {
			typ := EventFinished
			if res.TimedOut || errors.Is(res.Err, context.Canceled) {
				typ = EventKilled
			}
			s.OnEvent(Event{Type: typ, Seq: res.Job.Seq, Slot: res.Job.Slot,
				Attempt: res.Attempts, Time: time.Now(), Command: res.Job.Command,
				OK: res.OK(), ExitCode: res.ExitCode, Host: res.Host,
				Duration: res.Duration(), DispatchDelay: res.DispatchDelay,
				End: res.End, WorkerDispatch: res.WorkerDispatch})
		}
		if res.OK() {
			stats.Succeeded++
		} else {
			stats.Failed++
		}
		if tracker != nil {
			s.OnProgress(tracker.jobFinished(res.OK()))
		}
		stats.Retries += res.Attempts - 1
		if !res.DryRun {
			if firstStart.IsZero() || res.Start.Before(firstStart) {
				firstStart = res.Start
			}
			if res.End.After(lastEnd) {
				lastEnd = res.End
			}
			dispatchSum += res.DispatchDelay
			dispatchN++
		}
		if s.Halt.Triggered(stats.Succeeded, stats.Failed, int(total.Load()), totalFinal.Load()) {
			haltSoon.Store(true)
			if s.Halt.When == HaltNow {
				cancel()
			}
		}
		if !s.KeepOrder {
			flush(res)
			continue
		}
		pending[res.Job.Seq] = res
		for {
			if s.ResumeFrom[nextSeq] {
				nextSeq++
				continue
			}
			r, ok := pending[nextSeq]
			if !ok {
				break
			}
			delete(pending, nextSeq)
			flush(r)
			nextSeq++
		}
	}
	// Flush any keep-order stragglers (halt can leave gaps).
	if s.KeepOrder && len(pending) > 0 {
		seqs := make([]int, 0, len(pending))
		for k := range pending {
			seqs = append(seqs, k)
		}
		sortInts(seqs)
		for _, k := range seqs {
			flush(pending[k])
		}
	}

	stats.Total = int(total.Load())
	stats.Skipped = int(skipped.Load())
	stats.Wall = time.Since(wallStart)
	if !firstStart.IsZero() {
		stats.Makespan = lastEnd.Sub(firstStart)
	}
	if dispatchN > 0 {
		stats.AvgDispatchDelay = dispatchSum / time.Duration(dispatchN)
	}
	if stats.Wall > 0 {
		stats.LaunchRate = float64(started.Load()) / stats.Wall.Seconds()
	}
	stats.InputErr = inputErr

	var err error
	switch {
	case inputErr != nil:
		err = fmt.Errorf("core: input source failed: %w", inputErr)
	case ctx.Err() != nil && s.Halt.When != HaltNow:
		err = ctx.Err()
	case resultsDirErr != nil:
		err = fmt.Errorf("core: writing results dir: %w", resultsDirErr)
	}
	return stats, collected, err
}

// cancellableNext pulls source records on a dedicated goroutine so a
// source stuck in a blocking read — an open stdin with no more input,
// say — cannot keep Run from returning once the context is cancelled.
// SIGINT/SIGTERM handling depends on this: the run must unwind and
// flush its joblog and telemetry sinks even though the stdin read can
// never be interrupted. Cancellation reads as end-of-input here; Run's
// own ctx.Err() check reports the cancellation. The abandoned reader
// goroutine is released when the source next yields or, failing that,
// dies with the process.
func cancellableNext(ctx context.Context, src args.Source) func() ([]string, error) {
	type pulled struct {
		rec []string
		err error
	}
	ch := make(chan pulled)
	go func() {
		for {
			rec, err := src.Next()
			select {
			case ch <- pulled{rec, err}:
			case <-ctx.Done():
				return
			}
			if err != nil {
				return
			}
		}
	}()
	return func() ([]string, error) {
		select {
		case p := <-ch:
			return p.rec, p.err
		case <-ctx.Done():
			return nil, io.EOF
		}
	}
}

// writeResultFiles persists one job's outcome under dir/<seq>/.
func writeResultFiles(dir string, res Result) error {
	jobDir := filepath.Join(dir, strconv.Itoa(res.Job.Seq))
	if err := os.MkdirAll(jobDir, 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(jobDir, "stdout"), res.Stdout, 0o644); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(jobDir, "stderr"), res.Stderr, 0o644); err != nil {
		return err
	}
	exit := fmt.Sprintf("%d\n", res.ExitCode)
	return os.WriteFile(filepath.Join(jobDir, "exitval"), []byte(exit), 0o644)
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// bindSlot applies slot-dependent rendering: {%} in the template and
// SlotEnv/env wiring.
func (e *Engine) bindSlot(job *Job, template *tmpl.Template) {
	s := e.spec
	if template != nil && template.HasSlotPlaceholder() {
		// Re-render now that the slot is known.
		cmd, err := template.Render(tmpl.Context{Args: job.Args, Seq: job.Seq, Slot: job.Slot})
		if err == nil {
			job.Command = cmd
		}
	}
	job.Env = append(append([]string(nil), s.Env...), job.Env...)
	if s.SlotEnv != nil {
		job.Env = append(job.Env, s.SlotEnv(job.Slot)...)
	}
}

// runJob executes one job with dry-run, timeout and retry handling.
func (e *Engine) runJob(ctx context.Context, job *Job) Result {
	s := e.spec
	if s.DryRun {
		now := time.Now()
		return Result{Job: *job, DryRun: true, Attempts: 1, Start: now, End: now}
	}
	tries := s.Retries
	if tries < 1 {
		tries = 1
	}
	var res Result
	for attempt := 1; ; attempt++ {
		runCtx := ctx
		var cancel context.CancelFunc
		if s.Timeout > 0 {
			runCtx, cancel = context.WithTimeout(ctx, s.Timeout)
		}
		res = e.runner.Run(runCtx, job)
		timedOut := s.Timeout > 0 && runCtx.Err() == context.DeadlineExceeded
		if cancel != nil {
			cancel()
		}
		res.Attempts = attempt
		res.TimedOut = timedOut
		if timedOut && res.Err == nil {
			res.Err = context.DeadlineExceeded
		}
		if res.OK() || ctx.Err() != nil || attempt >= tries {
			break
		}
		if s.RetryOn != nil && !s.RetryOn(res) {
			break
		}
		if s.OnEvent != nil {
			s.OnEvent(Event{Type: EventRetried, Seq: job.Seq, Slot: job.Slot,
				Attempt: attempt + 1, Time: time.Now(), Command: job.Command})
		}
		// Backoff holds the slot, like a still-running job would; a
		// cancelled run abandons the remaining attempts.
		if d := s.RetryBackoff.Delay(job.Seq, attempt); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return res
			}
		}
	}
	return res
}

// emitOutput writes a result's grouped output to the spec writers,
// applying --tag prefixes if configured.
func (e *Engine) emitOutput(res Result) {
	s := e.spec
	if res.DryRun {
		if s.Out != nil {
			fmt.Fprintln(s.Out, res.Job.Command)
		}
		return
	}
	writeGrouped(s.Out, res.Stdout, s.Tag, res.Job)
	writeGrouped(s.Errout, res.Stderr, s.Tag, res.Job)
}

func writeGrouped(w io.Writer, data []byte, tag bool, job Job) {
	if w == nil || len(data) == 0 {
		return
	}
	if !tag {
		w.Write(data)
		return
	}
	prefix := ""
	if len(job.Args) > 0 {
		prefix = job.Args[0]
	}
	for _, line := range bytes.SplitAfter(data, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		fmt.Fprintf(w, "%s\t%s", prefix, line)
	}
}
