package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/args"
	"repro/internal/tmpl"
	"repro/internal/wal"
)

// Engine executes jobs from an input source across a fixed pool of slots
// using greedy dispatch: the moment a slot frees, the next job starts.
// This is the execution model whose per-task overhead the paper measures.
//
// The hot path is a staged pipeline over buffered channels — input →
// render workers → per-slot dispatch workers → collector — sized so that
// no single goroutine serializes throughput and the steady-state cost
// per job is a handful of channel operations and at most a few small
// allocations (see DESIGN.md "Performance" for the budget).
type Engine struct {
	spec   *Spec
	runner Runner
}

// NewEngine pairs a Spec with a Runner. A nil runner defaults to
// ExecRunner (real processes). Malformed Spec knobs (negative
// timeouts/retries, a backoff cap below its base...) are rejected here
// with descriptive errors rather than silently clamped.
func NewEngine(spec *Spec, runner Runner) (*Engine, error) {
	if spec == nil {
		return nil, fmt.Errorf("core: nil spec")
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if runner == nil {
		runner = &ExecRunner{}
	}
	return &Engine{spec: spec, runner: runner}, nil
}

// jobPool recycles Job structs across the run pipeline. A *Job handed to
// a Runner is only valid for the duration of that Run call: the engine
// copies it into the Result and reuses the struct for a later job.
var jobPool = sync.Pool{New: func() any { return new(Job) }}

func getJob(seq int, rec []string) *Job {
	j := jobPool.Get().(*Job)
	*j = Job{Seq: seq, Args: rec}
	return j
}

func putJob(j *Job) {
	*j = Job{}
	jobPool.Put(j)
}

// runState carries the shared coordination state of one Run call between
// its pipeline stages.
type runState struct {
	e        *Engine
	s        *Spec
	ctx      context.Context
	cancel   context.CancelFunc
	template *tmpl.Template

	// jobs delivers rendered jobs to the dispatch workers; results
	// returns their outcomes to the collector. Both are buffered so
	// stages decouple instead of hand-shaking on every job.
	jobs    chan *Job
	results chan Result
	// stopInput is closed by the render merger on a render error so the
	// input goroutine stops producing.
	stopInput chan struct{}

	haltSoon   atomic.Bool
	skipped    atomic.Int64
	total      atomic.Int64
	started    atomic.Int64
	inputDone  atomic.Bool
	totalFinal atomic.Bool

	inputErr error
	errOnce  sync.Once

	walErr     error
	walErrOnce sync.Once

	tracker *progressTracker
}

func (rs *runState) setInputErr(err error) {
	rs.errOnce.Do(func() { rs.inputErr = err })
}

func (rs *runState) setWalErr(err error) {
	rs.walErrOnce.Do(func() { rs.walErr = err })
}

// queueDepth sizes the inter-stage buffers: deep enough that stages run
// decoupled, bounded so a slow consumer cannot buffer unbounded input.
func queueDepth(jobs int) int {
	d := 4 * jobs
	if d < 64 {
		d = 64
	}
	if d > 1024 {
		d = 1024
	}
	return d
}

// renderWorkerCount sizes the render stage: a few workers keep template
// rendering off the input goroutine's critical path without spawning a
// second full worker pool.
func renderWorkerCount() int {
	n := runtime.GOMAXPROCS(0) / 2
	if n < 1 {
		n = 1
	}
	if n > 4 {
		n = 4
	}
	return n
}

// Run consumes src until exhaustion (or halt/cancel), executing jobs in
// parallel. It returns aggregate statistics, collected results when
// Spec.CollectResults is set, and an error for input failures or context
// cancellation. Per-job failures are reported via Stats/results, not the
// error return.
func (e *Engine) Run(ctx context.Context, src args.Source) (Stats, []Result, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	s := e.spec
	depth := queueDepth(s.Jobs)
	rs := &runState{
		e:         e,
		s:         s,
		ctx:       ctx,
		cancel:    cancel,
		template:  s.effectiveTemplate(),
		jobs:      make(chan *Job, depth),
		results:   make(chan Result, depth),
		stopInput: make(chan struct{}),
	}
	wallStart := time.Now()
	if s.OnProgress != nil {
		rs.tracker = newProgressTracker(func() (int, bool) {
			return int(rs.total.Load()), rs.inputDone.Load()
		})
	}

	rs.startInput(src)
	rs.startWorkers()
	stats, collected, flushErr := rs.collect(wallStart)

	var err error
	switch {
	case rs.walErr != nil:
		err = fmt.Errorf("core: write-ahead log: %w", rs.walErr)
	case rs.inputErr != nil:
		err = fmt.Errorf("core: input source failed: %w", rs.inputErr)
	case ctx.Err() != nil && s.Halt.When != HaltNow:
		err = ctx.Err()
	case flushErr != nil:
		err = fmt.Errorf("core: writing results dir: %w", flushErr)
	}
	return stats, collected, err
}

// startInput launches the input goroutine (record pull, seq assignment,
// resume skipping, percentage-halt spooling) and, when a template is
// configured, the render worker stage between it and the jobs channel.
func (rs *runState) startInput(src args.Source) {
	s := rs.s

	// sink is where the input goroutine delivers jobs. Without a
	// template that is the jobs channel itself; with one it is the
	// render stage's sharded entry.
	var forward func(job *Job) bool
	var closeSink func()

	if rs.template == nil {
		forward = func(job *Job) bool {
			if s.OnEvent != nil {
				s.OnEvent(Event{Type: EventQueued, Seq: job.Seq, Time: time.Now(),
					Command: job.Command})
			}
			select {
			case rs.jobs <- job:
				return true
			case <-rs.ctx.Done():
				putJob(job)
				return false
			}
		}
		closeSink = func() { close(rs.jobs) }
	} else {
		forward, closeSink = rs.startRenderStage()
	}

	go func() {
		defer rs.inputDone.Store(true)
		defer rs.totalFinal.Store(true)
		defer closeSink()
		next := cancellableNext(rs.ctx, src)
		if s.Halt.Percent > 0 {
			// A percentage halt needs the true job total before it can
			// fire; mirror GNU Parallel, which reads the whole input
			// when --halt ...% is given. The spool arena keeps this at
			// O(total input bytes) with two flat slices rather than one
			// allocation per record (Spec.Halt documents the memory
			// behavior).
			var spool recordSpool
			for {
				rec, err := next()
				if err == io.EOF {
					break
				}
				if err != nil {
					rs.setInputErr(err)
					return
				}
				spool.add(rec)
			}
			rs.total.Store(int64(spool.len()))
			rs.totalFinal.Store(true)
			i := 0
			next = func() ([]string, error) {
				if i >= spool.len() {
					return nil, io.EOF
				}
				i++
				return spool.at(i - 1), nil
			}
			// Spooled records never handed to the dispatcher (halt fired
			// first) still belong in the skipped accounting.
			defer func() { rs.skipped.Add(int64(spool.len() - i)) }()
		}
		seq := 0
		for {
			if rs.ctx.Err() != nil || rs.haltSoon.Load() {
				return
			}
			select {
			case <-rs.stopInput:
				return
			default:
			}
			rec, err := next()
			if err == io.EOF {
				return
			}
			if err != nil {
				rs.setInputErr(err)
				return
			}
			seq++
			if !rs.totalFinal.Load() {
				rs.total.Add(1)
			}
			// Digest checks and the intent append both happen here, on
			// the single-threaded input goroutine, before pipe mode can
			// repurpose the record and before any slot sees the job —
			// an intent is durable (per sync policy) by the time the
			// job exists in the pipeline.
			if s.WALDigests != nil {
				if want, ok := s.WALDigests[seq]; ok && want != 0 {
					if got := wal.ArgsDigest(rec); got != want {
						rs.setWalErr(fmt.Errorf(
							"seq %d: input changed under resume: args digest %016x, log recorded %016x",
							seq, got, want))
						return
					}
				}
			}
			if s.ResumeFrom[seq] {
				rs.skipped.Add(1)
				continue
			}
			if s.WAL != nil {
				if werr := s.WAL.AppendIntent(seq, wal.ArgsDigest(rec)); werr != nil {
					rs.setWalErr(werr)
					return
				}
			}
			job := getJob(seq, rec)
			if s.Pipe {
				// Pipe mode: the record is stdin, not argv.
				job.Args = nil
				if len(rec) > 0 {
					job.Stdin = []byte(rec[0])
				}
			}
			if !forward(job) {
				return
			}
		}
	}()
}

// renderedJob pairs a job with its render outcome inside the render
// stage (errors travel in-band so ordering survives).
type renderedJob struct {
	job *Job
	err error
}

// startRenderStage spins up the render worker stage: a small pool of
// workers renders command templates in parallel while a merger re-emits
// jobs to the dispatch queue in input order (sharding is strict
// round-robin, so reading the output rings in the same order restores
// the sequence without any per-job synchronization). It returns the
// input-side forward function and the close function for the input
// goroutine's defer.
func (rs *runState) startRenderStage() (forward func(*Job) bool, closeSink func()) {
	s := rs.s
	template := rs.template
	n := renderWorkerCount()
	in := make([]chan *Job, n)
	out := make([]chan renderedJob, n)
	for i := range in {
		in[i] = make(chan *Job, 32)
		out[i] = make(chan renderedJob, 32)
	}

	// measure render duration only when someone is listening; the
	// disabled path must stay free of clock reads and event values.
	measure := s.OnEvent != nil

	for i := 0; i < n; i++ {
		go func(in <-chan *Job, out chan<- renderedJob) {
			defer close(out)
			var buf []byte // per-worker scratch, reused across jobs
			for job := range in {
				var rerr error
				var renderDur time.Duration
				var renderStart time.Time
				if measure {
					renderStart = time.Now()
				}
				buf, rerr = template.AppendRender(buf[:0], tmpl.Context{Args: job.Args, Seq: job.Seq})
				if rerr == nil {
					job.Command = string(buf)
				}
				if measure {
					renderDur = time.Since(renderStart)
				}
				if s.OnEvent != nil && rerr == nil {
					s.OnEvent(Event{Type: EventQueued, Seq: job.Seq, Time: time.Now(),
						Command: job.Command, Render: renderDur})
				}
				select {
				case out <- renderedJob{job: job, err: rerr}:
				case <-rs.ctx.Done():
					putJob(job)
					return
				}
			}
		}(in[i], out[i])
	}

	// Merger: restore round-robin order and feed the dispatch queue. On
	// a render error it stops the input side and drops whatever was
	// rendered after the failing job, mirroring the pre-pipeline
	// behavior where a render error ended input immediately.
	go func() {
		defer close(rs.jobs)
		defer func() {
			for _, ch := range out {
				for env := range ch {
					if env.job != nil {
						putJob(env.job)
					}
					rs.skipped.Add(1)
				}
			}
		}()
		for i := 0; ; i++ {
			env, ok := <-out[i%n]
			if !ok {
				return
			}
			if env.err != nil {
				rs.setInputErr(env.err)
				close(rs.stopInput)
				putJob(env.job)
				rs.skipped.Add(1)
				return
			}
			select {
			case rs.jobs <- env.job:
			case <-rs.ctx.Done():
				putJob(env.job)
				rs.skipped.Add(1)
				return
			}
		}
	}()

	k := 0
	forward = func(job *Job) bool {
		ch := in[k%n]
		k++
		select {
		case ch <- job:
			return true
		case <-rs.ctx.Done():
			putJob(job)
			return false
		case <-rs.stopInput:
			putJob(job)
			return false
		}
	}
	closeSink = func() {
		for _, ch := range in {
			close(ch)
		}
	}
	return forward, closeSink
}

// startWorkers launches the per-slot dispatch workers (and the pacing
// gate when Delay/MaxLoad are configured). Workers pull jobs straight
// from the queue — no per-job goroutine spawn, no slot token shuffle —
// and their fixed ids provide the {%} slot numbers.
func (rs *runState) startWorkers() {
	s := rs.s
	source := rs.jobs

	if s.Delay > 0 || s.MaxLoad > 0 {
		// Slow path: a single gate goroutine serializes the pacing
		// decisions (inter-start delay, load-average backoff) that a
		// concurrent worker pool cannot make consistently.
		gated := make(chan *Job)
		go func(upstream <-chan *Job) {
			defer close(gated)
			first := true
			for job := range upstream {
				if s.MaxLoad > 0 {
					waitForLoad(s.MaxLoad, rs.ctx.Done())
				}
				if s.Delay > 0 && !first {
					select {
					case <-time.After(s.Delay):
					case <-rs.ctx.Done():
						rs.skipped.Add(1)
						putJob(job)
						continue
					}
				}
				first = false
				gated <- job // workers drain until close; cannot block forever
			}
		}(source)
		source = gated
	}

	var wg sync.WaitGroup
	wg.Add(s.Jobs)
	for slot := 1; slot <= s.Jobs; slot++ {
		go func(slot int) {
			defer wg.Done()
			rs.workerLoop(slot, source)
		}(slot)
	}
	go func() {
		wg.Wait()
		close(rs.results)
	}()
}

// workerLoop is one dispatch slot: it claims queued jobs, runs them (with
// retry/timeout handling in runJob), and reports results.
func (rs *runState) workerLoop(slot int, source <-chan *Job) {
	s := rs.s
	e := rs.e
	for job := range source {
		if rs.ctx.Err() != nil || rs.haltSoon.Load() {
			rs.skipped.Add(1)
			putJob(job)
			continue
		}
		// DispatchDelay: from slot acquisition (this worker picking the
		// job up) to the attempt starting — the engine's own per-task
		// overhead.
		dispatchStart := time.Now()
		job.Slot = slot
		e.bindSlot(job, rs.template)
		rs.started.Add(1)
		if rs.tracker != nil {
			rs.tracker.jobStarted()
		}
		if s.OnEvent != nil {
			s.OnEvent(Event{Type: EventStarted, Seq: job.Seq, Slot: slot, Attempt: 1,
				Time: dispatchStart, Command: job.Command})
		}
		res := e.runJob(rs.ctx, job)
		if !res.Start.IsZero() && res.Start.After(dispatchStart) && res.Attempts == 1 {
			res.DispatchDelay = res.Start.Sub(dispatchStart)
		}
		putJob(job)
		// The collector drains until close(results), so this send
		// cannot block indefinitely.
		rs.results <- res
	}
}

// collect is the single collector loop: ordering, output, joblog, halt
// decisions, stats.
func (rs *runState) collect(wallStart time.Time) (Stats, []Result, error) {
	s := rs.s
	e := rs.e
	stats := Stats{}
	var collected []Result
	var firstStart, lastEnd time.Time
	var dispatchSum time.Duration
	var dispatchN int64

	// Keep-order buffering: a min-heap keyed by seq. Compared to the
	// previous map-of-pending, the heap pops ready results without
	// hashing and leaves stragglers (halt gaps) already sorted.
	var pending resultHeap
	nextSeq := 1
	var resultsDirErr error
	flush := func(res Result) {
		e.emitOutput(res)
		if s.ResultsDir != "" && !res.DryRun {
			if werr := writeResultFiles(s.ResultsDir, res); werr != nil && resultsDirErr == nil {
				resultsDirErr = werr
			}
		}
		if s.Joblog != nil {
			WriteJoblogLine(s.Joblog, res)
		}
		if s.WAL != nil && !res.DryRun {
			// A failure that never produced an exit code (spawn error,
			// kill, timeout) must not replay as success: record it as a
			// nonzero exit so resume re-runs the job.
			exit := res.ExitCode
			if exit == 0 && !res.OK() {
				exit = -1
			}
			if werr := s.WAL.AppendCompletion(res.Job.Seq, exit, res.Duration(), res.Host); werr != nil {
				rs.setWalErr(werr)
			}
		}
		if s.OnResult != nil {
			s.OnResult(res)
		}
		if s.CollectResults {
			collected = append(collected, res)
		}
	}

	for res := range rs.results {
		if s.OnEvent != nil {
			typ := EventFinished
			if res.TimedOut || errors.Is(res.Err, context.Canceled) {
				typ = EventKilled
			}
			s.OnEvent(Event{Type: typ, Seq: res.Job.Seq, Slot: res.Job.Slot,
				Attempt: res.Attempts, Time: time.Now(), Command: res.Job.Command,
				OK: res.OK(), ExitCode: res.ExitCode, Host: res.Host,
				Duration: res.Duration(), DispatchDelay: res.DispatchDelay,
				End: res.End, WorkerDispatch: res.WorkerDispatch})
		}
		if res.OK() {
			stats.Succeeded++
		} else {
			stats.Failed++
		}
		if rs.tracker != nil {
			s.OnProgress(rs.tracker.jobFinished(res.OK()))
		}
		stats.Retries += res.Attempts - 1
		if !res.DryRun {
			if firstStart.IsZero() || res.Start.Before(firstStart) {
				firstStart = res.Start
			}
			if res.End.After(lastEnd) {
				lastEnd = res.End
			}
			dispatchSum += res.DispatchDelay
			dispatchN++
		}
		if s.Halt.Triggered(stats.Succeeded, stats.Failed, int(rs.total.Load()), rs.totalFinal.Load()) {
			rs.haltSoon.Store(true)
			if s.Halt.When == HaltNow {
				rs.cancel()
			}
		}
		if !s.KeepOrder {
			flush(res)
			continue
		}
		pending.push(res)
		for len(pending) > 0 {
			if s.ResumeFrom[nextSeq] {
				nextSeq++
				continue
			}
			if pending[0].Job.Seq != nextSeq {
				break
			}
			flush(pending.pop())
			nextSeq++
		}
	}
	// Flush any keep-order stragglers (halt can leave gaps); heap pops
	// are already seq-sorted.
	for len(pending) > 0 {
		flush(pending.pop())
	}

	stats.Total = int(rs.total.Load())
	stats.Skipped = int(rs.skipped.Load())
	stats.Wall = time.Since(wallStart)
	if !firstStart.IsZero() {
		stats.Makespan = lastEnd.Sub(firstStart)
	}
	if dispatchN > 0 {
		stats.AvgDispatchDelay = dispatchSum / time.Duration(dispatchN)
	}
	if stats.Wall > 0 {
		stats.LaunchRate = float64(rs.started.Load()) / stats.Wall.Seconds()
	}
	stats.InputErr = rs.inputErr
	return stats, collected, resultsDirErr
}

// recordSpool stores input records read ahead for a percentage halt in
// two flat slices (a string arena plus offsets) instead of one slice
// header allocation per record. Record views share the arena's backing
// array; strings are immutable so later appends cannot corrupt
// already-issued views.
type recordSpool struct {
	arena []string
	offs  []int
}

func (sp *recordSpool) add(rec []string) {
	if sp.offs == nil {
		sp.offs = append(sp.offs, 0)
	}
	sp.arena = append(sp.arena, rec...)
	sp.offs = append(sp.offs, len(sp.arena))
}

func (sp *recordSpool) len() int {
	if len(sp.offs) == 0 {
		return 0
	}
	return len(sp.offs) - 1
}

func (sp *recordSpool) at(i int) []string {
	return sp.arena[sp.offs[i]:sp.offs[i+1]:sp.offs[i+1]]
}

// resultHeap is a hand-rolled min-heap of Results keyed by Job.Seq —
// the keep-order reorder buffer. No interface indirection, no
// container/heap allocations.
type resultHeap []Result

func (h *resultHeap) push(r Result) {
	*h = append(*h, r)
	a := *h
	i := len(a) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if a[parent].Job.Seq <= a[i].Job.Seq {
			break
		}
		a[parent], a[i] = a[i], a[parent]
		i = parent
	}
}

func (h *resultHeap) pop() Result {
	a := *h
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a[n] = Result{} // release references held by the vacated slot
	a = a[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && a[l].Job.Seq < a[smallest].Job.Seq {
			smallest = l
		}
		if r < n && a[r].Job.Seq < a[smallest].Job.Seq {
			smallest = r
		}
		if smallest == i {
			break
		}
		a[i], a[smallest] = a[smallest], a[i]
		i = smallest
	}
	*h = a
	return top
}

// cancellableNext pulls source records on a dedicated goroutine so a
// source stuck in a blocking read — an open stdin with no more input,
// say — cannot keep Run from returning once the context is cancelled.
// SIGINT/SIGTERM handling depends on this: the run must unwind and
// flush its joblog and telemetry sinks even though the stdin read can
// never be interrupted. Cancellation reads as end-of-input here; Run's
// own ctx.Err() check reports the cancellation. The abandoned reader
// goroutine is released when the source next yields or, failing that,
// dies with the process. The pull channel is buffered so source reads
// pipeline ahead of job construction instead of hand-shaking per
// record.
func cancellableNext(ctx context.Context, src args.Source) func() ([]string, error) {
	type pulled struct {
		rec []string
		err error
	}
	ch := make(chan pulled, 64)
	go func() {
		for {
			rec, err := src.Next()
			select {
			case ch <- pulled{rec, err}:
			case <-ctx.Done():
				return
			}
			if err != nil {
				return
			}
		}
	}()
	return func() ([]string, error) {
		select {
		case p := <-ch:
			return p.rec, p.err
		case <-ctx.Done():
			return nil, io.EOF
		}
	}
}

// writeResultFiles persists one job's outcome under dir/<seq>/.
func writeResultFiles(dir string, res Result) error {
	jobDir := filepath.Join(dir, strconv.Itoa(res.Job.Seq))
	if err := os.MkdirAll(jobDir, 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(jobDir, "stdout"), res.Stdout, 0o644); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(jobDir, "stderr"), res.Stderr, 0o644); err != nil {
		return err
	}
	exit := fmt.Sprintf("%d\n", res.ExitCode)
	return os.WriteFile(filepath.Join(jobDir, "exitval"), []byte(exit), 0o644)
}

// bindSlot applies slot-dependent rendering: {%} in the template and
// SlotEnv/env wiring.
func (e *Engine) bindSlot(job *Job, template *tmpl.Template) {
	s := e.spec
	if template != nil && template.HasSlotPlaceholder() {
		// Re-render now that the slot is known.
		cmd, err := template.Render(tmpl.Context{Args: job.Args, Seq: job.Seq, Slot: job.Slot})
		if err == nil {
			job.Command = cmd
		}
	}
	if len(s.Env) > 0 || s.SlotEnv != nil {
		job.Env = append(append([]string(nil), s.Env...), job.Env...)
		if s.SlotEnv != nil {
			job.Env = append(job.Env, s.SlotEnv(job.Slot)...)
		}
	}
}

// runJob executes one job with dry-run, timeout and retry handling.
func (e *Engine) runJob(ctx context.Context, job *Job) Result {
	s := e.spec
	if s.DryRun {
		now := time.Now()
		return Result{Job: *job, DryRun: true, Attempts: 1, Start: now, End: now}
	}
	tries := s.Retries
	if tries < 1 {
		tries = 1
	}
	var res Result
	for attempt := 1; ; attempt++ {
		runCtx := ctx
		var cancel context.CancelFunc
		if s.Timeout > 0 {
			runCtx, cancel = context.WithTimeout(ctx, s.Timeout)
		}
		res = e.runner.Run(runCtx, job)
		timedOut := s.Timeout > 0 && runCtx.Err() == context.DeadlineExceeded
		if cancel != nil {
			cancel()
		}
		res.Attempts = attempt
		res.TimedOut = timedOut
		if timedOut && res.Err == nil {
			res.Err = context.DeadlineExceeded
		}
		if res.OK() || ctx.Err() != nil || attempt >= tries {
			break
		}
		if s.RetryOn != nil && !s.RetryOn(res) {
			break
		}
		if s.OnEvent != nil {
			s.OnEvent(Event{Type: EventRetried, Seq: job.Seq, Slot: job.Slot,
				Attempt: attempt + 1, Time: time.Now(), Command: job.Command})
		}
		// Backoff holds the slot, like a still-running job would; a
		// cancelled run abandons the remaining attempts.
		if d := s.RetryBackoff.Delay(job.Seq, attempt); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return res
			}
		}
	}
	return res
}

// emitOutput writes a result's grouped output to the spec writers,
// applying --tag prefixes if configured.
func (e *Engine) emitOutput(res Result) {
	s := e.spec
	if res.DryRun {
		if s.Out != nil {
			fmt.Fprintln(s.Out, res.Job.Command)
		}
		return
	}
	writeGrouped(s.Out, res.Stdout, s.Tag, res.Job)
	writeGrouped(s.Errout, res.Stderr, s.Tag, res.Job)
}

func writeGrouped(w io.Writer, data []byte, tag bool, job Job) {
	if w == nil || len(data) == 0 {
		return
	}
	if !tag {
		w.Write(data)
		return
	}
	prefix := ""
	if len(job.Args) > 0 {
		prefix = job.Args[0]
	}
	for _, line := range bytes.SplitAfter(data, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		fmt.Fprintf(w, "%s\t%s", prefix, line)
	}
}
