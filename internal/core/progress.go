package core

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress is a point-in-time view of a run, delivered to
// Spec.OnProgress after every job completion.
type Progress struct {
	// Done is completed jobs (success + failure); Failed the failures.
	Done, Failed int
	// Total is the number of inputs consumed so far. While the input
	// source is still producing this is a lower bound; Final reports
	// whether it is exact.
	Total int
	Final bool
	// Running is the number of jobs currently executing.
	Running int
	// Elapsed is time since the run started.
	Elapsed time.Duration
	// ETA estimates remaining time from observed throughput; it is
	// zero until Final and at least one job has finished.
	ETA time.Duration
}

// progressTracker computes Progress snapshots for the engine.
type progressTracker struct {
	mu      sync.Mutex
	start   time.Time
	done    int
	failed  int
	running int
	total   func() (n int, final bool)
}

func newProgressTracker(total func() (int, bool)) *progressTracker {
	return &progressTracker{start: time.Now(), total: total}
}

func (pt *progressTracker) jobStarted() {
	pt.mu.Lock()
	pt.running++
	pt.mu.Unlock()
}

func (pt *progressTracker) jobFinished(ok bool) Progress {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	pt.running--
	pt.done++
	if !ok {
		pt.failed++
	}
	return pt.snapshotLocked()
}

func (pt *progressTracker) snapshotLocked() Progress {
	n, final := pt.total()
	p := Progress{
		Done: pt.done, Failed: pt.failed, Total: n, Final: final,
		Running: pt.running, Elapsed: time.Since(pt.start),
	}
	if final && pt.done > 0 && n > pt.done {
		perJob := p.Elapsed / time.Duration(pt.done)
		p.ETA = perJob * time.Duration(n-pt.done)
	}
	return p
}

// String renders a single-line progress report (the CLI's --progress
// output).
func (p Progress) String() string {
	totalStr := fmt.Sprint(p.Total)
	if !p.Final {
		totalStr += "+"
	}
	s := fmt.Sprintf("%d/%s done, %d running, %d failed, %v elapsed",
		p.Done, totalStr, p.Running, p.Failed, p.Elapsed.Round(time.Second))
	if p.ETA > 0 {
		s += fmt.Sprintf(", ETA %v", p.ETA.Round(time.Second))
	}
	return s
}

// RenderProgress writes p as a carriage-return-terminated status line,
// suitable for repeated in-place terminal updates.
func RenderProgress(w io.Writer, p Progress) {
	fmt.Fprintf(w, "\r\033[K%s", p.String())
}

// ProgressPrinter renders Progress updates to a stream, adapting to
// whether that stream is an interactive terminal. On a TTY every update
// redraws a single status line in place (carriage return + erase). On a
// pipe or file it emits whole newline-terminated lines, rate-limited to
// MinInterval, so captured logs never contain control characters and
// `--progress` output can never be confused with job output.
type ProgressPrinter struct {
	// W receives the rendered progress (the CLI uses stderr, keeping
	// stdout exclusively for job output).
	W io.Writer
	// TTY selects in-place redraw; detect with something like
	// (os.File).Stat() Mode()&os.ModeCharDevice != 0.
	TTY bool
	// MinInterval rate-limits non-TTY line output (default 1s). TTY
	// redraws are cheap and are not limited.
	MinInterval time.Duration

	mu    sync.Mutex
	last  time.Time
	drawn bool
	// now is the rate-limiter clock; tests substitute a fake. Nil means
	// time.Now.
	now func() time.Time
}

// Update renders one progress snapshot. Safe for concurrent use.
func (pp *ProgressPrinter) Update(p Progress) {
	if pp.W == nil {
		return
	}
	pp.mu.Lock()
	defer pp.mu.Unlock()
	if pp.TTY {
		RenderProgress(pp.W, p)
		pp.drawn = true
		return
	}
	min := pp.MinInterval
	if min <= 0 {
		min = time.Second
	}
	clock := pp.now
	if clock == nil {
		clock = time.Now
	}
	now := clock()
	if !pp.last.IsZero() && now.Sub(pp.last) < min {
		return
	}
	pp.last = now
	fmt.Fprintln(pp.W, p.String())
}

// Finish terminates an in-place TTY status line with a newline so
// subsequent output starts on a fresh line. No-op when nothing was
// drawn or the stream is not a TTY.
func (pp *ProgressPrinter) Finish() {
	if pp.W == nil {
		return
	}
	pp.mu.Lock()
	defer pp.mu.Unlock()
	if pp.TTY && pp.drawn {
		fmt.Fprintln(pp.W)
		pp.drawn = false
	}
}
