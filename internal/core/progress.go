package core

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress is a point-in-time view of a run, delivered to
// Spec.OnProgress after every job completion.
type Progress struct {
	// Done is completed jobs (success + failure); Failed the failures.
	Done, Failed int
	// Total is the number of inputs consumed so far. While the input
	// source is still producing this is a lower bound; Final reports
	// whether it is exact.
	Total int
	Final bool
	// Running is the number of jobs currently executing.
	Running int
	// Elapsed is time since the run started.
	Elapsed time.Duration
	// ETA estimates remaining time from observed throughput; it is
	// zero until Final and at least one job has finished.
	ETA time.Duration
}

// progressTracker computes Progress snapshots for the engine.
type progressTracker struct {
	mu      sync.Mutex
	start   time.Time
	done    int
	failed  int
	running int
	total   func() (n int, final bool)
}

func newProgressTracker(total func() (int, bool)) *progressTracker {
	return &progressTracker{start: time.Now(), total: total}
}

func (pt *progressTracker) jobStarted() {
	pt.mu.Lock()
	pt.running++
	pt.mu.Unlock()
}

func (pt *progressTracker) jobFinished(ok bool) Progress {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	pt.running--
	pt.done++
	if !ok {
		pt.failed++
	}
	return pt.snapshotLocked()
}

func (pt *progressTracker) snapshotLocked() Progress {
	n, final := pt.total()
	p := Progress{
		Done: pt.done, Failed: pt.failed, Total: n, Final: final,
		Running: pt.running, Elapsed: time.Since(pt.start),
	}
	if final && pt.done > 0 && n > pt.done {
		perJob := p.Elapsed / time.Duration(pt.done)
		p.ETA = perJob * time.Duration(n-pt.done)
	}
	return p
}

// String renders a single-line progress report (the CLI's --progress
// output).
func (p Progress) String() string {
	totalStr := fmt.Sprint(p.Total)
	if !p.Final {
		totalStr += "+"
	}
	s := fmt.Sprintf("%d/%s done, %d running, %d failed, %v elapsed",
		p.Done, totalStr, p.Running, p.Failed, p.Elapsed.Round(time.Second))
	if p.ETA > 0 {
		s += fmt.Sprintf(", ETA %v", p.ETA.Round(time.Second))
	}
	return s
}

// RenderProgress writes p as a carriage-return-terminated status line,
// suitable for repeated in-place terminal updates.
func RenderProgress(w io.Writer, p Progress) {
	fmt.Fprintf(w, "\r\033[K%s", p.String())
}
