package celeritas

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestConservationOfHistories(t *testing.T) {
	cfg := DefaultConfig("t")
	cfg.Photons = 50_000
	tally, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum := tally.Transmitted + tally.Reflected + tally.Absorbed
	if sum != cfg.Photons {
		t.Fatalf("histories: %d+%d+%d = %d, want %d",
			tally.Transmitted, tally.Reflected, tally.Absorbed, sum, cfg.Photons)
	}
	if tally.Histories != cfg.Photons {
		t.Fatalf("Histories = %d", tally.Histories)
	}
}

func TestEnergyConservation(t *testing.T) {
	cfg := DefaultConfig("t")
	cfg.Photons = 20_000
	tally, _ := Run(cfg)
	want := float64(tally.Absorbed) * cfg.EnergyMeV
	if math.Abs(tally.TotalDeposited()-want) > 1e-6 {
		t.Fatalf("deposited %.3f MeV, absorbed %d x %.1f MeV", tally.TotalDeposited(), tally.Absorbed, cfg.EnergyMeV)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	cfg := DefaultConfig("t")
	cfg.Photons = 10_000
	a, _ := Run(cfg)
	b, _ := Run(cfg)
	if a.Transmitted != b.Transmitted || a.Absorbed != b.Absorbed {
		t.Fatal("runs with same seed differ")
	}
	cfg.Seed = 2
	c, _ := Run(cfg)
	if a.Transmitted == c.Transmitted && a.Reflected == c.Reflected && a.Absorbed == c.Absorbed {
		t.Fatal("different seeds produced identical tallies (suspicious)")
	}
}

func TestPhysicsShape(t *testing.T) {
	// Thick absorbing slab: almost nothing transmits.
	cfg := Config{Name: "thick", Photons: 20_000, Layers: 10, SlabDepth: 100,
		MuAbs: 1.0, MuScat: 0.1, EnergyMeV: 1, Seed: 3}
	tally, _ := Run(cfg)
	if frac := float64(tally.Transmitted) / float64(cfg.Photons); frac > 0.001 {
		t.Fatalf("thick slab transmitted %.4f of photons", frac)
	}
	// Thin slab: most photons transmit.
	cfg2 := Config{Name: "thin", Photons: 20_000, Layers: 5, SlabDepth: 0.01,
		MuAbs: 0.1, MuScat: 0.1, EnergyMeV: 1, Seed: 3}
	t2, _ := Run(cfg2)
	if frac := float64(t2.Transmitted) / float64(cfg2.Photons); frac < 0.95 {
		t.Fatalf("thin slab transmitted only %.4f", frac)
	}
}

func TestAttenuationMonotone(t *testing.T) {
	// Energy deposition should decay with depth in a purely forward
	// entry (first layer >= last layer by a wide margin).
	cfg := Config{Name: "atten", Photons: 100_000, Layers: 10, SlabDepth: 20,
		MuAbs: 0.5, MuScat: 0.2, EnergyMeV: 1, Seed: 5}
	tally, _ := Run(cfg)
	if tally.Deposited[0] < 5*tally.Deposited[9] {
		t.Fatalf("no attenuation: first layer %.1f, last %.1f",
			tally.Deposited[0], tally.Deposited[9])
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{Photons: 0, Layers: 1, SlabDepth: 1, MuAbs: 1},
		{Photons: 1, Layers: 0, SlabDepth: 1, MuAbs: 1},
		{Photons: 1, Layers: 1, SlabDepth: 0, MuAbs: 1},
		{Photons: 1, Layers: 1, SlabDepth: 1, MuAbs: 0, MuScat: 0},
		{Photons: 1, Layers: 1, SlabDepth: 1, MuAbs: -1, MuScat: 2},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d validated: %+v", i, c)
		}
	}
	good := DefaultConfig("x")
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseConfig(t *testing.T) {
	in := `{"name":"tilecal","photons":1000,"layers":4,"slab_depth_cm":5,
	        "mu_abs":0.3,"mu_scat":0.7,"energy_mev":1.5,"seed":9}`
	cfg, err := ParseConfig(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "tilecal" || cfg.Photons != 1000 || cfg.EnergyMeV != 1.5 {
		t.Fatalf("cfg = %+v", cfg)
	}
	if _, err := ParseConfig(strings.NewReader(`{"photons": -3}`)); err == nil {
		t.Fatal("invalid config parsed")
	}
	if _, err := ParseConfig(strings.NewReader(`{"bogus_field": 1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ParseConfig(strings.NewReader(`not json`)); err == nil {
		t.Fatal("non-JSON accepted")
	}
}

func TestCostModel(t *testing.T) {
	small := Cost(Config{Photons: 1})
	big := Cost(Config{Photons: 2_000_000_00})
	if big <= small {
		t.Fatal("cost not increasing with problem size")
	}
	if small.Seconds() < 2.5 {
		t.Fatalf("setup floor missing: %v", small)
	}
}

// Property: histories always conserve for any valid small config.
func TestPropertyConservation(t *testing.T) {
	f := func(p16 uint16, l8, seed uint8, abs, scat uint8) bool {
		cfg := Config{
			Photons: int(p16%2000) + 1, Layers: int(l8%8) + 1,
			SlabDepth: 5, MuAbs: float64(abs%5) * 0.1, MuScat: float64(scat%5) * 0.1,
			EnergyMeV: 1, Seed: uint64(seed),
		}
		if cfg.MuAbs+cfg.MuScat == 0 {
			return true
		}
		tally, err := Run(cfg)
		if err != nil {
			return false
		}
		return tally.Transmitted+tally.Reflected+tally.Absorbed == cfg.Photons
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTransportKernel(b *testing.B) {
	cfg := DefaultConfig("bench")
	cfg.Photons = 10_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
