// Package celeritas implements a miniature Monte Carlo particle-transport
// kernel standing in for the Celeritas detector-simulation code the paper
// uses as its GPU workload (§IV-D, Fig 2).
//
// The physics is deliberately simple — mono-energetic photons in a 1-D
// multi-layer slab with isotropic scattering and absorption — but it is
// real computation with real statistical output, so examples and tests
// exercise a genuine payload. For simulated-cluster experiments, Cost
// converts a problem size into a virtual GPU execution time.
package celeritas

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"time"
)

// Config describes one simulation input (the `.inp.json` files of the
// paper's launch line).
type Config struct {
	// Name labels the run (output file naming).
	Name string `json:"name"`
	// Photons is the number of source particles.
	Photons int `json:"photons"`
	// Layers is the number of equal-thickness tally layers.
	Layers int `json:"layers"`
	// SlabDepth is total slab thickness in cm.
	SlabDepth float64 `json:"slab_depth_cm"`
	// MuAbs and MuScat are absorption/scattering coefficients (1/cm).
	MuAbs  float64 `json:"mu_abs"`
	MuScat float64 `json:"mu_scat"`
	// EnergyMeV is the photon energy deposited on absorption.
	EnergyMeV float64 `json:"energy_mev"`
	// Seed makes runs reproducible.
	Seed uint64 `json:"seed"`
}

// DefaultConfig returns a physically sensible small problem.
func DefaultConfig(name string) Config {
	return Config{
		Name: name, Photons: 100_000, Layers: 10, SlabDepth: 10,
		MuAbs: 0.2, MuScat: 0.8, EnergyMeV: 1.0, Seed: 1,
	}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	switch {
	case c.Photons < 1:
		return errors.New("celeritas: photons must be >= 1")
	case c.Layers < 1:
		return errors.New("celeritas: layers must be >= 1")
	case c.SlabDepth <= 0:
		return errors.New("celeritas: slab depth must be positive")
	case c.MuAbs < 0 || c.MuScat < 0 || c.MuAbs+c.MuScat == 0:
		return errors.New("celeritas: cross-sections must be non-negative and not both zero")
	default:
		return nil
	}
}

// ParseConfig reads a JSON input file.
func ParseConfig(r io.Reader) (Config, error) {
	var c Config
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return c, fmt.Errorf("celeritas: parsing input: %w", err)
	}
	return c, c.Validate()
}

// Tally is the simulation output.
type Tally struct {
	Config      Config    `json:"config"`
	Deposited   []float64 `json:"deposited_mev"` // per layer
	Transmitted int       `json:"transmitted"`
	Reflected   int       `json:"reflected"`
	Absorbed    int       `json:"absorbed"`
	// Histories is photons simulated (== Config.Photons).
	Histories int `json:"histories"`
}

// TotalDeposited sums energy across layers.
func (t *Tally) TotalDeposited() float64 {
	var s float64
	for _, v := range t.Deposited {
		s += v
	}
	return s
}

// Run executes the transport kernel (real CPU work, deterministic per
// seed).
func Run(cfg Config) (*Tally, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0xD1B54A32D192ED03))
	muTotal := cfg.MuAbs + cfg.MuScat
	pAbs := cfg.MuAbs / muTotal
	layerW := cfg.SlabDepth / float64(cfg.Layers)

	t := &Tally{Config: cfg, Deposited: make([]float64, cfg.Layers), Histories: cfg.Photons}
	for i := 0; i < cfg.Photons; i++ {
		depth := 0.0
		mu := 1.0 // entering normal to the slab face
		for {
			// Sample free path and advance.
			u := rng.Float64()
			for u == 0 {
				u = rng.Float64()
			}
			depth += -math.Log(u) / muTotal * mu
			if depth < 0 {
				t.Reflected++
				break
			}
			if depth >= cfg.SlabDepth {
				t.Transmitted++
				break
			}
			if rng.Float64() < pAbs {
				layer := int(depth / layerW)
				if layer >= cfg.Layers {
					layer = cfg.Layers - 1
				}
				t.Deposited[layer] += cfg.EnergyMeV
				t.Absorbed++
				break
			}
			// Isotropic scatter: new direction cosine.
			mu = 2*rng.Float64() - 1
			if mu == 0 {
				mu = 1e-12
			}
		}
	}
	return t, nil
}

// GPUHistoriesPerSecond is the calibrated device throughput used by the
// simulated-cluster cost model. Celeritas tracks O(10^7) photon histories
// per second per GCD for simple geometries.
const GPUHistoriesPerSecond = 2e7

// Cost returns the virtual GPU execution time for a config: kernel time
// proportional to histories plus fixed setup (geometry/physics init),
// which is what gives Fig 2 its small constant variance.
func Cost(cfg Config) time.Duration {
	kernel := float64(cfg.Photons) / GPUHistoriesPerSecond
	setup := 3 * time.Second // process start, geometry build, H2D copies
	return setup + time.Duration(kernel*float64(time.Second))
}
