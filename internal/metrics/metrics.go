// Package metrics provides the small statistics toolkit the benchmark
// harness uses to summarize experiment results: duration samples,
// percentiles, interquartile ranges, histograms, and throughput rates.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Sample accumulates float64 observations. The zero value is ready to use.
type Sample struct {
	vals   []float64
	sorted bool
}

// Add appends an observation.
func (s *Sample) Add(v float64) {
	s.vals = append(s.vals, v)
	s.sorted = false
}

// AddDur appends a duration observation in seconds.
func (s *Sample) AddDur(d time.Duration) { s.Add(d.Seconds()) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.vals) }

// Values returns a copy of the raw observations.
func (s *Sample) Values() []float64 {
	out := make([]float64, len(s.vals))
	copy(out, s.vals)
	return out
}

func (s *Sample) sortIfNeeded() {
	if !s.sorted {
		sort.Float64s(s.vals)
		s.sorted = true
	}
}

// Min returns the smallest observation (0 if empty).
func (s *Sample) Min() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	s.sortIfNeeded()
	return s.vals[0]
}

// Max returns the largest observation (0 if empty).
func (s *Sample) Max() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	s.sortIfNeeded()
	return s.vals[len(s.vals)-1]
}

// Mean returns the arithmetic mean (0 if empty).
func (s *Sample) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

// Stddev returns the population standard deviation (0 if n < 2).
func (s *Sample) Stddev() float64 {
	n := len(s.vals)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, v := range s.vals {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks. Empty samples return 0.
func (s *Sample) Percentile(p float64) float64 {
	n := len(s.vals)
	if n == 0 {
		return 0
	}
	s.sortIfNeeded()
	if p <= 0 {
		return s.vals[0]
	}
	if p >= 100 {
		return s.vals[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.vals[lo]
	}
	frac := rank - float64(lo)
	return s.vals[lo]*(1-frac) + s.vals[hi]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

// IQR returns the interquartile range (P75 - P25).
func (s *Sample) IQR() float64 { return s.Percentile(75) - s.Percentile(25) }

// Summary is a snapshot of a sample's descriptive statistics.
type Summary struct {
	N                  int
	Min, Max           float64
	Mean, Median       float64
	P25, P75, P90, P99 float64
	Stddev             float64
}

// Summarize computes a Summary of the sample.
func (s *Sample) Summarize() Summary {
	return Summary{
		N:      s.N(),
		Min:    s.Min(),
		Max:    s.Max(),
		Mean:   s.Mean(),
		Median: s.Median(),
		P25:    s.Percentile(25),
		P75:    s.Percentile(75),
		P90:    s.Percentile(90),
		P99:    s.Percentile(99),
		Stddev: s.Stddev(),
	}
}

// String renders the summary compactly, interpreting values as seconds.
func (sm Summary) String() string {
	return fmt.Sprintf("n=%d min=%.3fs p25=%.3fs med=%.3fs p75=%.3fs p90=%.3fs max=%.3fs mean=%.3fs",
		sm.N, sm.Min, sm.P25, sm.Median, sm.P75, sm.P90, sm.Max, sm.Mean)
}

// Histogram counts observations into fixed-width bins over [lo, hi); values
// outside the range land in the first/last bin.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with nbins bins spanning [lo, hi).
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if nbins <= 0 || hi <= lo {
		panic("metrics: invalid histogram parameters")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins)}
}

// Add records an observation.
func (h *Histogram) Add(v float64) {
	n := len(h.Counts)
	idx := int(float64(n) * (v - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	h.Counts[idx]++
	h.total++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int { return h.total }

// Bin returns the [lo, hi) bounds of bin i.
func (h *Histogram) Bin(i int) (lo, hi float64) {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + float64(i)*w, h.Lo + float64(i+1)*w
}

// Rate computes events-per-second for count events over elapsed time.
// Returns 0 for non-positive elapsed.
func Rate(count int, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(count) / elapsed.Seconds()
}
