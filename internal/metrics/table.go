package metrics

import (
	"fmt"
	"strings"
)

// Table renders fixed-width ASCII tables: the benchmark harness prints one
// per reproduced figure, with the same rows/series the paper reports.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a footnote line rendered under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table.
func (t *Table) String() string {
	ncols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > ncols {
			ncols = len(r)
		}
	}
	widths := make([]int, ncols)
	measure := func(cells []string) {
		for i, c := range cells {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}

	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i := 0; i < ncols; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	sep := make([]string, ncols)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored markdown (used to generate
// EXPERIMENTS.md).
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, r := range t.Rows {
		b.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String()
}
