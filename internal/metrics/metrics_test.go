package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	for _, v := range []float64{5, 1, 3, 2, 4} {
		s.Add(v)
	}
	if s.N() != 5 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if s.Mean() != 3 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if s.Median() != 3 {
		t.Fatalf("median = %v", s.Median())
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Min() != 0 || s.Max() != 0 || s.Mean() != 0 || s.Median() != 0 || s.Stddev() != 0 {
		t.Fatal("empty sample stats should be zero")
	}
	sm := s.Summarize()
	if sm.N != 0 {
		t.Fatal("empty summary N != 0")
	}
}

func TestPercentileInterpolation(t *testing.T) {
	var s Sample
	for i := 1; i <= 4; i++ {
		s.Add(float64(i))
	}
	// rank for p50 over 4 points = 1.5 -> 2.5
	if got := s.Percentile(50); got != 2.5 {
		t.Fatalf("p50 = %v, want 2.5", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("p0 = %v, want 1", got)
	}
	if got := s.Percentile(100); got != 4 {
		t.Fatalf("p100 = %v, want 4", got)
	}
	if got := s.Percentile(-5); got != 1 {
		t.Fatalf("p-5 = %v, want clamp to min", got)
	}
}

func TestAddAfterSortedRead(t *testing.T) {
	var s Sample
	s.Add(10)
	_ = s.Median() // forces sort
	s.Add(1)
	if s.Min() != 1 {
		t.Fatal("Add after sorted read not observed")
	}
}

func TestIQRAndStddev(t *testing.T) {
	var s Sample
	for i := 0; i < 101; i++ {
		s.Add(float64(i))
	}
	if got := s.IQR(); got != 50 {
		t.Fatalf("IQR = %v, want 50", got)
	}
	want := math.Sqrt(850) // population stddev of 0..100
	if got := s.Stddev(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("stddev = %v, want %v", got, want)
	}
}

func TestAddDurAndRate(t *testing.T) {
	var s Sample
	s.AddDur(1500 * time.Millisecond)
	if s.Max() != 1.5 {
		t.Fatalf("AddDur stored %v", s.Max())
	}
	if r := Rate(470, time.Second); r != 470 {
		t.Fatalf("Rate = %v", r)
	}
	if r := Rate(10, 0); r != 0 {
		t.Fatalf("Rate with zero elapsed = %v", r)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{-1, 0, 1.9, 2, 9.9, 10, 100} {
		h.Add(v)
	}
	if h.Total() != 7 {
		t.Fatalf("total = %d", h.Total())
	}
	// bins: [0,2) got -1,0,1.9 = 3; [2,4) got 2 = 1; [8,10) got 9.9,10,100 = 3
	if h.Counts[0] != 3 || h.Counts[1] != 1 || h.Counts[4] != 3 {
		t.Fatalf("counts = %v", h.Counts)
	}
	lo, hi := h.Bin(1)
	if lo != 2 || hi != 4 {
		t.Fatalf("bin 1 = [%v,%v)", lo, hi)
	}
}

func TestHistogramInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid histogram did not panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Fig X", "nodes", "tasks", "time")
	tb.AddRow(1000, 128000, 61.5)
	tb.AddRow("9000", 1152000, "561s")
	tb.AddNote("paper max: %ds", 561)
	out := tb.String()
	for _, want := range []string{"Fig X", "nodes", "9000", "561s", "note: paper max: 561s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	md := tb.Markdown()
	if !strings.Contains(md, "| nodes | tasks | time |") || !strings.Contains(md, "### Fig X") {
		t.Fatalf("markdown rendering wrong:\n%s", md)
	}
}

// Property: percentile is monotone in p and bounded by [min, max].
func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(vals []float64, a, b uint8) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		var s Sample
		for _, v := range vals {
			s.Add(v)
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		va, vb := s.Percentile(pa), s.Percentile(pb)
		return va <= vb && va >= s.Min() && vb <= s.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: median of an odd-length sample equals the middle order
// statistic.
func TestPropertyMedianExact(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals)%2 == 0 || len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		var s Sample
		for _, v := range vals {
			s.Add(v)
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		return s.Median() == sorted[len(sorted)/2]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
