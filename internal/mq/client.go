package mq

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"syscall"
	"time"

	"repro/internal/args"
)

// ErrBrokerClosed reports that the broker ended the connection — a
// graceful shutdown (SIGTERM drain) or a broker crash, as opposed to a
// per-request error the broker answered with. Callers that follow a
// topic (gomq consume -follow, long-lived engine sources) match it with
// errors.Is to decide between reconnecting and giving up.
var ErrBrokerClosed = errors.New("mq: broker closed the connection")

// Client talks to a Broker over TCP. Safe for concurrent use (requests
// are serialized on one connection).
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
	bw   *bufio.Writer
}

// DialBroker connects to a broker.
func DialBroker(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("mq: dialing %s: %w", addr, err)
	}
	bw := bufio.NewWriter(conn)
	return &Client{
		conn: conn,
		enc:  json.NewEncoder(bw),
		dec:  json.NewDecoder(bufio.NewReader(conn)),
		bw:   bw,
	}, nil
}

// Close shuts the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) call(req brokerReq) (brokerResp, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return brokerResp{}, closedErr(err)
	}
	if err := c.bw.Flush(); err != nil {
		return brokerResp{}, closedErr(err)
	}
	var resp brokerResp
	if err := c.dec.Decode(&resp); err != nil {
		return brokerResp{}, closedErr(err)
	}
	if resp.Err != "" {
		return resp, errors.New(resp.Err)
	}
	return resp, nil
}

// closedErr maps transport-level connection loss onto ErrBrokerClosed
// (wrapping the cause) and passes every other error through.
func closedErr(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) || errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE) {
		return fmt.Errorf("%w: %v", ErrBrokerClosed, err)
	}
	return err
}

// Produce appends msg to topic, returning its sequence.
func (c *Client) Produce(topic string, msg []byte) (int64, error) {
	resp, err := c.call(brokerReq{Op: "produce", Topic: topic, Msg: msg})
	return resp.Seq, err
}

// Consume reads message seq from topic, long-polling up to wait for it
// to appear. ok is false on timeout.
func (c *Client) Consume(topic string, seq int64, wait time.Duration) (msg []byte, ok bool, err error) {
	resp, err := c.call(brokerReq{Op: "consume", Topic: topic, Seq: seq, WaitMS: wait.Milliseconds()})
	if err != nil {
		return nil, false, err
	}
	return resp.Msg, resp.More, nil
}

// Commit durably records group's next-to-read sequence for topic.
func (c *Client) Commit(topic, group string, next int64) error {
	_, err := c.call(brokerReq{Op: "commit", Topic: topic, Group: group, Seq: next})
	return err
}

// Committed returns group's committed next-to-read sequence.
func (c *Client) Committed(topic, group string) (int64, error) {
	resp, err := c.call(brokerReq{Op: "committed", Topic: topic, Group: group})
	return resp.Seq, err
}

// Len returns the topic's message count.
func (c *Client) Len(topic string) (int64, error) {
	resp, err := c.call(brokerReq{Op: "len", Topic: topic})
	return resp.Seq, err
}

// SourceFrom adapts a topic to an args.Source: the engine consumes one
// message per job, resuming from the group's committed offset and
// committing after each delivery (at-least-once). The source ends when
// ctx is done; until then it long-polls for new messages — the
// message-queue generalization of `tail -f q.proc | parallel`.
func SourceFrom(ctx context.Context, c *Client, topic, group string) args.Source {
	var next int64 = -1
	done := false
	return args.SourceFunc(func() ([]string, error) {
		if done {
			return nil, io.EOF
		}
		if next < 0 {
			committed, err := c.Committed(topic, group)
			if err != nil {
				done = true
				return nil, err
			}
			next = committed
		}
		for {
			if ctx.Err() != nil {
				done = true
				return nil, io.EOF
			}
			msg, ok, err := c.Consume(topic, next, time.Second)
			if err != nil {
				done = true
				return nil, err
			}
			if !ok {
				continue // long-poll timeout; re-check ctx and retry
			}
			next++
			if err := c.Commit(topic, group, next); err != nil {
				done = true
				return nil, err
			}
			return []string{string(msg)}, nil
		}
	})
}
