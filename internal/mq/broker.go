package mq

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Broker serves topics over TCP with a line-delimited JSON protocol:
// produce, consume (long-poll), and commit. Like cmd/gopard it is
// unauthenticated and intended for trusted networks.
type Broker struct {
	dir string

	mu     sync.Mutex
	topics map[string]*Topic
}

// NewBroker creates a broker storing topics under dir.
func NewBroker(dir string) *Broker {
	return &Broker{dir: dir, topics: map[string]*Topic{}}
}

// Topic returns (opening or creating) the named topic.
func (b *Broker) Topic(name string) (*Topic, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if t, ok := b.topics[name]; ok {
		return t, nil
	}
	t, err := OpenTopic(b.dir, name)
	if err != nil {
		return nil, err
	}
	b.topics[name] = t
	return t, nil
}

// Close closes every open topic, waking their long-poll waiters, and
// returns the first close error encountered (all topics are closed
// regardless).
func (b *Broker) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	var first error
	for _, t := range b.topics {
		if err := t.Close(); err != nil && first == nil {
			first = err
		}
	}
	b.topics = map[string]*Topic{}
	return first
}

type brokerReq struct {
	Op    string `json:"op"` // produce | consume | commit | len
	Topic string `json:"topic"`
	Group string `json:"group,omitempty"`
	Seq   int64  `json:"seq,omitempty"`
	Msg   []byte `json:"msg,omitempty"`
	// WaitMS long-polls a consume for up to this many milliseconds.
	WaitMS int64 `json:"wait_ms,omitempty"`
}

type brokerResp struct {
	OK  bool   `json:"ok"`
	Err string `json:"err,omitempty"`
	Seq int64  `json:"seq,omitempty"`
	Msg []byte `json:"msg,omitempty"`
	// More reports whether a consume found a message (false = timeout).
	More bool `json:"more,omitempty"`
}

// Serve accepts broker connections until ctx is done.
func (b *Broker) Serve(ctx context.Context, l net.Listener) error {
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
		case <-done:
		}
		l.Close()
	}()
	var wg sync.WaitGroup
	for {
		conn, err := l.Accept()
		if err != nil {
			wg.Wait()
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer conn.Close()
			b.serveConn(ctx, conn)
		}()
	}
}

func (b *Broker) serveConn(ctx context.Context, conn net.Conn) {
	// Shutdown drain: an idle connection parks this goroutine inside
	// dec.Decode with no deadline, which would wedge Serve's wg.Wait
	// forever. When ctx is cancelled, expire the pending (and any
	// future) read so Decode unblocks; a request already in flight
	// still gets its response below before the loop exits.
	stop := context.AfterFunc(ctx, func() {
		conn.SetReadDeadline(time.Now())
	})
	defer stop()
	bw := bufio.NewWriter(conn)
	enc := json.NewEncoder(bw)
	dec := json.NewDecoder(bufio.NewReader(conn))
	for {
		var req brokerReq
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := b.handle(ctx, req)
		if err := enc.Encode(resp); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
		if ctx.Err() != nil {
			return // drained: last response delivered, now hang up
		}
	}
}

func (b *Broker) handle(ctx context.Context, req brokerReq) brokerResp {
	t, err := b.Topic(req.Topic)
	if err != nil {
		return brokerResp{Err: err.Error()}
	}
	switch req.Op {
	case "produce":
		seq, err := t.Append(req.Msg)
		if err != nil {
			return brokerResp{Err: err.Error()}
		}
		return brokerResp{OK: true, Seq: seq}
	case "consume":
		deadline := time.Now().Add(time.Duration(req.WaitMS) * time.Millisecond)
		for {
			msg, err := t.Read(req.Seq)
			if err == nil {
				return brokerResp{OK: true, Seq: req.Seq, Msg: msg, More: true}
			}
			if !errors.Is(err, ErrOutOfRange) {
				return brokerResp{Err: err.Error()}
			}
			if req.WaitMS <= 0 || time.Now().After(deadline) {
				return brokerResp{OK: true, More: false}
			}
			select {
			case <-t.WaitFor(req.Seq):
			case <-time.After(time.Until(deadline)):
			case <-ctx.Done():
				return brokerResp{OK: true, More: false}
			}
		}
	case "commit":
		if err := t.Commit(req.Group, req.Seq); err != nil {
			return brokerResp{Err: err.Error()}
		}
		return brokerResp{OK: true}
	case "committed":
		seq, err := t.Committed(req.Group)
		if err != nil {
			return brokerResp{Err: err.Error()}
		}
		return brokerResp{OK: true, Seq: seq}
	case "len":
		return brokerResp{OK: true, Seq: t.Len()}
	default:
		return brokerResp{Err: fmt.Sprintf("mq: unknown op %q", req.Op)}
	}
}
