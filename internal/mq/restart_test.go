package mq

import (
	"context"
	"errors"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// startBrokerOn serves a broker over dir and returns its address plus a
// stop func that performs the full shutdown sequence (cancel, wait for
// Serve to drain, close topics) — the same path `gomq serve` takes on
// SIGTERM.
func startBrokerOn(t *testing.T, dir string) (addr string, stop func()) {
	t.Helper()
	b := NewBroker(dir)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- b.Serve(ctx, l) }()
	var once bool
	stop = func() {
		if once {
			return
		}
		once = true
		cancel()
		select {
		case err := <-served:
			if err != nil {
				t.Errorf("Serve returned %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("broker Serve did not drain after cancel")
		}
		if err := b.Close(); err != nil {
			t.Errorf("broker Close: %v", err)
		}
	}
	t.Cleanup(stop)
	return l.Addr().String(), stop
}

// TestBrokerServeDrainsOnShutdown: cancelling Serve's context must
// unblock idle connections (parked in a read with no deadline) and
// parked long-polls, answer the in-flight long-poll with a clean
// timeout response, and return. Before the read-deadline drain fix,
// Serve's wg.Wait hung forever on the idle connections.
func TestBrokerServeDrainsOnShutdown(t *testing.T) {
	addr, stop := startBrokerOn(t, t.TempDir())

	// Three idle consumers: connected, one round-trip each so the
	// server goroutines are live, then silent.
	idle := make([]*Client, 3)
	for i := range idle {
		c, err := DialBroker(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if _, err := c.Len("drain"); err != nil {
			t.Fatal(err)
		}
		idle[i] = c
	}
	// One consumer parked in a 30s long-poll on an empty topic.
	parked, err := DialBroker(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer parked.Close()
	pollDone := make(chan error, 1)
	go func() {
		_, ok, err := parked.Consume("drain", 0, 30*time.Second)
		if ok {
			err = errors.New("long-poll delivered a message from an empty topic")
		}
		pollDone <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the long-poll park

	start := time.Now()
	stop() // fails the test itself if Serve hangs past 10s
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("drain took %v", d)
	}
	// The parked long-poll was answered, not cut mid-frame.
	select {
	case err := <-pollDone:
		if err != nil {
			t.Errorf("parked long-poll: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Error("parked long-poll never returned")
	}
	// Idle clients discover the shutdown as ErrBrokerClosed, the
	// sentinel reconnect loops key off.
	if _, err := idle[0].Len("drain"); !errors.Is(err, ErrBrokerClosed) {
		t.Errorf("call after shutdown = %v, want ErrBrokerClosed", err)
	}
}

// TestCommitRedeliveryAcrossBrokerRestart proves the consumer-group
// contract over a broker restart: committed messages stay consumed,
// the uncommitted message is redelivered to the group exactly once.
func TestCommitRedeliveryAcrossBrokerRestart(t *testing.T) {
	dir := t.TempDir()
	addr, stop := startBrokerOn(t, dir)
	c, err := DialBroker(addr)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"m0", "m1", "m2"} {
		if _, err := c.Produce("jobs", []byte(m)); err != nil {
			t.Fatal(err)
		}
	}
	// Consume m0 and commit it; consume m1 but crash before the commit.
	if msg, ok, err := c.Consume("jobs", 0, 0); err != nil || !ok || string(msg) != "m0" {
		t.Fatalf("consume 0 = %q %v %v", msg, ok, err)
	}
	if err := c.Commit("jobs", "g", 1); err != nil {
		t.Fatal(err)
	}
	if msg, ok, err := c.Consume("jobs", 1, 0); err != nil || !ok || string(msg) != "m1" {
		t.Fatalf("consume 1 = %q %v %v", msg, ok, err)
	}
	c.Close()
	stop()

	// Restart on the same directory: the group resumes at its committed
	// offset, so m1 — delivered but never committed — comes again.
	addr2, stop2 := startBrokerOn(t, dir)
	c2, err := DialBroker(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	next, err := c2.Committed("jobs", "g")
	if err != nil || next != 1 {
		t.Fatalf("committed after restart = %d, %v (want 1)", next, err)
	}
	var redelivered []string
	for {
		msg, ok, err := c2.Consume("jobs", next, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		redelivered = append(redelivered, string(msg))
		next++
		if err := c2.Commit("jobs", "g", next); err != nil {
			t.Fatal(err)
		}
	}
	if len(redelivered) != 2 || redelivered[0] != "m1" || redelivered[1] != "m2" {
		t.Fatalf("redelivered = %v, want [m1 m2]", redelivered)
	}
	c2.Close()
	stop2()

	// Third incarnation: everything is committed, nothing redelivers.
	addr3, _ := startBrokerOn(t, dir)
	c3, err := DialBroker(addr3)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if n, err := c3.Committed("jobs", "g"); err != nil || n != 3 {
		t.Fatalf("final committed = %d, %v", n, err)
	}
	if _, ok, err := c3.Consume("jobs", 3, 0); err != nil || ok {
		t.Fatalf("fully-committed group got a message: ok=%v err=%v", ok, err)
	}
}

// TestTopicReadTruncatedPayload: a payload cut short on disk (torn
// replica copy, external truncation) must surface as a read error —
// the old code tolerated any io.EOF and handed back a zero-padded
// buffer, which a consumer would print as a mangled partial line.
func TestTopicReadTruncatedPayload(t *testing.T) {
	dir := t.TempDir()
	tp, err := OpenTopic(dir, "cut")
	if err != nil {
		t.Fatal(err)
	}
	tp.Append([]byte("complete message"))
	tp.Append([]byte("this payload will be truncated"))
	// The last message ends exactly at EOF: ReadAt reports io.EOF with a
	// full buffer, which must stay a successful read.
	if msg, err := tp.Read(1); err != nil || string(msg) != "this payload will be truncated" {
		t.Fatalf("read at exact EOF = %q, %v", msg, err)
	}

	// Chop 10 bytes off the final payload behind the open handle's back.
	info, err := os.Stat(filepath.Join(dir, "cut.log"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(filepath.Join(dir, "cut.log"), info.Size()-10); err != nil {
		t.Fatal(err)
	}
	if msg, err := tp.Read(1); err == nil {
		t.Fatalf("truncated payload read succeeded with %q", msg)
	}
	// The intact message is unaffected.
	if msg, err := tp.Read(0); err != nil || string(msg) != "complete message" {
		t.Fatalf("intact read = %q, %v", msg, err)
	}
	tp.Close()
}
