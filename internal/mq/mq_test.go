package mq

import (
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/args"
	"repro/internal/core"
)

func TestTopicAppendRead(t *testing.T) {
	dir := t.TempDir()
	tp, err := OpenTopic(dir, "events")
	if err != nil {
		t.Fatal(err)
	}
	defer tp.Close()
	msgs := []string{"first", "second", "третий"}
	for i, m := range msgs {
		seq, err := tp.Append([]byte(m))
		if err != nil {
			t.Fatal(err)
		}
		if seq != int64(i) {
			t.Fatalf("seq = %d, want %d", seq, i)
		}
	}
	if tp.Len() != 3 {
		t.Fatalf("len = %d", tp.Len())
	}
	for i, m := range msgs {
		got, err := tp.Read(int64(i))
		if err != nil || string(got) != m {
			t.Fatalf("Read(%d) = %q, %v", i, got, err)
		}
	}
	if _, err := tp.Read(3); err == nil {
		t.Fatal("read past end succeeded")
	}
	if _, err := tp.Read(-1); err == nil {
		t.Fatal("negative read succeeded")
	}
}

func TestTopicPersistenceAndTornWrite(t *testing.T) {
	dir := t.TempDir()
	tp, _ := OpenTopic(dir, "dur")
	tp.Append([]byte("alpha"))
	tp.Append([]byte("beta"))
	tp.Close()

	// Simulate a torn trailing write (crash mid-append).
	path := filepath.Join(dir, "dur.log")
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	f.Write([]byte{200, 0, 0, 0, 'p', 'a', 'r'}) // length 200, 3 bytes present
	f.Close()

	tp2, err := OpenTopic(dir, "dur")
	if err != nil {
		t.Fatal(err)
	}
	defer tp2.Close()
	if tp2.Len() != 2 {
		t.Fatalf("len after torn write = %d, want 2", tp2.Len())
	}
	got, err := tp2.Read(1)
	if err != nil || string(got) != "beta" {
		t.Fatalf("Read(1) = %q, %v", got, err)
	}
	// Appending after repair works.
	if seq, err := tp2.Append([]byte("gamma")); err != nil || seq != 2 {
		t.Fatalf("append after repair: %d, %v", seq, err)
	}
}

func TestTopicCommitOffsets(t *testing.T) {
	dir := t.TempDir()
	tp, _ := OpenTopic(dir, "t")
	defer tp.Close()
	if n, err := tp.Committed("workers"); err != nil || n != 0 {
		t.Fatalf("fresh group = %d, %v", n, err)
	}
	if err := tp.Commit("workers", 5); err != nil {
		t.Fatal(err)
	}
	if n, _ := tp.Committed("workers"); n != 5 {
		t.Fatalf("committed = %d", n)
	}
	// Groups are independent.
	if n, _ := tp.Committed("analytics"); n != 0 {
		t.Fatalf("other group = %d", n)
	}
}

func TestTopicInvalidNames(t *testing.T) {
	if _, err := OpenTopic(t.TempDir(), "../evil"); err == nil {
		t.Fatal("path traversal accepted")
	}
	if _, err := OpenTopic(t.TempDir(), ""); err == nil {
		t.Fatal("empty name accepted")
	}
	tp, _ := OpenTopic(t.TempDir(), "ok")
	defer tp.Close()
	if err := tp.Commit("bad/group", 1); err == nil {
		t.Fatal("bad group accepted")
	}
}

func TestTopicWaitFor(t *testing.T) {
	tp, _ := OpenTopic(t.TempDir(), "w")
	defer tp.Close()
	ch := tp.WaitFor(0)
	select {
	case <-ch:
		t.Fatal("WaitFor fired before append")
	case <-time.After(20 * time.Millisecond):
	}
	tp.Append([]byte("x"))
	select {
	case <-ch:
	case <-time.After(2 * time.Second):
		t.Fatal("WaitFor did not fire on append")
	}
	// Already-satisfied wait returns a closed channel.
	select {
	case <-tp.WaitFor(0):
	default:
		t.Fatal("satisfied WaitFor not immediately ready")
	}
}

func startBroker(t *testing.T) (addr string) {
	t.Helper()
	b := NewBroker(t.TempDir())
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(func() { cancel(); b.Close() })
	go b.Serve(ctx, l)
	return l.Addr().String()
}

func TestBrokerEndToEnd(t *testing.T) {
	addr := startBroker(t)
	c, err := DialBroker(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	seq, err := c.Produce("jobs", []byte("payload-1"))
	if err != nil || seq != 0 {
		t.Fatalf("produce: %d, %v", seq, err)
	}
	c.Produce("jobs", []byte("payload-2"))

	msg, ok, err := c.Consume("jobs", 0, 0)
	if err != nil || !ok || string(msg) != "payload-1" {
		t.Fatalf("consume: %q %v %v", msg, ok, err)
	}
	if n, _ := c.Len("jobs"); n != 2 {
		t.Fatalf("len = %d", n)
	}
	if err := c.Commit("jobs", "g1", 2); err != nil {
		t.Fatal(err)
	}
	if n, _ := c.Committed("jobs", "g1"); n != 2 {
		t.Fatalf("committed = %d", n)
	}
	// Missing message without wait: ok=false.
	_, ok, err = c.Consume("jobs", 99, 0)
	if err != nil || ok {
		t.Fatalf("consume past end: ok=%v err=%v", ok, err)
	}
}

func TestBrokerLongPoll(t *testing.T) {
	addr := startBroker(t)
	prod, _ := DialBroker(addr)
	cons, _ := DialBroker(addr)
	defer prod.Close()
	defer cons.Close()

	got := make(chan string, 1)
	go func() {
		msg, ok, err := cons.Consume("lp", 0, 5*time.Second)
		if err != nil || !ok {
			got <- fmt.Sprintf("error: %v ok=%v", err, ok)
			return
		}
		got <- string(msg)
	}()
	time.Sleep(30 * time.Millisecond) // consumer is now parked
	if _, err := prod.Produce("lp", []byte("woke")); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-got:
		if v != "woke" {
			t.Fatalf("long poll got %q", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long poll never returned")
	}
}

func TestEngineConsumesTopic(t *testing.T) {
	// The §IV-A production pattern: producer stage appends batches to a
	// topic; a parallel engine consumes the topic as its input source.
	addr := startBroker(t)
	prod, _ := DialBroker(addr)
	defer prod.Close()
	consClient, _ := DialBroker(addr)
	defer consClient.Close()

	const batches = 12
	go func() {
		for i := 0; i < batches; i++ {
			prod.Produce("batches", []byte(fmt.Sprintf("batch-%02d", i)))
			time.Sleep(2 * time.Millisecond)
		}
	}()

	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	var processed []string
	runner := core.FuncRunner(func(ctx context.Context, job *core.Job) ([]byte, error) {
		mu.Lock()
		processed = append(processed, job.Args[0])
		n := len(processed)
		mu.Unlock()
		if n == batches {
			cancel() // all consumed: end the streaming source
		}
		return nil, nil
	})
	spec, _ := core.NewSpec("", 4)
	eng, _ := core.NewEngine(spec, runner)
	src := SourceFrom(ctx, consClient, "batches", "engine")
	stats, _, err := eng.Run(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Succeeded != batches {
		t.Fatalf("stats = %+v", stats)
	}
	seen := map[string]bool{}
	for _, p := range processed {
		seen[p] = true
	}
	if len(seen) != batches {
		t.Fatalf("distinct batches = %d (processed %v)", len(seen), processed)
	}
	// Offsets committed: a new source for the same group sees nothing.
	if n, _ := consClient.Committed("batches", "engine"); n != batches {
		t.Fatalf("committed = %d, want %d", n, batches)
	}
}

func TestConcurrentProducers(t *testing.T) {
	tp, _ := OpenTopic(t.TempDir(), "conc")
	defer tp.Close()
	var wg sync.WaitGroup
	const producers, each = 8, 50
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := tp.Append([]byte(fmt.Sprintf("p%d-%d", p, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	if tp.Len() != producers*each {
		t.Fatalf("len = %d", tp.Len())
	}
	// Every message is readable and distinct.
	seen := map[string]bool{}
	for i := int64(0); i < tp.Len(); i++ {
		m, err := tp.Read(i)
		if err != nil {
			t.Fatal(err)
		}
		if seen[string(m)] {
			t.Fatalf("duplicate message %q", m)
		}
		seen[string(m)] = true
	}
}

// Property: append/read round-trips arbitrary payloads in order, across
// a close/reopen cycle.
func TestPropertyTopicRoundTrip(t *testing.T) {
	f := func(msgs [][]byte) bool {
		if len(msgs) > 64 {
			return true
		}
		dir := t.TempDir()
		tp, err := OpenTopic(dir, "prop")
		if err != nil {
			return false
		}
		for _, m := range msgs {
			if _, err := tp.Append(m); err != nil {
				return false
			}
		}
		tp.Close()
		tp2, err := OpenTopic(dir, "prop")
		if err != nil {
			return false
		}
		defer tp2.Close()
		if tp2.Len() != int64(len(msgs)) {
			return false
		}
		for i, want := range msgs {
			got, err := tp2.Read(int64(i))
			if err != nil || string(got) != string(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

var _ args.Source = (args.SourceFunc)(nil)

func BenchmarkTopicAppend(b *testing.B) {
	tp, err := OpenTopic(b.TempDir(), "bench")
	if err != nil {
		b.Fatal(err)
	}
	defer tp.Close()
	msg := []byte("a representative workflow queue message payload")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tp.Append(msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopicRead(b *testing.B) {
	tp, _ := OpenTopic(b.TempDir(), "bench")
	defer tp.Close()
	for i := 0; i < 1000; i++ {
		tp.Append([]byte("message payload for read benchmarking"))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tp.Read(int64(i % 1000)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBrokerRoundTrip(b *testing.B) {
	br := NewBroker(b.TempDir())
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	defer br.Close()
	go br.Serve(ctx, l)
	c, err := DialBroker(l.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	msg := []byte("round trip payload")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Produce("rt", msg); err != nil {
			b.Fatal(err)
		}
	}
}
