// Package mq implements the extension §IV-A suggests for production
// workflows: replacing the queue-file stage link with a centralized
// message-queue service ("such as Apache Kafka"). It provides a
// single-node, file-backed, topic-based queue with consumer groups and a
// TCP broker, plus an args.Source adapter so a parallel engine can
// consume a topic directly — the queue-driven generalization of
// `tail -f q.proc | parallel`.
//
// Scope: durability and at-least-once delivery on one node. It is a
// workflow stage link, not a replicated log.
package mq

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
)

// ErrOutOfRange reports a read past the end (or before the start) of a
// topic.
var ErrOutOfRange = errors.New("mq: sequence out of range")

// maxMessageSize bounds a single message (sanity cap, matches the
// broker's frame limit).
const maxMessageSize = 16 << 20

// Topic is an append-only message log on disk. The on-disk format is a
// sequence of [uint32 length][payload] frames; an in-memory index maps
// sequence numbers (0-based) to byte offsets. Reopening a topic replays
// the file to rebuild the index, truncating a torn trailing write.
type Topic struct {
	name string
	dir  string

	mu      sync.Mutex
	f       *os.File
	offsets []int64 // offsets[i] = byte offset of message i
	size    int64   // current file size (append position)
	waiters []chan struct{}
}

// OpenTopic opens (creating if needed) the named topic in dir.
func OpenTopic(dir, name string) (*Topic, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	path := filepath.Join(dir, name+".log")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	t := &Topic{name: name, dir: dir, f: f}
	if err := t.replay(); err != nil {
		f.Close()
		return nil, err
	}
	return t, nil
}

func validName(name string) error {
	if name == "" || strings.ContainsAny(name, "/\\.") {
		return fmt.Errorf("mq: invalid topic name %q", name)
	}
	return nil
}

// replay scans the log file to rebuild the index. A torn final frame
// (crash mid-append) is truncated away.
func (t *Topic) replay() error {
	info, err := t.f.Stat()
	if err != nil {
		return err
	}
	total := info.Size()
	var off int64
	var hdr [4]byte
	for off < total {
		if _, err := t.f.ReadAt(hdr[:], off); err != nil {
			break // torn header
		}
		n := int64(binary.LittleEndian.Uint32(hdr[:]))
		if n > maxMessageSize || off+4+n > total {
			break // torn payload or corrupt length
		}
		t.offsets = append(t.offsets, off)
		off += 4 + n
	}
	if off < total {
		if err := t.f.Truncate(off); err != nil {
			return err
		}
	}
	t.size = off
	return nil
}

// Name returns the topic name.
func (t *Topic) Name() string { return t.name }

// Len returns the number of messages in the topic.
func (t *Topic) Len() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return int64(len(t.offsets))
}

// Append adds a message and returns its sequence number.
func (t *Topic) Append(msg []byte) (int64, error) {
	if len(msg) > maxMessageSize {
		return 0, fmt.Errorf("mq: message of %d bytes exceeds cap", len(msg))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(msg)))
	if _, err := t.f.WriteAt(hdr[:], t.size); err != nil {
		return 0, err
	}
	if _, err := t.f.WriteAt(msg, t.size+4); err != nil {
		return 0, err
	}
	seq := int64(len(t.offsets))
	t.offsets = append(t.offsets, t.size)
	t.size += 4 + int64(len(msg))
	// Wake long-polling consumers.
	for _, ch := range t.waiters {
		close(ch)
	}
	t.waiters = nil
	return seq, nil
}

// Read returns message seq.
func (t *Topic) Read(seq int64) ([]byte, error) {
	t.mu.Lock()
	if seq < 0 || seq >= int64(len(t.offsets)) {
		t.mu.Unlock()
		return nil, fmt.Errorf("%w: %d of %d", ErrOutOfRange, seq, len(t.offsets))
	}
	off := t.offsets[seq]
	t.mu.Unlock()

	var hdr [4]byte
	if _, err := t.f.ReadAt(hdr[:], off); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	buf := make([]byte, n)
	// ReadAt returns io.EOF even on a complete read that ends exactly at
	// the file's end — the last message always does. Tolerate EOF only
	// then: a short read (external truncation, torn replica copy) must
	// surface as an error, not as a silently zero-padded payload.
	if rn, err := t.f.ReadAt(buf, off+4); err != nil && !(err == io.EOF && rn == len(buf)) {
		return nil, fmt.Errorf("mq: topic %s message %d: read %d of %d payload bytes: %w",
			t.name, seq, rn, len(buf), err)
	}
	return buf, nil
}

// WaitFor returns a channel that closes when a message with sequence
// >= seq exists (immediately-closed if it already does). Used for
// long-poll consumption.
func (t *Topic) WaitFor(seq int64) <-chan struct{} {
	t.mu.Lock()
	defer t.mu.Unlock()
	ch := make(chan struct{})
	if seq < int64(len(t.offsets)) {
		close(ch)
		return ch
	}
	t.waiters = append(t.waiters, ch)
	return ch
}

// Commit durably records a consumer group's next-to-read sequence.
func (t *Topic) Commit(group string, next int64) error {
	if err := validName(group); err != nil {
		return err
	}
	path := t.offsetPath(group)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(strconv.FormatInt(next, 10)), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Committed returns the group's committed next-to-read sequence (0 when
// the group is new).
func (t *Topic) Committed(group string) (int64, error) {
	if err := validName(group); err != nil {
		return 0, err
	}
	data, err := os.ReadFile(t.offsetPath(group))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	return strconv.ParseInt(strings.TrimSpace(string(data)), 10, 64)
}

func (t *Topic) offsetPath(group string) string {
	return filepath.Join(t.dir, t.name+".offset."+group)
}

// Close releases the topic's file handle. Pending waiters are woken so
// long-polls terminate.
func (t *Topic) Close() error {
	t.mu.Lock()
	for _, ch := range t.waiters {
		close(ch)
	}
	t.waiters = nil
	t.mu.Unlock()
	return t.f.Close()
}
