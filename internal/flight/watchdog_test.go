package flight

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// diagLog collects OnDiag callbacks for assertions.
type diagLog struct{ kinds, details []string }

func (d *diagLog) hook(name, detail string) {
	d.kinds = append(d.kinds, name)
	d.details = append(d.details, detail)
}

func (d *diagLog) has(kind string) bool {
	for _, k := range d.kinds {
		if k == kind {
			return true
		}
	}
	return false
}

// TestWatchdogDispatchP99 feeds slow dispatch samples and checks the
// ceiling rule fires, once, until the cooldown expires.
func TestWatchdogDispatchP99(t *testing.T) {
	var log diagLog
	r := New(Options{
		EventBuf: 64,
		OnDiag:   log.hook,
		Watchdog: WatchdogConfig{DispatchP99: time.Millisecond, Cooldown: time.Hour},
	})
	for i := 1; i <= 50; i++ {
		ev := sampleEvent(i, core.EventFinished)
		ev.DispatchDelay = 10 * time.Millisecond
		r.RecordEvent(ev)
	}
	r.Tick()
	if !log.has("dispatch-p99") {
		t.Fatalf("dispatch-p99 never fired; diags = %v", log.kinds)
	}
	if !strings.Contains(log.details[0], "ceiling 1ms") {
		t.Fatalf("detail missing ceiling: %q", log.details[0])
	}
	fired := len(log.kinds)
	r.Tick() // within cooldown: silent
	if len(log.kinds) != fired {
		t.Fatalf("anomaly re-fired within cooldown: %v", log.kinds)
	}
}

// TestWatchdogQueueStuck builds a backlog that never completes and
// checks the monotone-stuck rule fires after the configured ticks —
// and does not fire while completions are flowing.
func TestWatchdogQueueStuck(t *testing.T) {
	var log diagLog
	r := New(Options{
		EventBuf: 256,
		OnDiag:   log.hook,
		Watchdog: WatchdogConfig{StuckTicks: 3, Cooldown: time.Hour},
	})
	// Healthy phase: queue and complete.
	for i := 1; i <= 5; i++ {
		r.RecordEvent(sampleEvent(i, core.EventQueued))
		r.RecordEvent(sampleEvent(i, core.EventStarted))
		r.RecordEvent(sampleEvent(i, core.EventFinished))
		r.Tick()
	}
	if log.has("queue-stuck") {
		t.Fatalf("queue-stuck fired on a healthy queue: %v", log.kinds)
	}
	// Stall: depth grows, nothing completes.
	for i := 6; i <= 10; i++ {
		r.RecordEvent(sampleEvent(i, core.EventQueued))
	}
	for i := 0; i < 3; i++ {
		r.Tick()
	}
	if !log.has("queue-stuck") {
		t.Fatalf("queue-stuck never fired on a stalled queue: %v", log.kinds)
	}
}

// TestWatchdogStraggler starts a peer group, finishes most of it, and
// checks the k-times-median rule flags the survivor.
func TestWatchdogStraggler(t *testing.T) {
	var log diagLog
	r := New(Options{
		EventBuf: 256,
		OnDiag:   log.hook,
		Watchdog: WatchdogConfig{StragglerK: 3, StragglerMin: time.Millisecond, Cooldown: time.Hour},
	})
	now := time.Now()
	// Nine peers started just now, one straggler started long ago.
	for i := 1; i <= 9; i++ {
		ev := sampleEvent(i, core.EventStarted)
		ev.Time = now
		r.RecordEvent(ev)
	}
	old := sampleEvent(10, core.EventStarted)
	old.Time = now.Add(-time.Minute)
	r.RecordEvent(old)
	r.Tick()
	if !log.has("straggler") {
		t.Fatalf("straggler never fired: %v", log.kinds)
	}
	if !strings.Contains(log.details[len(log.details)-1], "seq 10") {
		t.Fatalf("straggler detail names the wrong job: %q", log.details[len(log.details)-1])
	}
}

// TestWatchdogGaugeDrop drives a pool-health-shaped source through a
// capacity drop and checks the drop rule fires on decrease only.
func TestWatchdogGaugeDrop(t *testing.T) {
	var log diagLog
	r := New(Options{
		EventBuf: 64,
		OnDiag:   log.hook,
		Watchdog: WatchdogConfig{DropStats: []string{"pool.live"}, Cooldown: time.Hour},
	})
	live := 16.0
	r.AddSource("pool", func(buf []Stat) []Stat {
		return append(buf, Stat{"live", live}, Stat{"total", 16})
	})
	r.Tick()
	r.Tick() // steady: no anomaly
	if log.has("gauge-drop") {
		t.Fatalf("gauge-drop fired without a drop: %v", log.kinds)
	}
	live = 12
	r.Tick()
	if !log.has("gauge-drop") {
		t.Fatalf("gauge-drop never fired after capacity loss: %v", log.kinds)
	}
	if !strings.Contains(log.details[len(log.details)-1], "pool.live dropped 16 -> 12") {
		t.Fatalf("drop detail = %q", log.details[len(log.details)-1])
	}
}

// TestWatchdogAnomalyRecorded checks anomalies land in the ring as
// records a dump surfaces.
func TestWatchdogAnomalyRecorded(t *testing.T) {
	r := New(Options{
		EventBuf: 64,
		Watchdog: WatchdogConfig{DispatchP99: time.Microsecond, Cooldown: time.Hour},
	})
	for i := 1; i <= 20; i++ {
		ev := sampleEvent(i, core.EventFinished)
		ev.DispatchDelay = time.Millisecond
		r.RecordEvent(ev)
	}
	r.Tick()
	d := r.Dump()
	found := false
	for _, rec := range d.Records {
		if rec.Kind == "anomaly" && rec.Source == "dispatch-p99" {
			found = true
		}
	}
	if !found || d.Anomalies != 1 {
		t.Fatalf("anomaly not in dump (found=%v, count=%d)", found, d.Anomalies)
	}
}
