package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"
)

// DumpVersion is the dump wire-format version.
const DumpVersion = 1

// EventRecord is the wire shape of one retained lifecycle event.
type EventRecord struct {
	Type       string  `json:"type"`
	Seq        int     `json:"seq"`
	Slot       int     `json:"slot,omitempty"`
	Attempt    int     `json:"attempt,omitempty"`
	OK         bool    `json:"ok,omitempty"`
	Exit       int     `json:"exit,omitempty"`
	Host       string  `json:"host,omitempty"`
	Command    string  `json:"command,omitempty"`
	DurationMS float64 `json:"duration_ms,omitempty"`
	DispatchUS float64 `json:"dispatch_us,omitempty"`
}

// Record is the wire shape of one retained ring record.
type Record struct {
	Seq  uint64    `json:"seq"`
	Time time.Time `json:"time"`
	Kind string    `json:"kind"` // event | snapshot | anomaly

	Event *EventRecord `json:"event,omitempty"`

	// Snapshot/anomaly fields.
	Source string             `json:"source,omitempty"`
	Detail string             `json:"detail,omitempty"`
	Stats  map[string]float64 `json:"stats,omitempty"`
}

// Dump is a point-in-time copy of everything the recorder retains,
// plus process identity for post-mortem context.
type Dump struct {
	Version   int       `json:"version"`
	Program   string    `json:"program,omitempty"`
	PID       int       `json:"pid"`
	GoVersion string    `json:"go_version"`
	Hostname  string    `json:"hostname,omitempty"`
	Start     time.Time `json:"start"`
	Time      time.Time `json:"time"`

	Events     int64 `json:"events"`      // total events recorded
	EventsLost int64 `json:"events_lost"` // overwritten before this dump
	Anomalies  int64 `json:"anomalies"`
	Overflow   int64 `json:"tracked_jobs_overflow,omitempty"`

	Depth    int64 `json:"queue_depth"`
	Running  int64 `json:"running"`
	Finished int64 `json:"finished"`
	Killed   int64 `json:"killed"`

	Records []Record `json:"records"`
}

// Dump snapshots the rings: each shard is copied under its lock, the
// copies are merged by global sequence, and the result carries the
// live gauges. Safe to call from any goroutine at any time; in-flight
// jobs are not disturbed (recording proceeds on other shards while
// one is being copied).
//
// A fresh snapshot pass runs first so the dump always ends with the
// current state of every source, even if the periodic sampler has not
// ticked since a component registered.
func (r *Recorder) Dump() *Dump {
	r.Tick()
	d := &Dump{
		Version:   DumpVersion,
		Program:   r.opt.Program,
		PID:       os.Getpid(),
		GoVersion: runtime.Version(),
		Start:     r.start,
		Time:      time.Now(),
		Anomalies: r.anomalies.Load(),
		Overflow:  r.openOverflow.Load(),
	}
	if h, err := os.Hostname(); err == nil {
		d.Hostname = h
	}
	d.Depth, d.Running, d.Finished, d.Killed = r.gauges()

	var evs []eventRec
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		n := sh.n
		have := n
		if have > uint64(len(sh.ring)) {
			have = uint64(len(sh.ring))
			d.EventsLost += int64(n - have)
		}
		for j := uint64(0); j < have; j++ {
			evs = append(evs, sh.ring[(n-have+j)&uint64(len(sh.ring)-1)])
		}
		sh.mu.Unlock()
		d.Events += int64(n)
	}

	var ctrls []ctrlRec
	r.ctrlMu.Lock()
	n := r.ctrlN
	have := n
	if have > uint64(len(r.ctrl)) {
		have = uint64(len(r.ctrl))
	}
	for j := uint64(0); j < have; j++ {
		ctrls = append(ctrls, r.ctrl[(n-have+j)&uint64(len(r.ctrl)-1)])
	}
	r.ctrlMu.Unlock()

	d.Records = make([]Record, 0, len(evs)+len(ctrls))
	for _, e := range evs {
		er := &EventRecord{
			Type:    e.ev.Type.String(),
			Seq:     e.ev.Seq,
			Slot:    e.ev.Slot,
			Attempt: e.ev.Attempt,
			OK:      e.ev.OK,
			Exit:    e.ev.ExitCode,
			Host:    e.ev.Host,
			Command: e.ev.Command,
		}
		if e.ev.Duration > 0 {
			er.DurationMS = float64(e.ev.Duration.Nanoseconds()) / 1e6
		}
		if e.ev.DispatchDelay > 0 {
			er.DispatchUS = float64(e.ev.DispatchDelay.Nanoseconds()) / 1e3
		}
		d.Records = append(d.Records, Record{
			Seq: e.seq, Time: e.ev.Time, Kind: KindEvent.String(), Event: er,
		})
	}
	for _, c := range ctrls {
		rec := Record{
			Seq:    c.seq,
			Time:   time.Unix(0, c.t),
			Kind:   c.kind.String(),
			Source: c.name,
			Detail: c.detail,
		}
		if c.nstats > 0 {
			rec.Stats = make(map[string]float64, c.nstats)
			for _, st := range c.stats[:c.nstats] {
				rec.Stats[st.Name] = st.V
			}
		}
		d.Records = append(d.Records, rec)
	}
	sort.Slice(d.Records, func(i, j int) bool { return d.Records[i].Seq < d.Records[j].Seq })
	return d
}

// WriteJSON writes the dump as indented JSON.
func (d *Dump) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(d)
}

// ReadDump parses a dump written by WriteJSON.
func ReadDump(r io.Reader) (*Dump, error) {
	var d Dump
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("flight: parsing dump: %w", err)
	}
	if d.Version != DumpVersion {
		return nil, fmt.Errorf("flight: unsupported dump version %d (want %d)", d.Version, DumpVersion)
	}
	return &d, nil
}

// WriteTable renders the dump as a human-readable timeline: a header
// block with process identity and gauges, then one line per record,
// oldest first, timestamped relative to the dump instant.
func (d *Dump) WriteTable(w io.Writer) error {
	fmt.Fprintf(w, "flight dump: %s pid %d (%s, %s) taken %s\n",
		orUnknown(d.Program), d.PID, d.GoVersion, orUnknown(d.Hostname),
		d.Time.Format(time.RFC3339))
	fmt.Fprintf(w, "recording since %s (%v); %d events recorded, %d overwritten, %d anomalies\n",
		d.Start.Format(time.RFC3339), d.Time.Sub(d.Start).Round(time.Second),
		d.Events, d.EventsLost, d.Anomalies)
	fmt.Fprintf(w, "gauges: depth=%d running=%d finished=%d killed=%d\n\n",
		d.Depth, d.Running, d.Finished, d.Killed)
	fmt.Fprintf(w, "%12s  %-8s  %s\n", "T-OFFSET", "KIND", "DETAIL")
	for _, rec := range d.Records {
		off := d.Time.Sub(rec.Time).Round(time.Millisecond)
		fmt.Fprintf(w, "%12s  %-8s  %s\n", "-"+off.String(), rec.Kind, recordDetail(rec))
	}
	_, err := fmt.Fprintln(w)
	return err
}

func orUnknown(s string) string {
	if s == "" {
		return "?"
	}
	return s
}

// recordDetail formats one record's payload for the table view.
func recordDetail(rec Record) string {
	switch rec.Kind {
	case "event":
		e := rec.Event
		if e == nil {
			return "(malformed event record)"
		}
		var b strings.Builder
		fmt.Fprintf(&b, "%-8s seq=%d", e.Type, e.Seq)
		if e.Slot > 0 {
			fmt.Fprintf(&b, " slot=%d", e.Slot)
		}
		if e.Type == "finished" || e.Type == "killed" {
			fmt.Fprintf(&b, " ok=%v exit=%d", e.OK, e.Exit)
			if e.DurationMS > 0 {
				fmt.Fprintf(&b, " dur=%.1fms", e.DurationMS)
			}
			if e.DispatchUS > 0 {
				fmt.Fprintf(&b, " dispatch=%.0fus", e.DispatchUS)
			}
		}
		if e.Host != "" {
			fmt.Fprintf(&b, " host=%s", e.Host)
		}
		if e.Command != "" {
			cmd := e.Command
			if len(cmd) > 60 {
				cmd = cmd[:57] + "..."
			}
			fmt.Fprintf(&b, " cmd=%q", cmd)
		}
		return b.String()
	case "snapshot":
		names := make([]string, 0, len(rec.Stats))
		for k := range rec.Stats {
			names = append(names, k)
		}
		sort.Strings(names)
		var b strings.Builder
		fmt.Fprintf(&b, "%-8s", rec.Source)
		for _, k := range names {
			fmt.Fprintf(&b, " %s=%g", k, rec.Stats[k])
		}
		return b.String()
	case "anomaly":
		return fmt.Sprintf("%s: %s", rec.Source, rec.Detail)
	default:
		return rec.Detail
	}
}

// DumpToFile writes a dump into dir as flight-<pid>-<unixtime>.json
// and returns the path. The write goes through a temp file + rename
// so a reader never sees a torn dump.
func DumpToFile(r *Recorder, dir string) (string, error) {
	d := r.Dump()
	if dir == "" {
		dir = os.TempDir()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("flight-%d-%d.json", d.PID, d.Time.UnixNano()))
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return "", err
	}
	if err := d.WriteJSON(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", err
	}
	return path, nil
}
