package flight

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

func sampleEvent(seq int, typ core.EventType) core.Event {
	ev := core.Event{
		Type:    typ,
		Seq:     seq,
		Slot:    1 + seq%8,
		Attempt: 1,
		Time:    time.Now(),
		Command: "payload --input file.dat",
	}
	if typ == core.EventFinished {
		ev.OK = true
		ev.Duration = 12 * time.Millisecond
		ev.DispatchDelay = 40 * time.Microsecond
	}
	return ev
}

// TestRecordEventZeroAllocs pins the acceptance criterion: the record
// path allocates nothing in steady state, whatever the event type.
func TestRecordEventZeroAllocs(t *testing.T) {
	r := New(Options{EventBuf: 256})
	types := []core.EventType{core.EventQueued, core.EventStarted, core.EventFinished}
	seq := 0
	for _, typ := range types {
		typ := typ
		allocs := testing.AllocsPerRun(1000, func() {
			seq++
			r.RecordEvent(sampleEvent(seq, typ))
		})
		if allocs != 0 {
			t.Fatalf("RecordEvent(%v) allocates %.1f/op, want 0", typ, allocs)
		}
	}
}

// TestDumpRetainsAndOrders drives events and control records through
// a tiny ring, then checks the dump merges everything in global
// order, reports the overwritten count, and carries the gauges.
func TestDumpRetainsAndOrders(t *testing.T) {
	r := New(Options{EventBuf: 64, CtrlBuf: 16})
	const jobs = 200
	for i := 1; i <= jobs; i++ {
		r.RecordEvent(sampleEvent(i, core.EventQueued))
		r.RecordEvent(sampleEvent(i, core.EventStarted))
		if i%10 == 0 {
			r.Diag("test-mark", fmt.Sprintf("mark at job %d", i))
		}
		r.RecordEvent(sampleEvent(i, core.EventFinished))
	}
	d := r.Dump()
	if d.Events != 3*jobs {
		t.Fatalf("Events = %d, want %d", d.Events, 3*jobs)
	}
	if d.EventsLost == 0 {
		t.Fatalf("expected overwrites with a 64-entry ring and %d events", 3*jobs)
	}
	if d.Running != 0 || d.Finished != int64(jobs) {
		t.Fatalf("gauges: running=%d finished=%d, want 0/%d", d.Running, d.Finished, jobs)
	}
	if d.Anomalies != jobs/10 {
		t.Fatalf("Anomalies = %d, want %d", d.Anomalies, jobs/10)
	}
	var lastSeq uint64
	var events, diags int
	for _, rec := range d.Records {
		if rec.Seq <= lastSeq {
			t.Fatalf("records out of order: seq %d after %d", rec.Seq, lastSeq)
		}
		lastSeq = rec.Seq
		switch rec.Kind {
		case "event":
			events++
		case "anomaly":
			diags++
		}
	}
	if events == 0 || diags == 0 {
		t.Fatalf("dump lost a record kind: %d events, %d diags", events, diags)
	}
	// The retained tail must be the newest events: the last event
	// record is job `jobs` finishing.
	for i := len(d.Records) - 1; i >= 0; i-- {
		if d.Records[i].Kind == "event" {
			if got := d.Records[i].Event; got.Seq != jobs || got.Type != "finished" {
				t.Fatalf("newest retained event = %+v, want finished seq %d", got, jobs)
			}
			break
		}
	}
}

// TestDumpJSONRoundTrip writes a dump and reads it back.
func TestDumpJSONRoundTrip(t *testing.T) {
	r := New(Options{EventBuf: 64, Program: "testprog"})
	for i := 1; i <= 5; i++ {
		r.RecordEvent(sampleEvent(i, core.EventQueued))
		r.RecordEvent(sampleEvent(i, core.EventStarted))
		r.RecordEvent(sampleEvent(i, core.EventFinished))
	}
	r.Tick() // one snapshot pass so the dump carries control records
	d := r.Dump()
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Program != "testprog" || len(got.Records) != len(d.Records) {
		t.Fatalf("round trip: program=%q records=%d, want %q/%d",
			got.Program, len(got.Records), d.Program, len(d.Records))
	}
	var table bytes.Buffer
	if err := got.WriteTable(&table); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"testprog", "snapshot", "goroutines", "finished"} {
		if !strings.Contains(table.String(), want) {
			t.Fatalf("table render missing %q:\n%s", want, table.String())
		}
	}
}

// TestDumpToFile verifies the file trigger writes a parseable dump.
func TestDumpToFile(t *testing.T) {
	r := New(Options{EventBuf: 64})
	r.RecordEvent(sampleEvent(1, core.EventQueued))
	dir := t.TempDir()
	path, err := DumpToFile(r, dir)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	d, err := ReadDump(f)
	if err != nil {
		t.Fatal(err)
	}
	if d.Events != 1 {
		t.Fatalf("Events = %d, want 1", d.Events)
	}
}

// TestConcurrentRecordAndDump hammers the recorder from many
// goroutines while dumping, to give the race detector something to
// chew on and to check no dump observes torn ordering.
func TestConcurrentRecordAndDump(t *testing.T) {
	r := New(Options{EventBuf: 256, CtrlBuf: 32})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				i++
				seq := g*1_000_000 + i
				r.RecordEvent(sampleEvent(seq, core.EventStarted))
				r.RecordEvent(sampleEvent(seq, core.EventFinished))
			}
		}(g)
	}
	for i := 0; i < 20; i++ {
		d := r.Dump()
		var last uint64
		for _, rec := range d.Records {
			if rec.Seq <= last {
				t.Errorf("dump %d out of order: %d after %d", i, rec.Seq, last)
				break
			}
			last = rec.Seq
		}
		r.Tick()
	}
	close(stop)
	wg.Wait()
}

// TestOpenJobTable exercises straggler tracking insert/delete across
// wrap and overflow.
func TestOpenJobTable(t *testing.T) {
	r := New(Options{EventBuf: 64, MaxTrackedJobs: 4})
	now := time.Now().UnixNano()
	for i := 1; i <= 4; i++ {
		r.trackStart(int64(i), now)
	}
	if r.openLive != 4 {
		t.Fatalf("live = %d, want 4", r.openLive)
	}
	r.trackStart(5, now) // over capacity
	if r.openOverflow.Load() != 1 {
		t.Fatalf("overflow = %d, want 1", r.openOverflow.Load())
	}
	r.trackEnd(2)
	r.trackEnd(2) // double-end is a no-op
	if r.openLive != 3 {
		t.Fatalf("live after end = %d, want 3", r.openLive)
	}
	r.trackStart(6, now) // reuses the tombstone
	if r.openLive != 4 || r.openOverflow.Load() != 1 {
		t.Fatalf("live=%d overflow=%d after tombstone reuse", r.openLive, r.openOverflow.Load())
	}
	for _, seq := range []int64{1, 3, 4, 6} {
		r.trackEnd(seq)
	}
	if r.openLive != 0 {
		t.Fatalf("live = %d after draining, want 0", r.openLive)
	}
}

// TestHandlerAuth pins the token gate on /debug/flight.
func TestHandlerAuth(t *testing.T) {
	r := New(Options{EventBuf: 64})
	r.RecordEvent(sampleEvent(1, core.EventQueued))
	srv := httptest.NewServer(Handler(r, "s3cret"))
	defer srv.Close()

	get := func(path, bearer string) int {
		req := httptest.NewRequest("GET", path, nil)
		req.RequestURI = ""
		req.URL, _ = req.URL.Parse(srv.URL + path)
		if bearer != "" {
			req.Header.Set("Authorization", "Bearer "+bearer)
		}
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/debug/flight", ""); code != 403 {
		t.Fatalf("no token: status %d, want 403", code)
	}
	if code := get("/debug/flight", "wrong"); code != 403 {
		t.Fatalf("wrong token: status %d, want 403", code)
	}
	if code := get("/debug/flight", "s3cret"); code != 200 {
		t.Fatalf("bearer token: status %d, want 200", code)
	}
	if code := get("/debug/flight?token=s3cret&format=table", ""); code != 200 {
		t.Fatalf("query token: status %d, want 200", code)
	}
	if code := get("/debug/flight?token=s3cret&format=nope", ""); code != 400 {
		t.Fatalf("bad format: status %d, want 400", code)
	}
}

// TestDebugMuxServesPprof checks the combined debug surface mounts
// both the dump and the stdlib profiler.
func TestDebugMuxServesPprof(t *testing.T) {
	r := New(Options{EventBuf: 64})
	srv := httptest.NewServer(DebugMux(r, ""))
	defer srv.Close()
	for _, path := range []string{"/debug/flight", "/debug/pprof/"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d, want 200", path, resp.StatusCode)
		}
	}
}

// TestStartStop exercises the sampler lifecycle.
func TestStartStop(t *testing.T) {
	r := New(Options{EventBuf: 64, SnapshotInterval: time.Millisecond})
	r.Start()
	r.Start() // idempotent
	deadline := time.Now().Add(5 * time.Second)
	for {
		d := r.Dump()
		found := false
		for _, rec := range d.Records {
			if rec.Kind == "snapshot" && rec.Source == "runtime" {
				found = true
				break
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sampler never produced a runtime snapshot")
		}
		time.Sleep(time.Millisecond)
	}
	r.Stop()
	r.Stop() // idempotent
}

// TestSourceAddRemove checks source replacement and removal.
func TestSourceAddRemove(t *testing.T) {
	r := New(Options{EventBuf: 64})
	r.AddSource("q", func(buf []Stat) []Stat { return append(buf, Stat{"depth", 7}) })
	r.Tick()
	d := r.Dump()
	var got float64 = -1
	for _, rec := range d.Records {
		if rec.Kind == "snapshot" && rec.Source == "q" {
			got = rec.Stats["depth"]
		}
	}
	if got != 7 {
		t.Fatalf("source stat = %v, want 7", got)
	}
	r.AddSource("q", func(buf []Stat) []Stat { return append(buf, Stat{"depth", 9}) })
	r.RemoveSource("q")
	r.RemoveSource("q") // absent: no-op
	before := len(r.Dump().Records)
	r.Tick()
	for _, rec := range r.Dump().Records[before:] {
		if rec.Source == "q" {
			t.Fatal("removed source still sampled")
		}
	}
}
