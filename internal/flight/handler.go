package flight

import (
	"crypto/subtle"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// Logf is the operational-logging hook the trigger surfaces use.
type Logf func(format string, args ...any)

// Handler serves the recorder's dump at any path (conventionally
// mounted at /debug/flight):
//
//	GET /debug/flight              JSON dump (the wire format ReadDump parses)
//	GET /debug/flight?format=table human-readable timeline
//
// When token is non-empty the request must present it, either as
// "Authorization: Bearer <token>" or ?token=<token>; a mismatch is a
// 403. An empty token leaves the endpoint open — only acceptable on a
// loopback debug listener.
func Handler(r *Recorder, token string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if !authorized(req, token) {
			http.Error(w, "flight: bad or missing debug token", http.StatusForbidden)
			return
		}
		d := r.Dump()
		switch req.URL.Query().Get("format") {
		case "", "json":
			w.Header().Set("Content-Type", "application/json")
			d.WriteJSON(w)
		case "table":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			d.WriteTable(w)
		default:
			http.Error(w, "flight: unknown format (want json or table)", http.StatusBadRequest)
		}
	})
}

func authorized(req *http.Request, token string) bool {
	if token == "" {
		return true
	}
	got := req.URL.Query().Get("token")
	if h := req.Header.Get("Authorization"); len(h) > 7 && h[:7] == "Bearer " {
		got = h[7:]
	}
	return subtle.ConstantTimeCompare([]byte(got), []byte(token)) == 1
}

// DebugMux builds the standard debug listener surface: the flight
// dump at /debug/flight and the stdlib pprof handlers under
// /debug/pprof/. This is what --debug-addr serves in gopar,
// `gopar serve` and gopard.
func DebugMux(r *Recorder, token string) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/debug/flight", Handler(r, token))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		fmt.Fprintln(w, "see /debug/flight and /debug/pprof/")
	})
	return mux
}

// Serve starts the DebugMux on addr in the background and returns the
// bound address (useful with ":0") and a closer — the --debug-addr
// implementation shared by gopar, `gopar serve` and gopard.
func Serve(addr string, r *Recorder, token string) (bound string, closeFn func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("flight: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: DebugMux(r, token), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Close, nil
}

// NotifySignal arms a SIGQUIT handler that writes a dump file into
// dir (os.TempDir() when empty) each time the signal arrives, then
// keeps running — the classic kill -QUIT black-box trigger, without
// the Go runtime's default die-with-stacks behavior. Returns a stop
// function that disarms the handler.
func NotifySignal(r *Recorder, dir string, logf Logf) (stop func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-ch:
				path, err := DumpToFile(r, dir)
				if err != nil {
					if logf != nil {
						logf("flight: SIGQUIT dump failed: %v", err)
					}
					continue
				}
				if logf != nil {
					logf("flight: dump written to %s", path)
				}
			case <-done:
				return
			}
		}
	}()
	return func() {
		signal.Stop(ch)
		close(done)
	}
}

// DumpOnPanic is a deferred black-box trigger: when the surrounding
// goroutine is unwinding from a panic it stamps a "panic" diagnostic,
// writes a dump file into dir, and re-panics so the process still
// dies loudly with the original value. Use as:
//
//	defer flight.DumpOnPanic(rec, dir, logf)
func DumpOnPanic(r *Recorder, dir string, logf Logf) {
	v := recover()
	if v == nil {
		return
	}
	r.Diag("panic", fmt.Sprint(v))
	if path, err := DumpToFile(r, dir); err == nil {
		if logf != nil {
			logf("flight: panic dump written to %s", path)
		}
	} else if logf != nil {
		logf("flight: panic dump failed: %v", err)
	}
	panic(v)
}
