package flight

import (
	"context"
	"testing"
	"time"

	"repro/internal/args"
	"repro/internal/core"
)

// runNoop drives the real engine through n no-op jobs with onEvent as
// the lifecycle hook (nil = recording off) and returns the wall time —
// the telemetry overhead harness, pointed at the flight recorder.
func runNoop(tb testing.TB, n int, onEvent func(core.Event)) time.Duration {
	tb.Helper()
	spec, err := core.NewSpec("", 16)
	if err != nil {
		tb.Fatal(err)
	}
	spec.OnEvent = onEvent
	noop := core.FuncRunner(func(ctx context.Context, job *core.Job) ([]byte, error) {
		return nil, nil
	})
	eng, err := core.NewEngine(spec, noop)
	if err != nil {
		tb.Fatal(err)
	}
	items := make([]string, n)
	start := time.Now()
	stats, _, err := eng.Run(context.Background(), args.Literal(items...))
	if err != nil || stats.Succeeded != n {
		tb.Fatalf("stats=%+v err=%v", stats, err)
	}
	return time.Since(start)
}

// BenchmarkDispatchFlight measures engine dispatch throughput with
// the flight recorder off vs recording every event — the always-on
// budget the package doc promises.
func BenchmarkDispatchFlight(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		d := runNoop(b, b.N, nil)
		b.ReportMetric(float64(b.N)/d.Seconds(), "jobs/s")
	})
	b.Run("on", func(b *testing.B) {
		r := New(Options{})
		d := runNoop(b, b.N, r.RecordEvent)
		b.ReportMetric(float64(b.N)/d.Seconds(), "jobs/s")
	})
}

// BenchmarkRecordEvent is the isolated record-path cost (the number
// the <5%-of-dispatch budget is paid out of).
func BenchmarkRecordEvent(b *testing.B) {
	r := New(Options{})
	ev := sampleEvent(1, core.EventFinished)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			ev.Seq = i
			r.RecordEvent(ev)
		}
	})
}

// TestFlightOverheadBound is the committed regression guard for the
// <5% dispatch-overhead target with the recorder always on, in the
// style of telemetry's TestDispatchOverheadBound. The CI bound is
// deliberately generous (shared runners are noisy): it fails only
// when recording costs both >50% relative AND >5µs/job absolute —
// locally the recorder lands well under the 5% target.
func TestFlightOverheadBound(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test skipped in -short mode")
	}
	const n = 10000
	best := func(f func() time.Duration) time.Duration {
		b := f()
		for i := 0; i < 2; i++ {
			if d := f(); d < b {
				b = d
			}
		}
		return b
	}
	off := best(func() time.Duration { return runNoop(t, n, nil) })
	rec := New(Options{})
	on := best(func() time.Duration { return runNoop(t, n, rec.RecordEvent) })
	extra := on - off
	perJob := extra / n
	t.Logf("dispatch %d no-op jobs: off=%v on=%v (delta %v, %v/job)", n, off, on, extra, perJob)
	if rec.Events() != 3*n*int64(3) { // 3 runs × (queued+started+finished) per job
		t.Fatalf("recorder saw %d events, want %d", rec.Events(), 9*n)
	}
	if raceEnabled {
		t.Skip("race-detector instrumentation dominates the measured overhead; bound not meaningful")
	}
	if on > off*3/2 && perJob > 5*time.Microsecond {
		t.Fatalf("flight overhead too high: off=%v on=%v (delta %v, %v/job)", off, on, extra, perJob)
	}
}
