// Package flight is the always-on flight recorder for long-lived
// launcher processes: a fixed-memory, lock-light black box that
// retains the last N job-lifecycle events plus periodic component
// snapshots (scheduler depth, WAL sync lag, pool health, runtime
// stats), so "what was the process doing in the last minute" can be
// answered after the fact — without having had --events pre-wired and
// without paying for it while everything is healthy.
//
// The design constraints mirror the paper's near-zero-overhead rule:
//
//   - RecordEvent is the hot path: it runs inside every telemetry
//     Publish (or directly as Spec.OnEvent) on the engine's dispatch
//     goroutines. It performs no allocation (pinned by an
//     AllocsPerRun test), takes one short sharded mutex, and never
//     blocks on I/O. Its cost is bounded by an overhead test in the
//     style of telemetry's TestDispatchOverheadBound.
//
//   - Memory is fixed at construction: two preallocated rings (a
//     large one for events, a small one for snapshots and anomaly
//     diagnostics, so a flood of events cannot evict the periodic
//     samples) plus a fixed-capacity open-job table for straggler
//     detection. Old entries are overwritten, never freed.
//
//   - Dumps are cheap enough to take from a live daemon (copy the
//     rings under their locks, merge by global sequence) and are
//     triggered four ways: SIGQUIT (NotifySignal), a panic unwinding
//     a wrapped goroutine (DumpOnPanic), an authenticated
//     GET /debug/flight (Handler), and the anomaly watchdog
//     (Options.Watchdog) which additionally stamps a diagnostic
//     record into the ring.
//
// cmd/gopar's `debug` subcommand fetches or reads a dump and renders
// it as a table, JSON, or a Chrome/Perfetto trace
// (profile.FlightTrace). docs/OBSERVABILITY.md is the user manual.
package flight

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// shardCount spreads event-ring writers across independent mutexes so
// the engine's per-slot dispatch workers do not serialize on one
// cacheline. Power of two; selected by the low bits of the global
// record sequence, which round-robins perfectly.
const shardCount = 8

// MaxStats bounds the per-snapshot stat count so control records stay
// fixed-size values inside the preallocated ring.
const MaxStats = 12

// Stat is one named sample inside a component snapshot.
type Stat struct {
	Name string
	V    float64
}

// Kind classifies a retained record.
type Kind uint8

const (
	// KindEvent is one core.Event copied off the telemetry stream.
	KindEvent Kind = iota
	// KindSnapshot is one component snapshot (a named source's stats).
	KindSnapshot
	// KindDiag is a diagnostic mark: a watchdog anomaly, a panic, or
	// an operator annotation.
	KindDiag
)

// String returns the record kind's wire name.
func (k Kind) String() string {
	switch k {
	case KindEvent:
		return "event"
	case KindSnapshot:
		return "snapshot"
	case KindDiag:
		return "anomaly"
	default:
		return "unknown"
	}
}

// WatchdogConfig tunes the anomaly rules evaluated every snapshot
// interval. Zero values disable the corresponding rule except where
// noted; Options.withDefaults fills the detection defaults so an
// unconfigured recorder still watches for stuck queues, stragglers
// and pool drops.
type WatchdogConfig struct {
	// DispatchP99 fires a "dispatch-p99" anomaly when the p99 of the
	// most recent dispatch-delay samples exceeds this ceiling.
	// 0 disables (the ceiling is workload-specific).
	DispatchP99 time.Duration
	// StuckTicks fires a "queue-stuck" anomaly when the queue depth
	// stays positive and monotonically non-decreasing with zero
	// completions for this many consecutive ticks.
	StuckTicks int
	// StragglerK fires a "straggler" anomaly for running jobs whose
	// elapsed time exceeds K× the median elapsed of all running jobs
	// (and StragglerMin).
	StragglerK float64
	// StragglerMin is the minimum elapsed time before a job can be
	// called a straggler, so short bursts don't alarm.
	StragglerMin time.Duration
	// DropStats lists "source.stat" keys whose value decreasing
	// between ticks fires a "gauge-drop" anomaly — the pool-health
	// rule ("pool.live") and anything else shaped like capacity.
	DropStats []string
	// Cooldown rate-limits each anomaly kind: after one fires, the
	// same kind stays quiet for this long (default 30s).
	Cooldown time.Duration
}

// Options configures a Recorder. The zero value is usable: New fills
// every field with the documented default.
type Options struct {
	// EventBuf is the event-ring capacity in records (default 4096,
	// rounded up to a power of two and spread across shards).
	EventBuf int
	// CtrlBuf is the snapshot/diagnostic ring capacity (default 1024,
	// rounded up to a power of two).
	CtrlBuf int
	// SnapshotInterval paces the sampler and watchdog (default 1s).
	SnapshotInterval time.Duration
	// MaxTrackedJobs caps the open-job table used for straggler
	// detection (default 4096). When more jobs run concurrently the
	// overflow is counted, not tracked.
	MaxTrackedJobs int
	// Watchdog tunes the anomaly rules.
	Watchdog WatchdogConfig
	// OnDiag, when non-nil, is called (cooldown-limited, off the hot
	// path) for every recorded diagnostic — the hook binaries use to
	// log a warning line or bump a metric.
	OnDiag func(name, detail string)
	// Program labels dumps ("gopar", "gopar-serve", "gopard").
	Program string
}

func (o Options) withDefaults() Options {
	if o.EventBuf <= 0 {
		o.EventBuf = 4096
	}
	if o.CtrlBuf <= 0 {
		o.CtrlBuf = 1024
	}
	if o.SnapshotInterval <= 0 {
		o.SnapshotInterval = time.Second
	}
	if o.MaxTrackedJobs <= 0 {
		o.MaxTrackedJobs = 4096
	}
	w := &o.Watchdog
	if w.StuckTicks <= 0 {
		w.StuckTicks = 10
	}
	if w.StragglerK <= 0 {
		w.StragglerK = 8
	}
	if w.StragglerMin <= 0 {
		w.StragglerMin = 30 * time.Second
	}
	if w.Cooldown <= 0 {
		w.Cooldown = 30 * time.Second
	}
	return o
}

// eventRec is one retained lifecycle event: the global sequence that
// orders it against control records, plus the event value itself.
type eventRec struct {
	seq uint64
	ev  core.Event
}

// eventShard is one slice of the event ring with its own lock. The
// pad keeps neighbouring shards' mutexes off one cacheline.
type eventShard struct {
	mu   sync.Mutex
	ring []eventRec
	n    uint64 // total writes; ring index = n & mask
	_    [40]byte
}

// ctrlRec is one snapshot or diagnostic record. Fixed-size value —
// the stats live in an inline array, not a slice.
type ctrlRec struct {
	seq    uint64
	t      int64 // unixnano
	kind   Kind
	name   string // source name (snapshot) or anomaly kind (diag)
	detail string // diag detail, "" for snapshots
	stats  [MaxStats]Stat
	nstats int
}

// source is one registered component snapshot provider. fn appends
// its stats to buf (capped at MaxStats) and returns the result; the
// sampler reuses one scratch buffer across sources.
type source struct {
	name string
	fn   func(buf []Stat) []Stat
}

// delayRingSize bounds the dispatch-delay sample ring the watchdog
// computes p99 over (power of two).
const delayRingSize = 512

// Recorder is the flight recorder. Create with New, hook RecordEvent
// into the event stream (telemetry Bus tap or Spec.OnEvent), Start
// the sampler, and Dump whenever diagnosis is needed.
type Recorder struct {
	opt   Options
	start time.Time

	seq    atomic.Uint64 // global record sequence (total-orders the rings)
	shards [shardCount]eventShard

	ctrlMu sync.Mutex
	ctrl   []ctrlRec
	ctrlN  uint64

	// Lifecycle tallies by event type, maintained inline by
	// RecordEvent: depth and running gauges derive from these without
	// a second synchronized structure.
	counts [5]atomic.Int64

	// Dispatch-delay samples (ns), lossy overwrite ring.
	delays [delayRingSize]atomic.Int64
	delayN atomic.Uint64

	// Open-job table for straggler detection: open-addressed, fixed
	// capacity, keyed by job seq. 0 = empty, -1 = tombstone.
	openMu       sync.Mutex
	openSeqs     []int64
	openStarts   []int64 // unixnano
	openLive     int
	openOverflow atomic.Int64

	srcMu   sync.Mutex
	sources []source

	anomalies atomic.Int64

	wdMu    sync.Mutex // serializes watchdog state (tick vs tests)
	wd      watchdogState
	stopMu  sync.Mutex
	stopCh  chan struct{}
	doneCh  chan struct{}
	started bool
}

// New returns a recorder with opts (zero-value fields defaulted). It
// always registers the built-in "runtime" snapshot source
// (goroutines, heap, GC).
func New(opts Options) *Recorder {
	o := opts.withDefaults()
	r := &Recorder{opt: o, start: time.Now()}
	per := ceilPow2((o.EventBuf + shardCount - 1) / shardCount)
	for i := range r.shards {
		r.shards[i].ring = make([]eventRec, per)
	}
	r.ctrl = make([]ctrlRec, ceilPow2(o.CtrlBuf))
	tcap := ceilPow2(2 * o.MaxTrackedJobs)
	r.openSeqs = make([]int64, tcap)
	r.openStarts = make([]int64, tcap)
	r.wd.lastFired = map[string]time.Time{}
	r.wd.lastVals = map[string]float64{}
	r.AddSource("runtime", runtimeStats)
	return r
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// RecordEvent retains one lifecycle event. It is safe for concurrent
// use from every engine goroutine, allocates nothing, and never
// blocks beyond one short sharded mutex — it is designed to sit
// inside telemetry.Bus taps and Spec.OnEvent on the dispatch hot
// path.
func (r *Recorder) RecordEvent(ev core.Event) {
	seq := r.seq.Add(1)
	sh := &r.shards[seq&(shardCount-1)]
	sh.mu.Lock()
	sh.ring[sh.n&uint64(len(sh.ring)-1)] = eventRec{seq: seq, ev: ev}
	sh.n++
	sh.mu.Unlock()

	if int(ev.Type) < len(r.counts) {
		r.counts[ev.Type].Add(1)
	}
	switch ev.Type {
	case core.EventStarted:
		r.trackStart(int64(ev.Seq), ev.Time.UnixNano())
	case core.EventFinished, core.EventKilled:
		r.trackEnd(int64(ev.Seq))
		if d := ev.DispatchDelay; d > 0 {
			i := r.delayN.Add(1)
			r.delays[i&(delayRingSize-1)].Store(int64(d))
		}
	}
}

// trackStart inserts seq into the open-job table (overwriting a stale
// entry for the same seq — a retry restarted the clock).
func (r *Recorder) trackStart(seq, startNS int64) {
	r.openMu.Lock()
	defer r.openMu.Unlock()
	mask := uint64(len(r.openSeqs) - 1)
	h := hash64(uint64(seq)) & mask
	firstTomb := -1
	for i := uint64(0); i <= mask; i++ {
		j := (h + i) & mask
		switch r.openSeqs[j] {
		case seq:
			r.openStarts[j] = startNS
			return
		case -1:
			if firstTomb < 0 {
				firstTomb = int(j)
			}
		case 0:
			if r.openLive >= r.opt.MaxTrackedJobs {
				r.openOverflow.Add(1)
				return
			}
			if firstTomb >= 0 {
				j = uint64(firstTomb)
			}
			r.openSeqs[j] = seq
			r.openStarts[j] = startNS
			r.openLive++
			return
		}
	}
	r.openOverflow.Add(1)
}

// trackEnd removes seq from the open-job table.
func (r *Recorder) trackEnd(seq int64) {
	r.openMu.Lock()
	defer r.openMu.Unlock()
	mask := uint64(len(r.openSeqs) - 1)
	h := hash64(uint64(seq)) & mask
	for i := uint64(0); i <= mask; i++ {
		j := (h + i) & mask
		switch r.openSeqs[j] {
		case seq:
			r.openSeqs[j] = -1
			r.openStarts[j] = 0
			r.openLive--
			return
		case 0:
			return
		}
	}
}

// hash64 is the splitmix64 finalizer — a cheap, well-mixed hash for
// the open-address probe.
func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// recordCtrl stamps one snapshot/diag record into the control ring.
func (r *Recorder) recordCtrl(kind Kind, name, detail string, stats []Stat) {
	seq := r.seq.Add(1)
	r.ctrlMu.Lock()
	rec := &r.ctrl[r.ctrlN&uint64(len(r.ctrl)-1)]
	rec.seq = seq
	rec.t = time.Now().UnixNano()
	rec.kind = kind
	rec.name = name
	rec.detail = detail
	rec.nstats = copy(rec.stats[:], stats)
	r.ctrlN++
	r.ctrlMu.Unlock()
}

// Diag records a diagnostic mark (an anomaly, a panic, an operator
// annotation) and invokes the OnDiag hook. Unlike watchdog-raised
// anomalies it is not cooldown-limited: callers own their rate.
func (r *Recorder) Diag(name, detail string) {
	r.recordCtrl(KindDiag, name, detail, nil)
	r.anomalies.Add(1)
	if r.opt.OnDiag != nil {
		r.opt.OnDiag(name, detail)
	}
}

// AddSource registers a named component snapshot provider sampled
// every SnapshotInterval. fn must append at most MaxStats stats to
// buf and return it; it runs on the sampler goroutine, so it may take
// locks but must not block indefinitely. Re-adding a name replaces
// the previous source.
func (r *Recorder) AddSource(name string, fn func(buf []Stat) []Stat) {
	r.srcMu.Lock()
	defer r.srcMu.Unlock()
	for i := range r.sources {
		if r.sources[i].name == name {
			r.sources[i].fn = fn
			return
		}
	}
	r.sources = append(r.sources, source{name: name, fn: fn})
}

// RemoveSource unregisters a snapshot provider (a queue being
// deleted, a pool being closed).
func (r *Recorder) RemoveSource(name string) {
	r.srcMu.Lock()
	defer r.srcMu.Unlock()
	for i := range r.sources {
		if r.sources[i].name == name {
			r.sources = append(r.sources[:i], r.sources[i+1:]...)
			return
		}
	}
}

// Events returns the total number of events recorded (retained or
// since overwritten).
func (r *Recorder) Events() int64 {
	var n int64
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		n += int64(sh.n)
		sh.mu.Unlock()
	}
	return n
}

// Anomalies returns the total diagnostic records raised.
func (r *Recorder) Anomalies() int64 { return r.anomalies.Load() }

// gauges derives the live depth/running counters from the lifecycle
// tallies.
func (r *Recorder) gauges() (depth, running, finished, killed int64) {
	queued := r.counts[core.EventQueued].Load()
	started := r.counts[core.EventStarted].Load()
	finished = r.counts[core.EventFinished].Load()
	killed = r.counts[core.EventKilled].Load()
	depth = queued - started
	if depth < 0 {
		depth = 0
	}
	running = started - finished - killed
	if running < 0 {
		running = 0
	}
	return depth, running, finished, killed
}

// EngineStats is the built-in source derived from the event stream
// itself: queue depth, running jobs, completions. Registered by
// binaries as "engine" so dumps carry the dispatch gauges even when
// no component registered richer sources.
func (r *Recorder) EngineStats(buf []Stat) []Stat {
	depth, running, finished, killed := r.gauges()
	return append(buf,
		Stat{"depth", float64(depth)},
		Stat{"running", float64(running)},
		Stat{"finished", float64(finished)},
		Stat{"killed", float64(killed)},
		Stat{"retried", float64(r.counts[core.EventRetried].Load())},
	)
}

// runtimeStats is the always-registered Go runtime source.
func runtimeStats(buf []Stat) []Stat {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return append(buf,
		Stat{"goroutines", float64(runtime.NumGoroutine())},
		Stat{"heap_alloc_bytes", float64(ms.HeapAlloc)},
		Stat{"heap_objects", float64(ms.HeapObjects)},
		Stat{"gc_cycles", float64(ms.NumGC)},
		Stat{"gc_pause_total_ms", float64(ms.PauseTotalNs) / 1e6},
	)
}

// Start launches the sampler/watchdog goroutine. Idempotent.
func (r *Recorder) Start() {
	r.stopMu.Lock()
	defer r.stopMu.Unlock()
	if r.started {
		return
	}
	r.started = true
	r.stopCh = make(chan struct{})
	r.doneCh = make(chan struct{})
	go r.loop(r.stopCh, r.doneCh)
}

// Stop halts the sampler. Idempotent; the recorder remains usable
// (RecordEvent, Dump) after Stop.
func (r *Recorder) Stop() {
	r.stopMu.Lock()
	defer r.stopMu.Unlock()
	if !r.started {
		return
	}
	r.started = false
	close(r.stopCh)
	<-r.doneCh
}

func (r *Recorder) loop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(r.opt.SnapshotInterval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			r.Tick()
		}
	}
}

// Tick takes one snapshot pass and evaluates the watchdog rules. The
// sampler calls it every SnapshotInterval; tests call it directly for
// deterministic timing.
func (r *Recorder) Tick() {
	r.wdMu.Lock()
	defer r.wdMu.Unlock()

	r.srcMu.Lock()
	srcs := append(make([]source, 0, len(r.sources)), r.sources...)
	r.srcMu.Unlock()

	scratch := r.wd.scratch[:0]
	for _, s := range srcs {
		stats := s.fn(scratch)
		if len(stats) > MaxStats {
			stats = stats[:MaxStats]
		}
		r.recordCtrl(KindSnapshot, s.name, "", stats)
		r.watchDrops(s.name, stats)
		scratch = stats[:0]
	}
	r.wd.scratch = scratch
	r.watchDispatch()
	r.watchStuck()
	r.watchStragglers()
}
