package flight

import (
	"fmt"
	"sort"
	"time"
)

// watchdogState is the between-tick memory behind the anomaly rules.
// All fields are guarded by Recorder.wdMu (one tick runs at a time).
type watchdogState struct {
	scratch []Stat // snapshot buffer reused across sources

	lastFired map[string]time.Time // anomaly kind → last raise (cooldown)
	lastVals  map[string]float64   // "source.stat" → previous value (drop rule)

	// queue-stuck rule memory.
	stuckTicks int
	prevDepth  int64
	prevDone   int64

	delayScratch []int64 // p99 sort buffer
	elapsed      []int64 // straggler median buffer
}

// raise records an anomaly unless the same kind fired within the
// cooldown window. Returns whether it fired.
func (r *Recorder) raise(kind, detail string) bool {
	now := time.Now()
	if last, ok := r.wd.lastFired[kind]; ok && now.Sub(last) < r.opt.Watchdog.Cooldown {
		return false
	}
	r.wd.lastFired[kind] = now
	r.Diag(kind, detail)
	return true
}

// watchDispatch checks the p99 of the recent dispatch-delay samples
// against the configured ceiling.
func (r *Recorder) watchDispatch() {
	ceiling := r.opt.Watchdog.DispatchP99
	if ceiling <= 0 {
		return
	}
	n := r.delayN.Load()
	if n == 0 {
		return
	}
	have := int(n)
	if have > delayRingSize {
		have = delayRingSize
	}
	buf := r.wd.delayScratch[:0]
	for i := 0; i < have; i++ {
		if v := r.delays[i].Load(); v > 0 {
			buf = append(buf, v)
		}
	}
	r.wd.delayScratch = buf
	if len(buf) < 10 {
		return // too few samples for a meaningful tail
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	p99 := time.Duration(buf[(len(buf)*99)/100-1])
	if p99 > ceiling {
		r.raise("dispatch-p99", fmt.Sprintf(
			"dispatch p99 %v exceeds ceiling %v over last %d samples", p99, ceiling, len(buf)))
	}
}

// watchStuck fires when the queue depth stays positive and
// non-decreasing with zero new completions for StuckTicks consecutive
// ticks — the signature of a stalled dispatcher or a wedged runner,
// as opposed to a merely deep backlog (which completes work).
func (r *Recorder) watchStuck() {
	ticks := r.opt.Watchdog.StuckTicks
	if ticks <= 0 {
		return
	}
	depth, _, finished, killed := r.gauges()
	done := finished + killed
	if depth > 0 && depth >= r.wd.prevDepth && done == r.wd.prevDone {
		r.wd.stuckTicks++
	} else {
		r.wd.stuckTicks = 0
	}
	r.wd.prevDepth, r.wd.prevDone = depth, done
	if r.wd.stuckTicks >= ticks {
		r.wd.stuckTicks = 0
		r.raise("queue-stuck", fmt.Sprintf(
			"queue depth %d with no completions for %d consecutive ticks", depth, ticks))
	}
}

// watchStragglers flags running jobs whose elapsed time exceeds K×
// the median elapsed of all currently running jobs. Keyed by job seq:
// in a multi-queue daemon two tenants' jobs can share a seq, so a
// collision may hide (never invent) a straggler — acceptable for a
// diagnostic.
func (r *Recorder) watchStragglers() {
	k := r.opt.Watchdog.StragglerK
	if k <= 0 {
		return
	}
	now := time.Now().UnixNano()
	buf := r.wd.elapsed[:0]
	var worstSeq, worstElapsed int64
	r.openMu.Lock()
	for i, s := range r.openSeqs {
		if s <= 0 {
			continue
		}
		el := now - r.openStarts[i]
		buf = append(buf, el)
		if el > worstElapsed {
			worstElapsed, worstSeq = el, s
		}
	}
	r.openMu.Unlock()
	r.wd.elapsed = buf
	if len(buf) < 2 {
		return // a lone job has no peer group to straggle behind
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	median := buf[len(buf)/2]
	threshold := int64(float64(median) * k)
	if min := int64(r.opt.Watchdog.StragglerMin); threshold < min {
		threshold = min
	}
	if worstElapsed > threshold {
		r.raise("straggler", fmt.Sprintf(
			"job seq %d running %v, %.1fx the running median %v (%d running)",
			worstSeq, time.Duration(worstElapsed).Round(time.Millisecond),
			float64(worstElapsed)/float64(median),
			time.Duration(median).Round(time.Millisecond), len(buf)))
	}
}

// watchDrops compares this tick's stats against the previous tick for
// every configured "source.stat" key and raises "gauge-drop" when one
// decreased — the pool-health rule (a worker lost capacity).
func (r *Recorder) watchDrops(src string, stats []Stat) {
	if len(r.opt.Watchdog.DropStats) == 0 {
		return
	}
	for _, st := range stats {
		key := src + "." + st.Name
		watched := false
		for _, want := range r.opt.Watchdog.DropStats {
			if want == key {
				watched = true
				break
			}
		}
		if !watched {
			continue
		}
		if prev, ok := r.wd.lastVals[key]; ok && st.V < prev {
			r.raise("gauge-drop", fmt.Sprintf("%s dropped %v -> %v", key, prev, st.V))
		}
		r.wd.lastVals[key] = st.V
	}
}
