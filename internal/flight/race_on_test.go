//go:build race

package flight

// raceEnabled lets timing-sensitive tests skip hard bounds when the
// race detector's instrumentation dominates the overhead being
// measured.
const raceEnabled = true
