// Package gpu models the GPU devices of a simulated compute node and the
// "GPU isolation" technique from §IV-D of the paper: each parallel slot
// pins its process to one device by setting HIP_VISIBLE_DEVICES (or
// CUDA_VISIBLE_DEVICES) derived from the slot number {%}.
//
// The model's purpose is twofold: account for device occupancy during
// payload execution (Fig 2's weak scaling), and detect oversubscription —
// two processes computing on the same device serialize and are counted,
// which is exactly the failure mode slot isolation prevents.
package gpu

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/sim"
)

// Device is one GPU.
type Device struct {
	ID   int
	busy *sim.Resource
	// Contended counts executions that found the device occupied and
	// had to queue. Zero under correct 1-process-1-GPU isolation.
	Contended int
	// BusyTime accumulates total occupied virtual time (for utilization).
	BusyTime time.Duration
	// Kernels counts executed kernels.
	Kernels int
}

// Set is the collection of devices on one node.
type Set struct {
	devices []*Device
}

// NewSet creates n devices on engine e.
func NewSet(e *sim.Engine, n int) *Set {
	s := &Set{}
	for i := 0; i < n; i++ {
		s.devices = append(s.devices, &Device{ID: i, busy: sim.NewResource(e, 1)})
	}
	return s
}

// Len returns the number of devices.
func (s *Set) Len() int { return len(s.devices) }

// Device returns device id, or an error for out-of-range ids (the
// simulated equivalent of a HIP invalid-device error).
func (s *Set) Device(id int) (*Device, error) {
	if id < 0 || id >= len(s.devices) {
		return nil, fmt.Errorf("gpu: device %d out of range [0,%d)", id, len(s.devices))
	}
	return s.devices[id], nil
}

// Devices returns all devices.
func (s *Set) Devices() []*Device { return s.devices }

// TotalContention sums contention counts across devices.
func (s *Set) TotalContention() int {
	n := 0
	for _, d := range s.devices {
		n += d.Contended
	}
	return n
}

// Utilization returns each device's busy fraction over the given span.
func (s *Set) Utilization(span time.Duration) []float64 {
	out := make([]float64, len(s.devices))
	if span <= 0 {
		return out
	}
	for i, d := range s.devices {
		out[i] = float64(d.BusyTime) / float64(span)
	}
	return out
}

// Exec occupies the device for d of virtual time, queueing (and counting
// contention) if another process holds it.
func (dev *Device) Exec(p *sim.Proc, d time.Duration) {
	if !dev.busy.TryAcquire(1) {
		dev.Contended++
		dev.busy.Acquire(p, 1)
	}
	p.Sleep(d)
	dev.busy.Release(1)
	dev.BusyTime += d
	dev.Kernels++
}

// VisibleEnv formats the isolation environment entry for a device id,
// e.g. VisibleEnv("HIP", 3) == "HIP_VISIBLE_DEVICES=3". Vendor is "HIP"
// (AMD, Frontier) or "CUDA" (NVIDIA, Perlmutter).
func VisibleEnv(vendor string, id int) string {
	return fmt.Sprintf("%s_VISIBLE_DEVICES=%d", strings.ToUpper(vendor), id)
}

// SlotDevice maps a 1-based parallel slot to a device id, the paper's
// HIP_VISIBLE_DEVICES=$(({%} - 1)) arithmetic.
func SlotDevice(slot int) int { return slot - 1 }

// ParseVisible extracts the first device id from a job environment,
// honoring both HIP_ and CUDA_ prefixes. ok is false when no visibility
// variable is present (process would see all GPUs — unisolated).
func ParseVisible(env []string) (id int, ok bool) {
	for _, kv := range env {
		for _, prefix := range []string{"HIP_VISIBLE_DEVICES=", "CUDA_VISIBLE_DEVICES="} {
			if v, found := strings.CutPrefix(kv, prefix); found {
				first := v
				if i := strings.IndexByte(v, ','); i >= 0 {
					first = v[:i]
				}
				n, err := strconv.Atoi(strings.TrimSpace(first))
				if err != nil {
					return 0, false
				}
				return n, true
			}
		}
	}
	return 0, false
}
