package gpu

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestSetBasics(t *testing.T) {
	e := sim.NewEngine(1)
	s := NewSet(e, 8)
	if s.Len() != 8 {
		t.Fatalf("len = %d", s.Len())
	}
	if _, err := s.Device(7); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Device(8); err == nil {
		t.Fatal("device 8 of 8 should error")
	}
	if _, err := s.Device(-1); err == nil {
		t.Fatal("device -1 should error")
	}
}

func TestIsolatedExecNoContention(t *testing.T) {
	// 8 slots -> 8 distinct GPUs: all run concurrently, no contention.
	e := sim.NewEngine(1)
	s := NewSet(e, 8)
	for slot := 1; slot <= 8; slot++ {
		dev, err := s.Device(SlotDevice(slot))
		if err != nil {
			t.Fatal(err)
		}
		e.Spawn("job", func(p *sim.Proc) { dev.Exec(p, time.Second) })
	}
	end := e.Run()
	if end != time.Second {
		t.Fatalf("makespan = %v, want 1s (full parallelism)", end)
	}
	if s.TotalContention() != 0 {
		t.Fatalf("contention = %d, want 0", s.TotalContention())
	}
}

func TestOversubscriptionSerializesAndCounts(t *testing.T) {
	// All jobs on device 0 (the bug GPU isolation prevents).
	e := sim.NewEngine(1)
	s := NewSet(e, 8)
	dev, _ := s.Device(0)
	for i := 0; i < 4; i++ {
		e.Spawn("job", func(p *sim.Proc) { dev.Exec(p, time.Second) })
	}
	end := e.Run()
	if end != 4*time.Second {
		t.Fatalf("makespan = %v, want 4s (serialized)", end)
	}
	if s.TotalContention() != 3 {
		t.Fatalf("contention = %d, want 3", s.TotalContention())
	}
	if dev.Kernels != 4 {
		t.Fatalf("kernels = %d", dev.Kernels)
	}
}

func TestUtilization(t *testing.T) {
	e := sim.NewEngine(1)
	s := NewSet(e, 2)
	d0, _ := s.Device(0)
	e.Spawn("j", func(p *sim.Proc) { d0.Exec(p, 2*time.Second) })
	e.Spawn("idle", func(p *sim.Proc) { p.Sleep(4 * time.Second) })
	e.Run()
	u := s.Utilization(4 * time.Second)
	if u[0] != 0.5 || u[1] != 0 {
		t.Fatalf("utilization = %v", u)
	}
	if z := s.Utilization(0); z[0] != 0 {
		t.Fatal("zero-span utilization should be zero")
	}
}

func TestVisibleEnvAndSlotDevice(t *testing.T) {
	if got := VisibleEnv("HIP", 3); got != "HIP_VISIBLE_DEVICES=3" {
		t.Fatalf("got %q", got)
	}
	if got := VisibleEnv("cuda", 0); got != "CUDA_VISIBLE_DEVICES=0" {
		t.Fatalf("got %q", got)
	}
	// Paper: HIP_VISIBLE_DEVICES="$(({%} - 1))" -> slot 1 = device 0.
	if SlotDevice(1) != 0 || SlotDevice(8) != 7 {
		t.Fatal("SlotDevice arithmetic wrong")
	}
}

func TestParseVisible(t *testing.T) {
	cases := []struct {
		env []string
		id  int
		ok  bool
	}{
		{[]string{"HIP_VISIBLE_DEVICES=3"}, 3, true},
		{[]string{"PATH=/bin", "CUDA_VISIBLE_DEVICES=5"}, 5, true},
		{[]string{"HIP_VISIBLE_DEVICES=2,3"}, 2, true},
		{[]string{"PATH=/bin"}, 0, false},
		{nil, 0, false},
		{[]string{"HIP_VISIBLE_DEVICES=abc"}, 0, false},
	}
	for _, c := range cases {
		id, ok := ParseVisible(c.env)
		if id != c.id || ok != c.ok {
			t.Errorf("ParseVisible(%v) = %d,%v want %d,%v", c.env, id, ok, c.id, c.ok)
		}
	}
}
