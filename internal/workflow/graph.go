package workflow

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/ring"
)

// Graph composes real executions (typically engine runs) with
// dependencies — the generalization of Fig 6's two-stage barrier, and the
// concrete form of the paper's closing claim that the launcher serves as
// a "last-mile parallelizing driver" inside larger workflows: each graph
// node is usually one `parallel` invocation over many tasks.
//
// Nodes run as soon as all dependencies succeed; independent nodes run
// concurrently (bounded by the limit given to Run). A failed node marks
// its transitive dependents skipped.
type Graph struct {
	nodes map[string]*gnode
	order []string // insertion order, for deterministic reporting
}

type gnode struct {
	name string
	deps []string
	run  func(ctx context.Context) error
}

// NodeStatus is a node's outcome.
type NodeStatus int

const (
	// NodeSucceeded: ran and returned nil.
	NodeSucceeded NodeStatus = iota
	// NodeFailed: ran and returned an error.
	NodeFailed
	// NodeSkipped: not run because a dependency failed or was skipped.
	NodeSkipped
)

func (s NodeStatus) String() string {
	switch s {
	case NodeSucceeded:
		return "succeeded"
	case NodeFailed:
		return "failed"
	default:
		return "skipped"
	}
}

// NodeResult reports one node.
type NodeResult struct {
	Name       string
	Status     NodeStatus
	Err        error
	Start, End time.Time
}

// GraphReport summarizes a graph run.
type GraphReport struct {
	Nodes    map[string]NodeResult
	Makespan time.Duration
}

// Failed returns the names of failed nodes, sorted.
func (r GraphReport) Failed() []string {
	var out []string
	for name, n := range r.Nodes {
		if n.Status == NodeFailed {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{nodes: map[string]*gnode{}} }

// Add registers a node. Duplicate names are an error; dependencies are
// validated at Run (so nodes may be added in any order).
func (g *Graph) Add(name string, deps []string, run func(ctx context.Context) error) error {
	if name == "" {
		return fmt.Errorf("workflow: empty node name")
	}
	if _, dup := g.nodes[name]; dup {
		return fmt.Errorf("workflow: duplicate node %q", name)
	}
	if run == nil {
		return fmt.Errorf("workflow: node %q has no run function", name)
	}
	g.nodes[name] = &gnode{name: name, deps: append([]string(nil), deps...), run: run}
	g.order = append(g.order, name)
	return nil
}

// validate checks for unknown dependencies and cycles (Kahn's algorithm).
func (g *Graph) validate() error {
	indeg := map[string]int{}
	for name, n := range g.nodes {
		if _, ok := indeg[name]; !ok {
			indeg[name] = 0
		}
		for _, d := range n.deps {
			if _, ok := g.nodes[d]; !ok {
				return fmt.Errorf("workflow: node %q depends on unknown node %q", name, d)
			}
			indeg[name]++
		}
	}
	var queue ring.Ring[string]
	for name, d := range indeg {
		if d == 0 {
			queue.Push(name)
		}
	}
	seen := 0
	dependents := map[string][]string{}
	for name, n := range g.nodes {
		for _, d := range n.deps {
			dependents[d] = append(dependents[d], name)
		}
	}
	for queue.Len() > 0 {
		name := queue.Pop()
		seen++
		for _, dep := range dependents[name] {
			indeg[dep]--
			if indeg[dep] == 0 {
				queue.Push(dep)
			}
		}
	}
	if seen != len(g.nodes) {
		return fmt.Errorf("workflow: dependency cycle among %d node(s)", len(g.nodes)-seen)
	}
	return nil
}

// Run executes the graph with at most maxConcurrent nodes running at
// once (<=0 means unlimited). It returns the report and a non-nil error
// if any node failed, was skipped, or the context was cancelled.
func (g *Graph) Run(ctx context.Context, maxConcurrent int) (GraphReport, error) {
	rep := GraphReport{Nodes: map[string]NodeResult{}}
	if err := g.validate(); err != nil {
		return rep, err
	}
	start := time.Now()

	var mu sync.Mutex
	cond := sync.NewCond(&mu)
	state := map[string]NodeStatus{}
	done := map[string]bool{}
	running := 0

	// Wake all waiters when ctx dies so the scheduler can unwind.
	stopWatch := context.AfterFunc(ctx, func() {
		mu.Lock()
		cond.Broadcast()
		mu.Unlock()
	})
	defer stopWatch()

	ready := func(n *gnode) (runnable bool, skip bool) {
		for _, d := range n.deps {
			if !done[d] {
				return false, false
			}
			if state[d] != NodeSucceeded {
				return false, true
			}
		}
		return true, false
	}

	var wg sync.WaitGroup
	mu.Lock()
	remaining := len(g.nodes)
	for remaining > 0 && ctx.Err() == nil {
		launched := false
		for _, name := range g.order {
			n := g.nodes[name]
			if done[name] || state[name] == NodeSkipped {
				continue
			}
			if _, started := rep.Nodes[name]; started {
				continue
			}
			runnable, skip := ready(n)
			if skip {
				state[name] = NodeSkipped
				done[name] = true
				rep.Nodes[name] = NodeResult{Name: name, Status: NodeSkipped}
				remaining--
				launched = true
				continue
			}
			if !runnable || (maxConcurrent > 0 && running >= maxConcurrent) {
				continue
			}
			running++
			rep.Nodes[name] = NodeResult{Name: name} // mark started
			wg.Add(1)
			launched = true
			go func(n *gnode) {
				defer wg.Done()
				res := NodeResult{Name: n.name, Start: time.Now()}
				err := n.run(ctx)
				res.End = time.Now()
				if err != nil {
					res.Status = NodeFailed
					res.Err = err
				} else {
					res.Status = NodeSucceeded
				}
				mu.Lock()
				state[n.name] = res.Status
				done[n.name] = true
				rep.Nodes[n.name] = res
				running--
				remaining--
				cond.Broadcast()
				mu.Unlock()
			}(n)
		}
		if remaining == 0 {
			break
		}
		if !launched {
			cond.Wait()
		}
	}
	cancelled := ctx.Err()
	mu.Unlock()
	wg.Wait()

	// Anything never started (cancellation) is skipped.
	mu.Lock()
	for _, name := range g.order {
		if _, ok := rep.Nodes[name]; !ok {
			rep.Nodes[name] = NodeResult{Name: name, Status: NodeSkipped}
		} else if r := rep.Nodes[name]; r.Start.IsZero() && r.Status == NodeSucceeded && r.Err == nil && r.End.IsZero() {
			// Started marker that never completed (cancelled before run).
			r.Status = NodeSkipped
			rep.Nodes[name] = r
		}
	}
	mu.Unlock()
	rep.Makespan = time.Since(start)

	if cancelled != nil {
		return rep, cancelled
	}
	for _, name := range g.order {
		if rep.Nodes[name].Status != NodeSucceeded {
			return rep, fmt.Errorf("workflow: %d node(s) did not succeed (first: %s %s)",
				countNotSucceeded(rep), name, rep.Nodes[name].Status)
		}
	}
	return rep, nil
}

func countNotSucceeded(rep GraphReport) int {
	n := 0
	for _, r := range rep.Nodes {
		if r.Status != NodeSucceeded {
			n++
		}
	}
	return n
}
