package workflow

import (
	"time"

	"repro/internal/sim"
)

// FetchProcessConfig parameterizes the §IV-A motivating example: a
// getdata loop downloading images from R regions every Interval, and a
// procdata consumer processing batches as their timestamps appear in the
// queue file.
type FetchProcessConfig struct {
	// Batches is how many download rounds the fetcher performs.
	Batches int
	// Regions is the number of concurrent downloads per round (8 in
	// Listing 2).
	Regions int
	// Interval is the fetch loop period (30 s in Listing 2).
	Interval time.Duration
	// FetchTime is the duration of one region download.
	FetchTime time.Duration
	// ProcessTime is the compute time for one batch (the convert run).
	ProcessTime time.Duration
	// ProcJobs is the processing parallelism (-j8 in Listing 3).
	ProcJobs int
}

// DefaultFetchProcess mirrors Listing 2/3's shape: 8-region fetch rounds
// every 30s, with batch processing slower than the fetch interval so the
// coupling strategy matters.
func DefaultFetchProcess() FetchProcessConfig {
	return FetchProcessConfig{
		Batches:     10,
		Regions:     8,
		Interval:    30 * time.Second,
		FetchTime:   6 * time.Second,
		ProcessTime: 40 * time.Second,
		ProcJobs:    4,
	}
}

// FetchProcessResult compares the two stage-coupling strategies.
type FetchProcessResult struct {
	Makespan time.Duration
	// Processed counts batches that completed processing.
	Processed int
}

// RunOverlapped executes fetch and process as concurrent stages linked by
// a queue (the paper's `tail -f q.proc | parallel` pattern): each batch's
// processing starts as soon as its timestamp lands in the queue.
func RunOverlapped(p *sim.Proc, cfg FetchProcessConfig) FetchProcessResult {
	e := p.Engine()
	queue := sim.NewStore[int](e, 0)
	procSlots := sim.NewResource(e, cfg.ProcJobs)
	done := sim.NewCounter(e, cfg.Batches)
	start := p.Now()
	processed := 0

	// getdata: every Interval, download Regions images concurrently,
	// then append the batch timestamp to the queue.
	e.Spawn("getdata", func(fp *sim.Proc) {
		for b := 0; b < cfg.Batches; b++ {
			roundStart := fp.Now()
			wg := sim.NewCounter(e, cfg.Regions)
			for r := 0; r < cfg.Regions; r++ {
				e.Spawn("curl", func(cp *sim.Proc) {
					cp.Sleep(cp.Engine().RNG().Split("fetch").Jitter(cfg.FetchTime, 0.2))
					wg.Done()
				})
			}
			wg.Wait(fp)
			queue.Put(fp, b)
			if wait := cfg.Interval - (fp.Now() - roundStart); wait > 0 && b+1 < cfg.Batches {
				fp.Sleep(wait)
			}
		}
		queue.Close()
	})

	// procdata: tail the queue, process each batch with slot-limited
	// parallelism.
	e.Spawn("procdata", func(pp *sim.Proc) {
		for {
			b, ok := queue.Get(pp)
			if !ok {
				return
			}
			_ = b
			procSlots.Acquire(pp, 1)
			e.Spawn("convert", func(cp *sim.Proc) {
				cp.Sleep(cfg.ProcessTime)
				procSlots.Release(1)
				processed++
				done.Done()
			})
		}
	})

	done.Wait(p)
	return FetchProcessResult{Makespan: p.Now() - start, Processed: processed}
}

// RunBarriered is the naive alternative: fetch everything, then process
// everything (a hard barrier between the stages).
func RunBarriered(p *sim.Proc, cfg FetchProcessConfig) FetchProcessResult {
	e := p.Engine()
	start := p.Now()
	// Fetch phase.
	for b := 0; b < cfg.Batches; b++ {
		roundStart := p.Now()
		wg := sim.NewCounter(e, cfg.Regions)
		for r := 0; r < cfg.Regions; r++ {
			e.Spawn("curl", func(cp *sim.Proc) {
				cp.Sleep(cp.Engine().RNG().Split("fetch").Jitter(cfg.FetchTime, 0.2))
				wg.Done()
			})
		}
		wg.Wait(p)
		if wait := cfg.Interval - (p.Now() - roundStart); wait > 0 && b+1 < cfg.Batches {
			p.Sleep(wait)
		}
	}
	// Process phase.
	slots := sim.NewResource(e, cfg.ProcJobs)
	done := sim.NewCounter(e, cfg.Batches)
	processed := 0
	for b := 0; b < cfg.Batches; b++ {
		slots.Acquire(p, 1)
		e.Spawn("convert", func(cp *sim.Proc) {
			cp.Sleep(cfg.ProcessTime)
			slots.Release(1)
			processed++
			done.Done()
		})
	}
	done.Wait(p)
	return FetchProcessResult{Makespan: p.Now() - start, Processed: processed}
}
