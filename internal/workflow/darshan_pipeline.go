package workflow

import (
	"fmt"
	"time"

	"repro/internal/sim"
	"repro/internal/storage"
)

// Dataset is one unit of the archival corpus (roughly one year of logs in
// the paper's five-dataset split).
type Dataset struct {
	Name  string
	Bytes int64
	Files int
}

// PipelineConfig parameterizes the Fig 7 Darshan processing pipeline.
type PipelineConfig struct {
	Datasets []Dataset
	// Lustre and NVMe are the two storage tiers.
	Lustre, NVMe *storage.FS
	// ProcRateLustre/ProcRateNVMe are end-to-end processing rates
	// (bytes/s) when the analyzer reads from each tier. Calibrated so a
	// paper-sized dataset takes 86 min from Lustre and 68 min from
	// NVMe.
	ProcRateLustre, ProcRateNVMe float64
	// CopyStreams is the number of parallel rsync processes used by the
	// prefetch copy.
	CopyStreams int
}

// DefaultPipelineConfig reproduces the paper's published stage times:
// five 1 TB datasets; 1 TB / 86 min ≈ 193.8 MB/s from Lustre and
// 1 TB / 68 min ≈ 245.1 MB/s from NVMe.
func DefaultPipelineConfig(lustre, nvme *storage.FS) PipelineConfig {
	const tb = int64(1) << 40
	var ds []Dataset
	for i := 1; i <= 5; i++ {
		ds = append(ds, Dataset{Name: fmt.Sprintf("year%d", i), Bytes: tb, Files: 50_000})
	}
	return PipelineConfig{
		Datasets:       ds,
		Lustre:         lustre,
		NVMe:           nvme,
		ProcRateLustre: float64(tb) / (86 * 60),
		ProcRateNVMe:   float64(tb) / (68 * 60),
		CopyStreams:    32,
	}
}

// PipelineResult reports one pipeline execution.
type PipelineResult struct {
	Stages []StageTime
	Total  time.Duration
}

// process models the analyzer consuming a dataset from a tier at the
// given rate: chunked reads through the filesystem model so contention is
// visible, with compute padding to hit the end-to-end rate.
func process(p *sim.Proc, fs *storage.FS, ds Dataset, rate float64) {
	const chunks = 64
	chunk := ds.Bytes / chunks
	perChunk := sim.Dur(float64(ds.Bytes) / rate / chunks)
	for i := 0; i < chunks; i++ {
		readStart := p.Now()
		fs.Read(p, chunk)
		readTime := p.Now() - readStart
		if compute := perChunk - readTime; compute > 0 {
			p.Sleep(compute)
		}
	}
}

// prefetch copies a dataset Lustre→NVMe with the configured parallel
// streams (the GNU-Parallel-driven rsync step of Fig 7).
func prefetch(p *sim.Proc, cfg PipelineConfig, ds Dataset) {
	e := p.Engine()
	streams := cfg.CopyStreams
	if streams < 1 {
		streams = 1
	}
	per := ds.Bytes / int64(streams)
	wg := sim.NewCounter(e, streams)
	for s := 0; s < streams; s++ {
		e.Spawn("rsync", func(sp *sim.Proc) {
			storage.Copy(sp, cfg.Lustre, cfg.NVMe, per)
			wg.Done()
		})
	}
	wg.Wait(p)
}

// cleanup deletes a processed dataset from NVMe (metadata-weight only).
func cleanup(p *sim.Proc, cfg PipelineConfig, ds Dataset) {
	// Unlinking tens of thousands of files: batch as a hundred
	// metadata ops on the local filesystem model.
	ops := ds.Files / 500
	if ops < 1 {
		ops = 1
	}
	for i := 0; i < ops; i++ {
		cfg.NVMe.Unlink(p)
	}
}

// RunStaged executes the Fig 7 pipeline: stage 1 processes dataset 1
// straight from Lustre while prefetching dataset 2 to NVMe; each later
// stage processes from NVMe while prefetching the next dataset and
// deleting the previous one.
func RunStaged(p *sim.Proc, cfg PipelineConfig) PipelineResult {
	n := len(cfg.Datasets)
	var stages []Stage
	for i := 0; i < n; i++ {
		i := i
		st := Stage{Name: fmt.Sprintf("stage%d", i+1)}
		if i == 0 {
			st.Ops = append(st.Ops, Op{Name: "process-lustre", Run: func(sp *sim.Proc) {
				process(sp, cfg.Lustre, cfg.Datasets[0], cfg.ProcRateLustre)
			}})
		} else {
			st.Ops = append(st.Ops, Op{Name: "process-nvme", Run: func(sp *sim.Proc) {
				process(sp, cfg.NVMe, cfg.Datasets[i], cfg.ProcRateNVMe)
			}})
			st.Ops = append(st.Ops, Op{Name: "cleanup", Run: func(sp *sim.Proc) {
				cleanup(sp, cfg, cfg.Datasets[i-1])
			}})
		}
		if i+1 < n {
			st.Ops = append(st.Ops, Op{Name: "prefetch", Run: func(sp *sim.Proc) {
				prefetch(sp, cfg, cfg.Datasets[i+1])
			}})
		}
		stages = append(stages, st)
	}
	times := RunStages(p, stages)
	return PipelineResult{Stages: times, Total: Total(times)}
}

// RunLustreOnly is the baseline: every dataset processed directly from
// Lustre, sequentially (the estimated 86 x 5 = 430 min of §IV-B).
func RunLustreOnly(p *sim.Proc, cfg PipelineConfig) PipelineResult {
	var stages []Stage
	for i := range cfg.Datasets {
		i := i
		stages = append(stages, Stage{
			Name: fmt.Sprintf("stage%d", i+1),
			Ops: []Op{{Name: "process-lustre", Run: func(sp *sim.Proc) {
				process(sp, cfg.Lustre, cfg.Datasets[i], cfg.ProcRateLustre)
			}}},
		})
	}
	times := RunStages(p, stages)
	return PipelineResult{Stages: times, Total: Total(times)}
}
