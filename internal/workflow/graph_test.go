package workflow

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func record(order *[]string, mu *sync.Mutex, name string) func(context.Context) error {
	return func(ctx context.Context) error {
		mu.Lock()
		*order = append(*order, name)
		mu.Unlock()
		return nil
	}
}

func TestGraphTopologicalOrder(t *testing.T) {
	g := NewGraph()
	var order []string
	var mu sync.Mutex
	g.Add("fetch", nil, record(&order, &mu, "fetch"))
	g.Add("process", []string{"fetch"}, record(&order, &mu, "process"))
	g.Add("publish", []string{"process"}, record(&order, &mu, "publish"))
	rep, err := g.Run(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "fetch" || order[1] != "process" || order[2] != "publish" {
		t.Fatalf("order = %v", order)
	}
	for _, n := range rep.Nodes {
		if n.Status != NodeSucceeded {
			t.Fatalf("node %s = %s", n.Name, n.Status)
		}
	}
}

func TestGraphDiamondConcurrency(t *testing.T) {
	// A -> (B, C) -> D: B and C overlap.
	g := NewGraph()
	var cur, peak atomic.Int64
	slow := func(ctx context.Context) error {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(30 * time.Millisecond)
		cur.Add(-1)
		return nil
	}
	g.Add("A", nil, slow)
	g.Add("B", []string{"A"}, slow)
	g.Add("C", []string{"A"}, slow)
	g.Add("D", []string{"B", "C"}, slow)
	if _, err := g.Run(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if peak.Load() < 2 {
		t.Fatalf("peak concurrency = %d; B and C did not overlap", peak.Load())
	}
}

func TestGraphConcurrencyBound(t *testing.T) {
	g := NewGraph()
	var cur, peak atomic.Int64
	task := func(ctx context.Context) error {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
		cur.Add(-1)
		return nil
	}
	for _, name := range []string{"a", "b", "c", "d", "e", "f"} {
		g.Add(name, nil, task)
	}
	if _, err := g.Run(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	if peak.Load() > 2 {
		t.Fatalf("peak = %d > bound 2", peak.Load())
	}
}

func TestGraphFailureSkipsDependents(t *testing.T) {
	g := NewGraph()
	boom := errors.New("stage failed")
	ran := map[string]bool{}
	var mu sync.Mutex
	mark := func(name string, err error) func(context.Context) error {
		return func(ctx context.Context) error {
			mu.Lock()
			ran[name] = true
			mu.Unlock()
			return err
		}
	}
	g.Add("ok", nil, mark("ok", nil))
	g.Add("bad", nil, mark("bad", boom))
	g.Add("child", []string{"bad"}, mark("child", nil))
	g.Add("grandchild", []string{"child"}, mark("grandchild", nil))
	g.Add("independent", []string{"ok"}, mark("independent", nil))

	rep, err := g.Run(context.Background(), 0)
	if err == nil {
		t.Fatal("failed graph returned nil error")
	}
	if !ran["ok"] || !ran["independent"] {
		t.Fatal("independent branch did not run")
	}
	if ran["child"] || ran["grandchild"] {
		t.Fatal("dependents of failed node ran")
	}
	if rep.Nodes["bad"].Status != NodeFailed || !errors.Is(rep.Nodes["bad"].Err, boom) {
		t.Fatalf("bad = %+v", rep.Nodes["bad"])
	}
	for _, n := range []string{"child", "grandchild"} {
		if rep.Nodes[n].Status != NodeSkipped {
			t.Fatalf("%s = %s, want skipped", n, rep.Nodes[n].Status)
		}
	}
	if f := rep.Failed(); len(f) != 1 || f[0] != "bad" {
		t.Fatalf("Failed() = %v", f)
	}
}

func TestGraphValidation(t *testing.T) {
	g := NewGraph()
	if err := g.Add("", nil, func(context.Context) error { return nil }); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := g.Add("x", nil, nil); err == nil {
		t.Fatal("nil run accepted")
	}
	g.Add("a", nil, func(context.Context) error { return nil })
	if err := g.Add("a", nil, func(context.Context) error { return nil }); err == nil {
		t.Fatal("duplicate accepted")
	}
	g.Add("b", []string{"missing"}, func(context.Context) error { return nil })
	if _, err := g.Run(context.Background(), 0); err == nil {
		t.Fatal("unknown dependency accepted")
	}
}

func TestGraphCycleDetection(t *testing.T) {
	g := NewGraph()
	noop := func(context.Context) error { return nil }
	g.Add("a", []string{"c"}, noop)
	g.Add("b", []string{"a"}, noop)
	g.Add("c", []string{"b"}, noop)
	if _, err := g.Run(context.Background(), 0); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestGraphContextCancel(t *testing.T) {
	g := NewGraph()
	ctx, cancel := context.WithCancel(context.Background())
	g.Add("first", nil, func(ctx context.Context) error {
		cancel()
		return nil
	})
	g.Add("second", []string{"first"}, func(ctx context.Context) error {
		return nil
	})
	done := make(chan struct{})
	var err error
	go func() {
		_, err = g.Run(ctx, 0)
		close(done)
	}()
	select {
	case <-done:
		if err == nil {
			t.Fatal("cancelled run returned nil error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("graph did not unwind on cancellation")
	}
}
