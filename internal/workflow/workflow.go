// Package workflow provides the composition layer the paper's
// applications are built from: stages whose internal operations run
// concurrently with a synchronization barrier between stages (Fig 6),
// the Darshan NVMe-prefetch pipeline (Fig 7), and the asynchronous
// fetch-process queue pattern (§IV-A).
package workflow

import (
	"time"

	"repro/internal/sim"
)

// Op is one operation of a stage, executing in virtual time.
type Op struct {
	Name string
	Run  func(p *sim.Proc)
}

// Stage is a set of operations that run concurrently; the stage completes
// when all of them do (the Fig 6 barrier).
type Stage struct {
	Name string
	Ops  []Op
}

// StageTime records a completed stage.
type StageTime struct {
	Name       string
	Start, End sim.Time
}

// Duration returns the stage's span.
func (s StageTime) Duration() time.Duration { return s.End - s.Start }

// RunStages executes stages sequentially from process p, each stage's ops
// concurrently, with a barrier between stages. It returns per-stage
// timings.
func RunStages(p *sim.Proc, stages []Stage) []StageTime {
	e := p.Engine()
	var out []StageTime
	for _, st := range stages {
		rec := StageTime{Name: st.Name, Start: p.Now()}
		wg := sim.NewCounter(e, len(st.Ops))
		for _, op := range st.Ops {
			op := op
			e.Spawn(st.Name+"/"+op.Name, func(sp *sim.Proc) {
				op.Run(sp)
				wg.Done()
			})
		}
		wg.Wait(p)
		rec.End = p.Now()
		out = append(out, rec)
	}
	return out
}

// Total sums stage durations.
func Total(times []StageTime) time.Duration {
	var d time.Duration
	for _, t := range times {
		d += t.Duration()
	}
	return d
}
