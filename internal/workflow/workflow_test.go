package workflow

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/storage"
)

func TestRunStagesBarrier(t *testing.T) {
	e := sim.NewEngine(1)
	var times []StageTime
	e.Spawn("driver", func(p *sim.Proc) {
		times = RunStages(p, []Stage{
			{Name: "s1", Ops: []Op{
				{Name: "fast", Run: func(sp *sim.Proc) { sp.Sleep(time.Second) }},
				{Name: "slow", Run: func(sp *sim.Proc) { sp.Sleep(3 * time.Second) }},
			}},
			{Name: "s2", Ops: []Op{
				{Name: "only", Run: func(sp *sim.Proc) { sp.Sleep(2 * time.Second) }},
			}},
		})
	})
	end := e.Run()
	if len(times) != 2 {
		t.Fatalf("stages = %d", len(times))
	}
	// Stage 1 bounded by slowest op (barrier), stage 2 starts after.
	if times[0].Duration() != 3*time.Second {
		t.Fatalf("stage1 = %v", times[0].Duration())
	}
	if times[1].Start != 3*time.Second || times[1].Duration() != 2*time.Second {
		t.Fatalf("stage2 = %+v", times[1])
	}
	if end != 5*time.Second || Total(times) != 5*time.Second {
		t.Fatalf("total = %v/%v", end, Total(times))
	}
}

func TestRunStagesEmptyStage(t *testing.T) {
	e := sim.NewEngine(1)
	e.Spawn("driver", func(p *sim.Proc) {
		times := RunStages(p, []Stage{{Name: "empty"}})
		if times[0].Duration() != 0 {
			t.Errorf("empty stage duration = %v", times[0].Duration())
		}
	})
	e.Run()
}

func pipelineFS(e *sim.Engine) (*storage.FS, *storage.FS) {
	lustre := storage.New(e, storage.LustreProfile())
	nvme := storage.New(e, storage.NVMeProfile(0))
	return lustre, nvme
}

func TestDarshanPipelineReproducesFig7(t *testing.T) {
	e := sim.NewEngine(7)
	lustre, nvme := pipelineFS(e)
	cfg := DefaultPipelineConfig(lustre, nvme)
	var staged PipelineResult
	e.Spawn("driver", func(p *sim.Proc) {
		staged = RunStaged(p, cfg)
	})
	e.Run()

	e2 := sim.NewEngine(7)
	lustre2, nvme2 := pipelineFS(e2)
	cfg2 := DefaultPipelineConfig(lustre2, nvme2)
	var baseline PipelineResult
	e2.Spawn("driver", func(p *sim.Proc) {
		baseline = RunLustreOnly(p, cfg2)
	})
	e2.Run()

	// Paper: staged = 86 + 4x68 = 358 min; baseline = 5x86 = 430 min.
	stagedMin := staged.Total.Minutes()
	baseMin := baseline.Total.Minutes()
	if stagedMin < 340 || stagedMin > 380 {
		t.Fatalf("staged total = %.0f min, want ~358", stagedMin)
	}
	if baseMin < 415 || baseMin > 450 {
		t.Fatalf("lustre-only total = %.0f min, want ~430", baseMin)
	}
	improvement := (baseMin - stagedMin) / baseMin
	if improvement < 0.12 || improvement > 0.22 {
		t.Fatalf("improvement = %.1f%%, paper reports 17%%", improvement*100)
	}

	// First stage ~86 min (Lustre), later stages ~68 min (NVMe).
	if d := staged.Stages[0].Duration().Minutes(); d < 80 || d > 95 {
		t.Fatalf("stage 1 = %.0f min, want ~86", d)
	}
	for i := 1; i < 5; i++ {
		if d := staged.Stages[i].Duration().Minutes(); d < 62 || d > 78 {
			t.Fatalf("stage %d = %.0f min, want ~68", i+1, d)
		}
	}
}

func TestDarshanPipelinePrefetchNotBottleneck(t *testing.T) {
	// The prefetch copy (32 rsync streams over Lustre) must finish well
	// within a processing stage, or the pipeline couldn't overlap.
	e := sim.NewEngine(3)
	lustre, nvme := pipelineFS(e)
	cfg := DefaultPipelineConfig(lustre, nvme)
	var copyTime sim.Time
	e.Spawn("driver", func(p *sim.Proc) {
		start := p.Now()
		prefetch(p, cfg, cfg.Datasets[0])
		copyTime = p.Now() - start
	})
	e.Run()
	if copyTime.Minutes() > 60 {
		t.Fatalf("prefetch takes %.0f min, exceeds NVMe stage budget", copyTime.Minutes())
	}
	if copyTime <= 0 {
		t.Fatal("prefetch cost nothing; copy model broken")
	}
}

func TestFetchProcessOverlapBeatsBarrier(t *testing.T) {
	cfg := DefaultFetchProcess()
	run := func(f func(p *sim.Proc, c FetchProcessConfig) FetchProcessResult) FetchProcessResult {
		e := sim.NewEngine(5)
		var res FetchProcessResult
		e.Spawn("driver", func(p *sim.Proc) { res = f(p, cfg) })
		e.Run()
		return res
	}
	over := run(RunOverlapped)
	barr := run(RunBarriered)
	if over.Processed != cfg.Batches || barr.Processed != cfg.Batches {
		t.Fatalf("processed %d/%d, want %d", over.Processed, barr.Processed, cfg.Batches)
	}
	if over.Makespan >= barr.Makespan {
		t.Fatalf("overlap (%v) not faster than barrier (%v)", over.Makespan, barr.Makespan)
	}
	// Overlap hides nearly all processing inside fetch intervals: the
	// last batch's processing is the only unavoidable tail.
	fetchFloor := time.Duration(cfg.Batches-1) * cfg.Interval
	if over.Makespan > fetchFloor+cfg.ProcessTime+cfg.FetchTime*2 {
		t.Fatalf("overlap makespan %v leaves too little processing hidden", over.Makespan)
	}
}

func TestFetchProcessSingleBatch(t *testing.T) {
	cfg := DefaultFetchProcess()
	cfg.Batches = 1
	e := sim.NewEngine(1)
	var res FetchProcessResult
	e.Spawn("driver", func(p *sim.Proc) { res = RunOverlapped(p, cfg) })
	e.Run()
	if res.Processed != 1 {
		t.Fatalf("processed = %d", res.Processed)
	}
	// One fetch (~6s) + one process.
	want := cfg.ProcessTime + cfg.FetchTime
	if res.Makespan < want-3*time.Second || res.Makespan > want+5*time.Second {
		t.Fatalf("makespan = %v, want ~%v", res.Makespan, want)
	}
}
