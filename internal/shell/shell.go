// Package shell provides minimal POSIX-style word splitting and quoting
// for command strings. The real-process runner uses Split to decide
// whether a rendered command line can be exec'd directly (fast path, no
// /bin/sh fork) and Quote to build safe shell lines when metacharacters
// force a shell (pipes, redirections, substitutions).
package shell

import (
	"errors"
	"strings"
)

// ErrUnterminated reports an unterminated quote or trailing backslash.
var ErrUnterminated = errors.New("shell: unterminated quote")

// metaChars are characters whose presence outside quotes means the command
// needs a real shell to evaluate.
const metaChars = "|&;<>()$`\n*?[#~"

// Split tokenizes s into words honoring single quotes, double quotes, and
// backslash escapes. It returns ErrUnterminated for unbalanced quoting.
// It does not perform expansion; callers use NeedsShell to detect commands
// requiring one.
func Split(s string) ([]string, error) {
	var words []string
	var cur strings.Builder
	inWord := false
	i := 0
	for i < len(s) {
		c := s[i]
		switch c {
		case ' ', '\t':
			if inWord {
				words = append(words, cur.String())
				cur.Reset()
				inWord = false
			}
			i++
		case '\'':
			inWord = true
			end := strings.IndexByte(s[i+1:], '\'')
			if end < 0 {
				return nil, ErrUnterminated
			}
			cur.WriteString(s[i+1 : i+1+end])
			i += end + 2
		case '"':
			inWord = true
			i++
			for {
				if i >= len(s) {
					return nil, ErrUnterminated
				}
				if s[i] == '"' {
					i++
					break
				}
				if s[i] == '\\' && i+1 < len(s) && (s[i+1] == '"' || s[i+1] == '\\' || s[i+1] == '$' || s[i+1] == '`') {
					cur.WriteByte(s[i+1])
					i += 2
					continue
				}
				cur.WriteByte(s[i])
				i++
			}
		case '\\':
			if i+1 >= len(s) {
				return nil, ErrUnterminated
			}
			inWord = true
			cur.WriteByte(s[i+1])
			i += 2
		default:
			inWord = true
			cur.WriteByte(c)
			i++
		}
	}
	if inWord {
		words = append(words, cur.String())
	}
	return words, nil
}

// NeedsShell reports whether s contains unquoted shell metacharacters
// (pipes, redirection, substitution, globs...) and therefore must run via
// "sh -c" rather than direct exec.
func NeedsShell(s string) bool {
	i := 0
	for i < len(s) {
		switch c := s[i]; c {
		case '\'':
			end := strings.IndexByte(s[i+1:], '\'')
			if end < 0 {
				return true // malformed; let the shell report it
			}
			i += end + 2
		case '"':
			i++
			for i < len(s) && s[i] != '"' {
				if s[i] == '\\' {
					i += 2
					continue
				}
				if s[i] == '$' || s[i] == '`' {
					return true
				}
				i++
			}
			if i >= len(s) {
				return true
			}
			i++
		case '\\':
			i += 2
		default:
			if strings.IndexByte(metaChars, c) >= 0 {
				return true
			}
			i++
		}
	}
	return false
}

// Quote returns s quoted so a POSIX shell parses it as a single word.
func Quote(s string) string {
	if s == "" {
		return "''"
	}
	safe := true
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c == '_' || c == '-' || c == '.' || c == '/' || c == ':' || c == '=' || c == ',' || c == '@' || c == '+' || c == '%' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')) {
			safe = false
			break
		}
	}
	if safe {
		return s
	}
	return "'" + strings.ReplaceAll(s, "'", `'\''`) + "'"
}

// QuoteAll quotes each word and joins with spaces.
func QuoteAll(words []string) string {
	out := make([]string, len(words))
	for i, w := range words {
		out[i] = Quote(w)
	}
	return strings.Join(out, " ")
}
