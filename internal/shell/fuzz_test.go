package shell

import "testing"

// FuzzSplit ensures Split/NeedsShell never panic and that quoting any
// split result re-splits identically.
func FuzzSplit(f *testing.F) {
	for _, seed := range []string{
		"echo hello", `echo 'a b' "c d"`, `a\ b`, "cmd | pipe",
		`"unterminated`, `'u`, `tr \`, "", "a;b&&c", `echo "$HOME"`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		NeedsShell(s)
		words, err := Split(s)
		if err != nil {
			return
		}
		requoted := QuoteAll(words)
		again, err := Split(requoted)
		if err != nil {
			t.Fatalf("requoted %q failed to split: %v", requoted, err)
		}
		if len(again) != len(words) {
			t.Fatalf("round trip changed arity: %v vs %v", words, again)
		}
		for i := range words {
			if words[i] != again[i] {
				t.Fatalf("round trip changed word %d: %q vs %q", i, words[i], again[i])
			}
		}
	})
}
