package shell

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestSplitBasic(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"echo hello world", []string{"echo", "hello", "world"}},
		{"  spaced   out  ", []string{"spaced", "out"}},
		{"", nil},
		{"single", []string{"single"}},
		{`echo 'single quoted arg'`, []string{"echo", "single quoted arg"}},
		{`echo "double quoted"`, []string{"echo", "double quoted"}},
		{`echo a\ b`, []string{"echo", "a b"}},
		{`echo ''`, []string{"echo", ""}},
		{`echo "it's"`, []string{"echo", "it's"}},
		{`echo 'a'"b"c`, []string{"echo", "abc"}},
		{`echo "esc \" quote"`, []string{"echo", `esc " quote`}},
		{`echo "keep \n backslash"`, []string{"echo", `keep \n backslash`}},
		{"tabs\there", []string{"tabs", "here"}},
	}
	for _, c := range cases {
		got, err := Split(c.in)
		if err != nil {
			t.Errorf("Split(%q) error: %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Split(%q) = %#v, want %#v", c.in, got, c.want)
		}
	}
}

func TestSplitErrors(t *testing.T) {
	for _, in := range []string{`echo 'unterminated`, `echo "unterminated`, `trailing\`} {
		if _, err := Split(in); err == nil {
			t.Errorf("Split(%q) should error", in)
		}
	}
}

func TestNeedsShell(t *testing.T) {
	cases := []struct {
		in   string
		want bool
	}{
		{"echo hello", false},
		{"./payload.sh arg1", false},
		{"echo hi | wc -l", true},
		{"echo hi > out.txt", true},
		{"echo $HOME", true},
		{"echo `date`", true},
		{"ls *.json", true},
		{"a && b", true},
		{"sleep 1; echo done", true},
		{"echo 'safe | inside quotes'", false},
		{`echo "double $VAR"`, true},
		{"echo (sub)", true},
		{"grep -v '^#' file", false},
		{"echo ~user", true},
	}
	for _, c := range cases {
		if got := NeedsShell(c.in); got != c.want {
			t.Errorf("NeedsShell(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestQuote(t *testing.T) {
	cases := []struct{ in, want string }{
		{"simple", "simple"},
		{"has space", "'has space'"},
		{"", "''"},
		{"a/b.c-d_e", "a/b.c-d_e"},
		{"don't", `'don'\''t'`},
		{"$HOME", "'$HOME'"},
		{"a|b", "'a|b'"},
	}
	for _, c := range cases {
		if got := Quote(c.in); got != c.want {
			t.Errorf("Quote(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestQuoteAll(t *testing.T) {
	got := QuoteAll([]string{"rsync", "-R", "a file", "/dest"})
	if got != "rsync -R 'a file' /dest" {
		t.Fatalf("got %q", got)
	}
}

// Property: Quote followed by Split round-trips any string to itself.
func TestPropertyQuoteSplitRoundTrip(t *testing.T) {
	f := func(s string) bool {
		if strings.IndexByte(s, 0) >= 0 {
			return true
		}
		got, err := Split("cmd " + Quote(s))
		if err != nil {
			return false
		}
		if s == "" {
			return len(got) == 2 && got[1] == ""
		}
		return len(got) == 2 && got[1] == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: splitting never returns words containing raw quote characters
// for well-formed single-quoted input.
func TestPropertyQuotedNoMeta(t *testing.T) {
	f := func(words []string) bool {
		clean := make([]string, 0, len(words))
		for _, w := range words {
			if strings.IndexByte(w, 0) >= 0 || w == "" {
				continue
			}
			clean = append(clean, w)
		}
		if len(clean) == 0 {
			return true
		}
		joined := QuoteAll(clean)
		got, err := Split(joined)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, clean)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
