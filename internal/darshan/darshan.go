// Package darshan implements a Darshan-like I/O characterization log
// substrate for the §IV-B massive log processing application: a compact
// binary record format, a synthetic archive generator standing in for the
// paper's five-year Summit dataset, a parser, and the per-(month, app)
// analyzer the paper parallelizes with `parallel ::: {1..12} ::: {0..2}`.
package darshan

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand/v2"
	"time"
)

// Record is one job's I/O characterization, a simplified Darshan log.
type Record struct {
	JobID     uint64
	UID       uint32
	AppID     uint32 // application identifier (hashed executable name)
	Month     uint8  // 1..12
	NProcs    uint32
	Runtime   uint32 // seconds
	BytesRead uint64
	BytesWrit uint64
	FilesOpen uint32
	PosixOps  uint64
	MPIIOOps  uint64
	StdioOps  uint64
}

// magic identifies the log format; version guards field layout.
const (
	magic   uint32 = 0xDA45A901
	version uint16 = 2
)

// recordSize is the fixed on-disk record size in bytes.
const recordSize = 8 + 4 + 4 + 1 + 3 /*pad*/ + 4 + 4 + 8 + 8 + 4 + 4 /*pad*/ + 8 + 8 + 8

// ErrBadMagic reports a stream that is not a darshan archive.
var ErrBadMagic = errors.New("darshan: bad magic (not a log archive)")

// ErrBadVersion reports an unsupported format version.
var ErrBadVersion = errors.New("darshan: unsupported version")

// Writer encodes records to a stream.
type Writer struct {
	w     *bufio.Writer
	n     int
	begun bool
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

func (w *Writer) header() error {
	var h [8]byte
	binary.LittleEndian.PutUint32(h[0:], magic)
	binary.LittleEndian.PutUint16(h[4:], version)
	_, err := w.w.Write(h[:])
	return err
}

// Write appends one record.
func (w *Writer) Write(r *Record) error {
	if !w.begun {
		w.begun = true
		if err := w.header(); err != nil {
			return err
		}
	}
	var b [recordSize]byte
	le := binary.LittleEndian
	le.PutUint64(b[0:], r.JobID)
	le.PutUint32(b[8:], r.UID)
	le.PutUint32(b[12:], r.AppID)
	b[16] = r.Month
	le.PutUint32(b[20:], r.NProcs)
	le.PutUint32(b[24:], r.Runtime)
	le.PutUint64(b[28:], r.BytesRead)
	le.PutUint64(b[36:], r.BytesWrit)
	le.PutUint32(b[44:], r.FilesOpen)
	le.PutUint64(b[52:], r.PosixOps)
	le.PutUint64(b[60:], r.MPIIOOps)
	le.PutUint64(b[68:], r.StdioOps)
	if _, err := w.w.Write(b[:]); err != nil {
		return err
	}
	w.n++
	return nil
}

// Count returns records written.
func (w *Writer) Count() int { return w.n }

// Flush flushes buffered output.
func (w *Writer) Flush() error {
	if !w.begun {
		w.begun = true
		if err := w.header(); err != nil {
			return err
		}
	}
	return w.w.Flush()
}

// Reader decodes records from a stream.
type Reader struct {
	r     *bufio.Reader
	begun bool
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader { return &Reader{r: bufio.NewReader(r)} }

// Next returns the next record or io.EOF.
func (rd *Reader) Next() (*Record, error) {
	if !rd.begun {
		rd.begun = true
		var h [8]byte
		if _, err := io.ReadFull(rd.r, h[:]); err != nil {
			if err == io.ErrUnexpectedEOF {
				return nil, ErrBadMagic
			}
			return nil, err
		}
		if binary.LittleEndian.Uint32(h[0:]) != magic {
			return nil, ErrBadMagic
		}
		if binary.LittleEndian.Uint16(h[4:]) != version {
			return nil, fmt.Errorf("%w: %d", ErrBadVersion, binary.LittleEndian.Uint16(h[4:]))
		}
	}
	var b [recordSize]byte
	if _, err := io.ReadFull(rd.r, b[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("darshan: truncated record: %w", err)
		}
		return nil, err
	}
	le := binary.LittleEndian
	r := &Record{
		JobID:     le.Uint64(b[0:]),
		UID:       le.Uint32(b[8:]),
		AppID:     le.Uint32(b[12:]),
		Month:     b[16],
		NProcs:    le.Uint32(b[20:]),
		Runtime:   le.Uint32(b[24:]),
		BytesRead: le.Uint64(b[28:]),
		BytesWrit: le.Uint64(b[36:]),
		FilesOpen: le.Uint32(b[44:]),
		PosixOps:  le.Uint64(b[52:]),
		MPIIOOps:  le.Uint64(b[60:]),
		StdioOps:  le.Uint64(b[68:]),
	}
	return r, nil
}

// AppName returns a synthetic application name for an app id.
func AppName(appID uint32) string { return fmt.Sprintf("app-%02d", appID) }

// HashApp derives an app id from an executable name (modulo the synthetic
// app universe size).
func HashApp(name string, apps int) uint32 {
	h := fnv.New32a()
	h.Write([]byte(name))
	return h.Sum32() % uint32(apps)
}

// Generate writes n synthetic records for the given month/apps universe,
// statistically resembling production logs (lognormal-ish volumes,
// power-law process counts). Deterministic for a given seed.
func Generate(w *Writer, n int, month int, apps int, seed uint64) error {
	rng := rand.New(rand.NewPCG(seed, seed^0x9E3779B97F4A7C15))
	for i := 0; i < n; i++ {
		nprocs := uint32(1 << rng.IntN(12)) // 1..2048, power-of-two-ish
		bytesR := uint64(rng.ExpFloat64() * 4e9)
		bytesW := uint64(rng.ExpFloat64() * 2e9)
		rec := &Record{
			JobID:     uint64(month)<<32 | uint64(i),
			UID:       uint32(1000 + rng.IntN(500)),
			AppID:     uint32(rng.IntN(apps)),
			Month:     uint8(month),
			NProcs:    nprocs,
			Runtime:   uint32(60 + rng.IntN(86_000)),
			BytesRead: bytesR,
			BytesWrit: bytesW,
			FilesOpen: uint32(1 + rng.IntN(4096)),
			PosixOps:  uint64(rng.IntN(1_000_000)),
			MPIIOOps:  uint64(rng.IntN(100_000)),
			StdioOps:  uint64(rng.IntN(10_000)),
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	return nil
}

// Summary aggregates an analyzed shard.
type Summary struct {
	Month, App             int
	Jobs                   int
	TotalRead, TotalWrit   uint64
	TotalOps               uint64
	MaxNProcs              uint32
	MeanRuntime            time.Duration
	BytesPerProcessSeconds float64 // aggregate I/O intensity
}

// Analyze is the per-(month, app) shard analyzer — the body of the
// paper's darshan_arch.py, consuming one archive stream and filtering to
// the shard.
func Analyze(r *Reader, month, app int) (*Summary, error) {
	s := &Summary{Month: month, App: app}
	var runtimeSum uint64
	var procSeconds float64
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if int(rec.Month) != month || int(rec.AppID) != app {
			continue
		}
		s.Jobs++
		s.TotalRead += rec.BytesRead
		s.TotalWrit += rec.BytesWrit
		s.TotalOps += rec.PosixOps + rec.MPIIOOps + rec.StdioOps
		if rec.NProcs > s.MaxNProcs {
			s.MaxNProcs = rec.NProcs
		}
		runtimeSum += uint64(rec.Runtime)
		procSeconds += float64(rec.NProcs) * float64(rec.Runtime)
	}
	if s.Jobs > 0 {
		s.MeanRuntime = time.Duration(runtimeSum/uint64(s.Jobs)) * time.Second
	}
	if procSeconds > 0 {
		s.BytesPerProcessSeconds = float64(s.TotalRead+s.TotalWrit) / procSeconds
	}
	return s, nil
}

// Merge combines shard summaries that share (month, app) — used when a
// shard spans multiple archive files.
func Merge(a, b *Summary) *Summary {
	out := *a
	out.Jobs += b.Jobs
	out.TotalRead += b.TotalRead
	out.TotalWrit += b.TotalWrit
	out.TotalOps += b.TotalOps
	if b.MaxNProcs > out.MaxNProcs {
		out.MaxNProcs = b.MaxNProcs
	}
	if a.Jobs+b.Jobs > 0 {
		out.MeanRuntime = time.Duration(
			(int64(a.MeanRuntime)*int64(a.Jobs) + int64(b.MeanRuntime)*int64(b.Jobs)) /
				int64(a.Jobs+b.Jobs))
	}
	return &out
}
