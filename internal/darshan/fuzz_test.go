package darshan

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReader ensures arbitrary byte streams never panic the archive
// reader: they must yield records, a clean EOF, or a typed error.
func FuzzReader(f *testing.F) {
	var good bytes.Buffer
	w := NewWriter(&good)
	w.Write(&Record{JobID: 1, Month: 3, BytesRead: 42})
	w.Flush()
	f.Add(good.Bytes())
	f.Add([]byte{})
	f.Add([]byte("not a darshan log"))
	f.Add(good.Bytes()[:10])
	f.Fuzz(func(t *testing.T, data []byte) {
		rd := NewReader(bytes.NewReader(data))
		for i := 0; i < 1000; i++ {
			_, err := rd.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				return
			}
		}
	})
}
