package darshan

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	recs := []*Record{
		{JobID: 1, UID: 1000, AppID: 2, Month: 3, NProcs: 128, Runtime: 3600,
			BytesRead: 1 << 40, BytesWrit: 1 << 30, FilesOpen: 42,
			PosixOps: 999, MPIIOOps: 77, StdioOps: 3},
		{JobID: 2, Month: 12, AppID: 0},
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 2 {
		t.Fatalf("count = %d", w.Count())
	}

	rd := NewReader(&buf)
	for i, want := range recs {
		got, err := rd.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if *got != *want {
			t.Fatalf("record %d = %+v, want %+v", i, got, want)
		}
	}
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestBadMagic(t *testing.T) {
	rd := NewReader(bytes.NewReader([]byte("notdarshanatall")))
	if _, err := rd.Next(); err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
	rd2 := NewReader(bytes.NewReader([]byte{1, 2}))
	if _, err := rd2.Next(); err != ErrBadMagic {
		t.Fatalf("short header err = %v", err)
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Write(&Record{JobID: 1})
	w.Flush()
	data := buf.Bytes()[:buf.Len()-5]
	rd := NewReader(bytes.NewReader(data))
	if _, err := rd.Next(); err == nil {
		t.Fatal("truncated record read successfully")
	}
}

func TestEmptyArchive(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rd := NewReader(&buf)
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("empty archive: %v, want EOF", err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	gen := func() []byte {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := Generate(w, 100, 4, 3, 99); err != nil {
			t.Fatal(err)
		}
		w.Flush()
		return buf.Bytes()
	}
	if !bytes.Equal(gen(), gen()) {
		t.Fatal("Generate not deterministic for fixed seed")
	}
}

func TestGenerateShape(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := Generate(w, 500, 7, 3, 1); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	rd := NewReader(&buf)
	apps := map[uint32]int{}
	n := 0
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if rec.Month != 7 {
			t.Fatalf("month = %d", rec.Month)
		}
		if rec.AppID > 2 {
			t.Fatalf("app = %d", rec.AppID)
		}
		apps[rec.AppID]++
		n++
	}
	if n != 500 {
		t.Fatalf("records = %d", n)
	}
	if len(apps) != 3 {
		t.Fatalf("apps seen = %v", apps)
	}
}

func TestAnalyzeFilters(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Write(&Record{Month: 1, AppID: 0, BytesRead: 100, NProcs: 4, Runtime: 10, PosixOps: 5})
	w.Write(&Record{Month: 1, AppID: 1, BytesRead: 999})
	w.Write(&Record{Month: 2, AppID: 0, BytesRead: 999})
	w.Write(&Record{Month: 1, AppID: 0, BytesWrit: 50, NProcs: 8, Runtime: 20, MPIIOOps: 7})
	w.Flush()

	s, err := Analyze(NewReader(&buf), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Jobs != 2 {
		t.Fatalf("jobs = %d", s.Jobs)
	}
	if s.TotalRead != 100 || s.TotalWrit != 50 {
		t.Fatalf("bytes = %d/%d", s.TotalRead, s.TotalWrit)
	}
	if s.TotalOps != 12 {
		t.Fatalf("ops = %d", s.TotalOps)
	}
	if s.MaxNProcs != 8 {
		t.Fatalf("maxprocs = %d", s.MaxNProcs)
	}
	if s.MeanRuntime.Seconds() != 15 {
		t.Fatalf("mean runtime = %v", s.MeanRuntime)
	}
	if s.BytesPerProcessSeconds <= 0 {
		t.Fatal("intensity not computed")
	}
}

func TestAnalyzeEmptyShard(t *testing.T) {
	var buf bytes.Buffer
	NewWriter(&buf).Flush()
	s, err := Analyze(NewReader(&buf), 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Jobs != 0 || s.MeanRuntime != 0 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestMerge(t *testing.T) {
	a := &Summary{Month: 1, App: 0, Jobs: 2, TotalRead: 100, MaxNProcs: 4, MeanRuntime: 10e9}
	b := &Summary{Month: 1, App: 0, Jobs: 2, TotalWrit: 60, MaxNProcs: 16, MeanRuntime: 30e9}
	m := Merge(a, b)
	if m.Jobs != 4 || m.TotalRead != 100 || m.TotalWrit != 60 || m.MaxNProcs != 16 {
		t.Fatalf("merge = %+v", m)
	}
	if m.MeanRuntime != 20e9 {
		t.Fatalf("mean runtime = %v", m.MeanRuntime)
	}
}

func TestHashAppStable(t *testing.T) {
	a := HashApp("lammps", 3)
	b := HashApp("lammps", 3)
	if a != b || a > 2 {
		t.Fatalf("hash = %d/%d", a, b)
	}
	if AppName(2) != "app-02" {
		t.Fatalf("AppName = %s", AppName(2))
	}
}

// Property: any generated record survives an encode/decode round trip.
func TestPropertyRecordRoundTrip(t *testing.T) {
	f := func(jobID uint64, uid, app, nprocs, runtime uint32, br, bw, px uint64, month uint8, files uint32) bool {
		rec := &Record{
			JobID: jobID, UID: uid, AppID: app, Month: month%12 + 1,
			NProcs: nprocs, Runtime: runtime, BytesRead: br, BytesWrit: bw,
			FilesOpen: files, PosixOps: px,
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if w.Write(rec) != nil {
			return false
		}
		if w.Flush() != nil {
			return false
		}
		got, err := NewReader(&buf).Next()
		return err == nil && *got == *rec
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWrite(b *testing.B) {
	w := NewWriter(io.Discard)
	rec := &Record{JobID: 1, Month: 1, BytesRead: 1 << 30}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Write(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyze(b *testing.B) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	Generate(w, 10_000, 1, 3, 5)
	w.Flush()
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(NewReader(bytes.NewReader(data)), 1, 0); err != nil {
			b.Fatal(err)
		}
	}
}
