// Package slurm models the batch scheduler layer: job allocations (with
// the startup delays Fig 1 attributes part of its tail to), the
// SLURM_NNODES/SLURM_NODEID environment the paper's driver script uses to
// shard input (Listing 1), and srun job-step launching — the baseline
// whose per-step cost and central-controller contention motivate using a
// parallel launcher instead (§IV intro, Listings 4–5).
package slurm

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// Config sets scheduler behavior.
type Config struct {
	// AllocBase is the minimum time from submission to the allocation
	// being usable.
	AllocBase time.Duration
	// AllocPerNode adds startup stagger per allocated node (prolog,
	// node health checks) — nodes become ready at different times.
	AllocPerNode time.Duration
	// AllocTailProb/AllocTailScale inject rare long allocation delays
	// on individual nodes (the Fig 1 outliers: "allocation delays,
	// NVMe availability delays").
	AllocTailProb  float64
	AllocTailScale time.Duration
	// StepCost is the base cost of creating one srun job step.
	StepCost time.Duration
	// RPCSlots bounds concurrent step-creation RPCs in the controller;
	// storms of srun calls queue here ("a large number of srun
	// invocations can impact the overall scheduler performance").
	RPCSlots int
	// RPCHold is controller service time per step RPC.
	RPCHold time.Duration
}

// DefaultConfig returns values representative of a large Slurm system.
func DefaultConfig() Config {
	return Config{
		AllocBase:      2 * time.Second,
		AllocPerNode:   2 * time.Millisecond,
		AllocTailProb:  0.002,
		AllocTailScale: 60 * time.Second,
		StepCost:       100 * time.Millisecond,
		RPCSlots:       64,
		RPCHold:        10 * time.Millisecond,
	}
}

// Scheduler is the central controller (slurmctld).
type Scheduler struct {
	e     *sim.Engine
	cfg   Config
	rpc   *sim.Resource
	rng   *sim.RNG
	jobID int

	// Steps counts srun job steps created.
	Steps int
	// Allocations counts granted allocations.
	Allocations int
}

// NewScheduler creates a scheduler on engine e.
func NewScheduler(e *sim.Engine, cfg Config) *Scheduler {
	if cfg.RPCSlots < 1 {
		cfg.RPCSlots = 1
	}
	return &Scheduler{
		e:   e,
		cfg: cfg,
		rpc: sim.NewResource(e, cfg.RPCSlots),
		rng: e.RNG().Split("slurm"),
	}
}

// Allocation is a granted set of nodes with Slurm-style identity.
type Allocation struct {
	JobID int
	Nodes []*cluster.Node
	// ReadyAt is when each node finished its prolog and can start
	// work, relative to the simulation epoch. Index-aligned to Nodes.
	ReadyAt []sim.Time
}

// NNodes returns the allocation size (SLURM_NNODES).
func (a *Allocation) NNodes() int { return len(a.Nodes) }

// Env returns the Slurm environment for the node at index i in the
// allocation — exactly the variables Listing 1's driver script consumes.
func (a *Allocation) Env(i int) []string {
	return []string{
		fmt.Sprintf("SLURM_JOB_ID=%d", a.JobID),
		fmt.Sprintf("SLURM_NNODES=%d", len(a.Nodes)),
		fmt.Sprintf("SLURM_NODEID=%d", i),
	}
}

// PlanReady computes the readiness schedule of an n-node allocation
// submitted at time start: the base allocation delay, then each node's
// prolog stagger and rare tail delay, drawn from rng in node order. It
// is a pure function of (rng state, cfg, n, start) — exactly the draws
// Allocate makes, factored out so sharded models can precompute node
// placement at build time instead of running a scheduler process.
func PlanReady(rng *sim.RNG, cfg Config, n int, start sim.Time) (base time.Duration, ready []sim.Time) {
	base = rng.Jitter(cfg.AllocBase, 0.2)
	// One up-front allocation: a 9,000-node ReadyAt slice should not be
	// built by append-growth.
	ready = make([]sim.Time, n)
	granted := start + base
	for i := 0; i < n; i++ {
		r := granted + sim.Time(i)*cfg.AllocPerNode
		if cfg.AllocTailProb > 0 && rng.Bernoulli(cfg.AllocTailProb) {
			r += rng.DurExp(cfg.AllocTailScale)
		}
		ready[i] = r
	}
	return base, ready
}

// Allocate grants nodes[0:n] from c to the calling process, blocking it
// for the allocation delay. Per-node readiness times model prolog stagger
// and rare tail delays; callers launching per-node work should delay each
// node until its ReadyAt.
func (s *Scheduler) Allocate(p *sim.Proc, c *cluster.Cluster, n int) (*Allocation, error) {
	if n < 1 || n > len(c.Nodes) {
		return nil, fmt.Errorf("slurm: requested %d nodes, cluster has %d", n, len(c.Nodes))
	}
	s.jobID++
	s.Allocations++
	base, ready := PlanReady(s.rng, s.cfg, n, p.Now())
	p.Sleep(base)
	return &Allocation{JobID: s.jobID, Nodes: c.Nodes[:n], ReadyAt: ready}, nil
}

// SrunStep launches one task as a Slurm job step: the calling process
// pays the controller RPC round-trip plus the step-creation cost, then
// the payload duration. This is the Listing 4 baseline: one srun per
// task.
func (s *Scheduler) SrunStep(p *sim.Proc, payload time.Duration) {
	s.rpc.Acquire(p, 1)
	p.Sleep(s.rng.Jitter(s.cfg.RPCHold, 0.2))
	s.rpc.Release(1)
	p.Sleep(s.rng.Jitter(s.cfg.StepCost, 0.2))
	s.Steps++
	if payload > 0 {
		p.Sleep(payload)
	}
}

// SrunLoopBaseline reproduces Listing 4's structure: launch n background
// srun steps with an inter-launch sleep throttle (the script's
// `sleep 0.2`), then wait for all. Returns the makespan.
func (s *Scheduler) SrunLoopBaseline(p *sim.Proc, n int, throttle, payload time.Duration) time.Duration {
	start := p.Now()
	wg := sim.NewCounter(p.Engine(), n)
	for i := 0; i < n; i++ {
		p.Engine().Spawn("srun-step", func(sp *sim.Proc) {
			s.SrunStep(sp, payload)
			wg.Done()
		})
		p.Sleep(throttle) // the defensive sleep between srun launches
	}
	wg.Wait(p)
	return p.Now() - start
}
