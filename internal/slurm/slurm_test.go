package slurm

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/sim"
)

func TestAllocateBasic(t *testing.T) {
	e := sim.NewEngine(1)
	c := cluster.New(e, cluster.Frontier(), 16)
	s := NewScheduler(e, DefaultConfig())
	var alloc *Allocation
	e.Spawn("submit", func(p *sim.Proc) {
		a, err := s.Allocate(p, c, 8)
		if err != nil {
			t.Errorf("Allocate: %v", err)
			return
		}
		alloc = a
	})
	end := e.Run()
	if alloc == nil {
		t.Fatal("no allocation")
	}
	if alloc.NNodes() != 8 || len(alloc.ReadyAt) != 8 {
		t.Fatalf("alloc = %+v", alloc)
	}
	if end < time.Second {
		t.Fatalf("allocation granted instantly (%v); AllocBase ignored", end)
	}
	for i, r := range alloc.ReadyAt {
		if r < end {
			t.Fatalf("node %d ready %v before grant %v", i, r, end)
		}
	}
	if s.Allocations != 1 {
		t.Fatalf("allocations = %d", s.Allocations)
	}
}

func TestAllocateTooManyNodes(t *testing.T) {
	e := sim.NewEngine(1)
	c := cluster.New(e, cluster.Frontier(), 2)
	s := NewScheduler(e, DefaultConfig())
	e.Spawn("submit", func(p *sim.Proc) {
		if _, err := s.Allocate(p, c, 5); err == nil {
			t.Error("oversized request granted")
		}
		if _, err := s.Allocate(p, c, 0); err == nil {
			t.Error("zero-node request granted")
		}
	})
	e.Run()
}

func TestEnvMatchesDriverScript(t *testing.T) {
	a := &Allocation{JobID: 42, Nodes: make([]*cluster.Node, 3)}
	env := a.Env(1)
	want := map[string]bool{
		"SLURM_JOB_ID=42": true, "SLURM_NNODES=3": true, "SLURM_NODEID=1": true,
	}
	for _, kv := range env {
		if !want[kv] {
			t.Fatalf("unexpected env %q", kv)
		}
		delete(want, kv)
	}
	if len(want) != 0 {
		t.Fatalf("missing env: %v", want)
	}
}

func TestAllocTailInjection(t *testing.T) {
	e := sim.NewEngine(123)
	c := cluster.New(e, cluster.Frontier(), 9000)
	cfg := DefaultConfig()
	cfg.AllocTailProb = 0.01
	s := NewScheduler(e, cfg)
	var alloc *Allocation
	e.Spawn("submit", func(p *sim.Proc) {
		alloc, _ = s.Allocate(p, c, 9000)
	})
	e.Run()
	tails := 0
	var max sim.Time
	for i, r := range alloc.ReadyAt {
		base := alloc.ReadyAt[0] + sim.Time(i)*cfg.AllocPerNode
		if r > base+time.Second {
			tails++
		}
		if r > max {
			max = r
		}
	}
	if tails < 30 || tails > 300 {
		t.Fatalf("tail nodes = %d, want ~90 of 9000 at p=0.01", tails)
	}
	if max < 30*time.Second {
		t.Fatalf("max ready %v; tails too small to matter", max)
	}
}

func TestSrunStepCost(t *testing.T) {
	e := sim.NewEngine(1)
	s := NewScheduler(e, DefaultConfig())
	e.Spawn("step", func(p *sim.Proc) {
		s.SrunStep(p, 0)
	})
	end := e.Run()
	// RPC hold (~10ms) + step cost (~100ms).
	if end < 80*time.Millisecond || end > 200*time.Millisecond {
		t.Fatalf("srun step took %v, want ~110ms", end)
	}
	if s.Steps != 1 {
		t.Fatalf("steps = %d", s.Steps)
	}
}

func TestSrunStormContention(t *testing.T) {
	// Many concurrent sruns queue on the controller: per-step latency
	// grows well beyond the base cost.
	e := sim.NewEngine(2)
	s := NewScheduler(e, DefaultConfig())
	const n = 2000
	done := 0
	for i := 0; i < n; i++ {
		e.Spawn("step", func(p *sim.Proc) {
			s.SrunStep(p, 0)
			done++
		})
	}
	end := e.Run()
	if done != n {
		t.Fatalf("done = %d", done)
	}
	// 2000 steps through 64 RPC slots at ~10ms each >= ~300ms of pure
	// controller time; with step cost, far more than one step's 110ms.
	if end < 300*time.Millisecond {
		t.Fatalf("storm of %d sruns finished in %v; no controller contention", n, end)
	}
}

func TestSrunLoopBaselineListing4Shape(t *testing.T) {
	// Listing 4: 36 tasks, sleep 0.2 between launches. Launch phase
	// alone is >= 7.2s — versus ~77ms of dispatch for the parallel
	// version (36 x 2.128ms). This is the ease-of-use/overhead gap.
	e := sim.NewEngine(3)
	s := NewScheduler(e, DefaultConfig())
	var makespan time.Duration
	e.Spawn("sbatch", func(p *sim.Proc) {
		makespan = s.SrunLoopBaseline(p, 36, 200*time.Millisecond, time.Second)
	})
	e.Run()
	if makespan < 7*time.Second {
		t.Fatalf("srun loop makespan %v, want >= 7.2s launch floor", makespan)
	}
	if s.Steps != 36 {
		t.Fatalf("steps = %d", s.Steps)
	}
}
