package container

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestBareMetalNoCost(t *testing.T) {
	e := sim.NewEngine(1)
	r := BareMetal()
	var took sim.Time
	e.Spawn("l", func(p *sim.Proc) {
		start := p.Now()
		if err := r.Launch(p); err != nil {
			t.Errorf("bare metal launch failed: %v", err)
		}
		took = p.Now() - start
	})
	e.Run()
	if took != 0 {
		t.Fatalf("bare metal launch cost %v, want 0", took)
	}
	if r.Launches != 1 || r.TotalFailures() != 0 {
		t.Fatalf("stats: %s", r)
	}
}

func TestShifterOverheadModest(t *testing.T) {
	r := Shifter(sim.NewEngine(1))
	// ~19% of the 2.13ms bare dispatch cost.
	if r.StartupOverhead < 300*time.Microsecond || r.StartupOverhead > 600*time.Microsecond {
		t.Fatalf("shifter startup = %v", r.StartupOverhead)
	}
	if r.lock != nil {
		t.Fatal("shifter should not serialize launches")
	}
}

func TestPodmanSerializesLaunches(t *testing.T) {
	e := sim.NewEngine(1)
	r := PodmanHPC(e)
	const n = 20
	for i := 0; i < n; i++ {
		e.Spawn("l", func(p *sim.Proc) { r.Launch(p) })
	}
	end := e.Run()
	// 20 launches through a ~15ms serial lock: >= ~270ms even with all
	// launchers running concurrently => rate ~65/s.
	if end < 250*time.Millisecond {
		t.Fatalf("20 podman launches took %v; database lock not serializing", end)
	}
	rate := float64(n) / end.Seconds()
	if rate < 40 || rate > 90 {
		t.Fatalf("podman launch rate = %.0f/s, want ~65/s", rate)
	}
}

func TestPodmanFailuresGrowWithConcurrency(t *testing.T) {
	countFailures := func(concurrent int) int {
		e := sim.NewEngine(42)
		r := PodmanHPC(e)
		gate := sim.NewResource(e, concurrent)
		for i := 0; i < 3000; i++ {
			e.Spawn("l", func(p *sim.Proc) {
				gate.Acquire(p, 1)
				r.Launch(p)
				gate.Release(1)
			})
		}
		e.Run()
		return r.TotalFailures()
	}
	low := countFailures(2)
	high := countFailures(32)
	if high <= low {
		t.Fatalf("failures at high concurrency (%d) not above low (%d)", high, low)
	}
	if high == 0 {
		t.Fatal("no failures injected at high concurrency")
	}
}

func TestPodmanFailureKindsAreTheObservedOnes(t *testing.T) {
	e := sim.NewEngine(3)
	r := PodmanHPC(e)
	for i := 0; i < 5000; i++ {
		e.Spawn("l", func(p *sim.Proc) { r.Launch(p) })
	}
	e.Run()
	known := map[string]bool{
		ErrUserNamespace.Error(): true,
		ErrDatabaseLock.Error():  true,
		ErrSetgid.Error():        true,
		ErrTmpDir.Error():        true,
	}
	for kind := range r.Failures {
		if !known[kind] {
			t.Fatalf("unexpected failure kind %q", kind)
		}
	}
	if r.Launches != 5000 {
		t.Fatalf("launches = %d", r.Launches)
	}
}

func TestShifterFasterThanPodman(t *testing.T) {
	run := func(mk func(*sim.Engine) *Runtime) time.Duration {
		e := sim.NewEngine(5)
		r := mk(e)
		slots := sim.NewResource(e, 16)
		for i := 0; i < 500; i++ {
			e.Spawn("l", func(p *sim.Proc) {
				slots.Acquire(p, 1)
				p.Sleep(r.StartupOverhead)
				r.Launch(p)
				slots.Release(1)
			})
		}
		return e.Run()
	}
	shifter := run(Shifter)
	podman := run(PodmanHPC)
	if podman < 20*shifter {
		t.Fatalf("podman (%v) should be >>20x slower than shifter (%v)", podman, shifter)
	}
}
