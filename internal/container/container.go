// Package container models HPC container runtimes for the Fig 4/Fig 5
// stress tests: Shifter (thin chroot-style startup, ~19% overhead over
// bare metal) and Podman-HPC (user namespaces + a serializing local
// database, two orders of magnitude slower, with reliability failures at
// scale).
//
// A Runtime describes what launching one containerized process costs on
// top of the bare-metal fork: extra CPU-bound setup time (which consumes
// the node's launch capacity, lowering the achievable launch rate) and an
// optional global serialization lock (Podman's database). Failure modes
// are injected probabilistically as a function of in-flight launches,
// reproducing the paper's observed namespace/DB-lock/setgid errors at
// larger scales.
package container

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/sim"
)

// Failure kinds observed for Podman-HPC in the paper (§III Containers).
var (
	ErrUserNamespace = errors.New("container: failed setting up user namespace")
	ErrDatabaseLock  = errors.New("container: database is locked")
	ErrSetgid        = errors.New("container: setgid operation failed")
	ErrTmpDir        = errors.New("container: task tmp directory unavailable")
)

var podmanFailures = []error{ErrUserNamespace, ErrDatabaseLock, ErrSetgid, ErrTmpDir}

// Runtime models one container technology on one node.
type Runtime struct {
	Name string
	// StartupOverhead is extra CPU-bound launch work per container,
	// added to the bare-metal dispatch cost and consuming node launch
	// capacity.
	StartupOverhead time.Duration
	// lock, when non-nil, serializes part of startup across the whole
	// node (Podman's container database). lockHold is the time held.
	lock     *sim.Resource
	lockHold time.Duration
	// failureRate returns the probability that a launch fails given the
	// number of concurrent in-flight launches.
	failureRate func(inflight int) float64
	rng         *sim.RNG

	// Stats
	Launches int
	Failures map[string]int
	inflight int
}

// BareMetal is the null runtime: no container, no overhead.
func BareMetal() *Runtime {
	return &Runtime{Name: "bare-metal", Failures: map[string]int{}}
}

// Shifter models NERSC's Shifter runtime. Calibration: Fig 4 reports a
// launch ceiling of ~5,200/s versus ~6,400/s bare metal, i.e. ~19%
// startup overhead on the ~2.1ms bare dispatch cost.
func Shifter(e *sim.Engine) *Runtime {
	return &Runtime{
		Name:            "shifter",
		StartupOverhead: 500 * time.Microsecond, // launch hold 2.63ms ⇒ ~5,300/s, 19% over bare metal
		rng:             e.RNG().Split("container/shifter"),
		Failures:        map[string]int{},
	}
}

// PodmanHPC models Podman-HPC. Calibration: Fig 5 reports ~65 launches/s
// regardless of -j, i.e. a ~15ms critical section serialized by the
// container database, plus reliability failures that grow with in-flight
// launches.
func PodmanHPC(e *sim.Engine) *Runtime {
	return &Runtime{
		Name:            "podman-hpc",
		StartupOverhead: 2 * time.Millisecond,
		lock:            sim.NewResource(e, 1),
		lockHold:        15 * time.Millisecond,
		failureRate: func(inflight int) float64 {
			// Negligible when lightly loaded; grows to several
			// percent under heavy concurrent launching.
			if inflight <= 4 {
				return 0.001
			}
			r := 0.002 * float64(inflight-4)
			if r > 0.08 {
				r = 0.08
			}
			return r
		},
		rng:      e.RNG().Split("container/podman"),
		Failures: map[string]int{},
	}
}

// Launch performs the container-specific part of starting one process,
// blocking p for the modeled costs. It returns a failure error according
// to the runtime's reliability model. Callers account StartupOverhead
// against node launch capacity themselves (see cluster.Instance).
func (r *Runtime) Launch(p *sim.Proc) error {
	r.Launches++
	r.inflight++
	defer func() { r.inflight-- }()

	if r.lock != nil {
		r.lock.Acquire(p, 1)
		p.Sleep(r.jitter(r.lockHold))
		r.lock.Release(1)
	}
	if r.failureRate != nil && r.rng != nil {
		if prob := r.failureRate(r.inflight); prob > 0 && r.rng.Bernoulli(prob) {
			err := podmanFailures[r.rng.IntN(len(podmanFailures))]
			r.Failures[err.Error()]++
			return err
		}
	}
	return nil
}

func (r *Runtime) jitter(d time.Duration) time.Duration {
	if r.rng == nil {
		return d
	}
	return r.rng.Jitter(d, 0.1)
}

// TotalFailures sums failures across kinds.
func (r *Runtime) TotalFailures() int {
	n := 0
	for _, v := range r.Failures {
		n += v
	}
	return n
}

// String summarizes the runtime.
func (r *Runtime) String() string {
	return fmt.Sprintf("%s(startup=%v launches=%d failures=%d)",
		r.Name, r.StartupOverhead, r.Launches, r.TotalFailures())
}
