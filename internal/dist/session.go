package dist

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync"
)

// errSessionDead reports a v2 session whose connection already failed.
var errSessionDead = errors.New("dist: worker session lost")

// v2session multiplexes one worker's whole slot pool over a single
// protocol-v2 connection. Run calls enqueue requests on sendq (a writer
// goroutine coalesces them into frames), park on a per-seq channel, and
// are woken by the reader goroutine when their response arrives in some
// result frame. Concurrency is bounded outside the session by the
// pool's virtual slot tokens, and worker-side by its own semaphore.
type v2session struct {
	name  string
	addr  string
	slots int
	nc    net.Conn

	sendq chan request

	mu      sync.Mutex
	pending map[int]chan response
	// onFail, when set, runs (once, on its own goroutine) after the
	// session dies — the pool uses it to retire capacity proactively
	// instead of waiting for the next job to trip over the dead session.
	onFail func()

	dead     chan struct{}
	failOnce sync.Once
	// retired guards the pool-side capacity accounting so that many
	// concurrent Run failures retire the session exactly once.
	retired sync.Once
}

func newV2Session(name, addr string, nc net.Conn, br *bufio.Reader, bw *bufio.Writer) *v2session {
	s := &v2session{
		name:    name,
		addr:    addr,
		nc:      nc,
		sendq:   make(chan request, maxBatchItems),
		pending: map[int]chan response{},
		dead:    make(chan struct{}),
	}
	go s.readLoop(br)
	go func() {
		if err := batchWriter(bw, s.sendq, s.dead, func(reqs []request) batch {
			return batch{Jobs: reqs}
		}); err != nil {
			s.fail()
		}
	}()
	return s
}

// fail marks the session dead and tears down the connection; all parked
// round-trips unblock through the dead channel.
func (s *v2session) fail() {
	s.failOnce.Do(func() {
		close(s.dead)
		s.nc.Close()
		s.mu.Lock()
		fn := s.onFail
		s.mu.Unlock()
		if fn != nil {
			go fn()
		}
	})
}

// setOnFail installs the death notification hook. The session's reader
// starts before the pool registers its tokens, so the hook arrives
// late; if the session already died in that window, fire immediately.
func (s *v2session) setOnFail(fn func()) {
	s.mu.Lock()
	s.onFail = fn
	s.mu.Unlock()
	if s.isDead() {
		fn()
	}
}

func (s *v2session) isDead() bool {
	select {
	case <-s.dead:
		return true
	default:
		return false
	}
}

func (s *v2session) readLoop(br *bufio.Reader) {
	for {
		b, err := readBatch(br)
		if err != nil {
			s.fail()
			return
		}
		for i := range b.Results {
			resp := b.Results[i]
			s.mu.Lock()
			ch := s.pending[resp.Seq]
			delete(s.pending, resp.Seq)
			s.mu.Unlock()
			if ch != nil {
				ch <- resp // buffered; never blocks the reader
			}
		}
	}
}

// roundTrip ships one request and waits for its response. A context
// cancellation abandons the job (its eventual response is discarded on
// arrival) but leaves the session healthy — one cancelled job must not
// tear down a multiplexed connection carrying its neighbors.
func (s *v2session) roundTrip(ctx context.Context, req request) (response, error) {
	ch := make(chan response, 1)
	s.mu.Lock()
	s.pending[req.Seq] = ch
	s.mu.Unlock()
	abandon := func() {
		s.mu.Lock()
		delete(s.pending, req.Seq)
		s.mu.Unlock()
	}
	select {
	case s.sendq <- req:
	case <-ctx.Done():
		abandon()
		return response{}, ctx.Err()
	case <-s.dead:
		abandon()
		return response{}, errSessionDead
	}
	select {
	case resp := <-ch:
		return resp, nil
	case <-ctx.Done():
		abandon()
		return response{}, ctx.Err()
	case <-s.dead:
		abandon()
		return response{}, errSessionDead
	}
}
