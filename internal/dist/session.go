package dist

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync"

	"repro/internal/telemetry"
)

// errSessionDead reports a multiplexed session whose connection already
// failed.
var errSessionDead = errors.New("dist: worker session lost")

// respChanPool recycles the per-round-trip wake channels. A channel is
// returned to the pool only after its response has been received, so a
// pooled channel is always empty; abandoned round trips (context
// cancellation) let their channel go to the garbage collector instead,
// because the reader may still be about to deliver into it.
var respChanPool = sync.Pool{New: func() any { return make(chan response, 1) }}

// session multiplexes one worker's whole slot pool over a single
// protocol v2 or v3 connection. Run calls enqueue requests on sendq (a
// writer goroutine coalesces them into frames), park on a per-seq
// channel, and are woken by the reader goroutine when their response
// arrives in some result frame. Concurrency is bounded outside the
// session by the pool's virtual slot tokens, and worker-side by its own
// slot workers.
type session struct {
	name  string
	addr  string
	slots int
	proto int // negotiated protocol version (2 or 3)
	nc    net.Conn

	sendq chan request

	// deflateMin and wire are inherited from the pool: the stdin
	// compression threshold and the shared traffic counters.
	deflateMin int
	wire       *WireStats
	// onSnap receives the telemetry snapshot piggybacked on v3 result
	// frames (v2 carries it per response instead).
	onSnap func(telemetry.Snapshot)

	mu      sync.Mutex
	pending map[int]chan response
	// onFail, when set, runs (once, on its own goroutine) after the
	// session dies — the pool uses it to retire capacity proactively
	// instead of waiting for the next job to trip over the dead session.
	onFail func()

	dead     chan struct{}
	failOnce sync.Once
	// retired guards the pool-side capacity accounting so that many
	// concurrent Run failures retire the session exactly once.
	retired sync.Once
}

func newSession(name, addr string, nc net.Conn, br *bufio.Reader, bw *bufio.Writer, proto, deflateMin int, wire *WireStats, onSnap func(telemetry.Snapshot)) *session {
	qcap := maxBatchItems
	if proto >= 3 {
		qcap = maxBatchItemsV3
	}
	s := &session{
		name:       name,
		addr:       addr,
		proto:      proto,
		nc:         nc,
		sendq:      make(chan request, qcap),
		deflateMin: deflateMin,
		wire:       wire,
		onSnap:     onSnap,
		pending:    map[int]chan response{},
		dead:       make(chan struct{}),
	}
	if proto >= 3 {
		go s.readLoopV3(br)
		go func() {
			if err := v3JobsLoop(bw, s.sendq, s.dead, deflateMin, wire); err != nil {
				s.fail()
			}
		}()
	} else {
		go s.readLoopV2(br)
		go func() {
			if err := batchWriter(bw, s.sendq, s.dead, wire, func(reqs []request) batch {
				return batch{Jobs: reqs}
			}); err != nil {
				s.fail()
			}
		}()
	}
	return s
}

// fail marks the session dead and tears down the connection; all parked
// round-trips unblock through the dead channel.
func (s *session) fail() {
	s.failOnce.Do(func() {
		close(s.dead)
		s.nc.Close()
		s.mu.Lock()
		fn := s.onFail
		s.mu.Unlock()
		if fn != nil {
			go fn()
		}
	})
}

// setOnFail installs the death notification hook. The session's reader
// starts before the pool registers its tokens, so the hook arrives
// late; if the session already died in that window, fire immediately.
func (s *session) setOnFail(fn func()) {
	s.mu.Lock()
	s.onFail = fn
	s.mu.Unlock()
	if s.isDead() {
		fn()
	}
}

func (s *session) isDead() bool {
	select {
	case <-s.dead:
		return true
	default:
		return false
	}
}

// deliver hands one response to whichever round trip is parked on its
// seq; responses for abandoned jobs are dropped.
func (s *session) deliver(resp response) {
	s.mu.Lock()
	ch := s.pending[resp.Seq]
	delete(s.pending, resp.Seq)
	s.mu.Unlock()
	if ch != nil {
		ch <- resp // buffered; never blocks the reader
	}
}

func (s *session) readLoopV2(br *bufio.Reader) {
	for {
		b, err := readBatch(br, s.wire)
		if err != nil {
			s.fail()
			return
		}
		for i := range b.Results {
			s.deliver(b.Results[i])
		}
	}
}

// readLoopV3 decodes binary result frames. The frame buffer and
// response scratch are reused across frames; result payloads were
// copied out by the decoder, so recycling is safe the moment delivery
// finishes.
func (s *session) readLoopV3(br *bufio.Reader) {
	var buf []byte
	var resps []response
	for {
		typ, body, err := readFrameV3(br, &buf, s.wire)
		if err != nil || typ != frameResultsV3 {
			s.fail()
			return
		}
		rs, snap, hasSnap, derr := decodeResultsV3(body, resps, s.name)
		resps = rs
		if derr != nil {
			s.fail()
			return
		}
		for i := range resps {
			s.deliver(resps[i])
		}
		if hasSnap && s.onSnap != nil {
			s.onSnap(snap)
		}
	}
}

// roundTrip ships one request and waits for its response. A context
// cancellation abandons the job (its eventual response is discarded on
// arrival) but leaves the session healthy — one cancelled job must not
// tear down a multiplexed connection carrying its neighbors.
func (s *session) roundTrip(ctx context.Context, req request) (response, error) {
	ch := respChanPool.Get().(chan response)
	s.mu.Lock()
	s.pending[req.Seq] = ch
	s.mu.Unlock()
	abandon := func() {
		s.mu.Lock()
		delete(s.pending, req.Seq)
		s.mu.Unlock()
		// The channel is NOT pooled: the reader may have looked it up
		// before the delete and be about to send.
	}
	select {
	case s.sendq <- req:
	case <-ctx.Done():
		abandon()
		return response{}, ctx.Err()
	case <-s.dead:
		abandon()
		return response{}, errSessionDead
	}
	select {
	case resp := <-ch:
		respChanPool.Put(ch)
		return resp, nil
	case <-ctx.Done():
		abandon()
		return response{}, ctx.Err()
	case <-s.dead:
		abandon()
		return response{}, errSessionDead
	}
}
