// Package dist adds multi-host execution to the engine: a worker daemon
// (cmd/gopard) executes jobs sent over TCP, and Pool — a core.Runner —
// fans an engine's jobs out across workers. Because remote execution is
// just another Runner, every engine feature (slots, keep-order, retries,
// halt policies, joblogs, resume) composes with it unchanged.
//
// This is the library-native equivalent of GNU Parallel's --sshlogin
// (the paper instead shards input per node with a driver script —
// Listing 1 — which internal/cluster models; dist covers the
// direct-distribution alternative for clusters without a scheduler).
//
// The protocol is line-delimited JSON over TCP, one in-flight job per
// connection; a Pool opens one connection per advertised worker slot.
// There is no authentication: like rsh-era sshlogin, it is for trusted
// networks (or localhost) only, and says so in cmd/gopard's usage.
package dist

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/telemetry"
)

// protocolVersion guards against mismatched coordinator/worker builds.
const protocolVersion = 1

// hello is sent by the worker on connection accept.
type hello struct {
	Version int    `json:"version"`
	Name    string `json:"name"`
	Slots   int    `json:"slots"`
}

// request is one job execution request.
type request struct {
	Seq     int      `json:"seq"`
	Slot    int      `json:"slot"`
	Command string   `json:"command"`
	Args    []string `json:"args,omitempty"`
	Env     []string `json:"env,omitempty"`
	Stdin   []byte   `json:"stdin,omitempty"`
	// TimeoutNS caps execution worker-side (belt and braces: the
	// coordinator also enforces it).
	TimeoutNS int64 `json:"timeout_ns,omitempty"`
}

// response reports one job's outcome.
type response struct {
	Seq      int    `json:"seq"`
	ExitCode int    `json:"exit_code"`
	Err      string `json:"err,omitempty"`
	Stdout   []byte `json:"stdout,omitempty"`
	Stderr   []byte `json:"stderr,omitempty"`
	StartNS  int64  `json:"start_ns"`
	EndNS    int64  `json:"end_ns"`
	TimedOut bool   `json:"timed_out,omitempty"`
	// RecvNS is when the worker received the request (worker clock).
	// StartNS - RecvNS is the worker-side dispatch overhead, a
	// sub-segment of the coordinator's DispatchDelay that span
	// timelines attribute separately. Optional: old workers omit it.
	RecvNS int64 `json:"recv_ns,omitempty"`
	// Telemetry piggybacks the worker's current counters on every
	// response, so the coordinator aggregates fleet state with zero
	// extra round trips. Optional: old workers simply omit it.
	Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`
}

// codec frames JSON messages over a stream.
type codec struct {
	enc *json.Encoder
	dec *json.Decoder
	bw  *bufio.Writer
}

func newCodec(rw io.ReadWriter) *codec {
	bw := bufio.NewWriter(rw)
	return &codec{
		enc: json.NewEncoder(bw),
		dec: json.NewDecoder(bufio.NewReader(rw)),
		bw:  bw,
	}
}

func (c *codec) send(v any) error {
	if err := c.enc.Encode(v); err != nil {
		return err
	}
	return c.bw.Flush()
}

func (c *codec) recv(v any) error { return c.dec.Decode(v) }

func nsToTime(ns int64) time.Time { return time.Unix(0, ns) }

func checkHello(h hello) error {
	if h.Version != protocolVersion {
		return fmt.Errorf("dist: protocol version %d, want %d", h.Version, protocolVersion)
	}
	if h.Slots < 1 {
		return fmt.Errorf("dist: worker %q advertises %d slots", h.Name, h.Slots)
	}
	return nil
}
