// Package dist adds multi-host execution to the engine: a worker daemon
// (cmd/gopard) executes jobs sent over TCP, and Pool — a core.Runner —
// fans an engine's jobs out across workers. Because remote execution is
// just another Runner, every engine feature (slots, keep-order, retries,
// halt policies, joblogs, resume) composes with it unchanged.
//
// This is the library-native equivalent of GNU Parallel's --sshlogin
// (the paper instead shards input per node with a driver script —
// Listing 1 — which internal/cluster models; dist covers the
// direct-distribution alternative for clusters without a scheduler).
//
// The base protocol (v1) is line-delimited JSON over TCP, one in-flight
// job per connection; a Pool opens one connection per advertised worker
// slot. Protocol v2, negotiated through the hello's max_version field,
// multiplexes a worker's whole slot pool over one connection and moves
// to batched length-prefixed frames: a writer goroutine coalesces
// queued jobs (or results) into one frame and flushes only when its
// queue goes idle, so a dispatch burst pays one syscall instead of one
// per job. Old workers never announce max_version and keep speaking v1
// against new coordinators, and vice versa.
//
// Protocol v3 (see protocol_v3.go) keeps v2's negotiation, multiplexing
// and coalescing discipline but replaces the JSON frame payloads with a
// pooled binary codec: varint headers, length-delimited strings, a
// CRC32C trailer per frame, optional deflate for large payloads, and
// zero steady-state allocations per job on the encode and decode paths.
// There is no authentication: like rsh-era sshlogin, it is for trusted
// networks (or localhost) only, and says so in cmd/gopard's usage.
package dist

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/telemetry"
)

// protocolVersion is the announced base version; it stays 1 so builds
// that predate negotiation still pass their strict equality check.
// protocolMax is the highest version this build can speak.
const (
	protocolVersion = 1
	protocolMax     = 3
)

// hello is sent by the worker on connection accept.
type hello struct {
	Version int    `json:"version"`
	Name    string `json:"name"`
	Slots   int    `json:"slots"`
	// MaxVersion advertises the highest protocol version the worker
	// speaks. Omitted (0) by pre-v2 workers, which pins the connection
	// to v1.
	MaxVersion int `json:"max_version,omitempty"`
}

// upgrade is the coordinator's protocol-switch message, sent as a v1
// JSON line immediately after a hello that advertises MaxVersion >= 2.
// Everything after it is length-prefixed v2 frames in both directions.
type upgrade struct {
	Upgrade int `json:"upgrade"`
}

// firstMsg lets a worker decode the coordinator's first message without
// knowing yet whether it is an upgrade or a plain v1 request.
type firstMsg struct {
	Upgrade int `json:"upgrade,omitempty"`
	request
}

// request is one job execution request.
type request struct {
	Seq     int      `json:"seq"`
	Slot    int      `json:"slot"`
	Command string   `json:"command"`
	Args    []string `json:"args,omitempty"`
	Env     []string `json:"env,omitempty"`
	Stdin   []byte   `json:"stdin,omitempty"`
	// TimeoutNS caps execution worker-side (belt and braces: the
	// coordinator also enforces it).
	TimeoutNS int64 `json:"timeout_ns,omitempty"`
}

// response reports one job's outcome.
type response struct {
	Seq      int    `json:"seq"`
	ExitCode int    `json:"exit_code"`
	Err      string `json:"err,omitempty"`
	Stdout   []byte `json:"stdout,omitempty"`
	Stderr   []byte `json:"stderr,omitempty"`
	StartNS  int64  `json:"start_ns"`
	EndNS    int64  `json:"end_ns"`
	TimedOut bool   `json:"timed_out,omitempty"`
	// RecvNS is when the worker received the request (worker clock).
	// StartNS - RecvNS is the worker-side dispatch overhead, a
	// sub-segment of the coordinator's DispatchDelay that span
	// timelines attribute separately. Optional: old workers omit it.
	RecvNS int64 `json:"recv_ns,omitempty"`
	// SentBytes is how many stdin bytes the job actually consumed on
	// the worker — the joblog Send column. Optional: old workers omit
	// it and the coordinator falls back to the request's stdin size.
	SentBytes int `json:"sent_bytes,omitempty"`
	// Telemetry piggybacks the worker's current counters on every
	// response, so the coordinator aggregates fleet state with zero
	// extra round trips. Optional: old workers simply omit it.
	Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`
}

// codec frames v1 JSON messages over a stream.
type codec struct {
	enc *json.Encoder
	dec *json.Decoder
	bw  *bufio.Writer
}

func newCodec(rw io.ReadWriter) *codec {
	return newCodecRW(bufio.NewReader(rw), bufio.NewWriter(rw))
}

// newCodecRW builds a codec over caller-owned buffered halves, so the
// caller can later take the stream back for v2 framing (any bytes the
// JSON decoder read ahead are recovered via leftover).
func newCodecRW(br *bufio.Reader, bw *bufio.Writer) *codec {
	return &codec{
		enc: json.NewEncoder(bw),
		dec: json.NewDecoder(br),
		bw:  bw,
	}
}

// leftover returns whatever the v1 JSON decoder buffered beyond the
// last decoded message; a v2 frame reader must consume this before the
// underlying stream. Decode stops at the end of a JSON value and leaves
// the line-terminating newline unread, so leading whitespace is
// stripped — a frame header must never start with it.
func (c *codec) leftover() io.Reader {
	b, _ := io.ReadAll(c.dec.Buffered())
	for len(b) > 0 && (b[0] == '\n' || b[0] == '\r' || b[0] == ' ' || b[0] == '\t') {
		b = b[1:]
	}
	return bytes.NewReader(b)
}

func (c *codec) send(v any) error {
	if err := c.enc.Encode(v); err != nil {
		return err
	}
	return c.bw.Flush()
}

func (c *codec) recv(v any) error { return c.dec.Decode(v) }

// --- v2 framing ---------------------------------------------------------

// maxFrame bounds one frame's payload. It protects both sides from a
// corrupt or hostile length prefix; legitimate batches (job argv plus
// captured output, capped at maxBatchItems entries) sit far below it.
const maxFrame = 16 << 20

// maxBatchItems caps how many messages one frame coalesces, bounding
// both frame size and the latency a queued job can hide behind its
// batch.
const maxBatchItems = 64

// batch is a v2 frame payload: jobs travel coordinator→worker, results
// travel back. A frame carries one direction only, but the type is
// shared so both sides use the same decoder (and the same fuzz target).
type batch struct {
	Jobs    []request  `json:"jobs,omitempty"`
	Results []response `json:"results,omitempty"`
}

// writeFrame emits one length-prefixed payload without flushing; the
// caller decides when the stream has gone idle enough to pay the
// syscall.
func writeFrame(bw *bufio.Writer, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("dist: frame of %d bytes exceeds limit %d", len(payload), maxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	_, err := bw.Write(payload)
	return err
}

// readFrame reads one length-prefixed payload.
func readFrame(br *bufio.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("dist: frame of %d bytes exceeds limit %d", n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// writeBatch marshals and frames one batch (no flush). st, when non-nil,
// counts the framed bytes so v2 traffic shows up in the same wire
// telemetry as v3.
func writeBatch(bw *bufio.Writer, b *batch, st *WireStats) error {
	payload, err := json.Marshal(b)
	if err != nil {
		return err
	}
	if err := writeFrame(bw, payload); err != nil {
		return err
	}
	if st != nil {
		st.bytesSent.Add(uint64(len(payload)) + 4)
		st.framesSent.Add(1)
	}
	return nil
}

// readBatch reads and decodes one framed batch.
func readBatch(br *bufio.Reader, st *WireStats) (batch, error) {
	var b batch
	payload, err := readFrame(br)
	if err != nil {
		return b, err
	}
	if st != nil {
		st.bytesRecv.Add(uint64(len(payload)) + 4)
		st.framesRecv.Add(1)
	}
	if err := json.Unmarshal(payload, &b); err != nil {
		return b, fmt.Errorf("dist: decoding frame: %w", err)
	}
	return b, nil
}

// batchWriter is the coalescing send loop both sides of a v2 connection
// run: take one queued message, greedily drain whatever else is already
// queued (up to maxBatchItems), emit a single frame, and flush only
// when the queue is idle — a burst of messages costs one syscall, a
// lone message still departs immediately. Returns nil when ch closes;
// a close on done aborts without error.
func batchWriter[T any](bw *bufio.Writer, ch <-chan T, done <-chan struct{}, st *WireStats, wrap func([]T) batch) error {
	for {
		var first T
		var ok bool
		select {
		case first, ok = <-ch:
			if !ok {
				return bw.Flush()
			}
		case <-done:
			return nil
		}
		items := []T{first}
		for len(items) < maxBatchItems {
			more := false
			select {
			case v, ok := <-ch:
				if ok {
					items = append(items, v)
					more = true
				}
			default:
			}
			if !more {
				break
			}
		}
		b := wrap(items)
		if err := writeBatch(bw, &b, st); err != nil {
			return err
		}
		if len(ch) == 0 {
			if err := bw.Flush(); err != nil {
				return err
			}
		}
	}
}

func nsToTime(ns int64) time.Time { return time.Unix(0, ns) }

func checkHello(h hello) error {
	if h.Version != protocolVersion {
		return fmt.Errorf("dist: protocol version %d, want %d", h.Version, protocolVersion)
	}
	if h.Slots < 1 {
		return fmt.Errorf("dist: worker %q advertises %d slots", h.Name, h.Slots)
	}
	return nil
}
