package dist

import (
	"bufio"
	"context"
	"errors"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// WorkerTelemetry tracks a worker's execution counters. Every Serve
// call keeps one (supplied or internal) and piggybacks a Snapshot on
// each job response; gopard additionally exposes the same counters on
// its own /metrics endpoint via Register.
type WorkerTelemetry struct {
	name  string
	slots int

	busy    atomic.Int64
	started atomic.Int64
	ok      atomic.Int64
	failed  atomic.Int64
}

// NewWorkerTelemetry returns zeroed worker counters. Name and slots
// are filled in by Serve from its WorkerConfig.
func NewWorkerTelemetry() *WorkerTelemetry { return &WorkerTelemetry{} }

// Snapshot captures the current counters.
func (t *WorkerTelemetry) Snapshot() telemetry.Snapshot {
	return telemetry.Snapshot{
		Worker:   t.name,
		Slots:    t.slots,
		Busy:     int(t.busy.Load()),
		Started:  t.started.Load(),
		OK:       t.ok.Load(),
		Failed:   t.failed.Load(),
		UnixNano: time.Now().UnixNano(),
	}
}

// Register exposes the worker counters on reg under gopard_* names.
func (t *WorkerTelemetry) Register(reg *telemetry.Registry) {
	reg.GaugeFunc("gopard_slots", "Advertised concurrent job slots.",
		func() float64 { return float64(t.slots) })
	reg.GaugeFunc("gopard_busy", "Jobs executing right now.",
		func() float64 { return float64(t.busy.Load()) })
	reg.GaugeFunc("gopard_jobs_started_total", "Jobs received for execution.",
		func() float64 { return float64(t.started.Load()) })
	reg.GaugeFunc("gopard_jobs_finished_total", "Jobs finished, by outcome.",
		func() float64 { return float64(t.ok.Load()) }, telemetry.L("outcome", "ok"))
	reg.GaugeFunc("gopard_jobs_finished_total", "Jobs finished, by outcome.",
		func() float64 { return float64(t.failed.Load()) }, telemetry.L("outcome", "fail"))
}

// WorkerConfig configures Serve.
type WorkerConfig struct {
	// Name identifies this worker in joblogs (defaults to the
	// listener address).
	Name string
	// Slots advertised to coordinators (a coordinator opens up to this
	// many concurrent connections). Defaults to 8.
	Slots int
	// Runner executes jobs (default: real processes via ExecRunner).
	Runner core.Runner
	// Logf, when non-nil, receives connection lifecycle messages.
	Logf func(format string, args ...any)
	// Telemetry, when non-nil, is the counter set snapshots are taken
	// from (share it with a metrics endpoint). Nil allocates an
	// internal one — responses always carry telemetry either way.
	Telemetry *WorkerTelemetry
	// MaxProtocol caps the protocol version this worker negotiates
	// (0 = the highest this build speaks). Tests pin it to 1 or 2 to
	// exercise interop with older coordinators and workers.
	MaxProtocol int
	// DeflateThreshold is the v3 payload size (bytes) above which stdout
	// and stderr are shipped deflated. 0 means DefaultDeflateThreshold;
	// negative disables compression.
	DeflateThreshold int
	// Wire, when non-nil, accumulates framed-traffic counters (bytes,
	// frames, compression ratio) for this worker's connections.
	Wire *WireStats
}

// resolveDeflateMin maps the user-facing threshold convention (0 =
// default, negative = off) onto the codec's (0 = off).
func resolveDeflateMin(n int) int {
	switch {
	case n == 0:
		return DefaultDeflateThreshold
	case n < 0:
		return 0
	default:
		return n
	}
}

// Serve accepts coordinator connections on l and executes their jobs
// until ctx is done or the listener fails. Each connection is served by
// its own goroutine; one job runs at a time per connection (the pool
// provides parallelism by opening one connection per slot).
func Serve(ctx context.Context, l net.Listener, cfg WorkerConfig) error {
	if cfg.Slots < 1 {
		cfg.Slots = 8
	}
	if cfg.Name == "" {
		cfg.Name = l.Addr().String()
	}
	if cfg.Runner == nil {
		cfg.Runner = &core.ExecRunner{}
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = NewWorkerTelemetry()
	}
	cfg.Telemetry.name = cfg.Name
	cfg.Telemetry.slots = cfg.Slots
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	var wg sync.WaitGroup
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
		case <-done:
		}
		l.Close()
	}()
	defer close(done)

	for {
		conn, err := l.Accept()
		if err != nil {
			wg.Wait()
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer conn.Close()
			if err := serveConn(ctx, conn, cfg); err != nil && !errors.Is(err, context.Canceled) {
				logf("dist worker: connection from %s ended: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

func serveConn(ctx context.Context, conn net.Conn, cfg WorkerConfig) error {
	if cfg.Telemetry == nil { // Serve fills this in; guard direct callers
		cfg.Telemetry = NewWorkerTelemetry()
		cfg.Telemetry.name = cfg.Name
		cfg.Telemetry.slots = cfg.Slots
	}
	if cfg.Slots < 1 {
		cfg.Slots = 1
	}
	maxProto := cfg.MaxProtocol
	if maxProto <= 0 || maxProto > protocolMax {
		maxProto = protocolMax
	}
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	c := newCodecRW(br, bw)
	h := hello{Version: protocolVersion, Name: cfg.Name, Slots: cfg.Slots}
	if maxProto >= 2 {
		h.MaxVersion = maxProto
	}
	if err := c.send(h); err != nil {
		return err
	}

	// The first coordinator message decides the dialect: an upgrade
	// switches to framed protocol (v3 binary or v2 JSON, whichever both
	// sides speak), anything else is a v1 request from an old
	// coordinator.
	var first firstMsg
	if err := c.recv(&first); err != nil {
		return eofAsNil(err)
	}
	if first.Upgrade >= 2 && maxProto >= 2 {
		// The JSON decoder may have read ahead past the upgrade line;
		// hand its leftover back to the frame reader. v3 gets deep
		// buffers so full coalesced frames move in single syscalls (the
		// hello send flushed bw, so a fresh writer on conn is safe).
		if first.Upgrade >= 3 && maxProto >= 3 {
			fr := bufio.NewReaderSize(io.MultiReader(c.leftover(), br), v3BufSize)
			return serveConnV3(ctx, cfg, fr, bufio.NewWriterSize(conn, v3BufSize))
		}
		fr := bufio.NewReader(io.MultiReader(c.leftover(), br))
		return serveConnV2(ctx, cfg, fr, bw)
	}

	req := first.request
	recv := time.Now()
	for {
		resp := execute(ctx, cfg.Runner, cfg.Telemetry, req)
		resp.RecvNS = recv.UnixNano()
		if err := c.send(resp); err != nil {
			return err
		}
		req = request{} // the decoder only overwrites fields present in the JSON
		if err := c.recv(&req); err != nil {
			return eofAsNil(err)
		}
		recv = time.Now()
	}
}

func eofAsNil(err error) error {
	if errors.Is(err, net.ErrClosed) || errors.Is(err, io.EOF) || err.Error() == "EOF" {
		return nil
	}
	return err
}

// serveConnV2 is the batched dialect: one multiplexed connection runs up
// to cfg.Slots jobs concurrently; requests arrive in coalesced frames
// and responses leave through a coalescing writer that flushes when its
// queue goes idle.
func serveConnV2(ctx context.Context, cfg WorkerConfig, br *bufio.Reader, bw *bufio.Writer) error {
	respq := make(chan response, 4*cfg.Slots)
	writeErr := make(chan error, 1)
	go func() {
		writeErr <- batchWriter(bw, respq, nil, cfg.Wire, func(rs []response) batch {
			return batch{Results: rs}
		})
	}()

	sem := make(chan struct{}, cfg.Slots)
	var jobs sync.WaitGroup
	var readErr error
recvLoop:
	for {
		b, err := readBatch(br, cfg.Wire)
		if err != nil {
			readErr = err
			break
		}
		recv := time.Now().UnixNano()
		for _, req := range b.Jobs {
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				readErr = ctx.Err()
				break recvLoop
			}
			jobs.Add(1)
			go func(req request) {
				defer jobs.Done()
				defer func() { <-sem }()
				resp := execute(ctx, cfg.Runner, cfg.Telemetry, req)
				resp.RecvNS = recv
				respq <- resp // writer drains until close
			}(req)
		}
	}
	jobs.Wait()
	close(respq)
	if werr := <-writeErr; werr != nil && eofAsNil(readErr) == nil {
		return werr
	}
	return eofAsNil(readErr)
}

// jobItemV3 points one slot worker at one request inside a decoded
// (refcounted) jobs frame.
type jobItemV3 struct {
	fr  *jobsFrame
	idx int
}

// serveConnV3 is the binary dialect: requests arrive in CRC-checked
// binary frames and are decoded zero-copy into pooled frame buffers; a
// fixed pool of cfg.Slots goroutines executes them with one reused
// core.Job each, and responses leave through a coalescing writer that
// piggybacks one telemetry snapshot per frame. The steady-state path
// allocates nothing per job.
func serveConnV3(ctx context.Context, cfg WorkerConfig, br *bufio.Reader, bw *bufio.Writer) error {
	deflateMin := resolveDeflateMin(cfg.DeflateThreshold)
	respq := make(chan response, 4*cfg.Slots)
	writeErr := make(chan error, 1)
	go func() {
		writeErr <- v3ResultsLoop(bw, respq, cfg.Telemetry, deflateMin, cfg.Wire)
	}()

	jobq := make(chan jobItemV3, cfg.Slots)
	var jobs sync.WaitGroup
	for i := 0; i < cfg.Slots; i++ {
		jobs.Add(1)
		go func() {
			defer jobs.Done()
			// One Job struct per slot goroutine, fully overwritten per
			// dispatch (core.Job is exactly the six wire fields).
			var job core.Job
			for it := range jobq {
				req := &it.fr.reqs[it.idx]
				resp := executeV3(ctx, cfg.Runner, cfg.Telemetry, &job, req, it.fr.recvNS)
				// The runner has returned, so nothing aliases the frame
				// any more (Runner contract: inputs are only valid
				// during Run); drop our reference before queueing the
				// response so the frame can recycle immediately.
				it.fr.release()
				respq <- resp // buffered ≥ 4×slots, ≤ slots in flight
			}
		}()
	}

	var readErr error
recvLoop:
	for {
		// Each frame is read into its own pooled buffer: the decoded
		// requests alias it until their jobs finish, so the reader must
		// not reuse it for the next frame.
		fr := getJobsFrame()
		typ, body, err := readFrameV3(br, &fr.buf, cfg.Wire)
		if err != nil || typ != frameJobsV3 {
			putJobsFrame(fr)
			if err == nil {
				err = errUnexpectedFrame
			}
			readErr = err
			break
		}
		if err := decodeJobsV3(body, fr); err != nil {
			putJobsFrame(fr)
			readErr = err
			break
		}
		if len(fr.reqs) == 0 {
			putJobsFrame(fr)
			continue
		}
		fr.recvNS = time.Now().UnixNano()
		fr.refs.Store(int32(len(fr.reqs)))
		for i := range fr.reqs {
			select {
			case jobq <- jobItemV3{fr: fr, idx: i}:
			case <-ctx.Done():
				// Drop this job's and all later undelivered refs so the
				// frame still recycles once in-flight jobs drain.
				fr.refs.Add(int32(i - len(fr.reqs)))
				readErr = ctx.Err()
				break recvLoop
			}
		}
	}
	close(jobq)
	jobs.Wait()
	close(respq)
	if werr := <-writeErr; werr != nil && eofAsNil(readErr) == nil {
		return werr
	}
	return eofAsNil(readErr)
}

// executeV3 runs one zero-copy decoded request. Unlike execute it fills
// a caller-owned Job and never attaches a per-response telemetry
// snapshot (v3 piggybacks one per frame in the writer instead), keeping
// the per-job path allocation-free.
func executeV3(ctx context.Context, runner core.Runner, wt *WorkerTelemetry, job *core.Job, req *request, recvNS int64) response {
	job.Seq = req.Seq
	job.Slot = req.Slot
	job.Command = req.Command
	job.Args = req.Args
	job.Env = req.Env
	job.Stdin = req.Stdin
	runCtx := ctx
	if req.TimeoutNS > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutNS))
		defer cancel()
	}
	wt.started.Add(1)
	wt.busy.Add(1)
	res := runner.Run(runCtx, job)
	wt.busy.Add(-1)
	resp := response{
		Seq:       res.Job.Seq,
		ExitCode:  res.ExitCode,
		Stdout:    res.Stdout,
		Stderr:    res.Stderr,
		StartNS:   res.Start.UnixNano(),
		EndNS:     res.End.UnixNano(),
		RecvNS:    recvNS,
		TimedOut:  res.TimedOut || (req.TimeoutNS > 0 && runCtx.Err() == context.DeadlineExceeded),
		SentBytes: res.StdinSent,
	}
	if res.Err != nil {
		resp.Err = res.Err.Error()
	}
	if res.OK() && !resp.TimedOut {
		wt.ok.Add(1)
	} else {
		wt.failed.Add(1)
	}
	return resp
}

func execute(ctx context.Context, runner core.Runner, wt *WorkerTelemetry, req request) response {
	job := &core.Job{
		Seq:     req.Seq,
		Slot:    req.Slot,
		Command: req.Command,
		Args:    req.Args,
		Env:     req.Env,
		Stdin:   req.Stdin,
	}
	runCtx := ctx
	var cancel context.CancelFunc
	if req.TimeoutNS > 0 {
		runCtx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutNS))
		defer cancel()
	}
	wt.started.Add(1)
	wt.busy.Add(1)
	res := runner.Run(runCtx, job)
	wt.busy.Add(-1)
	resp := response{
		Seq:       res.Job.Seq,
		ExitCode:  res.ExitCode,
		Stdout:    res.Stdout,
		Stderr:    res.Stderr,
		StartNS:   res.Start.UnixNano(),
		EndNS:     res.End.UnixNano(),
		TimedOut:  res.TimedOut || (req.TimeoutNS > 0 && runCtx.Err() == context.DeadlineExceeded),
		SentBytes: res.StdinSent,
	}
	if res.Err != nil {
		resp.Err = res.Err.Error()
	}
	if res.OK() && !resp.TimedOut {
		wt.ok.Add(1)
	} else {
		wt.failed.Add(1)
	}
	snap := wt.Snapshot()
	resp.Telemetry = &snap
	return resp
}

var _ = log.Printf // reserved for future default logging
