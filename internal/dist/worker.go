package dist

import (
	"context"
	"errors"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/core"
)

// WorkerConfig configures Serve.
type WorkerConfig struct {
	// Name identifies this worker in joblogs (defaults to the
	// listener address).
	Name string
	// Slots advertised to coordinators (a coordinator opens up to this
	// many concurrent connections). Defaults to 8.
	Slots int
	// Runner executes jobs (default: real processes via ExecRunner).
	Runner core.Runner
	// Logf, when non-nil, receives connection lifecycle messages.
	Logf func(format string, args ...any)
}

// Serve accepts coordinator connections on l and executes their jobs
// until ctx is done or the listener fails. Each connection is served by
// its own goroutine; one job runs at a time per connection (the pool
// provides parallelism by opening one connection per slot).
func Serve(ctx context.Context, l net.Listener, cfg WorkerConfig) error {
	if cfg.Slots < 1 {
		cfg.Slots = 8
	}
	if cfg.Name == "" {
		cfg.Name = l.Addr().String()
	}
	if cfg.Runner == nil {
		cfg.Runner = &core.ExecRunner{}
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	var wg sync.WaitGroup
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
		case <-done:
		}
		l.Close()
	}()
	defer close(done)

	for {
		conn, err := l.Accept()
		if err != nil {
			wg.Wait()
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer conn.Close()
			if err := serveConn(ctx, conn, cfg); err != nil && !errors.Is(err, context.Canceled) {
				logf("dist worker: connection from %s ended: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

func serveConn(ctx context.Context, conn net.Conn, cfg WorkerConfig) error {
	c := newCodec(conn)
	if err := c.send(hello{Version: protocolVersion, Name: cfg.Name, Slots: cfg.Slots}); err != nil {
		return err
	}
	for {
		var req request
		if err := c.recv(&req); err != nil {
			if errors.Is(err, net.ErrClosed) || err.Error() == "EOF" {
				return nil
			}
			return err
		}
		resp := execute(ctx, cfg.Runner, req)
		if err := c.send(resp); err != nil {
			return err
		}
	}
}

func execute(ctx context.Context, runner core.Runner, req request) response {
	job := &core.Job{
		Seq:     req.Seq,
		Slot:    req.Slot,
		Command: req.Command,
		Args:    req.Args,
		Env:     req.Env,
		Stdin:   req.Stdin,
	}
	runCtx := ctx
	var cancel context.CancelFunc
	if req.TimeoutNS > 0 {
		runCtx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutNS))
		defer cancel()
	}
	res := runner.Run(runCtx, job)
	resp := response{
		Seq:      res.Job.Seq,
		ExitCode: res.ExitCode,
		Stdout:   res.Stdout,
		Stderr:   res.Stderr,
		StartNS:  res.Start.UnixNano(),
		EndNS:    res.End.UnixNano(),
		TimedOut: res.TimedOut || (req.TimeoutNS > 0 && runCtx.Err() == context.DeadlineExceeded),
	}
	if res.Err != nil {
		resp.Err = res.Err.Error()
	}
	return resp
}

var _ = log.Printf // reserved for future default logging
