package dist

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// startWorkerCfg is startWorker with a full WorkerConfig, for tests
// that pin protocol versions or attach wire stats.
func startWorkerCfg(t *testing.T, cfg WorkerConfig) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go Serve(ctx, l, cfg)
	return l.Addr().String()
}

// TestPoolNegotiatesV3 pins that two uncapped current-version peers land
// on the binary dialect, and that the negotiated version is observable
// through Health.Protocols after the handshake.
func TestPoolNegotiatesV3(t *testing.T) {
	addr := startWorker(t, "w3", 4, echoRunner("w3"))
	pool, err := Dial([]WorkerSpec{{Addr: addr}})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if n := poolSessions(pool); n != 1 {
		t.Fatalf("pool uses %d sessions, want 1", n)
	}
	if v := pool.Health().Protocols["w3"]; v != 3 {
		t.Fatalf("negotiated protocol %d, want 3", v)
	}
	for seq := 1; seq <= 10; seq++ {
		res := pool.Run(context.Background(), &core.Job{Seq: seq, Args: []string{fmt.Sprint(seq)}})
		if !res.OK() || string(res.Stdout) != fmt.Sprintf("w3:%d\n", seq) {
			t.Fatalf("seq %d: %+v", seq, res)
		}
	}
}

// TestMixedVersionMatrixV3 covers every skewed pairing around v3: a
// v3 coordinator against v1/v2-pinned workers and v1/v2-pinned
// coordinators against a v3 worker. Jobs must complete on the highest
// version both sides speak.
func TestMixedVersionMatrixV3(t *testing.T) {
	cases := []struct {
		name        string
		workerMax   int // 0 = uncapped (v3)
		coordMax    int // 0 = uncapped (v3)
		wantProto   int
		wantSession bool
	}{
		{"v3coord-v2worker", 2, 0, 2, true},
		{"v3coord-v1worker", 1, 0, 1, false},
		{"v2coord-v3worker", 0, 2, 2, true},
		{"v1coord-v3worker", 0, 1, 1, false},
		{"v3coord-v3worker", 0, 0, 3, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			addr := startWorkerCfg(t, WorkerConfig{
				Name: "m", Slots: 2, Runner: echoRunner("m"), MaxProtocol: tc.workerMax,
			})
			var opts []Option
			if tc.coordMax > 0 {
				opts = append(opts, WithMaxProtocol(tc.coordMax))
			}
			pool, err := Dial([]WorkerSpec{{Addr: addr}}, opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer pool.Close()
			wantSessions := 0
			if tc.wantSession {
				wantSessions = 1
			}
			if n := poolSessions(pool); n != wantSessions {
				t.Fatalf("sessions = %d, want %d", n, wantSessions)
			}
			if v := pool.Health().Protocols["m"]; v != tc.wantProto {
				t.Fatalf("negotiated protocol %d, want %d", v, tc.wantProto)
			}
			for seq := 1; seq <= 10; seq++ {
				res := pool.Run(context.Background(), &core.Job{Seq: seq, Args: []string{fmt.Sprint(seq)}})
				if !res.OK() || string(res.Stdout) != fmt.Sprintf("m:%d\n", seq) {
					t.Fatalf("seq %d: %+v", seq, res)
				}
			}
		})
	}
}

// TestPoolBatchedRoundTripV3 pushes enough concurrent jobs through one
// v3 session to force multi-item frames in both directions and checks
// every payload round-tripped intact onto the right seq — including
// binary stdin and a compressible payload large enough to cross the
// deflate threshold in both directions.
func TestPoolBatchedRoundTripV3(t *testing.T) {
	echo := core.FuncRunner(func(ctx context.Context, job *core.Job) ([]byte, error) {
		out := fmt.Sprintf("%d:%s:", job.Seq, job.Args[0])
		// Copy, not alias: job.Stdin is only valid during Run (zero-copy
		// frame contract).
		return append([]byte(out), job.Stdin...), nil
	})
	addr := startWorker(t, "batchy3", 8, echo)
	pool, err := Dial([]WorkerSpec{{Addr: addr}})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if v := pool.Health().Protocols["batchy3"]; v != 3 {
		t.Fatalf("negotiated protocol %d, want 3", v)
	}

	big := bytes.Repeat([]byte("compressible-payload-"), 1024) // ~21 KiB, well past the threshold
	binIn := []byte{0, 1, 2, 0xff, 0xfe, '\n', 0}
	stdinFor := func(seq int) []byte {
		switch seq % 3 {
		case 0:
			return big
		case 1:
			return binIn
		default:
			return []byte(fmt.Sprintf("in%d", seq))
		}
	}

	const jobs = 200
	results := make([]core.Result, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			seq := i + 1
			results[i] = pool.Run(context.Background(), &core.Job{
				Seq:   seq,
				Args:  []string{fmt.Sprintf("arg%d", seq)},
				Stdin: stdinFor(seq),
			})
		}(i)
	}
	wg.Wait()
	for i, res := range results {
		seq := i + 1
		if !res.OK() {
			t.Fatalf("job %d failed: %+v", seq, res)
		}
		want := fmt.Sprintf("%d:arg%d:%s", seq, seq, stdinFor(seq))
		if string(res.Stdout) != want {
			t.Fatalf("job %d stdout mismatch: got %d bytes, want %d bytes (mux or codec corruption)",
				seq, len(res.Stdout), len(want))
		}
	}
	// The large payloads crossed the default threshold, so the
	// coordinator deflated stdin on the way out.
	if r := pool.Wire().DeflateRatio(); r <= 0 || r >= 1 {
		t.Fatalf("deflate ratio = %v, want in (0,1) for compressible stdin", r)
	}
	if pool.Wire().FramesSent() == 0 || pool.Wire().BytesReceived() == 0 {
		t.Fatalf("wire counters not accounted: %+v frames sent, %d bytes received",
			pool.Wire().FramesSent(), pool.Wire().BytesReceived())
	}
}

// TestV3DeflateDisabled pins the negative-threshold escape hatch: with
// compression off, large compressible payloads still round-trip and the
// deflate counters stay zero.
func TestV3DeflateDisabled(t *testing.T) {
	payload := bytes.Repeat([]byte("x"), 64<<10)
	echo := core.FuncRunner(func(ctx context.Context, job *core.Job) ([]byte, error) {
		return append([]byte(nil), job.Stdin...), nil
	})
	wwire := &WireStats{}
	addr := startWorkerCfg(t, WorkerConfig{
		Name: "nodeflate", Slots: 2, Runner: echo, DeflateThreshold: -1, Wire: wwire,
	})
	pool, err := Dial([]WorkerSpec{{Addr: addr}}, WithDeflateThreshold(-1))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	res := pool.Run(context.Background(), &core.Job{Seq: 1, Stdin: payload})
	if !res.OK() || !bytes.Equal(res.Stdout, payload) {
		t.Fatalf("round trip failed: ok=%v len=%d", res.OK(), len(res.Stdout))
	}
	if r := pool.Wire().DeflateRatio(); r != 0 {
		t.Fatalf("coordinator deflate ratio = %v, want 0 when disabled", r)
	}
	if r := wwire.DeflateRatio(); r != 0 {
		t.Fatalf("worker deflate ratio = %v, want 0 when disabled", r)
	}
	if wwire.FramesReceived() == 0 || wwire.BytesSent() == 0 {
		t.Fatalf("worker wire counters not accounted: %+v", wwire)
	}
}

// TestV3GoldenWire freezes the v3 encoding of a known request so the
// wire format cannot drift silently: new fields or reordering must show
// up as a deliberate change to these bytes.
func TestV3GoldenWire(t *testing.T) {
	req := request{
		Seq: 7, Slot: 2, Command: "echo",
		Args: []string{"a", "bc"}, Env: []string{"K=V"}, Stdin: []byte("hi"),
	}
	wantBody := []byte{
		0x1,                // frame type: jobs
		0x1,                // count
		0x7, 0x2, 0x0, 0x0, // seq, slot, timeout, flags
		0x4, 0x65, 0x63, 0x68, 0x6f, // "echo"
		0x2, 0x1, 0x61, 0x2, 0x62, 0x63, // args ["a","bc"]
		0x1, 0x3, 0x4b, 0x3d, 0x56, // env ["K=V"]
		0x2, 0x68, 0x69, // stdin "hi"
	}
	body := encodeJobsV3(nil, []request{req}, 0, nil)
	if !bytes.Equal(body, wantBody) {
		t.Fatalf("encoded body drifted:\n got %#v\nwant %#v", body, wantBody)
	}

	// Full frame: length prefix + body + CRC32C trailer, byte-frozen.
	wantFrame := []byte{
		0x0, 0x0, 0x0, 0x1d, // length = 29 (1 type + 24 body + 4 crc)
		0x1, 0x1, 0x7, 0x2, 0x0, 0x0, 0x4, 0x65, 0x63, 0x68, 0x6f,
		0x2, 0x1, 0x61, 0x2, 0x62, 0x63, 0x1, 0x3, 0x4b, 0x3d, 0x56,
		0x2, 0x68, 0x69,
		0x14, 0xe0, 0xb5, 0x5e, // crc32c
	}
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if err := writeFrameV3(bw, body, nil); err != nil {
		t.Fatal(err)
	}
	bw.Flush()
	if !bytes.Equal(buf.Bytes(), wantFrame) {
		t.Fatalf("framed bytes drifted:\n got %#v\nwant %#v", buf.Bytes(), wantFrame)
	}

	// And the frozen frame decodes back to the original request.
	br := bufio.NewReader(bytes.NewReader(wantFrame))
	var rbuf []byte
	typ, rbody, err := readFrameV3(br, &rbuf, nil)
	if err != nil || typ != frameJobsV3 {
		t.Fatalf("typ=%d err=%v", typ, err)
	}
	fr := getJobsFrame()
	defer putJobsFrame(fr)
	if err := decodeJobsV3(rbody, fr); err != nil {
		t.Fatal(err)
	}
	got := fr.reqs[0]
	if got.Seq != 7 || got.Slot != 2 || got.Command != "echo" ||
		len(got.Args) != 2 || got.Args[0] != "a" || got.Args[1] != "bc" ||
		len(got.Env) != 1 || got.Env[0] != "K=V" || string(got.Stdin) != "hi" {
		t.Fatalf("decoded request mangled: %+v", got)
	}
}

// TestV3CRCDetectsCorruption flips each body byte of a valid frame and
// requires the reader to reject every mutation.
func TestV3CRCDetectsCorruption(t *testing.T) {
	body := encodeJobsV3(nil, []request{{Seq: 1, Command: "true", Stdin: []byte("abc")}}, 0, nil)
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if err := writeFrameV3(bw, body, nil); err != nil {
		t.Fatal(err)
	}
	bw.Flush()
	frame := buf.Bytes()
	var rbuf []byte
	for i := 4; i < len(frame); i++ { // skip the length prefix (covered by bounds checks)
		mut := append([]byte(nil), frame...)
		mut[i] ^= 0x40
		if _, _, err := readFrameV3(bufio.NewReader(bytes.NewReader(mut)), &rbuf, nil); err == nil {
			t.Fatalf("corruption at byte %d not detected", i)
		}
	}
}

// TestWireCodecV3ZeroAlloc pins the tentpole's 0 allocs/job claim for
// the no-output job shape on both directions of the codec: encode jobs,
// zero-copy decode, encode results (with the per-frame telemetry
// snapshot), copy-out decode.
func TestWireCodecV3ZeroAlloc(t *testing.T) {
	reqs := []request{{Seq: 1, Slot: 3, Command: "doit --fast", Args: []string{"a", "b"}, Env: []string{"K=V"}}}
	resps := []response{{Seq: 1, ExitCode: 0, StartNS: 100, EndNS: 200, RecvNS: 50, SentBytes: 0}}
	snap := telemetry.Snapshot{Worker: "w", Slots: 8, Started: 1, OK: 1, UnixNano: 300}
	var jb, rb []byte
	fr := getJobsFrame()
	defer putJobsFrame(fr)
	var dst []response

	allocs := testing.AllocsPerRun(1000, func() {
		jb = encodeJobsV3(jb[:0], reqs, DefaultDeflateThreshold, nil)
		if err := decodeJobsV3(jb[1:], fr); err != nil {
			t.Fatal(err)
		}
		rb = encodeResultsV3(rb[:0], resps, snap, true, DefaultDeflateThreshold, nil)
		var err error
		dst, _, _, err = decodeResultsV3(rb[1:], dst, "w")
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("v3 codec allocates %.1f/job on the steady-state path, want 0", allocs)
	}
	if fr.reqs[0].Command != "doit --fast" || dst[0].Seq != 1 {
		t.Fatalf("codec round trip mangled data: %+v / %+v", fr.reqs[0], dst[0])
	}
}

// TestV3FrameWriteReadZeroAlloc extends the pin to the framing layer:
// length prefix, CRC computation/verification and buffer reuse must not
// allocate either.
func TestV3FrameWriteReadZeroAlloc(t *testing.T) {
	body := encodeJobsV3(nil, []request{{Seq: 1, Command: "true"}}, 0, nil)
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	var rbuf []byte
	rd := bytes.NewReader(nil)
	br := bufio.NewReader(rd)
	allocs := testing.AllocsPerRun(1000, func() {
		buf.Reset()
		bw.Reset(&buf)
		if err := writeFrameV3(bw, body, nil); err != nil {
			t.Fatal(err)
		}
		bw.Flush()
		rd.Reset(buf.Bytes())
		br.Reset(rd)
		if _, _, err := readFrameV3(br, &rbuf, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("frame layer allocates %.1f/frame, want 0", allocs)
	}
}

// FuzzDecodeFrameV3 throws arbitrary bytes at the v3 frame reader and
// both body decoders: they must return an error or data, never panic,
// loop, or over-allocate. Seeds cover the ISSUE's corpus: valid frames,
// a truncated frame, a corrupt CRC, a varint overflow, and an oversize
// length prefix.
func FuzzDecodeFrameV3(f *testing.F) {
	frame := func(body []byte) []byte {
		var buf bytes.Buffer
		bw := bufio.NewWriter(&buf)
		if err := writeFrameV3(bw, body, nil); err != nil {
			f.Fatal(err)
		}
		bw.Flush()
		return buf.Bytes()
	}
	jb := encodeJobsV3(nil, []request{
		{Seq: 1, Command: "echo hi", Args: []string{"a"}, Env: []string{"K=V"}, Stdin: []byte("x")},
	}, 0, nil)
	f.Add(frame(jb))
	big := bytes.Repeat([]byte("abcdefgh"), 1024)
	rb := encodeResultsV3(nil, []response{
		{Seq: 9, ExitCode: 1, Err: "boom", Stdout: big, Stderr: []byte("e")},
	}, telemetry.Snapshot{Worker: "w", Slots: 2}, true, 16, nil)
	f.Add(frame(rb))
	full := frame(jb)
	f.Add(full[:len(full)-3]) // truncated
	bad := append([]byte(nil), full...)
	bad[7] ^= 0xff // corrupt CRC
	f.Add(bad)
	f.Add(frame(append([]byte{frameJobsV3}, bytes.Repeat([]byte{0xff}, 10)...))) // varint overflow
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})                              // oversize length prefix
	// Lying deflate header: flags say deflated but the bytes are not.
	lying := append([]byte{frameJobsV3, 1, 1, 1, 0, flagStdinDeflated, 1, 'c', 0, 0}, 200, 1, 3, 'n', 'o', 't')
	f.Add(frame(lying))

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		var buf []byte
		fr := getJobsFrame()
		defer putJobsFrame(fr)
		var dst []response
		for i := 0; i < 4; i++ { // a stream may hold several frames
			typ, body, err := readFrameV3(br, &buf, nil)
			if err != nil {
				return
			}
			switch typ {
			case frameJobsV3:
				_ = decodeJobsV3(body, fr)
			case frameResultsV3:
				dst, _, _, _ = decodeResultsV3(body, dst, "w")
			}
		}
	})
}

// TestPoolWireMetricsExposition checks the coordinator's /metrics
// surface: gopar_dist_* traffic counters and the per-worker negotiated
// protocol gauge appear alongside the existing pool series.
func TestPoolWireMetricsExposition(t *testing.T) {
	addr := startWorker(t, "wired", 2, echoRunner("w"))
	pool, err := Dial([]WorkerSpec{{Addr: addr}})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	for seq := 1; seq <= 5; seq++ {
		if res := pool.Run(context.Background(), &core.Job{Seq: seq, Args: []string{"x"}}); !res.OK() {
			t.Fatalf("seq %d: %+v", seq, res)
		}
	}
	reg := telemetry.NewRegistry()
	pool.RegisterMetrics(reg)
	var sb strings.Builder
	reg.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{
		"gopar_dist_bytes_sent_total",
		"gopar_dist_bytes_received_total",
		"gopar_dist_frames_sent_total",
		"gopar_dist_frames_received_total",
		"gopar_dist_deflate_ratio",
		`gopar_pool_worker_protocol{worker="wired"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in exposition:\n%s", want, out)
		}
	}
	// The counters must reflect the five round trips.
	if pool.Wire().FramesSent() < 1 || pool.Wire().FramesReceived() < 1 {
		t.Fatalf("frame counters empty: sent=%d recv=%d",
			pool.Wire().FramesSent(), pool.Wire().FramesReceived())
	}
	if pool.Wire().BytesSent() == 0 || pool.Wire().BytesReceived() == 0 {
		t.Fatalf("byte counters empty: sent=%d recv=%d",
			pool.Wire().BytesSent(), pool.Wire().BytesReceived())
	}
}

// BenchmarkWireLoopback measures raw pool.Run round-trips per second
// over loopback with a noop runner — the wire path alone, no engine —
// for the JSON (v2) and binary (v3) dialects. The v3 number is the
// ISSUE's ≥250k jobs/s acceptance gate.
func BenchmarkWireLoopback(b *testing.B) {
	for _, ver := range []int{2, 3} {
		b.Run(fmt.Sprintf("proto=v%d", ver), func(b *testing.B) {
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			noop := core.FuncRunner(func(ctx context.Context, job *core.Job) ([]byte, error) {
				return nil, nil
			})
			// Deep slot pool: coalescing can only batch what is in
			// flight, so wire throughput scales with outstanding jobs
			// until the CPU saturates.
			go Serve(ctx, l, WorkerConfig{Name: "bench", Slots: 256, Runner: noop})
			pool, err := Dial([]WorkerSpec{{Addr: l.Addr().String()}}, WithMaxProtocol(ver))
			if err != nil {
				b.Fatal(err)
			}
			defer pool.Close()

			const drivers = 256
			var next atomic.Int64
			var wg sync.WaitGroup
			b.ReportAllocs()
			b.ResetTimer()
			start := time.Now()
			for w := 0; w < drivers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					var job core.Job
					for {
						n := next.Add(1)
						if n > int64(b.N) {
							return
						}
						job.Seq = int(n)
						if res := pool.Run(context.Background(), &job); res.Err != nil {
							b.Error(res.Err)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "jobs/s")
		})
	}
}

// BenchmarkWireCodecV3 measures the pure codec round trip (encode jobs,
// zero-copy decode, encode results, copy-out decode) — the 0 allocs/op
// regression gate in BENCH_pr9.json.
func BenchmarkWireCodecV3(b *testing.B) {
	reqs := []request{{Seq: 1, Slot: 3, Command: "doit --fast", Args: []string{"a", "b"}, Env: []string{"K=V"}}}
	resps := []response{{Seq: 1, ExitCode: 0, StartNS: 100, EndNS: 200, RecvNS: 50}}
	snap := telemetry.Snapshot{Worker: "w", Slots: 8, Started: 1, OK: 1, UnixNano: 300}
	var jb, rb []byte
	fr := getJobsFrame()
	defer putJobsFrame(fr)
	var dst []response
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		jb = encodeJobsV3(jb[:0], reqs, DefaultDeflateThreshold, nil)
		if err := decodeJobsV3(jb[1:], fr); err != nil {
			b.Fatal(err)
		}
		rb = encodeResultsV3(rb[:0], resps, snap, true, DefaultDeflateThreshold, nil)
		var err error
		dst, _, _, err = decodeResultsV3(rb[1:], dst, "w")
		if err != nil {
			b.Fatal(err)
		}
	}
}
