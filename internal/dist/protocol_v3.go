package dist

// Protocol v3: length-prefixed binary frames with varint-encoded
// headers and string/byte fields, CRC32C-checked payloads, and a pooled
// codec so the steady-state encode→write and read→decode path touches
// zero per-job heap allocations. Negotiated through the same
// hello.max_version handshake as v2; the batch-coalescing send
// discipline (one frame per queued burst, flush only when the queue
// goes idle) carries over unchanged.
//
// Frame layout (all multi-byte integers big-endian, varints as in
// encoding/binary):
//
//	u32  length          — bytes that follow (type + body + crc)
//	u8   type            — 1 jobs, 2 results
//	...  body            — see below
//	u32  crc32c          — Castagnoli CRC over type + body
//
// Jobs body:    uvarint count, then per request:
//
//	uvarint seq · uvarint slot · uvarint timeout_ns · u8 flags ·
//	str command · uvarint nargs, nargs×str · uvarint nenv, nenv×str ·
//	blob stdin (flags bit0: deflated)
//
// Results body: uvarint count, then per response:
//
//	uvarint seq · u8 flags (bit0 timed_out, bit1 stdout deflated,
//	bit2 stderr deflated) · varint exit_code (zigzag) ·
//	uvarint start_ns, end_ns, recv_ns, sent_bytes · str err ·
//	blob stdout · blob stderr
//
// followed by one u8 has_telemetry; when 1, the worker's counter
// snapshot (str worker · uvarint slots, busy, started, ok, failed,
// unix_nano) piggybacks once per frame instead of once per response.
//
// str is uvarint length + bytes. A raw blob is uvarint length + bytes;
// a deflated blob (large payloads above the negotiated-side threshold)
// is uvarint raw_length · uvarint deflated_length · deflated bytes.
//
// Decoding is zero-copy where lifetimes allow it: the worker decodes
// request strings and stdin as aliases into the (pooled, refcounted)
// frame buffer, valid until every job from the frame finishes; the
// coordinator copies result payloads out (they outlive the frame in
// core.Result) but pays nothing for the empty-output common case.

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/telemetry"
)

const (
	frameJobsV3    = 1
	frameResultsV3 = 2

	flagStdinDeflated  = 1 << 0 // request flags
	flagTimedOut       = 1 << 0 // response flags
	flagStdoutDeflated = 1 << 1
	flagStderrDeflated = 1 << 2
)

// DefaultDeflateThreshold is the payload size above which v3 tries
// deflate when no explicit threshold is configured. Small payloads are
// cheaper to ship raw than to compress; 4 KiB is past the syscall
// amortization the batcher already provides.
const DefaultDeflateThreshold = 4 << 10

// maxBatchItemsV3 caps how many messages one binary frame coalesces.
// Deeper than v2's cap: binary items are a few dozen bytes, so even a
// full batch stays far under maxFrame, and on a busy pipe deeper
// coalescing is what turns per-job syscalls into per-frame ones.
const maxBatchItemsV3 = 512

// v3BufSize sizes the bufio reader/writer wrapped around a v3
// connection. Large enough that a full coalesced frame round-trips in
// one read and one write syscall.
const v3BufSize = 256 << 10

var crc32cTable = crc32.MakeTable(crc32.Castagnoli)

var (
	errBadCRC          = errors.New("dist: v3 frame CRC mismatch")
	errCorruptFrame    = errors.New("dist: corrupt v3 frame")
	errUnexpectedFrame = errors.New("dist: unexpected v3 frame type")
)

// --- pooled scratch buffers (GetBytes/PutBytes idiom) -------------------

// scratch is a pooled reusable byte buffer. Pointer-wrapped so Put
// never boxes a slice header into an interface allocation.
type scratch struct{ b []byte }

var scratchPool = sync.Pool{New: func() any { return &scratch{} }}

func getScratch() *scratch  { return scratchPool.Get().(*scratch) }
func putScratch(s *scratch) { scratchPool.Put(s) }

// resizeBytes returns a slice of exactly n bytes, reusing b's capacity
// when possible.
func resizeBytes(b []byte, n int) []byte {
	if cap(b) >= n {
		return b[:n]
	}
	return make([]byte, n)
}

// b2s aliases a byte slice as a string without copying. The caller owns
// the lifetime contract: the string is only valid while the backing
// buffer is not recycled, which the refcounted jobsFrame enforces.
func b2s(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// --- wire telemetry -----------------------------------------------------

// WireStats counts framed-protocol traffic (v2 and v3; v1 has no
// frames). One instance aggregates a whole pool or worker; counters are
// monotonic and safe for concurrent use.
type WireStats struct {
	bytesSent, bytesRecv   atomic.Uint64
	framesSent, framesRecv atomic.Uint64
	// rawBytes/deflatedBytes total the pre- and post-compression sizes
	// of every field that was actually shipped deflated, so their ratio
	// is the achieved compression factor.
	rawBytes, deflatedBytes atomic.Uint64
}

func (s *WireStats) BytesSent() uint64     { return s.bytesSent.Load() }
func (s *WireStats) BytesReceived() uint64 { return s.bytesRecv.Load() }
func (s *WireStats) FramesSent() uint64    { return s.framesSent.Load() }
func (s *WireStats) FramesReceived() uint64 {
	return s.framesRecv.Load()
}

// DeflateRatio reports deflated/raw bytes across all compressed fields
// (0 when nothing has been compressed yet).
func (s *WireStats) DeflateRatio() float64 {
	raw := s.rawBytes.Load()
	if raw == 0 {
		return 0
	}
	return float64(s.deflatedBytes.Load()) / float64(raw)
}

// Register exposes the wire counters on reg under prefix ("gopar_dist"
// on the coordinator, "gopard_dist" on a worker daemon). Frames and
// bytes are counters (rate() gives frames/s and bytes/s); the deflate
// ratio is a gauge.
func (s *WireStats) Register(reg *telemetry.Registry, prefix string) {
	cf := func(c *atomic.Uint64) func() float64 {
		return func() float64 { return float64(c.Load()) }
	}
	reg.CounterFunc(prefix+"_bytes_sent_total", "Framed wire bytes sent (v2/v3 dialects).", cf(&s.bytesSent))
	reg.CounterFunc(prefix+"_bytes_received_total", "Framed wire bytes received (v2/v3 dialects).", cf(&s.bytesRecv))
	reg.CounterFunc(prefix+"_frames_sent_total", "Wire frames sent.", cf(&s.framesSent))
	reg.CounterFunc(prefix+"_frames_received_total", "Wire frames received.", cf(&s.framesRecv))
	reg.CounterFunc(prefix+"_deflate_raw_bytes_total", "Pre-compression size of deflated payload fields.", cf(&s.rawBytes))
	reg.CounterFunc(prefix+"_deflate_bytes_total", "Post-compression size of deflated payload fields.", cf(&s.deflatedBytes))
	reg.GaugeFunc(prefix+"_deflate_ratio", "Deflated/raw byte ratio across compressed fields (0 = none yet).",
		s.DeflateRatio)
}

// --- deflate ------------------------------------------------------------

var flateWriterPool = sync.Pool{New: func() any {
	w, _ := flate.NewWriter(io.Discard, flate.BestSpeed)
	return w
}}

var flateReaderPool = sync.Pool{New: func() any {
	return flate.NewReader(bytes.NewReader(nil))
}}

// appendSink adapts append-into-slice to io.Writer for flate.
type appendSink struct{ b []byte }

func (w *appendSink) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// appendDeflate compresses src and appends the deflate stream to b.
func appendDeflate(b, src []byte) ([]byte, error) {
	w := flateWriterPool.Get().(*flate.Writer)
	sink := &appendSink{b: b}
	w.Reset(sink)
	if _, err := w.Write(src); err != nil {
		flateWriterPool.Put(w)
		return b, err
	}
	if err := w.Close(); err != nil {
		flateWriterPool.Put(w)
		return b, err
	}
	flateWriterPool.Put(w)
	return sink.b, nil
}

// inflateInto decompresses src into dst (whose length is the expected
// raw size, already bounds-checked by the decoder).
func inflateInto(dst, src []byte) error {
	r := flateReaderPool.Get().(io.ReadCloser)
	defer flateReaderPool.Put(r)
	if err := r.(flate.Resetter).Reset(bytes.NewReader(src), nil); err != nil {
		return err
	}
	if _, err := io.ReadFull(r, dst); err != nil {
		return err
	}
	return nil
}

// --- frame I/O ----------------------------------------------------------

// writeFrameV3 emits one length-prefixed, CRC-trailed frame. body must
// start with the frame type byte. No flush: the caller owns the
// flush-on-idle batching discipline.
func writeFrameV3(bw *bufio.Writer, body []byte, st *WireStats) error {
	n := len(body) + 4
	if n > maxFrame {
		return fmt.Errorf("dist: v3 frame of %d bytes exceeds limit %d", n, maxFrame)
	}
	// Byte-at-a-time through bufio's concrete WriteByte: a local [4]byte
	// passed to Write would escape through the underlying io.Writer
	// interface and cost a heap allocation per frame.
	if err := writeU32(bw, uint32(n)); err != nil {
		return err
	}
	if _, err := bw.Write(body); err != nil {
		return err
	}
	if err := writeU32(bw, crc32.Checksum(body, crc32cTable)); err != nil {
		return err
	}
	if st != nil {
		st.bytesSent.Add(uint64(n) + 4)
		st.framesSent.Add(1)
	}
	return nil
}

func writeU32(bw *bufio.Writer, v uint32) error {
	bw.WriteByte(byte(v >> 24))
	bw.WriteByte(byte(v >> 16))
	bw.WriteByte(byte(v >> 8))
	return bw.WriteByte(byte(v))
}

// readU32 reads a big-endian u32 via bufio's concrete ReadByte, for the
// same escape-analysis reason as writeU32.
func readU32(br *bufio.Reader) (uint32, error) {
	var v uint32
	for i := 0; i < 4; i++ {
		c, err := br.ReadByte()
		if err != nil {
			if i > 0 && err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return 0, err
		}
		v = v<<8 | uint32(c)
	}
	return v, nil
}

// readFrameV3 reads one frame into *buf (resized in place, so the
// caller's buffer is reused across frames), verifies the CRC, and
// returns the frame type and the body slice aliasing *buf.
func readFrameV3(br *bufio.Reader, buf *[]byte, st *WireStats) (byte, []byte, error) {
	n, err := readU32(br)
	if err != nil {
		return 0, nil, err
	}
	if n < 5 || n > maxFrame {
		return 0, nil, fmt.Errorf("dist: v3 frame of %d bytes outside [5, %d]", n, maxFrame)
	}
	*buf = resizeBytes(*buf, int(n))
	b := *buf
	if _, err := io.ReadFull(br, b); err != nil {
		return 0, nil, err
	}
	if crc32.Checksum(b[:n-4], crc32cTable) != binary.BigEndian.Uint32(b[n-4:]) {
		return 0, nil, errBadCRC
	}
	if st != nil {
		st.bytesRecv.Add(uint64(n) + 4)
		st.framesRecv.Add(1)
	}
	return b[0], b[1 : n-4], nil
}

// --- encoding -----------------------------------------------------------

func appendStrV3(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendBlobV3 appends p raw, or deflated when it clears deflateMin AND
// actually shrinks. Reports whether the deflated form was used (the
// caller records it in the message's flags byte).
func appendBlobV3(b, p []byte, deflateMin int, st *WireStats) ([]byte, bool) {
	if deflateMin > 0 && len(p) >= deflateMin {
		s := getScratch()
		comp, err := appendDeflate(s.b[:0], p)
		s.b = comp[:0]
		if err == nil && len(comp) < len(p) {
			b = binary.AppendUvarint(b, uint64(len(p)))
			b = binary.AppendUvarint(b, uint64(len(comp)))
			b = append(b, comp...)
			if st != nil {
				st.rawBytes.Add(uint64(len(p)))
				st.deflatedBytes.Add(uint64(len(comp)))
			}
			putScratch(s)
			return b, true
		}
		putScratch(s)
	}
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...), false
}

func appendRequestV3(b []byte, req *request, deflateMin int, st *WireStats) []byte {
	b = binary.AppendUvarint(b, uint64(req.Seq))
	b = binary.AppendUvarint(b, uint64(req.Slot))
	b = binary.AppendUvarint(b, uint64(req.TimeoutNS))
	flagAt := len(b)
	b = append(b, 0)
	b = appendStrV3(b, req.Command)
	b = binary.AppendUvarint(b, uint64(len(req.Args)))
	for _, a := range req.Args {
		b = appendStrV3(b, a)
	}
	b = binary.AppendUvarint(b, uint64(len(req.Env)))
	for _, e := range req.Env {
		b = appendStrV3(b, e)
	}
	var deflated bool
	b, deflated = appendBlobV3(b, req.Stdin, deflateMin, st)
	if deflated {
		b[flagAt] |= flagStdinDeflated
	}
	return b
}

func appendResponseV3(b []byte, resp *response, deflateMin int, st *WireStats) []byte {
	b = binary.AppendUvarint(b, uint64(resp.Seq))
	flagAt := len(b)
	var flags byte
	if resp.TimedOut {
		flags |= flagTimedOut
	}
	b = append(b, flags)
	b = binary.AppendVarint(b, int64(resp.ExitCode))
	b = binary.AppendUvarint(b, uint64(resp.StartNS))
	b = binary.AppendUvarint(b, uint64(resp.EndNS))
	b = binary.AppendUvarint(b, uint64(resp.RecvNS))
	b = binary.AppendUvarint(b, uint64(resp.SentBytes))
	b = appendStrV3(b, resp.Err)
	var deflated bool
	b, deflated = appendBlobV3(b, resp.Stdout, deflateMin, st)
	if deflated {
		b[flagAt] |= flagStdoutDeflated
	}
	b, deflated = appendBlobV3(b, resp.Stderr, deflateMin, st)
	if deflated {
		b[flagAt] |= flagStderrDeflated
	}
	return b
}

// encodeJobsV3 appends a whole jobs-frame body (type byte included)
// into b.
func encodeJobsV3(b []byte, reqs []request, deflateMin int, st *WireStats) []byte {
	b = append(b, frameJobsV3)
	b = binary.AppendUvarint(b, uint64(len(reqs)))
	for i := range reqs {
		b = appendRequestV3(b, &reqs[i], deflateMin, st)
	}
	return b
}

// encodeResultsV3 appends a whole results-frame body into b, with the
// worker's telemetry snapshot piggybacked once per frame (hasSnap).
func encodeResultsV3(b []byte, resps []response, snap telemetry.Snapshot, hasSnap bool, deflateMin int, st *WireStats) []byte {
	b = append(b, frameResultsV3)
	b = binary.AppendUvarint(b, uint64(len(resps)))
	for i := range resps {
		b = appendResponseV3(b, &resps[i], deflateMin, st)
	}
	if hasSnap {
		b = append(b, 1)
		b = appendStrV3(b, snap.Worker)
		b = binary.AppendUvarint(b, uint64(snap.Slots))
		b = binary.AppendUvarint(b, uint64(snap.Busy))
		b = binary.AppendUvarint(b, uint64(snap.Started))
		b = binary.AppendUvarint(b, uint64(snap.OK))
		b = binary.AppendUvarint(b, uint64(snap.Failed))
		b = binary.AppendUvarint(b, uint64(snap.UnixNano))
	} else {
		b = append(b, 0)
	}
	return b
}

// --- decoding -----------------------------------------------------------

// v3dec is a bounds-checked cursor over one frame body with a sticky
// validity flag: any truncation, varint overflow, or oversize count
// flips ok and every later read returns zero values, so decode loops
// need a single error check at the end.
type v3dec struct {
	b   []byte
	off int
	ok  bool
}

func (d *v3dec) uvarint() uint64 {
	if !d.ok {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.ok = false
		return 0
	}
	d.off += n
	return v
}

func (d *v3dec) varint() int64 {
	if !d.ok {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.ok = false
		return 0
	}
	d.off += n
	return v
}

// count reads an element count and rejects values that could not
// possibly fit in the remaining bytes (every element costs at least one
// byte), so a corrupt count cannot drive huge slice growth.
func (d *v3dec) count() int {
	v := d.uvarint()
	if !d.ok || v > uint64(len(d.b)-d.off) {
		d.ok = false
		return 0
	}
	return int(v)
}

func (d *v3dec) u8() byte {
	if !d.ok || d.off >= len(d.b) {
		d.ok = false
		return 0
	}
	c := d.b[d.off]
	d.off++
	return c
}

// take returns n bytes aliasing the frame buffer (zero-copy).
func (d *v3dec) take(n int) []byte {
	if !d.ok || n < 0 || n > len(d.b)-d.off {
		d.ok = false
		return nil
	}
	p := d.b[d.off : d.off+n]
	d.off += n
	return p
}

// strZC decodes a string aliasing the frame buffer.
func (d *v3dec) strZC() string { return b2s(d.take(int(d.uvarint()))) }

// strCopy decodes a string copied out of the frame (for values that
// outlive it). Empty strings cost nothing.
func (d *v3dec) strCopy() string {
	p := d.take(int(d.uvarint()))
	if len(p) == 0 {
		return ""
	}
	return string(p)
}

// blobZC decodes a blob zero-copy; a deflated blob is inflated into a
// pooled buffer appended to extra (released with the frame).
func (d *v3dec) blobZC(deflated bool, extra *[]*scratch) []byte {
	if !deflated {
		return d.take(int(d.uvarint()))
	}
	raw := d.uvarint()
	comp := d.take(int(d.uvarint()))
	if !d.ok || raw > maxFrame {
		d.ok = false
		return nil
	}
	s := getScratch()
	s.b = resizeBytes(s.b, int(raw))
	if err := inflateInto(s.b, comp); err != nil {
		putScratch(s)
		d.ok = false
		return nil
	}
	*extra = append(*extra, s)
	return s.b
}

// blobCopy decodes a blob into fresh memory (coordinator side, where
// results outlive the frame). Empty blobs decode to nil without
// allocating.
func (d *v3dec) blobCopy(deflated bool) []byte {
	if !deflated {
		p := d.take(int(d.uvarint()))
		if len(p) == 0 {
			return nil
		}
		return append([]byte(nil), p...)
	}
	raw := d.uvarint()
	comp := d.take(int(d.uvarint()))
	if !d.ok || raw > maxFrame {
		d.ok = false
		return nil
	}
	out := make([]byte, raw)
	if err := inflateInto(out, comp); err != nil {
		d.ok = false
		return nil
	}
	return out
}

// jobsFrame is one decoded jobs frame on the worker: the raw body the
// requests alias, the decoded requests, and any inflate buffers. A
// refcount (one per job) returns everything to the pools once the last
// job from the frame completes — the zero-copy lifetime contract.
type jobsFrame struct {
	buf    []byte // raw frame (requests alias its body)
	reqs   []request
	extra  []*scratch
	recvNS int64
	refs   atomic.Int32
}

var jobsFramePool = sync.Pool{New: func() any { return &jobsFrame{} }}

func getJobsFrame() *jobsFrame { return jobsFramePool.Get().(*jobsFrame) }

func putJobsFrame(fr *jobsFrame) {
	for _, s := range fr.extra {
		putScratch(s)
	}
	fr.extra = fr.extra[:0]
	fr.reqs = fr.reqs[:0]
	jobsFramePool.Put(fr)
}

// release drops one job's reference; the last reference recycles the
// frame.
func (fr *jobsFrame) release() {
	if fr.refs.Add(-1) == 0 {
		putJobsFrame(fr)
	}
}

// decodeJobsV3 decodes a jobs-frame body into fr.reqs (capacity reused
// across frames). Strings and stdin alias fr.buf.
func decodeJobsV3(body []byte, fr *jobsFrame) error {
	d := v3dec{b: body, ok: true}
	n := d.count()
	reqs := fr.reqs[:0]
	for i := 0; i < n && d.ok; i++ {
		if len(reqs) < cap(reqs) {
			reqs = reqs[:len(reqs)+1]
		} else {
			reqs = append(reqs, request{})
		}
		req := &reqs[len(reqs)-1]
		req.Seq = int(d.uvarint())
		req.Slot = int(d.uvarint())
		req.TimeoutNS = int64(d.uvarint())
		flags := d.u8()
		req.Command = d.strZC()
		args := req.Args[:0]
		for j, na := 0, d.count(); j < na && d.ok; j++ {
			args = append(args, d.strZC())
		}
		req.Args = args
		env := req.Env[:0]
		for j, ne := 0, d.count(); j < ne && d.ok; j++ {
			env = append(env, d.strZC())
		}
		req.Env = env
		req.Stdin = d.blobZC(flags&flagStdinDeflated != 0, &fr.extra)
	}
	fr.reqs = reqs
	if !d.ok || d.off != len(body) {
		return errCorruptFrame
	}
	return nil
}

// decodeResultsV3 decodes a results-frame body into dst (capacity
// reused). Payloads and error strings are copied out — they outlive
// the frame inside core.Result — but empty ones, the fast-path shape,
// allocate nothing. sessName is the worker name the session already
// holds; the piggybacked snapshot reuses it instead of allocating when
// the bytes match (they always do — a session's worker never renames).
func decodeResultsV3(body []byte, dst []response, sessName string) ([]response, telemetry.Snapshot, bool, error) {
	var snap telemetry.Snapshot
	d := v3dec{b: body, ok: true}
	n := d.count()
	resps := dst[:0]
	for i := 0; i < n && d.ok; i++ {
		if len(resps) < cap(resps) {
			resps = resps[:len(resps)+1]
		} else {
			resps = append(resps, response{})
		}
		r := &resps[len(resps)-1]
		r.Seq = int(d.uvarint())
		flags := d.u8()
		r.ExitCode = int(d.varint())
		r.TimedOut = flags&flagTimedOut != 0
		r.StartNS = int64(d.uvarint())
		r.EndNS = int64(d.uvarint())
		r.RecvNS = int64(d.uvarint())
		r.SentBytes = int(d.uvarint())
		r.Err = d.strCopy()
		r.Stdout = d.blobCopy(flags&flagStdoutDeflated != 0)
		r.Stderr = d.blobCopy(flags&flagStderrDeflated != 0)
		r.Telemetry = nil
	}
	hasSnap := false
	if d.u8() == 1 {
		nameB := d.take(int(d.uvarint()))
		if b2s(nameB) == sessName {
			snap.Worker = sessName
		} else {
			snap.Worker = string(nameB)
		}
		snap.Slots = int(d.uvarint())
		snap.Busy = int(d.uvarint())
		snap.Started = int64(d.uvarint())
		snap.OK = int64(d.uvarint())
		snap.Failed = int64(d.uvarint())
		snap.UnixNano = int64(d.uvarint())
		hasSnap = d.ok
	}
	if !d.ok || d.off != len(body) {
		return resps, snap, false, errCorruptFrame
	}
	return resps, snap, hasSnap, nil
}

// --- send loops ---------------------------------------------------------

// drainV3 greedily moves queued messages into items (up to
// maxBatchItemsV3). When the queue runs dry on a shallow batch it
// yields the processor once and tries again: producers that are
// runnable-but-not-running (the common case on few cores) get to
// enqueue, turning many near-empty frames into one deep frame. One
// Gosched costs ~1µs on an idle system — noise next to the syscall it
// saves — and a lone message still departs on the second pass.
func drainV3[T any](ch <-chan T, items []T) []T {
	yielded := false
	for len(items) < maxBatchItemsV3 {
		select {
		case v, ok := <-ch:
			if !ok {
				return items
			}
			items = append(items, v)
			continue
		default:
		}
		if yielded || len(items) >= maxBatchItemsV3/4 {
			break
		}
		yielded = true
		runtime.Gosched()
	}
	return items
}

// v3JobsLoop is the coordinator's coalescing send loop: drain queued
// requests (up to maxBatchItemsV3), emit one binary frame, flush only
// when the queue goes idle. items and the frame buffer are reused
// across iterations, so the steady state allocates nothing.
func v3JobsLoop(bw *bufio.Writer, ch <-chan request, done <-chan struct{}, deflateMin int, st *WireStats) error {
	var items []request
	var buf []byte
	for {
		var first request
		var ok bool
		select {
		case first, ok = <-ch:
			if !ok {
				return bw.Flush()
			}
		case <-done:
			return nil
		}
		items = drainV3(ch, append(items[:0], first))
		buf = encodeJobsV3(buf[:0], items, deflateMin, st)
		if err := writeFrameV3(bw, buf, st); err != nil {
			return err
		}
		if len(ch) == 0 {
			if err := bw.Flush(); err != nil {
				return err
			}
		}
	}
}

// v3ResultsLoop is the worker's coalescing send loop; it additionally
// piggybacks one telemetry snapshot per frame.
func v3ResultsLoop(bw *bufio.Writer, ch <-chan response, wt *WorkerTelemetry, deflateMin int, st *WireStats) error {
	var items []response
	var buf []byte
	for {
		first, ok := <-ch
		if !ok {
			return bw.Flush()
		}
		items = drainV3(ch, append(items[:0], first))
		var snap telemetry.Snapshot
		hasSnap := wt != nil
		if hasSnap {
			snap = wt.Snapshot()
		}
		buf = encodeResultsV3(buf[:0], items, snap, hasSnap, deflateMin, st)
		if err := writeFrameV3(bw, buf, st); err != nil {
			return err
		}
		if len(ch) == 0 {
			if err := bw.Flush(); err != nil {
				return err
			}
		}
	}
}
