package dist

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"unicode/utf8"

	"repro/internal/telemetry"
)

func TestCheckHello(t *testing.T) {
	cases := []struct {
		h  hello
		ok bool
	}{
		{hello{Version: protocolVersion, Name: "w", Slots: 1}, true},
		{hello{Version: protocolVersion, Name: "w", Slots: 64}, true},
		{hello{Version: 0, Name: "w", Slots: 1}, false},
		{hello{Version: protocolVersion + 1, Name: "w", Slots: 1}, false},
		{hello{Version: protocolVersion, Name: "w", Slots: 0}, false},
		{hello{Version: protocolVersion, Name: "w", Slots: -3}, false},
	}
	for _, c := range cases {
		if err := checkHello(c.h); (err == nil) != c.ok {
			t.Errorf("checkHello(%+v) err=%v, want ok=%v", c.h, err, c.ok)
		}
	}
}

func TestProtocolGoldenRoundTrips(t *testing.T) {
	// Each message type survives a codec round trip bit-for-bit.
	req := request{
		Seq: 42, Slot: 3, Command: "echo hi", Args: []string{"a b", "c"},
		Env: []string{"K=V"}, Stdin: []byte("in\n"), TimeoutNS: 5e9,
	}
	resp := response{
		Seq: 42, ExitCode: 7, Err: "boom", Stdout: []byte("out"),
		Stderr: []byte("err"), StartNS: 100, EndNS: 200, TimedOut: true,
		RecvNS: 90,
		Telemetry: &telemetry.Snapshot{
			Worker: "w1", Slots: 8, Busy: 2, Started: 10, OK: 9, Failed: 1, UnixNano: 300,
		},
	}
	h := hello{Version: protocolVersion, Name: "n", Slots: 4}

	var buf bytes.Buffer
	c := newCodec(&buf)
	for _, msg := range []any{req, resp, h} {
		if err := c.send(msg); err != nil {
			t.Fatal(err)
		}
	}
	var gotReq request
	var gotResp response
	var gotHello hello
	for _, dst := range []any{&gotReq, &gotResp, &gotHello} {
		if err := c.recv(dst); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(gotReq, req) {
		t.Fatalf("request round trip:\ngot  %+v\nwant %+v", gotReq, req)
	}
	if !reflect.DeepEqual(gotResp, resp) {
		t.Fatalf("response round trip:\ngot  %+v\nwant %+v", gotResp, resp)
	}
	if gotHello != h {
		t.Fatalf("hello round trip: got %+v want %+v", gotHello, h)
	}
}

func TestProtocolGoldenWire(t *testing.T) {
	// The wire form is frozen: old coordinators must keep decoding new
	// workers and vice versa. These literals are the compatibility
	// contract — changing them is a protocol break.
	var buf bytes.Buffer
	c := newCodec(&buf)
	if err := c.send(request{Seq: 1, Slot: 2, Command: "true"}); err != nil {
		t.Fatal(err)
	}
	if got, want := strings.TrimSpace(buf.String()),
		`{"seq":1,"slot":2,"command":"true"}`; got != want {
		t.Fatalf("request wire = %s, want %s", got, want)
	}

	// A response from an old worker (no telemetry, no recv_ns) decodes
	// with a nil snapshot and zero RecvNS.
	var resp response
	old := `{"seq":5,"exit_code":0,"start_ns":1,"end_ns":2}`
	if err := json.Unmarshal([]byte(old), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Telemetry != nil || resp.Seq != 5 || resp.RecvNS != 0 {
		t.Fatalf("legacy response decode = %+v", resp)
	}

	// A response from a new worker carries the snapshot and recv_ns.
	resp = response{}
	modern := `{"seq":6,"exit_code":0,"start_ns":1,"end_ns":2,"recv_ns":1,` +
		`"telemetry":{"worker":"w9","slots":4,"busy":1,"started":3,"ok":2,"failed":1,"ts":7}}`
	if err := json.Unmarshal([]byte(modern), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Telemetry == nil || resp.Telemetry.Worker != "w9" ||
		resp.Telemetry.Started != 3 || resp.Telemetry.UnixNano != 7 {
		t.Fatalf("telemetry decode = %+v", resp.Telemetry)
	}
	if resp.RecvNS != 1 {
		t.Fatalf("recv_ns decode = %d", resp.RecvNS)
	}

	// Unknown fields from future protocol revisions are ignored, not
	// errors — forward compatibility within a version.
	resp = response{}
	future := `{"seq":7,"exit_code":0,"start_ns":1,"end_ns":2,"new_field":{"x":1}}`
	if err := json.Unmarshal([]byte(future), &resp); err != nil {
		t.Fatalf("future field rejected: %v", err)
	}
}

func FuzzProtocolRoundTrip(f *testing.F) {
	f.Add(1, 1, "echo {}", []byte("stdin"), int64(0), true)
	f.Add(0, 0, "", []byte(nil), int64(-1), false)
	f.Add(1<<30, 255, "cmd \x00 weird \n\t\"quotes\"", []byte{0xff, 0x00}, int64(1e18), true)
	f.Fuzz(func(t *testing.T, seq, slot int, command string, stdin []byte, timeout int64, withTel bool) {
		if !utf8.ValidString(command) {
			t.Skip("JSON replaces invalid UTF-8; not a round-trippable input")
		}
		req := request{Seq: seq, Slot: slot, Command: command, Stdin: stdin, TimeoutNS: timeout}
		resp := response{Seq: seq, ExitCode: slot, Stdout: stdin, StartNS: timeout, EndNS: timeout + 1}
		if withTel {
			resp.Telemetry = &telemetry.Snapshot{
				Worker: command, Slots: slot, Started: int64(seq), UnixNano: timeout,
			}
		}
		var buf bytes.Buffer
		c := newCodec(&buf)
		if err := c.send(req); err != nil {
			t.Fatal(err)
		}
		if err := c.send(resp); err != nil {
			t.Fatal(err)
		}
		var gotReq request
		var gotResp response
		if err := c.recv(&gotReq); err != nil {
			t.Fatal(err)
		}
		if err := c.recv(&gotResp); err != nil {
			t.Fatal(err)
		}
		// JSON []byte(nil) and []byte{} collapse; normalize before compare.
		if len(req.Stdin) == 0 {
			req.Stdin, gotReq.Stdin = nil, nil
		}
		if len(resp.Stdout) == 0 {
			resp.Stdout, gotResp.Stdout = nil, nil
		}
		if !reflect.DeepEqual(gotReq, req) {
			t.Fatalf("request:\ngot  %+v\nwant %+v", gotReq, req)
		}
		if !reflect.DeepEqual(gotResp, resp) {
			t.Fatalf("response:\ngot  %+v\nwant %+v", gotResp, resp)
		}
	})
}
