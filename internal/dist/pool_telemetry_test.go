package dist

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/args"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/telemetry"
)

func TestPoolTelemetryPiggybackAndAggregation(t *testing.T) {
	a1 := startWorker(t, "alpha", 2, echoRunner("a"))
	a2 := startWorker(t, "beta", 2, echoRunner("b"))
	pool, err := Dial([]WorkerSpec{{Addr: a1}, {Addr: a2}})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	spec, _ := core.NewSpec("", pool.Slots())
	eng, _ := core.NewEngine(spec, pool)
	items := make([]string, 40)
	for i := range items {
		items[i] = fmt.Sprint(i)
	}
	stats, _, err := eng.Run(context.Background(), args.Literal(items...))
	if err != nil || stats.Succeeded != 40 {
		t.Fatalf("stats=%+v err=%v", stats, err)
	}

	snaps := pool.WorkerSnapshots()
	if len(snaps) != 2 || snaps[0].Worker != "alpha" || snaps[1].Worker != "beta" {
		t.Fatalf("snapshots = %+v", snaps)
	}
	var totalOK int64
	for _, s := range snaps {
		if s.Slots != 2 || s.OK == 0 || s.Failed != 0 || s.UnixNano == 0 {
			t.Fatalf("snapshot %+v", s)
		}
		totalOK += s.OK
	}
	// Every response carries counters including the job it answered, but
	// concurrent connections to one worker can store snapshots out of
	// order, so the retained total may trail reality by up to the
	// in-flight window (one job per slot). It can never exceed it.
	if totalOK > 40 || totalOK < 40-int64(pool.Slots()) {
		t.Fatalf("fleet ok total = %d, want within %d of 40", totalOK, pool.Slots())
	}

	reg := telemetry.NewRegistry()
	pool.RegisterMetrics(reg)
	var sb strings.Builder
	reg.WriteText(&sb)
	out := sb.String()
	for _, line := range []string{
		`gopar_pool_slots{state="total"} 4`,
		`gopar_pool_slots{state="live"} 4`,
		`gopar_pool_slots{state="redialing"} 0`,
		`gopar_pool_slots{state="lost"} 0`,
		`gopar_worker_slots{worker="alpha"} 2`,
		`gopar_worker_slots{worker="beta"} 2`,
		`gopar_worker_busy{worker="alpha"} 0`,
	} {
		if !strings.Contains(out, line) {
			t.Fatalf("missing %q in coordinator exposition:\n%s", line, out)
		}
	}
	if !strings.Contains(out, `gopar_worker_jobs_total{worker="alpha",outcome="ok"}`) {
		t.Fatalf("per-worker outcome series missing:\n%s", out)
	}
}

func TestPoolHealthTransitionsUnderInjectedWorkerLoss(t *testing.T) {
	// Worker loss is injected from a deterministic internal/faults outage
	// schedule: the nodes that fail are whichever the schedule dooms, so
	// the same fault model drives simulated clusters and this real pool.
	const nodes = 3
	outages := faults.NodeOutages(3, nodes, time.Hour, time.Hour, 0)
	doomed := map[int]bool{}
	for _, o := range outages {
		doomed[o.Node] = true
	}
	if len(doomed) == 0 || len(doomed) == nodes {
		t.Fatalf("outage schedule dooms %d/%d nodes; pick another seed", len(doomed), nodes)
	}

	specs := make([]WorkerSpec, nodes)
	kills := make([]func(), nodes)
	for i := 0; i < nodes; i++ {
		addr, kill := startKillableWorker(t, "127.0.0.1:0", fmt.Sprintf("n%d", i))
		specs[i] = WorkerSpec{Addr: addr}
		kills[i] = kill
	}

	var mu sync.Mutex
	var transitions []Health
	pool, err := Dial(specs,
		WithRedialBudget(1),
		WithHealthNotify(func(h Health) {
			mu.Lock()
			transitions = append(transitions, h)
			mu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if h := pool.Health(); h.Degraded() {
		t.Fatalf("pool degraded at dial: %+v", h)
	}

	for i, kill := range kills {
		if doomed[i] {
			kill()
		}
	}

	// Drive jobs through the degraded pool. Protocol-v2 sessions notice
	// peer loss proactively — the session reader fails the moment the
	// TCP connection drops — so most jobs land on survivors and see no
	// error; at most one in-flight job per doomed worker can race the
	// detection and report a transport error.
	errs := 0
	for i := 1; i <= 20; i++ {
		if res := pool.Run(context.Background(), &core.Job{Seq: i, Args: []string{"x"}}); res.Err != nil {
			errs++
		}
	}
	if errs > len(doomed) {
		t.Fatalf("saw %d transport errors, want at most %d", errs, len(doomed))
	}

	// Budget 1 with 100ms backoff: doomed slots are written off fast.
	deadline := time.Now().Add(10 * time.Second)
	for {
		h := pool.Health()
		if h.Lost == len(doomed) && h.Redialing == 0 {
			if h.Total != nodes || h.Live != nodes-len(doomed) || !h.Degraded() {
				t.Fatalf("final health = %+v (doomed %d)", h, len(doomed))
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("health never settled: %+v", h)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The notify hook saw the full transition history: degradation was
	// reported the moment the first slot broke, not discovered later.
	mu.Lock()
	defer mu.Unlock()
	if len(transitions) < 2*len(doomed) {
		t.Fatalf("transitions = %d, want >= %d (retire + write-off per doomed slot)",
			len(transitions), 2*len(doomed))
	}
	first := transitions[0]
	if !first.Degraded() || first.Redialing < 1 || first.Lost != 0 {
		t.Fatalf("first transition = %+v, want immediate redialing degradation", first)
	}
	for _, h := range transitions {
		if h.Total != nodes {
			t.Fatalf("transition with wrong total: %+v", h)
		}
		if h.Live+h.Redialing+h.Lost > nodes {
			t.Fatalf("inconsistent transition: %+v", h)
		}
	}

	// Survivors still execute work at degraded capacity.
	res := pool.Run(context.Background(), &core.Job{Seq: 99, Args: []string{"y"}})
	if !res.OK() {
		t.Fatalf("survivor run failed: %+v", res)
	}
}
