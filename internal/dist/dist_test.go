package dist

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/args"
	"repro/internal/core"
)

// startWorker launches a Serve goroutine on a loopback listener and
// returns its address.
func startWorker(t *testing.T, name string, slots int, runner core.Runner) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go Serve(ctx, l, WorkerConfig{Name: name, Slots: slots, Runner: runner})
	return l.Addr().String()
}

func echoRunner(prefix string) core.FuncRunner {
	return func(ctx context.Context, job *core.Job) ([]byte, error) {
		return []byte(fmt.Sprintf("%s:%s\n", prefix, strings.Join(job.Args, ","))), nil
	}
}

func TestPoolSingleWorker(t *testing.T) {
	addr := startWorker(t, "w1", 4, echoRunner("w1"))
	pool, err := Dial([]WorkerSpec{{Addr: addr}})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if pool.Slots() != 4 {
		t.Fatalf("slots = %d", pool.Slots())
	}
	res := pool.Run(context.Background(), &core.Job{Seq: 1, Args: []string{"x"}})
	if !res.OK() {
		t.Fatalf("res = %+v", res)
	}
	if string(res.Stdout) != "w1:x\n" {
		t.Fatalf("stdout = %q", res.Stdout)
	}
	if res.Host != "w1" {
		t.Fatalf("host = %q", res.Host)
	}
}

// slowStartRunner delays before its Start timestamp, creating a
// measurable worker-side receive-to-start gap.
type slowStartRunner struct{ delay time.Duration }

func (r slowStartRunner) Run(ctx context.Context, job *core.Job) core.Result {
	time.Sleep(r.delay)
	start := time.Now()
	return core.Result{Job: *job, ExitCode: 0, Start: start, End: time.Now()}
}

func TestPoolWorkerDispatchAttribution(t *testing.T) {
	addr := startWorker(t, "wd", 1, slowStartRunner{delay: 20 * time.Millisecond})
	pool, err := Dial([]WorkerSpec{{Addr: addr}})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	res := pool.Run(context.Background(), &core.Job{Seq: 1})
	if !res.OK() {
		t.Fatalf("res = %+v", res)
	}
	// RecvNS is stamped when the worker reads the request; Start fires
	// ~20ms later, so the pool must attribute a worker-side dispatch
	// segment of at least that much.
	if res.WorkerDispatch < 20*time.Millisecond {
		t.Fatalf("WorkerDispatch = %v, want >= 20ms", res.WorkerDispatch)
	}
	if res.WorkerDispatch > 5*time.Second {
		t.Fatalf("WorkerDispatch = %v, implausibly large", res.WorkerDispatch)
	}
}

func TestPoolSlotCap(t *testing.T) {
	addr := startWorker(t, "w", 8, echoRunner("w"))
	pool, err := Dial([]WorkerSpec{{Addr: addr, Slots: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if pool.Slots() != 2 {
		t.Fatalf("slots = %d, want cap 2", pool.Slots())
	}
}

func TestEngineOverPool(t *testing.T) {
	// Full engine -> pool -> two workers. Work lands on both.
	var w1Jobs, w2Jobs atomic.Int64
	mk := func(counter *atomic.Int64, d time.Duration) core.FuncRunner {
		return func(ctx context.Context, job *core.Job) ([]byte, error) {
			counter.Add(1)
			time.Sleep(d)
			return []byte(job.Args[0] + "\n"), nil
		}
	}
	a1 := startWorker(t, "alpha", 2, mk(&w1Jobs, 5*time.Millisecond))
	a2 := startWorker(t, "beta", 2, mk(&w2Jobs, 5*time.Millisecond))
	pool, err := Dial([]WorkerSpec{{Addr: a1}, {Addr: a2}})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	spec, _ := core.NewSpec("", pool.Slots())
	var hosts sync.Map
	spec.OnResult = func(r core.Result) { hosts.Store(r.Host, true) }
	eng, _ := core.NewEngine(spec, pool)
	items := make([]string, 40)
	for i := range items {
		items[i] = fmt.Sprint(i)
	}
	stats, _, err := eng.Run(context.Background(), args.Literal(items...))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Succeeded != 40 {
		t.Fatalf("stats = %+v", stats)
	}
	if w1Jobs.Load() == 0 || w2Jobs.Load() == 0 {
		t.Fatalf("work not distributed: alpha=%d beta=%d", w1Jobs.Load(), w2Jobs.Load())
	}
	if w1Jobs.Load()+w2Jobs.Load() != 40 {
		t.Fatalf("job count mismatch: %d", w1Jobs.Load()+w2Jobs.Load())
	}
	for _, h := range []string{"alpha", "beta"} {
		if _, ok := hosts.Load(h); !ok {
			t.Fatalf("no results from %s", h)
		}
	}
}

func TestPoolRealProcesses(t *testing.T) {
	addr := startWorker(t, "exec", 2, &core.ExecRunner{})
	pool, err := Dial([]WorkerSpec{{Addr: addr}})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	res := pool.Run(context.Background(), &core.Job{Seq: 1, Command: "echo remote hello"})
	if !res.OK() || strings.TrimSpace(string(res.Stdout)) != "remote hello" {
		t.Fatalf("res = %+v stdout=%q", res, res.Stdout)
	}
	// Exit codes propagate.
	res = pool.Run(context.Background(), &core.Job{Seq: 2, Command: "sh -c 'exit 4'"})
	if res.ExitCode != 4 {
		t.Fatalf("exit = %d", res.ExitCode)
	}
	// Stdin (pipe mode) propagates.
	res = pool.Run(context.Background(), &core.Job{Seq: 3, Command: "wc -l", Stdin: []byte("a\nb\n")})
	if strings.TrimSpace(string(res.Stdout)) != "2" {
		t.Fatalf("pipe stdout = %q", res.Stdout)
	}
	// Env propagates.
	res = pool.Run(context.Background(), &core.Job{Seq: 4, Command: "sh -c 'echo $DISTVAR'", Env: []string{"DISTVAR=over-tcp"}})
	if strings.TrimSpace(string(res.Stdout)) != "over-tcp" {
		t.Fatalf("env stdout = %q", res.Stdout)
	}
}

func TestPoolWorkerDeathAndRetry(t *testing.T) {
	// Worker 1 dies mid-run; retries land on worker 2 and the run
	// completes.
	l1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	var served atomic.Int64
	go Serve(ctx1, l1, WorkerConfig{Name: "doomed", Slots: 1, Runner: core.FuncRunner(
		func(ctx context.Context, job *core.Job) ([]byte, error) {
			served.Add(1)
			time.Sleep(2 * time.Millisecond)
			return nil, nil
		})})
	a2 := startWorker(t, "survivor", 2, core.FuncRunner(
		func(ctx context.Context, job *core.Job) ([]byte, error) {
			time.Sleep(2 * time.Millisecond)
			return nil, nil
		}))

	pool, err := Dial([]WorkerSpec{{Addr: l1.Addr().String()}, {Addr: a2}})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	// Kill worker 1 after a few jobs have flowed.
	go func() {
		for served.Load() < 2 {
			time.Sleep(time.Millisecond)
		}
		cancel1()
	}()

	spec, _ := core.NewSpec("", pool.Slots())
	spec.Retries = 4
	eng, _ := core.NewEngine(spec, pool)
	items := make([]string, 60)
	stats, _, err := eng.Run(context.Background(), args.Literal(items...))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Succeeded != 60 {
		t.Fatalf("stats = %+v (worker death not absorbed)", stats)
	}
}

// startKillableWorker runs a minimal worker whose listener AND accepted
// connections can be torn down, simulating a node crash (Serve only
// closes its listener on ctx cancellation; established connections
// linger, which is realistic for a hung node but useless for testing
// hard crashes).
func startKillableWorker(t *testing.T, addr, name string) (string, func()) {
	t.Helper()
	l, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("listen %s: %v", addr, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	var conns []net.Conn
	cfg := WorkerConfig{Name: name, Slots: 1, Runner: echoRunner(name)}
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, conn)
			mu.Unlock()
			go serveConn(ctx, conn, cfg)
		}
	}()
	kill := func() {
		cancel()
		l.Close()
		mu.Lock()
		for _, c := range conns {
			c.Close()
		}
		conns = nil
		mu.Unlock()
	}
	t.Cleanup(kill)
	return l.Addr().String(), kill
}

func TestPoolHealthAndRedialBudget(t *testing.T) {
	// A worker that dies permanently: the broken slot burns its redial
	// budget, then is written off as Lost; the survivor keeps the pool
	// usable at degraded capacity instead of the redialer spinning
	// forever.
	a1, kill1 := startKillableWorker(t, "127.0.0.1:0", "dying")
	a2 := startWorker(t, "steady", 1, echoRunner("s"))

	pool, err := Dial(
		[]WorkerSpec{{Addr: a1}, {Addr: a2}},
		WithRedialBudget(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if h := pool.Health(); h.Total != 2 || h.Live != 2 || h.Degraded() {
		t.Fatalf("initial health = %+v", h)
	}

	// Kill worker 1 for good, then run jobs until its slot exposes the
	// broken connection.
	kill1()
	var sawErr bool
	for i := 0; i < 2; i++ {
		res := pool.Run(context.Background(), &core.Job{Seq: i + 1, Args: []string{"x"}})
		if res.Err != nil {
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatal("no transport error observed after worker death")
	}

	// Budget 2 with 100ms+200ms backoff: the slot should be declared
	// lost well within a few seconds.
	deadline := time.Now().Add(10 * time.Second)
	for {
		h := pool.Health()
		if h.Lost == 1 && h.Redialing == 0 {
			if h.Live != 1 || !h.Degraded() {
				t.Fatalf("degraded health = %+v", h)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never written off: %+v", h)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The surviving slot still executes work.
	res := pool.Run(context.Background(), &core.Job{Seq: 9, Args: []string{"y"}})
	if !res.OK() || res.Host != "steady" {
		t.Fatalf("survivor run = %+v", res)
	}
}

func TestPoolRedialRecovers(t *testing.T) {
	// A worker that comes back within the budget restores Live capacity.
	addr, kill1 := startKillableWorker(t, "127.0.0.1:0", "flaky")

	pool, err := Dial([]WorkerSpec{{Addr: addr}}, WithRedialBudget(20))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	kill1()
	res := pool.Run(context.Background(), &core.Job{Seq: 1, Args: []string{"x"}})
	if res.Err == nil {
		t.Fatal("expected transport error from dead worker")
	}

	// Resurrect the worker on the same address.
	startKillableWorker(t, addr, "flaky")

	deadline := time.Now().Add(15 * time.Second)
	for pool.Health().Live != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("slot never recovered: %+v", pool.Health())
		}
		time.Sleep(20 * time.Millisecond)
	}
	res = pool.Run(context.Background(), &core.Job{Seq: 2, Args: []string{"y"}})
	if !res.OK() {
		t.Fatalf("post-recovery run = %+v", res)
	}
}

func TestDialErrors(t *testing.T) {
	if _, err := Dial(nil); err == nil {
		t.Fatal("empty worker list accepted")
	}
	if _, err := Dial([]WorkerSpec{{Addr: "127.0.0.1:1"}}); err == nil {
		t.Fatal("unreachable worker accepted")
	}
}

func TestProtocolVersionMismatch(t *testing.T) {
	// A fake worker speaking the wrong version is rejected.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		c := newCodec(conn)
		c.send(hello{Version: 99, Name: "future", Slots: 1})
		conn.Close()
	}()
	if _, err := Dial([]WorkerSpec{{Addr: l.Addr().String()}}); err == nil {
		t.Fatal("version mismatch accepted")
	}
}

func TestPoolContextCancel(t *testing.T) {
	addr := startWorker(t, "slow", 1, core.FuncRunner(
		func(ctx context.Context, job *core.Job) ([]byte, error) {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(30 * time.Second):
				return nil, nil
			}
		}))
	pool, err := Dial([]WorkerSpec{{Addr: addr}})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	res := pool.Run(ctx, &core.Job{Seq: 1, Args: []string{"x"}})
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancel did not unblock the pool")
	}
	if res.OK() {
		t.Fatal("cancelled job reported OK")
	}
	if res.Err == nil && !res.TimedOut {
		t.Fatalf("res = %+v", res)
	}
}

func TestJoblogRecordsRemoteHost(t *testing.T) {
	addr := startWorker(t, "hostx", 1, echoRunner("h"))
	pool, err := Dial([]WorkerSpec{{Addr: addr}})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	var log strings.Builder
	spec, _ := core.NewSpec("", 1)
	spec.Joblog = &log
	eng, _ := core.NewEngine(spec, pool)
	if _, _, err := eng.Run(context.Background(), args.Literal("a")); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(log.String(), "\thostx\t") {
		t.Fatalf("joblog missing remote host: %q", log.String())
	}
	entries, err := core.ParseJoblog(strings.NewReader(log.String()))
	if err != nil || len(entries) != 1 || entries[0].Host != "hostx" {
		t.Fatalf("entries = %+v err=%v", entries, err)
	}
}

// BenchmarkPoolDispatch measures remote job round-trips per second over
// loopback — the distributed analogue of Fig 3's launch-rate ceiling.
func BenchmarkPoolDispatch(b *testing.B) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	noop := core.FuncRunner(func(ctx context.Context, job *core.Job) ([]byte, error) {
		return nil, nil
	})
	go Serve(ctx, l, WorkerConfig{Name: "bench", Slots: 8, Runner: noop})
	pool, err := Dial([]WorkerSpec{{Addr: l.Addr().String()}})
	if err != nil {
		b.Fatal(err)
	}
	defer pool.Close()

	spec, _ := core.NewSpec("", pool.Slots())
	eng, _ := core.NewEngine(spec, pool)
	items := make([]string, b.N)
	b.ResetTimer()
	start := time.Now()
	stats, _, err := eng.Run(context.Background(), args.Literal(items...))
	if err != nil || stats.Succeeded != b.N {
		b.Fatalf("stats=%+v err=%v", stats, err)
	}
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "jobs/s")
}
