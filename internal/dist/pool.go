package dist

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// WorkerSpec names one worker to dial.
type WorkerSpec struct {
	// Addr is the worker's TCP address (host:port).
	Addr string
	// Slots caps connections to this worker; 0 uses the count the
	// worker advertises.
	Slots int
}

// Pool is a core.Runner that executes jobs on remote workers. It holds
// one TCP connection per worker slot; Run borrows a free connection,
// ships the job, and returns the result. Transport failures surface as
// job errors (so Spec.Retries re-runs them, potentially on another
// worker), and broken connections are redialed in the background — up
// to a per-slot budget, after which the slot is written off and the
// pool runs degraded (visible via Health) rather than spinning on a
// permanently dead worker forever.
type Pool struct {
	free   chan *wconn
	total  int
	closed chan struct{}
	mu     sync.Mutex
	conns  map[*wconn]bool

	// redialBudget caps redial attempts per retired connection; <= 0
	// means unlimited (the pre-budget behavior).
	redialBudget int
	// maxProtocol caps the protocol version the pool negotiates
	// (0 = the highest this build speaks).
	maxProtocol int
	// deflateThreshold is the v3 payload size above which stdin ships
	// deflated (0 = DefaultDeflateThreshold, negative = off).
	deflateThreshold int
	// wire counts framed traffic (v2/v3) across all the pool's
	// sessions.
	wire      WireStats
	redialing atomic.Int64
	lost      atomic.Int64

	// onHealth, when non-nil, is invoked with the current Health after
	// every capacity change (connection retired, redial succeeded,
	// slot written off). Called from Run and redialer goroutines: keep
	// it fast and concurrency-safe.
	onHealth func(Health)

	// snaps holds the latest telemetry snapshot piggybacked by each
	// worker, keyed by worker name.
	snapMu sync.Mutex
	snaps  map[string]telemetry.Snapshot
}

// DefaultRedialBudget is the redial-attempt cap applied when Dial is
// given no WithRedialBudget option. With the 100ms..5s exponential
// redial backoff this gives a dead worker roughly half a minute to come
// back before its slot is written off.
const DefaultRedialBudget = 8

// Option configures Dial.
type Option func(*Pool)

// WithRedialBudget overrides the redial-attempt cap for broken
// connections. n <= 0 retries forever.
func WithRedialBudget(n int) Option {
	return func(p *Pool) { p.redialBudget = n }
}

// WithMaxProtocol caps the protocol version the pool negotiates with
// workers (0 = the highest this build speaks). Pinning 1 forces the
// line-delimited one-job-per-connection dialect even against v2-capable
// workers — the interop escape hatch and the baseline for the batching
// benchmarks.
func WithMaxProtocol(v int) Option {
	return func(p *Pool) { p.maxProtocol = v }
}

// WithDeflateThreshold sets the v3 payload size (bytes) above which the
// coordinator ships stdin deflated. 0 keeps DefaultDeflateThreshold;
// negative disables compression entirely.
func WithDeflateThreshold(n int) Option {
	return func(p *Pool) { p.deflateThreshold = n }
}

// WithHealthNotify registers fn to receive the pool's Health after
// every capacity change — the hook the CLI uses to warn the moment a
// pool first degrades instead of degrading silently. fn runs on pool
// goroutines; it must be fast and safe for concurrent use.
func WithHealthNotify(fn func(Health)) Option {
	return func(p *Pool) { p.onHealth = fn }
}

// Health is a point-in-time capacity gauge for a pool.
type Health struct {
	// Total is the slot count established at Dial time.
	Total int
	// Live slots hold a healthy worker connection (free or running a
	// job).
	Live int
	// Redialing slots lost their connection and are reconnecting in
	// the background.
	Redialing int
	// Lost slots exhausted their redial budget; the pool's capacity is
	// permanently reduced by this many until Close.
	Lost int
	// Protocols maps each currently-connected worker name to its
	// negotiated protocol version, so mixed-fleet rollouts are
	// observable after the handshake (satellite: version was previously
	// invisible once Dial returned). Workers whose connections are all
	// down are absent until a redial restores them.
	Protocols map[string]int
}

// Degraded reports whether any capacity is currently missing.
func (h Health) Degraded() bool { return h.Live < h.Total }

// Health reports the pool's current capacity state.
func (p *Pool) Health() Health {
	p.mu.Lock()
	live := len(p.conns)
	protos := make(map[string]int, 4)
	for c := range p.conns {
		protos[c.name] = c.proto
	}
	p.mu.Unlock()
	return Health{
		Total:     p.total,
		Live:      live,
		Redialing: int(p.redialing.Load()),
		Lost:      int(p.lost.Load()),
		Protocols: protos,
	}
}

// Wire exposes the pool's framed-traffic counters (bytes, frames,
// compression ratio across its v2/v3 sessions).
func (p *Pool) Wire() *WireStats { return &p.wire }

// storeSnap files the latest telemetry snapshot piggybacked by a
// worker (per response on v2, per result frame on v3).
func (p *Pool) storeSnap(s telemetry.Snapshot) {
	p.snapMu.Lock()
	p.snaps[s.Worker] = s
	p.snapMu.Unlock()
}

// wconn is one slot token. For protocol v1 it owns a dedicated TCP
// connection (c is its codec, sess is nil). For protocols v2/v3 it is a
// virtual slot of a multiplexed session: slots-many tokens share one
// sess (and its nc), and c is nil — capacity control still flows
// through the same free channel either way.
type wconn struct {
	name  string
	addr  string
	proto int // negotiated protocol version for this slot's connection
	nc    net.Conn
	c     *codec
	sess  *session
}

// Dial connects to every worker and returns the pool. It fails if any
// worker is unreachable or speaks the wrong protocol version.
func Dial(specs []WorkerSpec, opts ...Option) (*Pool, error) {
	if len(specs) == 0 {
		return nil, errors.New("dist: no workers given")
	}
	p := &Pool{
		closed:       make(chan struct{}),
		conns:        map[*wconn]bool{},
		redialBudget: DefaultRedialBudget,
		snaps:        map[string]telemetry.Snapshot{},
	}
	for _, opt := range opts {
		opt(p)
	}
	if p.maxProtocol <= 0 || p.maxProtocol > protocolMax {
		p.maxProtocol = protocolMax
	}
	var all []*wconn
	var sessions []*session
	for _, spec := range specs {
		first, sess, h, err := p.dialAny(spec.Addr)
		if err != nil {
			closeAll(all)
			return nil, err
		}
		slots := h.Slots
		if spec.Slots > 0 && spec.Slots < slots {
			slots = spec.Slots
		}
		if sess != nil {
			// One multiplexed connection carries the worker's whole slot
			// pool; hand out slots-many virtual tokens for it.
			sess.slots = slots
			sessions = append(sessions, sess)
			for i := 0; i < slots; i++ {
				all = append(all, &wconn{name: h.Name, addr: spec.Addr, proto: sess.proto, nc: sess.nc, sess: sess})
			}
			continue
		}
		all = append(all, first)
		for i := 1; i < slots; i++ {
			c, _, err := dialWorker(spec.Addr)
			if err != nil {
				closeAll(all)
				return nil, fmt.Errorf("dist: opening slot %d to %s: %w", i+1, spec.Addr, err)
			}
			all = append(all, c)
		}
	}
	p.total = len(all)
	p.free = make(chan *wconn, p.total)
	for _, c := range all {
		p.conns[c] = true
		p.free <- c
	}
	// Hooked up only after the tokens are registered, so a proactive
	// retirement never races the registration it has to undo.
	for _, sess := range sessions {
		sess := sess
		sess.setOnFail(func() { p.retireSession(sess) })
	}
	return p, nil
}

// dialAny connects to addr and negotiates the best protocol both sides
// speak: min(worker's hello.max_version, the pool's cap). Version 2 or
// 3 yields a multiplexed session (JSON frames vs binary frames);
// everything else yields a plain v1 connection exactly as before.
func (p *Pool) dialAny(addr string) (*wconn, *session, hello, error) {
	nc, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, nil, hello{}, fmt.Errorf("dist: dialing %s: %w", addr, err)
	}
	br := bufio.NewReader(nc)
	bw := bufio.NewWriter(nc)
	c := newCodecRW(br, bw)
	var h hello
	nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	if err := c.recv(&h); err != nil {
		nc.Close()
		return nil, nil, hello{}, fmt.Errorf("dist: handshake with %s: %w", addr, err)
	}
	nc.SetReadDeadline(time.Time{})
	if err := checkHello(h); err != nil {
		nc.Close()
		return nil, nil, hello{}, err
	}
	if h.MaxVersion >= 2 && p.maxProtocol >= 2 {
		ver := h.MaxVersion
		if p.maxProtocol < ver {
			ver = p.maxProtocol
		}
		if protocolMax < ver {
			ver = protocolMax
		}
		if err := c.send(upgrade{Upgrade: ver}); err != nil {
			nc.Close()
			return nil, nil, hello{}, fmt.Errorf("dist: upgrading %s: %w", addr, err)
		}
		// The JSON decoder may have buffered bytes past the hello; the
		// frame reader must see them first. v3 gets deep buffers so a
		// full coalesced frame moves in one syscall each way (the
		// handshake flushed bw, so a fresh writer on nc is safe).
		fr := bufio.NewReader(io.MultiReader(c.leftover(), br))
		sw := bw
		if ver >= 3 {
			fr = bufio.NewReaderSize(io.MultiReader(c.leftover(), br), v3BufSize)
			sw = bufio.NewWriterSize(nc, v3BufSize)
		}
		deflateMin := resolveDeflateMin(p.deflateThreshold)
		return nil, newSession(h.Name, addr, nc, fr, sw, ver, deflateMin, &p.wire, p.storeSnap), h, nil
	}
	return &wconn{name: h.Name, addr: addr, proto: 1, nc: nc, c: c}, nil, h, nil
}

// dialWorker opens one plain v1 connection (no upgrade offer). Used for
// the extra per-slot connections to v1 workers and their redials.
func dialWorker(addr string) (*wconn, hello, error) {
	nc, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, hello{}, fmt.Errorf("dist: dialing %s: %w", addr, err)
	}
	c := newCodec(nc)
	var h hello
	nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	if err := c.recv(&h); err != nil {
		nc.Close()
		return nil, hello{}, fmt.Errorf("dist: handshake with %s: %w", addr, err)
	}
	nc.SetReadDeadline(time.Time{})
	if err := checkHello(h); err != nil {
		nc.Close()
		return nil, hello{}, err
	}
	return &wconn{name: h.Name, addr: addr, proto: 1, nc: nc, c: c}, h, nil
}

func closeAll(conns []*wconn) {
	for _, c := range conns {
		c.nc.Close()
	}
}

// Slots returns the pool's total concurrent capacity — the natural
// Spec.Jobs for an engine driving this pool.
func (p *Pool) Slots() int { return p.total }

// Close shuts every connection. In-flight jobs fail.
func (p *Pool) Close() {
	select {
	case <-p.closed:
		return
	default:
		close(p.closed)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for c := range p.conns {
		c.nc.Close()
	}
}

// Run implements core.Runner.
func (p *Pool) Run(ctx context.Context, job *core.Job) core.Result {
	res := core.Result{Job: *job, ExitCode: -1, Start: time.Now()}
	var conn *wconn
	for conn == nil {
		select {
		case c := <-p.free:
			// Discard stale tokens of sessions that died while the token
			// sat in the free channel; retireSession already accounted
			// for the capacity.
			if c.sess != nil && c.sess.isDead() {
				continue
			}
			conn = c
		case <-ctx.Done():
			res.Err = ctx.Err()
			res.End = time.Now()
			return res
		case <-p.closed:
			res.Err = errors.New("dist: pool closed")
			res.End = time.Now()
			return res
		}
	}
	res.Host = conn.name

	req := request{
		Seq:     job.Seq,
		Slot:    job.Slot,
		Command: job.Command,
		Args:    job.Args,
		Env:     job.Env,
		Stdin:   job.Stdin,
	}
	if dl, ok := ctx.Deadline(); ok {
		if left := time.Until(dl); left > 0 {
			req.TimeoutNS = left.Nanoseconds()
		}
	}

	if conn.sess != nil {
		return p.runSession(ctx, conn, req, res)
	}

	// Unblock the connection read if ctx is cancelled mid-job.
	watchDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			conn.nc.SetDeadline(time.Now())
		case <-watchDone:
		}
	}()

	var resp response
	err := conn.c.send(req)
	if err == nil {
		err = conn.c.recv(&resp)
	}
	close(watchDone)
	res.End = time.Now()

	if err != nil {
		// Transport failure: retire the connection and redial in the
		// background so capacity recovers.
		p.retire(conn)
		if ctx.Err() != nil {
			res.Err = ctx.Err()
		} else {
			res.Err = fmt.Errorf("dist: worker %s: %w", conn.name, err)
		}
		return res
	}
	conn.nc.SetDeadline(time.Time{})
	p.free <- conn

	p.applyResponse(&res, &resp)
	return res
}

// runSession ships one job over a multiplexed v2/v3 session. A context
// cancellation abandons the job but keeps the session (and its token)
// alive; only transport failures retire the whole session.
func (p *Pool) runSession(ctx context.Context, conn *wconn, req request, res core.Result) core.Result {
	resp, err := conn.sess.roundTrip(ctx, req)
	res.End = time.Now()
	if err != nil {
		if ctx.Err() != nil && !conn.sess.isDead() {
			p.free <- conn
			res.Err = ctx.Err()
			return res
		}
		p.retireSession(conn.sess)
		if ctx.Err() != nil {
			res.Err = ctx.Err()
		} else {
			res.Err = fmt.Errorf("dist: worker %s: %w", conn.name, err)
		}
		return res
	}
	p.free <- conn
	p.applyResponse(&res, &resp)
	return res
}

// applyResponse maps a wire response onto a core.Result and files the
// piggybacked telemetry snapshot. Shared by all protocol dialects (v3
// responses carry no per-response snapshot — the session files one per
// frame through storeSnap instead).
func (p *Pool) applyResponse(res *core.Result, resp *response) {
	if resp.Telemetry != nil {
		p.storeSnap(*resp.Telemetry)
	}
	res.ExitCode = resp.ExitCode
	res.Stdout = resp.Stdout
	res.Stderr = resp.Stderr
	res.TimedOut = resp.TimedOut
	if resp.StartNS > 0 {
		res.Start = nsToTime(resp.StartNS)
	}
	if resp.EndNS > 0 {
		res.End = nsToTime(resp.EndNS)
	}
	// Worker-side dispatch overhead (receive→process-start), measured on
	// the worker's own clock so it needs no cross-host clock agreement.
	// Old workers omit RecvNS and the attribution stays zero.
	if resp.RecvNS > 0 && resp.StartNS > resp.RecvNS {
		res.WorkerDispatch = time.Duration(resp.StartNS - resp.RecvNS)
	}
	res.StdinSent = resp.SentBytes
	if resp.Err != "" {
		res.Err = errors.New(resp.Err)
	}
}

// retire closes a broken connection and starts a background redialer
// that restores the slot when the worker comes back. The redialer gives
// up after the pool's redial budget, permanently degrading capacity
// (recorded in Health.Lost) instead of spinning on a dead worker.
func (p *Pool) retire(c *wconn) {
	c.nc.Close()
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
	p.redialing.Add(1)
	p.notifyHealth()
	go func(addr string) {
		restored := p.redialLoop(addr)
		p.redialing.Add(-1)
		select {
		case <-p.closed:
		default:
			if !restored {
				p.lost.Add(1)
			}
			p.notifyHealth()
		}
	}(c.addr)
}

// redialLoop tries to re-establish one slot's connection within the
// redial budget. It reports whether capacity was restored; a false
// return after pool close does not mean the slot is lost.
func (p *Pool) redialLoop(addr string) bool {
	backoff := 100 * time.Millisecond
	for attempt := 1; p.redialBudget <= 0 || attempt <= p.redialBudget; attempt++ {
		select {
		case <-p.closed:
			return false
		case <-time.After(backoff):
		}
		nc, _, err := dialWorker(addr)
		if err == nil {
			p.mu.Lock()
			select {
			case <-p.closed:
				p.mu.Unlock()
				nc.nc.Close()
				return false
			default:
			}
			p.conns[nc] = true
			p.mu.Unlock()
			p.free <- nc
			return true
		}
		if backoff < 5*time.Second {
			backoff *= 2
		}
	}
	return false
}

// retireSession tears down a failed v2/v3 session: every virtual token is
// withdrawn (the free channel is swept; tokens held by in-flight Runs
// are simply never returned), the full slot count moves to Redialing,
// and one background redialer tries to restore the worker. sync.Once
// makes the accounting single-shot even though every in-flight Run on
// the session reports the same failure.
func (p *Pool) retireSession(s *session) {
	s.retired.Do(func() {
		s.fail()
		select {
		case <-p.closed:
			// Close tears down every session; that is shutdown, not a
			// capacity loss to account or redial.
			return
		default:
		}
		p.mu.Lock()
		for c := range p.conns {
			if c.sess == s {
				delete(p.conns, c)
			}
		}
		p.mu.Unlock()
		// Sweep stale tokens out of the free channel so restored
		// capacity cannot overflow it. Bounded pass: each live token is
		// taken out once and put back once.
		n := len(p.free)
		for i := 0; i < n; i++ {
			select {
			case c := <-p.free:
				if c.sess != s {
					p.free <- c
				}
			default:
				i = n
			}
		}
		p.redialing.Add(int64(s.slots))
		p.notifyHealth()
		go func() {
			restored := p.redialSessionLoop(s.addr, s.slots)
			p.redialing.Add(int64(-s.slots))
			select {
			case <-p.closed:
			default:
				if restored < s.slots {
					p.lost.Add(int64(s.slots - restored))
				}
				p.notifyHealth()
			}
		}()
	})
}

// redialSessionLoop tries to restore a whole worker's capacity (up to
// slots) within the redial budget, renegotiating the protocol from
// scratch — a worker that restarted with a different version is picked
// up in whatever dialect it now speaks. Returns how many slots came
// back.
func (p *Pool) redialSessionLoop(addr string, slots int) int {
	backoff := 100 * time.Millisecond
	for attempt := 1; p.redialBudget <= 0 || attempt <= p.redialBudget; attempt++ {
		select {
		case <-p.closed:
			return 0
		case <-time.After(backoff):
		}
		if restored, ok := p.restoreWorker(addr, slots); ok {
			return restored
		}
		if backoff < 5*time.Second {
			backoff *= 2
		}
	}
	return 0
}

// restoreWorker performs one reconnection attempt for a retired
// session's worker and registers whatever capacity it yields.
func (p *Pool) restoreWorker(addr string, slots int) (int, bool) {
	w1, sess, h, err := p.dialAny(addr)
	if err != nil {
		return 0, false
	}
	var conns []*wconn
	if sess != nil {
		n := h.Slots
		if slots < n {
			n = slots
		}
		sess.slots = n
		for i := 0; i < n; i++ {
			conns = append(conns, &wconn{name: h.Name, addr: addr, proto: sess.proto, nc: sess.nc, sess: sess})
		}
	} else {
		conns = append(conns, w1)
		for i := 1; i < slots; i++ {
			c, _, err := dialWorker(addr)
			if err != nil {
				break
			}
			conns = append(conns, c)
		}
	}
	p.mu.Lock()
	select {
	case <-p.closed:
		p.mu.Unlock()
		for _, c := range conns {
			c.nc.Close()
		}
		return 0, false
	default:
	}
	for _, c := range conns {
		p.conns[c] = true
	}
	p.mu.Unlock()
	for _, c := range conns {
		p.free <- c
	}
	if sess != nil {
		sess.setOnFail(func() { p.retireSession(sess) })
	}
	return len(conns), true
}

// notifyHealth delivers the current Health to the WithHealthNotify
// callback, if any.
func (p *Pool) notifyHealth() {
	if p.onHealth != nil {
		p.onHealth(p.Health())
	}
}

// WorkerSnapshots returns the latest telemetry snapshot piggybacked by
// each worker, sorted by worker name. Workers that have not completed
// a job yet are absent.
func (p *Pool) WorkerSnapshots() []telemetry.Snapshot {
	p.snapMu.Lock()
	out := make([]telemetry.Snapshot, 0, len(p.snaps))
	for _, s := range p.snaps {
		out = append(out, s)
	}
	p.snapMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Worker < out[j].Worker })
	return out
}

// RegisterMetrics exposes the pool's health gauge and per-worker
// series on reg, making the coordinator's /metrics endpoint the single
// scrape point for fleet-wide state (gopar -S --metrics-addr).
func (p *Pool) RegisterMetrics(reg *telemetry.Registry) {
	healthGauge := func(get func(Health) int) func() float64 {
		return func() float64 { return float64(get(p.Health())) }
	}
	reg.GaugeFunc("gopar_pool_slots", "Worker pool capacity, by slot state.",
		healthGauge(func(h Health) int { return h.Total }), telemetry.L("state", "total"))
	reg.GaugeFunc("gopar_pool_slots", "Worker pool capacity, by slot state.",
		healthGauge(func(h Health) int { return h.Live }), telemetry.L("state", "live"))
	reg.GaugeFunc("gopar_pool_slots", "Worker pool capacity, by slot state.",
		healthGauge(func(h Health) int { return h.Redialing }), telemetry.L("state", "redialing"))
	reg.GaugeFunc("gopar_pool_slots", "Worker pool capacity, by slot state.",
		healthGauge(func(h Health) int { return h.Lost }), telemetry.L("state", "lost"))

	// Wire-path traffic: bytes/frames shipped over framed dialects and
	// the achieved compression ratio.
	p.wire.Register(reg, "gopar_dist")

	// Per-worker series: the worker set is dynamic (snapshots arrive
	// with responses, protocol versions change across redials), so emit
	// them as a raw exposition block.
	reg.RegisterText(func(w io.Writer) {
		h := p.Health()
		if len(h.Protocols) > 0 {
			names := make([]string, 0, len(h.Protocols))
			for name := range h.Protocols {
				names = append(names, name)
			}
			sort.Strings(names)
			fmt.Fprintln(w, "# HELP gopar_pool_worker_protocol Negotiated dist protocol version per connected worker.")
			fmt.Fprintln(w, "# TYPE gopar_pool_worker_protocol gauge")
			for _, name := range names {
				fmt.Fprintf(w, "gopar_pool_worker_protocol{worker=%q} %d\n", name, h.Protocols[name])
			}
		}
		snaps := p.WorkerSnapshots()
		if len(snaps) == 0 {
			return
		}
		fmt.Fprintln(w, "# HELP gopar_worker_busy Jobs the worker is executing right now.")
		fmt.Fprintln(w, "# TYPE gopar_worker_busy gauge")
		for _, s := range snaps {
			fmt.Fprintf(w, "gopar_worker_busy{worker=%q} %d\n", s.Worker, s.Busy)
		}
		fmt.Fprintln(w, "# HELP gopar_worker_slots Advertised worker slot count.")
		fmt.Fprintln(w, "# TYPE gopar_worker_slots gauge")
		for _, s := range snaps {
			fmt.Fprintf(w, "gopar_worker_slots{worker=%q} %d\n", s.Worker, s.Slots)
		}
		fmt.Fprintln(w, "# HELP gopar_worker_jobs_total Jobs finished per worker, by outcome.")
		fmt.Fprintln(w, "# TYPE gopar_worker_jobs_total gauge")
		for _, s := range snaps {
			fmt.Fprintf(w, "gopar_worker_jobs_total{worker=%q,outcome=\"ok\"} %d\n", s.Worker, s.OK)
			fmt.Fprintf(w, "gopar_worker_jobs_total{worker=%q,outcome=\"fail\"} %d\n", s.Worker, s.Failed)
		}
	})
}
