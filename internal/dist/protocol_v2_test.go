package dist

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/args"
	"repro/internal/core"
)

// poolSessions counts how many distinct multiplexed (v2/v3) sessions
// back the pool's slot tokens (0 = pure v1 pool).
func poolSessions(p *Pool) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	seen := map[*session]bool{}
	for c := range p.conns {
		if c.sess != nil {
			seen[c.sess] = true
		}
	}
	return len(seen)
}

// TestPoolNegotiatesV2 pins that a coordinator capped at protocol 2
// still lands on the batched JSON dialect against a newer worker —
// without this, a negotiation regression would silently fall back to v1
// and every other test would still pass. (Uncapped peers negotiate v3;
// see TestPoolNegotiatesV3.)
func TestPoolNegotiatesV2(t *testing.T) {
	addr := startWorker(t, "w2", 4, echoRunner("w2"))
	pool, err := Dial([]WorkerSpec{{Addr: addr}}, WithMaxProtocol(2))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if n := poolSessions(pool); n != 1 {
		t.Fatalf("pool uses %d v2 sessions, want 1", n)
	}
	if v := pool.Health().Protocols["w2"]; v != 2 {
		t.Fatalf("negotiated protocol %d, want 2", v)
	}
	if pool.Slots() != 4 {
		t.Fatalf("slots = %d, want 4 virtual tokens on one session", pool.Slots())
	}
	// All four slots execute concurrently over the single connection.
	var inflight, peak atomic.Int64
	blocker := core.FuncRunner(func(ctx context.Context, job *core.Job) ([]byte, error) {
		cur := inflight.Add(1)
		for {
			old := peak.Load()
			if cur <= old || peak.CompareAndSwap(old, cur) {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
		inflight.Add(-1)
		return []byte("ok"), nil
	})
	addr2 := startWorker(t, "wc", 4, blocker)
	pool2, err := Dial([]WorkerSpec{{Addr: addr2}})
	if err != nil {
		t.Fatal(err)
	}
	defer pool2.Close()
	spec, _ := core.NewSpec("", pool2.Slots())
	eng, _ := core.NewEngine(spec, pool2)
	stats, _, err := eng.Run(context.Background(), args.Literal("a", "b", "c", "d", "e", "f", "g", "h"))
	if err != nil || stats.Succeeded != 8 {
		t.Fatalf("stats=%+v err=%v", stats, err)
	}
	if peak.Load() < 2 {
		t.Fatalf("peak concurrency %d over one multiplexed connection, want >= 2", peak.Load())
	}
}

// TestPoolBatchedRoundTripOrderAndPayloads pushes enough concurrent
// jobs through one v2 session to force multi-item frames in both
// directions, then checks every job's payload round-tripped intact and
// landed on the right seq.
func TestPoolBatchedRoundTripOrderAndPayloads(t *testing.T) {
	echo := core.FuncRunner(func(ctx context.Context, job *core.Job) ([]byte, error) {
		out := fmt.Sprintf("%d:%s:%s", job.Seq, job.Args[0], string(job.Stdin))
		return []byte(out), nil
	})
	addr := startWorker(t, "batchy", 8, echo)
	pool, err := Dial([]WorkerSpec{{Addr: addr}})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	const jobs = 200
	results := make([]core.Result, jobs)
	done := make(chan int, jobs)
	for i := 0; i < jobs; i++ {
		go func(i int) {
			seq := i + 1
			results[i] = pool.Run(context.Background(), &core.Job{
				Seq:   seq,
				Args:  []string{fmt.Sprintf("arg%d", seq)},
				Stdin: []byte(fmt.Sprintf("in%d", seq)),
			})
			done <- i
		}(i)
	}
	for i := 0; i < jobs; i++ {
		<-done
	}
	for i, res := range results {
		seq := i + 1
		if !res.OK() {
			t.Fatalf("job %d failed: %+v", seq, res)
		}
		want := fmt.Sprintf("%d:arg%d:in%d", seq, seq, seq)
		if string(res.Stdout) != want {
			t.Fatalf("job %d stdout = %q, want %q (response mux mismatch)", seq, res.Stdout, want)
		}
	}
}

// TestMixedVersionOldWorker covers a pre-batching worker (pinned to
// protocol 1) against a current coordinator: the worker never announces
// max_version, the coordinator must stay on v1, and jobs complete.
func TestMixedVersionOldWorker(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go Serve(ctx, l, WorkerConfig{
		Name: "old", Slots: 2, Runner: echoRunner("old"), MaxProtocol: 1,
	})

	pool, err := Dial([]WorkerSpec{{Addr: l.Addr().String()}})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if n := poolSessions(pool); n != 0 {
		t.Fatalf("coordinator upgraded a v1-only worker (%d sessions)", n)
	}
	if pool.Slots() != 2 {
		t.Fatalf("slots = %d", pool.Slots())
	}
	for seq := 1; seq <= 10; seq++ {
		res := pool.Run(context.Background(), &core.Job{Seq: seq, Args: []string{fmt.Sprint(seq)}})
		if !res.OK() || string(res.Stdout) != fmt.Sprintf("old:%d\n", seq) {
			t.Fatalf("seq %d: %+v", seq, res)
		}
	}
}

// TestMixedVersionOldCoordinator covers the inverse skew: a coordinator
// pinned to protocol 1 (standing in for a pre-batching build, which
// sends no upgrade) against a current worker.
func TestMixedVersionOldCoordinator(t *testing.T) {
	addr := startWorker(t, "neww", 2, echoRunner("new"))
	pool, err := Dial([]WorkerSpec{{Addr: addr}}, WithMaxProtocol(1))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if n := poolSessions(pool); n != 0 {
		t.Fatalf("pinned coordinator still negotiated %d sessions", n)
	}
	for seq := 1; seq <= 10; seq++ {
		res := pool.Run(context.Background(), &core.Job{Seq: seq, Args: []string{fmt.Sprint(seq)}})
		if !res.OK() || string(res.Stdout) != fmt.Sprintf("new:%d\n", seq) {
			t.Fatalf("seq %d: %+v", seq, res)
		}
	}
}

// TestV2SessionLossRetiresAllSlots kills a multiplexed worker mid-run
// and checks the whole slot block moves through Redialing to Lost —
// session death must not strand virtual tokens.
func TestV2SessionLossRetiresAllSlots(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	var conns []net.Conn
	accepted := make(chan net.Conn, 4)
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			accepted <- conn
			go serveConn(ctx, conn, WorkerConfig{Name: "doomed", Slots: 3, Runner: echoRunner("d")})
		}
	}()

	pool, err := Dial([]WorkerSpec{{Addr: l.Addr().String()}}, WithRedialBudget(1))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if h := pool.Health(); h.Total != 3 || h.Live != 3 {
		t.Fatalf("initial health = %+v", h)
	}
	if res := pool.Run(context.Background(), &core.Job{Seq: 1, Args: []string{"x"}}); !res.OK() {
		t.Fatalf("warm-up job: %+v", res)
	}

	cancel()
	l.Close()
	for {
		select {
		case c := <-accepted:
			conns = append(conns, c)
			continue
		default:
		}
		break
	}
	for _, c := range conns {
		c.Close()
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		h := pool.Health()
		if h.Lost == 3 && h.Redialing == 0 && h.Live == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("session loss never fully accounted: %+v", h)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// FuzzFrameDecoder throws arbitrary bytes at the v2 frame/batch decoder:
// it must return data or an error, never panic or over-allocate.
func FuzzFrameDecoder(f *testing.F) {
	// Valid seeds: an empty batch, a job batch, a result batch, a
	// truncated frame, and an oversized header.
	seed := func(b batch) []byte {
		var buf bytes.Buffer
		bw := bufio.NewWriter(&buf)
		if err := writeBatch(bw, &b, nil); err != nil {
			f.Fatal(err)
		}
		bw.Flush()
		return buf.Bytes()
	}
	f.Add(seed(batch{}))
	f.Add(seed(batch{Jobs: []request{{Seq: 1, Command: "echo hi", Stdin: []byte("x")}}}))
	f.Add(seed(batch{Results: []response{{Seq: 2, ExitCode: 1, Stderr: []byte("boom")}}}))
	f.Add([]byte{0, 0, 0, 9, '{'})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		for i := 0; i < 4; i++ { // a stream may hold several frames
			b, err := readBatch(br, nil)
			if err != nil {
				return
			}
			if len(b.Jobs) == 0 && len(b.Results) == 0 {
				continue
			}
		}
	})
}

// TestFrameRoundTrip pins the framing layer itself: batches survive an
// encode/decode cycle byte-exactly, and the batch writer coalesces a
// queued burst into fewer frames than messages.
func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	in := batch{Jobs: []request{
		{Seq: 1, Command: "a", Env: []string{"K=V"}},
		{Seq: 2, Command: "b", Stdin: []byte{0, 1, 2}},
	}}
	if err := writeBatch(bw, &in, nil); err != nil {
		t.Fatal(err)
	}
	bw.Flush()
	out, err := readBatch(bufio.NewReader(&buf), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Jobs) != 2 || out.Jobs[0].Command != "a" || out.Jobs[1].Seq != 2 ||
		!bytes.Equal(out.Jobs[1].Stdin, []byte{0, 1, 2}) || out.Jobs[0].Env[0] != "K=V" {
		t.Fatalf("round trip mangled batch: %+v", out)
	}

	// Coalescing: 50 queued messages leave as a single frame.
	buf.Reset()
	bw = bufio.NewWriter(&buf)
	ch := make(chan request, 64)
	for i := 0; i < 50; i++ {
		ch <- request{Seq: i}
	}
	close(ch)
	if err := batchWriter(bw, ch, nil, nil, func(rs []request) batch { return batch{Jobs: rs} }); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(&buf)
	b, err := readBatch(br, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Jobs) != 50 {
		t.Fatalf("first frame carries %d jobs, want all 50 coalesced", len(b.Jobs))
	}
	if _, err := readBatch(br, nil); err == nil {
		t.Fatal("unexpected extra frame after coalesced burst")
	}
}

// TestFrameSizeLimit pins both directions of the frame cap.
func TestFrameSizeLimit(t *testing.T) {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if err := writeFrame(bw, make([]byte, maxFrame+1)); err == nil {
		t.Fatal("writeFrame accepted an oversized payload")
	}
	hdr := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := readFrame(bufio.NewReader(bytes.NewReader(hdr))); err == nil {
		t.Fatal("readFrame accepted an oversized header")
	}
}
