// Package transfer implements the §IV-E data-motion substrate: virtual
// file trees with checksums, rsync-style incremental deltas, a simulated
// scheduled DTN (data transfer node) cluster that reproduces the paper's
// 256-stream parallel migration, and a real parallel incremental
// tree-copy used by cmd/dtncp.
package transfer

import (
	"fmt"
	"math/rand/v2"
	"sort"
)

// File is one entry of a virtual tree.
type File struct {
	Path string
	Size int64
	Hash uint64 // content checksum
}

// Tree is a virtual file tree (path-indexed).
type Tree struct {
	files map[string]File
}

// NewTree returns an empty tree.
func NewTree() *Tree { return &Tree{files: map[string]File{}} }

// Add inserts or replaces a file.
func (t *Tree) Add(f File) { t.files[f.Path] = f }

// Remove deletes a path (no-op if absent).
func (t *Tree) Remove(path string) { delete(t.files, path) }

// Lookup returns the file at path.
func (t *Tree) Lookup(path string) (File, bool) {
	f, ok := t.files[path]
	return f, ok
}

// Len returns the number of files.
func (t *Tree) Len() int { return len(t.files) }

// TotalBytes sums file sizes.
func (t *Tree) TotalBytes() int64 {
	var n int64
	for _, f := range t.files {
		n += f.Size
	}
	return n
}

// Files returns all files sorted by path (deterministic iteration).
func (t *Tree) Files() []File {
	out := make([]File, 0, len(t.files))
	for _, f := range t.files {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Delta returns the files in src that are missing from dst or differ in
// size/checksum — rsync's incremental transfer set, in src path order.
func Delta(src, dst *Tree) []File {
	var out []File
	for _, f := range src.Files() {
		if g, ok := dst.files[f.Path]; !ok || g.Size != f.Size || g.Hash != f.Hash {
			out = append(out, f)
		}
	}
	return out
}

// GenerateTree builds a synthetic project tree: nfiles files across
// nested directories with lognormal-ish sizes around meanSize bytes.
// Deterministic per seed.
func GenerateTree(nfiles int, meanSize int64, seed uint64) *Tree {
	rng := rand.New(rand.NewPCG(seed, seed^0x5DEECE66D))
	t := NewTree()
	for i := 0; i < nfiles; i++ {
		depth := 1 + rng.IntN(4)
		path := "proj"
		for d := 0; d < depth; d++ {
			path += fmt.Sprintf("/d%02d", rng.IntN(20))
		}
		path += fmt.Sprintf("/file%06d.dat", i)
		// Heavy-ish tail: most files small, some large.
		size := int64(float64(meanSize) * rng.ExpFloat64())
		if size < 1 {
			size = 1
		}
		t.Add(File{Path: path, Size: size, Hash: rng.Uint64()})
	}
	return t
}

// Mutate returns a copy of t with roughly frac of files modified (new
// hash) — for incremental-sync testing.
func Mutate(t *Tree, frac float64, seed uint64) *Tree {
	rng := rand.New(rand.NewPCG(seed, seed^0xBADDCAFE))
	out := NewTree()
	for _, f := range t.Files() {
		if rng.Float64() < frac {
			f.Hash = rng.Uint64()
		}
		out.Add(f)
	}
	return out
}
