package transfer

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/sim"
)

func TestTreeBasics(t *testing.T) {
	tr := NewTree()
	tr.Add(File{Path: "b", Size: 2, Hash: 1})
	tr.Add(File{Path: "a", Size: 1, Hash: 2})
	if tr.Len() != 2 || tr.TotalBytes() != 3 {
		t.Fatalf("len=%d bytes=%d", tr.Len(), tr.TotalBytes())
	}
	files := tr.Files()
	if files[0].Path != "a" || files[1].Path != "b" {
		t.Fatalf("files not sorted: %v", files)
	}
	if _, ok := tr.Lookup("a"); !ok {
		t.Fatal("lookup failed")
	}
	tr.Remove("a")
	if tr.Len() != 1 {
		t.Fatal("remove failed")
	}
}

func TestDelta(t *testing.T) {
	src := NewTree()
	src.Add(File{Path: "same", Size: 10, Hash: 1})
	src.Add(File{Path: "changed", Size: 10, Hash: 2})
	src.Add(File{Path: "resized", Size: 20, Hash: 3})
	src.Add(File{Path: "new", Size: 5, Hash: 4})
	dst := NewTree()
	dst.Add(File{Path: "same", Size: 10, Hash: 1})
	dst.Add(File{Path: "changed", Size: 10, Hash: 99})
	dst.Add(File{Path: "resized", Size: 10, Hash: 3})
	dst.Add(File{Path: "extra", Size: 1, Hash: 5})

	d := Delta(src, dst)
	want := map[string]bool{"changed": true, "resized": true, "new": true}
	if len(d) != 3 {
		t.Fatalf("delta = %v", d)
	}
	for _, f := range d {
		if !want[f.Path] {
			t.Fatalf("unexpected delta entry %q", f.Path)
		}
	}
	// Identical trees: empty delta.
	if len(Delta(src, src)) != 0 {
		t.Fatal("self-delta not empty")
	}
}

func TestGenerateTreeDeterministic(t *testing.T) {
	a := GenerateTree(500, 1<<20, 9)
	b := GenerateTree(500, 1<<20, 9)
	if a.Len() != 500 || a.TotalBytes() != b.TotalBytes() {
		t.Fatalf("trees differ: %d/%d bytes %d/%d", a.Len(), b.Len(), a.TotalBytes(), b.TotalBytes())
	}
	if a.TotalBytes() < 100<<20 {
		t.Fatalf("total bytes %d implausibly small for 500 x ~1MiB", a.TotalBytes())
	}
}

func TestMutate(t *testing.T) {
	a := GenerateTree(400, 1<<10, 3)
	b := Mutate(a, 0.25, 4)
	d := Delta(b, a)
	if len(d) < 50 || len(d) > 160 {
		t.Fatalf("mutated delta = %d files, want ~100", len(d))
	}
	if len(Delta(Mutate(a, 0, 5), a)) != 0 {
		t.Fatal("zero-fraction mutate changed files")
	}
}

func newDTNs(e *sim.Engine, n int) []*DTNNode {
	c := cluster.New(e, cluster.DTN(), n, cluster.WithoutNVMe())
	out := make([]*DTNNode, n)
	for i, node := range c.Nodes {
		out[i] = NewDTNNode(node)
	}
	return out
}

func TestDTNNodeThroughputCalibration(t *testing.T) {
	// One node, 32 streams, plenty of large files: per-node throughput
	// should approach the measured 2,385 Mb/s.
	e := sim.NewEngine(1)
	dtns := newDTNs(e, 1)
	tree := GenerateTree(2000, 64<<20, 2) // ~128 GB
	var rep Report
	e.Spawn("xfer", func(p *sim.Proc) {
		rep = RunParallelDTN(p, dtns, tree.Files(), 32, nil, nil)
	})
	e.Run()
	mbps := rep.NodeThroughputMbps()[0]
	if mbps < 1900 || mbps > 2600 {
		t.Fatalf("node throughput = %.0f Mb/s, want ~2385", mbps)
	}
	if rep.Files != 2000 || rep.Bytes != tree.TotalBytes() {
		t.Fatalf("report = %+v", rep)
	}
}

func TestParallelVsSequentialSpeedup(t *testing.T) {
	// 8 nodes x 32 streams vs one sequential stream: ~200x (paper).
	// Many moderate files so no single file's stream-speed floor
	// dominates the parallel tail.
	tree := GenerateTree(6000, 8<<20, 5)
	files := tree.Files()

	e1 := sim.NewEngine(1)
	seqDTN := newDTNs(e1, 1)
	var seq Report
	e1.Spawn("seq", func(p *sim.Proc) {
		seq = RunSequential(p, seqDTN[0], files, nil, nil)
	})
	e1.Run()

	e2 := sim.NewEngine(1)
	dtns := newDTNs(e2, 8)
	var par Report
	e2.Spawn("par", func(p *sim.Proc) {
		par = RunParallelDTN(p, dtns, files, 32, nil, nil)
	})
	e2.Run()

	speedup := seq.Makespan.Seconds() / par.Makespan.Seconds()
	if speedup < 150 || speedup > 260 {
		t.Fatalf("speedup = %.0fx, want ~200x", speedup)
	}
	// Work distributed across all nodes.
	for i, b := range par.NodeBytes {
		if b == 0 {
			t.Fatalf("node %d moved no data", i)
		}
	}
}

func TestParallelVsWMSProtocol(t *testing.T) {
	tree := GenerateTree(1200, 4<<20, 6)
	files := tree.Files()

	run := func(f func(p *sim.Proc) Report) Report {
		e := sim.NewEngine(1)
		var rep Report
		e.Spawn("driver", func(p *sim.Proc) { rep = f(p) })
		e.Run()
		return rep
	}
	par := run(func(p *sim.Proc) Report {
		return RunParallelDTN(p, newDTNs(p.Engine(), 8), files, 32, nil, nil)
	})
	wms := run(func(p *sim.Proc) Report {
		// Staging services typically run a small fixed stream pool.
		return RunWMSProtocol(p, newDTNs(p.Engine(), 8), files, 2, nil, nil)
	})
	ratio := wms.Makespan.Seconds() / par.Makespan.Seconds()
	if ratio < 10 {
		t.Fatalf("WMS-protocol ratio = %.1fx, paper reports >10x", ratio)
	}
}

// Property: delta(src, dst) applied to dst makes the trees equal.
func TestPropertySyncConverges(t *testing.T) {
	f := func(n16 uint16, frac8, seed8 uint8) bool {
		n := int(n16%300) + 1
		frac := float64(frac8%100) / 100
		src := GenerateTree(n, 1<<12, uint64(seed8))
		dst := Mutate(src, frac, uint64(seed8)+1)
		for _, fl := range Delta(src, dst) {
			dst.Add(fl)
		}
		return len(Delta(src, dst)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// --- real copier ------------------------------------------------------------

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o640); err != nil {
		t.Fatal(err)
	}
}

func TestScanDir(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "a.txt"), "hello")
	writeFile(t, filepath.Join(dir, "sub/b.txt"), "world!")
	tr, err := ScanDir(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Fatalf("len = %d", tr.Len())
	}
	f, ok := tr.Lookup("sub/b.txt")
	if !ok || f.Size != 6 {
		t.Fatalf("b.txt = %+v", f)
	}
	// Missing dir scans as empty.
	empty, err := ScanDir(filepath.Join(dir, "missing"), false)
	if err != nil || empty.Len() != 0 {
		t.Fatalf("missing dir: %v %d", err, empty.Len())
	}
}

func TestCopyTreeFullAndIncremental(t *testing.T) {
	src := t.TempDir()
	dst := t.TempDir()
	writeFile(t, filepath.Join(src, "a.txt"), "alpha")
	writeFile(t, filepath.Join(src, "d1/b.txt"), "bravo")
	writeFile(t, filepath.Join(src, "d1/d2/c.txt"), "charlie")

	stats, err := CopyTree(context.Background(), src, dst, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Copied != 3 || stats.Failed != 0 || stats.Bytes != int64(len("alphabravocharlie")) {
		t.Fatalf("stats = %+v", stats)
	}
	got, err := os.ReadFile(filepath.Join(dst, "d1/d2/c.txt"))
	if err != nil || string(got) != "charlie" {
		t.Fatalf("copied content = %q, %v", got, err)
	}

	// Second run: nothing to do.
	stats2, err := CopyTree(context.Background(), src, dst, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Copied != 0 || stats2.Skipped != 3 {
		t.Fatalf("incremental stats = %+v", stats2)
	}

	// Modify one file: only it re-copies.
	writeFile(t, filepath.Join(src, "a.txt"), "ALPHA2")
	stats3, err := CopyTree(context.Background(), src, dst, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if stats3.Copied != 1 {
		t.Fatalf("after modify: %+v", stats3)
	}
	got, _ = os.ReadFile(filepath.Join(dst, "a.txt"))
	if string(got) != "ALPHA2" {
		t.Fatalf("updated content = %q", got)
	}
}

func TestCopyTreePreservesMode(t *testing.T) {
	src := t.TempDir()
	dst := t.TempDir()
	p := filepath.Join(src, "script.sh")
	writeFile(t, p, "#!/bin/sh\n")
	os.Chmod(p, 0o755)
	if _, err := CopyTree(context.Background(), src, dst, 2, false); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(filepath.Join(dst, "script.sh"))
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o755 {
		t.Fatalf("mode = %v", info.Mode())
	}
}

func TestCopyTreeNoPartialFiles(t *testing.T) {
	src := t.TempDir()
	dst := t.TempDir()
	writeFile(t, filepath.Join(src, "x"), "data")
	if _, err := CopyTree(context.Background(), src, dst, 1, false); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dst)
	for _, e := range entries {
		if e.Name() != "x" {
			t.Fatalf("leftover temp file %q", e.Name())
		}
	}
}
