package transfer

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync/atomic"

	"repro/internal/args"
	"repro/internal/core"
)

// ScanDir builds a Tree from a real directory. When hashContent is true,
// file contents are checksummed (exact rsync -c semantics); otherwise the
// hash folds size+mtime (rsync's default quick check).
func ScanDir(dir string, hashContent bool) (*Tree, error) {
	t := NewTree()
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		f := File{Path: rel, Size: info.Size()}
		if hashContent {
			h, err := hashFile(path)
			if err != nil {
				return err
			}
			f.Hash = h
		} else {
			hh := fnv.New64a()
			fmt.Fprintf(hh, "%d|%d", info.Size(), info.ModTime().UnixNano())
			f.Hash = hh.Sum64()
		}
		t.Add(f)
		return nil
	})
	if err != nil {
		if os.IsNotExist(err) {
			return NewTree(), nil // absent destination = empty tree
		}
		return nil, err
	}
	return t, nil
}

func hashFile(path string) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	h := fnv.New64a()
	if _, err := io.Copy(h, f); err != nil {
		return 0, err
	}
	return h.Sum64(), nil
}

// CopyStats summarizes a real tree copy.
type CopyStats struct {
	Scanned, Copied, Skipped, Failed int
	Bytes                            int64
}

// CopyTree incrementally copies srcDir into dstDir with jobs parallel
// streams, rsync-style: only files missing or differing (size/mtime, or
// content when hashContent) are moved, directory structure is created as
// needed, and file modes are preserved. This is the real-execution path
// behind cmd/dtncp.
func CopyTree(ctx context.Context, srcDir, dstDir string, jobs int, hashContent bool) (CopyStats, error) {
	srcTree, err := ScanDir(srcDir, hashContent)
	if err != nil {
		return CopyStats{}, fmt.Errorf("transfer: scanning source: %w", err)
	}
	dstTree, err := ScanDir(dstDir, hashContent)
	if err != nil {
		return CopyStats{}, fmt.Errorf("transfer: scanning destination: %w", err)
	}
	delta := Delta(srcTree, dstTree)

	var bytes atomic.Int64
	var failed atomic.Int64
	runner := core.FuncRunner(func(ctx context.Context, job *core.Job) ([]byte, error) {
		rel := job.Args[0]
		n, err := copyFile(filepath.Join(srcDir, rel), filepath.Join(dstDir, rel))
		if err != nil {
			failed.Add(1)
			return nil, err
		}
		bytes.Add(n)
		return nil, nil
	})
	spec, err := core.NewSpec("", jobs)
	if err != nil {
		return CopyStats{}, err
	}
	eng, err := core.NewEngine(spec, runner)
	if err != nil {
		return CopyStats{}, err
	}
	paths := make([]string, len(delta))
	for i, f := range delta {
		paths[i] = f.Path
	}
	stats, _, err := eng.Run(ctx, args.Literal(paths...))
	cs := CopyStats{
		Scanned: srcTree.Len(),
		Copied:  stats.Succeeded,
		Skipped: srcTree.Len() - len(delta),
		Failed:  stats.Failed,
		Bytes:   bytes.Load(),
	}
	return cs, err
}

// copyFile copies one file preserving its mode; parent directories are
// created on demand. It copies to a temp name and renames, so concurrent
// readers never observe partial files.
func copyFile(src, dst string) (int64, error) {
	in, err := os.Open(src)
	if err != nil {
		return 0, err
	}
	defer in.Close()
	info, err := in.Stat()
	if err != nil {
		return 0, err
	}
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return 0, err
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), ".dtncp-*")
	if err != nil {
		return 0, err
	}
	n, err := io.Copy(tmp, in)
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Chmod(tmp.Name(), info.Mode().Perm())
	}
	if err == nil {
		// Preserve mtime (rsync -a) so the size+mtime quick check
		// recognizes the copy as up to date on the next run.
		err = os.Chtimes(tmp.Name(), info.ModTime(), info.ModTime())
	}
	if err == nil {
		err = os.Rename(tmp.Name(), dst)
	}
	if err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	return n, nil
}
