package transfer

import (
	"time"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/storage"
)

// Calibration (§IV-E): a DTN node running 32 rsync streams measured
// 2,385 Mb/s ≈ 298 MB/s. A single rsync stream is protocol-limited far
// below NIC speed; with per-stream ~12.4 MB/s the NIC saturates at ~24
// concurrent streams, so 32 streams deliver the measured node rate and
// 8 nodes × 32 streams ≈ 199× a single sequential stream — the paper's
// "200× over sequential".
const (
	// StreamBW is one rsync stream's effective bandwidth, bytes/s.
	StreamBW = 12.4e6
	// NodeNICBW is one DTN node's deliverable bandwidth, bytes/s.
	NodeNICBW = 298e6
	// PerFileOverhead is rsync's per-file protocol cost (stat, delta
	// negotiation, attribute preservation: rsync -R -Ha).
	PerFileOverhead = 3 * time.Millisecond
)

// DTNNode wraps a cluster node with a NIC bandwidth cap.
type DTNNode struct {
	Node *cluster.Node
	nic  *sim.Resource
	// Bytes is the total payload this node moved.
	Bytes int64
	// Transferred counts files this node moved.
	Transferred int
}

// NewDTNNode attaches a NIC model to a node: effective concurrent
// full-rate streams = NodeNICBW / StreamBW.
func NewDTNNode(n *cluster.Node) *DTNNode {
	ratio := float64(NodeNICBW) / float64(StreamBW)
	slots := int(ratio)
	if slots < 1 {
		slots = 1
	}
	return &DTNNode{Node: n, nic: sim.NewResource(n.Eng, slots)}
}

// TransferFile moves one file through this node: per-file protocol
// overhead, metadata on both endpoints, then the stream transfer under
// the NIC cap.
func (d *DTNNode) TransferFile(p *sim.Proc, f File, src, dst *storage.FS) {
	p.Sleep(d.Node.RNG.Jitter(PerFileOverhead, 0.3))
	if src != nil {
		src.MetaOp(p)
	}
	if dst != nil {
		dst.MetaOp(p)
	}
	d.nic.Acquire(p, 1)
	secs := float64(f.Size) / StreamBW
	p.Sleep(d.Node.RNG.Jitter(sim.Dur(secs), 0.05))
	d.nic.Release(1)
	d.Bytes += f.Size
	d.Transferred++
}

// Report summarizes a data-motion run.
type Report struct {
	Files    int
	Bytes    int64
	Makespan time.Duration
	// NodeBytes is per-node payload moved (index = DTN node).
	NodeBytes []int64
}

// Throughput returns aggregate bytes/s.
func (r Report) Throughput() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(r.Bytes) / r.Makespan.Seconds()
}

// NodeThroughputMbps returns per-node megabits/s (the paper's unit).
func (r Report) NodeThroughputMbps() []float64 {
	out := make([]float64, len(r.NodeBytes))
	for i, b := range r.NodeBytes {
		if r.Makespan > 0 {
			out[i] = float64(b) * 8 / 1e6 / r.Makespan.Seconds()
		}
	}
	return out
}

// RunParallelDTN executes the paper's §IV-E pattern from process p:
// `find | driver.sh` shards the file list across the DTN nodes
// (Listing 1 arithmetic), and each node runs one parallel instance with
// streamsPerNode rsync slots. Returns when all transfers complete.
func RunParallelDTN(p *sim.Proc, dtns []*DTNNode, files []File, streamsPerNode int, src, dst *storage.FS) Report {
	e := p.Engine()
	shards := cluster.Distribute(files, len(dtns))
	wg := sim.NewCounter(e, len(dtns))
	start := p.Now()
	for i, d := range dtns {
		d := d
		shard := shards[i]
		e.Spawn("dtn-driver", func(dp *sim.Proc) {
			tasks := make([]cluster.Task, len(shard))
			for j := range shard {
				f := shard[j]
				tasks[j] = cluster.Task{Payload: func(tp *sim.Proc, tc cluster.TaskContext) error {
					d.TransferFile(tp, f, src, dst)
					return nil
				}}
			}
			d.Node.RunParallel(dp, cluster.InstanceConfig{Jobs: streamsPerNode}, tasks)
			wg.Done()
		})
	}
	wg.Wait(p)

	rep := Report{Files: len(files), Makespan: p.Now() - start}
	for _, d := range dtns {
		rep.Bytes += d.Bytes
		rep.NodeBytes = append(rep.NodeBytes, d.Bytes)
	}
	return rep
}

// RunSequential is the baseline: one stream on one node moving every file
// in order.
func RunSequential(p *sim.Proc, d *DTNNode, files []File, src, dst *storage.FS) Report {
	start := p.Now()
	for _, f := range files {
		d.TransferFile(p, f, src, dst)
	}
	return Report{
		Files: len(files), Bytes: d.Bytes,
		Makespan:  p.Now() - start,
		NodeBytes: []int64{d.Bytes},
	}
}

// WMSStageCost is the per-file control overhead of staging data through a
// conventional workflow system's transfer protocol (per-file staging
// tasks, catalog updates, service round trips).
const WMSStageCost = 150 * time.Millisecond

// RunWMSProtocol is the workflow-system baseline the paper reports >10×
// speedup over: the same DTN hardware, but each file transfer is wrapped
// in per-file staging control traffic and the system uses a modest fixed
// stream pool.
func RunWMSProtocol(p *sim.Proc, dtns []*DTNNode, files []File, streams int, src, dst *storage.FS) Report {
	e := p.Engine()
	shards := cluster.Distribute(files, len(dtns))
	wg := sim.NewCounter(e, len(dtns))
	start := p.Now()
	for i, d := range dtns {
		d := d
		shard := shards[i]
		e.Spawn("wms-stager", func(dp *sim.Proc) {
			tasks := make([]cluster.Task, len(shard))
			for j := range shard {
				f := shard[j]
				tasks[j] = cluster.Task{Payload: func(tp *sim.Proc, tc cluster.TaskContext) error {
					tp.Sleep(WMSStageCost)
					d.TransferFile(tp, f, src, dst)
					return nil
				}}
			}
			d.Node.RunParallel(dp, cluster.InstanceConfig{Jobs: streams}, tasks)
			wg.Done()
		})
	}
	wg.Wait(p)
	rep := Report{Files: len(files), Makespan: p.Now() - start}
	for _, d := range dtns {
		rep.Bytes += d.Bytes
		rep.NodeBytes = append(rep.NodeBytes, d.Bytes)
	}
	return rep
}
