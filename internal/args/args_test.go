package args

import (
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func collect(t *testing.T, s Source) [][]string {
	t.Helper()
	recs, err := Collect(s)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	return recs
}

func TestLiteral(t *testing.T) {
	recs := collect(t, Literal("a", "b", "c"))
	want := [][]string{{"a"}, {"b"}, {"c"}}
	if !reflect.DeepEqual(recs, want) {
		t.Fatalf("got %v", recs)
	}
	if _, err := Literal().Next(); err != io.EOF {
		t.Fatal("empty literal should EOF")
	}
}

func TestFromReader(t *testing.T) {
	recs := collect(t, FromReader(strings.NewReader("one\ntwo\r\n\nfour")))
	want := [][]string{{"one"}, {"two"}, {""}, {"four"}}
	if !reflect.DeepEqual(recs, want) {
		t.Fatalf("got %v", recs)
	}
	if len(collect(t, FromReader(strings.NewReader("")))) != 0 {
		t.Fatal("empty reader should yield nothing")
	}
	// Source stays EOF after exhaustion.
	s := FromReader(strings.NewReader("x"))
	s.Next()
	if _, err := s.Next(); err != io.EOF {
		t.Fatal("want EOF")
	}
	if _, err := s.Next(); err != io.EOF {
		t.Fatal("want sticky EOF")
	}
}

func TestFromFile(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "inputs.txt")
	if err := os.WriteFile(p, []byte("l1\nl2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	recs := collect(t, FromFile(p))
	if len(recs) != 2 || recs[0][0] != "l1" || recs[1][0] != "l2" {
		t.Fatalf("got %v", recs)
	}
	if _, err := FromFile(filepath.Join(dir, "missing")).Next(); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestChan(t *testing.T) {
	ch := make(chan string, 3)
	ch <- "x"
	ch <- "y"
	close(ch)
	recs := collect(t, Chan(ch))
	if len(recs) != 2 || recs[0][0] != "x" {
		t.Fatalf("got %v", recs)
	}
}

func TestCrossOrder(t *testing.T) {
	// parallel echo ::: a b ::: 1 2 => a1 a2 b1 b2 (last varies fastest)
	recs := collect(t, Cross(Literal("a", "b"), Literal("1", "2")))
	want := [][]string{{"a", "1"}, {"a", "2"}, {"b", "1"}, {"b", "2"}}
	if !reflect.DeepEqual(recs, want) {
		t.Fatalf("got %v, want %v", recs, want)
	}
}

func TestCrossThree(t *testing.T) {
	recs := collect(t, Cross(Literal("a"), Literal("1", "2"), Literal("x", "y")))
	want := [][]string{{"a", "1", "x"}, {"a", "1", "y"}, {"a", "2", "x"}, {"a", "2", "y"}}
	if !reflect.DeepEqual(recs, want) {
		t.Fatalf("got %v", recs)
	}
}

func TestCrossDarshanGrid(t *testing.T) {
	// The paper's Listing 5: {1..12} x {0..2} = 36 combinations.
	months := make([]string, 12)
	for i := range months {
		months[i] = string(rune('1' + i)) // content irrelevant, count matters
	}
	recs := collect(t, Cross(Slice(toRecords(months)), Literal("0", "1", "2")))
	if len(recs) != 36 {
		t.Fatalf("got %d records, want 36", len(recs))
	}
}

func toRecords(items []string) [][]string {
	out := make([][]string, len(items))
	for i, v := range items {
		out[i] = []string{v}
	}
	return out
}

func TestCrossEmptySource(t *testing.T) {
	recs := collect(t, Cross(Literal("a", "b"), Literal()))
	if len(recs) != 0 {
		t.Fatalf("product with empty source = %v, want empty", recs)
	}
	recs = collect(t, Cross(Literal(), Literal("1")))
	if len(recs) != 0 {
		t.Fatalf("empty first source = %v, want empty", recs)
	}
}

func TestCrossStreamsFirstSource(t *testing.T) {
	// First source delivered incrementally through a channel: Cross must
	// produce each block without waiting for channel close... but since
	// Next is pull-based, it suffices that records appear as soon as the
	// first source yields.
	ch := make(chan string, 1)
	src := Cross(Chan(ch), Literal("1", "2"))
	ch <- "a"
	r1, err := src.Next()
	if err != nil || !reflect.DeepEqual(r1, []string{"a", "1"}) {
		t.Fatalf("r1 = %v, %v", r1, err)
	}
	r2, _ := src.Next()
	if !reflect.DeepEqual(r2, []string{"a", "2"}) {
		t.Fatalf("r2 = %v", r2)
	}
	close(ch)
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestZip(t *testing.T) {
	recs := collect(t, Zip(Literal("a", "b"), Literal("1", "2")))
	want := [][]string{{"a", "1"}, {"b", "2"}}
	if !reflect.DeepEqual(recs, want) {
		t.Fatalf("got %v", recs)
	}
}

func TestZipUnequal(t *testing.T) {
	src := Zip(Literal("a", "b"), Literal("1"))
	if _, err := src.Next(); err != nil {
		t.Fatal(err)
	}
	_, err := src.Next()
	if !errors.Is(err, ErrZipLength) {
		t.Fatalf("want ErrZipLength, got %v", err)
	}
}

func TestChunkN(t *testing.T) {
	recs := collect(t, ChunkN(Literal("a", "b", "c", "d", "e"), 2))
	want := [][]string{{"a", "b"}, {"c", "d"}, {"e"}}
	if !reflect.DeepEqual(recs, want) {
		t.Fatalf("got %v", recs)
	}
	recs = collect(t, ChunkN(Literal(), 3))
	if len(recs) != 0 {
		t.Fatalf("chunk of empty = %v", recs)
	}
}

func TestChunkNInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ChunkN(0) should panic")
		}
	}()
	ChunkN(Literal("a"), 0)
}

func TestFollowFile(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "q.proc")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	src := FollowFile(ctx, p, 5*time.Millisecond)
	got := make(chan string, 10)
	go func() {
		for {
			rec, err := src.Next()
			if err != nil {
				close(got)
				return
			}
			got <- rec[0]
		}
	}()

	// File does not exist yet; create and append in two stages.
	time.Sleep(10 * time.Millisecond)
	if err := os.WriteFile(p, []byte("ts1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	expectRecv(t, got, "ts1")

	f, err := os.OpenFile(p, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("ts2\n")
	f.Close()
	expectRecv(t, got, "ts2")

	cancel()
	select {
	case _, ok := <-got:
		if ok {
			t.Fatal("unexpected extra record")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("source did not terminate after cancel")
	}
}

func expectRecv(t *testing.T, ch <-chan string, want string) {
	t.Helper()
	select {
	case v := <-ch:
		if v != want {
			t.Fatalf("got %q, want %q", v, want)
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("timed out waiting for %q", want)
	}
}

// Property: Cross record count is the product of source lengths, and every
// record has one column per source.
func TestPropertyCrossCount(t *testing.T) {
	f := func(a, b, c uint8) bool {
		na, nb, nc := int(a%5), int(b%5), int(c%5)
		mk := func(n int) Source {
			items := make([]string, n)
			for i := range items {
				items[i] = "v"
			}
			return Literal(items...)
		}
		recs, err := Collect(Cross(mk(na), mk(nb), mk(nc)))
		if err != nil {
			return false
		}
		if len(recs) != na*nb*nc {
			return false
		}
		for _, r := range recs {
			if len(r) != 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ChunkN yields ceil(n/k) records and preserves order/content.
func TestPropertyChunkN(t *testing.T) {
	f := func(n16 uint16, k8 uint8) bool {
		n, k := int(n16%200), int(k8%10)+1
		items := make([]string, n)
		for i := range items {
			items[i] = string(rune('a' + i%26))
		}
		recs, err := Collect(ChunkN(Literal(items...), k))
		if err != nil {
			return false
		}
		wantRecs := (n + k - 1) / k
		if len(recs) != wantRecs {
			return false
		}
		var flat []string
		for _, r := range recs {
			flat = append(flat, r...)
		}
		return reflect.DeepEqual(flat, items) || (n == 0 && len(flat) == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBlocksLineAligned(t *testing.T) {
	in := "aaaa\nbb\ncccccc\ndd\n"
	recs := collect(t, Blocks(strings.NewReader(in), 8))
	var rebuilt strings.Builder
	for _, r := range recs {
		if len(r) != 1 {
			t.Fatalf("record has %d cols", len(r))
		}
		if !strings.HasSuffix(r[0], "\n") {
			t.Fatalf("block %q not newline-terminated", r[0])
		}
		rebuilt.WriteString(r[0])
	}
	if rebuilt.String() != in {
		t.Fatalf("blocks lost content: %q", rebuilt.String())
	}
	if len(recs) < 2 {
		t.Fatalf("expected multiple blocks, got %d", len(recs))
	}
}

func TestBlocksOversizedLine(t *testing.T) {
	long := strings.Repeat("x", 100) + "\n"
	recs := collect(t, Blocks(strings.NewReader("a\n"+long+"b\n"), 10))
	var all string
	for _, r := range recs {
		all += r[0]
	}
	if all != "a\n"+long+"b\n" {
		t.Fatal("oversized line mangled")
	}
}

func TestBlocksEmptyAndUnterminated(t *testing.T) {
	if recs := collect(t, Blocks(strings.NewReader(""), 10)); len(recs) != 0 {
		t.Fatalf("empty input produced %v", recs)
	}
	recs := collect(t, Blocks(strings.NewReader("no newline at end"), 1000))
	if len(recs) != 1 || recs[0][0] != "no newline at end" {
		t.Fatalf("unterminated final line: %v", recs)
	}
}

// Property: Blocks partitions any line stream exactly (concatenation
// identity) for any block size.
func TestPropertyBlocksPartition(t *testing.T) {
	f := func(lines []string, bs16 uint16) bool {
		var in strings.Builder
		for _, l := range lines {
			l = strings.ReplaceAll(l, "\n", "")
			in.WriteString(l + "\n")
		}
		bs := int(bs16%256) + 1
		recs, err := Collect(Blocks(strings.NewReader(in.String()), bs))
		if err != nil {
			return false
		}
		var out strings.Builder
		for _, r := range recs {
			out.WriteString(r[0])
		}
		return out.String() == in.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestColsep(t *testing.T) {
	recs := collect(t, Colsep(Literal("a\tb\tc", "d\te"), "\t"))
	want := [][]string{{"a", "b", "c"}, {"d", "e"}}
	if !reflect.DeepEqual(recs, want) {
		t.Fatalf("got %v", recs)
	}
	// No separator present: record unchanged.
	recs = collect(t, Colsep(Literal("plain"), ","))
	if !reflect.DeepEqual(recs, [][]string{{"plain"}}) {
		t.Fatalf("got %v", recs)
	}
}

func TestColsepInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty colsep accepted")
		}
	}()
	Colsep(Literal("a"), "")
}

func TestShuffleDeterministicPermutation(t *testing.T) {
	items := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	a := collect(t, Shuffle(Literal(items...), 42))
	b := collect(t, Shuffle(Literal(items...), 42))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same-seed shuffles differ")
	}
	c := collect(t, Shuffle(Literal(items...), 43))
	if reflect.DeepEqual(a, c) {
		t.Fatal("different-seed shuffles identical (suspicious)")
	}
	// Permutation: same multiset.
	seen := map[string]bool{}
	for _, r := range a {
		seen[r[0]] = true
	}
	if len(seen) != len(items) {
		t.Fatalf("shuffle lost items: %v", a)
	}
}
