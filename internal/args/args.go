// Package args implements GNU-Parallel-style input sources and their
// combination rules.
//
// A Source yields records; each record is one job's positional arguments
// (one string per input-source column). Literal lists correspond to
// ":::", files to "::::", Cross to multiple sources (cartesian product,
// last source varying fastest), Zip to ":::+" linking, and Chan/FollowFile
// to the streaming "tail -f queuefile | parallel" pattern the paper uses
// for asynchronous workflow stages.
package args

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"strings"
	"time"
)

// Source yields successive records. Next returns io.EOF when exhausted.
// Next may block (streaming sources); engines consume sources from a
// dedicated goroutine.
type Source interface {
	Next() ([]string, error)
}

// SourceFunc adapts a function to the Source interface.
type SourceFunc func() ([]string, error)

// Next implements Source.
func (f SourceFunc) Next() ([]string, error) { return f() }

// Literal returns a source yielding one single-column record per item.
func Literal(items ...string) Source {
	i := 0
	return SourceFunc(func() ([]string, error) {
		if i >= len(items) {
			return nil, io.EOF
		}
		v := items[i]
		i++
		return []string{v}, nil
	})
}

// FromReader returns a source yielding one record per line of r. Lines are
// terminated by '\n'; a trailing '\r' is stripped. A final unterminated
// line is yielded. Empty lines are yielded as empty strings (GNU Parallel
// passes them through).
func FromReader(r io.Reader) Source {
	br := bufio.NewReader(r)
	done := false
	return SourceFunc(func() ([]string, error) {
		if done {
			return nil, io.EOF
		}
		line, err := br.ReadString('\n')
		if err == io.EOF {
			done = true
			if line == "" {
				return nil, io.EOF
			}
			return []string{trimEOL(line)}, nil
		}
		if err != nil {
			done = true
			return nil, err
		}
		return []string{trimEOL(line)}, nil
	})
}

func trimEOL(s string) string {
	s = strings.TrimSuffix(s, "\n")
	return strings.TrimSuffix(s, "\r")
}

// FromFile returns a source yielding one record per line of the named
// file. The file is opened lazily on first Next and closed at EOF or
// error.
func FromFile(path string) Source {
	var f *os.File
	var inner Source
	closed := false
	return SourceFunc(func() ([]string, error) {
		if closed {
			return nil, io.EOF
		}
		if inner == nil {
			var err error
			f, err = os.Open(path)
			if err != nil {
				closed = true
				return nil, err
			}
			inner = FromReader(f)
		}
		rec, err := inner.Next()
		if err != nil {
			closed = true
			f.Close()
			return nil, err
		}
		return rec, nil
	})
}

// Chan returns a source that yields values received from ch until it is
// closed. It backs the streaming queue-file pattern in real executions.
func Chan(ch <-chan string) Source {
	return SourceFunc(func() ([]string, error) {
		v, ok := <-ch
		if !ok {
			return nil, io.EOF
		}
		return []string{v}, nil
	})
}

// Slice returns a source yielding the given pre-built records verbatim.
func Slice(records [][]string) Source {
	i := 0
	return SourceFunc(func() ([]string, error) {
		if i >= len(records) {
			return nil, io.EOF
		}
		r := records[i]
		i++
		return r, nil
	})
}

// Collect drains src into a slice. It is used by combinators that must
// materialize a source, and by tests.
func Collect(src Source) ([][]string, error) {
	var out [][]string
	for {
		rec, err := src.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

// Cross combines sources as a cartesian product: one record per element of
// the product, columns concatenated, with the last source varying fastest
// (matching `parallel ::: a b ::: 1 2` → a 1, a 2, b 1, b 2).
//
// Only the first source is streamed; the rest are materialized up front,
// so a blocking/streaming source may only appear first. A materialized
// empty source makes the whole product empty.
func Cross(sources ...Source) Source {
	switch len(sources) {
	case 0:
		return Literal()
	case 1:
		return sources[0]
	}
	var rest [][][]string // materialized records of sources[1:]
	restErr := error(nil)
	loaded := false
	var cur []string // current record of first source
	idx := make([]int, len(sources)-1)
	exhausted := false

	return SourceFunc(func() ([]string, error) {
		if exhausted {
			return nil, io.EOF
		}
		if !loaded {
			loaded = true
			for _, s := range sources[1:] {
				recs, err := Collect(s)
				if err != nil {
					restErr = err
					break
				}
				rest = append(rest, recs)
			}
			if restErr == nil {
				for _, recs := range rest {
					if len(recs) == 0 {
						exhausted = true
						return nil, io.EOF
					}
				}
			}
		}
		if restErr != nil {
			exhausted = true
			return nil, restErr
		}
		if cur == nil {
			rec, err := sources[0].Next()
			if err != nil {
				exhausted = true
				return nil, err
			}
			cur = rec
			for i := range idx {
				idx[i] = 0
			}
		}
		// Build the combined record.
		out := append([]string(nil), cur...)
		for i, recs := range rest {
			out = append(out, recs[idx[i]]...)
		}
		// Advance odometer, last column fastest.
		for i := len(idx) - 1; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(rest[i]) {
				return out, nil
			}
			idx[i] = 0
		}
		cur = nil // first source advances next call
		return out, nil
	})
}

// ErrZipLength reports :::+ sources of unequal length.
var ErrZipLength = errors.New("args: zipped sources have unequal lengths")

// Zip links sources positionally (GNU Parallel's :::+): record i combines
// the i-th element of every source. If sources have different lengths the
// final record returns ErrZipLength (GNU Parallel pads; we fail loudly, a
// deliberate strictness documented in README).
func Zip(sources ...Source) Source {
	if len(sources) == 0 {
		return Literal()
	}
	done := false
	return SourceFunc(func() ([]string, error) {
		if done {
			return nil, io.EOF
		}
		var out []string
		eofs := 0
		for _, s := range sources {
			rec, err := s.Next()
			if err == io.EOF {
				eofs++
				continue
			}
			if err != nil {
				done = true
				return nil, err
			}
			out = append(out, rec...)
		}
		if eofs == len(sources) {
			done = true
			return nil, io.EOF
		}
		if eofs > 0 {
			done = true
			return nil, fmt.Errorf("%w (short by %d)", ErrZipLength, eofs)
		}
		return out, nil
	})
}

// ChunkN regroups a source's records into flat records of up to n columns,
// GNU Parallel's -N: with n=3, single-column inputs a b c d e become
// records [a b c] and [d e].
func ChunkN(src Source, n int) Source {
	if n < 1 {
		panic("args: ChunkN n must be >= 1")
	}
	done := false
	return SourceFunc(func() ([]string, error) {
		if done {
			return nil, io.EOF
		}
		var out []string
		for len(out) < n {
			rec, err := src.Next()
			if err == io.EOF {
				done = true
				if len(out) == 0 {
					return nil, io.EOF
				}
				return out, nil
			}
			if err != nil {
				done = true
				return nil, err
			}
			out = append(out, rec...)
		}
		return out, nil
	})
}

// Colsep splits each record's columns further on sep (GNU Parallel's
// --colsep): a single-column source of TSV lines becomes multi-column
// records addressable as {1}, {2}, ... Empty sep panics.
func Colsep(src Source, sep string) Source {
	if sep == "" {
		panic("args: Colsep separator must be non-empty")
	}
	return SourceFunc(func() ([]string, error) {
		rec, err := src.Next()
		if err != nil {
			return nil, err
		}
		var out []string
		for _, col := range rec {
			out = append(out, strings.Split(col, sep)...)
		}
		return out, nil
	})
}

// Shuffle materializes src and yields its records in a deterministic
// pseudo-random order for the given seed (GNU Parallel's --shuf).
func Shuffle(src Source, seed uint64) Source {
	var recs [][]string
	var loadErr error
	loaded := false
	i := 0
	return SourceFunc(func() ([]string, error) {
		if !loaded {
			loaded = true
			recs, loadErr = Collect(src)
			if loadErr == nil {
				rng := rand.New(rand.NewPCG(seed, seed^0x9E3779B97F4A7C15))
				rng.Shuffle(len(recs), func(a, b int) {
					recs[a], recs[b] = recs[b], recs[a]
				})
			}
		}
		if loadErr != nil {
			err := loadErr
			loadErr = nil
			return nil, err
		}
		if i >= len(recs) {
			return nil, io.EOF
		}
		r := recs[i]
		i++
		return r, nil
	})
}

// Blocks splits r into line-aligned blocks of roughly blockSize bytes for
// pipe-mode execution (GNU Parallel's --pipe --block): each record's
// single column is a block of complete lines. A line longer than
// blockSize becomes its own oversized block rather than being split
// mid-record.
func Blocks(r io.Reader, blockSize int) Source {
	if blockSize < 1 {
		blockSize = 1 << 20
	}
	br := bufio.NewReaderSize(r, 64*1024)
	done := false
	var pending string // a line that overflowed the previous block
	return SourceFunc(func() ([]string, error) {
		if done && pending == "" {
			return nil, io.EOF
		}
		var b strings.Builder
		b.WriteString(pending)
		pending = ""
		for b.Len() < blockSize && !done {
			line, err := br.ReadString('\n')
			if err == io.EOF {
				done = true
			} else if err != nil {
				done = true
				if b.Len() == 0 && line == "" {
					return nil, err
				}
			}
			if line == "" {
				continue
			}
			if b.Len() > 0 && b.Len()+len(line) > blockSize {
				pending = line
				break
			}
			b.WriteString(line)
		}
		if b.Len() == 0 {
			return nil, io.EOF
		}
		return []string{b.String()}, nil
	})
}

// FollowFile tails the named file like `tail -n+0 -f`: it yields every
// line ever appended, polling every interval for growth, until ctx is
// done (then io.EOF). This powers the paper's queue-file stage link
// (Listing 3) in real executions.
func FollowFile(ctx context.Context, path string, interval time.Duration) Source {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	var f *os.File
	var br *bufio.Reader
	var partial strings.Builder
	done := false
	return SourceFunc(func() ([]string, error) {
		if done {
			return nil, io.EOF
		}
		for {
			if f == nil {
				var err error
				f, err = os.Open(path)
				if err != nil {
					if ctx.Err() != nil {
						done = true
						return nil, io.EOF
					}
					// File may not exist yet; wait for it.
					select {
					case <-ctx.Done():
						done = true
						return nil, io.EOF
					case <-time.After(interval):
						continue
					}
				}
				br = bufio.NewReader(f)
			}
			line, err := br.ReadString('\n')
			partial.WriteString(line)
			if err == nil {
				out := trimEOL(partial.String())
				partial.Reset()
				return []string{out}, nil
			}
			if err != io.EOF {
				done = true
				f.Close()
				return nil, err
			}
			// At EOF: wait for growth or cancellation.
			select {
			case <-ctx.Done():
				done = true
				f.Close()
				if partial.Len() > 0 {
					out := partial.String()
					partial.Reset()
					return []string{out}, nil
				}
				return nil, io.EOF
			case <-time.After(interval):
			}
		}
	})
}
