package sim

import "time"

// Proc is a simulated process: a goroutine that advances only when the
// engine resumes it, and that parks whenever it waits on virtual time or a
// synchronization primitive. Exactly one of {engine, some process} runs at
// any instant (strict handoff), which keeps the simulation deterministic.
//
// All Proc methods must be called from the process's own goroutine (i.e.
// from inside the function passed to Engine.Spawn).
type Proc struct {
	e      *Engine
	resume chan struct{}
	name   string
}

// Name returns the name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.e }

// Now returns current virtual time.
func (p *Proc) Now() Time { return p.e.now }

// Spawn starts fn as a simulated process at the current virtual time. The
// process begins running when the engine reaches its start event. Spawn may
// be called from the engine context (event callbacks, before Run) or from
// another process.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{e: e, resume: make(chan struct{}), name: name}
	e.nproc++
	e.After(0, func() {
		go func() {
			fn(p)
			e.nproc--
			e.yield <- struct{}{}
		}()
		<-e.yield
	})
	return p
}

// SpawnAt is like Spawn but the process starts at virtual time t.
func (e *Engine) SpawnAt(t Time, name string, fn func(p *Proc)) *Proc {
	p := &Proc{e: e, resume: make(chan struct{}), name: name}
	e.nproc++
	e.At(t, func() {
		go func() {
			fn(p)
			e.nproc--
			e.yield <- struct{}{}
		}()
		<-e.yield
	})
	return p
}

// park blocks the calling process until wake is invoked from engine
// context. The handoff protocol: the process tells the engine it is about
// to block (send on yield), then waits on its private resume channel.
func (p *Proc) park() {
	p.e.yield <- struct{}{}
	<-p.resume
}

// wake resumes a parked process and blocks (in engine context) until the
// process parks again or finishes. wake must only be called from engine
// context (an event callback), never from another process's goroutine.
func (p *Proc) wake() {
	p.resume <- struct{}{}
	<-p.e.yield
}

// Sleep suspends the process for d of virtual time. Negative d is treated
// as zero (still yields to the engine once).
func (p *Proc) Sleep(d time.Duration) {
	p.e.After(d, p.wake)
	p.park()
}

// Yield gives other same-time events a chance to run before continuing.
// Equivalent to Sleep(0).
func (p *Proc) Yield() { p.Sleep(0) }
