package sim

import "time"

// Proc is a simulated process: a goroutine that advances only when the
// engine resumes it, and that parks whenever it waits on virtual time or a
// synchronization primitive. Exactly one of {engine, some process} runs at
// any instant (strict handoff), which keeps the simulation deterministic.
//
// Proc structs (and their resume channels) are pooled: when a process
// body returns, its struct goes back to the engine's free list and the
// next Spawn reuses it, so steady-state spawning allocates nothing
// beyond the caller's own body closure. For straight-line "sleep → do →
// done" work, prefer the even cheaper Flow layer (no goroutine at all).
//
// All Proc methods must be called from the process's own goroutine (i.e.
// from inside the function passed to Engine.Spawn).
type Proc struct {
	e      *Engine
	resume chan struct{}
	name   string
	// body is the function the next start event will run.
	body func(p *Proc)
	// startFn and wakeFn are the method values scheduled as engine
	// events, bound once per pooled struct so Spawn and Sleep do not
	// allocate a new closure per call.
	startFn func()
	wakeFn  func()
}

// Name returns the name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.e }

// Now returns current virtual time.
func (p *Proc) Now() Time { return p.e.now }

// getProc takes a Proc from the free list (or builds one), arming it
// with the given name and body.
func (e *Engine) getProc(name string, fn func(p *Proc)) *Proc {
	var p *Proc
	if n := len(e.procFree); n > 0 {
		p = e.procFree[n-1]
		e.procFree[n-1] = nil
		e.procFree = e.procFree[:n-1]
	} else {
		p = &Proc{e: e, resume: make(chan struct{})}
		p.startFn = p.start
		p.wakeFn = p.wake
	}
	p.name = name
	p.body = fn
	return p
}

// Spawn starts fn as a simulated process at the current virtual time. The
// process begins running when the engine reaches its start event. Spawn may
// be called from the engine context (event callbacks, before Run) or from
// another process.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	p := e.getProc(name, fn)
	e.nproc++
	e.After(0, p.startFn)
	return p
}

// SpawnAt is like Spawn but the process starts at virtual time t.
func (e *Engine) SpawnAt(t Time, name string, fn func(p *Proc)) *Proc {
	p := e.getProc(name, fn)
	e.nproc++
	e.At(t, p.startFn)
	return p
}

// start is the start event: it launches the body goroutine and blocks
// (in engine context) until the process parks or finishes.
func (p *Proc) start() {
	go p.run()
	<-p.e.yield
}

// run executes the body in the process goroutine, then retires the
// struct to the free list and hands control back to the engine. The
// free-list append happens before the yield handoff, which is safe: the
// engine goroutine is blocked on yield until this goroutine completes
// the send, so no two goroutines touch the list concurrently.
func (p *Proc) run() {
	e := p.e
	p.body(p)
	e.nproc--
	p.body = nil
	e.procFree = append(e.procFree, p)
	e.yield <- struct{}{}
}

// park blocks the calling process until wake is invoked from engine
// context. The handoff protocol: the process tells the engine it is about
// to block (send on yield), then waits on its private resume channel.
func (p *Proc) park() {
	p.e.yield <- struct{}{}
	<-p.resume
}

// wake resumes a parked process and blocks (in engine context) until the
// process parks again or finishes. wake must only be called from engine
// context (an event callback), never from another process's goroutine.
func (p *Proc) wake() {
	p.resume <- struct{}{}
	<-p.e.yield
}

// Sleep suspends the process for d of virtual time. Negative d is treated
// as zero (still yields to the engine once).
func (p *Proc) Sleep(d time.Duration) {
	p.e.After(d, p.wakeFn)
	p.park()
}

// Yield gives other same-time events a chance to run before continuing.
// Equivalent to Sleep(0).
func (p *Proc) Yield() { p.Sleep(0) }
