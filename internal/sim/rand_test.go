package sim

import "testing"

// TestSubstreamIndependence pins the stream contract sharded models rely
// on: Substream(name, i) is a pure function of (seed, name, i) —
// reproducible across RNG instances, independent across indices and
// names, and distinct from Split(name) — so no draw made by one entity
// can ever perturb another entity's stream, regardless of shard count or
// execution interleaving.
func TestSubstreamIndependence(t *testing.T) {
	base := NewRNG(7)
	a := base.Substream("node", 3)
	b := base.Substream("node", 4)
	c := base.Substream("payload", 3)
	a2 := NewRNG(7).Substream("node", 3)
	split := NewRNG(7).Split("node")

	same, diffIdx, diffName, diffSplit := 0, 0, 0, 0
	for i := 0; i < 200; i++ {
		va, vb, vc, va2, vs := a.Float64(), b.Float64(), c.Float64(), a2.Float64(), split.Float64()
		if va == va2 {
			same++
		}
		if va != vb {
			diffIdx++
		}
		if va != vc {
			diffName++
		}
		if va != vs {
			diffSplit++
		}
	}
	if same != 200 {
		t.Errorf("same (seed, name, index) substreams diverged: %d/200 equal", same)
	}
	if diffIdx < 195 {
		t.Errorf("adjacent-index substreams too correlated: %d/200 differ", diffIdx)
	}
	if diffName < 195 {
		t.Errorf("different-name substreams too correlated: %d/200 differ", diffName)
	}
	if diffSplit < 195 {
		t.Errorf("Substream(name, 0-ish) collides with Split(name): %d/200 differ", diffSplit)
	}
}

// TestSubstreamUnperturbedByInterleaving is the regression the satellite
// asks for: draining arbitrary amounts from sibling streams (as another
// shard's entities would) must not change a stream's sequence.
func TestSubstreamUnperturbedByInterleaving(t *testing.T) {
	clean := NewRNG(11).Substream("node", 5)
	var want [32]float64
	for i := range want {
		want[i] = clean.Float64()
	}

	base := NewRNG(11)
	noisy := base.Substream("node", 5)
	for i := uint64(0); i < 64; i++ {
		sib := base.Substream("node", i*2)
		for j := 0; j < 17; j++ {
			sib.Float64()
		}
		base.Substream("other", i).Float64()
	}
	for i := range want {
		if got := noisy.Float64(); got != want[i] {
			t.Fatalf("draw %d perturbed by sibling streams: got %v want %v", i, got, want[i])
		}
	}
}
