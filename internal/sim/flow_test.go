package sim

import (
	"testing"
	"time"
)

func TestFlowBasicSequence(t *testing.T) {
	e := NewEngine(1)
	var doneAt Time
	calls := 0
	fl := e.NewFlow()
	fl.Sleep(2 * time.Second)
	fl.Do(func() { calls++ })
	fl.Sleep(3 * time.Second)
	fl.Do(func() { calls++; doneAt = e.Now() })
	fl.Start()
	if e.LiveProcs() != 1 {
		t.Fatalf("started flow not counted live: %d", e.LiveProcs())
	}
	e.Run()
	if calls != 2 || doneAt != 5*time.Second {
		t.Fatalf("calls=%d doneAt=%v, want 2 calls at 5s", calls, doneAt)
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("finished flow still live: %d", e.LiveProcs())
	}
}

// TestFlowMatchesProcTiming runs the same contended model once with
// goroutine processes and once with flows, on identically seeded
// engines, and requires identical completion times — the bit-identity
// contract that lets models switch hot loops to the flow path.
func TestFlowMatchesProcTiming(t *testing.T) {
	const workers = 16
	const slots = 3
	model := func(useFlow bool) []Time {
		e := NewEngine(42)
		r := NewResource(e, slots)
		rng := e.RNG().Split("work")
		ends := make([]Time, 0, workers)
		record := func() { ends = append(ends, e.Now()) }
		for i := 0; i < workers; i++ {
			if useFlow {
				fl := e.NewFlow()
				fl.Acquire(r, 1)
				fl.SleepFn(func() time.Duration { return rng.DurExp(100 * time.Millisecond) })
				fl.Release(r, 1)
				fl.Do(record)
				fl.Start()
			} else {
				e.Spawn("w", func(p *Proc) {
					r.Acquire(p, 1)
					p.Sleep(rng.DurExp(100 * time.Millisecond))
					r.Release(1)
					record()
				})
			}
		}
		e.Run()
		return ends
	}
	procEnds := model(false)
	flowEnds := model(true)
	if len(procEnds) != workers || len(flowEnds) != workers {
		t.Fatalf("lengths %d / %d, want %d", len(procEnds), len(flowEnds), workers)
	}
	for i := range procEnds {
		if procEnds[i] != flowEnds[i] {
			t.Fatalf("diverged at %d: proc %v vs flow %v", i, procEnds[i], flowEnds[i])
		}
	}
}

func TestFlowGuardSkipsToFinally(t *testing.T) {
	e := NewEngine(1)
	var trace []string
	fl := e.NewFlow()
	fl.Do(func() { trace = append(trace, "pre") })
	fl.Guard(func() bool { return false })
	fl.Do(func() { trace = append(trace, "skipped") })
	fl.Sleep(time.Hour)
	fl.Finally()
	fl.Do(func() { trace = append(trace, "finally") })
	fl.Start()
	end := e.Run()
	if end != 0 {
		t.Fatalf("end = %v, want 0 (guarded sleep skipped)", end)
	}
	if len(trace) != 2 || trace[0] != "pre" || trace[1] != "finally" {
		t.Fatalf("trace = %v, want [pre finally]", trace)
	}
}

func TestFlowGuardTruePassesThrough(t *testing.T) {
	e := NewEngine(1)
	ran := false
	fl := e.NewFlow()
	fl.Guard(func() bool { return true })
	fl.Sleep(time.Second)
	fl.Do(func() { ran = true })
	fl.Start()
	if end := e.Run(); end != time.Second || !ran {
		t.Fatalf("end=%v ran=%v, want 1s true", end, ran)
	}
}

func TestFlowGuardNoFinallySkipsToEnd(t *testing.T) {
	e := NewEngine(1)
	ran := false
	fl := e.NewFlow()
	fl.Guard(func() bool { return false })
	fl.Do(func() { ran = true })
	fl.Start()
	e.Run()
	if ran {
		t.Fatal("guarded step ran with no Finally mark")
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("flow leaked: %d", e.LiveProcs())
	}
}

func TestFlowPooling(t *testing.T) {
	e := NewEngine(1)
	a := e.NewFlow()
	a.Sleep(time.Second)
	a.Start()
	e.Run()
	b := e.NewFlow()
	if a != b {
		t.Fatalf("Flow struct not recycled: %p vs %p", a, b)
	}
	// The recycled program must start empty.
	b.Do(func() {})
	b.Start()
	e.Run()
	if e.LiveProcs() != 0 {
		t.Fatalf("live = %d", e.LiveProcs())
	}
}

func TestFlowStartTwicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("double Start did not panic")
		}
	}()
	e := NewEngine(1)
	fl := e.NewFlow()
	fl.Sleep(time.Second)
	fl.Start()
	fl.Start()
}

func TestFlowAndProcShareResourceFIFO(t *testing.T) {
	// Flows and processes queue on the same resource; grants must honor
	// arrival order regardless of waiter kind.
	e := NewEngine(1)
	r := NewResource(e, 1)
	var order []string
	// Holder keeps the resource busy until t=1s so all others queue.
	e.Spawn("hold", func(p *Proc) {
		r.Acquire(p, 1)
		p.Sleep(time.Second)
		r.Release(1)
	})
	e.SpawnAt(time.Millisecond, "p1", func(p *Proc) {
		r.Acquire(p, 1)
		order = append(order, "proc1")
		p.Sleep(time.Second)
		r.Release(1)
	})
	e.At(2*time.Millisecond, func() {
		fl := e.NewFlow()
		fl.Acquire(r, 1)
		fl.Do(func() { order = append(order, "flow") })
		fl.Sleep(time.Second)
		fl.Release(r, 1)
		fl.Start()
	})
	e.SpawnAt(3*time.Millisecond, "p2", func(p *Proc) {
		r.Acquire(p, 1)
		order = append(order, "proc2")
		r.Release(1)
	})
	e.Run()
	want := []string{"proc1", "flow", "proc2"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order = %v, want %v", order, want)
		}
	}
}

func TestFlowSleepFnDrawsAtExecution(t *testing.T) {
	// The duration callback must run when the step executes, not when
	// the program is built — the property that keeps RNG draw order
	// identical to process code.
	e := NewEngine(1)
	var drawnAt Time = -1
	fl := e.NewFlow()
	fl.Sleep(5 * time.Second)
	fl.SleepFn(func() time.Duration {
		drawnAt = e.Now()
		return time.Second
	})
	fl.Start()
	if drawnAt != -1 {
		t.Fatal("SleepFn callback ran at build time")
	}
	if end := e.Run(); end != 6*time.Second {
		t.Fatalf("end = %v, want 6s", end)
	}
	if drawnAt != 5*time.Second {
		t.Fatalf("draw happened at %v, want 5s", drawnAt)
	}
}

func TestFlowSleepSizedAndDoSized(t *testing.T) {
	e := NewEngine(1)
	var recorded int64
	dur := func(sz int64) time.Duration { return time.Duration(sz) * time.Millisecond }
	rec := func(sz int64) { recorded += sz }
	fl := e.NewFlow()
	fl.SleepSized(dur, 250)
	fl.DoSized(rec, 250)
	fl.Start()
	if end := e.Run(); end != 250*time.Millisecond {
		t.Fatalf("end = %v, want 250ms", end)
	}
	if recorded != 250 {
		t.Fatalf("recorded = %d, want 250", recorded)
	}
}

func TestFlowZeroAllocSteadyState(t *testing.T) {
	// With pre-bound callbacks, a recycled flow program must execute
	// without allocating: pooled struct, reused step slice, value
	// events.
	e := NewEngine(1)
	r := NewResource(e, 2)
	fn := func() {}
	// Warm-up: grow the step slice, the heap, and the pool.
	for i := 0; i < 8; i++ {
		fl := e.NewFlow()
		fl.Sleep(time.Microsecond)
		fl.Acquire(r, 1)
		fl.Sleep(time.Microsecond)
		fl.Release(r, 1)
		fl.Do(fn)
		fl.Start()
	}
	e.Run()
	allocs := testing.AllocsPerRun(500, func() {
		fl := e.NewFlow()
		fl.Sleep(time.Microsecond)
		fl.Acquire(r, 1)
		fl.Sleep(time.Microsecond)
		fl.Release(r, 1)
		fl.Do(fn)
		fl.Start()
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("allocs per flow task = %.1f, want 0", allocs)
	}
}

func TestStorePutNow(t *testing.T) {
	e := NewEngine(1)
	st := NewStore[int](e, 2)
	var got []int
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 2; i++ {
			v, _ := st.Get(p)
			got = append(got, v)
		}
	})
	e.At(time.Second, func() { st.PutNow(7) })
	e.At(2*time.Second, func() { st.PutNow(8) })
	e.Run()
	if len(got) != 2 || got[0] != 7 || got[1] != 8 {
		t.Fatalf("got %v, want [7 8]", got)
	}
}

func TestStorePutNowFullPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("PutNow on full store did not panic")
		}
	}()
	e := NewEngine(1)
	st := NewStore[int](e, 1)
	st.PutNow(1)
	st.PutNow(2)
}
