package sim

import (
	"testing"
	"time"
)

// Edge cases and performance contracts of the rewritten event kernel.

func TestRunUntilNoEventsAdvancesClock(t *testing.T) {
	e := NewEngine(1)
	e.RunUntil(5 * time.Second)
	if e.Now() != 5*time.Second {
		t.Fatalf("now = %v, want 5s (clock must advance with no events)", e.Now())
	}
	// A second RunUntil earlier than now must not move the clock back.
	e.RunUntil(3 * time.Second)
	if e.Now() != 5*time.Second {
		t.Fatalf("now = %v after earlier RunUntil, want 5s", e.Now())
	}
}

func TestSameTimestampFIFOAtScale(t *testing.T) {
	// 10k same-timestamp events must fire in exact scheduling order:
	// this is the (time, seq) tie-break contract the heap rewrite must
	// preserve, at a scale where any comparison bug would scramble it.
	e := NewEngine(1)
	const n = 10000
	got := make([]int, 0, n)
	for i := 0; i < n; i++ {
		i := i
		e.At(time.Second, func() { got = append(got, i) })
	}
	e.Run()
	if len(got) != n {
		t.Fatalf("fired %d events, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time FIFO violated at %d: got %d", i, v)
		}
	}
}

func TestHeapInterleavedPushPop(t *testing.T) {
	// Mixed timestamps inserted out of order across several batches:
	// the 4-ary sift paths must still yield a globally sorted firing
	// sequence.
	e := NewEngine(1)
	var fired []Time
	record := func() { fired = append(fired, e.Now()) }
	// Descending then ascending then interleaved.
	for i := 100; i > 0; i-- {
		e.At(Time(i)*time.Millisecond, record)
	}
	for i := 101; i <= 200; i++ {
		e.At(Time(i)*time.Millisecond, record)
	}
	e.Run()
	if len(fired) != 200 {
		t.Fatalf("fired %d, want 200", len(fired))
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("out of order at %d: %v < %v", i, fired[i], fired[i-1])
		}
	}
}

func TestLiveProcsLeakDetection(t *testing.T) {
	e := NewEngine(1)
	s := NewSignal(e)
	e.Spawn("stuck", func(p *Proc) {
		s.Wait(p) // never fired
	})
	e.Spawn("fine", func(p *Proc) { p.Sleep(time.Second) })
	e.Run()
	if got := e.LiveProcs(); got != 1 {
		t.Fatalf("LiveProcs = %d, want 1 (the waiter parked on a never-fired signal)", got)
	}
}

func TestEventZeroAllocSteadyState(t *testing.T) {
	// The 0 allocs/event contract: once the heap slice has grown to the
	// working set's high-water mark, scheduling and firing events must
	// not allocate. This is what lets full-scale runs process hundreds
	// of millions of events without GC pressure.
	e := NewEngine(1)
	fn := func() {}
	// Warm up the heap slice.
	for i := 0; i < 64; i++ {
		e.After(time.Microsecond, fn)
	}
	e.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		e.After(time.Microsecond, fn)
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("allocs per event = %.1f, want 0", allocs)
	}
}

func TestProcPoolReuse(t *testing.T) {
	e := NewEngine(1)
	var first, second *Proc
	e.Spawn("a", func(p *Proc) { first = p })
	e.Run()
	e.Spawn("b", func(p *Proc) { second = p })
	e.Run()
	if first == nil || first != second {
		t.Fatalf("Proc struct not reused: %p vs %p", first, second)
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d, want 0", e.LiveProcs())
	}
}

// BenchmarkEngineEvents measures raw event-layer throughput with a
// pre-bound callback: the steady-state cost of one push+pop+dispatch
// cycle, reported as events/s. This is the kernel's headline number.
func BenchmarkEngineEvents(b *testing.B) {
	e := NewEngine(1)
	n := b.N
	var fn func()
	fn = func() {
		if n > 0 {
			n--
			e.After(time.Microsecond, fn)
		}
	}
	e.After(time.Microsecond, fn)
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkSimProcs measures pooled goroutine-process throughput
// (spawn + sleep + retire), reported as procs/s.
func BenchmarkSimProcs(b *testing.B) {
	e := NewEngine(1)
	body := func(p *Proc) { p.Sleep(time.Microsecond) }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Spawn("p", body)
		if (i+1)%1024 == 0 {
			e.Run()
		}
	}
	e.Run()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "procs/s")
}

// BenchmarkFlowTasks measures the lightweight flow path on the hot task
// shape (sleep → acquire → sleep → release → bookkeeping), reported as
// tasks/s. Compare against BenchmarkSimProcs for the goroutine-vs-flow
// gap.
func BenchmarkFlowTasks(b *testing.B) {
	e := NewEngine(1)
	r := NewResource(e, 4)
	done := 0
	fn := func() { done++ }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fl := e.NewFlow()
		fl.Sleep(time.Microsecond)
		fl.Acquire(r, 1)
		fl.Sleep(time.Microsecond)
		fl.Release(r, 1)
		fl.Do(fn)
		fl.Start()
		if (i+1)%1024 == 0 {
			e.Run()
		}
	}
	e.Run()
	if done != b.N {
		b.Fatalf("completed %d flows, want %d", done, b.N)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tasks/s")
}
