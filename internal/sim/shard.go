package sim

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/ring"
)

// ShardedEngine runs one simulation partitioned into fixed logical
// groups, executing the groups either on a single shared Engine (the
// serial oracle, shards == 0) or on shards parallel workers, each
// driving a private Engine per group. Synchronization is conservative:
// the coordinator advances all groups in lockstep epochs of width W (the
// minimum declared cross-group lookahead), and cross-group work travels
// as timestamped messages (Post) through per-shard-pair SPSC ring
// mailboxes that are drained only at epoch barriers.
//
// The determinism contract — the whole point of the design — is that a
// model built on the group/Post discipline produces bit-identical
// results at every shard count, including the serial oracle:
//
//   - The group count is fixed by the model, never derived from the
//     shard count; shards only multiplex groups (group g runs on worker
//     g % shards).
//   - Groups share no mutable state. All coupling goes through Post,
//     whose deliveries are merged in the total order (time, source
//     group, per-source sequence) — a key independent of wall-clock
//     interleaving — and executed in the back band (Engine.AtBack), so a
//     delivery never overtakes the destination's own work at the same
//     timestamp in either mode.
//   - Model randomness comes from an explicit base RNG via
//     RNG.Substream(name, i), never from group engine RNGs (each group
//     engine has a distinct seed, and the serial oracle has only one).
//
// Under those rules the serial oracle runs the identical event sequence
// per group, so golden digests captured serially verify every sharded
// configuration.
type ShardedEngine struct {
	groups []*group
	look   lookaheads

	// serialEng is the one shared engine in oracle mode (shards == 0).
	serialEng *Engine

	// Sharded mode: worker goroutines, per-pair mailboxes, atomics-only
	// stats (readable concurrently by flight-recorder sources).
	nshards     int
	workers     []*shardWorker
	mail        [][]ring.Ring[message] // [srcShard][dstShard]
	stats       []shardStats
	epochs      atomic.Uint64
	epochWallNs atomic.Int64
}

// message is one cross-group event in flight: fn runs on the destination
// group's engine at virtual time at. The (at, src, seq) triple is the
// deterministic merge key; seq is a per-source counter, so the key never
// depends on how groups are packed onto shards.
type message struct {
	at       Time
	src, dst int32
	seq      uint64
	fn       func()
}

func msgBefore(a, b *message) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// msgHeap is a binary min-heap of messages in msgBefore order — the
// per-destination pending queue that realizes the deterministic merge.
type msgHeap struct{ h []message }

func (q *msgHeap) len() int      { return len(q.h) }
func (q *msgHeap) min() *message { return &q.h[0] }

func (q *msgHeap) push(m message) {
	h := append(q.h, m)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !msgBefore(&m, &h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = m
	q.h = h
}

func (q *msgHeap) pop() message {
	h := q.h
	root := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = message{}
	h = h[:n]
	q.h = h
	if n > 0 {
		i := 0
		for {
			child := 2*i + 1
			if child >= n {
				break
			}
			if child+1 < n && msgBefore(&h[child+1], &h[child]) {
				child++
			}
			if !msgBefore(&h[child], &last) {
				break
			}
			h[i] = h[child]
			i = child
		}
		h[i] = last
	}
	return root
}

// group is one logical partition of the model: its engine, its pending
// (routed but undelivered) messages, and its outbound message counter.
type group struct {
	id      int
	eng     *Engine
	pending msgHeap
	postSeq uint64
	// flushFn delivers this group's earliest pending message; it is the
	// back-band event the serial oracle schedules once per Post.
	flushFn func()
}

// shardStats are per-shard counters maintained with atomics so a flight
// recorder source can snapshot a live run from another goroutine.
type shardStats struct {
	posted      atomic.Uint64
	delivered   atomic.Uint64
	backlog     atomic.Int64
	backlogPeak atomic.Int64
	events      atomic.Uint64
	busyNs      atomic.Int64
}

// ShardStat is a point-in-time snapshot of one shard's progress, for
// stalled-shard diagnosis: a shard with low Events and high StallNs is
// starved; one with high Backlog is the bottleneck destination.
type ShardStat struct {
	Shard  int
	Groups int
	// Epochs is the number of lockstep windows completed (engine-wide).
	Epochs uint64
	// Events counts events scheduled across the shard's group engines.
	Events uint64
	// Posted / Delivered count cross-group messages sent by / delivered
	// to this shard's groups; Backlog is routed-but-undelivered depth.
	Posted      uint64
	Delivered   uint64
	Backlog     int64
	BacklogPeak int64
	// StallNs is wall time this shard spent waiting at epoch barriers
	// for slower shards (total barrier wall minus this shard's busy
	// time).
	StallNs int64
}

// shardWorker drives the engines of the groups assigned to one shard.
// Each engine is only ever touched by its worker goroutine (or, between
// start/done barrier handoffs, by the coordinator), so the model needs
// no locks and the race detector sees clean happens-before edges.
type shardWorker struct {
	owner  *ShardedEngine
	id     int
	groups []*group
	bound  Time
	start  chan struct{}
	done   chan struct{}
}

// NewSharded builds a sharded simulation of the given number of logical
// groups. shards == 0 selects the serial oracle: every group on one
// shared Engine, same Post semantics, zero goroutines. shards > groups
// is clamped (a shard with no groups would only burn barrier time).
func NewSharded(seed uint64, groups, shards int) *ShardedEngine {
	if groups < 1 {
		panic("sim: NewSharded needs >= 1 group")
	}
	if shards < 0 {
		shards = 0
	}
	if shards > groups {
		shards = groups
	}
	s := &ShardedEngine{nshards: shards}
	if shards == 0 {
		eng := NewEngine(seed)
		s.serialEng = eng
		s.stats = make([]shardStats, 1)
		for i := 0; i < groups; i++ {
			g := &group{id: i, eng: eng}
			g.flushFn = func() { s.flushSerial(g) }
			s.groups = append(s.groups, g)
		}
		return s
	}
	s.stats = make([]shardStats, shards)
	s.mail = make([][]ring.Ring[message], shards)
	for i := range s.mail {
		s.mail[i] = make([]ring.Ring[message], shards)
	}
	for i := 0; i < groups; i++ {
		// Group engines get distinct derived seeds, but models following
		// the determinism contract never draw from them: an engine RNG
		// cannot be identical between oracle and sharded modes.
		s.groups = append(s.groups, &group{id: i, eng: NewEngine(splitmix64(seed) + uint64(i))})
	}
	return s
}

// NumGroups returns the fixed logical group count.
func (s *ShardedEngine) NumGroups() int { return len(s.groups) }

// NumShards returns the worker count; 0 means the serial oracle.
func (s *ShardedEngine) NumShards() int { return s.nshards }

// Engine returns group g's engine. In oracle mode every group shares one
// engine.
func (s *ShardedEngine) Engine(g int) *Engine { return s.groups[g].eng }

// SetLookahead declares the default minimum cross-group message delay.
// Must be called before Post or Run.
func (s *ShardedEngine) SetLookahead(d Time) { s.look.set(d) }

// SetLink declares a per-link lookahead override for messages src→dst.
// The epoch width is the minimum over the default and all overrides, so
// a short link narrows every window — declare overrides only where the
// model really has a shorter bound.
func (s *ShardedEngine) SetLink(src, dst int, d Time) { s.look.setLink(src, dst, d) }

// Post sends fn to run on group dst's engine at the sender's current
// time plus delay. delay must be at least the declared lookahead for the
// link — that bound is what lets whole windows run without
// synchronization — and src must be the group whose event is currently
// executing (Post is called from model code running inside group src).
// Same-group scheduling should use the group engine's At/After directly.
func (s *ShardedEngine) Post(src, dst int, delay Time, fn func()) {
	if src == dst {
		panic("sim: Post within one group; use the group engine's At/After")
	}
	look := s.look.get(src, dst)
	if delay < look {
		panic(fmt.Sprintf("sim: Post %d->%d delay %v below declared lookahead %v", src, dst, delay, look))
	}
	sg := s.groups[src]
	sg.postSeq++
	m := message{at: sg.eng.now + delay, src: int32(src), dst: int32(dst), seq: sg.postSeq, fn: fn}
	if s.nshards == 0 {
		// Oracle: route immediately and schedule one back-band flush at
		// the delivery time. Each flush pops the heap minimum, so k
		// same-time deliveries execute in (at, src, seq) order no matter
		// the order the k Posts happened — exactly the barrier merge.
		s.groups[dst].pending.push(m)
		st := &s.stats[0]
		st.posted.Add(1)
		if b := st.backlog.Add(1); b > st.backlogPeak.Load() {
			st.backlogPeak.Store(b)
		}
		sg.eng.AtBack(m.at, s.groups[dst].flushFn)
		return
	}
	s.stats[src%s.nshards].posted.Add(1)
	// SPSC: only src's worker pushes this ring; only the coordinator
	// (between barriers) pops it.
	s.mail[src%s.nshards][dst%s.nshards].Push(m)
}

// flushSerial delivers group g's earliest pending message in oracle mode.
func (s *ShardedEngine) flushSerial(g *group) {
	m := g.pending.pop()
	if m.at != g.eng.now {
		panic(fmt.Sprintf("sim: oracle flush at %v found message for %v", g.eng.now, m.at))
	}
	st := &s.stats[0]
	st.delivered.Add(1)
	st.backlog.Add(-1)
	m.fn()
}

// Run executes the simulation to completion and returns the final
// virtual time (the max across groups). In sharded mode it is the epoch
// coordinator: drain mailboxes, route to pending heaps, compute the next
// window [M, M+W) from the global minimum next-event time M (skip-ahead:
// idle stretches cost one barrier, not one barrier per W), then release
// all workers and wait at the barrier.
func (s *ShardedEngine) Run() Time {
	if s.nshards == 0 {
		end := s.serialEng.Run()
		s.stats[0].events.Store(s.serialEng.EventsScheduled())
		return end
	}
	w := s.look.window()
	s.startWorkers()
	defer s.stopWorkers()
	for {
		s.drainMail()
		m, ok := s.minNext()
		if !ok {
			break
		}
		bound := m + w
		if bound <= m { // overflow: nothing after m can be bounded, run it all
			bound = Forever
		}
		for _, wk := range s.workers {
			wk.bound = bound
		}
		t0 := time.Now()
		for _, wk := range s.workers {
			wk.start <- struct{}{}
		}
		for _, wk := range s.workers {
			<-wk.done
		}
		s.epochWallNs.Add(time.Since(t0).Nanoseconds())
		s.epochs.Add(1)
	}
	var end Time
	for _, g := range s.groups {
		if g.eng.now > end {
			end = g.eng.now
		}
	}
	return end
}

// drainMail routes every mailbox message to its destination group's
// pending heap. Coordinator-only, between barriers.
func (s *ShardedEngine) drainMail() {
	for si := range s.mail {
		for di := range s.mail[si] {
			q := &s.mail[si][di]
			n := q.Len()
			if n == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				m := q.Pop()
				s.groups[m.dst].pending.push(m)
			}
			st := &s.stats[di]
			if b := st.backlog.Add(int64(n)); b > st.backlogPeak.Load() {
				st.backlogPeak.Store(b)
			}
		}
	}
}

// minNext returns the earliest pending virtual time across all group
// engines and routed-but-undelivered messages.
func (s *ShardedEngine) minNext() (Time, bool) {
	var m Time
	ok := false
	for _, g := range s.groups {
		if t, have := g.eng.NextEventTime(); have && (!ok || t < m) {
			m, ok = t, true
		}
		if g.pending.len() > 0 {
			if t := g.pending.min().at; !ok || t < m {
				m, ok = t, true
			}
		}
	}
	return m, ok
}

func (s *ShardedEngine) startWorkers() {
	s.workers = make([]*shardWorker, s.nshards)
	for i := range s.workers {
		wk := &shardWorker{owner: s, id: i, start: make(chan struct{}), done: make(chan struct{})}
		for gi := i; gi < len(s.groups); gi += s.nshards {
			wk.groups = append(wk.groups, s.groups[gi])
		}
		s.workers[i] = wk
		go wk.loop()
	}
}

func (s *ShardedEngine) stopWorkers() {
	for _, wk := range s.workers {
		close(wk.start)
	}
	s.workers = nil
}

// loop is the worker body: once per epoch, deliver each owned group's
// due messages in merge order into the back band, then run the group's
// events strictly before the window bound.
func (w *shardWorker) loop() {
	st := &w.owner.stats[w.id]
	for range w.start {
		t0 := time.Now()
		for _, g := range w.groups {
			nd := 0
			for g.pending.len() > 0 && g.pending.min().at < w.bound {
				m := g.pending.pop()
				g.eng.AtBack(m.at, m.fn)
				nd++
			}
			if nd > 0 {
				st.delivered.Add(uint64(nd))
				st.backlog.Add(int64(-nd))
			}
			g.eng.RunBefore(w.bound)
		}
		var ev uint64
		for _, g := range w.groups {
			ev += g.eng.EventsScheduled()
		}
		st.events.Store(ev)
		st.busyNs.Add(time.Since(t0).Nanoseconds())
		w.done <- struct{}{}
	}
}

// LiveProcs reports spawned-but-unfinished processes and flows across
// all groups — nonzero after Run usually means deadlocked model code
// (e.g. waiting on a reply that was never posted). Call after Run.
func (s *ShardedEngine) LiveProcs() int {
	if s.nshards == 0 {
		return s.serialEng.LiveProcs()
	}
	n := 0
	for _, g := range s.groups {
		n += g.eng.LiveProcs()
	}
	return n
}

// Snapshot returns per-shard progress counters. Safe to call from any
// goroutine at any time (counters are atomics); in oracle mode it
// returns one pseudo-shard whose event count is updated when Run
// returns.
func (s *ShardedEngine) Snapshot() []ShardStat {
	epochs := s.epochs.Load()
	wall := s.epochWallNs.Load()
	out := make([]ShardStat, len(s.stats))
	for i := range s.stats {
		st := &s.stats[i]
		busy := st.busyNs.Load()
		stall := wall - busy
		if stall < 0 {
			stall = 0
		}
		ngroups := 0
		if s.nshards == 0 {
			ngroups = len(s.groups)
		} else {
			ngroups = (len(s.groups) - i + s.nshards - 1) / s.nshards
		}
		out[i] = ShardStat{
			Shard:       i,
			Groups:      ngroups,
			Epochs:      epochs,
			Events:      st.events.Load(),
			Posted:      st.posted.Load(),
			Delivered:   st.delivered.Load(),
			Backlog:     st.backlog.Load(),
			BacklogPeak: st.backlogPeak.Load(),
			StallNs:     stall,
		}
	}
	return out
}
