// Package sim provides a deterministic discrete-event simulation (DES)
// kernel used to model HPC substrates (clusters, schedulers, filesystems,
// container runtimes) at scales far beyond what the local machine can run
// for real.
//
// The kernel has three layers:
//
//   - An event layer: a hand-rolled 4-ary min-heap of event values keyed
//     by (time, sequence) with a virtual clock. Callbacks scheduled with
//     At/After run in the engine goroutine in deterministic order.
//     Events are stored by value (no boxing, no per-event allocation in
//     steady state), so the event layer sustains tens of millions of
//     events per second — it is the load generator for every full-scale
//     experiment.
//
//   - A process layer (see Proc): simulated processes are goroutines that
//     cooperate with the engine through strict channel handoff, so exactly
//     one goroutine — either the engine or a single process — runs at any
//     moment. Proc structs and their resume channels are pooled across
//     spawns. Results are bit-for-bit reproducible for a given seed.
//
//   - A lightweight flow layer (see Flow): straight-line "sleep → do →
//     done" activities run as chained event callbacks with no goroutine
//     and no channel handoffs, which is what makes million-task model
//     loops cheap. Flows and their step programs are pooled.
//
// Virtual time is a time.Duration offset from the simulation epoch.
package sim

import (
	"fmt"
	"math"
	"time"
)

// Time is a virtual timestamp: the duration elapsed since the simulation
// epoch (t=0). It is a distinct concept from wall-clock time.
type Time = time.Duration

// Forever is a sentinel meaning "no deadline".
const Forever Time = math.MaxInt64

// event is one scheduled callback, stored by value inside the heap
// slice. The (at, seq) pair is the total order: seq breaks ties so
// same-timestamp events fire in scheduling order (FIFO).
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// before reports whether a fires before b in the deterministic order.
func (a *event) before(b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// heapArity is the fan-out of the event heap. A 4-ary heap does ~half
// the levels of a binary heap per sift at the cost of up to three extra
// comparisons per level; for the kernel's push/pop mix (every event is
// pushed and popped exactly once) the shallower tree wins, and the wider
// nodes are friendlier to the cache since siblings share lines.
const heapArity = 4

// Engine is a discrete-event simulation engine. The zero value is not
// usable; construct with NewEngine.
type Engine struct {
	now Time
	seq uint64
	// backSeq numbers back-band events (AtBack): cross-shard message
	// deliveries that must run after every normal event at the same
	// timestamp. Back events carry seq = backBand|backSeq, so the
	// ordinary (at, seq) comparison already places them last — the hot
	// path pays nothing for the second band.
	backSeq uint64
	// events is a heapArity-ary min-heap of event values ordered by
	// (at, seq). Index 0 is the root. No element holds its own index:
	// the kernel never removes from the middle, so events are
	// "index-free" and can be moved with plain copies.
	events  []event
	yield   chan struct{}
	rng     *RNG
	running bool
	// nproc counts live (spawned, unfinished) processes and flows, for
	// diagnostics.
	nproc int
	// procFree recycles Proc structs (and their resume channels) across
	// spawns; flowFree recycles Flow state across runs.
	procFree []*Proc
	flowFree []*Flow
}

// NewEngine returns an engine whose clock starts at 0 and whose random
// streams derive from seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{
		yield: make(chan struct{}),
		rng:   NewRNG(seed),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// RNG returns the engine's root random stream. Components needing
// independent streams should use RNG().Split(name).
func (e *Engine) RNG() *RNG { return e.rng }

// At schedules fn to run at virtual time t. Scheduling in the past panics:
// it indicates a logic error in the model. At performs no allocation in
// steady state (the heap slice grows amortized with the high-water mark
// of pending events).
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	e.push(event{at: t, seq: e.seq, fn: fn})
}

// backBand is the seq-space bit that places an event after every normal
// event at the same timestamp. Normal seq values are counters (an engine
// would need ~9e18 events to reach it), so the two bands cannot collide.
const backBand uint64 = 1 << 63

// AtBack schedules fn at virtual time t in the back band: it runs after
// every normal event at t, including ones scheduled later (even from
// within back-band callbacks). Back-band events order FIFO among
// themselves. This is the delivery slot for cross-shard messages: a
// message timestamped t must not overtake the destination's own work at
// t, and that rule must hold identically whether the destination runs on
// a private sharded engine or interleaved with every other group on the
// serial oracle engine.
func (e *Engine) AtBack(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling back event at %v before now %v", t, e.now))
	}
	e.backSeq++
	e.push(event{at: t, seq: backBand | e.backSeq, fn: fn})
}

// After schedules fn to run d after the current virtual time. Negative d is
// clamped to zero.
func (e *Engine) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// push inserts ev, sifting the hole up from the new leaf.
func (e *Engine) push(ev event) {
	h := append(e.events, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / heapArity
		if !ev.before(&h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = ev
	e.events = h
}

// pop removes and returns the earliest event, sifting the displaced last
// element down from the root.
func (e *Engine) pop() event {
	h := e.events
	root := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = event{} // release the callback reference for GC
	h = h[:n]
	e.events = h
	if n > 0 {
		i := 0
		for {
			child := i*heapArity + 1
			if child >= n {
				break
			}
			// Find the smallest of up to heapArity children.
			min := child
			end := child + heapArity
			if end > n {
				end = n
			}
			for j := child + 1; j < end; j++ {
				if h[j].before(&h[min]) {
					min = j
				}
			}
			if !h[min].before(&last) {
				break
			}
			h[i] = h[min]
			i = min
		}
		h[i] = last
	}
	return root
}

// Step runs the single earliest pending event and reports whether one
// existed.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := e.pop()
	e.now = ev.at
	ev.fn()
	return true
}

// Run executes events until none remain, and returns the final virtual
// time.
func (e *Engine) Run() Time {
	e.running = true
	defer func() { e.running = false }()
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// t (if it is ahead of the last event) and returns.
func (e *Engine) RunUntil(t Time) {
	e.running = true
	defer func() { e.running = false }()
	for len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunBefore executes events with timestamps strictly < t and returns,
// leaving the clock at the last executed event. It is the window
// primitive of the sharded scheduler: a shard may safely run everything
// before the epoch bound, because conservative lookahead guarantees no
// other shard can still send it a message timestamped earlier. Unlike
// RunUntil the clock is not advanced to t, so messages timestamped
// exactly at the bound can still be delivered before the next window.
func (e *Engine) RunBefore(t Time) {
	e.running = true
	defer func() { e.running = false }()
	for len(e.events) > 0 && e.events[0].at < t {
		e.Step()
	}
}

// NextEventTime reports the timestamp of the earliest pending event.
func (e *Engine) NextEventTime() (Time, bool) {
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events[0].at, true
}

// EventsScheduled reports how many events this engine has ever scheduled
// across both bands — a cheap progress meter for per-shard gauges.
func (e *Engine) EventsScheduled() uint64 { return e.seq + e.backSeq }

// Pending reports the number of scheduled, not-yet-fired events.
func (e *Engine) Pending() int { return len(e.events) }

// LiveProcs reports the number of spawned processes and started flows
// that have not finished. A nonzero value after Run returns usually means
// processes are deadlocked waiting on signals that will never fire.
func (e *Engine) LiveProcs() int { return e.nproc }
