// Package sim provides a deterministic discrete-event simulation (DES)
// kernel used to model HPC substrates (clusters, schedulers, filesystems,
// container runtimes) at scales far beyond what the local machine can run
// for real.
//
// The kernel has two layers:
//
//   - An event layer: a binary-heap event queue keyed by (time, sequence)
//     with a virtual clock. Callbacks scheduled with At/After run in the
//     engine goroutine in deterministic order.
//
//   - A process layer (see Proc): simulated processes are goroutines that
//     cooperate with the engine through strict channel handoff, so exactly
//     one goroutine — either the engine or a single process — runs at any
//     moment. Results are bit-for-bit reproducible for a given seed.
//
// Virtual time is a time.Duration offset from the simulation epoch.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a virtual timestamp: the duration elapsed since the simulation
// epoch (t=0). It is a distinct concept from wall-clock time.
type Time = time.Duration

// Forever is a sentinel meaning "no deadline".
const Forever Time = math.MaxInt64

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulation engine. The zero value is not
// usable; construct with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	yield   chan struct{}
	rng     *RNG
	running bool
	// nproc counts live (spawned, unfinished) processes, for diagnostics.
	nproc int
}

// NewEngine returns an engine whose clock starts at 0 and whose random
// streams derive from seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{
		yield: make(chan struct{}),
		rng:   NewRNG(seed),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// RNG returns the engine's root random stream. Components needing
// independent streams should use RNG().Split(name).
func (e *Engine) RNG() *RNG { return e.rng }

// At schedules fn to run at virtual time t. Scheduling in the past panics:
// it indicates a logic error in the model.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current virtual time. Negative d is
// clamped to zero.
func (e *Engine) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// Step runs the single earliest pending event and reports whether one
// existed.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.at
	ev.fn()
	return true
}

// Run executes events until none remain, and returns the final virtual
// time.
func (e *Engine) Run() Time {
	e.running = true
	defer func() { e.running = false }()
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// t (if it is ahead of the last event) and returns.
func (e *Engine) RunUntil(t Time) {
	e.running = true
	defer func() { e.running = false }()
	for len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// Pending reports the number of scheduled, not-yet-fired events.
func (e *Engine) Pending() int { return len(e.events) }

// LiveProcs reports the number of spawned processes that have not finished.
// A nonzero value after Run returns usually means processes are deadlocked
// waiting on signals that will never fire.
func (e *Engine) LiveProcs() int { return e.nproc }
