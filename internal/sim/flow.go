package sim

import "time"

// Flow is a lightweight simulated activity: a straight-line program of
// steps (sleep, resource acquire/release, calls) executed as chained
// engine events, with no goroutine and no channel handoffs. It is the
// cheap execution vehicle for the hot "sleep → do → done" task shape —
// per-task work in cluster instances, payload models in full-scale
// experiments — where goroutine-per-task costs dominate a run. Use Proc
// for control flow a straight-line program cannot express (loops,
// branching on wait results, Store operations).
//
// A flow is built step by step, then started:
//
//	fl := e.NewFlow()
//	fl.Sleep(setup)
//	fl.Acquire(disk, 1)
//	fl.SleepFn(transferTime) // duration drawn when the step runs
//	fl.Release(disk, 1)
//	fl.Do(finish)
//	fl.Start()
//
// Start schedules the program's first step at the current virtual time
// (like Spawn's start event); each Sleep schedules the continuation as a
// plain engine event and each Acquire parks the flow in the resource's
// FIFO queue alongside process waiters. A flow therefore produces
// exactly the same event-queue footprint — the same (time, seq) pattern
// — as the equivalent goroutine process, which is what keeps results
// bit-identical when a model switches a hot loop from Spawn to Flow.
//
// Guard/Finally give the one conditional the task shape needs: a Guard
// step whose predicate returns false skips forward to the Finally mark,
// so cleanup/bookkeeping steps still run when the work is abandoned.
//
// Flow structs and their step programs are pooled on the engine: when a
// program finishes, the struct returns to the free list and the next
// NewFlow reuses it, so steady-state flow execution allocates nothing
// beyond the closures the caller's own steps capture.
type Flow struct {
	e       *Engine
	steps   []flowStep
	pc      int
	finally int // step index Guard failures jump to; -1 = end of program
	started bool
	// advanceFn is the pre-bound continuation scheduled by sleeps and
	// queued by acquires — one closure per pooled struct, not per step.
	advanceFn func()
}

type stepKind uint8

const (
	stepSleep stepKind = iota
	stepSleepFn
	stepSleepSized
	stepAcquire
	stepRelease
	stepDo
	stepDoSized
	stepGuard
)

// flowStep is one instruction. Fields are overlaid by kind: d for
// stepSleep; dfn for stepSleepFn; dsz+arg for stepSleepSized; res+n for
// stepAcquire/stepRelease; do for stepDo; dosz+arg for stepDoSized;
// pred for stepGuard.
type flowStep struct {
	kind stepKind
	d    time.Duration
	n    int
	arg  int64
	res  *Resource
	dfn  func() time.Duration
	dsz  func(int64) time.Duration
	do   func()
	dosz func(int64)
	pred func() bool
}

// NewFlow returns an empty flow program, recycled from the engine's free
// list when possible. The flow must be Started (or abandoned) before the
// engine finishes running.
func (e *Engine) NewFlow() *Flow {
	if n := len(e.flowFree); n > 0 {
		fl := e.flowFree[n-1]
		e.flowFree[n-1] = nil
		e.flowFree = e.flowFree[:n-1]
		return fl
	}
	fl := &Flow{e: e, finally: -1}
	fl.advanceFn = fl.advance
	return fl
}

// Engine returns the engine this flow belongs to.
func (fl *Flow) Engine() *Engine { return fl.e }

// Now returns the current virtual time.
func (fl *Flow) Now() Time { return fl.e.now }

// Sleep appends a step that suspends the flow for d of virtual time.
// Negative d is clamped to zero (still yields to the engine once,
// matching Proc.Sleep).
func (fl *Flow) Sleep(d time.Duration) {
	fl.steps = append(fl.steps, flowStep{kind: stepSleep, d: d})
}

// SleepFn appends a sleep whose duration is computed when the step runs,
// not when the program is built — so random draws (service times,
// jitter) happen at the same execution point, in the same order, as they
// would in the equivalent process code.
func (fl *Flow) SleepFn(dfn func() time.Duration) {
	fl.steps = append(fl.steps, flowStep{kind: stepSleepFn, dfn: dfn})
}

// SleepSized appends a sleep whose duration is computed at execution
// time as fn(arg). It exists so duration models parameterized by one
// value (a transfer size, a payload length) can pre-bind fn once and
// avoid a fresh capturing closure per step — the arg rides in the step
// itself.
func (fl *Flow) SleepSized(fn func(int64) time.Duration, arg int64) {
	fl.steps = append(fl.steps, flowStep{kind: stepSleepSized, dsz: fn, arg: arg})
}

// Acquire appends a step that obtains n units of r, waiting in r's FIFO
// queue if necessary.
func (fl *Flow) Acquire(r *Resource, n int) {
	fl.steps = append(fl.steps, flowStep{kind: stepAcquire, res: r, n: n})
}

// Release appends a step that returns n units of r.
func (fl *Flow) Release(r *Resource, n int) {
	fl.steps = append(fl.steps, flowStep{kind: stepRelease, res: r, n: n})
}

// Do appends a step that runs fn in engine context.
func (fl *Flow) Do(fn func()) {
	fl.steps = append(fl.steps, flowStep{kind: stepDo, do: fn})
}

// DoSized appends a step that runs fn(arg) in engine context — the
// pre-bindable counterpart of Do for per-item bookkeeping (see
// SleepSized).
func (fl *Flow) DoSized(fn func(int64), arg int64) {
	fl.steps = append(fl.steps, flowStep{kind: stepDoSized, dosz: fn, arg: arg})
}

// Guard appends a step that runs pred; when pred returns false the flow
// jumps to the Finally mark (or straight to completion if none is set),
// skipping the steps in between.
func (fl *Flow) Guard(pred func() bool) {
	fl.steps = append(fl.steps, flowStep{kind: stepGuard, pred: pred})
}

// Finally marks the current end of the program as the target Guard
// failures jump to. Steps appended after Finally run whether or not a
// Guard failed. At most one mark is meaningful; the last call wins.
func (fl *Flow) Finally() {
	fl.finally = len(fl.steps)
}

// Start schedules the program to begin at the current virtual time and
// counts the flow in LiveProcs until it completes. Like Spawn, the first
// step runs when the engine reaches the flow's start event, not inline.
func (fl *Flow) Start() {
	if fl.started {
		panic("sim: Flow started twice")
	}
	fl.started = true
	fl.e.nproc++
	fl.e.After(0, fl.advanceFn)
}

// advance executes steps from pc until the program parks (sleep or
// contended acquire) or completes. It runs in engine context.
func (fl *Flow) advance() {
	for fl.pc < len(fl.steps) {
		step := &fl.steps[fl.pc]
		fl.pc++
		switch step.kind {
		case stepSleep:
			fl.e.After(step.d, fl.advanceFn)
			return
		case stepSleepFn:
			fl.e.After(step.dfn(), fl.advanceFn)
			return
		case stepSleepSized:
			fl.e.After(step.dsz(step.arg), fl.advanceFn)
			return
		case stepAcquire:
			r, n := step.res, step.n
			if n <= 0 || n > r.cap {
				panic("sim: Flow.Acquire n out of range")
			}
			if r.waiters.Len() == 0 && r.inUse+n <= r.cap {
				// Uncontended: take the units and keep executing,
				// exactly as Resource.Acquire returns immediately.
				r.inUse += n
				continue
			}
			r.waiters.Push(resWaiter{fn: fl.advanceFn, n: n})
			return
		case stepRelease:
			step.res.Release(step.n)
		case stepDo:
			step.do()
		case stepDoSized:
			step.dosz(step.arg)
		case stepGuard:
			if !step.pred() {
				if fl.finally >= 0 {
					fl.pc = fl.finally
				} else {
					fl.pc = len(fl.steps)
				}
			}
		}
	}
	fl.finish()
}

// finish retires a completed program to the free list.
func (fl *Flow) finish() {
	fl.e.nproc--
	// Clear captured closures so pooled programs do not pin old state.
	for i := range fl.steps {
		fl.steps[i] = flowStep{}
	}
	fl.steps = fl.steps[:0]
	fl.pc = 0
	fl.finally = -1
	fl.started = false
	fl.e.flowFree = append(fl.e.flowFree, fl)
}
