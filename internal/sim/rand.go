package sim

import (
	"hash/fnv"
	"math"
	randv2 "math/rand/v2"
	"time"
)

// RNG is a deterministic random stream with the distribution helpers the
// substrate models need. Streams are splittable by name so each component
// (scheduler, filesystem, every node...) draws from an independent,
// reproducible sequence regardless of event interleaving.
type RNG struct {
	seed uint64
	r    *randv2.Rand
}

// NewRNG returns a stream derived from seed.
func NewRNG(seed uint64) *RNG {
	mixed := splitmix64(seed)
	return &RNG{seed: seed, r: randv2.New(randv2.NewPCG(mixed, splitmix64(mixed)))}
}

// Split derives an independent child stream identified by name. Splitting
// with the same (seed, name) always yields the same stream.
func (g *RNG) Split(name string) *RNG {
	h := fnv.New64a()
	h.Write([]byte(name))
	return NewRNG(g.seed ^ splitmix64(h.Sum64()))
}

// Substream derives the i-th member of a named family of independent
// child streams. Unlike chaining Split with a formatted name, the
// derivation is purely arithmetic in (seed, name, i) — no per-call
// string formatting — and it is the stream contract sharded models rely
// on: every entity (node, group, instance) draws from Substream(name, i)
// of one base RNG, so the streams an entity sees depend only on its
// index, never on how entities are partitioned across shards or in what
// order other entities draw. Substream(name, i) is distinct from
// Split(name) for every i.
func (g *RNG) Substream(name string, i uint64) *RNG {
	h := fnv.New64a()
	h.Write([]byte(name))
	family := splitmix64(g.seed ^ splitmix64(h.Sum64()))
	return NewRNG(family + splitmix64(i^0xd1b54a32d192ed03))
}

// splitmix64 is the standard seed-scrambling finalizer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// IntN returns a uniform value in [0, n).
func (g *RNG) IntN(n int) int { return g.r.IntN(n) }

// Uniform returns a uniform value in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 { return lo + (hi-lo)*g.r.Float64() }

// Normal returns a normal draw with the given mean and standard deviation.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// Exponential returns an exponential draw with the given mean (not rate).
func (g *RNG) Exponential(mean float64) float64 {
	return g.r.ExpFloat64() * mean
}

// LogNormal returns exp(N(mu, sigma)). Note mu/sigma parameterize the
// underlying normal, not the resulting distribution's mean.
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*g.r.NormFloat64())
}

// Pareto returns a Pareto draw with scale xm and shape alpha. Heavy tails
// (alpha near 1) model straggler phenomena such as the Fig 1 outlier nodes.
func (g *RNG) Pareto(xm, alpha float64) float64 {
	u := g.r.Float64()
	for u == 0 {
		u = g.r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Bernoulli reports true with probability prob.
func (g *RNG) Bernoulli(prob float64) bool { return g.r.Float64() < prob }

// Dur converts a (seconds, float64) draw helper result to a Duration,
// clamping negatives to zero.
func Dur(seconds float64) time.Duration {
	if seconds <= 0 {
		return 0
	}
	return time.Duration(seconds * float64(time.Second))
}

// Jitter returns d scaled by a uniform factor in [1-frac, 1+frac].
func (g *RNG) Jitter(d time.Duration, frac float64) time.Duration {
	f := g.Uniform(1-frac, 1+frac)
	return time.Duration(float64(d) * f)
}

// DurNormal draws a normal duration with the given mean and stddev,
// clamped at min.
func (g *RNG) DurNormal(mean, stddev, min time.Duration) time.Duration {
	d := time.Duration(g.Normal(float64(mean), float64(stddev)))
	if d < min {
		return min
	}
	return d
}

// DurExp draws an exponential duration with the given mean.
func (g *RNG) DurExp(mean time.Duration) time.Duration {
	return time.Duration(g.Exponential(float64(mean)))
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements via swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }
