package sim

import "time"

// MonitorSample is one observation of a resource's state.
type MonitorSample struct {
	T     Time
	InUse int
	Queue int
}

// Monitor samples a Resource at a fixed virtual interval, producing
// utilization and queue-depth series — how experiments quantify
// contention (e.g. Lustre service pressure during a Fig 1 run).
//
// The monitor self-terminates: it only schedules its next sample while
// other events remain pending, so it never keeps a simulation alive.
type Monitor struct {
	res      *Resource
	interval time.Duration
	Samples  []MonitorSample
}

// WatchResource starts sampling r every interval. It must be called
// before Engine.Run.
func WatchResource(e *Engine, r *Resource, interval time.Duration) *Monitor {
	if interval <= 0 {
		interval = time.Second
	}
	m := &Monitor{res: r, interval: interval}
	var tick func()
	tick = func() {
		m.Samples = append(m.Samples, MonitorSample{
			T:     e.Now(),
			InUse: r.InUse(),
			Queue: r.QueueLen(),
		})
		// Only reschedule while the simulation still has work: a lone
		// monitor event must not spin the clock forever.
		if e.Pending() > 0 {
			e.After(interval, tick)
		}
	}
	e.After(0, tick)
	return m
}

// MeanUtilization returns average InUse / capacity over the samples.
func (m *Monitor) MeanUtilization() float64 {
	if len(m.Samples) == 0 || m.res.Cap() == 0 {
		return 0
	}
	var sum float64
	for _, s := range m.Samples {
		sum += float64(s.InUse)
	}
	return sum / float64(len(m.Samples)) / float64(m.res.Cap())
}

// PeakQueue returns the largest observed wait-queue depth.
func (m *Monitor) PeakQueue() int {
	peak := 0
	for _, s := range m.Samples {
		if s.Queue > peak {
			peak = s.Queue
		}
	}
	return peak
}

// PeakInUse returns the largest observed occupancy.
func (m *Monitor) PeakInUse() int {
	peak := 0
	for _, s := range m.Samples {
		if s.InUse > peak {
			peak = s.InUse
		}
	}
	return peak
}
