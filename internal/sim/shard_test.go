package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// fifoLog runs a model where three source groups each post two messages
// that all land on group 0 at exactly t=50ms — the same timestamp as the
// destination's own local event — and the first delivery schedules a new
// normal event at that same instant. The returned log is the execution
// order group 0 observed.
func fifoLog(shards int) []string {
	se := NewSharded(7, 4, shards)
	se.SetLookahead(10 * time.Millisecond)
	var log []string
	de := se.Engine(0)
	de.At(50*time.Millisecond, func() { log = append(log, "local@50") })
	for src := 3; src >= 1; src-- { // build in reverse: order must come from the merge key, not construction
		src := src
		e := se.Engine(src)
		e.At(40*time.Millisecond, func() {
			for k := 0; k < 2; k++ {
				k := k
				se.Post(src, 0, 10*time.Millisecond, func() {
					log = append(log, fmt.Sprintf("msg src%d #%d", src, k))
					if src == 1 && k == 0 {
						// A delivery scheduling normal work at its own
						// timestamp: that work must run before the
						// remaining same-time deliveries (back band).
						de.At(de.Now(), func() { log = append(log, "spawned@50") })
					}
				})
			}
		})
	}
	se.Run()
	return log
}

// TestShardedSameTimestampFIFO pins the cross-shard ordering contract:
// same-timestamp deliveries run after the destination's own events, in
// (source group, per-source sequence) order, and normal events scheduled
// by a delivery still precede the remaining deliveries — identically in
// the serial oracle and at every shard count.
func TestShardedSameTimestampFIFO(t *testing.T) {
	want := []string{
		"local@50",
		"msg src1 #0",
		"spawned@50",
		"msg src1 #1",
		"msg src2 #0",
		"msg src2 #1",
		"msg src3 #0",
		"msg src3 #1",
	}
	for _, shards := range []int{0, 1, 2, 4} {
		got := fifoLog(shards)
		if len(got) != len(want) {
			t.Fatalf("shards=%d: %d entries, want %d: %v", shards, len(got), len(want), got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("shards=%d: order[%d] = %q, want %q (full: %v)", shards, i, got[i], want[i], got)
				break
			}
		}
	}
}

// relayDigest runs a randomized token-relay model across 8 groups —
// procs, resources, substream draws, and cross-group posts all in play —
// and digests every group's observation log plus the final clock.
func relayDigest(seed uint64, shards int) string {
	const (
		G      = 8
		tokens = 16
		hops   = 6
	)
	look := time.Millisecond
	se := NewSharded(seed, G, shards)
	se.SetLookahead(look)
	base := NewRNG(seed)
	logs := make([]*strings.Builder, G)
	rngs := make([]*RNG, G)
	res := make([]*Resource, G)
	for g := 0; g < G; g++ {
		logs[g] = &strings.Builder{}
		rngs[g] = base.Substream("relay", uint64(g))
		res[g] = NewResource(se.Engine(g), 2)
	}
	var deliver func(dst, hop int)
	deliver = func(dst, hop int) {
		e := se.Engine(dst)
		fmt.Fprintf(logs[dst], "%d@%d;", hop, e.Now())
		if hop == 0 {
			return
		}
		e.Spawn("relay", func(p *Proc) {
			res[dst].Acquire(p, 1)
			p.Sleep(Dur(rngs[dst].Exponential(0.002)))
			res[dst].Release(1)
			next := rngs[dst].IntN(G - 1)
			if next >= dst {
				next++
			}
			delay := look + Dur(rngs[dst].Exponential(0.001))
			se.Post(dst, next, delay, func() { deliver(next, hop-1) })
		})
	}
	for g := 0; g < G; g++ {
		g := g
		e := se.Engine(g)
		for i := 0; i < tokens; i++ {
			e.At(Dur(rngs[g].Exponential(0.005)), func() { deliver(g, hops) })
		}
	}
	end := se.Run()
	if n := se.LiveProcs(); n != 0 {
		panic(fmt.Sprintf("relay model leaked %d procs at shards=%d", n, shards))
	}
	h := sha256.New()
	for g := 0; g < G; g++ {
		fmt.Fprintf(h, "g%d:%s\n", g, logs[g].String())
	}
	fmt.Fprintf(h, "end=%d", end)
	return hex.EncodeToString(h.Sum(nil))
}

// TestShardedDeterminismMatrix is the kernel-level digest-equality
// matrix: the relay model must produce one digest across the serial
// oracle and shard counts 1/2/4/8, at GOMAXPROCS 1 and 4.
func TestShardedDeterminismMatrix(t *testing.T) {
	want := relayDigest(1234, 0)
	for _, gmp := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(gmp)
		for _, shards := range []int{1, 2, 4, 8} {
			if got := relayDigest(1234, shards); got != want {
				runtime.GOMAXPROCS(prev)
				t.Fatalf("digest diverged at shards=%d GOMAXPROCS=%d:\n got  %s\n want %s", shards, gmp, got, want)
			}
		}
		runtime.GOMAXPROCS(prev)
	}
	// Different seeds must actually change results (the digest is not a
	// constant).
	if other := relayDigest(99, 0); other == want {
		t.Fatalf("digest insensitive to seed")
	}
}

// TestShardedSkipAhead verifies idle stretches cost one barrier, not one
// barrier per lookahead window: events 100 virtual seconds apart under a
// 1ms window must not take ~100k epochs.
func TestShardedSkipAhead(t *testing.T) {
	se := NewSharded(1, 2, 2)
	se.SetLookahead(time.Millisecond)
	hits := 0
	var chain func()
	e := se.Engine(0)
	chain = func() {
		hits++
		if hits < 4 {
			e.After(100*time.Second, chain)
		}
	}
	e.After(0, chain)
	se.Engine(1).After(350*time.Second, func() { hits++ })
	se.Run()
	if hits != 5 {
		t.Fatalf("hits = %d, want 5", hits)
	}
	if ep := se.Snapshot()[0].Epochs; ep > 16 {
		t.Fatalf("epochs = %d; skip-ahead broken (expected a handful)", ep)
	}
}

// TestShardedStatsAccounting checks the message counters balance.
func TestShardedStatsAccounting(t *testing.T) {
	for _, shards := range []int{0, 2} {
		se := NewSharded(5, 4, shards)
		se.SetLookahead(time.Millisecond)
		got := 0
		for src := 1; src < 4; src++ {
			src := src
			se.Engine(src).After(0, func() {
				se.Post(src, 0, time.Millisecond, func() { got++ })
			})
		}
		se.Run()
		if got != 3 {
			t.Fatalf("shards=%d: delivered %d messages, want 3", shards, got)
		}
		var posted, delivered uint64
		var backlog int64
		for _, st := range se.Snapshot() {
			posted += st.Posted
			delivered += st.Delivered
			backlog += st.Backlog
		}
		if posted != 3 || delivered != 3 || backlog != 0 {
			t.Fatalf("shards=%d: posted=%d delivered=%d backlog=%d, want 3/3/0", shards, posted, delivered, backlog)
		}
	}
}

// TestPostValidation pins the fail-loud contracts: posting below the
// declared lookahead, posting to yourself, and posting with no declared
// lookahead all panic.
func TestPostValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	se := NewSharded(1, 2, 0)
	se.SetLookahead(10 * time.Millisecond)
	mustPanic("below lookahead", func() { se.Post(0, 1, time.Millisecond, func() {}) })
	mustPanic("self post", func() { se.Post(0, 0, time.Second, func() {}) })
	undeclared := NewSharded(1, 2, 0)
	mustPanic("no lookahead", func() { undeclared.Post(0, 1, time.Second, func() {}) })
}

// TestAtBackOrdering pins the engine-level band rule in isolation.
func TestAtBackOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.AtBack(time.Second, func() { order = append(order, "back1") })
	e.At(time.Second, func() {
		order = append(order, "front")
		e.AtBack(time.Second, func() { order = append(order, "back2") })
	})
	e.Run()
	want := []string{"front", "back1", "back2"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

// TestRunBefore pins the window primitive: strictly-before execution,
// clock not advanced to the bound.
func TestRunBefore(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	e.At(time.Second, func() { ran++ })
	e.At(2*time.Second, func() { ran++ })
	e.RunBefore(2 * time.Second)
	if ran != 1 {
		t.Fatalf("ran %d events before bound, want 1", ran)
	}
	if e.Now() != time.Second {
		t.Fatalf("clock advanced to %v, want 1s", e.Now())
	}
	if at, ok := e.NextEventTime(); !ok || at != 2*time.Second {
		t.Fatalf("NextEventTime = %v/%v, want 2s/true", at, ok)
	}
	e.Run()
	if ran != 2 {
		t.Fatalf("ran = %d after Run, want 2", ran)
	}
}

// shardedChainWorkload builds G groups each running a local event chain
// with a cross-group post every postEvery events — the synthetic load
// behind BenchmarkShardedEvents.
func shardedChainWorkload(shards, groups, perGroup, postEvery int) *ShardedEngine {
	se := NewSharded(1, groups, shards)
	se.SetLookahead(time.Millisecond)
	for g := 0; g < groups; g++ {
		g := g
		e := se.Engine(g)
		n := perGroup
		var fn func()
		fn = func() {
			if n <= 0 {
				return
			}
			n--
			if postEvery > 0 && n%postEvery == 0 {
				dst := (g + 1) % groups
				se.Post(g, dst, time.Millisecond, func() {})
			}
			e.After(time.Microsecond, fn)
		}
		e.After(time.Microsecond, fn)
	}
	return se
}

// BenchmarkShardedEvents measures event throughput of the sharded
// scheduler against the serial oracle on the same 8-group workload
// (events/s; cross-group post every 256 events). On multi-core hosts the
// sharded variant should scale; on one core it measures pure epoch
// overhead.
func BenchmarkShardedEvents(b *testing.B) {
	for _, shards := range []int{0, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			const groups = 8
			per := b.N / groups
			if per < 1 {
				per = 1
			}
			se := shardedChainWorkload(shards, groups, per, 256)
			b.ReportAllocs()
			b.ResetTimer()
			se.Run()
			b.ReportMetric(float64(per*groups)/b.Elapsed().Seconds(), "events/s")
		})
	}
}
