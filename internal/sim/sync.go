package sim

import "repro/internal/ring"

// Synchronization primitives for simulated processes. All wake-ups are
// funneled through engine events scheduled at the current virtual time, so
// a process releasing a resource never resumes another process directly;
// determinism is preserved by the event queue's (time, seq) ordering.
//
// Wait queues are ring buffers (internal/ring), not `q = q[1:]` slices:
// a saturated resource at full scale cycles millions of waiters through a
// small queue, and slice-shift pops would turn that into repeated
// realloc-and-copy work for the garbage collector.

// Signal is a one-shot broadcast event: processes Wait until Fire is
// called; waits after Fire return immediately.
type Signal struct {
	e       *Engine
	fired   bool
	waiters []*Proc
}

// NewSignal returns an unfired signal bound to e.
func NewSignal(e *Engine) *Signal { return &Signal{e: e} }

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

// Fire marks the signal fired and wakes all waiters. Safe to call from
// either engine or process context; calling it twice is a no-op.
func (s *Signal) Fire() {
	if s.fired {
		return
	}
	s.fired = true
	ws := s.waiters
	s.waiters = nil
	for _, p := range ws {
		s.e.After(0, p.wakeFn)
	}
}

// Wait parks p until the signal fires (or returns immediately if it
// already has).
func (s *Signal) Wait(p *Proc) {
	if s.fired {
		return
	}
	s.waiters = append(s.waiters, p)
	p.park()
}

// Counter tracks an integer count, waking waiters when it reaches zero.
// It is the simulation analogue of sync.WaitGroup.
type Counter struct {
	e       *Engine
	n       int
	waiters []*Proc
}

// NewCounter returns a counter with initial value n.
func NewCounter(e *Engine, n int) *Counter { return &Counter{e: e, n: n} }

// Add adjusts the count by delta. Decrementing below zero panics.
func (c *Counter) Add(delta int) {
	c.n += delta
	if c.n < 0 {
		panic("sim: Counter went negative")
	}
	if c.n == 0 {
		ws := c.waiters
		c.waiters = nil
		for _, p := range ws {
			c.e.After(0, p.wakeFn)
		}
	}
}

// Done decrements the count by one.
func (c *Counter) Done() { c.Add(-1) }

// Value returns the current count.
func (c *Counter) Value() int { return c.n }

// Wait parks p until the count is zero.
func (c *Counter) Wait(p *Proc) {
	if c.n == 0 {
		return
	}
	c.waiters = append(c.waiters, p)
	p.park()
}

// resWaiter is one queued acquisition: either a parked process (p) or a
// flow continuation (fn). Exactly one of the two is set.
type resWaiter struct {
	p  *Proc
	fn func()
	n  int
}

// Resource is a counted resource with a FIFO wait queue: CPU cores on a
// node, bandwidth tokens of a filesystem, RPC slots of a scheduler.
type Resource struct {
	e       *Engine
	cap     int
	inUse   int
	waiters ring.Ring[resWaiter]
	// granting guards against scheduling redundant dispatch events.
	granting bool
	grantFn  func() // pre-bound grant pass, scheduled by scheduleGrant
}

// NewResource returns a resource with the given capacity. Capacity must be
// positive.
func NewResource(e *Engine, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: Resource capacity must be positive")
	}
	r := &Resource{e: e, cap: capacity}
	r.grantFn = r.grant
	return r
}

// Cap returns the capacity.
func (r *Resource) Cap() int { return r.cap }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// Available returns cap - inUse.
func (r *Resource) Available() int { return r.cap - r.inUse }

// QueueLen returns the number of waiting acquisitions.
func (r *Resource) QueueLen() int { return r.waiters.Len() }

// Acquire obtains n units for p, parking until available. FIFO order is
// strict: a large request at the head blocks smaller ones behind it, which
// models non-overtaking admission (and avoids starvation).
func (r *Resource) Acquire(p *Proc, n int) {
	if n <= 0 || n > r.cap {
		panic("sim: Resource.Acquire n out of range")
	}
	if r.waiters.Len() == 0 && r.inUse+n <= r.cap {
		r.inUse += n
		return
	}
	r.waiters.Push(resWaiter{p: p, n: n})
	p.park()
}

// AcquireFlow obtains n units for a lightweight activity, invoking fn
// (in engine context) once granted — immediately when the resource is
// free, otherwise from a later grant pass. It shares the same strict
// FIFO queue as process waiters. Flow.Acquire is the usual entry point.
func (r *Resource) AcquireFlow(n int, fn func()) {
	if n <= 0 || n > r.cap {
		panic("sim: Resource.AcquireFlow n out of range")
	}
	if r.waiters.Len() == 0 && r.inUse+n <= r.cap {
		r.inUse += n
		fn()
		return
	}
	r.waiters.Push(resWaiter{fn: fn, n: n})
}

// TryAcquire obtains n units without waiting, reporting success.
func (r *Resource) TryAcquire(n int) bool {
	if n <= 0 || n > r.cap {
		panic("sim: Resource.TryAcquire n out of range")
	}
	if r.waiters.Len() == 0 && r.inUse+n <= r.cap {
		r.inUse += n
		return true
	}
	return false
}

// Release returns n units and schedules waiter admission.
func (r *Resource) Release(n int) {
	r.inUse -= n
	if r.inUse < 0 {
		panic("sim: Resource.Release more than acquired")
	}
	r.scheduleGrant()
}

func (r *Resource) scheduleGrant() {
	if r.granting || r.waiters.Len() == 0 {
		return
	}
	r.granting = true
	r.e.After(0, r.grantFn)
}

// grant admits queued waiters in FIFO order while capacity allows. It
// runs as an engine event: waking a process (or running a flow
// continuation) executes it synchronously until its next park, exactly
// as the pre-ring implementation did.
func (r *Resource) grant() {
	r.granting = false
	for r.waiters.Len() > 0 {
		w := r.waiters.Front()
		if r.inUse+w.n > r.cap {
			break
		}
		granted := r.waiters.Pop()
		r.inUse += granted.n
		if granted.fn != nil {
			granted.fn()
		} else {
			granted.p.wake()
		}
	}
}

// Use acquires n units, runs for d of virtual time, and releases. It is
// the common "hold a resource while work happens" pattern.
func (r *Resource) Use(p *Proc, n int, d Time) {
	r.Acquire(p, n)
	p.Sleep(d)
	r.Release(n)
}

// Store is a FIFO queue of values with optional capacity, the simulation
// analogue of a buffered channel. Put blocks when full (capacity > 0);
// Get blocks when empty.
type Store[T any] struct {
	e       *Engine
	cap     int // 0 = unbounded
	items   ring.Ring[T]
	getters ring.Ring[*Proc]
	putters ring.Ring[*Proc]
	closed  bool
	pumping bool
	pumpFn  func()
}

// NewStore returns a store with the given capacity; capacity 0 means
// unbounded.
func NewStore[T any](e *Engine, capacity int) *Store[T] {
	s := &Store[T]{e: e, cap: capacity}
	s.pumpFn = s.pumpNow
	return s
}

// Len returns the number of buffered items.
func (s *Store[T]) Len() int { return s.items.Len() }

// Closed reports whether Close has been called.
func (s *Store[T]) Closed() bool { return s.closed }

// Prefill appends items without blocking, for seeding free-lists before
// processes start. It panics if the items exceed a bounded capacity.
func (s *Store[T]) Prefill(items ...T) {
	if s.cap > 0 && s.items.Len()+len(items) > s.cap {
		panic("sim: Prefill exceeds Store capacity")
	}
	for _, v := range items {
		s.items.Push(v)
	}
	s.pump()
}

// Put appends v, parking while the store is full. Put on a closed store
// panics (a model bug).
func (s *Store[T]) Put(p *Proc, v T) {
	if s.closed {
		panic("sim: Put on closed Store")
	}
	for s.cap > 0 && s.items.Len() >= s.cap {
		s.putters.Push(p)
		p.park()
		if s.closed {
			panic("sim: Put on closed Store")
		}
	}
	s.items.Push(v)
	s.pump()
}

// PutNow appends v from engine context (an event callback or flow step)
// without a process to park: it panics if the store is full or closed.
// It is how flows return values — e.g. a finished task handing its slot
// back to the dispatcher's free-list store, which by construction always
// has room.
func (s *Store[T]) PutNow(v T) {
	if s.closed {
		panic("sim: PutNow on closed Store")
	}
	if s.cap > 0 && s.items.Len() >= s.cap {
		panic("sim: PutNow on full Store")
	}
	s.items.Push(v)
	s.pump()
}

// Get removes and returns the oldest item, parking while empty. ok is
// false if the store was closed and drained.
func (s *Store[T]) Get(p *Proc) (v T, ok bool) {
	for s.items.Len() == 0 {
		if s.closed {
			return v, false
		}
		s.getters.Push(p)
		p.park()
	}
	v = s.items.Pop()
	s.pump()
	return v, true
}

// Close marks the store closed: pending and future Gets drain remaining
// items then return ok=false.
func (s *Store[T]) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.pump()
}

// pump schedules waiter wake-ups in engine context.
func (s *Store[T]) pump() {
	if s.pumping {
		return
	}
	if s.getters.Len() == 0 && s.putters.Len() == 0 {
		return
	}
	s.pumping = true
	s.e.After(0, s.pumpFn)
}

func (s *Store[T]) pumpNow() {
	s.pumping = false
	// Wake getters while items remain (or the store is closed, so
	// they can observe it and finish).
	for s.getters.Len() > 0 && (s.items.Len() > 0 || s.closed) {
		s.getters.Pop().wake()
	}
	// Wake putters while there is room (or closed, so they can
	// panic visibly rather than hang).
	for s.putters.Len() > 0 && (s.cap == 0 || s.items.Len() < s.cap || s.closed) {
		s.putters.Pop().wake()
	}
}
