package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEngineEventOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.After(3*time.Second, func() { got = append(got, 3) })
	e.After(1*time.Second, func() { got = append(got, 1) })
	e.After(2*time.Second, func() { got = append(got, 2) })
	end := e.Run()
	if end != 3*time.Second {
		t.Fatalf("end time = %v, want 3s", end)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(time.Second, func() { got = append(got, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine(1)
	e.After(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(0, func() {})
	})
	e.Run()
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	e.After(1*time.Second, func() { fired++ })
	e.After(5*time.Second, func() { fired++ })
	e.RunUntil(2 * time.Second)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if e.Now() != 2*time.Second {
		t.Fatalf("now = %v, want 2s", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
}

func TestProcSleep(t *testing.T) {
	e := NewEngine(1)
	var wake Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(42 * time.Millisecond)
		wake = p.Now()
	})
	e.Run()
	if wake != 42*time.Millisecond {
		t.Fatalf("woke at %v, want 42ms", wake)
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("live procs = %d, want 0", e.LiveProcs())
	}
}

func TestProcInterleaving(t *testing.T) {
	e := NewEngine(1)
	var got []string
	e.Spawn("a", func(p *Proc) {
		p.Sleep(1 * time.Second)
		got = append(got, "a1")
		p.Sleep(2 * time.Second)
		got = append(got, "a3")
	})
	e.Spawn("b", func(p *Proc) {
		p.Sleep(2 * time.Second)
		got = append(got, "b2")
	})
	e.Run()
	want := []string{"a1", "b2", "a3"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("interleaving = %v, want %v", got, want)
		}
	}
}

func TestSignalBroadcast(t *testing.T) {
	e := NewEngine(1)
	s := NewSignal(e)
	woken := 0
	for i := 0; i < 5; i++ {
		e.Spawn("waiter", func(p *Proc) {
			s.Wait(p)
			woken++
			if p.Now() != 3*time.Second {
				t.Errorf("woke at %v, want 3s", p.Now())
			}
		})
	}
	e.Spawn("firer", func(p *Proc) {
		p.Sleep(3 * time.Second)
		s.Fire()
	})
	e.Run()
	if woken != 5 {
		t.Fatalf("woken = %d, want 5", woken)
	}
}

func TestSignalWaitAfterFire(t *testing.T) {
	e := NewEngine(1)
	s := NewSignal(e)
	s.Fire()
	s.Fire() // idempotent
	done := false
	e.Spawn("late", func(p *Proc) {
		s.Wait(p) // must not block
		done = true
	})
	e.Run()
	if !done {
		t.Fatal("late waiter blocked on fired signal")
	}
}

func TestCounter(t *testing.T) {
	e := NewEngine(1)
	c := NewCounter(e, 3)
	var doneAt Time
	e.Spawn("waiter", func(p *Proc) {
		c.Wait(p)
		doneAt = p.Now()
	})
	for i := 1; i <= 3; i++ {
		i := i
		e.Spawn("worker", func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Second)
			c.Done()
		})
	}
	e.Run()
	if doneAt != 3*time.Second {
		t.Fatalf("counter released at %v, want 3s", doneAt)
	}
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative counter did not panic")
		}
	}()
	e := NewEngine(1)
	c := NewCounter(e, 0)
	c.Done()
}

func TestResourceLimitsConcurrency(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, 2)
	inUse, maxInUse := 0, 0
	for i := 0; i < 6; i++ {
		e.Spawn("user", func(p *Proc) {
			r.Acquire(p, 1)
			inUse++
			if inUse > maxInUse {
				maxInUse = inUse
			}
			p.Sleep(time.Second)
			inUse--
			r.Release(1)
		})
	}
	end := e.Run()
	if maxInUse != 2 {
		t.Fatalf("max concurrent = %d, want 2", maxInUse)
	}
	// 6 jobs of 1s at concurrency 2 => 3s.
	if end != 3*time.Second {
		t.Fatalf("makespan = %v, want 3s", end)
	}
}

func TestResourceFIFO(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, 1)
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		e.SpawnAt(Time(i)*time.Millisecond, "u", func(p *Proc) {
			r.Acquire(p, 1)
			order = append(order, i)
			p.Sleep(time.Second)
			r.Release(1)
		})
	}
	e.Run()
	for i := 0; i < 4; i++ {
		if order[i] != i {
			t.Fatalf("grant order = %v, want FIFO", order)
		}
	}
}

func TestResourceTryAcquire(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, 1)
	if !r.TryAcquire(1) {
		t.Fatal("TryAcquire on free resource failed")
	}
	if r.TryAcquire(1) {
		t.Fatal("TryAcquire on full resource succeeded")
	}
	r.Release(1)
	if !r.TryAcquire(1) {
		t.Fatal("TryAcquire after release failed")
	}
	if r.Available() != 0 || r.InUse() != 1 || r.Cap() != 1 {
		t.Fatal("accounting wrong")
	}
}

func TestResourceUse(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, 1)
	var ends []Time
	for i := 0; i < 3; i++ {
		e.Spawn("u", func(p *Proc) {
			r.Use(p, 1, time.Second)
			ends = append(ends, p.Now())
		})
	}
	e.Run()
	if len(ends) != 3 || ends[2] != 3*time.Second {
		t.Fatalf("serialized ends = %v", ends)
	}
}

func TestStoreFIFOAndClose(t *testing.T) {
	e := NewEngine(1)
	st := NewStore[int](e, 0)
	var got []int
	e.Spawn("consumer", func(p *Proc) {
		for {
			v, ok := st.Get(p)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(time.Millisecond)
			st.Put(p, i)
		}
		st.Close()
	})
	e.Run()
	if len(got) != 5 {
		t.Fatalf("got %v, want 5 items", got)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("consumer leaked: %d live procs", e.LiveProcs())
	}
}

func TestStoreBackpressure(t *testing.T) {
	e := NewEngine(1)
	st := NewStore[int](e, 2)
	var putDone Time
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			st.Put(p, i) // third Put must block until a Get
		}
		putDone = p.Now()
	})
	e.Spawn("consumer", func(p *Proc) {
		p.Sleep(5 * time.Second)
		st.Get(p)
	})
	e.Run()
	if putDone != 5*time.Second {
		t.Fatalf("third Put completed at %v, want 5s (backpressure)", putDone)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []Time {
		e := NewEngine(99)
		r := NewResource(e, 3)
		rng := e.RNG().Split("work")
		var ends []Time
		for i := 0; i < 50; i++ {
			e.Spawn("job", func(p *Proc) {
				r.Acquire(p, 1)
				p.Sleep(rng.DurExp(100 * time.Millisecond))
				r.Release(1)
				ends = append(ends, p.Now())
			})
		}
		e.Run()
		return ends
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	g := NewRNG(7)
	a, b := g.Split("a"), g.Split("b")
	a2 := NewRNG(7).Split("a")
	same, diff := 0, 0
	for i := 0; i < 100; i++ {
		va, vb, va2 := a.Float64(), b.Float64(), a2.Float64()
		if va == va2 {
			same++
		}
		if va != vb {
			diff++
		}
	}
	if same != 100 {
		t.Errorf("same-name splits diverged: %d/100 equal", same)
	}
	if diff < 95 {
		t.Errorf("different-name splits too correlated: %d/100 differ", diff)
	}
}

func TestDistributionsSanity(t *testing.T) {
	g := NewRNG(3)
	n := 20000
	var sumExp, sumNorm float64
	for i := 0; i < n; i++ {
		sumExp += g.Exponential(2.0)
		sumNorm += g.Normal(5, 1)
	}
	if m := sumExp / float64(n); m < 1.9 || m > 2.1 {
		t.Errorf("exponential mean = %v, want ~2", m)
	}
	if m := sumNorm / float64(n); m < 4.95 || m > 5.05 {
		t.Errorf("normal mean = %v, want ~5", m)
	}
	for i := 0; i < 1000; i++ {
		if v := g.Pareto(1.5, 2); v < 1.5 {
			t.Fatalf("pareto below scale: %v", v)
		}
		if v := g.Uniform(3, 4); v < 3 || v >= 4 {
			t.Fatalf("uniform out of range: %v", v)
		}
	}
}

// Property: for any set of non-negative sleep durations, the engine's final
// time equals the maximum duration, and all processes complete.
func TestPropertyMakespanIsMax(t *testing.T) {
	f := func(ms []uint16) bool {
		if len(ms) == 0 {
			return true
		}
		e := NewEngine(1)
		var max time.Duration
		for _, m := range ms {
			d := time.Duration(m) * time.Millisecond
			if d > max {
				max = d
			}
			e.Spawn("p", func(p *Proc) { p.Sleep(d) })
		}
		return e.Run() == max && e.LiveProcs() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a resource of capacity c processing n unit jobs of duration d
// finishes in ceil(n/c)*d.
func TestPropertyResourceMakespan(t *testing.T) {
	f := func(n8, c8 uint8) bool {
		n := int(n8%50) + 1
		c := int(c8%8) + 1
		d := 10 * time.Millisecond
		e := NewEngine(1)
		r := NewResource(e, c)
		for i := 0; i < n; i++ {
			e.Spawn("j", func(p *Proc) { r.Use(p, 1, d) })
		}
		want := time.Duration((n+c-1)/c) * d
		return e.Run() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Store preserves FIFO order for any input sequence.
func TestPropertyStoreFIFO(t *testing.T) {
	f := func(vals []int) bool {
		e := NewEngine(1)
		st := NewStore[int](e, 0)
		var got []int
		e.Spawn("c", func(p *Proc) {
			for {
				v, ok := st.Get(p)
				if !ok {
					return
				}
				got = append(got, v)
			}
		})
		e.Spawn("p", func(p *Proc) {
			for _, v := range vals {
				st.Put(p, v)
			}
			st.Close()
		})
		e.Run()
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngineEventThroughput(b *testing.B) {
	e := NewEngine(1)
	var countdown func(n int)
	countdown = func(n int) {
		if n == 0 {
			return
		}
		e.After(time.Microsecond, func() { countdown(n - 1) })
	}
	b.ResetTimer()
	countdown(b.N)
	e.Run()
}

func BenchmarkProcSpawnRun(b *testing.B) {
	e := NewEngine(1)
	for i := 0; i < b.N; i++ {
		e.Spawn("p", func(p *Proc) { p.Sleep(time.Microsecond) })
	}
	b.ResetTimer()
	e.Run()
}

func TestMonitorUtilization(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, 2)
	// Hold 2/2 units for 5s, then 0 for ~5s while another proc idles.
	e.Spawn("holder", func(p *Proc) {
		r.Acquire(p, 2)
		p.Sleep(5 * time.Second)
		r.Release(2)
	})
	e.Spawn("idler", func(p *Proc) { p.Sleep(10 * time.Second) })
	m := WatchResource(e, r, 100*time.Millisecond)
	e.Run()
	if len(m.Samples) < 50 {
		t.Fatalf("samples = %d", len(m.Samples))
	}
	u := m.MeanUtilization()
	if u < 0.4 || u > 0.6 {
		t.Fatalf("mean utilization = %.2f, want ~0.5", u)
	}
	if m.PeakInUse() != 2 {
		t.Fatalf("peak in use = %d", m.PeakInUse())
	}
}

func TestMonitorQueueDepth(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, 1)
	for i := 0; i < 5; i++ {
		e.Spawn("u", func(p *Proc) { r.Use(p, 1, time.Second) })
	}
	m := WatchResource(e, r, 50*time.Millisecond)
	end := e.Run()
	if m.PeakQueue() < 3 {
		t.Fatalf("peak queue = %d, want >= 3 (4 waiters initially)", m.PeakQueue())
	}
	// Monitor did not extend the simulation beyond the work (+1 tick).
	if end > 5*time.Second+100*time.Millisecond {
		t.Fatalf("monitor kept the clock running: end = %v", end)
	}
}

func TestMonitorEmptyEngine(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, 1)
	m := WatchResource(e, r, time.Second)
	e.Run()
	if len(m.Samples) != 1 {
		t.Fatalf("samples on idle engine = %d, want 1", len(m.Samples))
	}
	if m.MeanUtilization() != 0 || m.PeakQueue() != 0 {
		t.Fatal("idle stats nonzero")
	}
}
