package sim

import "fmt"

// Conservative synchronization needs one model-provided fact: a lower
// bound on how far in the future any cross-group message lands. If every
// message from group s to group d is timestamped at least L(s, d) after
// the moment it is sent, then once every group has reached virtual time
// T, no message timestamped before T+W (W = min over declared L) can
// ever be produced — so all groups may execute the window [T, T+W)
// without hearing from each other at all. No null messages, no rollback:
// the window is an epoch barrier, and the lookahead is the physics of
// the model (dispatch RPC latency, container start floors, storage
// fabric round-trips all give natural lower bounds).
//
// lookaheads holds the declared bounds: a default for every pair plus
// optional per-link overrides. Post validates each send against the
// declared bound, so a model that under-declares fails loudly instead of
// silently producing shard-count-dependent results.
type lookaheads struct {
	def   Time
	links map[[2]int]Time
	// win caches min(def, all links); 0 means "recompute".
	win Time
}

// set declares the default lookahead.
func (l *lookaheads) set(d Time) {
	if d <= 0 {
		panic("sim: lookahead must be positive")
	}
	l.def = d
	l.win = 0
}

// setLink declares a per-link override for messages src→dst.
func (l *lookaheads) setLink(src, dst int, d Time) {
	if d <= 0 {
		panic("sim: lookahead must be positive")
	}
	if l.links == nil {
		l.links = make(map[[2]int]Time)
	}
	l.links[[2]int{src, dst}] = d
	l.win = 0
}

// get returns the declared bound for src→dst.
func (l *lookaheads) get(src, dst int) Time {
	if l.links != nil {
		if d, ok := l.links[[2]int{src, dst}]; ok {
			return d
		}
	}
	if l.def <= 0 {
		panic(fmt.Sprintf("sim: no lookahead declared for link %d->%d (call SetLookahead before Post)", src, dst))
	}
	return l.def
}

// window returns W, the epoch width: the minimum declared bound across
// the default and every link override.
func (l *lookaheads) window() Time {
	if l.win > 0 {
		return l.win
	}
	if l.def <= 0 {
		panic("sim: no lookahead declared (call SetLookahead before Run)")
	}
	w := l.def
	for _, d := range l.links {
		if d < w {
			w = d
		}
	}
	l.win = w
	return w
}
