package ring

import (
	"testing"
	"testing/quick"
)

func TestFIFO(t *testing.T) {
	var r Ring[int]
	for i := 0; i < 100; i++ {
		r.Push(i)
	}
	if r.Len() != 100 {
		t.Fatalf("len = %d", r.Len())
	}
	for i := 0; i < 100; i++ {
		if got := r.Pop(); got != i {
			t.Fatalf("pop %d = %d", i, got)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("len after drain = %d", r.Len())
	}
}

func TestWrapAround(t *testing.T) {
	// Cycle a small working set far past the initial capacity: the
	// buffer must wrap, not grow.
	var r Ring[int]
	for i := 0; i < 4; i++ {
		r.Push(i)
	}
	for i := 4; i < 10_000; i++ {
		if got := r.Pop(); got != i-4 {
			t.Fatalf("pop = %d, want %d", got, i-4)
		}
		r.Push(i)
	}
	if cap := len(r.buf); cap > 8 {
		t.Fatalf("steady-state cycling grew the buffer to %d", cap)
	}
}

func TestFront(t *testing.T) {
	var r Ring[int]
	r.Push(7)
	r.Push(8)
	if *r.Front() != 7 {
		t.Fatalf("front = %d", *r.Front())
	}
	*r.Front() = 9 // in-place update visible to Pop
	if got := r.Pop(); got != 9 {
		t.Fatalf("pop after front update = %d", got)
	}
	if *r.Front() != 8 {
		t.Fatalf("front after pop = %d", *r.Front())
	}
}

func TestEmptyPanics(t *testing.T) {
	for name, fn := range map[string]func(*Ring[int]){
		"Pop":   func(r *Ring[int]) { r.Pop() },
		"Front": func(r *Ring[int]) { r.Front() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s of empty ring did not panic", name)
				}
			}()
			var r Ring[int]
			fn(&r)
		}()
	}
}

func TestPointerSlotsCleared(t *testing.T) {
	var r Ring[*int]
	v := new(int)
	r.Push(v)
	r.Pop()
	for i := range r.buf {
		if r.buf[i] != nil {
			t.Fatal("popped slot still references the element")
		}
	}
}

// Property: any interleaving of pushes and pops behaves like a slice
// queue.
func TestPropertyMatchesSliceQueue(t *testing.T) {
	f := func(ops []int16) bool {
		var r Ring[int16]
		var model []int16
		for _, op := range ops {
			if op%3 == 0 && len(model) > 0 {
				want := model[0]
				model = model[1:]
				if r.Pop() != want {
					return false
				}
			} else {
				r.Push(op)
				model = append(model, op)
			}
			if r.Len() != len(model) {
				return false
			}
		}
		for _, want := range model {
			if r.Pop() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
