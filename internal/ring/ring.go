// Package ring provides a growable circular FIFO buffer.
//
// It exists because the obvious Go queue idiom — append to push,
// `q = q[1:]` to pop — is O(n) in aggregate: every pop leaks the popped
// slot until the next append reallocates, and a long-lived queue that
// cycles many elements through a small working set keeps the garbage
// collector busy re-copying the live tail. Ring pops in O(1), reuses its
// slots, and only reallocates when the live element count actually grows.
// The simulation kernel's wait queues (internal/sim) and other FIFO work
// lists share this one implementation.
package ring

// Ring is a FIFO queue backed by a circular buffer. The zero value is an
// empty, ready-to-use queue. Not safe for concurrent use.
type Ring[T any] struct {
	buf  []T
	head int // index of the front element
	n    int // number of live elements
}

// Len returns the number of queued elements.
func (r *Ring[T]) Len() int { return r.n }

// Push appends v to the back of the queue.
func (r *Ring[T]) Push(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)%len(r.buf)] = v
	r.n++
}

// Pop removes and returns the front element. It panics on an empty ring.
func (r *Ring[T]) Pop() T {
	if r.n == 0 {
		panic("ring: Pop of empty ring")
	}
	var zero T
	v := r.buf[r.head]
	r.buf[r.head] = zero // release references for GC
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return v
}

// Front returns a pointer to the front element without removing it, so
// callers can inspect (or update in place) the next candidate before
// deciding to Pop. It panics on an empty ring.
func (r *Ring[T]) Front() *T {
	if r.n == 0 {
		panic("ring: Front of empty ring")
	}
	return &r.buf[r.head]
}

// grow doubles capacity (minimum 8), linearizing live elements.
func (r *Ring[T]) grow() {
	capacity := 2 * len(r.buf)
	if capacity < 8 {
		capacity = 8
	}
	buf := make([]T, capacity)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf = buf
	r.head = 0
}
