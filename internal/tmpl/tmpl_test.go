package tmpl

import (
	"strings"
	"testing"
	"testing/quick"
)

func render(t *testing.T, src string, ctx Context) string {
	t.Helper()
	tpl, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	out, err := tpl.Render(ctx)
	if err != nil {
		t.Fatalf("Render(%q): %v", src, err)
	}
	return out
}

func TestBasicSubstitution(t *testing.T) {
	ctx := Context{Args: []string{"dir/file.tar.gz"}, Seq: 7, Slot: 3}
	cases := []struct{ src, want string }{
		{"echo {}", "echo dir/file.tar.gz"},
		{"echo {.}", "echo dir/file.tar"},
		{"echo {/}", "echo file.tar.gz"},
		{"echo {//}", "echo dir"},
		{"echo {/.}", "echo file.tar"},
		{"echo {#}", "echo 7"},
		{"echo {%}", "echo 3"},
		{"echo {1}", "echo dir/file.tar.gz"},
		{"echo {1/.}", "echo file.tar"},
		{"no placeholders", "no placeholders"},
		{"{}{}", "dir/file.tar.gzdir/file.tar.gz"},
		{"a{#}b{%}c", "a7b3c"},
	}
	for _, c := range cases {
		if got := render(t, c.src, ctx); got != c.want {
			t.Errorf("render(%q) = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestMultipleArgsJoined(t *testing.T) {
	ctx := Context{Args: []string{"a.txt", "b.txt"}, Seq: 1, Slot: 1}
	if got := render(t, "cmd {}", ctx); got != "cmd a.txt b.txt" {
		t.Fatalf("got %q", got)
	}
	if got := render(t, "cmd {2} {1}", ctx); got != "cmd b.txt a.txt" {
		t.Fatalf("got %q", got)
	}
	if got := render(t, "cmd {.}", ctx); got != "cmd a b" {
		t.Fatalf("got %q", got)
	}
}

func TestPositionalOutOfRange(t *testing.T) {
	tpl := MustParse("cmd {3}")
	_, err := tpl.Render(Context{Args: []string{"x"}})
	if err == nil {
		t.Fatal("expected error for {3} with one arg")
	}
	if !strings.Contains(err.Error(), "{3}") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestUnknownTokensLiteral(t *testing.T) {
	ctx := Context{Args: []string{"v"}}
	for _, src := range []string{"{foo}", "{-1}", "{1x}", "{ }", "{0}", "{%%}"} {
		if got := render(t, src, ctx); got != src {
			t.Errorf("render(%q) = %q, want literal", src, got)
		}
	}
}

func TestUnclosedBrace(t *testing.T) {
	ctx := Context{Args: []string{"v"}}
	if got := render(t, "echo {", ctx); got != "echo {" {
		t.Fatalf("got %q", got)
	}
	if got := render(t, "a { b {} c", ctx); got != "a { b v c" {
		// "{ b {" finds a closing brace — token " b {" is unknown, literal.
		t.Logf("got %q (acceptable literal handling)", got)
	}
}

func TestPathOps(t *testing.T) {
	cases := []struct{ src, in, want string }{
		{"{.}", "file", "file"},
		{"{.}", ".bashrc", ".bashrc"},
		{"{.}", "dir/.bashrc", "dir/.bashrc"},
		{"{.}", "a/b/c.txt", "a/b/c"},
		{"{/}", "/abs/path/x.c", "x.c"},
		{"{/}", "noslash", "noslash"},
		{"{//}", "noslash", "."},
		{"{//}", "/rooted", "/"},
		{"{//}", "a/b/c", "a/b"},
		{"{/.}", "a/b/c.txt", "c"},
		{"{/.}", "a/b/.hidden", ".hidden"},
	}
	for _, c := range cases {
		got := render(t, c.src, Context{Args: []string{c.in}})
		if got != c.want {
			t.Errorf("render(%q, %q) = %q, want %q", c.src, c.in, got, c.want)
		}
	}
}

func TestHasInputPlaceholder(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"echo {}", true},
		{"echo {.}", true},
		{"echo {2//}", true},
		{"echo {#}", false},
		{"echo {%}", false},
		{"echo hi", false},
	}
	for _, c := range cases {
		if got := MustParse(c.src).HasInputPlaceholder(); got != c.want {
			t.Errorf("HasInputPlaceholder(%q) = %v", c.src, got)
		}
	}
	if !MustParse("x {%}").HasSlotPlaceholder() {
		t.Error("HasSlotPlaceholder false")
	}
	if MustParse("x {3} {7.}").MaxPosition() != 7 {
		t.Error("MaxPosition wrong")
	}
}

func TestGPUIsolationPattern(t *testing.T) {
	// The paper's Celeritas launch line maps slot -> GPU index.
	tpl := MustParse(`HIP_VISIBLE_DEVICES={%} celer-sim {} > outdir/{/.}.out`)
	got, err := tpl.Render(Context{Args: []string{"runs/tilecal.inp.json"}, Seq: 4, Slot: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := `HIP_VISIBLE_DEVICES=2 celer-sim runs/tilecal.inp.json > outdir/tilecal.inp.out`
	if got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}

// Property: templates without braces render to themselves.
func TestPropertyLiteralIdentity(t *testing.T) {
	f := func(s string) bool {
		if strings.ContainsAny(s, "{}") {
			return true
		}
		tpl := MustParse(s)
		out, err := tpl.Render(Context{Args: []string{"x"}})
		return err == nil && out == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: {/} never contains a slash; {//} + "/" + {/} reconstructs the
// input for inputs containing a non-leading slash.
func TestPropertyPathDecomposition(t *testing.T) {
	f := func(dir, base string) bool {
		if strings.ContainsAny(dir, "/{}") || strings.ContainsAny(base, "/{}") || dir == "" || base == "" {
			return true
		}
		in := dir + "/" + base
		b := render(t, "{/}", Context{Args: []string{in}})
		d := render(t, "{//}", Context{Args: []string{in}})
		return !strings.Contains(b, "/") && d+"/"+b == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRender(b *testing.B) {
	tpl := MustParse("process --seq {#} --slot {%} --in {} --out outdir/{/.}.out")
	ctx := Context{Args: []string{"data/input.file.json"}, Seq: 123, Slot: 7}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := tpl.Render(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse("process --seq {#} --in {} --out {/.}.out"); err != nil {
			b.Fatal(err)
		}
	}
}
