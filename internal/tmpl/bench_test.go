package tmpl

import "testing"

var benchTemplates = []struct {
	name string
	src  string
	args []string
}{
	{"plain", "gzip -9 {}", []string{"/data/run42/sample.fastq"}},
	{"pathops", "convert {} {.}.png && mv {/} {//}/done/", []string{"/img/in/cat.jpg"}},
	{"multiarg", "align --ref {1} --reads {2} --seq {#} --slot {%}", []string{"/ref/hg38.fa", "/reads/lane3.fq"}},
}

// BenchmarkRenderJob measures the per-job template render cost — part
// of the engine's dispatch hot path (every job pays one render before
// it can queue).
func BenchmarkRenderJob(b *testing.B) {
	for _, tc := range benchTemplates {
		b.Run(tc.name, func(b *testing.B) {
			t := MustParse(tc.src)
			ctx := Context{Args: tc.args, Seq: 1234, Slot: 7}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := t.Render(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
