package tmpl

import "testing"

// FuzzParseRender checks that arbitrary template strings never panic the
// parser or renderer, and that literal-only templates round-trip.
func FuzzParseRender(f *testing.F) {
	for _, seed := range []string{
		"echo {}", "{.} {/} {//} {/.}", "{#}{%}", "{1} {2.} {10//}",
		"{", "}", "{}{", "{{{}}}", "a{foo}b", "{999999999999999999999}",
		"{-1}", "{1x}", "", "plain text", "{%} {#} {} {1}",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		tpl, err := Parse(src)
		if err != nil {
			return
		}
		// Render with a few arg shapes; errors are fine, panics are not.
		for _, args := range [][]string{nil, {"one"}, {"a", "b", "c"}} {
			tpl.Render(Context{Args: args, Seq: 1, Slot: 2})
		}
	})
}
