package tmpl

import "testing"

// TestRenderAllocBudget pins the render hot path at its documented
// allocation budget (DESIGN.md "Performance"): a literal template
// renders with zero allocations, any placeholder template with at most
// two (the result string plus, rarely, a pool refill), and
// AppendRender into a pre-sized buffer with zero.
func TestRenderAllocBudget(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		args   []string
		budget float64
	}{
		{"literal", "true", nil, 0},
		{"plain", "gzip -9 {}", []string{"/data/run42/sample.fastq"}, 2},
		{"pathops", "convert {} {.}.png {/} {//} {/.}", []string{"/img/in/cat.jpg"}, 2},
		{"multiarg", "align --ref {1} --reads {2} --seq {#} --slot {%}", []string{"/ref/hg38.fa", "/reads/lane3.fq"}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tpl := MustParse(tc.src)
			ctx := Context{Args: tc.args, Seq: 42, Slot: 3}
			// Warm the pool and verify output stability first.
			want, err := tpl.Render(ctx)
			if err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(200, func() {
				got, err := tpl.Render(ctx)
				if err != nil || got != want {
					t.Fatalf("render: %q, %v", got, err)
				}
			})
			if allocs > tc.budget {
				t.Errorf("Render allocs/run = %v, budget %v", allocs, tc.budget)
			}

			dst := make([]byte, 0, 512)
			appendAllocs := testing.AllocsPerRun(200, func() {
				out, err := tpl.AppendRender(dst[:0], ctx)
				if err != nil || string(out) != want {
					t.Fatalf("append render: %q, %v", out, err)
				}
			})
			// string(out) in the closure accounts for one alloc; the
			// append path itself must add none.
			if appendAllocs > 1 {
				t.Errorf("AppendRender allocs/run = %v, want <= 1 (the comparison copy)", appendAllocs)
			}
		})
	}
}

// TestAppendRenderMatchesRender cross-checks the two render paths over
// every template shape the parser produces.
func TestAppendRenderMatchesRender(t *testing.T) {
	srcs := []string{
		"", "true", "echo {} {.} {/} {//} {/.}", "{#}:{%}", "{1} {2.} {3//}",
		"no placeholders at all", "{unknown} {} {99x}",
	}
	argSets := [][]string{
		nil,
		{"a"},
		{"/x/y/z.tar.gz", "rel/path.txt", "plain"},
	}
	for _, src := range srcs {
		tpl := MustParse(src)
		for _, as := range argSets {
			ctx := Context{Args: as, Seq: 7, Slot: 2}
			want, werr := tpl.Render(ctx)
			got, gerr := tpl.AppendRender(nil, ctx)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("%q/%v: error mismatch %v vs %v", src, as, werr, gerr)
			}
			if werr == nil && string(got) != want {
				t.Fatalf("%q/%v: %q vs %q", src, as, got, want)
			}
		}
	}
}
