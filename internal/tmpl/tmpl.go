// Package tmpl implements GNU-Parallel-style replacement strings for
// command templates:
//
//	{}    whole input (all positional args joined by spaces)
//	{.}   input without its file extension
//	{/}   basename of input
//	{//}  dirname of input
//	{/.}  basename without extension
//	{#}   1-based job sequence number
//	{%}   1-based job slot number
//	{n}   n-th positional argument (1-based); {n.} {n/} {n//} {n/.}
//	      apply the corresponding path operation to it
//
// Unrecognized brace tokens (e.g. {foo}) are emitted literally, matching
// GNU Parallel's treatment of non-replacement braces.
package tmpl

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// Context carries the per-job values substituted into a template.
type Context struct {
	// Args are the job's positional input arguments, one per input
	// source column.
	Args []string
	// Seq is the 1-based job sequence number ({#}).
	Seq int
	// Slot is the 1-based slot the job runs in ({%}).
	Slot int
}

type op int

const (
	opNone   op = iota // verbatim value
	opNoExt            // {.}
	opBase             // {/}
	opDir              // {//}
	opBaseNo           // {/.}
)

type kind int

const (
	kindLiteral kind = iota
	kindInput        // {} and friends — all args
	kindPos          // {n} and friends — one arg
	kindSeq          // {#}
	kindSlot         // {%}
)

type part struct {
	kind kind
	op   op
	pos  int    // for kindPos, 1-based
	lit  string // for kindLiteral
}

// Template is a parsed command template ready for repeated rendering.
type Template struct {
	src      string
	parts    []part
	hasInput bool // any {} / {.} / {/} / {//} / {/.} / {n...}
	hasSlot  bool
	maxPos   int
}

// Source returns the original template text.
func (t *Template) Source() string { return t.src }

// HasInputPlaceholder reports whether the template references its input
// arguments anywhere. Engines append " {}" to templates that do not,
// mirroring GNU Parallel.
func (t *Template) HasInputPlaceholder() bool { return t.hasInput }

// HasSlotPlaceholder reports whether {%} appears.
func (t *Template) HasSlotPlaceholder() bool { return t.hasSlot }

// MaxPosition returns the largest positional index referenced, 0 if none.
func (t *Template) MaxPosition() int { return t.maxPos }

// Parse compiles a template string. It never fails on unknown tokens
// (they become literals); it returns an error only for structurally
// impossible templates (currently none, the error return is reserved for
// future stricter modes).
func Parse(s string) (*Template, error) {
	t := &Template{src: s}
	var lit strings.Builder
	flush := func() {
		if lit.Len() > 0 {
			t.parts = append(t.parts, part{kind: kindLiteral, lit: lit.String()})
			lit.Reset()
		}
	}
	i := 0
	for i < len(s) {
		c := s[i]
		if c != '{' {
			lit.WriteByte(c)
			i++
			continue
		}
		end := strings.IndexByte(s[i:], '}')
		if end < 0 {
			lit.WriteByte(c)
			i++
			continue
		}
		token := s[i+1 : i+end]
		p, ok := parseToken(token)
		if !ok {
			lit.WriteString(s[i : i+end+1])
			i += end + 1
			continue
		}
		flush()
		t.parts = append(t.parts, p)
		switch p.kind {
		case kindInput:
			t.hasInput = true
		case kindPos:
			t.hasInput = true
			if p.pos > t.maxPos {
				t.maxPos = p.pos
			}
		case kindSlot:
			t.hasSlot = true
		}
		i += end + 1
	}
	flush()
	return t, nil
}

// MustParse is Parse that panics on error, for constant templates.
func MustParse(s string) *Template {
	t, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return t
}

func parseToken(tok string) (part, bool) {
	switch tok {
	case "":
		return part{kind: kindInput, op: opNone}, true
	case ".":
		return part{kind: kindInput, op: opNoExt}, true
	case "/":
		return part{kind: kindInput, op: opBase}, true
	case "//":
		return part{kind: kindInput, op: opDir}, true
	case "/.":
		return part{kind: kindInput, op: opBaseNo}, true
	case "#":
		return part{kind: kindSeq}, true
	case "%":
		return part{kind: kindSlot}, true
	}
	// {n}, {n.}, {n/}, {n//}, {n/.}
	digits := 0
	for digits < len(tok) && tok[digits] >= '0' && tok[digits] <= '9' {
		digits++
	}
	if digits == 0 {
		return part{}, false
	}
	n, err := strconv.Atoi(tok[:digits])
	if err != nil || n < 1 {
		return part{}, false
	}
	var o op
	switch tok[digits:] {
	case "":
		o = opNone
	case ".":
		o = opNoExt
	case "/":
		o = opBase
	case "//":
		o = opDir
	case "/.":
		o = opBaseNo
	default:
		return part{}, false
	}
	return part{kind: kindPos, op: o, pos: n}, true
}

// renderBufPool recycles scratch buffers across Render calls so the
// steady-state render cost is one allocation (the returned string).
var renderBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 256)
		return &b
	},
}

// Render substitutes ctx into the template. Referencing a positional
// argument beyond len(ctx.Args) is an error.
//
// Render is on the engine's per-job hot path: a template that is pure
// literal costs zero allocations, and any other template costs exactly
// one (the result string) in steady state. Callers that can reuse a
// byte buffer should prefer AppendRender.
func (t *Template) Render(ctx Context) (string, error) {
	if t.isLiteral() {
		return t.src, nil
	}
	bp := renderBufPool.Get().(*[]byte)
	out, err := t.AppendRender((*bp)[:0], ctx)
	if err != nil {
		renderBufPool.Put(bp)
		return "", err
	}
	s := string(out)
	*bp = out[:0]
	renderBufPool.Put(bp)
	return s, nil
}

// isLiteral reports that rendering can return src verbatim (no
// placeholders at all — a single pre-merged literal part, or empty).
func (t *Template) isLiteral() bool {
	return len(t.parts) == 0 || (len(t.parts) == 1 && t.parts[0].kind == kindLiteral)
}

// AppendRender renders the template into dst and returns the extended
// slice, allocating only when dst lacks capacity. This is the
// allocation-free form engines use with pooled buffers.
func (t *Template) AppendRender(dst []byte, ctx Context) ([]byte, error) {
	for i := range t.parts {
		p := &t.parts[i]
		switch p.kind {
		case kindLiteral:
			dst = append(dst, p.lit...)
		case kindSeq:
			dst = strconv.AppendInt(dst, int64(ctx.Seq), 10)
		case kindSlot:
			dst = strconv.AppendInt(dst, int64(ctx.Slot), 10)
		case kindInput:
			for j, a := range ctx.Args {
				if j > 0 {
					dst = append(dst, ' ')
				}
				dst = appendOp(dst, p.op, a)
			}
		case kindPos:
			if p.pos > len(ctx.Args) {
				return dst, fmt.Errorf("tmpl: template %q references {%d} but job has %d argument(s)",
					t.src, p.pos, len(ctx.Args))
			}
			dst = appendOp(dst, p.op, ctx.Args[p.pos-1])
		}
	}
	return dst, nil
}

// appendOp appends the path-operated form of v to dst without
// intermediate string allocation (every op is a pure slice of v).
func appendOp(dst []byte, o op, v string) []byte {
	return append(dst, applyOp(o, v)...)
}

func applyOp(o op, v string) string {
	switch o {
	case opNoExt:
		return stripExt(v)
	case opBase:
		return basename(v)
	case opDir:
		return dirname(v)
	case opBaseNo:
		return stripExt(basename(v))
	default:
		return v
	}
}

// basename returns the final path component, mirroring GNU Parallel's {/}
// (which does not strip trailing slashes the way path.Base does for "/").
func basename(v string) string {
	if i := strings.LastIndexByte(v, '/'); i >= 0 {
		return v[i+1:]
	}
	return v
}

// dirname returns everything before the final component, "." when there is
// no slash — matching dirname(1)/GNU Parallel {//}.
func dirname(v string) string {
	i := strings.LastIndexByte(v, '/')
	switch {
	case i < 0:
		return "."
	case i == 0:
		return "/"
	default:
		return v[:i]
	}
}

// stripExt removes the last ".ext" of the final path component. A leading
// dot (hidden file) is not an extension separator.
func stripExt(v string) string {
	base := v
	dirLen := 0
	if i := strings.LastIndexByte(v, '/'); i >= 0 {
		base = v[i+1:]
		dirLen = i + 1
	}
	dot := strings.LastIndexByte(base, '.')
	if dot <= 0 { // no dot, or dot-file
		return v
	}
	return v[:dirLen+dot]
}
