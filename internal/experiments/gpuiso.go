package experiments

import (
	"fmt"
	"time"

	"repro/internal/celeritas"
	"repro/internal/cluster"
	"repro/internal/gpu"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// GPUIsoRow contrasts slot-pinned device assignment with the naive
// default (every process lands on device 0).
type GPUIsoRow struct {
	Method     string
	Tasks      int
	MakespanS  float64
	Contention int
	// UtilSpread is max-min device utilization (0 = perfectly even).
	UtilSpread float64
}

// GPUIsolation reproduces §IV-D: 16 Celeritas inputs on one 8-GPU node,
// with HIP_VISIBLE_DEVICES derived from the {%} slot versus without any
// isolation.
func GPUIsolation(opts Options) []GPUIsoRow {
	const tasks = 16
	cfg := celeritas.DefaultConfig("iso")
	cfg.Photons = 600_000_000 // ~30s kernels

	run := func(pick func(tc cluster.TaskContext, set *gpu.Set) *gpu.Device) GPUIsoRow {
		e := sim.NewEngine(opts.Seed + 61)
		c := cluster.New(e, cluster.Frontier(), 1)
		node := c.Nodes[0]
		kernelRNG := e.RNG().Split("gpuiso")
		list := make([]cluster.Task, tasks)
		for i := range list {
			d := kernelRNG.Jitter(celeritas.Cost(cfg), 0.02)
			list[i] = cluster.Task{Payload: func(tp *sim.Proc, tc cluster.TaskContext) error {
				pick(tc, tc.Node.GPUs).Exec(tp, d)
				return nil
			}}
		}
		e.Spawn("driver", func(p *sim.Proc) {
			node.RunParallel(p, cluster.InstanceConfig{Jobs: 8}, list)
		})
		end := e.Run()
		util := node.GPUs.Utilization(end)
		lo, hi := util[0], util[0]
		for _, u := range util {
			if u < lo {
				lo = u
			}
			if u > hi {
				hi = u
			}
		}
		return GPUIsoRow{
			Tasks: tasks, MakespanS: end.Seconds(),
			Contention: node.GPUs.TotalContention(),
			UtilSpread: hi - lo,
		}
	}

	iso := run(func(tc cluster.TaskContext, set *gpu.Set) *gpu.Device {
		dev, _ := set.Device(gpu.SlotDevice(tc.Slot))
		return dev
	})
	iso.Method = `HIP_VISIBLE_DEVICES=$(({%} - 1)) (slot-pinned)`
	naive := run(func(tc cluster.TaskContext, set *gpu.Set) *gpu.Device {
		dev, _ := set.Device(0) // default visible device
		return dev
	})
	naive.Method = "no isolation (all processes on GPU 0)"
	return []GPUIsoRow{iso, naive}
}

func gpuisoTable(opts Options) *metrics.Table {
	rows := GPUIsolation(opts)
	t := metrics.NewTable("§IV-D: GPU isolation via {%} slot binding (16 Celeritas runs, 8 GPUs)",
		"method", "tasks", "makespan_s", "contention", "util_spread")
	for _, r := range rows {
		t.AddRow(r.Method, r.Tasks, fmt.Sprintf("%.1f", r.MakespanS),
			r.Contention, fmt.Sprintf("%.2f", r.UtilSpread))
	}
	slowdown := time.Duration((rows[1].MakespanS - rows[0].MakespanS) * float64(time.Second))
	t.AddNote("without isolation all work serializes on one device (+%.0fs, %dx contention); slot binding gives even utilization and zero contention",
		slowdown.Seconds(), rows[1].Contention)
	return t
}

func init() {
	register(Experiment{
		ID:    "gpuiso",
		Paper: "GPU isolation: {%}-derived HIP_VISIBLE_DEVICES pins one process per GPU",
		Run:   gpuisoTable,
	})
}
