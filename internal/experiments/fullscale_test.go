package experiments

import (
	"testing"
	"time"
)

// fullScaleBudget is the wall-clock ceiling for one full-scale Fig 1
// point in CI. The 9,000-node point simulates 1.152M tasks (the paper's
// largest run); on the rewritten kernel it completes in single-digit
// seconds, so the budget leaves an order of magnitude of headroom for
// slow CI hosts while still catching kernel-throughput regressions.
const fullScaleBudget = 120 * time.Second

// TestFullScaleFig1Point runs the paper's largest weak-scaling point —
// 9,000 Frontier nodes x 128 tasks — end to end, proving full-scale
// experiments fit in CI rather than only the 1/10-scale quick mode.
func TestFullScaleFig1Point(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale point skipped in -short mode")
	}
	if raceEnabled {
		// The kernel is a single-goroutine event loop at this scale;
		// race instrumentation multiplies wall time without adding
		// coverage beyond the quick-scale tests that do run under
		// -race. CI runs this test in a separate non-race step.
		t.Skip("full-scale point skipped under -race")
	}
	start := time.Now()
	row := Fig1Point(DefaultOptions(), 9000)
	wall := time.Since(start)
	t.Logf("9000 nodes, %d tasks: wall %.2fs, median %.1fs, p90 %.1fs, max %.1fs",
		row.Tasks, wall.Seconds(), row.Median, row.P90, row.Max)

	if row.Tasks != 9000*fig1TasksPerNode {
		t.Fatalf("task count = %d, want %d", row.Tasks, 9000*fig1TasksPerNode)
	}
	// Sanity-check the row against the paper's headline shape: median
	// well under a minute, a heavy max tail of several hundred seconds
	// (paper: 561s at 9,000 nodes).
	if row.Median <= 0 || row.Median > 60 {
		t.Errorf("median %.1fs out of range (paper: <60s)", row.Median)
	}
	if row.Max < 100 || row.Max > 600 {
		t.Errorf("max %.1fs out of range (paper: 561s tail)", row.Max)
	}
	if row.P25 > row.Median || row.Median > row.P75 || row.P75 > row.P90 || row.P90 > row.Max {
		t.Errorf("percentiles not monotone: %+v", row)
	}
	if wall > fullScaleBudget {
		t.Errorf("full-scale point took %.1fs, budget %.0fs", wall.Seconds(), fullScaleBudget.Seconds())
	}
}
