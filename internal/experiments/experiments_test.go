package experiments

import (
	"strings"
	"testing"
)

func quickOpts() Options { return Options{Seed: 2024, Quick: true} }

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig7",
		"wms", "srun", "dtn", "fetchproc", "forge", "gpuiso",
		"ablation-static", "ablation-central", "ablation-dispatch", "ablation-nvme",
	}
	for _, id := range want {
		if _, ok := Get(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(All()) < len(want) {
		t.Fatalf("registry has %d experiments, want >= %d", len(All()), len(want))
	}
	// All() is sorted and every entry has paper text and a runner.
	prev := ""
	for _, e := range All() {
		if e.ID <= prev {
			t.Fatalf("All() not sorted: %q after %q", e.ID, prev)
		}
		prev = e.ID
		if e.Paper == "" || e.Run == nil {
			t.Fatalf("experiment %q incomplete", e.ID)
		}
	}
	if _, ok := Get("nonexistent"); ok {
		t.Fatal("Get of unknown id succeeded")
	}
}

func TestFig1ShapeQuick(t *testing.T) {
	rows := Fig1WeakScaling(quickOpts())
	if len(rows) < 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.Tasks != r.Nodes*128 {
			t.Fatalf("row %d: tasks %d != nodes*128", i, r.Tasks)
		}
		if r.Median <= 0 || r.Median > 60 {
			t.Fatalf("median %v out of paper band (<60s)", r.Median)
		}
		if r.P25 > r.Median || r.Median > r.P75 || r.P75 > r.Max {
			t.Fatalf("quantiles not ordered: %+v", r)
		}
	}
	// Tail (max) grows with node count: compare smallest and largest run.
	if rows[len(rows)-1].Max <= rows[0].Max {
		t.Fatalf("max did not grow with scale: %v vs %v", rows[0].Max, rows[len(rows)-1].Max)
	}
}

func TestFig2ShapeQuick(t *testing.T) {
	rows := Fig2GPUScaling(quickOpts())
	var lo, hi float64
	for i, r := range rows {
		if r.Contention != 0 {
			t.Fatalf("GPU contention %d at %d nodes", r.Contention, r.Nodes)
		}
		if r.GPUs != r.Nodes*8 {
			t.Fatalf("gpus = %d", r.GPUs)
		}
		if i == 0 {
			lo, hi = r.MakespanS, r.MakespanS
		}
		if r.MakespanS < lo {
			lo = r.MakespanS
		}
		if r.MakespanS > hi {
			hi = r.MakespanS
		}
	}
	if spread := hi - lo; spread > 10 {
		t.Fatalf("makespan spread %.1fs exceeds the paper's <10s variance", spread)
	}
}

func TestFig3RatesQuick(t *testing.T) {
	one := launchRateRun(1, 1, 16, 400, nil)
	if one.RateProcsPerSec < 440 || one.RateProcsPerSec > 500 {
		t.Fatalf("single instance rate = %.0f, want ~470", one.RateProcsPerSec)
	}
	if one.MinTaskMS < 500 || one.MinTaskMS > 600 {
		t.Fatalf("single-instance utilization floor = %.0fms, want ~545", one.MinTaskMS)
	}
	many := launchRateRun(2, 32, 16, 400, nil)
	if many.RateProcsPerSec < 5500 || many.RateProcsPerSec > 7500 {
		t.Fatalf("aggregate rate = %.0f, want ~6400", many.RateProcsPerSec)
	}
	if many.MinTaskMS > 50 {
		t.Fatalf("saturated utilization floor = %.0fms, want ~40", many.MinTaskMS)
	}
}

func TestFig4ShifterOverheadQuick(t *testing.T) {
	tbl := fig4Table(quickOpts())
	out := tbl.String()
	if !strings.Contains(out, "shifter") {
		t.Fatalf("table missing shifter rows:\n%s", out)
	}
	// The note carries the computed overhead; recompute directly.
	bare := launchRateRun(3, 32, 16, 400, nil)
	shift := launchRateRun(4, 32, 16, 400, mkShifter)
	overhead := 1 - shift.RateProcsPerSec/bare.RateProcsPerSec
	if overhead < 0.12 || overhead > 0.26 {
		t.Fatalf("shifter overhead = %.0f%%, want ~19%%", overhead*100)
	}
	if shift.RateProcsPerSec < 4500 || shift.RateProcsPerSec > 6200 {
		t.Fatalf("shifter ceiling = %.0f, want ~5200", shift.RateProcsPerSec)
	}
}

func TestFig5PodmanQuick(t *testing.T) {
	r := launchRateRun(5, 4, 16, 100, mkPodman)
	if r.RateProcsPerSec > 120 || r.RateProcsPerSec < 30 {
		t.Fatalf("podman rate = %.0f, want ~65", r.RateProcsPerSec)
	}
	// Two orders of magnitude below shifter's ceiling (32 instances).
	shift := launchRateRun(6, 32, 16, 400, mkShifter)
	if shift.RateProcsPerSec/r.RateProcsPerSec < 30 {
		t.Fatalf("podman (%.0f) vs shifter (%.0f): gap too small", r.RateProcsPerSec, shift.RateProcsPerSec)
	}
}

func TestWMSComparisonQuick(t *testing.T) {
	rows := WMSComparison(quickOpts())
	for _, r := range rows {
		if r.ParallelTimeS >= r.WMSOverheadS {
			t.Fatalf("parallel (%.1fs) not below WMS (%.1fs) at %d tasks",
				r.ParallelTimeS, r.WMSOverheadS, r.Tasks)
		}
	}
	// 50k-task WMS overhead ~500s (calibration).
	for _, r := range rows {
		if r.Tasks == 50_000 && (r.WMSOverheadS < 450 || r.WMSOverheadS > 550) {
			t.Fatalf("WMS overhead @50k = %.0fs, want ~500", r.WMSOverheadS)
		}
	}
}

func TestSrunVsParallelQuick(t *testing.T) {
	rows := SrunVsParallel(quickOpts())
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	srun, par := rows[0], rows[1]
	if srun.MakespanS <= par.MakespanS {
		t.Fatalf("srun loop (%.1fs) not slower than parallel (%.1fs)", srun.MakespanS, par.MakespanS)
	}
	if srun.LaunchS < 7 {
		t.Fatalf("srun launch overhead = %.1fs, want >= 7.2s (36 x 0.2s sleeps)", srun.LaunchS)
	}
	if par.LaunchS > 0.5 {
		t.Fatalf("parallel launch overhead = %.2fs, want ~0.08s", par.LaunchS)
	}
}

func TestFig7Quick(t *testing.T) {
	res := Fig7DarshanPipeline(quickOpts())
	staged := res.Staged.Total.Minutes()
	base := res.LustreOnly.Total.Minutes()
	improvement := (base - staged) / base
	if improvement < 0.10 || improvement > 0.25 {
		t.Fatalf("improvement = %.1f%% (staged %.1f vs base %.1f min), want ~17%%",
			improvement*100, staged, base)
	}
	if len(res.Staged.Stages) != 5 {
		t.Fatalf("stages = %d", len(res.Staged.Stages))
	}
}

func TestDataMotionQuick(t *testing.T) {
	rows := DataMotion(quickOpts())
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	seq, wmsRow, par := rows[0], rows[1], rows[2]
	if par.Speedup < 100 {
		t.Fatalf("parallel speedup = %.0fx, want ~200x", par.Speedup)
	}
	if wmsRatio := wmsRow.MakespanS / par.MakespanS; wmsRatio < 8 {
		t.Fatalf("WMS/parallel = %.1fx, want >10x", wmsRatio)
	}
	if par.NodeMbpsMean < 1200 || par.NodeMbpsMean > 3000 {
		t.Fatalf("node throughput = %.0f Mb/s, want ~2385", par.NodeMbpsMean)
	}
	if seq.Speedup != 1 {
		t.Fatalf("sequential speedup = %v", seq.Speedup)
	}
}

func TestFetchProcessQuick(t *testing.T) {
	rows := FetchProcess(quickOpts())
	if rows[0].MakespanS >= rows[1].MakespanS {
		t.Fatalf("overlap (%.0fs) not faster than barrier (%.0fs)", rows[0].MakespanS, rows[1].MakespanS)
	}
}

func TestGPUIsolationQuick(t *testing.T) {
	rows := GPUIsolation(quickOpts())
	iso, naive := rows[0], rows[1]
	if iso.Contention != 0 {
		t.Fatalf("isolated contention = %d", iso.Contention)
	}
	if naive.Contention == 0 {
		t.Fatal("naive placement shows no contention; model broken")
	}
	if naive.MakespanS < 4*iso.MakespanS {
		t.Fatalf("naive (%.0fs) should be ~8x isolated (%.0fs)", naive.MakespanS, iso.MakespanS)
	}
}

func TestForgeCurationQuick(t *testing.T) {
	rows := ForgeCuration(quickOpts())
	if len(rows) < 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Jobs != 1 || rows[0].SpeedupVs1 != 1 {
		t.Fatalf("baseline row = %+v", rows[0])
	}
	for _, r := range rows {
		if r.Kept == 0 || r.Kept >= r.Docs {
			t.Fatalf("kept = %d of %d", r.Kept, r.Docs)
		}
	}
}

func TestAllTablesRenderQuick(t *testing.T) {
	// Smoke: every registered experiment renders a non-trivial table in
	// Quick mode (fig1 is exercised separately; it dominates runtime).
	for _, e := range All() {
		if e.ID == "fig1" || e.ID == "forge" {
			continue // covered by dedicated tests above
		}
		tbl := e.Run(quickOpts())
		out := tbl.String()
		if len(out) < 80 || !strings.Contains(out, "==") {
			t.Errorf("experiment %s rendered suspicious table:\n%s", e.ID, out)
		}
		if md := tbl.Markdown(); !strings.Contains(md, "|") {
			t.Errorf("experiment %s markdown broken", e.ID)
		}
	}
}

func TestDeterministicTables(t *testing.T) {
	// Same seed, same table, for a representative simulator experiment.
	a := fig7Table(quickOpts()).String()
	b := fig7Table(quickOpts()).String()
	if a != b {
		t.Fatal("fig7 table not deterministic")
	}
	c := fig0WMSTable(quickOpts()).String()
	d := fig0WMSTable(quickOpts()).String()
	if c != d {
		t.Fatal("wms table not deterministic")
	}
}
