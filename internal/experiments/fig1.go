package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/slurm"
	"repro/internal/storage"
)

// Fig1Row is one node-count point of the weak-scaling study: the
// distribution of per-task completion times (seconds since submission).
type Fig1Row struct {
	Nodes, Tasks               int
	P25, Median, P75, P90, Max float64
}

// fig1TasksPerNode matches the paper: 128 parallel instances per node,
// one per CPU core.
const fig1TasksPerNode = 128

// fig1NodeCounts are the x-axis points (full scale).
var fig1NodeCounts = []int{1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000, 9000}

// fig1QuickNodeCounts preserve the shape at 1/10 the node count.
var fig1QuickNodeCounts = []int{100, 300, 500, 700, 900}

// Fig1WeakScaling reproduces Fig 1: per-node GNU-Parallel instances each
// launching 128 trivial hostname+timestamp tasks that write stdout to
// node-local NVMe, with the aggregate flushed to Lustre at the end. Tail
// delays (allocation, NVMe availability, I/O) are injected per the
// paper's stated outlier causes; larger runs sample the tail more often,
// which is exactly why the paper saw greater variance at 9,000 nodes.
func Fig1WeakScaling(opts Options) []Fig1Row {
	counts := fig1NodeCounts
	if opts.Quick {
		counts = fig1QuickNodeCounts
	}
	rows := make([]Fig1Row, len(counts))
	sweep(len(counts), opts.Workers, func(i int) {
		rows[i] = fig1Run(opts, counts[i])
	})
	return rows
}

// Fig1Point runs a single node-count point of the weak-scaling study —
// the entry used by the full-scale smoke test and benchmark harness.
func Fig1Point(opts Options, nodes int) Fig1Row { return fig1Run(opts, nodes) }

func fig1Run(opts Options, nodes int) Fig1Row {
	e := sim.NewEngine(opts.Seed + uint64(nodes))
	c := cluster.New(e, cluster.Frontier(), nodes, cluster.WithLustre(storage.LustreProfile()))

	schedCfg := slurm.DefaultConfig()
	schedCfg.AllocTailProb = 0.002
	schedCfg.AllocTailScale = 40 * time.Second
	sched := slurm.NewScheduler(e, schedCfg)

	var ends metrics.Sample
	payloadRNG := e.RNG().Split("fig1/payload")
	nvmeRNG := e.RNG().Split("fig1/nvme")

	e.Spawn("sbatch", func(p *sim.Proc) {
		alloc, err := sched.Allocate(p, c, nodes)
		if err != nil {
			panic(err)
		}
		wg := sim.NewCounter(e, nodes)
		for i, node := range alloc.Nodes {
			node := node
			ready := alloc.ReadyAt[i]
			e.SpawnAt(ready, node.Hostname(), func(np *sim.Proc) {
				// NVMe availability delay (mount/format of the
				// node-local drive), with a rare long tail.
				// Heavy-tailed (Pareto) so the observed maximum
				// grows with node count: more nodes sample the
				// tail more often — the paper's 7,000+-node
				// outlier effect.
				setup := nvmeRNG.Jitter(8*time.Second, 0.6)
				if nvmeRNG.Bernoulli(0.003) {
					// Truncated: a node stuck longer than ~9min
					// would be drained by the facility.
					tail := sim.Dur(nvmeRNG.Pareto(25, 1.1))
					if tail > 520*time.Second {
						tail = 520 * time.Second
					}
					setup += tail
				}
				np.Sleep(setup)

				tasks := make([]cluster.Task, fig1TasksPerNode)
				for t := range tasks {
					d := time.Duration(payloadRNG.LogNormal(-1.6, 0.5) * float64(time.Second))
					// Flow payload: the million-task hot loop runs with
					// no goroutine per task (see sim.Flow).
					tasks[t] = cluster.Task{FlowPayload: func(fl *sim.Flow, tc cluster.TaskContext) {
						fl.Sleep(d) // the hostname+date one-liner
						tc.Node.NVMe.FlowCreateAndWrite(fl, 256)
					}}
				}
				node.RunParallel(np, cluster.InstanceConfig{
					Jobs: fig1TasksPerNode,
					OnResult: func(r cluster.TaskResult) {
						ends.Add(r.End.Seconds())
					},
				}, tasks)
				// Flush the aggregated stdout to Lustre (the
				// best-practice final copy).
				c.Lustre.CreateAndWrite(np, 1<<20)
				wg.Done()
			})
		}
		wg.Wait(p)
	})
	e.Run()

	return Fig1Row{
		Nodes:  nodes,
		Tasks:  nodes * fig1TasksPerNode,
		P25:    ends.Percentile(25),
		Median: ends.Median(),
		P75:    ends.Percentile(75),
		P90:    ends.Percentile(90),
		Max:    ends.Max(),
	}
}

func fig1Table(opts Options) *metrics.Table {
	rows := Fig1WeakScaling(opts)
	t := metrics.NewTable("Fig 1: weak scaling on Frontier (per-task completion time, s)",
		"nodes", "tasks", "p25", "median", "p75", "p90", "max")
	for _, r := range rows {
		t.AddRow(r.Nodes, r.Tasks,
			fmt.Sprintf("%.1f", r.P25), fmt.Sprintf("%.1f", r.Median),
			fmt.Sprintf("%.1f", r.P75), fmt.Sprintf("%.1f", r.P90),
			fmt.Sprintf("%.1f", r.Max))
	}
	t.AddNote("paper: median <60s, 75%% <2min at 8,000 nodes; max 561s at 9,000 nodes (1.152M tasks)")
	t.AddNote("tail variance grows with node count because outlier delays (alloc/NVMe/I/O) are sampled more often")
	return t
}

func init() {
	register(Experiment{
		ID:    "fig1",
		Paper: "Weak scaling, 1,000-9,000 Frontier nodes x 128 tasks; median <1min, max 561s @ 9,000 nodes",
		Run:   fig1Table,
	})
}
